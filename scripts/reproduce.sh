#!/bin/sh
# Build everything, run the full test suite, regenerate every
# table/figure of the paper plus the extension studies from their
# declarative specs, and diff each against its pinned golden snapshot.
#
# Grids run their cells in parallel; output is byte-identical to a
# serial run. The job count defaults to all hardware threads; override
# it with PSIM_JOBS=n or per-spec with --jobs n.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

python3 scripts/check_stats_schema.py \
    --schema scripts/spec_schema.json specs/*.json

mkdir -p out
for s in specs/*.json; do
    n=$(basename "$s" .json)
    echo "==== $n ===="
    ./build/bench/run_spec --spec "$s" --out "out/BENCH_$n.json"
    python3 scripts/diff_results.py "BENCH_$n.json" "out/BENCH_$n.json"
done
python3 scripts/check_stats_schema.py \
    --schema scripts/results_schema.json out/BENCH_*.json

echo "==== bench/micro_prefetchers ===="
./build/bench/micro_prefetchers
