#!/bin/sh
# Build everything, run the full test suite, and regenerate every
# table/figure of the paper plus the extension studies.
#
# Table/figure harnesses run their (app, scheme) grids in parallel;
# output is byte-identical to a serial run. The job count defaults to
# all hardware threads; override it with PSIM_JOBS=n or per-bench
# with --jobs n.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in table2_characteristics table3_finite_slc table4_scaling \
         fig6_schemes ablation_degree ablation_blocksize \
         sensitivity_arch extension_adaptive extension_lookahead extension_protocol \
         micro_prefetchers; do
    echo "==== bench/$b ===="
    ./build/bench/$b
done
