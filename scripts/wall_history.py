#!/usr/bin/env python3
"""Append wall-clock rows from psim-results-v1 documents to a CSV.

Standard library only. Reads the run.wall_seconds of each results
document and appends one `spec,wall_seconds,date` row per document to
the history file (creating it, with a header, if needed). CI runs this
after regenerating every golden and uploads the CSV as an artifact, so
the wall-clock trend of the whole spec suite accumulates run over run
-- the diff gate's --wall-tol catches a 4x cliff, this catches the
slow creep that never trips it.

A document without a positive run.wall_seconds gets a warning on
stderr and no row (a zero would poison any trend math downstream).

Usage: wall_history.py --history CSV [--date YYYY-MM-DD] RESULTS.json...

Exit status: 0 on success (even if some documents were skipped),
2 on usage error or an unreadable/invalid document.
"""

import datetime
import json
import sys
from pathlib import Path


def main(argv):
    args = argv[1:]
    history = None
    date = None
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--history":
            if i + 1 >= len(args):
                print("--history needs a value", file=sys.stderr)
                return 2
            history = Path(args[i + 1])
            i += 2
        elif args[i] == "--date":
            if i + 1 >= len(args):
                print("--date needs a value", file=sys.stderr)
                return 2
            date = args[i + 1]
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if history is None or not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if date is None:
        date = datetime.date.today().isoformat()

    rows = []
    for path in paths:
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {path}: {e}", file=sys.stderr)
            return 2
        if not isinstance(doc, dict) or doc.get("schema") != "psim-results-v1":
            print(f"error: {path}: not a psim-results-v1 document",
                  file=sys.stderr)
            return 2
        name = doc.get("name", Path(path).stem)
        wall = doc.get("run", {}).get("wall_seconds", 0)
        if not isinstance(wall, (int, float)) or wall <= 0:
            print(f"warning: {path}: no positive run.wall_seconds; "
                  f"skipping its history row", file=sys.stderr)
            continue
        rows.append(f"{name},{wall:.3f},{date}\n")

    if not history.exists():
        history.parent.mkdir(parents=True, exist_ok=True)
        history.write_text("spec,wall_seconds,date\n")
    with history.open("a") as f:
        f.writelines(rows)
    print(f"appended {len(rows)} row(s) to {history}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
