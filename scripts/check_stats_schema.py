#!/usr/bin/env python3
"""Validate psim JSON documents against a schema file.

Standard library only: implements exactly the subset of JSON Schema the
schema files use (type, const, enum, required, properties, items,
minimum, additionalProperties). CI runs this over the stats documents a
smoke run produces -- and, via --schema, over experiment specs
(spec_schema.json) and canonical results documents
(results_schema.json) -- so schema drift is caught at the source, not
in downstream tooling.

Empty documents (an empty file, [], or {}) are rejected: they satisfy
any of these schemas vacuously, and every producer of these documents
always emits at least one member, so an empty input is a pipeline bug,
not a valid degenerate case.

Usage: check_stats_schema.py [--schema SCHEMA.json] FILE [FILE...]
       (default schema: scripts/stats_schema.json)
"""

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "stats_schema.json"

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "null": lambda v: v is None,
    "boolean": lambda v: isinstance(v, bool),
}


def validate(value, schema, path, errors):
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(
                f"{path}: expected {'|'.join(types)}, "
                f"got {type(value).__name__}"
            )
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required member '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
        if schema.get("additionalProperties") is False:
            allowed = set(schema.get("properties", {}))
            for key in value:
                if key not in allowed:
                    errors.append(f"{path}: unknown member '{key}'")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_file(path, schema):
    try:
        text = Path(path).read_text()
    except OSError as e:
        return [f"{path}: {e}"]
    if not text.strip():
        return [f"{path}: empty file (nothing to validate)"]
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"{path}: {e}"]
    if doc == [] or doc == {}:
        return [
            f"{path}: empty document (an empty array/object satisfies "
            f"any schema vacuously and is always a producer bug)"
        ]
    errors = []
    validate(doc, schema, path, errors)
    # Cross-field checks the schema language cannot express: every
    # sampler row is [tick, one value per probe].
    samples = doc.get("samples") if isinstance(doc, dict) else None
    if isinstance(samples, dict):
        width = 1 + len(samples.get("probes", []))
        for i, row in enumerate(samples.get("rows", [])):
            if isinstance(row, list) and len(row) != width:
                errors.append(
                    f"{path}.samples.rows[{i}]: {len(row)} columns, "
                    f"expected {width}"
                )
    return errors


def main(argv):
    args = argv[1:]
    schema_path = SCHEMA_PATH
    if args and args[0] == "--schema":
        if len(args) < 2:
            print("--schema needs a path", file=sys.stderr)
            return 2
        schema_path = Path(args[1])
        args = args[2:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema = json.loads(schema_path.read_text())
    failed = False
    for path in args:
        errors = check_file(path, schema)
        if errors:
            failed = True
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
