#!/usr/bin/env python3
"""Validate psim --stats-json documents against scripts/stats_schema.json.

Standard library only: implements exactly the subset of JSON Schema the
schema file uses (type, const, enum, required, properties, items,
minimum). CI runs this over the stats documents a smoke run produces so
schema drift is caught at the source, not in downstream tooling.

Usage: check_stats_schema.py FILE [FILE...]
"""

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "stats_schema.json"

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "null": lambda v: v is None,
    "boolean": lambda v: isinstance(v, bool),
}


def validate(value, schema, path, errors):
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(
                f"{path}: expected {'|'.join(types)}, "
                f"got {type(value).__name__}"
            )
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required member '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_file(path, schema):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    errors = []
    validate(doc, schema, path, errors)
    # Cross-field checks the schema language cannot express: every
    # sampler row is [tick, one value per probe].
    samples = doc.get("samples") if isinstance(doc, dict) else None
    if isinstance(samples, dict):
        width = 1 + len(samples.get("probes", []))
        for i, row in enumerate(samples.get("rows", [])):
            if isinstance(row, list) and len(row) != width:
                errors.append(
                    f"{path}.samples.rows[{i}]: {len(row)} columns, "
                    f"expected {width}"
                )
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema = json.loads(SCHEMA_PATH.read_text())
    failed = False
    for path in argv[1:]:
        errors = check_file(path, schema)
        if errors:
            failed = True
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
