#!/usr/bin/env python3
"""Compare two psim-results-v1 documents: exact cells, tolerant wall.

Standard library only. The golden document (first argument) is the
pinned BENCH_*.json snapshot; the fresh document is a regeneration of
the same spec. Every simulated quantity -- cell ids, coordinates, all
metrics, the characterizer report -- must match EXACTLY: the simulator
is deterministic, so any numeric drift is a behaviour change, not
noise. Host wall-clock is the one legitimately volatile field; the
fresh run-level wall_seconds may exceed the golden value by at most
--wall-tol x (default 4.0, one-sided: faster is never a failure).
Per-cell wall_seconds is informational and never compared.

If the golden document carries no usable run.wall_seconds (absent or
zero), the wall gate cannot run; a note saying so goes to stderr and
the comparison otherwise proceeds. Pass --strict-wall to turn that
silent skip into its own failure (exit 3) -- use it in CI jobs that
rely on the wall gate actually firing.

Usage: diff_results.py GOLDEN.json FRESH.json [--wall-tol R]
                                              [--ignore-wall]
                                              [--strict-wall]

Exit status: 0 identical (within wall tolerance), 1 any difference,
2 usage or unreadable/invalid input, 3 wall gate skipped under
--strict-wall.
"""

import json
import sys
from pathlib import Path


def load(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or doc.get("schema") != "psim-results-v1":
        print(f"error: {path}: not a psim-results-v1 document",
              file=sys.stderr)
        sys.exit(2)
    return doc


def diff_cell(idx, gold, fresh, errors):
    where = f"cells[{idx}] ({gold.get('id', '?')!r})"
    for key in ("id", "coords"):
        if gold.get(key) != fresh.get(key):
            errors.append(f"{where}.{key}: golden {gold.get(key)!r} "
                          f"!= fresh {fresh.get(key)!r}")
    for section in ("metrics", "characterizer"):
        g = gold.get(section)
        f = fresh.get(section)
        if g is None and f is None:
            continue
        if g is None or f is None:
            errors.append(f"{where}.{section}: present in "
                          f"{'fresh' if g is None else 'golden'} only")
            continue
        for key in sorted(set(g) | set(f)):
            if key not in g or key not in f:
                errors.append(f"{where}.{section}.{key}: present in "
                              f"{'fresh' if key not in g else 'golden'} "
                              f"only")
            elif g[key] != f[key]:
                errors.append(f"{where}.{section}.{key}: golden "
                              f"{g[key]!r} != fresh {f[key]!r}")


def main(argv):
    args = argv[1:]
    wall_tol = 4.0
    check_wall = True
    strict_wall = False
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--wall-tol":
            if i + 1 >= len(args):
                print("--wall-tol needs a value", file=sys.stderr)
                return 2
            wall_tol = float(args[i + 1])
            i += 2
        elif args[i] == "--ignore-wall":
            check_wall = False
            i += 1
        elif args[i] == "--strict-wall":
            strict_wall = True
            i += 1
        else:
            paths.append(args[i])
            i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    golden = load(paths[0])
    fresh = load(paths[1])
    errors = []

    for key in ("name", "report"):
        if golden.get(key) != fresh.get(key):
            errors.append(f"{key}: golden {golden.get(key)!r} != fresh "
                          f"{fresh.get(key)!r}")

    gcells = golden.get("cells", [])
    fcells = fresh.get("cells", [])
    if len(gcells) != len(fcells):
        errors.append(f"cells: golden has {len(gcells)}, fresh has "
                      f"{len(fcells)}")
    else:
        for idx, (g, f) in enumerate(zip(gcells, fcells)):
            diff_cell(idx, g, f, errors)

    wall_skipped = False
    if check_wall:
        gwall = golden.get("run", {}).get("wall_seconds", 0)
        fwall = fresh.get("run", {}).get("wall_seconds", 0)
        if gwall > 0:
            if fwall > gwall * wall_tol:
                errors.append(
                    f"run.wall_seconds: fresh {fwall:.2f}s exceeds "
                    f"{wall_tol:.1f}x golden {gwall:.2f}s -- performance "
                    f"regression (rerun on an unloaded machine, or repin "
                    f"the golden if the slowdown is intentional)")
        else:
            wall_skipped = True
            print(f"note: wall-clock gate skipped: golden {paths[0]} "
                  f"has {'no' if 'wall_seconds' not in golden.get('run', {}) else 'a zero'} "
                  f"run.wall_seconds", file=sys.stderr)

    if errors:
        for e in errors:
            print(f"DIFF {e}", file=sys.stderr)
        print(f"FAIL {paths[1]} differs from {paths[0]} "
              f"({len(errors)} difference(s))", file=sys.stderr)
        return 1
    if wall_skipped and strict_wall:
        print(f"FAIL {paths[1]}: --strict-wall and the wall-clock gate "
              f"could not run", file=sys.stderr)
        return 3
    print(f"ok   {paths[1]} matches {paths[0]} "
          f"({len(gcells)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
