/**
 * @file
 * The paper's Figure 2 example: matrix multiplication
 *
 *     for (i) for (j) for (k) C[i,j] += A[i,k] * B[k,j];
 *
 * with row-major matrices. The inner loop reads A at an 8-byte (one
 * element) stride and B at a whole-row stride, the two access regimes
 * the paper uses to introduce stride detection. This example runs the
 * kernel on the simulated 16-node machine, characterizes its miss
 * stream (like Table 2), and compares the three prefetching schemes
 * on it.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/driver.hh"

using namespace psim;

/** "0.63"-style efficiency, or "—" when no prefetches were issued. */
static std::string
fmtEff(double eff, int width)
{
    char buf[32];
    if (std::isnan(eff)) // the em dash is 3 bytes, 1 display column
        std::snprintf(buf, sizeof(buf), "%*s", width + 2, "—");
    else
        std::snprintf(buf, sizeof(buf), "%*.2f", width, eff);
    return buf;
}

int
main(int argc, char **argv)
{
    apps::ObservabilityOptions obs;
    for (int i = 1; i < argc; ++i) {
        if (!obs.parseArg(argc, argv, &i)) {
            std::printf("unknown argument '%s' (this example only takes "
                        "the shared observability flags)\n", argv[i]);
            return 1;
        }
    }

    std::printf("Figure-2 matrix multiplication on the 16-node "
                "machine\n\n");

    // 1. Characterize the baseline miss stream (Table-2 methodology).
    {
        MachineConfig cfg;
        apps::RunOptions opts;
        opts.characterize = true;
        obs.apply(opts, "matmul-characterize");
        apps::Run run = apps::runWorkload("matmul", cfg, opts);
        if (!run.finished || !run.verified) {
            std::printf("baseline run failed\n");
            return 1;
        }
        auto report = run.machine->characterizer(0)->finalize();
        std::printf("baseline characterization (node 0):\n");
        std::printf("  read misses:               %llu\n",
                    static_cast<unsigned long long>(report.totalMisses));
        std::printf("  misses in stride sequences: %.1f%%\n",
                    100.0 * report.strideFraction);
        std::printf("  average sequence length:    %.1f\n",
                    report.avgSequenceLength);
        std::printf("  strides (blocks):           ");
        for (std::size_t i = 0; i < report.topStrides.size() && i < 3;
             ++i) {
            std::printf("%lld (%.0f%%)  ",
                        static_cast<long long>(report.topStrides[i].first),
                        100.0 * report.topStrides[i].second);
        }
        std::printf("\n\n");
    }

    // 2. Compare the schemes.
    std::printf("%-10s %12s %12s %10s\n", "scheme", "read misses",
                "read stall", "pf eff");
    double base_misses = 0, base_stall = 0;
    for (const char *scheme : {"none", "idet", "ddet", "seq"}) {
        MachineConfig cfg;
        cfg.prefetch.scheme = parseScheme(scheme);
        apps::RunOptions opts;
        obs.apply(opts, std::string("matmul-") + scheme);
        apps::Run run = apps::runWorkload("matmul", cfg, opts);
        if (!run.finished || !run.verified) {
            std::printf("%s run failed\n", scheme);
            return 1;
        }
        if (base_misses == 0) {
            base_misses = run.metrics.readMisses;
            base_stall = run.metrics.readStall;
        }
        std::printf("%-10s %11.0f%% %11.0f%% %s\n", scheme,
                    100.0 * run.metrics.readMisses / base_misses,
                    100.0 * run.metrics.readStall / base_stall,
                    fmtEff(run.metrics.prefetchEfficiency(), 10).c_str());
    }
    std::printf("\nA row of A spans consecutive blocks (sequential "
                "prefetching covers it);\na column of B strides one row "
                "per access (stride detection needed).\n");
    return 0;
}
