/**
 * @file
 * Quickstart: build the paper's 16-node machine, run the LU workload
 * under each prefetching scheme, and print the headline metrics.
 *
 * Usage: quickstart [workload] [scale] [observability flags]
 *
 * The shared observability flags (--stats-json PREFIX,
 * --sample-interval N, --sample-csv PREFIX, --chrome-trace PREFIX,
 * --chrome-window A:B) write per-scheme machine-readable output, e.g.
 * `quickstart lu 1 --stats-json out/` produces out/lu-seq.json etc.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/driver.hh"

using namespace psim;

/** "0.63"-style efficiency, or "—" when no prefetches were issued. */
static std::string
fmtEff(double eff, int width)
{
    char buf[32];
    if (std::isnan(eff)) // the em dash is 3 bytes, 1 display column
        std::snprintf(buf, sizeof(buf), "%*s", width + 2, "—");
    else
        std::snprintf(buf, sizeof(buf), "%*.2f", width, eff);
    return buf;
}

int
main(int argc, char **argv)
{
    std::string workload = "lu";
    unsigned scale = 1;
    apps::ObservabilityOptions obs;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (obs.parseArg(argc, argv, &i))
            continue;
        if (positional == 0)
            workload = argv[i];
        else if (positional == 1)
            scale = static_cast<unsigned>(atoi(argv[i]));
        ++positional;
    }

    std::printf("workload: %s (scale %u), 16 processors, 32 B blocks, "
                "infinite SLC\n\n", workload.c_str(), scale);
    std::printf("%-10s %12s %12s %12s %10s %12s\n", "scheme",
                "read misses", "read stall", "exec ticks", "pf eff",
                "net flits");

    double base_misses = 0, base_stall = 0;
    for (const char *scheme :
         {"none", "idet", "ddet", "seq", "adaptive", "idet-la"}) {
        MachineConfig cfg;
        cfg.prefetch.scheme = parseScheme(scheme);
        apps::RunOptions opts;
        opts.scale = scale;
        obs.apply(opts, workload + "-" + scheme);
        apps::Run run = apps::runWorkload(workload, cfg, opts);
        if (!run.finished) {
            std::printf("%-10s DID NOT FINISH\n", scheme);
            return 1;
        }
        if (!run.verified) {
            std::printf("%-10s FAILED VERIFICATION\n", scheme);
            return 1;
        }
        const RunMetrics &mx = run.metrics;
        if (std::string(scheme) == "none") {
            base_misses = mx.readMisses;
            base_stall = mx.readStall;
        }
        std::printf("%-10s %8.0f (%3.0f%%) %6.0f (%3.0f%%) %12llu "
                    "%s %12.0f\n",
                    scheme, mx.readMisses,
                    100.0 * mx.readMisses / base_misses, mx.readStall,
                    100.0 * mx.readStall / base_stall,
                    static_cast<unsigned long long>(mx.execTicks),
                    fmtEff(mx.prefetchEfficiency(), 9).c_str(),
                    mx.flits);
    }
    std::printf("\nall runs verified against the native reference.\n");
    return 0;
}
