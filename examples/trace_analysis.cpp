/**
 * @file
 * Using the library's components standalone, without the full machine:
 * feed a synthetic (PC, address) reference trace through the stride
 * characterizer and through each prefetcher, and report what each
 * scheme would have detected. This is how the paper's Section 5.1
 * "application characteristics" methodology can be applied to any
 * trace a user brings.
 */

#include <cstdio>
#include <vector>

#include "core/characterizer.hh"
#include "core/ddet.hh"
#include "core/idet.hh"
#include "core/sequential.hh"
#include "sim/random.hh"

using namespace psim;

namespace
{

struct Ref
{
    Pc pc;
    Addr addr;
};

/**
 * A synthetic trace mixing the paper's regimes: a unit-stride stream
 * (LU-like), a 21-block stride stream (Water-like) and pointer-chasing
 * noise (PTHOR-like).
 */
std::vector<Ref>
makeTrace()
{
    std::vector<Ref> trace;
    Rng rng(99);
    Addr lu = 0x100000, water = 0x800000;
    for (int i = 0; i < 3000; ++i) {
        switch (i % 3) {
          case 0:
            trace.push_back({0x1000, lu});
            lu += 32;
            break;
          case 1:
            trace.push_back({0x1004, water});
            water += 672;
            break;
          case 2:
            trace.push_back({0x1008, 0x4000000 + rng.below(1 << 22)});
            break;
        }
    }
    return trace;
}

} // namespace

int
main()
{
    auto trace = makeTrace();
    std::printf("synthetic trace: %zu read misses "
                "(1/3 unit stride, 1/3 stride 21 blocks, 1/3 random)\n\n",
                trace.size());

    // 1. Characterize it (the Table 2 metrics).
    StrideCharacterizer chr(32);
    for (const Ref &r : trace)
        chr.observeMiss(r.pc, r.addr);
    auto report = chr.finalize();
    std::printf("characterizer: %.1f%% of misses in stride sequences, "
                "avg length %.1f\n",
                100.0 * report.strideFraction, report.avgSequenceLength);
    for (std::size_t i = 0; i < report.topStrides.size() && i < 3; ++i) {
        std::printf("  stride %3lld blocks: %.0f%% of stride misses\n",
                    static_cast<long long>(report.topStrides[i].first),
                    100.0 * report.topStrides[i].second);
    }

    // 2. Ask each prefetcher what it would fetch. A candidate is
    //    "covering" if a later reference in the trace touches it.
    auto evaluate = [&trace](Prefetcher &p, const char *label) {
        std::vector<Addr> out;
        std::size_t issued = 0, covering = 0;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            out.clear();
            ReadObservation obs;
            obs.pc = trace[i].pc;
            obs.addr = trace[i].addr;
            obs.hit = false;
            p.observeRead(obs, out);
            for (Addr cand : out) {
                ++issued;
                Addr blk = alignDown(cand, 32);
                for (std::size_t j = i + 1;
                     j < trace.size() && j < i + 400; ++j) {
                    if (alignDown(trace[j].addr, 32) == blk) {
                        ++covering;
                        break;
                    }
                }
            }
        }
        std::printf("%-12s issued %5zu candidates, %5zu (%.0f%%) cover "
                    "a future reference\n",
                    label, issued, covering,
                    issued ? 100.0 * covering / issued : 0.0);
    };

    std::printf("\nprefetcher candidate quality on this trace:\n");
    SequentialPrefetcher seq(32, 1);
    evaluate(seq, "sequential");
    IDetPrefetcher idet(256, 1, 32);
    evaluate(idet, "i-detection");
    DDetPrefetcher ddet(32, 1, 16, 3, 4096);
    evaluate(ddet, "d-detection");

    std::printf("\nthe stride schemes follow both streams; sequential "
                "covers only the unit-stride one.\n");
    return 0;
}
