/**
 * @file
 * Scheme shootout: run one application across prefetching schemes,
 * degrees and cache sizes from the command line -- the knobs of the
 * paper's whole evaluation in one binary.
 *
 * Usage: scheme_shootout [workload] [scale] [observability flags]
 *
 * The shared observability flags (--stats-json PREFIX and friends)
 * write per-configuration machine-readable output.
 *
 * Sweeps {baseline, i-det, d-det, seq} x degree {1,4} x SLC
 * {infinite, 16 KB} and prints a comparison grid.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/driver.hh"

using namespace psim;

/** "0.63"-style efficiency, or "—" when no prefetches were issued. */
static std::string
fmtEff(double eff, int width)
{
    char buf[32];
    if (std::isnan(eff)) // the em dash is 3 bytes, 1 display column
        std::snprintf(buf, sizeof(buf), "%*s", width + 2, "—");
    else
        std::snprintf(buf, sizeof(buf), "%*.2f", width, eff);
    return buf;
}

int
main(int argc, char **argv)
{
    std::string workload = "ocean";
    unsigned scale = 1;
    apps::ObservabilityOptions obs;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (obs.parseArg(argc, argv, &i))
            continue;
        if (positional == 0)
            workload = argv[i];
        else if (positional == 1)
            scale = static_cast<unsigned>(atoi(argv[i]));
        ++positional;
    }

    std::printf("%s (scale %u) across the paper's design space\n\n",
                workload.c_str(), scale);
    std::printf("%-9s %4s %9s | %12s %12s %10s %12s %12s\n", "scheme",
                "d", "SLC", "read misses", "read stall", "pf eff",
                "net flits", "exec ticks");

    for (unsigned slc : {0u, 16384u}) {
        for (const char *scheme : {"none", "idet", "ddet", "seq"}) {
            for (unsigned d : {1u, 4u}) {
                if (std::string(scheme) == "none" && d != 1)
                    continue;
                MachineConfig cfg;
                cfg.prefetch.scheme = parseScheme(scheme);
                cfg.prefetch.degree = d;
                cfg.slcSize = slc;
                apps::RunOptions opts;
                opts.scale = scale;
                obs.apply(opts, workload + "-" + scheme + "-d" +
                                std::to_string(d) +
                                (slc ? "-16KB" : "-inf"));
                apps::Run run = apps::runWorkload(workload, cfg, opts);
                if (!run.finished || !run.verified) {
                    std::printf("%-9s %4u %9s | FAILED\n", scheme, d,
                                slc ? "16KB" : "inf");
                    return 1;
                }
                std::printf("%-9s %4u %9s | %12.0f %12.0f %s "
                            "%12.0f %12llu\n",
                            scheme, d, slc ? "16KB" : "inf",
                            run.metrics.readMisses,
                            run.metrics.readStall,
                            fmtEff(run.metrics.prefetchEfficiency(),
                                   10).c_str(),
                            run.metrics.flits,
                            static_cast<unsigned long long>(
                                    run.metrics.execTicks));
            }
        }
        std::printf("\n");
    }
    std::printf("all runs verified against native references.\n");
    return 0;
}
