/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace psim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    Tick t = eq.run(50);
    EXPECT_EQ(t, 50u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.cancel(id);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(1, [&] { ++fired; });
    eq.run();
    eq.cancel(id); // must not crash or affect later events
    eq.schedule(eq.now() + 1, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsTimeAndEvents)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    auto a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "schedule in the past");
}
