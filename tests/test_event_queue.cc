/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "sim/event_queue.hh"

using namespace psim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    Tick t = eq.run(50);
    EXPECT_EQ(t, 50u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.cancel(id);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(1, [&] { ++fired; });
    eq.run();
    eq.cancel(id); // must not crash or affect later events
    eq.schedule(eq.now() + 1, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsTimeAndEvents)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    auto a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, CancelIsImmediatelyReflectedInPending)
{
    EventQueue eq;
    auto id = eq.schedule(10, [] {});
    EXPECT_EQ(eq.pending(), 1u);
    eq.cancel(id);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, DoubleCancelIsNoop)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.cancel(id);
    eq.cancel(id);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StaleIdDoesNotCancelSlotReuse)
{
    // A fired event's id must never cancel a later event that happens
    // to reuse its pool slot: the generation check has to reject it.
    EventQueue eq;
    int fired = 0;
    std::vector<EventQueue::EventId> old_ids;
    for (int i = 0; i < 100; ++i)
        old_ids.push_back(eq.schedule(1, [] {}));
    eq.run();
    for (int i = 0; i < 200; ++i)
        eq.schedule(eq.now() + 1, [&] { ++fired; });
    for (auto id : old_ids)
        eq.cancel(id); // stale: every slot was recycled
    eq.run();
    EXPECT_EQ(fired, 200);
}

TEST(EventQueue, InsertionOrderTiesAcrossWheelAndHeap)
{
    // Two events at the same tick, one through the overflow heap
    // (scheduled 300 out) and one through the time wheel (scheduled
    // when the tick was near): firing order is insertion order.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(1); }); // heap, seq 1
    eq.schedule(100, [&] {
        eq.schedule(300, [&] { order.push_back(2); }); // wheel, later seq
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));

    eq.reset();
    order.clear();
    eq.schedule(100, [&] {
        // Scheduled at t=100, i.e. after the heap event below was
        // inserted: it ties at tick 300 but loses the insertion-order
        // tie-break even though it sits in the faster container.
        eq.schedule(300, [&] { order.push_back(1); });
    });
    eq.schedule(300, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueue, LongAndShortDelaysInterleaveInTimeOrder)
{
    EventQueue eq;
    std::vector<Tick> fired_at;
    // Mix of wheel-horizon hits and heap residents.
    for (Tick d : {400u, 1u, 255u, 256u, 1000u, 7u, 512u, 257u})
        eq.scheduleIn(d, [&] { fired_at.push_back(eq.now()); });
    eq.run();
    std::vector<Tick> sorted = fired_at;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(fired_at, sorted);
    EXPECT_EQ(fired_at.size(), 8u);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, CancelWorksOnHeapResidents)
{
    EventQueue eq;
    int fired = 0;
    auto far = eq.scheduleIn(10000, [&] { ++fired; });
    eq.scheduleIn(20000, [&] { ++fired; });
    eq.cancel(far);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 20000u);
}

TEST(EventQueue, ManyEventsGrowThePoolTransparently)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10000; ++i)
        eq.scheduleIn(1 + static_cast<Tick>(i % 300),
                      [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 10000);
}

TEST(EventQueue, IdsFromBeforeResetAreStale)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.schedule(10, [&] { ++fired; });
    eq.reset();
    auto id2 = eq.schedule(10, [&] { ++fired; });
    eq.cancel(id); // stale generation: must not cancel id2's event
    (void)id2;
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StaleCancelsDoNotSlowLaterPops)
{
    // Regression for the seed engine's leak: cancelling an
    // already-fired id parked it in a lazy-delete list forever and
    // every subsequent pop paid a linear scan. With the generation
    // check a stale cancel is stateless, so a drain after 10k stale
    // cancels must cost the same as one before.
    using Clock = std::chrono::steady_clock;
    constexpr int kEvents = 10000;
    EventQueue eq;

    std::vector<EventQueue::EventId> ids;
    auto drain = [&](bool record) {
        int fired = 0;
        for (int i = 0; i < kEvents; ++i) {
            auto id = eq.scheduleIn(1 + static_cast<Tick>(i % 97),
                                    [&] { ++fired; });
            if (record)
                ids.push_back(id);
        }
        eq.run();
        return fired;
    };

    auto t0 = Clock::now();
    ASSERT_EQ(drain(true), kEvents);
    auto t1 = Clock::now();

    for (auto id : ids)
        eq.cancel(id); // all fired: every cancel is stale

    auto t2 = Clock::now();
    ASSERT_EQ(drain(false), kEvents);
    auto t3 = Clock::now();

    using us = std::chrono::microseconds;
    auto before = std::chrono::duration_cast<us>(t1 - t0).count();
    auto after = std::chrono::duration_cast<us>(t3 - t2).count();
    // Identical workloads; allow 10x for scheduler noise (the seed
    // engine was ~100x here and got worse with the event count).
    EXPECT_LT(after, std::max<long long>(before, 1000) * 10)
            << "pop cost grew after stale cancels: " << before << "us -> "
            << after << "us";
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "schedule in the past");
}
