/**
 * @file
 * Unit tests for Hagersten's D-detection stride prefetching.
 */

#include <gtest/gtest.h>

#include "core/ddet.hh"

using namespace psim;

namespace
{

constexpr unsigned kBlk = 32;
constexpr unsigned kEntries = 16;
constexpr unsigned kThreshold = 3;
constexpr unsigned kPage = 4096;

std::vector<Addr>
miss(DDetPrefetcher &p, Addr addr)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.addr = addr;
    obs.hit = false;
    p.observeRead(obs, out);
    return out;
}

std::vector<Addr>
taggedHit(DDetPrefetcher &p, Addr addr)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.addr = addr;
    obs.hit = true;
    obs.taggedHit = true;
    p.observeRead(obs, out);
    return out;
}

DDetPrefetcher
make(unsigned degree = 1)
{
    return DDetPrefetcher(kBlk, degree, kEntries, kThreshold, kPage);
}

} // namespace

TEST(DDet, StrideBecomesCommonAtThreshold)
{
    auto p = make();
    // Stride 64 occurs on each consecutive miss pair; threshold 3 means
    // four misses of the sequence promote it (Section 3.2).
    miss(p, 1000);
    miss(p, 1064);
    EXPECT_FALSE(p.isCommonStride(64));
    miss(p, 1128);
    EXPECT_FALSE(p.isCommonStride(64));
    miss(p, 1192);
    EXPECT_TRUE(p.isCommonStride(64));
    EXPECT_DOUBLE_EQ(p.stridesPromoted.value(), 1.0);
}

TEST(DDet, TwoMoreMissesCreateStreamAndPrefetch)
{
    auto p = make();
    miss(p, 1000);
    miss(p, 1064);
    miss(p, 1128);
    miss(p, 1192); // fourth miss: stride 64 becomes common
    EXPECT_EQ(p.numStreams(), 0u);
    // The next miss pairs with a buffered miss at the now-common
    // stride: a stream is allocated and prefetching begins (this is
    // the paper's "two additional misses" after promotion: 1192 made
    // the stride common, 1256 starts the stream).
    auto out = miss(p, 1256);
    EXPECT_EQ(p.numStreams(), 1u);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 1256u + 64u);
}

TEST(DDet, DuplicateBufferedAddressDoesNotDoubleCountStrides)
{
    auto p = make();
    // A repeated miss to one address (e.g. after an invalidation) sits
    // in the miss list twice. Pairing a later miss against both copies
    // yields the same stride twice; counting it twice per observation
    // promoted the stride one miss early (three real sequence misses
    // instead of the paper's four: promotion at 1128, not 1192).
    miss(p, 1000);
    miss(p, 1000); // duplicate: stride 0 vs itself, buffered twice
    miss(p, 1064); // stride 64 vs both 1000s — must count once
    miss(p, 1128); // stride 64 again (count 2): NOT yet common
    EXPECT_FALSE(p.isCommonStride(64));
    EXPECT_EQ(p.numStreams(), 0u);
    miss(p, 1192); // third distinct observation of 64: promoted
    EXPECT_TRUE(p.isCommonStride(64));
    EXPECT_DOUBLE_EQ(p.stridesPromoted.value(), 1.0);
    // The paper's "two additional misses": 1192 promoted the stride,
    // 1256 pairs at the now-common stride and starts the stream.
    auto out = miss(p, 1256);
    EXPECT_EQ(p.numStreams(), 1u);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 1256u + 64u);
}

TEST(DDet, PromotionDuringAnObservationDoesNotAllocateAStream)
{
    auto p = make();
    // The stride's common/frequency classification is decided before
    // any counting for the observation: the miss that promotes a
    // stride must not also allocate a stream from a later pair in the
    // same observation.
    miss(p, 1000);
    miss(p, 1064);
    miss(p, 1128);
    auto out = miss(p, 1192); // promotes 64; no stream yet
    EXPECT_TRUE(p.isCommonStride(64));
    EXPECT_EQ(p.numStreams(), 0u);
    EXPECT_TRUE(out.empty());
}

TEST(DDet, TaggedHitAdvancesStream)
{
    auto p = make();
    for (Addr a = 1000; a <= 1256; a += 64)
        miss(p, a);
    // The stream expects 1256+64 = 1320 -> block 0x528 & ~31.
    auto out = taggedHit(p, 1320);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 1320u + 64u);
}

TEST(DDet, TaggedHitWithoutStreamDoesNothing)
{
    auto p = make();
    EXPECT_TRUE(taggedHit(p, 5000).empty());
}

TEST(DDet, PlainHitDoesNothing)
{
    auto p = make();
    std::vector<Addr> out;
    ReadObservation obs;
    obs.addr = 1000;
    obs.hit = true;
    obs.taggedHit = false;
    p.observeRead(obs, out);
    EXPECT_TRUE(out.empty());
}

TEST(DDet, IgnoresZeroAndHugeStrides)
{
    auto p = make();
    for (int i = 0; i < 10; ++i) {
        miss(p, 1000);               // repeated address: stride 0
        miss(p, 1000 + kPage * 8ULL * (i + 1)); // >= page apart
    }
    EXPECT_FALSE(p.isCommonStride(0));
    EXPECT_EQ(p.numStreams(), 0u);
}

TEST(DDet, SubBlockStrideEmitsWholeBlockSteps)
{
    auto p = make();
    // Miss stream with byte stride 8 (the miss list sees every miss).
    for (Addr a = 1000; a < 1000 + 8 * 8; a += 8)
        miss(p, a);
    EXPECT_TRUE(p.isCommonStride(8));
    auto out = miss(p, 2000);
    // 2000 pairs with buffered misses; if a stream starts its prefetch
    // target must be at least one whole block away.
    for (Addr t : out)
        EXPECT_GE(t, 2000u + kBlk);
}

TEST(DDet, DegreeControlsStartBurst)
{
    auto p = make(3);
    miss(p, 1000);
    miss(p, 1064);
    miss(p, 1128);
    miss(p, 1192);
    auto out = miss(p, 1256);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 1256u + 64u);
    EXPECT_EQ(out[1], 1256u + 128u);
    EXPECT_EQ(out[2], 1256u + 192u);
}

TEST(DDet, NegativeStridesDetected)
{
    auto p = make();
    for (Addr a = 8000; a >= 8000 - 64 * 4; a -= 64)
        miss(p, a);
    EXPECT_TRUE(p.isCommonStride(-64));
}

TEST(DDet, MissPredictedByStreamKeepsItAlive)
{
    auto p = make();
    for (Addr a = 1000; a <= 1256; a += 64)
        miss(p, a);
    ASSERT_GE(p.numStreams(), 1u);
    // The next miss is exactly what the stream expected (the prefetch
    // was late); the stream restarts prefetching from there.
    auto out = miss(p, 1320);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 1320u + 64u);
}

TEST(DDet, FrequencyTableEvictsLru)
{
    auto p = make();
    // Touch more distinct strides than the table holds; none promoted.
    for (unsigned i = 1; i <= kEntries + 4; ++i) {
        miss(p, 100000u + i * 7919u); // irregular addresses
    }
    EXPECT_DOUBLE_EQ(p.stridesPromoted.value(), 0.0);
}

TEST(DDet, InterleavedStreamsBothDetected)
{
    auto p = make();
    // Two interleaved stride sequences (different bases and strides).
    Addr a = 10000, b = 500000;
    for (int i = 0; i < 6; ++i) {
        miss(p, a);
        miss(p, b);
        a += 96;
        b += 160;
    }
    EXPECT_TRUE(p.isCommonStride(96));
    EXPECT_TRUE(p.isCommonStride(160));
}
