/**
 * @file
 * Integration tests of prefetching in the full machine: miss coverage
 * on streaming patterns, the 1-bit tagged-block mechanism, the
 * page-boundary rule, drop filtering, and non-binding semantics under
 * invalidations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness.hh"

using namespace psim;
using namespace psim::test;

namespace
{

Addr
pageBase(const MachineConfig &cfg, unsigned page)
{
    return 0x10000000ULL + static_cast<Addr>(page) * cfg.pageSize;
}

/** Stream linearly through [base, base+bytes) with the given stride. */
Task
streamReads(apps::ThreadCtx &ctx, Addr base, unsigned bytes,
            unsigned stride, unsigned think)
{
    for (Addr a = base; a < base + bytes; a += stride) {
        co_await ctx.read<double>(a);
        co_await ctx.think(think);
    }
}

MachineConfig
soloCfg(PrefetchScheme scheme)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.prefetch.scheme = scheme;
    return cfg;
}

struct StreamResult
{
    double misses;
    double issued;
    double useful;
    double pageDrops;
    double inCacheDrops;
};

StreamResult
runStream(PrefetchScheme scheme, unsigned bytes, unsigned stride,
          unsigned think = 40)
{
    MachineConfig cfg = soloCfg(scheme);
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 0);
    sys.run(0, streamReads(sys.ctx(0), base, bytes, stride, think));
    EXPECT_TRUE(sys.finish());
    sys.m.checkCoherenceInvariants();
    const Slc &slc = sys.m.node(0).slc();
    return StreamResult{slc.demandReadMisses.value(),
                        slc.pfIssued.value(), slc.usefulPrefetches(),
                        slc.pfDropPageCross.value(),
                        slc.pfDropInCache.value()};
}

/** Sum of the terminal-fate buckets; must equal pfIssued at quiesce. */
double
accountedFates(const Slc &slc)
{
    return slc.pfUsefulTagged.value() + slc.pfUsefulLate.value() +
           slc.pfWriteHitTagged.value() +
           slc.pfUselessInvalidated.value() +
           slc.pfUselessReplaced.value() + slc.pfAgedUnused.value() +
           slc.pfUselessUnused.value();
}

} // namespace

TEST(PrefetchIntegration, BaselineIssuesNoPrefetches)
{
    auto r = runStream(PrefetchScheme::None, 4096, 8);
    EXPECT_DOUBLE_EQ(r.issued, 0.0);
    EXPECT_DOUBLE_EQ(r.misses, 4096.0 / 32.0); // one miss per block
}

TEST(PrefetchIntegration, SequentialCoversAUnitStrideStream)
{
    auto base = runStream(PrefetchScheme::None, 4096, 8);
    auto seq = runStream(PrefetchScheme::Sequential, 4096, 8);
    EXPECT_GT(seq.issued, 0.0);
    // Nearly every block after the first is covered.
    EXPECT_LT(seq.misses, base.misses * 0.15);
    EXPECT_GT(seq.useful / seq.issued, 0.85);
}

TEST(PrefetchIntegration, IDetCoversAUnitStrideStream)
{
    auto base = runStream(PrefetchScheme::None, 4096, 8);
    auto idet = runStream(PrefetchScheme::IDet, 4096, 8);
    EXPECT_LT(idet.misses, base.misses * 0.25);
    EXPECT_GT(idet.useful / idet.issued, 0.85);
}

TEST(PrefetchIntegration, IDetCoversALargeStrideStream)
{
    // Stride of 672 bytes (Water's 21 blocks): sequential prefetching
    // fetches dead blocks here, I-detection follows the stride.
    auto base = runStream(PrefetchScheme::None, 65536, 672);
    auto idet = runStream(PrefetchScheme::IDet, 65536, 672);
    auto seq = runStream(PrefetchScheme::Sequential, 65536, 672);
    EXPECT_LT(idet.misses, base.misses * 0.35);
    // Sequential prefetching cannot remove these misses...
    EXPECT_GT(seq.misses, base.misses * 0.8);
    // ...and its prefetches are mostly useless.
    EXPECT_LT(seq.useful / seq.issued, 0.2);
}

TEST(PrefetchIntegration, DDetCoversAStrideStreamAfterDetection)
{
    auto base = runStream(PrefetchScheme::None, 65536, 672);
    auto ddet = runStream(PrefetchScheme::DDet, 65536, 672);
    EXPECT_LT(ddet.misses, base.misses * 0.5);
}

TEST(PrefetchIntegration, NoPrefetchAcrossPageBoundary)
{
    // Stream across 4 pages: every prefetch candidate that would leave
    // the triggering access's page must be dropped.
    for (auto scheme : {PrefetchScheme::Sequential, PrefetchScheme::IDet,
                        PrefetchScheme::DDet}) {
        MachineConfig cfg = soloCfg(scheme);
        MiniSystem sys(cfg);
        Addr base = pageBase(cfg, 0);
        sys.run(0, streamReads(sys.ctx(0), base, 4 * cfg.pageSize, 32,
                               40));
        ASSERT_TRUE(sys.finish());
        const Slc &slc = sys.m.node(0).slc();
        EXPECT_GE(slc.pfDropPageCross.value(), 3.0)
                << "scheme " << static_cast<int>(scheme);
        // The first block of every page after the first is always a
        // demand miss (prefetching may not cross into it).
        EXPECT_GE(slc.demandReadMisses.value(), 4.0);
    }
}

TEST(PrefetchIntegration, CachedBlocksAreNotPrefetched)
{
    MachineConfig cfg = soloCfg(PrefetchScheme::Sequential);
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 0);
    auto t = [](apps::ThreadCtx &ctx, Addr b) -> Task {
        // Demand-read the even blocks (each miss prefetches the odd
        // block after it), then read the odd blocks: those tagged hits
        // ask for the even blocks, which are already cached, so the
        // candidates must be dropped rather than sent.
        for (Addr a = b; a < b + 2048; a += 64) {
            co_await ctx.read<double>(a);
            co_await ctx.think(60);
        }
        for (Addr a = b + 32; a < b + 2048; a += 64) {
            co_await ctx.read<double>(a);
            co_await ctx.think(60);
        }
    };
    sys.run(0, t(sys.ctx(0), base));
    ASSERT_TRUE(sys.finish());
    EXPECT_GT(sys.m.node(0).slc().pfDropInCache.value(), 0.0);
}

TEST(PrefetchIntegration, PrefetchedBlocksAreNonBinding)
{
    // Node 0 prefetches into a stream; node 1 then writes one of the
    // prefetched blocks before node 0 reaches it. Node 0 must see the
    // new value: the prefetch is non-binding.
    MachineConfig cfg = soloCfg(PrefetchScheme::Sequential);
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 0);
    Addr bar = pageBase(cfg, 1);
    Addr target = base + 8 * 32; // block 8 of the stream

    apps::ThreadCtx ctx0(sys.m, 0, 2), ctx1(sys.m, 1, 2);
    auto consumer = [](apps::ThreadCtx &ctx, Addr b, Addr t,
                       Addr bb) -> Task {
        // Start the stream so blocks ahead get prefetched.
        for (Addr a = b; a < b + 4 * 32; a += 32) {
            co_await ctx.read<double>(a);
            co_await ctx.think(30);
        }
        co_await ctx.barrier(bb); // writer strikes here
        co_await ctx.barrier(bb);
        double v = co_await ctx.read<double>(t);
        EXPECT_DOUBLE_EQ(v, 99.0) << "stale prefetched data observed";
    };
    auto writer = [](apps::ThreadCtx &ctx, Addr t, Addr bb) -> Task {
        co_await ctx.barrier(bb);
        co_await ctx.write<double>(t, 99.0);
        co_await ctx.barrier(bb); // release
    };
    sys.run(0, consumer(ctx0, base, target, bar));
    sys.run(1, writer(ctx1, target, bar));
    ASSERT_TRUE(sys.finish());
    sys.m.checkCoherenceInvariants();
}

TEST(PrefetchIntegration, TaggedHitAccountingBalances)
{
    MachineConfig cfg = soloCfg(PrefetchScheme::Sequential);
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 0);
    sys.run(0, streamReads(sys.ctx(0), base, 4096, 32, 40));
    ASSERT_TRUE(sys.finish());
    const Slc &slc = sys.m.node(0).slc();
    // Every issued prefetch ends in exactly one bucket by the end of
    // the run (the machine is quiescent).
    EXPECT_DOUBLE_EQ(accountedFates(slc), slc.pfIssued.value());
}

TEST(PrefetchIntegration, BaselineEfficiencyIsNaN)
{
    // 0 useful out of 0 issued is not an efficiency of 1.0 -- the
    // baseline must not look like a flawless prefetcher.
    MachineConfig cfg = soloCfg(PrefetchScheme::None);
    MiniSystem sys(cfg);
    sys.run(0, streamReads(sys.ctx(0), pageBase(cfg, 0), 1024, 32, 40));
    ASSERT_TRUE(sys.finish());
    const Slc &slc = sys.m.node(0).slc();
    EXPECT_DOUBLE_EQ(slc.pfIssued.value(), 0.0);
    EXPECT_TRUE(std::isnan(slc.prefetchEfficiency()));
}

TEST(PrefetchIntegration, AgedPrefetchesGetASingleFate)
{
    // Adaptive prefetching with a stream that never touches the
    // prefetched blocks: read every other block, so each miss fetches
    // an intermediate block that goes stale in the aging ring. Those
    // blocks must end up in pfAgedUnused -- and only there; before the
    // fix they were counted aged AND again at the end of the run.
    MachineConfig cfg = soloCfg(PrefetchScheme::Adaptive);
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 0);
    sys.run(0, streamReads(sys.ctx(0), base, 8192, 64, 40));
    ASSERT_TRUE(sys.finish());
    const Slc &slc = sys.m.node(0).slc();
    EXPECT_GT(slc.pfAgedUnused.value(), 0.0);
    EXPECT_DOUBLE_EQ(accountedFates(slc), slc.pfIssued.value());
}

TEST(PrefetchIntegration, UpgradesDoNotConsumeSlwbSlots)
{
    // An upgrade MSHR buffers no data -- it waits for an ack -- so it
    // must not count against the SLWB entry budget. With a 3-entry
    // SLWB, an in-flight upgrade plus a demand miss used to trip the
    // reserve rule and drop the miss's prefetch; the unified occupancy
    // rule keeps the slot available.
    MachineConfig cfg = soloCfg(PrefetchScheme::Sequential);
    cfg.slwbEntries = 3;
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1); // page 1: home is node 1, so the
                               // upgrade ack takes a mesh round trip
    auto t = [](apps::ThreadCtx &ctx, Addr x) -> Task {
        co_await ctx.read<double>(x); // miss; prefetches x+32
        co_await ctx.think(100);      // both fills complete
        co_await ctx.write<double>(x, 1.0); // shared -> upgrade in flight
        co_await ctx.read<double>(x + 64);  // miss while upgrade pending
        co_await ctx.think(200);
    };
    sys.run(0, t(sys.ctx(0), x));
    ASSERT_TRUE(sys.finish());
    const Slc &slc = sys.m.node(0).slc();
    EXPECT_GE(slc.upgrades.value(), 1.0);
    EXPECT_GE(slc.pfIssued.value(), 2.0);
    EXPECT_DOUBLE_EQ(slc.pfDropNoSlot.value(), 0.0);
}

TEST(PrefetchIntegration, FiniteSlcStillBenefitsFromPrefetching)
{
    MachineConfig base_cfg = soloCfg(PrefetchScheme::None);
    base_cfg.slcSize = 16384; // the paper's Section 5.3 SLC
    MachineConfig pf_cfg = base_cfg;
    pf_cfg.prefetch.scheme = PrefetchScheme::Sequential;

    double misses[2];
    int i = 0;
    for (const auto &cfg : {base_cfg, pf_cfg}) {
        auto t = [](apps::ThreadCtx &ctx, Addr bb) -> Task {
            // Two sweeps over 64 KB: far larger than the SLC, so the
            // second sweep is all replacement misses.
            for (int pass = 0; pass < 2; ++pass) {
                for (Addr a = bb; a < bb + 65536; a += 32) {
                    co_await ctx.read<double>(a);
                    co_await ctx.think(40);
                }
            }
        };
        MiniSystem s(cfg);
        s.run(0, t(s.ctx(0), pageBase(cfg, 0)));
        ASSERT_TRUE(s.finish());
        misses[i++] = s.m.node(0).slc().demandReadMisses.value();
    }
    EXPECT_LT(misses[1], misses[0] * 0.2)
            << "sequential prefetching must cover replacement misses";
}

TEST(PrefetchIntegration, DescendingStreamsAreCovered)
{
    // Negative strides: I-detection must follow a descending column
    // scan just as well as an ascending one.
    MachineConfig cfg = soloCfg(PrefetchScheme::IDet);
    MiniSystem sys(cfg);
    Addr top = pageBase(cfg, 0) + 4064; // last block of the page
    auto t = [](apps::ThreadCtx &ctx, Addr start) -> Task {
        for (Addr a = start; a >= start - 96 * 32; a -= 32) {
            co_await ctx.read<double>(a);
            co_await ctx.think(40);
        }
    };
    // Start high enough inside a page that the whole stream fits.
    MachineConfig big = cfg;
    big.pageSize = 16384;
    MiniSystem sys2(big);
    Addr start = 0x10000000 + 16384 - 32;
    sys2.run(0, t(sys2.ctx(0), start));
    ASSERT_TRUE(sys2.finish());
    const Slc &slc = sys2.m.node(0).slc();
    EXPECT_LT(slc.demandReadMisses.value(), 97 * 0.3);
    EXPECT_GT(slc.prefetchEfficiency(), 0.8);
    (void)sys;
    (void)top;
}

// ---- pushCandidate edge cases ----

namespace
{

/** Exposes the protected candidate filter for direct testing. */
struct PushProbe : Prefetcher
{
    void
    observeRead(const ReadObservation &, std::vector<Addr> &) override
    {
    }

    const char *name() const override { return "probe"; }

    using Prefetcher::pushCandidate;
};

} // namespace

TEST(PushCandidate, Int64MinOffsetDoesNotOverflowNegation)
{
    PushProbe p;
    std::vector<Addr> out;
    // Negating INT64_MIN is UB if done naively; the magnitude 2^63
    // must still compare correctly against the base.
    p.pushCandidate(0x1000, std::numeric_limits<std::int64_t>::min(),
            out);
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(p.candidatesWrapped.value(), 1.0);

    // A base of exactly 2^63 makes the full down-stride legal.
    p.pushCandidate(static_cast<Addr>(1) << 63,
            std::numeric_limits<std::int64_t>::min(), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0u);
    EXPECT_DOUBLE_EQ(p.candidatesWrapped.value(), 1.0);
}

TEST(PushCandidate, ZeroBaseDropsAnyDownStride)
{
    PushProbe p;
    std::vector<Addr> out;
    p.pushCandidate(0, -1, out);
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(p.candidatesWrapped.value(), 1.0);

    p.pushCandidate(0, 0, out);
    p.pushCandidate(0, 32, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 32u);
}

TEST(PushCandidate, TopOfAddressSpaceDropsAnyUpStride)
{
    PushProbe p;
    std::vector<Addr> out;
    const Addr top = std::numeric_limits<Addr>::max();
    p.pushCandidate(top, 1, out);
    p.pushCandidate(top, std::numeric_limits<std::int64_t>::max(), out);
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(p.candidatesWrapped.value(), 2.0);

    p.pushCandidate(top, 0, out);
    p.pushCandidate(top, -32, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], top);
    EXPECT_EQ(out[1], top - 32);
}
