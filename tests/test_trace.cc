/**
 * @file
 * Unit and integration tests for trace capture and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <random>
#include <string>

#include "apps/driver.hh"
#include "trace/trace.hh"

using namespace psim;

namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(Trace, RoundTripsRecords)
{
    std::string path = tmpPath("roundtrip.psimtrace");
    std::vector<TraceRecord> in;
    for (int i = 0; i < 100; ++i) {
        TraceRecord r;
        r.tick = static_cast<Tick>(i * 7);
        r.pc = 0x1000 + i * 4;
        r.addr = 0x10000000ULL + i * 32;
        r.node = static_cast<NodeId>(i % 16);
        r.kind = i % 3 ? TraceRecord::Kind::Read
                       : TraceRecord::Kind::Write;
        r.hit = i % 2;
        in.push_back(r);
    }
    {
        TraceWriter w(path);
        for (const auto &r : in)
            w.append(r);
        w.close();
        EXPECT_EQ(w.count(), 100u);
    }
    auto out = TraceReader::readAll(path);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_TRUE(out[i] == in[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(Trace, EmptyTraceIsValid)
{
    std::string path = tmpPath("empty.psimtrace");
    {
        TraceWriter w(path);
        w.close();
    }
    auto out = TraceReader::readAll(path);
    EXPECT_TRUE(out.empty());
    std::remove(path.c_str());
}

TEST(Trace, WriterClosesOnDestruction)
{
    std::string path = tmpPath("dtor.psimtrace");
    {
        TraceWriter w(path);
        TraceRecord r;
        r.addr = 42;
        w.append(r);
        // no explicit close
    }
    auto out = TraceReader::readAll(path);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 42u);
    std::remove(path.c_str());
}

TEST(Trace, CapturesAFullWorkloadRun)
{
    std::string path = tmpPath("lu.psimtrace");
    MachineConfig cfg;
    cfg.numProcs = 4;

    Machine machine(cfg);
    auto wl = apps::makeWorkload("lu");
    TraceWriter writer(path);
    machine.enableTracing(writer);
    wl->attach(machine);
    machine.run();
    ASSERT_TRUE(machine.allFinished());
    EXPECT_TRUE(wl->verify(machine));
    writer.close();

    // The trace must contain exactly the requests the SLCs saw.
    double slc_reads = 0, slc_writes = 0;
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        slc_reads += machine.node(n).slc().demandReads.value();
        slc_writes += machine.node(n).slc().writeRequests.value();
    }
    auto records = TraceReader::readAll(path);
    std::uint64_t reads = 0, writes = 0, misses = 0;
    for (const auto &r : records) {
        if (r.kind == TraceRecord::Kind::Read) {
            ++reads;
            if (!r.hit)
                ++misses;
        } else {
            ++writes;
        }
    }
    EXPECT_DOUBLE_EQ(static_cast<double>(reads), slc_reads);
    EXPECT_DOUBLE_EQ(static_cast<double>(writes), slc_writes);
    EXPECT_GT(misses, 0u);

    // Ticks are non-decreasing per node.
    std::map<NodeId, Tick> last;
    for (const auto &r : records) {
        auto it = last.find(r.node);
        if (it != last.end()) {
            EXPECT_GE(r.tick, it->second);
        }
        last[r.node] = r.tick;
    }
    std::remove(path.c_str());
}

// Property test: any record round-trips bit-exactly through the
// little-endian v2 serialization (seeded, so failures reproduce).
TEST(Trace, RoundTripsRandomRecords)
{
    std::string path = tmpPath("random.psimtrace");
    std::mt19937_64 rng(0xC0FFEEULL);
    std::vector<TraceRecord> in;
    for (int i = 0; i < 4096; ++i) {
        TraceRecord r;
        r.tick = rng();
        r.pc = rng();
        r.addr = rng();
        r.node = static_cast<NodeId>(rng() & 0xFFFFFFFFu);
        r.kind = rng() & 1 ? TraceRecord::Kind::Read
                           : TraceRecord::Kind::Write;
        r.hit = rng() & 1;
        in.push_back(r);
    }
    {
        TraceWriter w(path);
        for (const auto &r : in)
            w.append(r);
        w.close();
    }
    auto out = TraceReader::readAll(path);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        ASSERT_TRUE(out[i] == in[i]) << "record " << i;
    std::remove(path.c_str());
}

// Golden-bytes fixture: the v2 encoding of one known record, written
// out byte by byte. If serialization ever silently changes (field
// order, width, endianness), this fails on every host — including the
// little-endian ones where a host-endian bug would otherwise hide.
TEST(Trace, GoldenBytesMatchTheDocumentedFormat)
{
    std::string path = tmpPath("golden.psimtrace");
    TraceRecord r;
    r.tick = 0x0102030405060708ULL;
    r.pc = 0x1112131415161718ULL;
    r.addr = 0x2122232425262728ULL;
    r.node = 0x31323334u;
    r.kind = TraceRecord::Kind::Write;
    r.hit = true;
    {
        TraceWriter w(path);
        w.append(r);
        w.close();
    }

    const unsigned char expected[64] = {
        // header: magic "KRTMISP\0" = 0x505349'4d54524b little-endian
        0x4b, 0x52, 0x54, 0x4d, 0x49, 0x53, 0x50, 0x00,
        0x02, 0x00, 0x00, 0x00,             // version 2
        0x00, 0x00, 0x00, 0x00,             // reserved
        0x01, 0, 0, 0, 0, 0, 0, 0,          // count 1
        // record: tick, pc, addr (8 bytes each, little-endian)
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
        0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11,
        0x28, 0x27, 0x26, 0x25, 0x24, 0x23, 0x22, 0x21,
        0x34, 0x33, 0x32, 0x31,             // node
        0x01,                               // kind = Write
        0x01,                               // hit
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0,       // padding
    };
    std::string bytes = readFileBytes(path);
    ASSERT_EQ(bytes.size(), sizeof(expected));
    EXPECT_EQ(std::memcmp(bytes.data(), expected, sizeof(expected)), 0);

    TraceReader reader(path);
    EXPECT_EQ(reader.version(), 2u);
    TraceRecord back;
    ASSERT_TRUE(reader.next(back));
    EXPECT_TRUE(back == r);
    std::remove(path.c_str());
}

// Version-1 compatibility: v1 files were raw little-endian structs with
// the same layout, so the reader must still accept them (this build
// only writes v2).
TEST(Trace, ReadsVersion1Files)
{
    std::string path = tmpPath("v1.psimtrace");
    std::string bytes = readFileBytes([&] {
        std::string tmp = tmpPath("v1src.psimtrace");
        TraceWriter w(tmp);
        TraceRecord r;
        r.tick = 77;
        r.pc = 0xAB;
        r.addr = 0x1000;
        r.node = 3;
        r.kind = TraceRecord::Kind::Read;
        r.hit = false;
        w.append(r);
        w.close();
        return tmp;
    }());
    bytes[8] = 1; // patch the version field down to 1
    writeFileBytes(path, bytes);

    TraceReader reader(path);
    EXPECT_EQ(reader.version(), 1u);
    TraceRecord back;
    ASSERT_TRUE(reader.next(back));
    EXPECT_EQ(back.tick, 77u);
    EXPECT_EQ(back.addr, 0x1000u);
    EXPECT_EQ(back.node, 3u);
    std::remove(path.c_str());
    std::remove(tmpPath("v1src.psimtrace").c_str());
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader r("/nonexistent/file.trace"),
            ::testing::ExitedWithCode(1), "cannot open trace");
}

TEST(TraceDeath, GarbageFileIsFatal)
{
    std::string path = tmpPath("garbage.psimtrace");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all, not even close";
    }
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
            "not a psim trace");
    std::remove(path.c_str());
}

namespace
{

/** A closed 10-record capture, returned as raw bytes. */
std::string
captureBytes(const char *name)
{
    std::string path = tmpPath(name);
    {
        TraceWriter w(path);
        for (int i = 0; i < 10; ++i) {
            TraceRecord r;
            r.tick = static_cast<Tick>(i);
            r.addr = 0x1000u + 32u * static_cast<Addr>(i);
            w.append(r);
        }
        w.close();
    }
    std::string bytes = readFileBytes(path);
    std::remove(path.c_str());
    return bytes;
}

} // namespace

TEST(TraceDeath, TruncatedCaptureIsFatal)
{
    std::string path = tmpPath("truncated.psimtrace");
    std::string bytes = captureBytes("truncated-src.psimtrace");
    writeFileBytes(path, bytes.substr(0, bytes.size() - 25));
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
            "truncated capture");
    std::remove(path.c_str());
}

TEST(TraceDeath, UnclosedCaptureIsFatal)
{
    // A writer that died before close() leaves header count == 0 with a
    // non-empty body; that must not read back as an empty trace.
    std::string path = tmpPath("unclosed.psimtrace");
    std::string bytes = captureBytes("unclosed-src.psimtrace");
    for (int i = 16; i < 24; ++i)
        bytes[i] = 0;
    writeFileBytes(path, bytes);
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
            "writer died before close");
    std::remove(path.c_str());
}

TEST(TraceDeath, ZeroLengthFileIsFatal)
{
    std::string path = tmpPath("zerolen.psimtrace");
    writeFileBytes(path, "");
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
            "truncated before the header");
    std::remove(path.c_str());
}

TEST(TraceDeath, ZeroLengthFileIsFatalEvenWithSalvage)
{
    // --salvage recovers records, but a zero-length file has none to
    // recover: it must still die with the truncation diagnostic, not
    // read back as a valid empty trace.
    std::string path = tmpPath("zerolen-salvage.psimtrace");
    writeFileBytes(path, "");
    EXPECT_EXIT(TraceReader r(path, /*salvage=*/true),
            ::testing::ExitedWithCode(1),
            "truncated before the header");
    std::remove(path.c_str());
}

TEST(TraceDeath, SubHeaderFileIsFatal)
{
    // A few bytes of valid magic but less than a full header.
    std::string path = tmpPath("subheader.psimtrace");
    std::string bytes = captureBytes("subheader-src.psimtrace");
    writeFileBytes(path, bytes.substr(0, 13));
    EXPECT_EXIT(TraceReader r(path, /*salvage=*/true),
            ::testing::ExitedWithCode(1),
            "truncated before the header");
    std::remove(path.c_str());
}

TEST(TraceDeath, HeaderOnlySalvageIsFatal)
{
    // Salvaging a header-only capture recovers zero records; silently
    // succeeding would let a pipeline mistake that for a good recovery.
    std::string path = tmpPath("hdronly.psimtrace");
    std::string bytes = captureBytes("hdronly-src.psimtrace");
    writeFileBytes(path, bytes.substr(0, 24));
    EXPECT_EXIT(TraceReader r(path, /*salvage=*/true),
            ::testing::ExitedWithCode(1),
            "salvage recovered no records");
    std::remove(path.c_str());
}

TEST(Trace, HeaderOnlyClosedCaptureIsAValidEmptyTrace)
{
    // Without --salvage a properly closed empty capture (header count
    // 0, no body) stays valid: emptiness was intentional there.
    std::string path = tmpPath("hdronly-plain.psimtrace");
    std::string bytes = captureBytes("hdronly-plain-src.psimtrace");
    bytes = bytes.substr(0, 24);
    for (int i = 16; i < 24; ++i)
        bytes[i] = 0;
    writeFileBytes(path, bytes);
    auto records = TraceReader::readAll(path);
    EXPECT_TRUE(records.empty());
    std::remove(path.c_str());
}

TEST(Trace, SalvageRecoversUnclosedCapture)
{
    std::string path = tmpPath("salvage.psimtrace");
    std::string bytes = captureBytes("salvage-src.psimtrace");
    for (int i = 16; i < 24; ++i)
        bytes[i] = 0;
    // Also tear the last record in half (writer killed mid-write).
    writeFileBytes(path, bytes.substr(0, bytes.size() - 20));

    auto records = TraceReader::readAll(path, /*salvage=*/true);
    ASSERT_EQ(records.size(), 9u); // the torn 10th record is dropped
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].addr, 0x1000u + 32u * i);
    std::remove(path.c_str());
}
