/**
 * @file
 * Unit and integration tests for trace capture and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "apps/driver.hh"
#include "trace/trace.hh"

using namespace psim;

namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

} // namespace

TEST(Trace, RoundTripsRecords)
{
    std::string path = tmpPath("roundtrip.psimtrace");
    std::vector<TraceRecord> in;
    for (int i = 0; i < 100; ++i) {
        TraceRecord r;
        r.tick = static_cast<Tick>(i * 7);
        r.pc = 0x1000 + i * 4;
        r.addr = 0x10000000ULL + i * 32;
        r.node = static_cast<NodeId>(i % 16);
        r.kind = i % 3 ? TraceRecord::Kind::Read
                       : TraceRecord::Kind::Write;
        r.hit = i % 2;
        in.push_back(r);
    }
    {
        TraceWriter w(path);
        for (const auto &r : in)
            w.append(r);
        w.close();
        EXPECT_EQ(w.count(), 100u);
    }
    auto out = TraceReader::readAll(path);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_TRUE(out[i] == in[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(Trace, EmptyTraceIsValid)
{
    std::string path = tmpPath("empty.psimtrace");
    {
        TraceWriter w(path);
        w.close();
    }
    auto out = TraceReader::readAll(path);
    EXPECT_TRUE(out.empty());
    std::remove(path.c_str());
}

TEST(Trace, WriterClosesOnDestruction)
{
    std::string path = tmpPath("dtor.psimtrace");
    {
        TraceWriter w(path);
        TraceRecord r;
        r.addr = 42;
        w.append(r);
        // no explicit close
    }
    auto out = TraceReader::readAll(path);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 42u);
    std::remove(path.c_str());
}

TEST(Trace, CapturesAFullWorkloadRun)
{
    std::string path = tmpPath("lu.psimtrace");
    MachineConfig cfg;
    cfg.numProcs = 4;

    Machine machine(cfg);
    auto wl = apps::makeWorkload("lu");
    TraceWriter writer(path);
    machine.enableTracing(writer);
    wl->attach(machine);
    machine.run();
    ASSERT_TRUE(machine.allFinished());
    EXPECT_TRUE(wl->verify(machine));
    writer.close();

    // The trace must contain exactly the requests the SLCs saw.
    double slc_reads = 0, slc_writes = 0;
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        slc_reads += machine.node(n).slc().demandReads.value();
        slc_writes += machine.node(n).slc().writeRequests.value();
    }
    auto records = TraceReader::readAll(path);
    std::uint64_t reads = 0, writes = 0, misses = 0;
    for (const auto &r : records) {
        if (r.kind == TraceRecord::Kind::Read) {
            ++reads;
            if (!r.hit)
                ++misses;
        } else {
            ++writes;
        }
    }
    EXPECT_DOUBLE_EQ(static_cast<double>(reads), slc_reads);
    EXPECT_DOUBLE_EQ(static_cast<double>(writes), slc_writes);
    EXPECT_GT(misses, 0u);

    // Ticks are non-decreasing per node.
    std::map<NodeId, Tick> last;
    for (const auto &r : records) {
        auto it = last.find(r.node);
        if (it != last.end()) {
            EXPECT_GE(r.tick, it->second);
        }
        last[r.node] = r.tick;
    }
    std::remove(path.c_str());
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader r("/nonexistent/file.trace"),
            ::testing::ExitedWithCode(1), "cannot open trace");
}

TEST(TraceDeath, GarbageFileIsFatal)
{
    std::string path = tmpPath("garbage.psimtrace");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all, not even close";
    }
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
            "not a psim trace");
    std::remove(path.c_str());
}
