/**
 * @file
 * Directed tests of the full-map write-invalidate directory protocol,
 * release consistency, and the memory-side synchronization primitives,
 * driven end-to-end through real processor/cache models.
 */

#include <gtest/gtest.h>

#include "harness.hh"
#include "mem/mem_ctrl.hh"

using namespace psim;
using namespace psim::test;

namespace
{

MachineConfig
quadCfg()
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.meshCols = 4; // 4x1 mesh
    return cfg;
}

Addr
pageBase(const MachineConfig &cfg, unsigned page)
{
    return 0x10000000ULL + static_cast<Addr>(page) * cfg.pageSize;
}

} // namespace

TEST(Protocol, ReadSharingBuildsPresenceBits)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1); // homed at node 1
    sys.m.store().store<double>(x, 7.5);

    auto reader = [](apps::ThreadCtx &ctx, Addr a) -> Task {
        double v = co_await ctx.read<double>(a);
        EXPECT_DOUBLE_EQ(v, 7.5);
    };
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, reader(sys.ctx(n), x));
    ASSERT_TRUE(sys.finish());

    auto snap = sys.m.node(1).mem().snapshot(cfg.blockAddr(x));
    EXPECT_EQ(snap.st, MemCtrl::DirSnapshot::St::Clean);
    EXPECT_EQ(snap.presence, 0xFu);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(sys.m.node(n).slc().stateOf(cfg.blockAddr(x)),
                  CohState::Shared);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, WriteInvalidatesAllSharers)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1);
    Addr bar = pageBase(cfg, 2);
    sys.m.store().store<double>(x, 1.0);

    auto thread = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.read<double>(a); // everyone shares the block
        co_await ctx.barrier(b);
        if (ctx.tid() == 0)
            co_await ctx.write<double>(a, 2.0);
        // The second barrier is a release: node 0's write must be
        // globally performed before anyone passes it.
        co_await ctx.barrier(b);
        double v = co_await ctx.read<double>(a);
        EXPECT_DOUBLE_EQ(v, 2.0);
    };
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, thread(sys.ctx(n), x, bar));
    ASSERT_TRUE(sys.finish());

    // After the final reads the block is clean-shared again.
    auto snap = sys.m.node(1).mem().snapshot(cfg.blockAddr(x));
    EXPECT_EQ(snap.st, MemCtrl::DirSnapshot::St::Clean);
    EXPECT_GE(sys.m.node(1).mem().invalidationsSent.value(), 3.0);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, UpgradePathForSharedWriteHit)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1);

    auto thread = [](apps::ThreadCtx &ctx, Addr a) -> Task {
        co_await ctx.read<double>(a);   // S copy
        co_await ctx.write<double>(a, 3.0); // upgrade, not ReadEx
    };
    sys.run(0, thread(sys.ctx(0), x));
    ASSERT_TRUE(sys.finish());

    EXPECT_DOUBLE_EQ(sys.m.node(0).slc().upgrades.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.m.node(0).slc().writeMisses.value(), 0.0);
    EXPECT_EQ(sys.m.node(0).slc().stateOf(cfg.blockAddr(x)),
              CohState::Modified);
    auto snap = sys.m.node(1).mem().snapshot(cfg.blockAddr(x));
    EXPECT_EQ(snap.st, MemCtrl::DirSnapshot::St::Dirty);
    EXPECT_EQ(snap.owner, 0u);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, DirtyRemoteReadDowngradesOwner)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 2); // homed at node 2
    Addr bar = pageBase(cfg, 3);

    apps::ThreadCtx ctx0(sys.m, 0, 2), ctx1(sys.m, 1, 2);
    auto writer = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.write<double>(a, 9.25);
        co_await ctx.barrier(b);
    };
    auto reader = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.barrier(b);
        double v = co_await ctx.read<double>(a);
        EXPECT_DOUBLE_EQ(v, 9.25);
    };
    sys.run(1, writer(ctx1, x, bar));
    sys.run(0, reader(ctx0, x, bar));
    ASSERT_TRUE(sys.finish());

    EXPECT_EQ(sys.m.node(1).slc().stateOf(cfg.blockAddr(x)),
              CohState::Shared) << "owner downgraded by the fetch";
    EXPECT_EQ(sys.m.node(0).slc().stateOf(cfg.blockAddr(x)),
              CohState::Shared);
    auto snap = sys.m.node(2).mem().snapshot(cfg.blockAddr(x));
    EXPECT_EQ(snap.st, MemCtrl::DirSnapshot::St::Clean);
    EXPECT_EQ(snap.presence, 0x3u);
    EXPECT_DOUBLE_EQ(sys.m.node(2).mem().fetchesSent.value(), 1.0);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, WriteMissOnDirtyBlockInvalidatesOwner)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 2);
    Addr bar = pageBase(cfg, 3);

    apps::ThreadCtx ctx0(sys.m, 0, 2), ctx1(sys.m, 1, 2);
    auto first = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.write<double>(a, 1.0);
        co_await ctx.barrier(b);
    };
    auto second = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.barrier(b);
        co_await ctx.write<double>(a, 2.0);
        // Force completion before the task ends: a release.
        co_await ctx.barrier(b);
    };
    // The first thread participates in both barriers.
    auto first2 = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.write<double>(a, 1.0);
        co_await ctx.barrier(b);
        co_await ctx.barrier(b);
    };
    (void)first;
    sys.run(1, first2(ctx1, x, bar));
    sys.run(0, second(ctx0, x, bar));
    ASSERT_TRUE(sys.finish());

    EXPECT_EQ(sys.m.node(1).slc().stateOf(cfg.blockAddr(x)),
              CohState::Invalid);
    EXPECT_EQ(sys.m.node(0).slc().stateOf(cfg.blockAddr(x)),
              CohState::Modified);
    EXPECT_DOUBLE_EQ(sys.m.store().load<double>(x), 2.0);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, ConcurrentUpgradesSerializeToOneOwner)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1);
    Addr bar = pageBase(cfg, 3);

    auto thread = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.read<double>(a); // everyone S
        co_await ctx.barrier(b);
        co_await ctx.write<double>(a, 5.0); // all upgrade at once
        co_await ctx.barrier(b);
    };
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, thread(sys.ctx(n), x, bar));
    ASSERT_TRUE(sys.finish());

    // Exactly one Modified copy; directory agrees; value correct.
    unsigned modified = 0;
    for (NodeId n = 0; n < 4; ++n) {
        if (sys.m.node(n).slc().stateOf(cfg.blockAddr(x)) ==
            CohState::Modified) {
            ++modified;
        }
    }
    EXPECT_EQ(modified, 1u);
    EXPECT_DOUBLE_EQ(sys.m.store().load<double>(x), 5.0);
    // At least one upgrade lost its copy mid-flight and was converted.
    EXPECT_GE(sys.m.node(1).mem().convertedUpgrades.value(), 1.0);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, LockProvidesMutualExclusion)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr counter = pageBase(cfg, 1);
    Addr lock = pageBase(cfg, 2);

    auto thread = [](apps::ThreadCtx &ctx, Addr cnt, Addr lk) -> Task {
        for (int i = 0; i < 25; ++i) {
            co_await ctx.lock(lk);
            double v = co_await ctx.read<double>(cnt);
            co_await ctx.write<double>(cnt, v + 1.0);
            co_await ctx.unlock(lk);
        }
    };
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, thread(sys.ctx(n), counter, lock));
    ASSERT_TRUE(sys.finish());

    EXPECT_DOUBLE_EQ(sys.m.store().load<double>(counter), 100.0);
    EXPECT_DOUBLE_EQ(sys.m.node(cfg.homeOf(lock)).mem()
                             .locks().requests.value(), 100.0);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, BarrierIsAReleaseFence)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr flags = pageBase(cfg, 1);
    Addr bar = pageBase(cfg, 2);

    // Every node publishes a flag, crosses the barrier, and must then
    // observe every other node's flag.
    auto thread = [](apps::ThreadCtx &ctx, Addr f, Addr b) -> Task {
        co_await ctx.write<double>(f + ctx.tid() * 8, 1.0);
        co_await ctx.barrier(b);
        for (unsigned other = 0; other < ctx.nthreads(); ++other) {
            double v = co_await ctx.read<double>(f + other * 8);
            EXPECT_DOUBLE_EQ(v, 1.0) << "node " << ctx.tid()
                                     << " missed flag " << other;
        }
    };
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, thread(sys.ctx(n), flags, bar));
    ASSERT_TRUE(sys.finish());
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, FiniteSlcWritebackUpdatesHome)
{
    MachineConfig cfg = quadCfg();
    cfg.slcSize = 1024; // tiny: 32 blocks, conflict-heavy
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 0); // homed at node 0
    // Same SLC set as x: one conflicting block 1024 bytes away.
    Addr conflict = x + 1024;

    auto thread = [](apps::ThreadCtx &ctx, Addr a, Addr c) -> Task {
        co_await ctx.write<double>(a, 6.5); // M in SLC
        co_await ctx.read<double>(c);       // evicts a -> writeback
        double v = co_await ctx.read<double>(a); // re-fetch from home
        EXPECT_DOUBLE_EQ(v, 6.5);
    };
    sys.run(0, thread(sys.ctx(0), x, conflict));
    ASSERT_TRUE(sys.finish());

    EXPECT_GE(sys.m.node(0).slc().writebacks.value(), 1.0);
    EXPECT_GE(sys.m.node(0).mem().writebacksRecv.value(), 1.0);
    EXPECT_GE(sys.m.node(0).slc().missesReplacement.value(), 1.0);
    sys.m.checkCoherenceInvariants();
}

TEST(Protocol, ColdCoherenceReplacementClassification)
{
    MachineConfig cfg = quadCfg();
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1);
    Addr bar = pageBase(cfg, 3);

    apps::ThreadCtx ctx0(sys.m, 0, 2), ctx1(sys.m, 1, 2);
    auto reader = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.read<double>(a); // cold miss
        co_await ctx.barrier(b);
        co_await ctx.barrier(b); // writer invalidates in between
        co_await ctx.read<double>(a); // coherence miss
    };
    auto writer = [](apps::ThreadCtx &ctx, Addr a, Addr b) -> Task {
        co_await ctx.barrier(b);
        co_await ctx.write<double>(a, 1.0);
        co_await ctx.barrier(b); // release: write performed
    };
    sys.run(0, reader(ctx0, x, bar));
    sys.run(1, writer(ctx1, x, bar));
    ASSERT_TRUE(sys.finish());

    EXPECT_DOUBLE_EQ(sys.m.node(0).slc().missesCold.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.m.node(0).slc().missesCoherence.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.m.node(0).slc().missesReplacement.value(), 0.0);
}
