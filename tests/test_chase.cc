/**
 * @file
 * Unit tests for the pointer-chase prefetcher: the live-heap envelope,
 * raw-pointer chasing, the chase-depth bound, and the indirect-index
 * pattern table (self-chase and producer/consumer shapes).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/chase.hh"

using namespace psim;

namespace
{

constexpr unsigned kBlock = 32;

/** A 32-byte content block with u32 words written at given offsets. */
struct Block
{
    std::uint8_t bytes[kBlock] = {};

    Block &
    u32(unsigned off, std::uint32_t v)
    {
        std::memcpy(bytes + off, &v, sizeof(v));
        return *this;
    }

    Block &
    u64(unsigned off, std::uint64_t v)
    {
        std::memcpy(bytes + off, &v, sizeof(v));
        return *this;
    }
};

ChasePrefetcher
makeChase(unsigned depth)
{
    return ChasePrefetcher(kBlock, depth, 64, nullptr);
}

/** Demand miss with no content: grows the envelope, trains learning. */
void
demand(ChasePrefetcher &pf, Pc pc, Addr addr)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = pc;
    obs.addr = addr;
    pf.observeRead(obs, out);
}

/** Demand hit carrying the block's content view. */
std::vector<Addr>
hitWithContent(ChasePrefetcher &pf, Pc pc, Addr addr, const Block &b)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = pc;
    obs.addr = addr;
    obs.hit = true;
    obs.content = b.bytes;
    obs.contentLen = kBlock;
    pf.observeRead(obs, out);
    return out;
}

/** Synthesized fill of a block no demand has touched yet. */
std::vector<Addr>
prefetchFill(ChasePrefetcher &pf, Pc pc, Addr addr, const Block &b)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = pc;
    obs.addr = addr;
    obs.fill = true;
    obs.prefetchFill = true;
    obs.content = b.bytes;
    obs.contentLen = kBlock;
    pf.observeRead(obs, out);
    return out;
}

// PCs chosen to map to distinct pattern-table slots (index = (pc>>2)%64).
constexpr Pc kEnvPc = 0x2000;  // slot 0
constexpr Pc kLoadPc = 0x104;  // slot 1
constexpr Pc kProdPc = 0x208;  // slot 2

} // namespace

TEST(Chase, RawPointerInsideEnvelopeIsChased)
{
    ChasePrefetcher pf = makeChase(2);
    demand(pf, kEnvPc, 0x40000);
    demand(pf, kEnvPc, 0x50000);

    Block b;
    b.u64(0, 0x48000); // 8-aligned, inside [0x40000, 0x50008)
    auto out = hitWithContent(pf, kLoadPc, 0x40000, b);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x48000u);
    EXPECT_DOUBLE_EQ(pf.rawCandidates.value(), 1.0);
}

TEST(Chase, ValuesOutsideEnvelopeAreNotPointers)
{
    ChasePrefetcher pf = makeChase(2);
    demand(pf, kEnvPc, 0x40000);
    demand(pf, kEnvPc, 0x50000);

    Block b;
    b.u64(0, 0x60000);  // above the envelope
    b.u64(8, 0x48001);  // inside but unaligned
    b.u64(16, 0x40010); // own block: self-pointer, skipped
    auto out = hitWithContent(pf, kLoadPc, 0x40000, b);
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(pf.rawCandidates.value(), 0.0);
}

TEST(Chase, DepthBoundClipsChains)
{
    // chaseDepth 1: only content of demand-touched blocks may chase;
    // a prefetched block's content (depth 1) is already at the bound.
    ChasePrefetcher pf = makeChase(1);
    demand(pf, kEnvPc, 0x40000);
    demand(pf, kEnvPc, 0x50000);

    Block b;
    b.u64(0, 0x49000);
    auto out = prefetchFill(pf, kLoadPc, 0x48000, b);
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(pf.depthClipped.value(), 1.0);
}

TEST(Chase, DepthTwoFollowsOneExtraHop)
{
    ChasePrefetcher pf = makeChase(2);
    demand(pf, kEnvPc, 0x40000);
    demand(pf, kEnvPc, 0x50000);

    // Hop 1: a fresh prefetch's content points at 0x49000 -> chased.
    Block b1;
    b1.u64(0, 0x49000);
    auto out = prefetchFill(pf, kLoadPc, 0x48000, b1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x49000u);

    // Hop 2: the chased block's own fill arrives at depth 2 -> clipped.
    Block b2;
    b2.u64(0, 0x4A000);
    out = prefetchFill(pf, kLoadPc, 0x49000, b2);
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(pf.depthClipped.value(), 1.0);

    // A demand touch re-anchors the chain at depth 0: the same block's
    // content chases again.
    demand(pf, kLoadPc, 0x49000);
    out = prefetchFill(pf, kLoadPc, 0x49000, b2);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x4A000u);
}

TEST(Chase, LearnsSelfChasePattern)
{
    // Intrusive list over 4-byte-indexed records at base 0x40000: each
    // record stores the next index at byte offset 4.
    ChasePrefetcher pf = makeChase(2);
    demand(pf, kEnvPc, 0x40000);
    demand(pf, kEnvPc, 0x70000);

    // Record 1's content names index 0x100; the next miss lands at
    // base + (0x100 << 2): first hypothesis installs.
    Block r1;
    r1.u32(4, 0x100);
    hitWithContent(pf, kLoadPc, 0x50000, r1);
    demand(pf, kLoadPc, 0x40000 + (0x100u << 2));
    ASSERT_NE(pf.lookup(kLoadPc), nullptr);
    EXPECT_EQ(pf.lookup(kLoadPc)->conf, 1u);

    // A second (value, miss) pair with the same base confirms it.
    Block r2;
    r2.u32(4, 0x200);
    hitWithContent(pf, kLoadPc, 0x50020, r2);
    demand(pf, kLoadPc, 0x40000 + (0x200u << 2));
    const ChasePrefetcher::Pattern *p = pf.lookup(kLoadPc);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(p->conf, ChasePrefetcher::kLearned);
    EXPECT_EQ(p->base, 0x40000u);
    EXPECT_EQ(p->shift, 2u);
    EXPECT_EQ(p->srcPc, kLoadPc);
    EXPECT_EQ(p->srcOff, 4u);
    EXPECT_DOUBLE_EQ(pf.patternsLearned.value(), 1.0);

    // Confirmed: the next record read prefetches its successor straight
    // from the link field.
    Block r3;
    r3.u32(4, 0x300);
    auto out = hitWithContent(pf, kLoadPc, 0x50040, r3);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x40000u + (0x300u << 2));
    EXPECT_DOUBLE_EQ(pf.indirectCandidates.value(), 1.0);
}

TEST(Chase, ProducerConsumerBanksAndSpends)
{
    // BFS shape: one load streams an index array (producer), another
    // consumes data[idx << 2] (consumer).
    ChasePrefetcher pf = makeChase(2);
    demand(pf, kEnvPc, 0x40000);
    demand(pf, kEnvPc, 0x70000);

    // Learn: producer content supplies the value, consumer misses at
    // base + (value << 2).
    Block i1;
    i1.u32(0, 0x400);
    hitWithContent(pf, kProdPc, 0x60000, i1);
    demand(pf, kLoadPc, 0x40000 + (0x400u << 2));
    Block i2;
    i2.u32(0, 0x500);
    hitWithContent(pf, kProdPc, 0x60020, i2);
    demand(pf, kLoadPc, 0x40000 + (0x500u << 2));

    const ChasePrefetcher::Pattern *p = pf.lookup(kLoadPc);
    ASSERT_NE(p, nullptr);
    ASSERT_GE(p->conf, ChasePrefetcher::kLearned);
    EXPECT_EQ(p->srcPc, kProdPc);

    // A fresh producer block banks its indices without emitting: the
    // candidates must land from the consumer's trigger to clear the
    // SLC's same-page filter.
    Block i3;
    i3.u32(0, 0x600).u32(4, 0x610);
    auto out = hitWithContent(pf, kProdPc, 0x60040, i3);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.lookup(kLoadPc)->npending, 2u);

    // The consumer's next reference spends every banked index.
    std::vector<Addr> spend;
    ReadObservation trig;
    trig.pc = kLoadPc;
    trig.addr = 0x40000 + (0x600u << 2);
    pf.observeRead(trig, spend);
    ASSERT_EQ(spend.size(), 2u);
    EXPECT_EQ(spend[0], 0x40000u + (0x600u << 2));
    EXPECT_EQ(spend[1], 0x40000u + (0x610u << 2));
    EXPECT_EQ(pf.lookup(kLoadPc)->npending, 0u);
}
