/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace psim::stats;

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s = 7;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(Average, TracksMeanMinMaxCount)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(9);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 15.0);
}

TEST(Average, SingleSampleIsMinAndMax)
{
    Average a;
    a.sample(-3);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), -3.0);
    EXPECT_DOUBLE_EQ(a.mean(), -3.0);
}

TEST(Histogram, CountsAndDominantKey)
{
    Histogram h;
    h.sample(1, 3);
    h.sample(21, 7);
    h.sample(1, 2);
    EXPECT_EQ(h.total(), 12u);
    EXPECT_EQ(h.count(1), 5u);
    EXPECT_EQ(h.count(21), 7u);
    EXPECT_EQ(h.count(99), 0u);
    EXPECT_EQ(h.dominantKey(), 21);
    EXPECT_DOUBLE_EQ(h.fraction(21), 7.0 / 12.0);
}

TEST(Histogram, EmptyHistogramIsSafe)
{
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.dominantKey(), 0);
    EXPECT_DOUBLE_EQ(h.fraction(5), 0.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_TRUE(h.buckets().empty());
}

TEST(Group, DumpsRegisteredStats)
{
    Scalar s;
    s = 42;
    Average a;
    a.sample(10);
    Histogram h;
    h.sample(21, 2);

    Group g("test.group");
    g.addScalar("answer", &s, "the answer");
    g.addAverage("lat", &a, "latency");
    g.addHistogram("strides", &h, "stride histogram");

    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("test.group.answer"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("test.group.lat.mean"), std::string::npos);
    EXPECT_NE(out.find("test.group.strides[21]"), std::string::npos);
    EXPECT_NE(out.find("# the answer"), std::string::npos);
}
