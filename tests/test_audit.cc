/**
 * @file
 * The invariant-audit subsystem under fire: random mixed traffic on
 * every prefetching scheme with the audit enabled. The audit itself is
 * the oracle -- a lifecycle or coherence violation panics the run --
 * and the test re-asserts the conservation law from the outside.
 * Also unit tests for the address-wraparound guard in candidate
 * generation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/idet.hh"
#include "core/sequential.hh"
#include "harness.hh"
#include "sim/audit.hh"

using namespace psim;
using namespace psim::test;

namespace
{

Addr
pageBase(const MachineConfig &cfg, unsigned page)
{
    return 0x10000000ULL + static_cast<Addr>(page) * cfg.pageSize;
}

/**
 * One node's share of the chaos: a deterministic pseudo-random mix of
 * reads and writes over a shared region, a lock-protected counter
 * bump every 32 ops, and a closing barrier. Exercises prefetch
 * issue/merge/invalidate/replace, upgrades, SLWB pressure, the lock
 * controller and the barrier -- everything the audit watches.
 */
Task
chaos(apps::ThreadCtx &ctx, NodeId me, Addr region, unsigned blocks,
      unsigned ops, Addr lock, Addr counter, Addr bar)
{
    std::uint64_t lcg = 0x9e3779b97f4a7c15ULL * (me + 1);
    for (unsigned i = 0; i < ops; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        Addr a = region + ((lcg >> 33) % blocks) * 32;
        if ((lcg >> 13) & 1) {
            co_await ctx.write<std::uint64_t>(a, i);
        } else {
            co_await ctx.read<std::uint64_t>(a);
        }
        if (i % 32 == 31) {
            co_await ctx.lock(lock);
            std::uint64_t v = co_await ctx.read<std::uint64_t>(counter);
            co_await ctx.write<std::uint64_t>(counter, v + 1);
            co_await ctx.unlock(lock);
        }
        co_await ctx.think(1 + ((lcg >> 40) % 50));
    }
    co_await ctx.barrier(bar);
}

double
accountedFates(const Slc &slc)
{
    return slc.pfUsefulTagged.value() + slc.pfUsefulLate.value() +
           slc.pfWriteHitTagged.value() +
           slc.pfUselessInvalidated.value() +
           slc.pfUselessReplaced.value() + slc.pfAgedUnused.value() +
           slc.pfUselessUnused.value();
}

struct AuditParams
{
    PrefetchScheme scheme;
    unsigned slcSize; // 0 = infinite
};

} // namespace

class AuditChaos : public ::testing::TestWithParam<AuditParams>
{
};

TEST_P(AuditChaos, RandomTrafficPassesTheAudit)
{
    if (!audit::compiledIn())
        GTEST_SKIP() << "built with PSIM_AUDIT=OFF";
    AuditParams p = GetParam();
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.audit = true;
    cfg.prefetch.scheme = p.scheme;
    cfg.slcSize = p.slcSize;

    MiniSystem sys(cfg);
    constexpr unsigned kBlocks = 128; // 4 KB shared region
    Addr region = pageBase(cfg, 0);
    Addr lock = pageBase(cfg, 20);
    Addr counter = pageBase(cfg, 21);
    Addr bar = pageBase(cfg, 22);
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        sys.run(n, chaos(sys.ctx(n), n, region, kBlocks, 400, lock,
                         counter, bar));
    }
    // Machine::run() executes the audit's finalize pass at quiesce:
    // any unsealed prefetch, fate/stat mismatch, message imbalance or
    // held lock panics before we get here.
    ASSERT_TRUE(sys.finish(50000000)) << "machine deadlocked";
    sys.m.checkCoherenceInvariants();

    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        const Slc &slc = sys.m.node(n).slc();
        EXPECT_DOUBLE_EQ(accountedFates(slc), slc.pfIssued.value())
                << "node " << n;
    }
    // The lock-protected counter saw every increment.
    EXPECT_EQ(sys.m.store().load<std::uint64_t>(counter),
              cfg.numProcs * (400 / 32));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AuditChaos,
        ::testing::Values(
                AuditParams{PrefetchScheme::None, 0},
                AuditParams{PrefetchScheme::Sequential, 0},
                AuditParams{PrefetchScheme::Sequential, 2048},
                AuditParams{PrefetchScheme::IDet, 0},
                AuditParams{PrefetchScheme::IDet, 2048},
                AuditParams{PrefetchScheme::DDet, 2048},
                AuditParams{PrefetchScheme::Adaptive, 0},
                AuditParams{PrefetchScheme::Adaptive, 2048},
                AuditParams{PrefetchScheme::IDetLookahead, 2048}));

TEST(WrapGuard, SequentialNearTopOfAddressSpace)
{
    // A degree-4 miss at the top of the address space: only the first
    // candidate fits; the other three would wrap to tiny addresses.
    SequentialPrefetcher pf(32, 4);
    Addr blk = std::numeric_limits<Addr>::max() - 63; // last-but-one blk
    std::vector<Addr> out;
    pf.observeRead(ReadObservation{0x100, blk, false, false}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], blk + 32);
    EXPECT_DOUBLE_EQ(pf.candidatesWrapped.value(), 3.0);
}

TEST(WrapGuard, IDetDownStrideBelowZero)
{
    // A descending stride sequence approaching address 0: candidates
    // below zero must be dropped, not wrapped to ~2^64 addresses.
    IDetPrefetcher pf(256, 2, 32);
    std::vector<Addr> out;
    // Train stride -32: misses at 80, 48 (detects), 16 (steady).
    pf.observeRead(ReadObservation{0x200, 80, false, false}, out);
    EXPECT_TRUE(out.empty());
    pf.observeRead(ReadObservation{0x200, 48, false, false}, out);
    // Transient with stride -32: degree-2 candidates 16 and -16; the
    // second wraps and is dropped.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 16u);
    EXPECT_DOUBLE_EQ(pf.candidatesWrapped.value(), 1.0);
    out.clear();
    pf.observeRead(ReadObservation{0x200, 16, false, false}, out);
    // Steady at 16: both continuations (-16 and -48) wrap.
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(pf.candidatesWrapped.value(), 3.0);
}

TEST(WrapGuard, NoWrapOnOrdinaryStrides)
{
    SequentialPrefetcher pf(32, 8);
    std::vector<Addr> out;
    pf.observeRead(ReadObservation{0x100, 0x10000000, false, false},
                   out);
    EXPECT_EQ(out.size(), 8u);
    EXPECT_DOUBLE_EQ(pf.candidatesWrapped.value(), 0.0);
}
