/**
 * @file
 * Unit tests for the generic cache tag/state array.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

using namespace psim;

namespace
{
constexpr unsigned kBlk = 32;
}

TEST(CacheArray, InfiniteModeNeverEvicts)
{
    CacheArray c(0, 1, kBlk);
    ASSERT_TRUE(c.infinite());
    for (Addr a = 0; a < 10000 * kBlk; a += kBlk) {
        CacheBlk *f = c.findVictim(a);
        EXPECT_FALSE(f->valid()); // never a victim with data
        c.fill(f, a, CohState::Shared, 0);
    }
    EXPECT_EQ(c.numValid(), 10000u);
    EXPECT_NE(c.find(0), nullptr);
    EXPECT_NE(c.find(9999 * kBlk), nullptr);
}

TEST(CacheArray, FindMissesAbsentBlock)
{
    CacheArray c(1024, 1, kBlk);
    EXPECT_EQ(c.find(0x100), nullptr);
}

TEST(CacheArray, DirectMappedConflict)
{
    CacheArray c(1024, 1, kBlk); // 32 sets
    Addr a = 0;
    Addr b = 1024; // same set, different tag
    c.fill(c.findVictim(a), a, CohState::Shared, 0);
    EXPECT_NE(c.find(a), nullptr);

    CacheBlk *victim = c.findVictim(b);
    EXPECT_TRUE(victim->valid());
    EXPECT_EQ(victim->addr, a); // a must be the victim
    c.fill(victim, b, CohState::Modified, 1);
    EXPECT_EQ(c.find(a), nullptr);
    ASSERT_NE(c.find(b), nullptr);
    EXPECT_EQ(c.find(b)->state, CohState::Modified);
}

TEST(CacheArray, SetAssociativeLruEviction)
{
    CacheArray c(4 * kBlk, 4, kBlk); // one set, 4 ways
    Addr addrs[4] = {0, kBlk, 2 * kBlk, 3 * kBlk};
    for (int i = 0; i < 4; ++i)
        c.fill(c.findVictim(addrs[i]), addrs[i], CohState::Shared,
               static_cast<Tick>(i));

    // Touch block 0 so block 1 becomes LRU.
    c.touch(c.find(addrs[0]), 10);

    Addr fresh = 4 * kBlk;
    CacheBlk *victim = c.findVictim(fresh);
    ASSERT_TRUE(victim->valid());
    EXPECT_EQ(victim->addr, addrs[1]);
}

TEST(CacheArray, InvalidateFreesFrame)
{
    CacheArray c(1024, 1, kBlk);
    c.fill(c.findVictim(0), 0, CohState::Shared, 0);
    CacheBlk *blk = c.find(0);
    ASSERT_NE(blk, nullptr);
    blk->prefetched = true;
    c.invalidate(blk);
    EXPECT_EQ(c.find(0), nullptr);
    EXPECT_FALSE(blk->prefetched) << "invalidate must clear the tag bit";

    CacheBlk *f = c.findVictim(0);
    EXPECT_FALSE(f->valid());
}

TEST(CacheArray, FillClearsPrefetchBit)
{
    CacheArray c(0, 1, kBlk);
    CacheBlk *f = c.findVictim(64);
    f->prefetched = true;
    c.fill(f, 64, CohState::Shared, 5);
    EXPECT_FALSE(f->prefetched);
    EXPECT_EQ(f->lastUse, 5u);
}

TEST(CacheArray, ForEachVisitsOnlyValid)
{
    CacheArray c(1024, 2, kBlk);
    c.fill(c.findVictim(0), 0, CohState::Shared, 0);
    c.fill(c.findVictim(kBlk), kBlk, CohState::Modified, 0);
    c.invalidate(c.find(0));

    unsigned count = 0;
    c.forEach([&](const CacheBlk &blk) {
        ++count;
        EXPECT_EQ(blk.addr, kBlk);
    });
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(c.numValid(), 1u);
}

TEST(CacheArray, SixteenKbDirectMappedGeometry)
{
    // The paper's finite SLC: 16 KB direct-mapped, 32 B blocks.
    CacheArray c(16384, 1, kBlk);
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_EQ(c.assoc(), 1u);
    // Blocks 16 KB apart collide.
    c.fill(c.findVictim(0x0), 0x0, CohState::Shared, 0);
    CacheBlk *v = c.findVictim(0x4000);
    EXPECT_TRUE(v->valid());
    EXPECT_EQ(v->addr, 0x0u);
}
