/**
 * @file
 * Unit tests for sequential prefetching (Section 3.4) and the null
 * (baseline) prefetcher.
 */

#include <gtest/gtest.h>

#include "core/prefetcher.hh"
#include "core/sequential.hh"

using namespace psim;

namespace
{

std::vector<Addr>
observe(Prefetcher &p, Addr addr, bool hit, bool tagged, Pc pc = 0x100)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = pc;
    obs.addr = addr;
    obs.hit = hit;
    obs.taggedHit = tagged;
    p.observeRead(obs, out);
    return out;
}

} // namespace

TEST(Sequential, MissPrefetchesNextDBlocks)
{
    SequentialPrefetcher p(32, 3);
    auto out = observe(p, 0x1008, false, false);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 0x1020u);
    EXPECT_EQ(out[1], 0x1040u);
    EXPECT_EQ(out[2], 0x1060u);
}

TEST(Sequential, DegreeOnePrefetchesOneBlock)
{
    SequentialPrefetcher p(32, 1);
    auto out = observe(p, 0x2000, false, false);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x2020u);
}

TEST(Sequential, TaggedHitPrefetchesDBlocksAhead)
{
    SequentialPrefetcher p(32, 2);
    auto out = observe(p, 0x3010, true, true);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x3040u); // block(0x3010) + d blocks
}

TEST(Sequential, PlainHitPrefetchesNothing)
{
    SequentialPrefetcher p(32, 4);
    EXPECT_TRUE(observe(p, 0x3000, true, false).empty());
}

TEST(Sequential, IgnoresPcEntirely)
{
    SequentialPrefetcher p(32, 1);
    auto a = observe(p, 0x1000, false, false, 0x10);
    auto b = observe(p, 0x1000, false, false, 0x20);
    EXPECT_EQ(a, b);
}

TEST(Sequential, IsStatelessAcrossObservations)
{
    SequentialPrefetcher p(32, 1);
    observe(p, 0x9000, false, false);
    auto out = observe(p, 0x1000, false, false);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1020u);
}

TEST(NullPrefetcher, NeverPrefetches)
{
    NullPrefetcher p;
    EXPECT_TRUE(observe(p, 0x1000, false, false).empty());
    EXPECT_TRUE(observe(p, 0x1000, true, true).empty());
    EXPECT_STREQ(p.name(), "baseline");
}

TEST(PrefetcherFactory, BuildsConfiguredScheme)
{
    MachineConfig cfg;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;
    EXPECT_STREQ(Prefetcher::create(cfg)->name(), "seq");
    cfg.prefetch.scheme = PrefetchScheme::IDet;
    EXPECT_STREQ(Prefetcher::create(cfg)->name(), "i-det");
    cfg.prefetch.scheme = PrefetchScheme::DDet;
    EXPECT_STREQ(Prefetcher::create(cfg)->name(), "d-det");
    cfg.prefetch.scheme = PrefetchScheme::None;
    EXPECT_STREQ(Prefetcher::create(cfg)->name(), "baseline");
}

// The I-det prefetcher end-to-end on an 8-byte-stride stream as the SLC
// would present it after FLC filtering (one access per block).
#include "core/idet.hh"

TEST(IDet, BlockStrideStreamPrefetchesNextBlock)
{
    IDetPrefetcher p(256, 1, 32);
    EXPECT_TRUE(observe(p, 0x1000, false, false).empty()); // alloc
    auto out = observe(p, 0x1020, false, false); // stride 32 detected
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1040u);
    // Tagged hit continues the chain one block further.
    out = observe(p, 0x1040, true, true);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1060u);
}

TEST(IDet, SubBlockStrideAdvancesWholeBlocks)
{
    IDetPrefetcher p(256, 1, 32);
    observe(p, 0x1000, false, false);
    auto out = observe(p, 0x1008, false, false); // stride 8 bytes
    ASSERT_EQ(out.size(), 1u);
    // Sub-block strides round up to one whole block.
    EXPECT_EQ(out[0], 0x1028u);
}

TEST(IDet, LargeStridePrefetchesFarBlock)
{
    IDetPrefetcher p(256, 1, 32);
    observe(p, 0x10000, false, false);
    auto out = observe(p, 0x102A0, false, false); // stride 672 = 21 blocks
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x102A0u + 672u);
}

TEST(IDet, DegreePrefetchesDStridesOnRestart)
{
    IDetPrefetcher p(256, 4, 32);
    observe(p, 0x1000, false, false);
    auto out = observe(p, 0x1040, false, false); // stride 64
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 0x1080u);
    EXPECT_EQ(out[3], 0x1140u);
}

TEST(IDet, NoPrefetchAfterThreeMisses)
{
    IDetPrefetcher p(256, 1, 32);
    observe(p, 1000, false, false);
    observe(p, 2000, false, false);
    observe(p, 9000, false, false);  // incorrect -> transient
    observe(p, 30000, false, false); // incorrect -> no-pref
    auto out = observe(p, 70000, false, false);
    EXPECT_TRUE(out.empty()) << "no-pref state must not prefetch";
}

TEST(IDet, PlainUntaggedHitDoesNotPrefetch)
{
    IDetPrefetcher p(256, 1, 32);
    observe(p, 0x1000, false, false);
    observe(p, 0x1020, false, false);
    auto out = observe(p, 0x1040, true, false);
    EXPECT_TRUE(out.empty());
}
