/**
 * @file
 * Unit tests for the functional backing store.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

using namespace psim;

TEST(BackingStore, UntouchedMemoryReadsZero)
{
    BackingStore bs;
    EXPECT_EQ(bs.load<std::uint64_t>(0x1000), 0u);
    EXPECT_DOUBLE_EQ(bs.load<double>(0x2000), 0.0);
}

TEST(BackingStore, RoundTripsTypedValues)
{
    BackingStore bs;
    bs.store<double>(0x100, 3.25);
    bs.store<std::uint32_t>(0x108, 0xdeadbeef);
    bs.store<std::uint8_t>(0x10c, 7);
    EXPECT_DOUBLE_EQ(bs.load<double>(0x100), 3.25);
    EXPECT_EQ(bs.load<std::uint32_t>(0x108), 0xdeadbeefu);
    EXPECT_EQ(bs.load<std::uint8_t>(0x10c), 7u);
}

TEST(BackingStore, NeighbouringWritesDoNotClobber)
{
    BackingStore bs;
    bs.store<std::uint64_t>(0x0, ~0ULL);
    bs.store<std::uint64_t>(0x8, 0x1122334455667788ULL);
    EXPECT_EQ(bs.load<std::uint64_t>(0x0), ~0ULL);
    EXPECT_EQ(bs.load<std::uint64_t>(0x8), 0x1122334455667788ULL);
}

TEST(BackingStore, PagesAreIndependent)
{
    BackingStore bs(4096);
    bs.store<std::uint64_t>(0x0FF8, 1); // last word of page 0
    bs.store<std::uint64_t>(0x1000, 2); // first word of page 1
    EXPECT_EQ(bs.load<std::uint64_t>(0x0FF8), 1u);
    EXPECT_EQ(bs.load<std::uint64_t>(0x1000), 2u);
}

TEST(BackingStore, RawReadWrite)
{
    BackingStore bs;
    const char msg[] = "hello";
    bs.write(0x500, msg, sizeof(msg));
    char out[sizeof(msg)];
    bs.read(0x500, out, sizeof(out));
    EXPECT_STREQ(out, "hello");
}

TEST(BackingStore, SparsePagesDoNotInterfere)
{
    BackingStore bs;
    bs.store<double>(0x10000000, 1.5);
    bs.store<double>(0x90000000, 2.5);
    EXPECT_DOUBLE_EQ(bs.load<double>(0x10000000), 1.5);
    EXPECT_DOUBLE_EQ(bs.load<double>(0x90000000), 2.5);
}

TEST(BackingStoreDeath, MisalignedAccessPanics)
{
    BackingStore bs;
    EXPECT_DEATH(bs.load<double>(0x101), "misaligned");
    EXPECT_DEATH(bs.store<std::uint32_t>(0x102, 1), "misaligned");
}
