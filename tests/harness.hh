/**
 * @file
 * Shared test harness: a machine plus hand-written coroutine threads.
 */

#ifndef PSIM_TESTS_HARNESS_HH
#define PSIM_TESTS_HARNESS_HH

#include <memory>
#include <vector>

#include "apps/ctx.hh"
#include "sys/machine.hh"

namespace psim::test
{

/** A machine whose threads are written inline in the test body. */
struct MiniSystem
{
    explicit MiniSystem(const MachineConfig &cfg) : m(cfg)
    {
        for (NodeId n = 0; n < cfg.numProcs; ++n) {
            ctxs.push_back(std::make_unique<apps::ThreadCtx>(
                    m, n, cfg.numProcs));
        }
    }

    apps::ThreadCtx &ctx(NodeId n) { return *ctxs.at(n); }

    /** Bind a thread to node @p n. */
    void
    run(NodeId n, Task t)
    {
        m.bindProgram(n, std::move(t));
    }

    /** Run to completion; returns false if the time limit was hit. */
    bool
    finish(Tick limit = 10000000)
    {
        m.run(limit);
        return m.allFinished();
    }

    Machine m;
    std::vector<std::unique_ptr<apps::ThreadCtx>> ctxs;
};

} // namespace psim::test

#endif // PSIM_TESTS_HARNESS_HH
