/**
 * @file
 * Unit tests for the memory-side queue-based lock and barrier
 * controllers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "proto/lock_ctrl.hh"

using namespace psim;

namespace
{

struct LockHarness
{
    std::vector<std::pair<NodeId, Addr>> grants;
    LockCtrl locks{[this](NodeId n, Addr a) { grants.emplace_back(n, a); }};
};

struct BarrierHarness
{
    std::vector<NodeId> released;
    BarrierCtrl barrier{[this](NodeId n, Addr) { released.push_back(n); }};
};

} // namespace

TEST(LockCtrl, FreeLockGrantsImmediately)
{
    LockHarness h;
    h.locks.request(3, 0x100);
    ASSERT_EQ(h.grants.size(), 1u);
    EXPECT_EQ(h.grants[0].first, 3u);
    EXPECT_TRUE(h.locks.isHeld(0x100));
}

TEST(LockCtrl, ContendersQueueInFifoOrder)
{
    LockHarness h;
    h.locks.request(0, 0x100);
    h.locks.request(1, 0x100);
    h.locks.request(2, 0x100);
    ASSERT_EQ(h.grants.size(), 1u);

    h.locks.release(0, 0x100);
    ASSERT_EQ(h.grants.size(), 2u);
    EXPECT_EQ(h.grants[1].first, 1u);

    h.locks.release(1, 0x100);
    ASSERT_EQ(h.grants.size(), 3u);
    EXPECT_EQ(h.grants[2].first, 2u);

    h.locks.release(2, 0x100);
    EXPECT_FALSE(h.locks.isHeld(0x100));
}

TEST(LockCtrl, DistinctAddressesAreIndependentLocks)
{
    LockHarness h;
    h.locks.request(0, 0x100);
    h.locks.request(1, 0x200);
    EXPECT_EQ(h.grants.size(), 2u);
}

TEST(LockCtrl, ReacquireAfterRelease)
{
    LockHarness h;
    h.locks.request(0, 0x100);
    h.locks.release(0, 0x100);
    h.locks.request(1, 0x100);
    ASSERT_EQ(h.grants.size(), 2u);
    EXPECT_EQ(h.grants[1].first, 1u);
}

TEST(LockCtrlDeath, ReleasingFreeLockPanics)
{
    LockHarness h;
    EXPECT_DEATH(h.locks.release(0, 0x100), "release of free lock");
}

TEST(LockCtrlDeath, ReleaseByNonHolderPanics)
{
    LockHarness h;
    h.locks.request(0, 0x100);
    EXPECT_DEATH(h.locks.release(1, 0x100), "releasing lock held by");
}

TEST(BarrierCtrl, ReleasesWhenLastArrives)
{
    BarrierHarness h;
    h.barrier.arrive(0, 0x40, 3);
    h.barrier.arrive(1, 0x40, 3);
    EXPECT_TRUE(h.released.empty());
    h.barrier.arrive(2, 0x40, 3);
    EXPECT_EQ(h.released.size(), 3u);
}

TEST(BarrierCtrl, ReusableAcrossEpisodes)
{
    BarrierHarness h;
    for (int episode = 0; episode < 3; ++episode) {
        h.released.clear();
        h.barrier.arrive(0, 0x40, 2);
        h.barrier.arrive(1, 0x40, 2);
        EXPECT_EQ(h.released.size(), 2u);
    }
    EXPECT_DOUBLE_EQ(h.barrier.episodes.value(), 3.0);
}

TEST(BarrierCtrl, IndependentBarrierVariables)
{
    BarrierHarness h;
    h.barrier.arrive(0, 0x40, 2);
    h.barrier.arrive(1, 0x80, 2);
    EXPECT_TRUE(h.released.empty());
    h.barrier.arrive(1, 0x40, 2);
    EXPECT_EQ(h.released.size(), 2u);
}

TEST(BarrierCtrl, SingleParticipantPassesThrough)
{
    BarrierHarness h;
    h.barrier.arrive(5, 0x40, 1);
    ASSERT_EQ(h.released.size(), 1u);
    EXPECT_EQ(h.released[0], 5u);
}
