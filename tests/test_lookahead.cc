/**
 * @file
 * Unit and integration tests for the lookahead I-detection variant
 * (the Baer/Chen mechanism the paper discusses in Section 6).
 */

#include <gtest/gtest.h>

#include "core/idet_lookahead.hh"
#include "harness.hh"

using namespace psim;
using namespace psim::test;

namespace
{

std::vector<Addr>
observe(Prefetcher &p, Pc pc, Addr addr, bool hit)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = pc;
    obs.addr = addr;
    obs.hit = hit;
    p.observeRead(obs, out);
    return out;
}

} // namespace

TEST(IDetLookahead, PrefetchesLookaheadStridesAhead)
{
    IDetLookaheadPrefetcher p(256, 3, 32);
    observe(p, 0x100, 0x1000, false);
    auto out = observe(p, 0x100, 0x1040, false); // stride 64
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1040u + 3u * 64u);
}

TEST(IDetLookahead, FiresOnPlainHitsToo)
{
    // Unlike the tagged-continuation scheme, the lookahead PC issues
    // prefetches regardless of whether the current access hit.
    IDetLookaheadPrefetcher p(256, 2, 32);
    observe(p, 0x100, 0x1000, false);
    observe(p, 0x100, 0x1020, false);
    auto out = observe(p, 0x100, 0x1040, true); // SLC hit
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1040u + 2u * 32u);
}

TEST(IDetLookahead, SubBlockStridesAdvanceWholeBlocks)
{
    IDetLookaheadPrefetcher p(256, 2, 32);
    observe(p, 0x100, 0x1000, false);
    auto out = observe(p, 0x100, 0x1008, false); // 8-byte stride
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1008u + 2u * 32u);
}

TEST(IDetLookahead, StopsInNoPrefState)
{
    IDetLookaheadPrefetcher p(256, 2, 32);
    observe(p, 0x100, 1000, false);
    observe(p, 0x100, 2000, false);
    observe(p, 0x100, 9000, false);
    observe(p, 0x100, 30000, false); // no-pref
    EXPECT_TRUE(observe(p, 0x100, 70000, false).empty());
}

TEST(IDetLookahead, IntegrationCoversAStream)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.prefetch.scheme = PrefetchScheme::IDetLookahead;
    MiniSystem sys(cfg);
    auto t = [](apps::ThreadCtx &ctx) -> Task {
        for (Addr a = 0x10000000; a < 0x10000000 + 8192; a += 32) {
            co_await ctx.read<double>(a);
            co_await ctx.think(40);
        }
    };
    sys.run(0, t(sys.ctx(0)));
    ASSERT_TRUE(sys.finish());
    const Slc &slc = sys.m.node(0).slc();
    EXPECT_LT(slc.demandReadMisses.value(), 8192.0 / 32.0 * 0.25);
    sys.m.checkCoherenceInvariants();
}

TEST(IDetLookahead, SchemeParsesAndBuilds)
{
    MachineConfig cfg;
    cfg.prefetch.scheme = parseScheme("lookahead");
    EXPECT_EQ(cfg.prefetch.scheme, PrefetchScheme::IDetLookahead);
    EXPECT_STREQ(Prefetcher::create(cfg)->name(), "i-det-la");
}
