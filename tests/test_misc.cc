/**
 * @file
 * Small-piece coverage: Resource accounting, message classification,
 * logging helpers, and node-level message routing.
 */

#include <gtest/gtest.h>

#include "harness.hh"
#include "proto/message.hh"
#include "sim/logging.hh"
#include "sim/resource.hh"

using namespace psim;
using namespace psim::test;

TEST(Resource, UncontendedClaimStartsImmediately)
{
    Resource r;
    EXPECT_EQ(r.claim(10, 5), 10u);
    EXPECT_EQ(r.freeAt(), 15u);
    EXPECT_DOUBLE_EQ(r.busyTicks.value(), 5.0);
    EXPECT_DOUBLE_EQ(r.waitTicks.value(), 0.0);
}

TEST(Resource, ContendedClaimQueues)
{
    Resource r;
    r.claim(0, 10);
    Tick start = r.claim(3, 4);
    EXPECT_EQ(start, 10u);
    EXPECT_EQ(r.freeAt(), 14u);
    EXPECT_DOUBLE_EQ(r.waitTicks.value(), 7.0);
    EXPECT_DOUBLE_EQ(r.claims.value(), 2.0);
}

TEST(Resource, IdleGapDoesNotAccumulateWait)
{
    Resource r;
    r.claim(0, 5);
    Tick start = r.claim(100, 5);
    EXPECT_EQ(start, 100u);
    EXPECT_DOUBLE_EQ(r.waitTicks.value(), 0.0);
}

TEST(Message, ClassificationCoversAllTypes)
{
    // Memory-side messages.
    for (MsgType t : {MsgType::ReadReq, MsgType::ReadExReq,
                      MsgType::UpgradeReq, MsgType::WritebackReq,
                      MsgType::FetchReply, MsgType::InvAck,
                      MsgType::LockReq, MsgType::LockRel,
                      MsgType::BarrierArrive}) {
        EXPECT_TRUE(isForMemory(t)) << toString(t);
    }
    // Cache/processor-side messages.
    for (MsgType t : {MsgType::DataReply, MsgType::DataExReply,
                      MsgType::UpgradeAck, MsgType::WritebackAck,
                      MsgType::FetchReq, MsgType::FetchInvReq,
                      MsgType::InvReq, MsgType::LockGrant,
                      MsgType::BarrierGo}) {
        EXPECT_FALSE(isForMemory(t)) << toString(t);
    }
}

TEST(Message, DataCarriersAreExactlyTheBlockMovers)
{
    for (MsgType t : {MsgType::WritebackReq, MsgType::DataReply,
                      MsgType::DataExReply, MsgType::FetchReply}) {
        EXPECT_TRUE(carriesData(t)) << toString(t);
    }
    for (MsgType t : {MsgType::ReadReq, MsgType::InvReq,
                      MsgType::UpgradeAck, MsgType::LockGrant}) {
        EXPECT_FALSE(carriesData(t)) << toString(t);
    }
}

TEST(Message, EveryTypeHasAName)
{
    for (int i = 0; i <= static_cast<int>(MsgType::BarrierGo); ++i) {
        const char *name = toString(static_cast<MsgType>(i));
        EXPECT_STRNE(name, "?");
    }
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strfmt("%llx", 0xabcULL), "abc");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(psim_panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, AssertMessageIncludesCondition)
{
    EXPECT_DEATH(psim_assert(1 == 2, "context %d", 5),
            "assertion failed: 1 == 2");
}

TEST(NodeRouting, SyncRepliesReachTheCpu)
{
    // End to end: a LockGrant must route to the CPU, not the SLC (a
    // mis-route would panic in Slc::receive).
    MachineConfig cfg;
    cfg.numProcs = 4;
    MiniSystem sys(cfg);
    Addr lock = 0x10000000 + cfg.pageSize; // remote home
    auto t = [](apps::ThreadCtx &ctx, Addr l) -> Task {
        co_await ctx.lock(l);
        co_await ctx.unlock(l);
    };
    sys.run(0, t(sys.ctx(0), lock));
    ASSERT_TRUE(sys.finish());
    EXPECT_DOUBLE_EQ(sys.m.node(0).cpu().locks.value(), 1.0);
}

TEST(Types, AlignmentHelpers)
{
    EXPECT_EQ(alignDown(0x1234, 32), 0x1220u);
    EXPECT_EQ(alignDown(0x1220, 32), 0x1220u);
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(4096), 12u);
}
