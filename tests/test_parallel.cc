/**
 * @file
 * Tests for the parallel experiment runner: thread-pool semantics,
 * grid coverage, and — the contract every bench harness relies on —
 * that a grid run with jobs=1 and jobs=8 produces identical Stats
 * snapshots and identical table text.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "apps/driver.hh"
#include "sim/parallel.hh"

using namespace psim;

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { ++count; });
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, RethrowsFirstJobException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("cell failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> count{0};
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(RunGrid, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t kN = 64;
    for (unsigned jobs : {1u, 3u, 8u, 100u}) {
        std::vector<std::atomic<int>> hits(kN);
        runGrid(kN, jobs, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs "
                                         << jobs;
    }
}

TEST(RunGrid, ZeroAndOneCellGrids)
{
    std::atomic<int> count{0};
    runGrid(0, 8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 0);
    runGrid(1, 8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 1);
}

TEST(ResolveJobs, ExplicitRequestWins)
{
    EXPECT_EQ(resolveJobs(3), 3u);
    EXPECT_GE(resolveJobs(0), 1u);
}

namespace
{

/** One grid cell: metrics, full stats dump, and a formatted row. */
struct CellResult
{
    RunMetrics metrics;
    std::string stats;
    std::string row;
};

/** Run the 2-app x 3-scheme grid the bench harnesses run. */
std::vector<CellResult>
runSmallGrid(unsigned jobs)
{
    const std::vector<std::string> workloads = {"lu", "mp3d"};
    const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::None, PrefetchScheme::IDet,
        PrefetchScheme::Sequential};

    std::vector<CellResult> cells(workloads.size() * schemes.size());
    runGrid(cells.size(), jobs, [&](std::size_t i) {
        const std::string &name = workloads[i / schemes.size()];
        PrefetchScheme scheme = schemes[i % schemes.size()];
        MachineConfig cfg;
        cfg.prefetch.scheme = scheme;
        apps::Run run = apps::runWorkload(name, cfg);
        ASSERT_TRUE(run.finished) << name;
        ASSERT_TRUE(run.verified) << name;
        CellResult &c = cells[i];
        c.metrics = run.metrics;
        std::ostringstream os;
        run.machine->dumpStats(os);
        c.stats = os.str();
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%-10s %-9s %12.0f %12.0f %8.2f\n",
                      name.c_str(), toString(scheme), c.metrics.readMisses,
                      c.metrics.readStall,
                      c.metrics.prefetchEfficiency());
        c.row = buf;
    });
    return cells;
}

} // namespace

TEST(RunGrid, GridIsDeterministicAcrossJobCounts)
{
    std::vector<CellResult> serial = runSmallGrid(1);
    std::vector<CellResult> parallel = runSmallGrid(8);
    ASSERT_EQ(serial.size(), parallel.size());

    std::string serial_table, parallel_table;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const RunMetrics &a = serial[i].metrics;
        const RunMetrics &b = parallel[i].metrics;
        // Each cell is an independent deterministic simulation, so
        // every metric must match bit-for-bit, not approximately.
        EXPECT_EQ(a.execTicks, b.execTicks) << "cell " << i;
        EXPECT_EQ(a.reads, b.reads) << "cell " << i;
        EXPECT_EQ(a.writes, b.writes) << "cell " << i;
        EXPECT_EQ(a.slcReads, b.slcReads) << "cell " << i;
        EXPECT_EQ(a.readMisses, b.readMisses) << "cell " << i;
        EXPECT_EQ(a.readStall, b.readStall) << "cell " << i;
        EXPECT_EQ(a.missesCold, b.missesCold) << "cell " << i;
        EXPECT_EQ(a.missesCoherence, b.missesCoherence) << "cell " << i;
        EXPECT_EQ(a.missesReplacement, b.missesReplacement)
                << "cell " << i;
        EXPECT_EQ(a.pfIssued, b.pfIssued) << "cell " << i;
        EXPECT_EQ(a.pfUseful, b.pfUseful) << "cell " << i;
        EXPECT_EQ(a.flits, b.flits) << "cell " << i;
        EXPECT_EQ(a.busTransactions, b.busTransactions) << "cell " << i;
        // The full per-node statistics dump must also be identical.
        EXPECT_EQ(serial[i].stats, parallel[i].stats) << "cell " << i;
        serial_table += serial[i].row;
        parallel_table += parallel[i].row;
    }
    EXPECT_EQ(serial_table, parallel_table);
}
