/**
 * @file
 * Unit tests for the multi-stride table: per-PC stride ways, confidence
 * promotion, way aging under conflict, and single-stride degeneration.
 */

#include <gtest/gtest.h>

#include "core/mstride.hh"

using namespace psim;

namespace
{
constexpr Pc kPc = 0x4000;
}

TEST(MultiStride, AllocatesOnlyOnMiss)
{
    MultiStrideTable t(256, 4, 2);
    auto oc = t.observe(kPc, 1000, /*allocate_on_miss=*/false);
    EXPECT_FALSE(oc.entryHit);
    EXPECT_EQ(t.lookup(kPc), nullptr);

    oc = t.observe(kPc, 1000, true);
    EXPECT_FALSE(oc.entryHit);
    ASSERT_NE(t.lookup(kPc), nullptr);
    EXPECT_DOUBLE_EQ(t.allocations.value(), 1.0);
}

TEST(MultiStride, SingleStrideDegeneratesToClassicRpt)
{
    MultiStrideTable t(256, 4, 2);
    t.observe(kPc, 1000, true);
    auto oc = t.observe(kPc, 1064, true); // stride 64 installs, conf 1
    EXPECT_EQ(oc.count, 0u);
    oc = t.observe(kPc, 1128, true); // conf 2: confident
    ASSERT_EQ(oc.count, 1u);
    EXPECT_EQ(oc.strides[0], 64);
    EXPECT_DOUBLE_EQ(t.multiActive.value(), 0.0);
}

TEST(MultiStride, PromotesInterleavedStrides)
{
    // A column sweep with a row fix-up: deltas alternate +64, +8. The
    // classic single-stride RPT would thrash; here each delta holds its
    // own way and both become confident.
    MultiStrideTable t(256, 4, 2);
    Addr a = 1000;
    t.observe(kPc, a, true);
    MultiStrideTable::Outcome oc;
    for (int rep = 0; rep < 3; ++rep) {
        a += 64;
        oc = t.observe(kPc, a, true);
        a += 8;
        oc = t.observe(kPc, a, true);
    }
    // Both strides seen three times -> conf capped, both returned.
    ASSERT_EQ(oc.count, 2u);
    bool saw64 = false, saw8 = false;
    for (unsigned w = 0; w < oc.count; ++w) {
        saw64 |= oc.strides[w] == 64;
        saw8 |= oc.strides[w] == 8;
    }
    EXPECT_TRUE(saw64);
    EXPECT_TRUE(saw8);
    EXPECT_GT(t.multiActive.value(), 0.0);
}

TEST(MultiStride, FullWaysAgeInsteadOfEvicting)
{
    MultiStrideTable t(256, 2, 2);
    // Establish stride 64 at conf 3 (cap) in a 2-way entry.
    Addr a = 1000;
    t.observe(kPc, a, true);
    for (int i = 0; i < 4; ++i)
        t.observe(kPc, a += 64, true);
    // Burst of distinct one-off deltas: the second fills way 1, the
    // rest age every way rather than evicting the established stride.
    t.observe(kPc, a += 8, true);   // installs way 1 (conf 1)
    t.observe(kPc, a += 24, true);  // no free way: age (64->2, 8->0)
    EXPECT_DOUBLE_EQ(t.wayEvictions.value(), 1.0);
    auto oc = t.observe(kPc, a += 64, true); // 64 reinforced: conf 3
    ASSERT_EQ(oc.count, 1u);
    EXPECT_EQ(oc.strides[0], 64);
}

TEST(MultiStride, ZeroDeltaDoesNotDisturbWays)
{
    MultiStrideTable t(256, 4, 2);
    t.observe(kPc, 1000, true);
    t.observe(kPc, 1064, true);
    t.observe(kPc, 1064, true); // same address again: delta 0 ignored
    auto oc = t.observe(kPc, 1128, true);
    ASSERT_EQ(oc.count, 1u);
    EXPECT_EQ(oc.strides[0], 64);
}

TEST(MultiStride, PrefetcherEmitsDegreePerConfidentStride)
{
    // degree 2, block 32: a confident 64-byte stride on a miss yields
    // the next two stride steps.
    MultiStridePrefetcher pf(256, 4, 2, /*degree=*/2, /*block=*/32);
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = kPc;

    obs.addr = 0x1000;
    pf.observeRead(obs, out);
    obs.addr = 0x1040;
    pf.observeRead(obs, out);
    EXPECT_TRUE(out.empty()); // stride installed but not yet confident

    obs.addr = 0x1080;
    pf.observeRead(obs, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x1080u + 64);
    EXPECT_EQ(out[1], 0x1080u + 128);
}

TEST(MultiStride, SubBlockStrideRoundsToOneBlock)
{
    // An 8-byte stride must still advance a whole block per step, like
    // I-detection's block-granularity phase.
    MultiStridePrefetcher pf(256, 4, 2, /*degree=*/1, /*block=*/32);
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = kPc;
    for (Addr a = 0x1000; a <= 0x1010; a += 8) {
        obs.addr = a;
        out.clear();
        pf.observeRead(obs, out);
    }
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1010u + 32);
}

TEST(MultiStride, TaggedHitContinuesEveryConfidentStride)
{
    MultiStridePrefetcher pf(256, 4, 2, /*degree=*/2, /*block=*/32);
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = kPc;
    // Make strides +64 and +256 confident via interleaved misses.
    Addr a = 0x1000;
    obs.addr = a;
    pf.observeRead(obs, out);
    for (int rep = 0; rep < 3; ++rep) {
        obs.addr = (a += 64);
        out.clear();
        pf.observeRead(obs, out);
        obs.addr = (a += 256);
        out.clear();
        pf.observeRead(obs, out);
    }
    // A tagged hit asks for the continuation degree steps ahead, once
    // per confident stride.
    obs.hit = true;
    obs.taggedHit = true;
    obs.addr = (a += 64);
    out.clear();
    pf.observeRead(obs, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], obs.addr + 2 * 64);
    EXPECT_EQ(out[1], obs.addr + 2 * 256);
}
