/**
 * @file
 * Tests for the machine-readable observability layer: the registry's
 * JSON stats export, the interval sampler and the chrome-trace
 * exporter — including the load-bearing invariant that observability
 * is read-only (enabling it never changes simulated behaviour).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/driver.hh"
#include "sim/sampler.hh"
#include "sim/stats.hh"
#include "trace/chrome_trace.hh"

using namespace psim;

namespace
{

MachineConfig
smallConfig(PrefetchScheme scheme = PrefetchScheme::Sequential)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.prefetch.scheme = scheme;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Registry JSON rendering
// ---------------------------------------------------------------------

TEST(StatsJson, EscapesAndFormats)
{
    EXPECT_EQ(stats::jsonEscape("plain"), "plain");
    EXPECT_EQ(stats::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(stats::jsonEscape("x\ny"), "x\\ny");
    EXPECT_EQ(stats::jsonNumber(2), "2");
    EXPECT_EQ(stats::jsonNumber(2.5), "2.5");
    // JSON has no NaN/inf; non-finite values render as null.
    EXPECT_EQ(stats::jsonNumber(0.0 / 0.0), "null");
    EXPECT_EQ(stats::jsonNumber(1.0 / 0.0), "null");
}

TEST(StatsJson, RegistryDocumentShape)
{
    stats::Registry registry;
    stats::Scalar a, b;
    a = 3;
    b = 4.5;
    stats::Group &g = registry.addGroup("unit.grp");
    g.addScalar("alpha", &a, "first");
    g.addScalar("beta", &b, "second");

    std::ostringstream os;
    registry.dumpJson(os);
    EXPECT_EQ(os.str(),
            "{\"schema\":\"psim-stats-v1\",\"groups\":["
            "{\"name\":\"unit.grp\",\"scalars\":["
            "{\"name\":\"alpha\",\"desc\":\"first\",\"value\":3},"
            "{\"name\":\"beta\",\"desc\":\"second\",\"value\":4.5}"
            "],\"averages\":[],\"histograms\":[]}]}\n");
}

TEST(StatsJson, ExtraMembersAreSpliced)
{
    stats::Registry registry;
    registry.addGroup("g");
    std::ostringstream os;
    registry.dumpJson(os, ",\"samples\":{\"interval\":5}");
    EXPECT_NE(os.str().find("\"samples\":{\"interval\":5}"),
              std::string::npos);
}

// The JSON document and the classic text dump are two renderings of
// the same registry: every scalar in the text dump must appear in the
// JSON with the same value.
TEST(StatsJson, MatchesTextDumpForARealRun)
{
    apps::Run run = apps::runWorkload("lu", smallConfig());
    ASSERT_TRUE(run.finished);

    std::ostringstream json;
    run.machine->dumpStatsJson(json);
    const std::string doc = json.str();
    EXPECT_NE(doc.find("\"schema\":\"psim-stats-v1\""),
              std::string::npos);

    std::size_t groups = 0, checked = 0;
    for (const auto &g : run.machine->registry().groups()) {
        ++groups;
        EXPECT_NE(doc.find("\"name\":\"" + g->name() + "\""),
                  std::string::npos) << g->name();
        for (const char *stat :
             {"demandReads", "demandReadMisses", "pfIssued"}) {
            const stats::Scalar *s = g->findScalar(stat);
            if (!s)
                continue;
            std::string entry = "{\"name\":\"" + std::string(stat) +
                                "\",";
            std::size_t pos = doc.find(entry);
            ASSERT_NE(pos, std::string::npos) << g->name() << "." << stat;
            std::string value = "\"value\":" +
                                stats::jsonNumber(s->value());
            EXPECT_NE(doc.find(value, pos), std::string::npos)
                    << g->name() << "." << stat << " = " << s->value();
            ++checked;
        }
    }
    // 4 nodes x (slc + pf groups at least) plus mesh.
    EXPECT_GE(groups, 9u);
    EXPECT_GE(checked, 4u);
}

// ---------------------------------------------------------------------
// Interval sampler
// ---------------------------------------------------------------------

TEST(Sampler, SnapshotsAtTheConfiguredInterval)
{
    apps::RunOptions opts;
    opts.sampleInterval = 1000;
    apps::Run run = apps::runWorkload("lu", smallConfig(), opts);
    ASSERT_TRUE(run.finished);

    const stats::Sampler *s = run.machine->sampler();
    ASSERT_NE(s, nullptr);
    ASSERT_FALSE(s->rows().empty());
    Tick expect = 1000;
    for (const auto &row : s->rows()) {
        EXPECT_EQ(row.tick, expect);
        EXPECT_EQ(row.values.size(), s->probeNames().size());
        expect += 1000;
    }
    // Samples cover the whole run (the last snapshot falls within one
    // interval of the end).
    EXPECT_GE(s->rows().back().tick + 1000,
              run.metrics.execTicks);

    // Counter probes are monotonic over time.
    std::size_t miss_col = 0;
    const auto &names = s->probeNames();
    while (miss_col < names.size() && names[miss_col] != "node0.readMisses")
        ++miss_col;
    ASSERT_LT(miss_col, names.size());
    double prev = 0;
    for (const auto &row : s->rows()) {
        EXPECT_GE(row.values[miss_col], prev);
        prev = row.values[miss_col];
    }
}

TEST(Sampler, CsvAndJsonRenderTheSameSeries)
{
    apps::RunOptions opts;
    opts.sampleInterval = 2000;
    apps::Run run = apps::runWorkload("lu", smallConfig(), opts);
    const stats::Sampler *s = run.machine->sampler();
    ASSERT_NE(s, nullptr);

    std::ostringstream csv;
    s->dumpCsv(csv);
    std::string header = csv.str().substr(0, csv.str().find('\n'));
    EXPECT_EQ(header.rfind("tick,", 0), 0u);
    // One header line plus one line per row.
    std::size_t lines = 0;
    for (char c : csv.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 1 + s->rows().size());

    std::ostringstream json;
    s->dumpJson(json);
    EXPECT_NE(json.str().find("\"interval\":2000"), std::string::npos);
    EXPECT_NE(json.str().find("\"rows\":["), std::string::npos);

    // The machine splices the series into the stats document.
    std::ostringstream doc;
    run.machine->dumpStatsJson(doc);
    EXPECT_NE(doc.str().find("\"samples\":{\"interval\":2000"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// The read-only invariant
// ---------------------------------------------------------------------

// Enabling the sampler and the chrome tracer must not perturb the
// simulation: the aggregate statistics dump is byte-identical.
TEST(Observability, DoesNotChangeSimulatedBehavior)
{
    std::string plain, observed;
    RunMetrics plain_mx, observed_mx;
    {
        apps::Run run = apps::runWorkload("lu", smallConfig());
        ASSERT_TRUE(run.finished && run.verified);
        std::ostringstream os;
        run.machine->dumpStats(os);
        plain = os.str();
        plain_mx = run.metrics;
    }
    {
        apps::RunOptions opts;
        opts.sampleInterval = 500;
        apps::Run run = apps::runWorkload("lu", smallConfig(), opts);
        ASSERT_TRUE(run.finished && run.verified);
        run.machine->metrics();
        std::ostringstream os;
        run.machine->dumpStats(os);
        observed = os.str();
        observed_mx = run.metrics;
    }
    EXPECT_EQ(plain, observed);
    EXPECT_EQ(plain_mx.execTicks, observed_mx.execTicks);
    EXPECT_DOUBLE_EQ(plain_mx.readMisses, observed_mx.readMisses);
    EXPECT_DOUBLE_EQ(plain_mx.flits, observed_mx.flits);
}

TEST(Observability, ChromeTraceIsReadOnlyToo)
{
    RunMetrics plain_mx;
    {
        apps::Run run = apps::runWorkload("lu", smallConfig());
        plain_mx = run.metrics;
    }
    apps::RunOptions opts;
    apps::ObservabilityOptions obs;
    obs.chromeTracePrefix = "unused"; // apply() sets the path...
    apps::Run run;
    {
        // ...but here the machine is driven directly to keep the test
        // free of filesystem output.
        run.machine = std::make_unique<Machine>(smallConfig());
        run.workload = apps::makeWorkload("lu", 1);
        run.machine->enableChromeTrace();
        run.workload->attach(*run.machine);
        run.machine->run();
        ASSERT_TRUE(run.machine->allFinished());
        run.metrics = run.machine->metrics();
    }
    EXPECT_EQ(plain_mx.execTicks, run.metrics.execTicks);
    EXPECT_DOUBLE_EQ(plain_mx.readMisses, run.metrics.readMisses);
    EXPECT_DOUBLE_EQ(plain_mx.pfIssued, run.metrics.pfIssued);

    const ChromeTracer *t = run.machine->chromeTracer();
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->eventCount(), 0u);

    std::ostringstream os;
    t->write(os);
    const std::string doc = os.str();
    EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
                        0), 0u);
    EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");
    // Demand misses, prefetch lifecycles and mesh transits all appear.
    EXPECT_NE(doc.find("\"cat\":\"demand\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"prefetch\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"prefetch-fate\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"mesh\""), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":1000"), std::string::npos);
}

TEST(Observability, ChromeWindowRestrictsRecording)
{
    auto runWindowed = [](Tick start, Tick end) {
        auto machine = std::make_unique<Machine>(smallConfig());
        auto wl = apps::makeWorkload("lu", 1);
        machine->enableChromeTrace(start, end);
        wl->attach(*machine);
        machine->run();
        return machine->chromeTracer()->eventCount();
    };
    std::size_t full = runWindowed(0, kTickNever);
    std::size_t windowed = runWindowed(1000, 2000);
    EXPECT_GT(full, windowed);
    EXPECT_GT(windowed, 0u);
}

// ---------------------------------------------------------------------
// The sharded engine's boundary-driven sampler
// ---------------------------------------------------------------------

TEST(Sampler, BoundaryDrivenSeriesIsShardCountInvariant)
{
    // On the sharded engine rows snapshot at the first window boundary
    // at or after each sample tick; boundaries are shard-count
    // invariant, so the whole CSV must be too.
    auto csvAtShards = [](unsigned shards) {
        MachineConfig cfg = smallConfig();
        cfg.shards = shards;
        apps::RunOptions opts;
        opts.sampleInterval = 2000;
        opts.checkInvariants = false;
        apps::Run run = apps::runWorkload("lu", cfg, opts);
        EXPECT_TRUE(run.finished) << "shards=" << shards;
        std::ostringstream os;
        run.machine->sampler()->dumpCsv(os);
        return os.str();
    };
    std::string ref = csvAtShards(1);
    ASSERT_GT(ref.size(), ref.find('\n') + 1) << "no sample rows";
    EXPECT_EQ(ref, csvAtShards(2));
    EXPECT_EQ(ref, csvAtShards(4));
}

TEST(Observability, ShardedPathIsReadOnlyToo)
{
    // Same invariant as DoesNotChangeSimulatedBehavior, on the sharded
    // engine: sampling plus chrome tracing must not move a single tick.
    auto statsAt = [](bool observed) {
        MachineConfig cfg = smallConfig();
        cfg.shards = 4;
        Machine m(cfg);
        auto wl = apps::makeWorkload("lu", 1);
        if (observed) {
            m.enableSampling(500);
            m.enableChromeTrace();
        }
        wl->attach(m);
        m.run();
        EXPECT_TRUE(m.allFinished());
        std::ostringstream os;
        m.dumpStats(os);
        return os.str();
    };
    EXPECT_EQ(statsAt(false), statsAt(true));
}

// ---------------------------------------------------------------------
// Option plumbing
// ---------------------------------------------------------------------

TEST(ObservabilityOptions, ParsesAndExpandsPerCellPaths)
{
    const char *argv[] = {"prog", "--stats-json", "out/", "--sample-interval",
                          "250", "--sample-csv", "csv/",
                          "--chrome-trace", "ct/", "--chrome-window",
                          "100:900"};
    int argc = 11;
    apps::ObservabilityOptions obs;
    for (int i = 1; i < argc; ++i) {
        EXPECT_TRUE(obs.parseArg(argc, const_cast<char **>(argv), &i));
    }
    EXPECT_TRUE(obs.enabled());
    EXPECT_EQ(obs.sampleInterval, 250u);
    EXPECT_EQ(obs.chromeStart, 100u);
    EXPECT_EQ(obs.chromeEnd, 900u);

    apps::RunOptions opts;
    obs.apply(opts, "lu-seq");
    EXPECT_EQ(opts.statsJsonPath, "out/lu-seq.json");
    EXPECT_EQ(opts.sampleCsvPath, "csv/lu-seq.csv");
    EXPECT_EQ(opts.chromeTracePath, "ct/lu-seq.json");
    EXPECT_EQ(opts.sampleInterval, 250u);

    // A single-run caller passes an empty cell: paths used verbatim.
    apps::RunOptions verbatim;
    obs.apply(verbatim, "");
    EXPECT_EQ(verbatim.statsJsonPath, "out/");
    EXPECT_EQ(verbatim.chromeTracePath, "ct/");

    // Non-observability arguments are left alone.
    const char *other[] = {"prog", "--jobs", "4"};
    int oi = 1;
    EXPECT_FALSE(obs.parseArg(3, const_cast<char **>(other), &oi));
    EXPECT_EQ(oi, 1);
}
