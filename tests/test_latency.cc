/**
 * @file
 * Calibration tests: the uncontended access latencies of the simulated
 * machine must reproduce the paper's Table 1 --
 *   read from FLC           1 pclock
 *   read from SLC           6 pclocks
 *   read from local memory 28 pclocks
 * -- and remote misses must add two (clean) or four (dirty) network
 * traversals, as in Section 4.
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace psim;
using namespace psim::test;

namespace
{

/** Base of page p in the shared heap used by these tests. */
Addr
pageBase(const MachineConfig &cfg, unsigned page)
{
    return 0x10000000ULL + static_cast<Addr>(page) * cfg.pageSize;
}

Task
measureReads(apps::ThreadCtx &ctx, Machine &m, std::vector<Addr> addrs,
             std::vector<Tick> &out)
{
    for (Addr a : addrs) {
        Tick t0 = m.eq().now();
        co_await ctx.read<double>(a);
        out.push_back(m.eq().now() - t0);
    }
}

} // namespace

TEST(Latency, Table1LocalHierarchy)
{
    MachineConfig cfg;
    MiniSystem sys(cfg);

    // Page 0 of the heap is homed at node 0 (round-robin placement).
    Addr x = pageBase(cfg, 0);
    ASSERT_EQ(cfg.homeOf(x), 0u);
    Addr conflict = x + cfg.flcSize; // same FLC set, different block

    std::vector<Tick> lat;
    sys.run(0, measureReads(sys.ctx(0), sys.m,
            {x,        // cold: local memory
             x,        // FLC hit
             x + 8,    // same block: FLC hit
             conflict, // evicts x from the direct-mapped FLC
             x},       // FLC miss, SLC hit
            lat));
    ASSERT_TRUE(sys.finish());
    ASSERT_EQ(lat.size(), 5u);

    EXPECT_EQ(lat[0], 28u) << "read from local memory (Table 1)";
    EXPECT_EQ(lat[1], 1u) << "read from FLC (Table 1)";
    EXPECT_EQ(lat[2], 1u) << "same-block read hits the FLC";
    EXPECT_EQ(lat[4], 6u) << "read from SLC (Table 1)";
}

TEST(Latency, RemoteCleanReadAddsTwoTraversals)
{
    MachineConfig cfg;
    MiniSystem sys(cfg);

    // Page 1 is homed at node 1, one mesh hop from node 0.
    Addr y = pageBase(cfg, 1);
    ASSERT_EQ(cfg.homeOf(y), 1u);

    std::vector<Tick> lat;
    sys.run(0, measureReads(sys.ctx(0), sys.m, {y}, lat));
    ASSERT_TRUE(sys.finish());
    ASSERT_EQ(lat.size(), 1u);

    // 28 pclocks + two extra bus crossings (2 * 6) + one request
    // traversal (1 hop * 3 + 2 flits = 5) + one data-reply traversal
    // (1 hop * 3 + 10 flits = 13).
    EXPECT_EQ(lat[0], 28u + 12u + 5u + 13u);
}

TEST(Latency, RemoteDirtyReadAddsFourTraversals)
{
    MachineConfig cfg;
    MiniSystem sys(cfg);

    // Block homed at node 2, dirty in node 1's cache, read by node 0.
    Addr z = pageBase(cfg, 2);
    ASSERT_EQ(cfg.homeOf(z), 2u);
    Addr bar = pageBase(cfg, 16); // sync variable

    std::vector<Tick> clean_lat;
    std::vector<Tick> dirty_lat;

    auto writer = [](apps::ThreadCtx &ctx, Addr addr,
                     Addr bar_addr) -> Task {
        co_await ctx.write<double>(addr, 42.0);
        co_await ctx.barrier(bar_addr);
    };
    auto reader = [](apps::ThreadCtx &ctx, Machine &m, Addr addr,
                     Addr bar_addr, std::vector<Tick> &out) -> Task {
        co_await ctx.barrier(bar_addr);
        Tick t0 = m.eq().now();
        double v = co_await ctx.read<double>(addr);
        out.push_back(m.eq().now() - t0);
        EXPECT_DOUBLE_EQ(v, 42.0);
    };

    // Only nodes 0 and 1 participate in the barrier.
    MiniSystem sys2(cfg);
    apps::ThreadCtx ctx0(sys2.m, 0, 2), ctx1(sys2.m, 1, 2);
    sys2.run(1, writer(ctx1, z, bar));
    sys2.run(0, reader(ctx0, sys2.m, z, bar, dirty_lat));
    ASSERT_TRUE(sys2.finish());
    ASSERT_EQ(dirty_lat.size(), 1u);

    // Reference: the same read when the home's memory copy is clean.
    MiniSystem sys3(cfg);
    apps::ThreadCtx rctx(sys3.m, 0, 1);
    sys3.run(0, measureReads(rctx, sys3.m, {z}, clean_lat));
    ASSERT_TRUE(sys3.finish());

    // The dirty read takes two extra traversals (home -> owner ->
    // home) plus the owner's handling, so it must be well above the
    // clean remote latency but bounded.
    EXPECT_GT(dirty_lat[0], clean_lat[0] + 20);
    EXPECT_LT(dirty_lat[0], clean_lat[0] + 100);
}

TEST(Latency, WritesDoNotStallTheProcessor)
{
    MachineConfig cfg;
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 3); // remote page (node 3)

    std::vector<Tick> lat;
    auto writer = [](apps::ThreadCtx &ctx, Machine &m, Addr addr,
                     std::vector<Tick> &out) -> Task {
        Tick t0 = m.eq().now();
        co_await ctx.write<double>(addr, 1.0);
        out.push_back(m.eq().now() - t0);
    };
    sys.run(0, writer(sys.ctx(0), sys.m, x, lat));
    ASSERT_TRUE(sys.finish());
    ASSERT_EQ(lat.size(), 1u);
    // Release consistency: the write retires into the FLWB in one
    // pclock even though the block is remote.
    EXPECT_EQ(lat[0], 1u);
}

TEST(Latency, ThinkAdvancesExactly)
{
    MachineConfig cfg;
    MiniSystem sys(cfg);
    std::vector<Tick> lat;
    auto thinker = [](apps::ThreadCtx &ctx, Machine &m,
                      std::vector<Tick> &out) -> Task {
        Tick t0 = m.eq().now();
        co_await ctx.think(17);
        out.push_back(m.eq().now() - t0);
    };
    sys.run(0, thinker(sys.ctx(0), sys.m, lat));
    ASSERT_TRUE(sys.finish());
    EXPECT_EQ(lat[0], 17u);
}
