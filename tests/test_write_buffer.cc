/**
 * @file
 * Unit tests for the FLWB: FIFO order, capacity, retry on a refusing
 * consumer, space callbacks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/write_buffer.hh"
#include "sim/event_queue.hh"

using namespace psim;

namespace
{

struct Harness
{
    EventQueue eq;
    MachineConfig cfg;
    Flwb flwb{eq, cfg};
    std::vector<FlwbEntry> consumed;
    bool accept = true;
    int space_calls = 0;

    Harness()
    {
        flwb.setConsumer([this](const FlwbEntry &e) {
            if (!accept)
                return false;
            consumed.push_back(e);
            return true;
        });
        flwb.setSpaceCallback([this] { ++space_calls; });
    }

    FlwbEntry
    entry(Addr a, FlwbEntry::Kind k = FlwbEntry::Kind::Write)
    {
        FlwbEntry e;
        e.kind = k;
        e.addr = a;
        return e;
    }
};

} // namespace

TEST(Flwb, DrainsInFifoOrder)
{
    Harness h;
    h.flwb.push(h.entry(1));
    h.flwb.push(h.entry(2, FlwbEntry::Kind::ReadMiss));
    h.flwb.push(h.entry(3));
    h.eq.run();
    ASSERT_EQ(h.consumed.size(), 3u);
    EXPECT_EQ(h.consumed[0].addr, 1u);
    EXPECT_EQ(h.consumed[1].addr, 2u);
    EXPECT_EQ(h.consumed[1].kind, FlwbEntry::Kind::ReadMiss);
    EXPECT_EQ(h.consumed[2].addr, 3u);
    EXPECT_TRUE(h.flwb.empty());
}

TEST(Flwb, EachDrainTakesOneFlwbLatency)
{
    Harness h;
    h.flwb.push(h.entry(1));
    h.eq.run();
    EXPECT_EQ(h.eq.now(), h.cfg.flwbLat);
}

TEST(Flwb, ReportsFullAtCapacity)
{
    Harness h;
    h.accept = false;
    for (unsigned i = 0; i < h.cfg.flwbEntries; ++i) {
        EXPECT_FALSE(h.flwb.full());
        h.flwb.push(h.entry(i));
    }
    EXPECT_TRUE(h.flwb.full());
}

TEST(Flwb, RetriesWhileConsumerRefuses)
{
    Harness h;
    h.accept = false;
    h.flwb.push(h.entry(7));
    // Let it retry a few times, then open the consumer.
    h.eq.run(20);
    EXPECT_TRUE(h.consumed.empty());
    EXPECT_GT(h.flwb.retries.value(), 0.0);
    h.accept = true;
    h.eq.run();
    ASSERT_EQ(h.consumed.size(), 1u);
    EXPECT_EQ(h.consumed[0].addr, 7u);
}

TEST(Flwb, SpaceCallbackFiresPerDrain)
{
    Harness h;
    h.flwb.push(h.entry(1));
    h.flwb.push(h.entry(2));
    h.eq.run();
    EXPECT_EQ(h.space_calls, 2);
}

TEST(Flwb, OrderPreservedAcrossRefusal)
{
    Harness h;
    h.accept = false;
    h.flwb.push(h.entry(1));
    h.flwb.push(h.entry(2));
    h.eq.run(10);
    h.accept = true;
    h.eq.run();
    ASSERT_EQ(h.consumed.size(), 2u);
    EXPECT_EQ(h.consumed[0].addr, 1u);
    EXPECT_EQ(h.consumed[1].addr, 2u);
}

TEST(FlwbDeath, OverflowPanics)
{
    Harness h;
    h.accept = false;
    for (unsigned i = 0; i < h.cfg.flwbEntries; ++i)
        h.flwb.push(h.entry(i));
    EXPECT_DEATH(h.flwb.push(h.entry(99)), "FLWB overflow");
}
