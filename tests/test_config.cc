/**
 * @file
 * Unit tests for the machine configuration (Table 1 defaults, address
 * helpers, round-robin page placement).
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace psim;

TEST(Config, PaperDefaults)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.numProcs, 16u);
    EXPECT_EQ(cfg.blockSize, 32u);
    EXPECT_EQ(cfg.flcSize, 4096u);
    EXPECT_EQ(cfg.slcSize, 0u); // infinite by default
    EXPECT_EQ(cfg.pageSize, 4096u);
    EXPECT_EQ(cfg.flwbEntries, 8u);
    EXPECT_EQ(cfg.slwbEntries, 16u);
    EXPECT_EQ(cfg.flcReadLat, 1u);
    EXPECT_EQ(cfg.meshCols, 4u);
    EXPECT_EQ(cfg.meshRows(), 4u);
    EXPECT_EQ(cfg.flitBits, 32u);
    EXPECT_EQ(cfg.fallThrough, 3u);
    EXPECT_EQ(cfg.prefetch.degree, 1u);
    EXPECT_EQ(cfg.prefetch.rptEntries, 256u);
    EXPECT_EQ(cfg.prefetch.ddetEntries, 16u);
    EXPECT_EQ(cfg.prefetch.strideThreshold, 3u);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Config, BlockAndPageAlignment)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.blockAddr(0x1234), 0x1220u);
    EXPECT_EQ(cfg.blockAddr(0x1220), 0x1220u);
    EXPECT_EQ(cfg.pageAddr(0x12345), 0x12000u);
}

TEST(Config, RoundRobinHomes)
{
    MachineConfig cfg;
    for (unsigned page = 0; page < 64; ++page) {
        Addr a = static_cast<Addr>(page) * cfg.pageSize + 100;
        EXPECT_EQ(cfg.homeOf(a), page % cfg.numProcs);
    }
    // Every address within one page shares a home.
    EXPECT_EQ(cfg.homeOf(0x3000), cfg.homeOf(0x3FFF));
}

TEST(Config, FlitsForMessageSizes)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.flitsFor(0), 2u);   // header only
    EXPECT_EQ(cfg.flitsFor(32), 10u); // header + 8 data flits
    EXPECT_EQ(cfg.flitsFor(1), 3u);   // partial flit rounds up
}

TEST(Config, SchemeNamesRoundTrip)
{
    EXPECT_EQ(parseScheme("none"), PrefetchScheme::None);
    EXPECT_EQ(parseScheme("baseline"), PrefetchScheme::None);
    EXPECT_EQ(parseScheme("seq"), PrefetchScheme::Sequential);
    EXPECT_EQ(parseScheme("sequential"), PrefetchScheme::Sequential);
    EXPECT_EQ(parseScheme("idet"), PrefetchScheme::IDet);
    EXPECT_EQ(parseScheme("i-det"), PrefetchScheme::IDet);
    EXPECT_EQ(parseScheme("ddet"), PrefetchScheme::DDet);
    EXPECT_EQ(parseScheme("mstride"), PrefetchScheme::MultiStride);
    EXPECT_EQ(parseScheme("m-stride"), PrefetchScheme::MultiStride);
    EXPECT_EQ(parseScheme("multi-stride"), PrefetchScheme::MultiStride);
    EXPECT_EQ(parseScheme("chase"), PrefetchScheme::PtrChase);
    EXPECT_EQ(parseScheme("ptr-chase"), PrefetchScheme::PtrChase);
    EXPECT_EQ(parseScheme("pointer-chase"), PrefetchScheme::PtrChase);
    EXPECT_EQ(parseScheme("ptron"), PrefetchScheme::Perceptron);
    EXPECT_EQ(parseScheme("perceptron"), PrefetchScheme::Perceptron);
    EXPECT_STREQ(toString(PrefetchScheme::Sequential), "seq");
    EXPECT_STREQ(toString(PrefetchScheme::IDet), "i-det");
    EXPECT_STREQ(toString(PrefetchScheme::DDet), "d-det");
    EXPECT_STREQ(toString(PrefetchScheme::None), "baseline");
    EXPECT_STREQ(toString(PrefetchScheme::MultiStride), "m-stride");
    EXPECT_STREQ(toString(PrefetchScheme::PtrChase), "chase");
    EXPECT_STREQ(toString(PrefetchScheme::Perceptron), "ptron");
}

using ConfigDeath = ::testing::Test;

TEST(ConfigDeath, RejectsBadBlockSize)
{
    MachineConfig cfg;
    cfg.blockSize = 48;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
            "block size");
}

TEST(ConfigDeath, RejectsUntileableMesh)
{
    MachineConfig cfg;
    cfg.numProcs = 10;
    cfg.meshCols = 4;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
            "does not tile");
}

TEST(ConfigDeath, RejectsZeroDegree)
{
    MachineConfig cfg;
    cfg.prefetch.degree = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "degree");
}

TEST(ConfigDeath, RejectsUnknownScheme)
{
    // The error must name the valid schemes (one registry drives the
    // parser, the printer and this message).
    EXPECT_EXIT(parseScheme("bogus"), ::testing::ExitedWithCode(1),
            "unknown prefetch scheme 'bogus' \\(valid: .*chase.*\\)");
}

TEST(ConfigDeath, RejectsWrapperAsChaseBase)
{
    MachineConfig cfg;
    cfg.prefetch.scheme = PrefetchScheme::PtrChase;
    cfg.prefetch.chaseBase = PrefetchScheme::PtrChase;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
            "chaseBase");
}

TEST(ConfigDeath, RejectsPerceptronAsItsOwnBase)
{
    MachineConfig cfg;
    cfg.prefetch.scheme = PrefetchScheme::Perceptron;
    cfg.prefetch.ptronBase = PrefetchScheme::Perceptron;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
            "ptronBase");
}
