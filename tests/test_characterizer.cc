/**
 * @file
 * Unit tests for the Table-2/3 stride characterizer.
 */

#include <gtest/gtest.h>

#include "core/characterizer.hh"

using namespace psim;

namespace
{
constexpr unsigned kBlk = 32;
constexpr Pc kPcA = 0x100;
constexpr Pc kPcB = 0x200;
}

TEST(Characterizer, PureStrideStreamIsFullyStride)
{
    StrideCharacterizer c(kBlk);
    for (int i = 0; i < 10; ++i)
        c.observeMiss(kPcA, 1000 + 32u * i);
    auto r = c.finalize();
    EXPECT_EQ(r.totalMisses, 10u);
    EXPECT_EQ(r.strideMisses, 10u);
    EXPECT_DOUBLE_EQ(r.strideFraction, 1.0);
    EXPECT_EQ(r.numSequences, 1u);
    EXPECT_DOUBLE_EQ(r.avgSequenceLength, 10.0);
    ASSERT_FALSE(r.topStrides.empty());
    EXPECT_EQ(r.topStrides[0].first, 1); // one block
    EXPECT_DOUBLE_EQ(r.topStrides[0].second, 1.0);
}

TEST(Characterizer, TwoAccessesAreNotASequence)
{
    StrideCharacterizer c(kBlk, 3);
    c.observeMiss(kPcA, 1000);
    c.observeMiss(kPcA, 1032);
    auto r = c.finalize();
    EXPECT_EQ(r.strideMisses, 0u);
    EXPECT_EQ(r.numSequences, 0u);
}

TEST(Characterizer, ThreeEquidistantAccessesAreASequence)
{
    StrideCharacterizer c(kBlk, 3);
    c.observeMiss(kPcA, 1000);
    c.observeMiss(kPcA, 1032);
    c.observeMiss(kPcA, 1064);
    auto r = c.finalize();
    EXPECT_EQ(r.strideMisses, 3u);
    EXPECT_EQ(r.numSequences, 1u);
    EXPECT_DOUBLE_EQ(r.avgSequenceLength, 3.0);
}

TEST(Characterizer, RandomStreamHasNoSequences)
{
    StrideCharacterizer c(kBlk);
    Addr addrs[] = {1000, 5000, 2000, 9000, 3000, 12000, 100, 7000};
    for (Addr a : addrs)
        c.observeMiss(kPcA, a);
    auto r = c.finalize();
    EXPECT_EQ(r.strideMisses, 0u);
    EXPECT_DOUBLE_EQ(r.strideFraction, 0.0);
}

TEST(Characterizer, InterleavedPcsTrackedSeparately)
{
    StrideCharacterizer c(kBlk);
    // Two interleaved per-PC streams, each a clean stride sequence.
    for (int i = 0; i < 5; ++i) {
        c.observeMiss(kPcA, 1000 + 32u * i);
        c.observeMiss(kPcB, 900000 + 672u * i);
    }
    auto r = c.finalize();
    EXPECT_EQ(r.totalMisses, 10u);
    EXPECT_EQ(r.strideMisses, 10u);
    EXPECT_EQ(r.numSequences, 2u);
    // Stride histogram has 1-block and 21-block entries, equal weight.
    ASSERT_EQ(r.topStrides.size(), 2u);
    EXPECT_DOUBLE_EQ(r.topStrides[0].second, 0.5);
}

TEST(Characterizer, SameAddressMissesAreNotAStride)
{
    StrideCharacterizer c(kBlk);
    for (int i = 0; i < 6; ++i)
        c.observeMiss(kPcA, 4000); // repeated coherence misses
    auto r = c.finalize();
    EXPECT_EQ(r.strideMisses, 0u);
}

TEST(Characterizer, BrokenRunSplitsSequences)
{
    StrideCharacterizer c(kBlk);
    // Two runs of 4 at stride 32, separated by a jump: the jump access
    // starts the second run.
    Addr a = 1000;
    for (int i = 0; i < 4; ++i, a += 32)
        c.observeMiss(kPcA, a);
    a = 500000;
    for (int i = 0; i < 4; ++i, a += 32)
        c.observeMiss(kPcA, a);
    auto r = c.finalize();
    EXPECT_EQ(r.totalMisses, 8u);
    EXPECT_EQ(r.numSequences, 2u);
    EXPECT_EQ(r.strideMisses, 8u);
}

TEST(Characterizer, SubBlockStrideCountsAsOneBlock)
{
    StrideCharacterizer c(kBlk);
    for (int i = 0; i < 8; ++i)
        c.observeMiss(kPcA, 1000 + 8u * i); // 8-byte stride
    auto r = c.finalize();
    ASSERT_FALSE(r.topStrides.empty());
    EXPECT_EQ(r.topStrides[0].first, 1);
}

TEST(Characterizer, LargeStrideReportedInBlocks)
{
    StrideCharacterizer c(kBlk);
    for (int i = 0; i < 5; ++i)
        c.observeMiss(kPcA, 10000 + 2080u * i); // Ocean's 65 blocks
    auto r = c.finalize();
    ASSERT_FALSE(r.topStrides.empty());
    EXPECT_EQ(r.topStrides[0].first, 65);
}

TEST(Characterizer, NegativeStrideMagnitudeUsed)
{
    StrideCharacterizer c(kBlk);
    for (int i = 0; i < 5; ++i)
        c.observeMiss(kPcA, 100000 - 672u * i);
    auto r = c.finalize();
    ASSERT_FALSE(r.topStrides.empty());
    EXPECT_EQ(r.topStrides[0].first, 21);
}

TEST(Characterizer, MixedStreamFractionIsCorrect)
{
    StrideCharacterizer c(kBlk);
    // 6 stride misses...
    for (int i = 0; i < 6; ++i)
        c.observeMiss(kPcA, 1000 + 32u * i);
    // ...then 6 scattered misses from another PC.
    Addr scattered[] = {70000, 10000, 40000, 90000, 20000, 60000};
    for (Addr a : scattered)
        c.observeMiss(kPcB, a);
    auto r = c.finalize();
    EXPECT_EQ(r.totalMisses, 12u);
    EXPECT_EQ(r.strideMisses, 6u);
    EXPECT_DOUBLE_EQ(r.strideFraction, 0.5);
}

TEST(Characterizer, BackToBackSequencesShareNoMiss)
{
    StrideCharacterizer c(kBlk);
    // Run of 4 at stride 32 followed immediately by a run at stride
    // 64 starting from the last access: the shared access must be
    // counted once.
    c.observeMiss(kPcA, 1000);
    c.observeMiss(kPcA, 1032);
    c.observeMiss(kPcA, 1064);
    c.observeMiss(kPcA, 1096); // last of run 1
    c.observeMiss(kPcA, 1160); // stride 64
    c.observeMiss(kPcA, 1224);
    c.observeMiss(kPcA, 1288);
    auto r = c.finalize();
    EXPECT_EQ(r.totalMisses, 7u);
    EXPECT_EQ(r.strideMisses, 7u);
    EXPECT_EQ(r.numSequences, 2u);
}

TEST(Characterizer, EmptyStreamFinalizesCleanly)
{
    StrideCharacterizer c(kBlk);
    auto r = c.finalize();
    EXPECT_EQ(r.totalMisses, 0u);
    EXPECT_DOUBLE_EQ(r.strideFraction, 0.0);
    EXPECT_DOUBLE_EQ(r.avgSequenceLength, 0.0);
    EXPECT_TRUE(r.topStrides.empty());
}

// Parameterized sweep: for any stride, a long clean sequence yields
// fraction 1.0 and the right dominant stride in blocks.
class CharacterizerSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>>
{
};

TEST_P(CharacterizerSweep, CleanSequence)
{
    auto [stride_bytes, expect_blocks] = GetParam();
    StrideCharacterizer c(kBlk);
    Addr base = 1 << 20;
    for (int i = 0; i < 20; ++i) {
        c.observeMiss(kPcA, static_cast<Addr>(
                static_cast<std::int64_t>(base) + stride_bytes * i));
    }
    auto r = c.finalize();
    EXPECT_DOUBLE_EQ(r.strideFraction, 1.0);
    ASSERT_FALSE(r.topStrides.empty());
    EXPECT_EQ(r.topStrides[0].first, expect_blocks);
}

INSTANTIATE_TEST_SUITE_P(Strides, CharacterizerSweep,
        ::testing::Values(std::pair<std::int64_t, std::int64_t>{8, 1},
                          std::pair<std::int64_t, std::int64_t>{32, 1},
                          std::pair<std::int64_t, std::int64_t>{40, 1},
                          std::pair<std::int64_t, std::int64_t>{64, 2},
                          std::pair<std::int64_t, std::int64_t>{672, 21},
                          std::pair<std::int64_t, std::int64_t>{2080, 65},
                          std::pair<std::int64_t, std::int64_t>{-96, 3}));
