/**
 * @file
 * White-box checks of the workload kernels: the data-layout properties
 * that give each application its paper signature must actually hold.
 */

#include <gtest/gtest.h>

#include "apps/driver.hh"
#include "apps/mp3d.hh"
#include "apps/pthor.hh"
#include "apps/radix.hh"
#include "apps/water.hh"

using namespace psim;
using namespace psim::apps;

TEST(Workloads, WaterRecordIsExactly21Blocks)
{
    // The paper reports Water's dominant stride as 21 blocks; that is
    // literally sizeof(molecule record) / 32.
    EXPECT_EQ(WaterWorkload::kRecordBytes, 672u);
    EXPECT_EQ(WaterWorkload::kRecordBytes / 32, 21u);
    // The streamed fields live in the first four blocks (adjacent),
    // which is what lets sequential prefetching keep up.
    EXPECT_LT(WaterWorkload::kPosZ, 32u);
    EXPECT_LT(WaterWorkload::kDipole, 64u);
    EXPECT_LT(WaterWorkload::kCharge + 24, 96u);
}

TEST(Workloads, Mp3dRecordStraddlesBlocks)
{
    // 40-byte particles: every record spans two 32-byte blocks, the
    // source of MP3D's high spatial locality without strides.
    EXPECT_EQ(Mp3dWorkload::kRecordBytes, 40u);
    for (unsigned p = 0; p < 16; ++p) {
        Addr start = static_cast<Addr>(p) * Mp3dWorkload::kRecordBytes;
        Addr end = start + Mp3dWorkload::kRecordBytes - 1;
        EXPECT_NE(start / 32, end / 32)
                << "particle " << p << " fits one block";
    }
}

TEST(Workloads, PthorElementIsTwoBlocks)
{
    EXPECT_EQ(PthorWorkload::kRecordBytes, 64u);
    EXPECT_EQ(PthorWorkload::kRecordBytes / 32, 2u);
}

TEST(Workloads, RadixGeometry)
{
    EXPECT_EQ(RadixWorkload::kBuckets, 16u);
    EXPECT_EQ(RadixWorkload::kPasses * RadixWorkload::kRadixBits, 16u)
            << "passes must cover the key width";
}

TEST(Workloads, AllWorkloadsExposeDistinctNames)
{
    const char *names[] = {"mp3d",   "cholesky", "water",    "lu",
                           "ocean",  "pthor",    "matmul",   "fft",
                           "radix",  "barnes",   "kvstore",  "hashjoin",
                           "bfs",    "logappend"};
    for (const char *n : names) {
        auto wl = makeWorkload(n);
        EXPECT_STREQ(wl->name(), n);
    }
}

TEST(Workloads, RegistryListsPartitionTheTable)
{
    // paperWorkloads() carries the six paper applications in paper
    // order; serverWorkloads() carries the request-driven suite. The
    // two lists must be disjoint and every name constructible.
    const auto &paper = paperWorkloads();
    const auto &server = serverWorkloads();
    ASSERT_EQ(paper.size(), 6u);
    EXPECT_EQ(paper.front(), "mp3d");
    ASSERT_EQ(server.size(), 4u);
    EXPECT_EQ(server.front(), "kvstore");
    for (const auto &p : paper)
        for (const auto &s : server)
            EXPECT_NE(p, s);
    for (const auto &n : server)
        EXPECT_STREQ(makeWorkload(n)->name(), n.c_str());
}

TEST(Workloads, ScaleParameterGrowsEveryApp)
{
    // scale=2 must mean more total work for every registered app.
    const char *names[] = {"mp3d",  "cholesky", "water",   "lu",
                           "ocean", "pthor",    "matmul",  "fft",
                           "radix", "barnes",   "kvstore", "hashjoin",
                           "bfs",   "logappend"};
    MachineConfig cfg;
    cfg.numProcs = 4;
    for (const char *n : names) {
        RunOptions s1, s2;
        s2.scale = 2;
        psim::apps::Run a = runWorkload(n, cfg, s1);
        psim::apps::Run b = runWorkload(n, cfg, s2);
        ASSERT_TRUE(a.finished && b.finished) << n;
        ASSERT_TRUE(a.verified && b.verified) << n;
        EXPECT_GT(b.metrics.reads, a.metrics.reads) << n;
    }
}

TEST(Workloads, SynchronizationIsActuallyExercised)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    // Barrier-heavy apps must run barrier episodes; PTHOR also locks.
    for (const char *n : {"lu", "ocean", "water", "fft", "radix",
                          "kvstore", "hashjoin", "bfs", "logappend"}) {
        psim::apps::Run run = runWorkload(n, cfg);
        ASSERT_TRUE(run.finished) << n;
        double barriers = 0;
        for (NodeId node = 0; node < cfg.numProcs; ++node)
            barriers += run.machine->node(node).cpu().barriers.value();
        EXPECT_GT(barriers, 0.0) << n;
    }
}

TEST(Workloads, WritesAreOwnerPartitioned)
{
    // Every workload must be data-race-free: verify() already proves
    // values match a serial reference, but also check that the machine
    // quiesces with a consistent directory for each app at 4 procs.
    MachineConfig cfg;
    cfg.numProcs = 4;
    for (const char *n : {"mp3d", "pthor", "barnes", "radix",
                          "kvstore", "hashjoin", "bfs", "logappend"}) {
        psim::apps::Run run = runWorkload(n, cfg);
        ASSERT_TRUE(run.finished) << n;
        run.machine->checkCoherenceInvariants();
    }
}
