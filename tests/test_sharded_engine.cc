/**
 * @file
 * Tests of the sharded (windowed, conservatively synchronized) event
 * engine: the deterministic (owner, counter) ordering contract of
 * EventQueue::runWindow, the ShardGang round protocol, and the
 * machine-level guarantees that stats AND every shard-aware observer
 * (sampler, chrome trace, commit stream) are byte-identical at every
 * shard count (`--shards 1` is the reference ordering; 2, 4, 8 must
 * reproduce it exactly) while remaining read-only.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/driver.hh"
#include "check/access_log.hh"
#include "check/fuzzgen.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/sampler.hh"
#include "sim/shard.hh"
#include "sys/machine.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace.hh"

#include "harness.hh"

using namespace psim;
using namespace psim::check;

// ---- EventQueue window semantics ----

TEST(ShardedQueue, WindowEndIsExclusive)
{
    EventQueue eq;
    eq.setShardOrder(2);
    eq.setContextOwner(0);
    std::vector<Tick> fired;
    eq.schedule(5, [&] { fired.push_back(5); });
    eq.schedule(10, [&] { fired.push_back(10); });

    // An event exactly at the lookahead horizon belongs to the NEXT
    // window; firing it early would let it race cross-shard messages
    // exchanged at the boundary.
    eq.runWindow(10);
    EXPECT_EQ(fired, (std::vector<Tick>{5}));
    EXPECT_EQ(eq.nextWhen(), 10u);

    eq.runWindow(11);
    EXPECT_EQ(fired, (std::vector<Tick>{5, 10}));
    EXPECT_TRUE(eq.empty());
}

TEST(ShardedQueue, SameTickFiresInOwnerOrderNotInsertionOrder)
{
    EventQueue eq;
    eq.setShardOrder(4);
    std::vector<int> order;

    // Insert same-tick events in descending owner order; runWindow
    // must fire them ascending (owner, per-owner counter) regardless.
    eq.scheduleRemote(7, 3, [&] { order.push_back(3); });
    eq.scheduleRemote(7, 1, [&] { order.push_back(1); });
    eq.scheduleRemote(7, 0, [&] { order.push_back(0); });
    eq.scheduleRemote(7, 2, [&] { order.push_back(2); });
    eq.runWindow(8);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ShardedQueue, SameOwnerSameTickKeepsScheduleOrder)
{
    EventQueue eq;
    eq.setShardOrder(2);
    std::vector<int> order;
    eq.scheduleRemote(3, 1, [&] { order.push_back(10); });
    eq.scheduleRemote(3, 1, [&] { order.push_back(11); });
    eq.scheduleRemote(3, 0, [&] { order.push_back(0); });
    eq.runWindow(4);
    EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
}

TEST(ShardedQueue, SameTickChildrenFireThisTickAfterParents)
{
    EventQueue eq;
    eq.setShardOrder(2);
    eq.setContextOwner(0);
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(1);
        // A same-tick child scheduled while the staging heap drains
        // tick 5 fires inside this window. It inherits owner 0 and the
        // next owner-0 counter, so it orders BEFORE the already-staged
        // owner-1 event: the tick's total order is strictly
        // (owner, counter), independent of when events were inserted
        // -- that is what makes firing shard-count invariant.
        eq.schedule(5, [&] { order.push_back(2); });
    });
    eq.scheduleRemote(5, 1, [&] { order.push_back(3); });
    eq.runWindow(6);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(eq.empty());
}

TEST(ShardedQueue, CancelOfPendingAndStagedEvents)
{
    EventQueue eq;
    eq.setShardOrder(2);
    eq.setContextOwner(0);
    std::vector<int> order;

    // Cancel before the window: never fires.
    EventQueue::EventId a = eq.schedule(4, [&] { order.push_back(-1); });
    eq.cancel(a);

    // Cancel from a same-tick event with lower seq: the victim has
    // already been pulled into the staging heap when the canceller
    // runs, so this exercises the staged-cancellation path.
    EventQueue::EventId b = 0;
    eq.schedule(6, [&] {
        order.push_back(1);
        eq.cancel(b);
    });
    b = eq.scheduleRemote(6, 1, [&] { order.push_back(-2); });
    eq.scheduleRemote(6, 1, [&] { order.push_back(2); });

    eq.runWindow(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(eq.empty());

    // Double-cancel and cancel-after-fire are no-ops.
    eq.cancel(a);
    eq.cancel(b);
}

TEST(ShardedQueue, RunWindowAdvancesNowToWindowStartAtMost)
{
    EventQueue eq;
    eq.setShardOrder(1);
    eq.setContextOwner(0);
    eq.schedule(100, [] {});
    // Nothing in [0, 50): now must not run past the window.
    eq.runWindow(50);
    EXPECT_LT(eq.now(), 50u);
    eq.advanceTo(50);
    EXPECT_EQ(eq.now(), 50u);
    eq.runWindow(101);
    EXPECT_EQ(eq.now(), 100u);
}

// ---- ShardGang round protocol ----

TEST(ShardGang, RunsBodyExactlyOncePerShardPerRound)
{
    std::array<std::atomic<int>, 4> counts{};
    ShardGang gang(4, [&](unsigned s) {
        ASSERT_LT(s, 4u);
        counts[s].fetch_add(1, std::memory_order_relaxed);
    });
    for (int round = 0; round < 3; ++round)
        gang.runRound();
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 3);
}

TEST(ShardGang, SingleShardRunsOnTheCallersThread)
{
    // The one-shard gang must not synchronize or hand off: body(0)
    // runs inline so a --shards 1 machine is as serial as it claims.
    const std::thread::id caller = std::this_thread::get_id();
    int runs = 0;
    ShardGang gang(1, [&](unsigned s) {
        EXPECT_EQ(s, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++runs;
    });
    gang.runRound();
    gang.runRound();
    EXPECT_EQ(runs, 2);
}

TEST(ShardGang, ZeroShardGangRunsNothing)
{
    // A zero-shard gang has no shard 0; invoking the body would hand
    // the callback an index that does not exist.
    int runs = 0;
    ShardGang gang(0, [&](unsigned) { ++runs; });
    gang.runRound();
    EXPECT_EQ(runs, 0);
}

TEST(ShardGang, DestructsCleanlyWithoutEverRunningARound)
{
    // Workers park waiting for round zero to advance; the destructor
    // must release and join them even if runRound() was never called.
    ShardGang gang(8, [](unsigned) { FAIL() << "body ran"; });
}

// ---- machine-level determinism ----

namespace
{

/** dumpStats text of one full run of @p name at @p shards. */
std::string
statsAtShards(const std::string &name, unsigned shards,
              PrefetchScheme scheme, unsigned procs = 16,
              bool audit = false)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.meshCols = procs >= 16 ? 4 : procs;
    if (procs == 64)
        cfg.meshCols = 8;
    cfg.prefetch.scheme = scheme;
    cfg.shards = shards;
    cfg.audit = audit;
    apps::RunOptions opts;
    opts.checkInvariants = false;
    apps::Run run = apps::runWorkload(name, cfg, opts);
    EXPECT_TRUE(run.finished) << name << " at shards=" << shards;
    std::ostringstream os;
    run.machine->dumpStats(os);
    return os.str();
}

/** dumpStats text of one fuzz program at @p shards. */
std::string
fuzzStatsAtShards(std::uint64_t seed, unsigned shards)
{
    ProgramSpec spec = ProgramSpec::generate(seed);
    MachineConfig cfg;
    cfg.numProcs = spec.threads;
    if (cfg.numProcs < 4)
        cfg.meshCols = cfg.numProcs;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;
    cfg.prefetch.degree = spec.degree;
    cfg.seed = spec.seed;
    cfg.shards = shards;
    Machine m(cfg);
    FuzzWorkload wl(spec);
    wl.attach(m);
    m.run(50'000'000);
    EXPECT_TRUE(m.allFinished()) << "seed " << seed << " shards " << shards;
    EXPECT_TRUE(wl.verify(m)) << "seed " << seed << " shards " << shards;
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

} // namespace

TEST(ShardedMachine, StatsByteIdenticalAcrossShardCounts)
{
    // The fig6 configuration (16 procs, infinite SLC) on two
    // applications with different communication structure.
    for (const char *name : {"lu", "mp3d"}) {
        std::string ref = statsAtShards(name, 1, PrefetchScheme::IDet);
        ASSERT_FALSE(ref.empty());
        for (unsigned shards : {2u, 4u, 8u}) {
            EXPECT_EQ(ref, statsAtShards(name, shards,
                                         PrefetchScheme::IDet))
                    << name << " diverged at shards=" << shards;
        }
    }
}

TEST(ShardedMachine, ServerWorkloadsByteIdenticalAcrossShardCounts)
{
    // The request-driven server suite: open-loop arrival gaps and
    // Zipf-skewed sharing must not introduce any shard-count
    // dependence. --shards 1 is the reference ordering; 4 and 8 must
    // reproduce its stats byte-for-byte.
    for (const char *name : {"kvstore", "hashjoin", "bfs", "logappend"}) {
        std::string ref = statsAtShards(name, 1, PrefetchScheme::IDet);
        ASSERT_FALSE(ref.empty());
        for (unsigned shards : {4u, 8u}) {
            EXPECT_EQ(ref, statsAtShards(name, shards,
                                         PrefetchScheme::IDet))
                    << name << " diverged at shards=" << shards;
        }
    }
}

TEST(ShardedMachine, StatsByteIdenticalAt64Nodes)
{
    std::string s1 = statsAtShards("lu", 1, PrefetchScheme::Sequential,
                                   64);
    EXPECT_EQ(s1, statsAtShards("lu", 4, PrefetchScheme::Sequential, 64));
}

TEST(ShardedMachine, FuzzCorpusByteIdenticalAcrossShardCounts)
{
    for (std::uint64_t seed : {3ULL, 11ULL, 42ULL}) {
        std::string ref = fuzzStatsAtShards(seed, 1);
        ASSERT_FALSE(ref.empty());
        for (unsigned shards : {2u, 4u}) {
            EXPECT_EQ(ref, fuzzStatsAtShards(seed, shards))
                    << "seed " << seed << " diverged at shards="
                    << shards;
        }
    }
}

TEST(ShardedMachine, AuditFlagDoesNotPerturbShardedStats)
{
    // The runtime audit must be observability-grade on the sharded
    // path too: aggregates identical with the flag on and off.
    std::string off = statsAtShards("lu", 2, PrefetchScheme::IDet, 16,
                                    false);
    std::string on = statsAtShards("lu", 2, PrefetchScheme::IDet, 16,
                                   true);
    EXPECT_EQ(off, on);
}

// ---- shard-aware observers ----

namespace
{

/** Everything every observer produced in one fully-instrumented run. */
struct ObserverCapture
{
    std::string stats;
    std::string samplerCsv;
    std::string samplerJson;
    std::string chrome;
    std::string commits;
};

/** Flatten a commit stream into a canonical, diffable text form. */
std::string
commitText(const check::AccessLog &log)
{
    std::ostringstream os;
    for (const auto &a : log.accesses()) {
        os << a.tick << ' ' << a.node << ' '
           << (a.kind == check::AccessRecord::Kind::Read ? 'R' : 'W')
           << ' ' << a.addr << ' ' << unsigned(a.len);
        for (unsigned b = 0; b < a.len; ++b)
            os << ' ' << unsigned(a.value[b]);
        os << '\n';
    }
    for (const auto &p : log.prefetchIssues()) {
        os << "pf " << p.tick << ' ' << p.node << ' ' << p.trigger
           << ' ' << p.block << '\n';
    }
    return os.str();
}

/** One lu run at @p shards with every observer attached. */
ObserverCapture
observersAtShards(unsigned shards)
{
    MachineConfig cfg;
    cfg.numProcs = 16;
    cfg.meshCols = 4;
    cfg.prefetch.scheme = PrefetchScheme::IDet;
    cfg.shards = shards;
    Machine m(cfg);
    auto wl = apps::makeWorkload("lu", 1);
    m.enableSampling(5000);
    m.enableChromeTrace();
    check::AccessLog log;
    m.enableCommitRecording(log);
    wl->attach(m);
    m.run();
    EXPECT_TRUE(m.allFinished()) << "shards=" << shards;
    EXPECT_TRUE(wl->verify(m)) << "shards=" << shards;

    ObserverCapture cap;
    std::ostringstream stats, csv, json, chrome;
    m.dumpStats(stats);
    cap.stats = stats.str();
    m.sampler()->dumpCsv(csv);
    cap.samplerCsv = csv.str();
    m.sampler()->dumpJson(json);
    cap.samplerJson = json.str();
    m.chromeTracer()->write(chrome);
    cap.chrome = chrome.str();
    cap.commits = commitText(log);
    return cap;
}

} // namespace

TEST(ShardedObservers, ByteIdenticalAcrossShardCounts)
{
    // The tentpole contract: sampler series, chrome trace, and the
    // merged commit stream reproduce the --shards 1 reference exactly
    // at every partition.
    ObserverCapture ref = observersAtShards(1);
    ASSERT_FALSE(ref.samplerCsv.empty());
    ASSERT_FALSE(ref.chrome.empty());
    ASSERT_FALSE(ref.commits.empty());
    for (unsigned shards : {2u, 8u}) {
        ObserverCapture got = observersAtShards(shards);
        EXPECT_EQ(ref.stats, got.stats) << "shards=" << shards;
        EXPECT_EQ(ref.samplerCsv, got.samplerCsv) << "shards=" << shards;
        EXPECT_EQ(ref.samplerJson, got.samplerJson)
                << "shards=" << shards;
        EXPECT_EQ(ref.chrome, got.chrome) << "shards=" << shards;
        EXPECT_EQ(ref.commits, got.commits) << "shards=" << shards;
    }
}

TEST(ShardedObservers, AreReadOnlyOnTheShardedPath)
{
    // Attaching every observer must leave the sharded run untouched:
    // the aggregate dump is byte-identical with and without them.
    std::string plain = statsAtShards("lu", 8, PrefetchScheme::IDet);
    EXPECT_EQ(plain, observersAtShards(8).stats);
}

TEST(ShardedObservers, CommitStreamIdenticalForFuzzPrograms)
{
    // The oracle replays this stream; it must not depend on the
    // partition even for the irregular fuzz-generated programs.
    auto commitsAt = [](std::uint64_t seed, unsigned shards) {
        ProgramSpec spec = ProgramSpec::generate(seed);
        MachineConfig cfg;
        cfg.numProcs = spec.threads;
        if (cfg.numProcs < 4)
            cfg.meshCols = cfg.numProcs;
        cfg.prefetch.scheme = PrefetchScheme::Adaptive;
        cfg.prefetch.degree = spec.degree;
        cfg.seed = spec.seed;
        cfg.shards = shards;
        Machine m(cfg);
        FuzzWorkload wl(spec);
        check::AccessLog log;
        m.enableCommitRecording(log);
        wl.attach(m);
        m.run(50'000'000);
        EXPECT_TRUE(m.allFinished());
        return commitText(log);
    };
    for (std::uint64_t seed : {3ULL, 42ULL}) {
        std::string ref = commitsAt(seed, 1);
        ASSERT_FALSE(ref.empty());
        for (unsigned shards : {2u, 4u}) {
            EXPECT_EQ(ref, commitsAt(seed, shards))
                    << "seed " << seed << " shards " << shards;
        }
    }
}

TEST(ShardedObserversDeath, SerialOnlyObserversFailLoudly)
{
    // The one observer without a staging representation (the binary
    // SLC reference trace) must refuse the sharded engine with the
    // uniform gate message instead of silently interleaving records.
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.shards = 2;
    std::string path = std::string(::testing::TempDir()) +
                       "gate.psimtrace";
    EXPECT_DEATH(
            {
                Machine m(cfg);
                TraceWriter w(path);
                m.enableTracing(w);
            },
            "not shard-aware");
    std::remove(path.c_str());
}
