/**
 * @file
 * Tests of the sharded (windowed, conservatively synchronized) event
 * engine: the deterministic (owner, counter) ordering contract of
 * EventQueue::runWindow, and the machine-level guarantee that stats
 * are byte-identical at every shard count (`--shards 1` is the
 * reference ordering; 2, 4, 8 must reproduce it exactly).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/driver.hh"
#include "check/fuzzgen.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sys/machine.hh"

#include "harness.hh"

using namespace psim;
using namespace psim::check;

// ---- EventQueue window semantics ----

TEST(ShardedQueue, WindowEndIsExclusive)
{
    EventQueue eq;
    eq.setShardOrder(2);
    eq.setContextOwner(0);
    std::vector<Tick> fired;
    eq.schedule(5, [&] { fired.push_back(5); });
    eq.schedule(10, [&] { fired.push_back(10); });

    // An event exactly at the lookahead horizon belongs to the NEXT
    // window; firing it early would let it race cross-shard messages
    // exchanged at the boundary.
    eq.runWindow(10);
    EXPECT_EQ(fired, (std::vector<Tick>{5}));
    EXPECT_EQ(eq.nextWhen(), 10u);

    eq.runWindow(11);
    EXPECT_EQ(fired, (std::vector<Tick>{5, 10}));
    EXPECT_TRUE(eq.empty());
}

TEST(ShardedQueue, SameTickFiresInOwnerOrderNotInsertionOrder)
{
    EventQueue eq;
    eq.setShardOrder(4);
    std::vector<int> order;

    // Insert same-tick events in descending owner order; runWindow
    // must fire them ascending (owner, per-owner counter) regardless.
    eq.scheduleRemote(7, 3, [&] { order.push_back(3); });
    eq.scheduleRemote(7, 1, [&] { order.push_back(1); });
    eq.scheduleRemote(7, 0, [&] { order.push_back(0); });
    eq.scheduleRemote(7, 2, [&] { order.push_back(2); });
    eq.runWindow(8);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ShardedQueue, SameOwnerSameTickKeepsScheduleOrder)
{
    EventQueue eq;
    eq.setShardOrder(2);
    std::vector<int> order;
    eq.scheduleRemote(3, 1, [&] { order.push_back(10); });
    eq.scheduleRemote(3, 1, [&] { order.push_back(11); });
    eq.scheduleRemote(3, 0, [&] { order.push_back(0); });
    eq.runWindow(4);
    EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
}

TEST(ShardedQueue, SameTickChildrenFireThisTickAfterParents)
{
    EventQueue eq;
    eq.setShardOrder(2);
    eq.setContextOwner(0);
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(1);
        // A same-tick child scheduled while the staging heap drains
        // tick 5 fires inside this window. It inherits owner 0 and the
        // next owner-0 counter, so it orders BEFORE the already-staged
        // owner-1 event: the tick's total order is strictly
        // (owner, counter), independent of when events were inserted
        // -- that is what makes firing shard-count invariant.
        eq.schedule(5, [&] { order.push_back(2); });
    });
    eq.scheduleRemote(5, 1, [&] { order.push_back(3); });
    eq.runWindow(6);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(eq.empty());
}

TEST(ShardedQueue, CancelOfPendingAndStagedEvents)
{
    EventQueue eq;
    eq.setShardOrder(2);
    eq.setContextOwner(0);
    std::vector<int> order;

    // Cancel before the window: never fires.
    EventQueue::EventId a = eq.schedule(4, [&] { order.push_back(-1); });
    eq.cancel(a);

    // Cancel from a same-tick event with lower seq: the victim has
    // already been pulled into the staging heap when the canceller
    // runs, so this exercises the staged-cancellation path.
    EventQueue::EventId b = 0;
    eq.schedule(6, [&] {
        order.push_back(1);
        eq.cancel(b);
    });
    b = eq.scheduleRemote(6, 1, [&] { order.push_back(-2); });
    eq.scheduleRemote(6, 1, [&] { order.push_back(2); });

    eq.runWindow(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(eq.empty());

    // Double-cancel and cancel-after-fire are no-ops.
    eq.cancel(a);
    eq.cancel(b);
}

TEST(ShardedQueue, RunWindowAdvancesNowToWindowStartAtMost)
{
    EventQueue eq;
    eq.setShardOrder(1);
    eq.setContextOwner(0);
    eq.schedule(100, [] {});
    // Nothing in [0, 50): now must not run past the window.
    eq.runWindow(50);
    EXPECT_LT(eq.now(), 50u);
    eq.advanceTo(50);
    EXPECT_EQ(eq.now(), 50u);
    eq.runWindow(101);
    EXPECT_EQ(eq.now(), 100u);
}

// ---- machine-level determinism ----

namespace
{

/** dumpStats text of one full run of @p name at @p shards. */
std::string
statsAtShards(const std::string &name, unsigned shards,
              PrefetchScheme scheme, unsigned procs = 16,
              bool audit = false)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.meshCols = procs >= 16 ? 4 : procs;
    if (procs == 64)
        cfg.meshCols = 8;
    cfg.prefetch.scheme = scheme;
    cfg.shards = shards;
    cfg.audit = audit;
    apps::RunOptions opts;
    opts.checkInvariants = false;
    apps::Run run = apps::runWorkload(name, cfg, opts);
    EXPECT_TRUE(run.finished) << name << " at shards=" << shards;
    std::ostringstream os;
    run.machine->dumpStats(os);
    return os.str();
}

/** dumpStats text of one fuzz program at @p shards. */
std::string
fuzzStatsAtShards(std::uint64_t seed, unsigned shards)
{
    ProgramSpec spec = ProgramSpec::generate(seed);
    MachineConfig cfg;
    cfg.numProcs = spec.threads;
    if (cfg.numProcs < 4)
        cfg.meshCols = cfg.numProcs;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;
    cfg.prefetch.degree = spec.degree;
    cfg.seed = spec.seed;
    cfg.shards = shards;
    Machine m(cfg);
    FuzzWorkload wl(spec);
    wl.attach(m);
    m.run(50'000'000);
    EXPECT_TRUE(m.allFinished()) << "seed " << seed << " shards " << shards;
    EXPECT_TRUE(wl.verify(m)) << "seed " << seed << " shards " << shards;
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

} // namespace

TEST(ShardedMachine, StatsByteIdenticalAcrossShardCounts)
{
    // The fig6 configuration (16 procs, infinite SLC) on two
    // applications with different communication structure.
    for (const char *name : {"lu", "mp3d"}) {
        std::string ref = statsAtShards(name, 1, PrefetchScheme::IDet);
        ASSERT_FALSE(ref.empty());
        for (unsigned shards : {2u, 4u, 8u}) {
            EXPECT_EQ(ref, statsAtShards(name, shards,
                                         PrefetchScheme::IDet))
                    << name << " diverged at shards=" << shards;
        }
    }
}

TEST(ShardedMachine, StatsByteIdenticalAt64Nodes)
{
    std::string s1 = statsAtShards("lu", 1, PrefetchScheme::Sequential,
                                   64);
    EXPECT_EQ(s1, statsAtShards("lu", 4, PrefetchScheme::Sequential, 64));
}

TEST(ShardedMachine, FuzzCorpusByteIdenticalAcrossShardCounts)
{
    for (std::uint64_t seed : {3ULL, 11ULL, 42ULL}) {
        std::string ref = fuzzStatsAtShards(seed, 1);
        ASSERT_FALSE(ref.empty());
        for (unsigned shards : {2u, 4u}) {
            EXPECT_EQ(ref, fuzzStatsAtShards(seed, shards))
                    << "seed " << seed << " diverged at shards="
                    << shards;
        }
    }
}

TEST(ShardedMachine, AuditFlagDoesNotPerturbShardedStats)
{
    // The runtime audit must be observability-grade on the sharded
    // path too: aggregates identical with the flag on and off.
    std::string off = statsAtShards("lu", 2, PrefetchScheme::IDet, 16,
                                    false);
    std::string on = statsAtShards("lu", 2, PrefetchScheme::IDet, 16,
                                   true);
    EXPECT_EQ(off, on);
}
