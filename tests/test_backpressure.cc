/**
 * @file
 * Backpressure and resource-exhaustion paths: FLWB-full processor
 * stalls, SLWB(MSHR)-full refusals, the demand-reserved last slot, and
 * prefetch drops under pressure.
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace psim;
using namespace psim::test;

namespace
{

Addr
pageBase(const MachineConfig &cfg, unsigned page)
{
    return 0x10000000ULL + static_cast<Addr>(page) * cfg.pageSize;
}

} // namespace

TEST(Backpressure, TinyFlwbStallsBurstyWriters)
{
    // A burst of writes to distinct remote blocks with a 2-entry FLWB
    // must stall the processor (writeStall > 0) but still complete and
    // perform every write.
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.flwbEntries = 2;
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 1); // remote page

    auto writer = [](apps::ThreadCtx &ctx, Addr b) -> Task {
        for (unsigned i = 0; i < 64; ++i)
            co_await ctx.write<std::uint64_t>(b + i * 32, i + 1);
    };
    sys.run(0, writer(sys.ctx(0), base));
    ASSERT_TRUE(sys.finish());

    EXPECT_GT(sys.m.node(0).cpu().writeStall.value(), 0.0);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(sys.m.store().load<std::uint64_t>(base + i * 32),
                  i + 1);
    sys.m.checkCoherenceInvariants();
}

TEST(Backpressure, TinySlwbForcesFlwbRetries)
{
    // With only 2 pending-transaction entries, a stream of write
    // misses exhausts the SLWB; the FLWB must retry (never drop) and
    // the run must still be correct.
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.slwbEntries = 2;
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 1);

    auto writer = [](apps::ThreadCtx &ctx, Addr b) -> Task {
        for (unsigned i = 0; i < 48; ++i)
            co_await ctx.write<std::uint64_t>(b + i * 32, 7 * i + 1);
    };
    sys.run(0, writer(sys.ctx(0), base));
    ASSERT_TRUE(sys.finish());
    EXPECT_GT(sys.m.node(0).flwb().retries.value(), 0.0);
    for (unsigned i = 0; i < 48; ++i)
        EXPECT_EQ(sys.m.store().load<std::uint64_t>(base + i * 32),
                  7 * i + 1);
    sys.m.checkCoherenceInvariants();
}

TEST(Backpressure, PrefetchesNeverTakeTheLastSlwbSlot)
{
    // Sequential prefetching with a tiny SLWB: prefetches must be
    // dropped (pfDropNoSlot) rather than starve demand accesses, and
    // the workload still finishes.
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.slwbEntries = 2;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;
    cfg.prefetch.degree = 4;
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 1);

    auto reader = [](apps::ThreadCtx &ctx, Addr b) -> Task {
        for (unsigned i = 0; i < 128; ++i) {
            co_await ctx.read<std::uint64_t>(b + i * 32);
            co_await ctx.think(5);
        }
    };
    sys.run(0, reader(sys.ctx(0), base));
    ASSERT_TRUE(sys.finish());
    EXPECT_GT(sys.m.node(0).slc().pfDropNoSlot.value(), 0.0);
    sys.m.checkCoherenceInvariants();
}

TEST(Backpressure, PendingPrefetchAbsorbsDuplicateCandidates)
{
    // Degree 4 with a fast trigger rate: the same block is proposed
    // repeatedly while its prefetch is still pending; those duplicates
    // must be dropped (pfDropPending), not double-allocated.
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;
    cfg.prefetch.degree = 4;
    MiniSystem sys(cfg);
    Addr base = pageBase(cfg, 1);

    auto reader = [](apps::ThreadCtx &ctx, Addr b) -> Task {
        for (unsigned i = 0; i < 64; ++i)
            co_await ctx.read<std::uint64_t>(b + i * 32);
    };
    sys.run(0, reader(sys.ctx(0), base));
    ASSERT_TRUE(sys.finish());
    EXPECT_GT(sys.m.node(0).slc().pfDropPending.value(), 0.0);
}

TEST(Backpressure, LockHoldersBlockFlwbDrainsSafely)
{
    // Heavy lock contention with a tiny FLWB: the queue-based lock and
    // the write buffers must not deadlock against each other.
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.flwbEntries = 2;
    cfg.slwbEntries = 2;
    MiniSystem sys(cfg);
    Addr counter = pageBase(cfg, 1);
    Addr lock = pageBase(cfg, 2);

    auto t = [](apps::ThreadCtx &ctx, Addr c, Addr l) -> Task {
        for (int i = 0; i < 10; ++i) {
            co_await ctx.lock(l);
            auto v = co_await ctx.read<std::uint64_t>(c);
            // Extra writes to pressure the buffers inside the section.
            co_await ctx.write<std::uint64_t>(c + 32, v);
            co_await ctx.write<std::uint64_t>(c + 64, v + 1);
            co_await ctx.write<std::uint64_t>(c, v + 1);
            co_await ctx.unlock(l);
        }
    };
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, t(sys.ctx(n), counter, lock));
    ASSERT_TRUE(sys.finish());
    EXPECT_EQ(sys.m.store().load<std::uint64_t>(counter), 40u);
    sys.m.checkCoherenceInvariants();
}
