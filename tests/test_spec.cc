/**
 * @file
 * Declarative experiment specs (sim/spec.hh): strict parse-time
 * rejection, grid expansion, job-count and shard-count independence of
 * the canonical results document, and a pinned golden-bytes snapshot.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/json.hh"
#include "sim/spec.hh"

using namespace psim;

namespace
{

spec::Spec
parseText(const std::string &text)
{
    return spec::parseSpec(json::parse(text, "inline spec"), "inline spec");
}

// Two fast cells (LU with and without sequential prefetching), with
// the miss characterizer on so the document exercises every section.
const char *kSmallSpec = R"json({
  "schema": "psim-spec-v1",
  "name": "spec_small",
  "report": "none",
  "run": {"characterize": true},
  "grid": [
    {"axes": [
      {"name": "app", "values": ["lu"]},
      {"name": "scheme", "values": ["none", "seq"]}
    ]}
  ]
})json";

std::string
scrubbedSmallDoc(unsigned jobs, unsigned shards)
{
    spec::Spec sp = parseText(kSmallSpec);
    spec::ExecOptions exec;
    exec.jobs = jobs;
    exec.shards = shards;
    spec::Results r = spec::runSpec(sp, exec);
    return spec::scrubVolatile(spec::resultsDocument(sp, exec, r));
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(SpecParse, ExpandsRowMajorWithLastAxisFastest)
{
    spec::Spec sp = parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": [
        {"name": "app", "values": ["lu", "ocean"]},
        {"name": "scheme", "values": ["none", "seq"]}
      ]}]
    })json");
    EXPECT_EQ(sp.cellCount(), 4u);
    EXPECT_EQ(sp.cellIndex(0, {0, 0}), 0u);
    EXPECT_EQ(sp.cellIndex(0, {0, 1}), 1u);
    EXPECT_EQ(sp.cellIndex(0, {1, 0}), 2u);
    EXPECT_EQ(sp.axis(0, "scheme").values[1].id, "seq");
}

TEST(SpecParse, GroupOffsetsAndAppOverride)
{
    spec::Spec sp = parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [
        {"axes": [{"name": "app", "values": ["lu", "ocean", "water"]}]},
        {"axes": [{"name": "app", "values": ["lu"]},
                  {"name": "scheme", "values": ["none", "seq"]}]}
      ]
    })json");
    EXPECT_EQ(sp.groupOffset(0), 0u);
    EXPECT_EQ(sp.groupOffset(1), 3u);
    EXPECT_EQ(sp.cellCount(), 5u);
    sp.overrideApps({"mp3d"});
    EXPECT_EQ(sp.cellCount(), 3u);
    EXPECT_EQ(sp.axis(0, "app").values[0].id, "mp3d");
}

TEST(SpecParse, AxisValueObjectsCarryIdLabelAndPatches)
{
    spec::Spec sp = parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": [
        {"name": "app", "values": ["lu"]},
        {"name": "variant", "values": [
          {"id": "base"},
          {"id": "big", "label": "BIG",
           "config": {"slcSize": 262144}, "run": {"scale": 2}}
        ]}
      ]}]
    })json");
    const spec::Axis &axis = sp.axis(0, "variant");
    EXPECT_EQ(axis.values[0].label, "base");
    EXPECT_EQ(axis.values[1].label, "BIG");
    ASSERT_EQ(axis.values[1].config.size(), 1u);
    EXPECT_EQ(axis.values[1].config[0].first, "slcSize");
    ASSERT_TRUE(axis.values[1].run.scale.has_value());
    EXPECT_EQ(*axis.values[1].run.scale, 2u);
}

TEST(SpecParseDeathTest, RejectsUnknownKeysAndBadTypes)
{
    // Satellite guarantee: misspelled members anywhere in a spec are
    // parse-time fatal, never silently ignored.
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "frobnicate": 1,
      "grid": [{"axes": [{"name": "app", "values": ["lu"]}]}]
    })json"), "unknown key 'frobnicate'");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": [{"name": "app", "values": ["lu"]}],
                "colour": "red"}]
    })json"), "unknown key 'colour'");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": 7,
      "grid": [{"axes": [{"name": "app", "values": ["lu"]}]}]
    })json"), "expected string, got number");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v2", "name": "t", "report": "none",
      "grid": []
    })json"), "unsupported schema");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none"
    })json"), "missing required key 'grid'");
}

TEST(SpecParseDeathTest, RejectsDegenerateGrids)
{
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": []
    })json"), "at least one group");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": []}]
    })json"), "axes must be nonempty");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": [{"name": "scheme", "values": ["none"]}]}]
    })json"), "has no application");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": [{"name": "app", "values": ["lu", "lu"]}]}]
    })json"), "duplicate cell id");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": [{"name": "app",
                          "values": [{"config": {"seed": 1}}]}]}]
    })json"), "needs an explicit");
}

TEST(SpecParseDeathTest, RejectsBadConfigAndRunValues)
{
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "config": {"blokSize": 64},
      "grid": [{"axes": [{"name": "app", "values": ["lu"]}]}]
    })json"), "unknown machine-config key 'blokSize'");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "grid": [{"axes": [{"name": "app", "values": ["lu"]},
                         {"name": "scheme", "values": ["warp9"]}]}]
    })json"), "unknown prefetch scheme 'warp9'");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "run": {"scale": 0},
      "grid": [{"axes": [{"name": "app", "values": ["lu"]}]}]
    })json"), "scale must be >= 1");
    EXPECT_DEATH(parseText(R"json({
      "schema": "psim-spec-v1", "name": "t", "report": "none",
      "config": {"sequentialConsistency": 3},
      "grid": [{"axes": [{"name": "app", "values": ["lu"]}]}]
    })json"), "expected boolean, got number");
}

TEST(SpecParseDeathTest, LoadSpecRequiresMatchingFileName)
{
    std::string path = testing::TempDir() + "/not_spec_small.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(kSmallSpec, f);
    std::fclose(f);
    EXPECT_DEATH(spec::loadSpec(path), "does not match the file name");
}

TEST(SpecConfig, ApplyConfigKeySetsFields)
{
    MachineConfig cfg;
    spec::applyConfigKey(cfg, "blockSize", json::Value(128), "t");
    spec::applyConfigKey(cfg, "prefetch.degree", json::Value(4), "t");
    spec::applyConfigKey(cfg, "sequentialConsistency", json::Value(true),
                         "t");
    spec::applyConfigKey(cfg, "scheme", json::Value("seq"), "t");
    EXPECT_EQ(cfg.blockSize, 128u);
    EXPECT_EQ(cfg.prefetch.degree, 4u);
    EXPECT_TRUE(cfg.sequentialConsistency);
    EXPECT_EQ(cfg.prefetch.scheme, PrefetchScheme::Sequential);
}

TEST(SpecRun, ResultsAreIndependentOfJobCount)
{
    // The collect-then-print runGrid contract, end to end: the scrubbed
    // canonical document is byte-identical at any thread count.
    EXPECT_EQ(scrubbedSmallDoc(1, 0), scrubbedSmallDoc(8, 0));
}

TEST(SpecRun, ResultsAreIndependentOfShardCount)
{
    // The sharded engine's deterministic merge order is the same at
    // every shard count (serial shards=0 is a different, also-valid
    // schedule; identity is only promised within the sharded engine).
    EXPECT_EQ(scrubbedSmallDoc(2, 1), scrubbedSmallDoc(2, 8));
}

TEST(SpecRun, GoldenBytesMatchPinnedSnapshot)
{
    // The scrubbed document for the small spec, byte for byte. If this
    // fails after an intentional simulator change, repin:
    //   cp build/tests/spec_small_actual.json tests/golden/spec_small.json
    std::string golden = slurp(PSIM_TEST_GOLDEN_DIR "/spec_small.json");
    std::string actual = scrubbedSmallDoc(2, 0);
    if (actual != golden) {
        std::FILE *f = std::fopen("spec_small_actual.json", "w");
        if (f) {
            std::fputs(actual.c_str(), f);
            std::fclose(f);
        }
        FAIL() << "document drifted from tests/golden/spec_small.json "
                  "(actual bytes written to spec_small_actual.json; "
                  "inspect with scripts/diff_results.py, repin only if "
                  "the change is intentional)";
    }
}
