/**
 * @file
 * Property-based tests: randomized multi-processor traffic, across
 * seeds and configurations, must always terminate, keep the coherence
 * invariants, and (where a functional oracle exists) compute correct
 * values.
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace psim;
using namespace psim::test;

namespace
{

Addr
pageBase(const MachineConfig &cfg, unsigned page)
{
    return 0x10000000ULL + static_cast<Addr>(page) * cfg.pageSize;
}

/**
 * Random reads and owner-partitioned writes over a small shared
 * region. Each node only writes its own slice (so the run is
 * data-race-free) but reads everywhere; a per-slice write counter
 * gives a functional oracle.
 */
Task
chaosThread(apps::ThreadCtx &ctx, Addr region, unsigned blocks,
            unsigned ops, Addr bar)
{
    const unsigned nproc = ctx.nthreads();
    const unsigned slice = blocks / nproc;
    const Addr my_slice = region + static_cast<Addr>(ctx.tid()) *
                                  slice * 32;
    unsigned my_writes = 0;

    for (unsigned i = 0; i < ops; ++i) {
        std::uint64_t r = ctx.rng().next();
        if (r % 4 == 0) {
            // Write somewhere in the owned slice.
            Addr a = my_slice + (r >> 8) % slice * 32;
            ++my_writes;
            co_await ctx.write<std::uint64_t>(a, my_writes);
        } else {
            // Read anywhere in the region.
            Addr a = region + (r >> 8) % blocks * 32;
            co_await ctx.read<std::uint64_t>(a);
        }
        if (r % 64 == 0)
            co_await ctx.think(1 + r % 17);
    }
    co_await ctx.barrier(bar);
}

struct ChaosParams
{
    std::uint64_t seed;
    PrefetchScheme scheme;
    unsigned slcSize;        // 0 = infinite
    bool migratory = false;  // directory migratory optimization
    bool sc = false;         // sequential consistency
};

} // namespace

class CoherenceChaos : public ::testing::TestWithParam<ChaosParams>
{
};

TEST_P(CoherenceChaos, InvariantsHoldUnderRandomTraffic)
{
    ChaosParams p = GetParam();
    MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.meshCols = 4;
    cfg.seed = p.seed;
    cfg.prefetch.scheme = p.scheme;
    cfg.slcSize = p.slcSize;
    cfg.migratoryOpt = p.migratory;
    cfg.sequentialConsistency = p.sc;

    MiniSystem sys(cfg);
    constexpr unsigned kBlocks = 256; // 8 KB shared region
    Addr region = pageBase(cfg, 0);
    Addr bar = pageBase(cfg, 40);
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        sys.run(n, chaosThread(sys.ctx(n), region, kBlocks, 600, bar));
    }
    ASSERT_TRUE(sys.finish(50000000)) << "machine deadlocked";
    sys.m.checkCoherenceInvariants();

    // Prefetch accounting: at quiesce every issued prefetch has ended
    // in exactly one outcome bucket, for every scheme and cache size.
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        const Slc &slc = sys.m.node(n).slc();
        double accounted = slc.pfUsefulTagged.value() +
                           slc.pfUsefulLate.value() +
                           slc.pfWriteHitTagged.value() +
                           slc.pfUselessInvalidated.value() +
                           slc.pfUselessReplaced.value() +
                           slc.pfAgedUnused.value() +
                           slc.pfUselessUnused.value();
        EXPECT_DOUBLE_EQ(accounted, slc.pfIssued.value())
                << "node " << n;
    }

    // Functional oracle: the last value written to each slice block is
    // whatever the owner wrote there; the backing store must reflect a
    // value each owner actually wrote (bounded by its write count).
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        unsigned slice = kBlocks / cfg.numProcs;
        for (unsigned b = 0; b < slice; ++b) {
            Addr a = region + (static_cast<Addr>(n) * slice + b) * 32;
            std::uint64_t v = sys.m.store().load<std::uint64_t>(a);
            EXPECT_LE(v, 600u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSchemes, CoherenceChaos,
        ::testing::Values(
                ChaosParams{1, PrefetchScheme::None, 0},
                ChaosParams{2, PrefetchScheme::None, 4096},
                ChaosParams{3, PrefetchScheme::Sequential, 0},
                ChaosParams{4, PrefetchScheme::Sequential, 4096},
                ChaosParams{5, PrefetchScheme::IDet, 0},
                ChaosParams{6, PrefetchScheme::IDet, 4096},
                ChaosParams{7, PrefetchScheme::DDet, 0},
                ChaosParams{8, PrefetchScheme::DDet, 4096},
                ChaosParams{9, PrefetchScheme::Sequential, 1024},
                ChaosParams{10, PrefetchScheme::IDet, 1024},
                ChaosParams{11, PrefetchScheme::Adaptive, 0},
                ChaosParams{12, PrefetchScheme::Adaptive, 4096},
                ChaosParams{13, PrefetchScheme::IDetLookahead, 0},
                ChaosParams{14, PrefetchScheme::IDetLookahead, 2048},
                ChaosParams{15, PrefetchScheme::Sequential, 0, true},
                ChaosParams{16, PrefetchScheme::IDet, 4096, true},
                ChaosParams{17, PrefetchScheme::Sequential, 0, false,
                            true},
                ChaosParams{18, PrefetchScheme::None, 2048, true,
                            true}));

// Lock-protected increments with random contention: the count is exact
// regardless of scheme and cache size (tests lock + RC end to end).
class LockChaos : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LockChaos, CountersAreExact)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.meshCols = 4;
    cfg.seed = GetParam();
    cfg.slcSize = GetParam() % 2 ? 0 : 4096;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;

    MiniSystem sys(cfg);
    Addr counters = pageBase(cfg, 0); // 4 counters in distinct blocks
    Addr locks = pageBase(cfg, 1);

    auto t = [](apps::ThreadCtx &ctx, Addr cnts, Addr lks) -> Task {
        for (int i = 0; i < 30; ++i) {
            unsigned which = static_cast<unsigned>(ctx.rng().below(4));
            Addr c = cnts + which * 32;
            Addr l = lks + which * 32;
            co_await ctx.lock(l);
            auto v = co_await ctx.read<std::uint64_t>(c);
            co_await ctx.write<std::uint64_t>(c, v + 1);
            co_await ctx.unlock(l);
        }
    };
    for (NodeId n = 0; n < cfg.numProcs; ++n)
        sys.run(n, t(sys.ctx(n), counters, locks));
    ASSERT_TRUE(sys.finish(50000000));

    std::uint64_t total = 0;
    for (unsigned w = 0; w < 4; ++w)
        total += sys.m.store().load<std::uint64_t>(counters + w * 32);
    EXPECT_EQ(total, 8u * 30u);
    sys.m.checkCoherenceInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockChaos, ::testing::Values(11, 12, 13));

// Read-miss conservation: on the baseline machine, every demand read
// miss is classified exactly once (cold + coherence + replacement).
TEST(Properties, MissClassificationIsExhaustive)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.slcSize = 2048; // force replacements too
    MiniSystem sys(cfg);
    Addr region = pageBase(cfg, 0);
    Addr bar = pageBase(cfg, 40);
    for (NodeId n = 0; n < cfg.numProcs; ++n)
        sys.run(n, chaosThread(sys.ctx(n), region, 512, 800, bar));
    ASSERT_TRUE(sys.finish(50000000));

    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        const Slc &slc = sys.m.node(n).slc();
        EXPECT_DOUBLE_EQ(slc.missesCold.value() +
                         slc.missesCoherence.value() +
                         slc.missesReplacement.value(),
                         slc.demandReadMisses.value());
        EXPECT_GT(slc.missesReplacement.value(), 0.0);
    }
}
