/**
 * @file
 * Unit tests for the Reference Prediction Table and its four-state
 * control automaton (paper Figure 4).
 */

#include <gtest/gtest.h>

#include "core/rpt.hh"

using namespace psim;

namespace
{
constexpr Pc kPc = 0x4000;
}

TEST(Rpt, AllocatesOnlyOnMiss)
{
    Rpt rpt(256);
    // A hit in the SLC with no entry must not allocate.
    auto oc = rpt.observe(kPc, 1000, /*allocate_on_miss=*/false);
    EXPECT_FALSE(oc.entryHit);
    EXPECT_EQ(rpt.lookup(kPc), nullptr);

    oc = rpt.observe(kPc, 1000, true);
    EXPECT_FALSE(oc.entryHit);
    ASSERT_NE(rpt.lookup(kPc), nullptr);
    EXPECT_EQ(rpt.lookup(kPc)->state, RptState::New);
    EXPECT_DOUBLE_EQ(rpt.allocations.value(), 1.0);
}

TEST(Rpt, SecondAppearanceComputesStrideAndStartsPrefetching)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    auto oc = rpt.observe(kPc, 1032, true);
    EXPECT_TRUE(oc.entryHit);
    EXPECT_EQ(oc.state, RptState::Init);
    EXPECT_EQ(oc.stride, 32);
    EXPECT_TRUE(oc.prefetchable);
}

TEST(Rpt, ThreeInARowReachesSteady)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    rpt.observe(kPc, 1032, true);
    auto oc = rpt.observe(kPc, 1064, true);
    EXPECT_EQ(oc.state, RptState::Steady);
    EXPECT_TRUE(oc.prefetchable);
    EXPECT_DOUBLE_EQ(rpt.correct.value(), 1.0);
}

TEST(Rpt, SingleIncorrectFromSteadyKeepsStride)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    rpt.observe(kPc, 1032, true);
    rpt.observe(kPc, 1064, true); // steady
    // A single wrong prediction demotes to init without recalculating
    // the stride (Section 3.2).
    auto oc = rpt.observe(kPc, 5000, true);
    EXPECT_EQ(oc.state, RptState::Init);
    EXPECT_EQ(oc.stride, 32);
    EXPECT_TRUE(oc.prefetchable);
    // The old stride re-confirms: back to steady.
    oc = rpt.observe(kPc, 5032, true);
    EXPECT_EQ(oc.state, RptState::Steady);
}

TEST(Rpt, SecondIncorrectRecalculatesStrideInTransient)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    rpt.observe(kPc, 1032, true);
    rpt.observe(kPc, 1064, true);  // steady, stride 32
    rpt.observe(kPc, 5000, true);  // incorrect #1 -> init (stride 32)
    auto oc = rpt.observe(kPc, 5064, true); // incorrect #2 -> transient
    EXPECT_EQ(oc.state, RptState::Transient);
    EXPECT_EQ(oc.stride, 64); // recalculated
    EXPECT_TRUE(oc.prefetchable);
}

TEST(Rpt, ThreeIncorrectInARowStopPrefetching)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    rpt.observe(kPc, 1032, true);
    rpt.observe(kPc, 1064, true);   // steady
    rpt.observe(kPc, 5000, true);   // init
    rpt.observe(kPc, 9000, true);   // transient (stride 4000)
    auto oc = rpt.observe(kPc, 20000, true); // no-pref
    EXPECT_EQ(oc.state, RptState::NoPref);
    EXPECT_FALSE(oc.prefetchable);
}

TEST(Rpt, NoPrefRecoversThroughTransient)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    rpt.observe(kPc, 1032, true);
    rpt.observe(kPc, 1064, true);
    rpt.observe(kPc, 5000, true);
    rpt.observe(kPc, 9000, true);
    rpt.observe(kPc, 20000, true); // no-pref, stride 11000
    // A correct prediction at the no-pref stride re-enables detection.
    auto oc = rpt.observe(kPc, 31000, true);
    EXPECT_EQ(oc.state, RptState::Transient);
    EXPECT_TRUE(oc.prefetchable);
    oc = rpt.observe(kPc, 42000, true);
    EXPECT_EQ(oc.state, RptState::Steady);
}

TEST(Rpt, TransientCorrectGoesSteady)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    rpt.observe(kPc, 1032, true);  // init, stride 32
    rpt.observe(kPc, 2000, true);  // incorrect -> transient, stride 968
    auto oc = rpt.observe(kPc, 2968, true); // correct at new stride
    EXPECT_EQ(oc.state, RptState::Steady);
    EXPECT_EQ(oc.stride, 968);
}

TEST(Rpt, ZeroStrideIsNotPrefetchable)
{
    Rpt rpt(256);
    rpt.observe(kPc, 1000, true);
    auto oc = rpt.observe(kPc, 1000, true);
    EXPECT_EQ(oc.stride, 0);
    EXPECT_FALSE(oc.prefetchable);
}

TEST(Rpt, NegativeStridesWork)
{
    Rpt rpt(256);
    rpt.observe(kPc, 5000, true);
    rpt.observe(kPc, 4968, true);
    auto oc = rpt.observe(kPc, 4936, true);
    EXPECT_EQ(oc.state, RptState::Steady);
    EXPECT_EQ(oc.stride, -32);
}

TEST(Rpt, ConflictingPcEvictsEntry)
{
    Rpt rpt(16); // small table: PCs 16 words apart collide
    Pc pc_a = 0x1000;
    Pc pc_b = 0x1000 + 16 * 4; // same index, different tag
    rpt.observe(pc_a, 1000, true);
    rpt.observe(pc_b, 9000, true);
    EXPECT_EQ(rpt.lookup(pc_a), nullptr);
    ASSERT_NE(rpt.lookup(pc_b), nullptr);
    EXPECT_DOUBLE_EQ(rpt.conflicts.value(), 1.0);
}

TEST(Rpt, DistinctPcsTrackIndependentStreams)
{
    Rpt rpt(256);
    // Different table indices: the RPT drops the low two PC bits, so
    // word-adjacent instructions land in adjacent entries.
    Pc pc_a = 0x1000;
    Pc pc_b = 0x1004;
    rpt.observe(pc_a, 1000, true);
    rpt.observe(pc_b, 50000, true);
    rpt.observe(pc_a, 1032, true);
    rpt.observe(pc_b, 50672, true);
    ASSERT_NE(rpt.lookup(pc_a), nullptr);
    ASSERT_NE(rpt.lookup(pc_b), nullptr);
    EXPECT_EQ(rpt.lookup(pc_a)->stride, 32);
    EXPECT_EQ(rpt.lookup(pc_b)->stride, 672);
}

// Property-style sweep: a clean stride stream of any stride reaches
// steady after three accesses and stays there.
class RptSteadyStream : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(RptSteadyStream, StaysSteadyForever)
{
    std::int64_t stride = GetParam();
    Rpt rpt(256);
    Addr a = 1 << 20;
    rpt.observe(kPc, a, true);
    rpt.observe(kPc, a + stride, true);
    for (int i = 2; i < 50; ++i) {
        auto oc = rpt.observe(kPc,
                static_cast<Addr>(static_cast<std::int64_t>(a) +
                                  stride * i), true);
        EXPECT_EQ(oc.state, RptState::Steady) << "access " << i;
        EXPECT_EQ(oc.stride, stride);
    }
    EXPECT_DOUBLE_EQ(rpt.incorrect.value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Strides, RptSteadyStream,
        ::testing::Values(8, 32, 40, 672, 2080, -32, -672, 4096));

TEST(RptDeath, NonPowerOfTwoSizePanics)
{
    EXPECT_DEATH(Rpt rpt(100), "power of two");
}
