/**
 * @file
 * The JSON document model (sim/json.hh): strict parsing, deterministic
 * serialization, and the typed accessors the spec layer relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/json.hh"

using namespace psim;
using json::Value;

TEST(JsonParse, RoundTripsACanonicalDocument)
{
    const std::string text =
        R"({"schema":"psim-results-v1","n":3,"neg":-2.5,"flag":true,)"
        R"("none":null,"arr":[1,"two",false],"nested":{"a":{"b":[]}}})";
    Value doc = json::parse(text, "doc");
    EXPECT_EQ(json::serialize(doc), text);
}

TEST(JsonParse, PreservesMemberOrder)
{
    // Serialization must be insertion-ordered, not sorted: golden
    // documents are compared byte-for-byte.
    Value doc = json::parse(R"({"z":1,"a":2,"m":3})", "doc");
    EXPECT_EQ(json::serialize(doc), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonParse, ReadsEscapesAndUnicode)
{
    Value doc = json::parse(R"({"s":"a\"b\\c\n\tA"})", "doc");
    EXPECT_EQ(doc.find("s")->asString("s"), "a\"b\\c\n\tA");
}

TEST(JsonParse, NumbersSurviveExactly)
{
    // %.17g guarantees an exact double round-trip.
    Value doc = json::parse(R"([0.1,12345678901234567,1e-300])", "doc");
    const auto &arr = doc.asArray("doc");
    EXPECT_EQ(arr[0].asNumber("v"), 0.1);
    EXPECT_EQ(arr[1].asNumber("v"), 12345678901234567.0);
    EXPECT_EQ(arr[2].asNumber("v"), 1e-300);
    EXPECT_EQ(json::serialize(doc), json::serialize(json::parse(
                  json::serialize(doc), "again")));
}

TEST(JsonSerialize, NonFiniteNumbersBecomeNull)
{
    Value v = Value::makeObject();
    v.set("nan", Value(std::nan("")));
    v.set("inf", Value(HUGE_VAL));
    EXPECT_EQ(json::serialize(v), R"({"nan":null,"inf":null})");
}

TEST(JsonParseDeathTest, RejectsMalformedInput)
{
    EXPECT_DEATH(json::parse("{\"a\":1} extra", "doc"),
                 "trailing garbage");
    EXPECT_DEATH(json::parse("{\"a\":1,\"a\":2}", "doc"),
                 "duplicate object key");
    EXPECT_DEATH(json::parse("{\"a\":}", "doc"), "doc:");
    EXPECT_DEATH(json::parse("[1,]", "doc"), "doc:");
    EXPECT_DEATH(json::parse("", "doc"), "doc:");
    EXPECT_DEATH(json::parse("tru", "doc"), "doc:");
    EXPECT_DEATH(json::parse("\"unterminated", "doc"), "doc:");
}

TEST(JsonAccessorsDeathTest, TypeMismatchesAreFatal)
{
    Value doc = json::parse(R"({"s":"x","n":1.5,"i":-1})", "doc");
    EXPECT_DEATH(doc.find("s")->asNumber("field s"),
                 "field s: expected number, got string");
    EXPECT_DEATH(doc.find("n")->asBool("field n"),
                 "field n: expected boolean, got number");
    EXPECT_DEATH(doc.find("n")->asUnsigned("field n", 100),
                 "nonnegative integer");
    EXPECT_DEATH(doc.find("i")->asUnsigned("field i", 100),
                 "nonnegative integer");
    Value big = json::parse("4096", "doc");
    EXPECT_DEATH(big.asUnsigned("field", 1024), "exceeds the maximum");
}

TEST(JsonValue, FindOnMissingKeyIsNull)
{
    Value doc = json::parse(R"({"a":1})", "doc");
    EXPECT_EQ(doc.find("b"), nullptr);
    EXPECT_NE(doc.find("a"), nullptr);
    EXPECT_EQ(doc.size(), 1u);
}
