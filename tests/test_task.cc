/**
 * @file
 * Unit tests for the coroutine Task type: suspension, resumption,
 * nesting via continuations, completion flags.
 */

#include <gtest/gtest.h>

#include <coroutine>
#include <vector>

#include "sys/task.hh"

using namespace psim;

namespace
{

/** A manual awaitable that parks the coroutine handle for the test. */
struct ManualAwait
{
    std::coroutine_handle<> *slot;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) noexcept
    {
        *slot = h;
    }

    void await_resume() const noexcept {}
};

} // namespace

TEST(Task, StartsSuspended)
{
    bool ran = false;
    auto make = [&]() -> Task {
        ran = true;
        co_return;
    };
    Task t = make();
    EXPECT_FALSE(ran) << "initial_suspend must be suspend_always";
    EXPECT_FALSE(t.done());
    t.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(t.done());
}

TEST(Task, SuspendsAtAwaitAndResumes)
{
    std::coroutine_handle<> parked;
    int phase = 0;
    auto make = [&]() -> Task {
        phase = 1;
        co_await ManualAwait{&parked};
        phase = 2;
    };
    Task t = make();
    t.resume();
    EXPECT_EQ(phase, 1);
    EXPECT_FALSE(t.done());
    ASSERT_TRUE(parked);
    parked.resume();
    EXPECT_EQ(phase, 2);
    EXPECT_TRUE(t.done());
}

TEST(Task, NestedTaskRunsToCompletionThenResumesCaller)
{
    std::vector<int> trace;
    auto inner = [&]() -> Task {
        trace.push_back(2);
        co_return;
    };
    auto outer = [&]() -> Task {
        trace.push_back(1);
        co_await inner();
        trace.push_back(3);
    };
    Task t = outer();
    t.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(t.done());
}

TEST(Task, NestedSuspensionPropagatesToRoot)
{
    std::coroutine_handle<> parked;
    std::vector<int> trace;
    auto inner = [&]() -> Task {
        trace.push_back(2);
        co_await ManualAwait{&parked};
        trace.push_back(3);
    };
    auto outer = [&]() -> Task {
        trace.push_back(1);
        co_await inner();
        trace.push_back(4);
    };
    Task t = outer();
    t.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2}));
    EXPECT_FALSE(t.done());
    // Resuming the innermost handle drives the whole chain to the end.
    parked.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(t.done());
}

TEST(Task, DeeplyNestedChains)
{
    std::coroutine_handle<> parked;
    int depth_reached = 0;
    std::function<Task(int)> rec = [&](int depth) -> Task {
        if (depth == 0) {
            depth_reached = 100;
            co_await ManualAwait{&parked};
            co_return;
        }
        co_await rec(depth - 1);
        ++depth_reached;
    };
    Task t = rec(20);
    t.resume();
    EXPECT_EQ(depth_reached, 100);
    parked.resume();
    EXPECT_EQ(depth_reached, 120);
    EXPECT_TRUE(t.done());
}

TEST(Task, MoveTransfersOwnership)
{
    auto make = [&]() -> Task { co_return; };
    Task a = make();
    Task b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.resume();
    EXPECT_TRUE(b.done());
}

TEST(Task, DefaultConstructedIsDone)
{
    Task t;
    EXPECT_FALSE(t.valid());
    EXPECT_TRUE(t.done());
    t.resume(); // must be a no-op, not a crash
}

TEST(Task, LoopWithManyAwaits)
{
    std::coroutine_handle<> parked;
    int count = 0;
    auto make = [&]() -> Task {
        for (int i = 0; i < 100; ++i) {
            co_await ManualAwait{&parked};
            ++count;
        }
    };
    Task t = make();
    t.resume();
    for (int i = 0; i < 100; ++i)
        parked.resume();
    EXPECT_EQ(count, 100);
    EXPECT_TRUE(t.done());
}
