/**
 * @file
 * Tests of the machine assembly: metric aggregation, statistics
 * dumping, configuration variants, and the run loop.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "apps/driver.hh"
#include "harness.hh"

using namespace psim;
using namespace psim::test;

TEST(Machine, MetricsAggregateAcrossNodes)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    apps::Run run = apps::runWorkload("lu", cfg);
    ASSERT_TRUE(run.finished);

    double loads = 0, misses = 0, stall = 0;
    for (NodeId n = 0; n < cfg.numProcs; ++n) {
        loads += run.machine->node(n).cpu().loads.value();
        misses += run.machine->node(n).slc().demandReadMisses.value();
        stall += run.machine->node(n).cpu().readStall.value();
    }
    RunMetrics mx = run.machine->metrics();
    EXPECT_DOUBLE_EQ(mx.reads, loads);
    EXPECT_DOUBLE_EQ(mx.readMisses, misses);
    EXPECT_DOUBLE_EQ(mx.readStall, stall);
    EXPECT_GT(mx.execTicks, 0u);
    EXPECT_GT(mx.flits, 0.0);
}

TEST(Machine, MissClassesSumToMisses)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.slcSize = 8192;
    apps::Run run = apps::runWorkload("ocean", cfg);
    ASSERT_TRUE(run.finished);
    RunMetrics mx = run.machine->metrics();
    EXPECT_DOUBLE_EQ(mx.missesCold + mx.missesCoherence +
                     mx.missesReplacement, mx.readMisses);
}

TEST(Machine, DumpStatsMentionsEveryNode)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    apps::Run run = apps::runWorkload("matmul", cfg);
    ASSERT_TRUE(run.finished);
    std::ostringstream os;
    run.machine->dumpStats(os);
    std::string out = os.str();
    for (NodeId n = 0; n < 4; ++n) {
        std::string prefix = "node" + std::to_string(n) + ".cpu.loads";
        EXPECT_NE(out.find(prefix), std::string::npos) << prefix;
    }
    EXPECT_NE(out.find("mesh.flits"), std::string::npos);
    EXPECT_NE(out.find("node0.slc.demandReadMisses"), std::string::npos);
}

TEST(Machine, RunLimitStopsEarly)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    apps::RunOptions opts;
    opts.limit = 50; // far too short for any workload
    opts.checkInvariants = false;
    apps::Run run = apps::runWorkload("lu", cfg, opts);
    EXPECT_FALSE(run.finished);
    EXPECT_LE(run.machine->eq().now(), 50u);
}

TEST(Machine, PrefetchEfficiencyIsNaNWithoutPrefetching)
{
    // With no prefetches issued there is no efficiency to report:
    // 0/0 is NaN, not a perfect 1.0 (which used to make baseline rows
    // look like flawless prefetchers in the tables).
    MachineConfig cfg;
    cfg.numProcs = 4;
    apps::Run run = apps::runWorkload("lu", cfg);
    ASSERT_TRUE(run.finished);
    EXPECT_DOUBLE_EQ(run.metrics.pfIssued, 0.0);
    EXPECT_TRUE(std::isnan(run.metrics.prefetchEfficiency()));
}

TEST(Machine, EightAndThirtyTwoProcessorConfigurations)
{
    // The machine is not hard-wired to 16 nodes: any mesh that tiles
    // works, and the workloads partition accordingly.
    for (unsigned procs : {8u, 32u}) {
        MachineConfig cfg;
        cfg.numProcs = procs;
        cfg.meshCols = 4;
        apps::Run run = apps::runWorkload("lu", cfg);
        ASSERT_TRUE(run.finished) << procs;
        EXPECT_TRUE(run.verified) << procs;
    }
}

TEST(Machine, SeedChangesWorkloadDataNotStructure)
{
    MachineConfig a;
    a.numProcs = 4;
    MachineConfig b = a;
    b.seed = 999;
    apps::Run ra = apps::runWorkload("lu", a);
    apps::Run rb = apps::runWorkload("lu", b);
    ASSERT_TRUE(ra.finished && rb.finished);
    EXPECT_TRUE(ra.verified && rb.verified);
    // Same reference counts (structure), different data -> slightly
    // different timing is permitted but the access counts match.
    EXPECT_DOUBLE_EQ(ra.metrics.reads, rb.metrics.reads);
    EXPECT_DOUBLE_EQ(ra.metrics.writes, rb.metrics.writes);
}

TEST(Machine, CharacterizersOnlyWhenEnabled)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    apps::Run plain = apps::runWorkload("matmul", cfg);
    EXPECT_EQ(plain.machine->characterizer(0), nullptr);

    apps::RunOptions opts;
    opts.characterize = true;
    apps::Run with = apps::runWorkload("matmul", cfg, opts);
    ASSERT_NE(with.machine->characterizer(0), nullptr);
    EXPECT_GT(with.machine->characterizer(0)->totalMisses(), 0u);
}
