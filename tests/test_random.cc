/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace psim;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U(0,1) should be close to 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng r(5);
    auto first = r.next();
    r.next();
    r.reseed(5);
    EXPECT_EQ(r.next(), first);
}
