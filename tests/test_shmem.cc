/**
 * @file
 * Unit tests for the shared-memory bump allocator.
 */

#include <gtest/gtest.h>

#include "apps/shmem.hh"

using namespace psim;
using namespace psim::apps;

TEST(ShmAllocator, AllocationsDoNotOverlap)
{
    MachineConfig cfg;
    ShmAllocator shm(cfg);
    Addr a = shm.alloc(100);
    Addr b = shm.alloc(100);
    EXPECT_GE(b, a + 100);
}

TEST(ShmAllocator, RespectsAlignment)
{
    MachineConfig cfg;
    ShmAllocator shm(cfg);
    shm.alloc(3);
    Addr a = shm.alloc(8, 64);
    EXPECT_EQ(a % 64, 0u);
    Addr p = shm.alloc(10, cfg.pageSize);
    EXPECT_EQ(p % cfg.pageSize, 0u);
}

TEST(ShmAllocator, AllocOnNodeLandsOnRequestedHome)
{
    MachineConfig cfg;
    ShmAllocator shm(cfg);
    for (NodeId n = 0; n < cfg.numProcs; n += 3) {
        Addr a = shm.allocOnNode(64, n);
        EXPECT_EQ(cfg.homeOf(a), n);
        EXPECT_EQ(a % cfg.pageSize, 0u);
    }
}

TEST(ShmAllocator, AllocSyncIsBlockAligned)
{
    MachineConfig cfg;
    ShmAllocator shm(cfg);
    shm.alloc(7);
    Addr s1 = shm.allocSync();
    Addr s2 = shm.allocSync();
    EXPECT_EQ(s1 % cfg.blockSize, 0u);
    EXPECT_EQ(s2 % cfg.blockSize, 0u);
    // Distinct sync variables never share a block (no false sharing).
    EXPECT_NE(cfg.blockAddr(s1), cfg.blockAddr(s2));
}

TEST(ShmAllocator, BrkAdvancesMonotonically)
{
    MachineConfig cfg;
    ShmAllocator shm(cfg);
    Addr b0 = shm.brk();
    shm.alloc(1000);
    EXPECT_GT(shm.brk(), b0);
}

TEST(ShmAllocatorDeath, BadAlignmentPanics)
{
    MachineConfig cfg;
    ShmAllocator shm(cfg);
    EXPECT_DEATH(shm.alloc(8, 3), "power of 2");
}
