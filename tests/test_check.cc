/**
 * @file
 * Tests for the differential checking subsystem (src/check/): the SC
 * oracle, the fuzz program generator, the shrinker, and the fuzz
 * driver -- including the mutant self-tests that prove the oracle
 * actually rejects a broken machine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/fuzz.hh"
#include "check/fuzzgen.hh"
#include "check/oracle.hh"
#include "check/shrink.hh"
#include "sim/audit.hh"
#include "harness.hh"

using namespace psim;
using namespace psim::check;

namespace
{

AccessRecord
access(AccessRecord::Kind kind, NodeId node, Addr addr,
       std::uint32_t value, Tick tick = 0)
{
    AccessRecord rec;
    rec.tick = tick;
    rec.node = node;
    rec.kind = kind;
    rec.len = sizeof(value);
    rec.addr = addr;
    std::memcpy(rec.value, &value, sizeof(value));
    return rec;
}

AccessRecord
write(NodeId node, Addr addr, std::uint32_t value, Tick tick = 0)
{
    return access(AccessRecord::Kind::Write, node, addr, value, tick);
}

AccessRecord
read(NodeId node, Addr addr, std::uint32_t value, Tick tick = 0)
{
    return access(AccessRecord::Kind::Read, node, addr, value, tick);
}

} // namespace

// ---- oracle unit tests (hand-built logs, no simulation) ----

TEST(Oracle, AcceptsAConsistentLog)
{
    BackingStore store;
    Oracle oracle;
    oracle.snapshotInitial(store);

    AccessLog log;
    log.onAccess(write(0, 0x1000, 7));
    log.onAccess(read(1, 0x1000, 7));
    store.store<std::uint32_t>(0x1000, 7);

    OracleReport rep = oracle.check(log, store, nullptr);
    EXPECT_TRUE(rep.ok()) << rep.divergences.front().describe();
    EXPECT_EQ(rep.loadsChecked, 1u);
    EXPECT_EQ(rep.storesReplayed, 1u);
}

TEST(Oracle, SeesThroughTheInitialSnapshot)
{
    // A load of a location only ever written before the run must check
    // against the pre-run snapshot, not against zero.
    BackingStore store;
    store.store<std::uint32_t>(0x2000, 123);
    Oracle oracle;
    oracle.snapshotInitial(store);

    AccessLog log;
    log.onAccess(read(0, 0x2000, 123));

    EXPECT_TRUE(oracle.check(log, store, nullptr).ok());

    AccessLog bad;
    bad.onAccess(read(0, 0x2000, 124));
    OracleReport rep = oracle.check(bad, store, nullptr);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.divergences[0].kind, Divergence::Kind::LoadValue);
}

TEST(Oracle, CatchesAStaleLoad)
{
    BackingStore store;
    Oracle oracle;
    oracle.snapshotInitial(store);

    AccessLog log;
    log.onAccess(write(0, 0x1000, 5, /*tick=*/10));
    log.onAccess(read(1, 0x1000, 4, /*tick=*/20)); // stale: pre-store value
    store.store<std::uint32_t>(0x1000, 5);

    OracleReport rep = oracle.check(log, store, nullptr);
    ASSERT_EQ(rep.total, 1u);
    const Divergence &d = rep.divergences[0];
    EXPECT_EQ(d.kind, Divergence::Kind::LoadValue);
    EXPECT_EQ(d.node, 1u);
    EXPECT_EQ(d.addr, 0x1000u);
    EXPECT_EQ(d.tick, 20u);
    // describe() must carry the essentials for a bug report.
    std::string line = d.describe();
    EXPECT_NE(line.find("load-value"), std::string::npos);
    EXPECT_NE(line.find("0x1000"), std::string::npos);
}

TEST(Oracle, CatchesAMissingStoreInTheFinalImage)
{
    // The log says the store happened; the machine's memory never got
    // it. The replayed shadow then differs from the final image.
    BackingStore store;
    Oracle oracle;
    oracle.snapshotInitial(store);

    AccessLog log;
    log.onAccess(write(0, 0x1000, 9));
    // store deliberately not applied to the machine's memory

    OracleReport rep = oracle.check(log, store, nullptr);
    ASSERT_GE(rep.total, 1u);
    EXPECT_EQ(rep.divergences[0].kind, Divergence::Kind::FinalImage);
}

TEST(Oracle, CatchesAPhantomValueInTheFinalImage)
{
    // The machine's memory holds data no committed store explains --
    // the comparison must be bidirectional.
    BackingStore store;
    Oracle oracle;
    oracle.snapshotInitial(store);

    AccessLog log;
    store.store<std::uint32_t>(0x3000, 0xDEAD);

    OracleReport rep = oracle.check(log, store, nullptr);
    ASSERT_GE(rep.total, 1u);
    EXPECT_EQ(rep.divergences[0].kind, Divergence::Kind::FinalImage);
}

TEST(Oracle, EnforcesThePageRule)
{
    BackingStore store;
    Oracle oracle(4096);
    oracle.snapshotInitial(store);

    AccessLog log;
    PrefetchIssueRecord ok;
    ok.node = 0;
    ok.trigger = 0x10000100;
    ok.block = 0x10000120; // same 4KB page
    log.onPrefetchIssue(ok);

    PrefetchIssueRecord bad;
    bad.node = 2;
    bad.trigger = 0x10000FF8;
    bad.block = 0x10001000; // next page
    log.onPrefetchIssue(bad);

    OracleReport rep = oracle.check(log, store, nullptr);
    ASSERT_EQ(rep.total, 1u);
    EXPECT_EQ(rep.divergences[0].kind, Divergence::Kind::PageCross);
    EXPECT_EQ(rep.divergences[0].node, 2u);
    EXPECT_EQ(rep.prefetchesChecked, 2u);
}

TEST(Oracle, ChecksTheFateLedger)
{
    BackingStore store;
    Oracle oracle;
    oracle.snapshotInitial(store);
    AccessLog log;

    audit::LedgerSnapshot ledger;
    ledger.nodes.resize(2);
    ledger.nodes[0].issued = 4;
    ledger.nodes[0].fates[1] = 3; // UsefulTagged
    ledger.nodes[0].fates[5] = 1; // Replaced
    ledger.nodes[1].issued = 1;
    ledger.nodes[1].fates[7] = 1; // ResidentAtEnd
    EXPECT_TRUE(oracle.check(log, store, &ledger).ok());

    ledger.nodes[1].issued = 2; // one issue now has no terminal fate
    OracleReport rep = oracle.check(log, store, &ledger);
    ASSERT_EQ(rep.total, 1u);
    EXPECT_EQ(rep.divergences[0].kind, Divergence::Kind::Ledger);
    EXPECT_EQ(rep.divergences[0].node, 1u);
}

// ---- generator determinism ----

TEST(FuzzGen, GenerateIsDeterministic)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
        ProgramSpec a = ProgramSpec::generate(seed);
        ProgramSpec b = ProgramSpec::generate(seed);
        EXPECT_EQ(a.describe(), b.describe());
        EXPECT_GE(a.phases.size(), 2u);
        EXPECT_GE(a.threads, 2u);
    }
    EXPECT_NE(ProgramSpec::generate(1).describe(),
              ProgramSpec::generate(2).describe());
}

// ---- recording must be observability-grade ----

TEST(FuzzRun, RecordingDoesNotPerturbTheRun)
{
    ProgramSpec spec = ProgramSpec::generate(7);
    MachineConfig cfg;
    cfg.numProcs = spec.threads;
    if (cfg.numProcs < 4)
        cfg.meshCols = cfg.numProcs;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;
    cfg.prefetch.degree = spec.degree;
    cfg.seed = spec.seed;

    RunMetrics mx[2];
    for (int rec = 0; rec < 2; ++rec) {
        Machine m(cfg);
        FuzzWorkload wl(spec);
        AccessLog log;
        if (rec)
            m.enableCommitRecording(log);
        wl.attach(m);
        m.run(50'000'000);
        ASSERT_TRUE(m.allFinished());
        ASSERT_TRUE(wl.verify(m));
        mx[rec] = m.metrics();
        if (rec)
            EXPECT_GT(log.accesses().size(), 0u);
    }
    EXPECT_EQ(mx[0].execTicks, mx[1].execTicks);
    EXPECT_DOUBLE_EQ(mx[0].reads, mx[1].reads);
    EXPECT_DOUBLE_EQ(mx[0].writes, mx[1].writes);
    EXPECT_DOUBLE_EQ(mx[0].readMisses, mx[1].readMisses);
    EXPECT_DOUBLE_EQ(mx[0].pfIssued, mx[1].pfIssued);
    EXPECT_DOUBLE_EQ(mx[0].flits, mx[1].flits);
}

// ---- the sharded engine feeds the same correctness stack ----

TEST(FuzzRun, OracleAcceptsTheShardedCommitStream)
{
    // runOneScheme at shards=4 stages commit records per node and
    // merges them at window boundaries; the SC oracle must accept that
    // stream exactly as it accepts the serial one, and the program
    // must compute the same final memory image on either engine.
    ProgramSpec spec = ProgramSpec::generate(7);
    SchemeRun serial = runOneScheme(spec, PrefetchScheme::Sequential,
            TestHooks{}, 50'000'000);
    SchemeRun sharded = runOneScheme(spec, PrefetchScheme::Sequential,
            TestHooks{}, 50'000'000, 4);
    ASSERT_TRUE(serial.finished);
    ASSERT_TRUE(sharded.finished);
    EXPECT_TRUE(sharded.verified);
    EXPECT_TRUE(sharded.oracle.ok())
            << sharded.oracle.divergences.front().describe();
    EXPECT_GT(sharded.oracle.loadsChecked, 0u);
    EXPECT_EQ(serial.imageDigest, sharded.imageDigest);
}

// ---- the 4KB page-boundary rule, end to end ----

TEST(FuzzRun, PageRuleHoldsForEverySchemeAndStrideSign)
{
    // Page-straddling strides in both directions: |stride| close to
    // and above the 4KB page size, so nearly every next-block guess
    // sits in another page and the SLC filter is load-bearing.
    ProgramSpec spec;
    spec.seed = 99;
    spec.threads = 4;
    spec.degree = 4;
    PhaseSpec up;
    up.kind = PhaseSpec::Kind::StridedSweep;
    up.stride = 4092;
    up.iters = 48;
    up.lanes = 2;
    PhaseSpec down = up;
    down.stride = -4100;
    PhaseSpec blocky = up;
    blocky.stride = -64;
    spec.phases = {up, down, blocky};

    const PrefetchScheme schemes[] = {
        PrefetchScheme::Sequential,  PrefetchScheme::IDet,
        PrefetchScheme::DDet,        PrefetchScheme::Adaptive,
        PrefetchScheme::IDetLookahead, PrefetchScheme::MultiStride,
        PrefetchScheme::PtrChase,    PrefetchScheme::Perceptron,
    };
    for (PrefetchScheme s : schemes) {
        SchemeRun run = runOneScheme(spec, s, TestHooks{}, 50'000'000);
        ASSERT_TRUE(run.finished) << toString(s);
        EXPECT_TRUE(run.verified) << toString(s);
        EXPECT_TRUE(run.oracle.ok())
                << toString(s) << ": "
                << run.oracle.divergences.front().describe();
    }

    // The property is vacuous unless prefetches were actually checked.
    SchemeRun seq = runOneScheme(spec, PrefetchScheme::Sequential,
            TestHooks{}, 50'000'000);
    EXPECT_GT(seq.oracle.prefetchesChecked, 0u);
}

// ---- shrinker ----

TEST(Shrink, MinimizesToTheFailingPhase)
{
    // Synthetic predicate, no simulation: "fails" whenever any enabled
    // SharedCounter phase has iters >= 8. The shrinker must strip the
    // unrelated phases and halve the counter phase down to the
    // boundary without ever "fixing" the spec.
    ProgramSpec spec;
    spec.seed = 5;
    spec.threads = 8;
    spec.phases.resize(4);
    spec.phases[0].kind = PhaseSpec::Kind::StridedSweep;
    spec.phases[1].kind = PhaseSpec::Kind::SharedCounter;
    spec.phases[1].iters = 60;
    spec.phases[1].lanes = 4;
    spec.phases[2].kind = PhaseSpec::Kind::Migratory;
    spec.phases[3].kind = PhaseSpec::Kind::RandomMix;

    auto pred = [](const ProgramSpec &s) {
        for (const PhaseSpec &p : s.phases) {
            if (p.enabled && p.kind == PhaseSpec::Kind::SharedCounter &&
                p.iters >= 8)
                return true;
        }
        return false;
    };
    ASSERT_TRUE(pred(spec));

    ShrinkResult res = shrink(spec, pred, 64);
    EXPECT_TRUE(pred(res.spec)); // never accept a passing candidate
    EXPECT_EQ(res.spec.enabledPhases(), 1u);
    unsigned counter_iters = 0;
    for (const PhaseSpec &p : res.spec.phases) {
        if (p.enabled) {
            EXPECT_EQ(p.kind, PhaseSpec::Kind::SharedCounter);
            counter_iters = p.iters;
        }
    }
    EXPECT_GE(counter_iters, 8u);
    EXPECT_LE(counter_iters, 15u); // one more halving would pass
    EXPECT_EQ(res.spec.threads, 2u);
    EXPECT_GT(res.improvements, 0u);
}

// ---- the fuzz driver ----

TEST(Fuzz, SmokeRunIsCleanAndDeterministicAcrossJobs)
{
    FuzzOptions opts;
    opts.seedStart = 1;
    opts.numSeeds = 4;
    opts.jobs = 1;

    std::ostringstream out1;
    FuzzReport rep1 = runFuzz(opts, out1);
    EXPECT_TRUE(rep1.ok()) << out1.str();
    EXPECT_EQ(rep1.seedsRun, 4u);
    EXPECT_GT(rep1.loadsChecked, 0u);

    opts.jobs = 4;
    std::ostringstream out4;
    FuzzReport rep4 = runFuzz(opts, out4);
    EXPECT_EQ(out1.str(), out4.str());
    EXPECT_EQ(rep1.loadsChecked, rep4.loadsChecked);
}

// ---- mutant self-tests: the oracle must reject a broken machine ----

#ifdef PSIM_TEST_HOOKS

TEST(Mutant, CorruptedLoadsAreCaught)
{
    // A machine that flips a bit in every 7th consumed load value must
    // be rejected by the load-value cross-check.
    ProgramSpec spec = ProgramSpec::generate(1);
    TestHooks hooks;
    hooks.corruptReadPeriod = 7;
    std::string why;
    ASSERT_TRUE(specDiverges(spec, hooks, 50'000'000, &why));
    EXPECT_NE(why.find("load-value"), std::string::npos) << why;
}

TEST(Mutant, CorruptedLoadsAreCaughtOnTheShardedEngine)
{
    // The fuzz stack must keep its teeth when gating the sharded
    // engine: a broken machine at --shards 4 is still rejected.
    ProgramSpec spec = ProgramSpec::generate(1);
    TestHooks hooks;
    hooks.corruptReadPeriod = 7;
    std::string why;
    ASSERT_TRUE(specDiverges(spec, hooks, 50'000'000, &why, 4));
    EXPECT_NE(why.find("load-value"), std::string::npos) << why;
}

TEST(Mutant, DroppedStoresAreCaught)
{
    ProgramSpec spec = ProgramSpec::generate(1);
    TestHooks hooks;
    hooks.dropStorePeriod = 11;
    std::string why;
    ASSERT_TRUE(specDiverges(spec, hooks, 50'000'000, &why));
}

TEST(Mutant, PageCrossingPrefetchesAreCaught)
{
    // Let every 3rd prefetch candidate bypass the SLC page filter; the
    // page-straddling sweep guarantees cross-page candidates exist.
    ProgramSpec spec;
    spec.seed = 99;
    spec.threads = 4;
    spec.degree = 4;
    PhaseSpec sweep;
    sweep.kind = PhaseSpec::Kind::StridedSweep;
    sweep.stride = 4092;
    sweep.iters = 48;
    sweep.lanes = 2;
    spec.phases = {sweep};

    TestHooks hooks;
    hooks.allowPageCrossPeriod = 3;
    SchemeRun run = runOneScheme(spec, PrefetchScheme::Sequential,
            hooks, 50'000'000);
    ASSERT_FALSE(run.oracle.ok());
    EXPECT_EQ(run.oracle.divergences[0].kind,
              Divergence::Kind::PageCross);
}

TEST(Mutant, DivergenceReplaysDeterministicallyFromTheSeed)
{
    // The printed seed must reproduce the failure bit-for-bit: same
    // divergence, same description -- that is what makes the fuzz
    // report actionable.
    ProgramSpec spec = ProgramSpec::generate(1);
    TestHooks hooks;
    hooks.corruptReadPeriod = 7;
    std::string why1, why2;
    ASSERT_TRUE(specDiverges(spec, hooks, 50'000'000, &why1));
    ASSERT_TRUE(specDiverges(spec, hooks, 50'000'000, &why2));
    EXPECT_EQ(why1, why2);
}

TEST(Mutant, ShrunkReproStillFails)
{
    ProgramSpec spec = ProgramSpec::generate(1);
    TestHooks hooks;
    hooks.corruptReadPeriod = 7;
    auto pred = [&hooks](const ProgramSpec &s) {
        return specDiverges(s, hooks, 50'000'000, nullptr);
    };
    ASSERT_TRUE(pred(spec));
    ShrinkResult res = shrink(spec, pred, 24);
    EXPECT_TRUE(pred(res.spec));
    EXPECT_LE(res.spec.enabledPhases(), spec.enabledPhases());
}

#endif // PSIM_TEST_HOOKS
