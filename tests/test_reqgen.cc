/**
 * @file
 * Contract tests for the server-suite request generator: Zipfian key
 * popularity with the right skew, open-loop arrival gaps that are a
 * pure function of (seed, thread, index), and a bijective rank
 * scramble. These properties are what make the server workloads
 * deterministic at every --jobs and --shards count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/reqgen.hh"
#include "sim/random.hh"

using namespace psim;
using namespace psim::apps;

namespace
{

/** Empirical rank histogram over @p draws samples from one sampler. */
std::vector<double>
rankFrequencies(const ZipfSampler &zipf, std::uint64_t draws,
                std::uint64_t rngSeed)
{
    std::vector<double> freq(zipf.n(), 0.0);
    Rng rng(rngSeed);
    for (std::uint64_t i = 0; i < draws; ++i)
        freq[zipf.sample(rng.real())] += 1.0;
    for (double &f : freq)
        f /= static_cast<double>(draws);
    return freq;
}

} // namespace

TEST(Zipf, EmpiricalFrequenciesMatchTheTargetSkew)
{
    // P(rank i) = (1/(i+1)^theta) / zeta(n, theta). With 200k draws
    // the head ranks have thousands of hits each. Ranks 0 and 1 are
    // exact branches of the Gray et al. sampler, so 10% relative
    // tolerance catches a wrong exponent there (theta=0.6 vs 0.99
    // differ by ~24% on the rank-0/rank-1 ratio); deeper ranks go
    // through the continuous inverse-CDF approximation, which is
    // biased by up to ~20% at rank 2, hence the looser bound.
    constexpr std::uint64_t kRanks = 1024;
    constexpr std::uint64_t kDraws = 200000;
    for (double theta : {0.6, 0.99}) {
        ZipfSampler zipf(kRanks, theta);
        auto freq = rankFrequencies(zipf, kDraws, 12345);
        double zetan = 0;
        for (std::uint64_t i = 1; i <= kRanks; ++i)
            zetan += 1.0 / std::pow(static_cast<double>(i), theta);
        for (std::uint64_t rank : {0ull, 1ull, 2ull, 7ull}) {
            const double expect =
                    1.0 /
                    std::pow(static_cast<double>(rank + 1), theta) / zetan;
            const double tol = rank < 2 ? 0.10 : 0.25;
            EXPECT_NEAR(freq[rank], expect, expect * tol)
                    << "theta " << theta << " rank " << rank;
        }
        // The tail must be monotonically colder than the head.
        EXPECT_GT(freq[0], freq[15]) << "theta " << theta;
        EXPECT_GT(freq[15], freq[255] + freq[511]) << "theta " << theta;
    }
}

TEST(Zipf, HigherThetaIsMoreSkewed)
{
    constexpr std::uint64_t kRanks = 1024;
    ZipfSampler mild(kRanks, 0.6), hot(kRanks, 0.99);
    auto fMild = rankFrequencies(mild, 100000, 7);
    auto fHot = rankFrequencies(hot, 100000, 7);
    EXPECT_GT(fHot[0], fMild[0]);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    constexpr std::uint64_t kRanks = 64;
    ZipfSampler zipf(kRanks, 0.0);
    auto freq = rankFrequencies(zipf, 100000, 99);
    for (std::uint64_t r = 0; r < kRanks; ++r)
        EXPECT_NEAR(freq[r], 1.0 / kRanks, 0.25 / kRanks) << "rank " << r;
}

TEST(ReqGen, StreamsAreDeterministicAndPerThread)
{
    constexpr std::uint64_t kKeys = 4096;
    ZipfSampler zipf(kKeys, 0.99);
    ReqGenParams p;
    p.seed = 42;
    p.keys = kKeys;
    p.theta = 0.99;
    p.writeFraction = 0.3;
    p.interArrival = 16;

    p.thread = 3;
    RequestGen a(p, zipf), b(p, zipf);
    // Two independently constructed generators with the same params
    // must agree request-for-request, in any evaluation order.
    for (std::uint64_t r = 0; r < 512; ++r)
        EXPECT_TRUE(a.at(r) == b.at(r)) << "request " << r;
    for (std::uint64_t r = 512; r-- > 0;)
        EXPECT_TRUE(a.at(r) == b.at(r)) << "request " << r;

    // A different thread id must yield a different stream.
    p.thread = 4;
    RequestGen other(p, zipf);
    unsigned same = 0;
    for (std::uint64_t r = 0; r < 512; ++r)
        same += a.at(r) == other.at(r) ? 1 : 0;
    EXPECT_LT(same, 8u) << "thread streams are not independent";
}

TEST(ReqGen, OpenLoopArrivalGapsAreBoundedWithTheRightMean)
{
    constexpr std::uint64_t kKeys = 1024;
    constexpr Tick kInterArrival = 16;
    ZipfSampler zipf(kKeys, 0.6);
    ReqGenParams p;
    p.seed = 7;
    p.thread = 0;
    p.keys = kKeys;
    p.theta = 0.6;
    p.interArrival = kInterArrival;
    RequestGen gen(p, zipf);

    constexpr std::uint64_t kN = 20000;
    double sum = 0;
    for (std::uint64_t r = 0; r < kN; ++r) {
        const Tick gap = gen.at(r).think;
        ASSERT_GE(gap, 1u) << "request " << r;
        ASSERT_LE(gap, 2 * kInterArrival - 1) << "request " << r;
        sum += static_cast<double>(gap);
    }
    // Uniform over [1, 2*ia - 1] has mean exactly ia.
    EXPECT_NEAR(sum / kN, static_cast<double>(kInterArrival), 0.25);

    // interArrival = 0 disables gaps entirely (closed-loop mode).
    p.interArrival = 0;
    RequestGen closed(p, zipf);
    for (std::uint64_t r = 0; r < 64; ++r)
        EXPECT_EQ(closed.at(r).think, 0u);
}

TEST(ReqGen, WriteFractionIsHonoured)
{
    constexpr std::uint64_t kKeys = 1024;
    ZipfSampler zipf(kKeys, 0.99);
    ReqGenParams p;
    p.seed = 11;
    p.keys = kKeys;
    p.theta = 0.99;
    p.writeFraction = 0.3;
    RequestGen gen(p, zipf);
    std::uint64_t writes = 0;
    constexpr std::uint64_t kN = 20000;
    for (std::uint64_t r = 0; r < kN; ++r)
        writes += gen.at(r).op == Request::Op::Write ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(writes) / kN, 0.3, 0.02);
}

TEST(ReqGen, ScrambleIsABijectionOverThePowerOfTwoKeySpace)
{
    for (std::uint64_t keys : {64ull, 1024ull, 65536ull}) {
        std::vector<bool> seen(keys, false);
        for (std::uint64_t rank = 0; rank < keys; ++rank) {
            const std::uint64_t k = scrambleRank(rank, keys);
            ASSERT_LT(k, keys);
            ASSERT_FALSE(seen[k]) << "collision at rank " << rank
                                  << " for keys=" << keys;
            seen[k] = true;
        }
    }
    // Adjacent hot ranks must not land in adjacent keys (that would
    // re-concentrate the Zipf head onto shared cache blocks).
    const std::uint64_t k0 = scrambleRank(0, 1024);
    const std::uint64_t k1 = scrambleRank(1, 1024);
    const std::uint64_t k2 = scrambleRank(2, 1024);
    EXPECT_GT(std::max(k0, k1) - std::min(k0, k1), 8u);
    EXPECT_GT(std::max(k1, k2) - std::min(k1, k2), 8u);
}
