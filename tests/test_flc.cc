/**
 * @file
 * Unit tests for the first-level cache: write-through, no-allocate,
 * direct-mapped, externally invalidatable.
 */

#include <gtest/gtest.h>

#include "mem/flc.hh"

using namespace psim;

namespace
{

MachineConfig
smallCfg()
{
    MachineConfig cfg;
    cfg.flcSize = 1024; // 32 blocks, direct-mapped
    return cfg;
}

} // namespace

TEST(Flc, ColdReadMissesThenHitsAfterFill)
{
    MachineConfig cfg = smallCfg();
    Flc flc(cfg);
    EXPECT_FALSE(flc.probeRead(0x100, 0));
    flc.fill(0x100, 1);
    EXPECT_TRUE(flc.probeRead(0x100, 2));
    EXPECT_DOUBLE_EQ(flc.readMisses.value(), 1.0);
    EXPECT_DOUBLE_EQ(flc.reads.value(), 2.0);
}

TEST(Flc, WholeBlockHitsAfterFill)
{
    MachineConfig cfg = smallCfg();
    Flc flc(cfg);
    flc.fill(0x100, 0);
    // Any word of the 32-byte block hits.
    EXPECT_TRUE(flc.probeRead(0x100, 1));
    EXPECT_TRUE(flc.probeRead(0x108, 1));
    EXPECT_TRUE(flc.probeRead(0x11F, 1));
    EXPECT_FALSE(flc.probeRead(0x120, 1)); // next block
}

TEST(Flc, WritesDoNotAllocate)
{
    MachineConfig cfg = smallCfg();
    Flc flc(cfg);
    flc.probeWrite(0x200, 0);
    EXPECT_FALSE(flc.probeRead(0x200, 1));
    EXPECT_DOUBLE_EQ(flc.writeMisses.value(), 1.0);
}

TEST(Flc, DirectMappedFillEvictsConflict)
{
    MachineConfig cfg = smallCfg(); // 1 KB: addresses 1 KB apart conflict
    Flc flc(cfg);
    flc.fill(0x000, 0);
    flc.fill(0x400, 1); // same set
    EXPECT_FALSE(flc.probeRead(0x000, 2));
    EXPECT_TRUE(flc.probeRead(0x400, 2));
}

TEST(Flc, InvalidationPinRemovesBlock)
{
    MachineConfig cfg = smallCfg();
    Flc flc(cfg);
    flc.fill(0x300, 0);
    ASSERT_TRUE(flc.contains(0x300));
    flc.invalidate(0x300);
    EXPECT_FALSE(flc.contains(0x300));
    EXPECT_FALSE(flc.probeRead(0x300, 1));
    EXPECT_DOUBLE_EQ(flc.invalidations.value(), 1.0);
}

TEST(Flc, InvalidateOfAbsentBlockIsNoop)
{
    MachineConfig cfg = smallCfg();
    Flc flc(cfg);
    flc.invalidate(0x300);
    EXPECT_DOUBLE_EQ(flc.invalidations.value(), 0.0);
}
