/**
 * @file
 * Tests for the protocol/consistency extensions: sequential-consistency
 * mode and the migratory-sharing directory optimization.
 */

#include <gtest/gtest.h>

#include "apps/driver.hh"
#include "harness.hh"
#include "mem/mem_ctrl.hh"

using namespace psim;
using namespace psim::test;

namespace
{

Addr
pageBase(const MachineConfig &cfg, unsigned page)
{
    return 0x10000000ULL + static_cast<Addr>(page) * cfg.pageSize;
}

MachineConfig
quadCfg()
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    return cfg;
}

/** Lock-protected read-modify-write: the classic migratory pattern. */
Task
migrator(apps::ThreadCtx &ctx, Addr counter, Addr lock, unsigned rounds)
{
    for (unsigned i = 0; i < rounds; ++i) {
        co_await ctx.lock(lock);
        auto v = co_await ctx.read<std::uint64_t>(counter);
        co_await ctx.write<std::uint64_t>(counter, v + 1);
        co_await ctx.unlock(lock);
    }
}

} // namespace

TEST(SequentialConsistency, StoresStallTheProcessor)
{
    MachineConfig cfg = quadCfg();
    cfg.sequentialConsistency = true;
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1); // remote page

    std::vector<Tick> lat;
    auto writer = [](apps::ThreadCtx &ctx, Machine &m, Addr a,
                     std::vector<Tick> &out) -> Task {
        Tick t0 = m.eq().now();
        co_await ctx.write<double>(a, 1.0);
        out.push_back(m.eq().now() - t0);
    };
    sys.run(0, writer(sys.ctx(0), sys.m, x, lat));
    ASSERT_TRUE(sys.finish());
    ASSERT_EQ(lat.size(), 1u);
    // Under SC a remote write-miss store costs a full round trip, not
    // the 1-pclock buffered retirement of RC.
    EXPECT_GT(lat[0], 30u);
    EXPECT_GT(sys.m.node(0).cpu().writeStall.value(), 0.0);
}

TEST(SequentialConsistency, WorkloadsStillVerify)
{
    MachineConfig cfg = quadCfg();
    cfg.sequentialConsistency = true;
    for (const char *app : {"lu", "ocean", "pthor"}) {
        psim::apps::Run run = apps::runWorkload(app, cfg);
        ASSERT_TRUE(run.finished) << app;
        EXPECT_TRUE(run.verified) << app;
    }
}

TEST(SequentialConsistency, IsSlowerThanReleaseConsistency)
{
    MachineConfig rc = quadCfg();
    MachineConfig sc = quadCfg();
    sc.sequentialConsistency = true;
    psim::apps::Run rc_run = apps::runWorkload("ocean", rc);
    psim::apps::Run sc_run = apps::runWorkload("ocean", sc);
    ASSERT_TRUE(rc_run.finished && sc_run.finished);
    EXPECT_GT(sc_run.metrics.execTicks, rc_run.metrics.execTicks)
            << "buffered writes must pay off";
}

TEST(Migratory, LockProtectedCounterIsDetected)
{
    MachineConfig cfg = quadCfg();
    cfg.migratoryOpt = true;
    MiniSystem sys(cfg);
    Addr counter = pageBase(cfg, 1);
    Addr lock = pageBase(cfg, 2);

    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, migrator(sys.ctx(n), counter, lock, 12));
    ASSERT_TRUE(sys.finish());

    EXPECT_EQ(sys.m.store().load<std::uint64_t>(counter), 48u);
    const MemCtrl &home = sys.m.node(cfg.homeOf(counter)).mem();
    EXPECT_GE(home.migratoryDetected.value(), 1.0);
    EXPECT_GT(home.migratoryGrants.value(), 0.0);
    EXPECT_TRUE(home.isMigratory(cfg.blockAddr(counter)));

    // The point of the optimization: once detected, the read brings an
    // exclusive copy, so the following write needs no upgrade.
    double upgrades = 0;
    for (NodeId n = 0; n < 4; ++n)
        upgrades += sys.m.node(n).slc().upgrades.value();
    MiniSystem base(quadCfg());
    for (NodeId n = 0; n < 4; ++n)
        base.run(n, migrator(base.ctx(n), counter, lock, 12));
    ASSERT_TRUE(base.finish());
    double base_upgrades = 0;
    for (NodeId n = 0; n < 4; ++n)
        base_upgrades += base.m.node(n).slc().upgrades.value();
    EXPECT_LT(upgrades, base_upgrades * 0.5);
    sys.m.checkCoherenceInvariants();
}

TEST(Migratory, ReadSharedBlocksAreDemoted)
{
    MachineConfig cfg = quadCfg();
    cfg.migratoryOpt = true;
    MiniSystem sys(cfg);
    Addr x = pageBase(cfg, 1);
    Addr lock = pageBase(cfg, 2);
    Addr bar = pageBase(cfg, 3);

    // Phase 1: migratory behaviour (alternating writers) classifies
    // the block. Phase 2: pure read sharing must demote it again.
    auto t = [](apps::ThreadCtx &ctx, Addr a, Addr l, Addr b) -> Task {
        for (unsigned i = 0; i < 6; ++i) {
            co_await ctx.lock(l);
            auto v = co_await ctx.read<std::uint64_t>(a);
            co_await ctx.write<std::uint64_t>(a, v + 1);
            co_await ctx.unlock(l);
        }
        co_await ctx.barrier(b);
        for (unsigned i = 0; i < 8; ++i) {
            co_await ctx.read<std::uint64_t>(a);
            co_await ctx.think(50);
        }
        co_await ctx.barrier(b);
    };
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, t(sys.ctx(n), x, lock, bar));
    ASSERT_TRUE(sys.finish());

    const MemCtrl &home = sys.m.node(cfg.homeOf(x)).mem();
    EXPECT_GE(home.migratoryDetected.value(), 1.0);
    EXPECT_GE(home.migratoryDemotions.value(), 1.0);
    EXPECT_FALSE(home.isMigratory(cfg.blockAddr(x)));
    sys.m.checkCoherenceInvariants();
}

TEST(Migratory, DisabledByDefault)
{
    MachineConfig cfg = quadCfg();
    ASSERT_FALSE(cfg.migratoryOpt);
    MiniSystem sys(cfg);
    Addr counter = pageBase(cfg, 1);
    Addr lock = pageBase(cfg, 2);
    for (NodeId n = 0; n < 4; ++n)
        sys.run(n, migrator(sys.ctx(n), counter, lock, 8));
    ASSERT_TRUE(sys.finish());
    const MemCtrl &home = sys.m.node(cfg.homeOf(counter)).mem();
    EXPECT_DOUBLE_EQ(home.migratoryDetected.value(), 0.0);
    EXPECT_DOUBLE_EQ(home.migratoryGrants.value(), 0.0);
}

TEST(Migratory, AllWorkloadsVerifyWithOptimizationOn)
{
    MachineConfig cfg = quadCfg();
    cfg.migratoryOpt = true;
    for (const char *app : {"mp3d", "pthor", "radix", "lu"}) {
        psim::apps::Run run = apps::runWorkload(app, cfg);
        ASSERT_TRUE(run.finished) << app;
        EXPECT_TRUE(run.verified) << app;
        run.machine->checkCoherenceInvariants();
    }
}

TEST(Migratory, CombinesWithPrefetching)
{
    // The authors' companion-paper combination: protocol extension +
    // prefetching together, here smoke-checked for correctness.
    MachineConfig cfg = quadCfg();
    cfg.migratoryOpt = true;
    cfg.prefetch.scheme = PrefetchScheme::Sequential;
    psim::apps::Run run = apps::runWorkload("radix", cfg);
    ASSERT_TRUE(run.finished);
    EXPECT_TRUE(run.verified);
    run.machine->checkCoherenceInvariants();
}
