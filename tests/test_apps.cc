/**
 * @file
 * End-to-end application tests: every workload must run to completion
 * on the simulated machine, produce numerically correct results
 * (verified against a native reference), and leave the coherence
 * protocol in a consistent state -- under every prefetching scheme.
 */

#include <gtest/gtest.h>

#include "apps/driver.hh"

using namespace psim;
using namespace psim::apps;

namespace
{

MachineConfig
smallMachine(PrefetchScheme scheme = PrefetchScheme::None)
{
    MachineConfig cfg;
    cfg.numProcs = 4; // keep unit runs quick; 16-proc runs below
    cfg.prefetch.scheme = scheme;
    return cfg;
}

} // namespace

class AppCorrectness
    : public ::testing::TestWithParam<
              std::tuple<const char *, PrefetchScheme>>
{
};

TEST_P(AppCorrectness, RunsAndVerifies)
{
    auto [name, scheme] = GetParam();
    psim::apps::Run run = runWorkload(name, smallMachine(scheme));
    ASSERT_TRUE(run.finished) << name << " did not finish";
    EXPECT_TRUE(run.verified) << name << " computed a wrong result";
    EXPECT_GT(run.metrics.reads, 0.0);
    EXPECT_GT(run.metrics.readMisses, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllSchemes, AppCorrectness,
        ::testing::Combine(
                ::testing::Values("mp3d", "cholesky", "water", "lu",
                                  "ocean", "pthor", "matmul", "fft",
                                  "radix", "barnes"),
                ::testing::Values(PrefetchScheme::None,
                                  PrefetchScheme::Sequential,
                                  PrefetchScheme::IDet,
                                  PrefetchScheme::DDet,
                                  PrefetchScheme::Adaptive,
                                  PrefetchScheme::IDetLookahead)));

TEST(Apps, SixteenProcessorLuVerifies)
{
    MachineConfig cfg; // the paper's full 16-node machine
    psim::apps::Run run = runWorkload("lu", cfg);
    ASSERT_TRUE(run.finished);
    EXPECT_TRUE(run.verified);
    // Every processor did real work.
    for (NodeId n = 0; n < 16; ++n)
        EXPECT_GT(run.machine->node(n).cpu().loads.value(), 0.0);
}

TEST(Apps, DeterministicAcrossRuns)
{
    MachineConfig cfg = smallMachine(PrefetchScheme::Sequential);
    psim::apps::Run a = runWorkload("ocean", cfg);
    psim::apps::Run b = runWorkload("ocean", cfg);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.metrics.execTicks, b.metrics.execTicks);
    EXPECT_DOUBLE_EQ(a.metrics.readMisses, b.metrics.readMisses);
    EXPECT_DOUBLE_EQ(a.metrics.pfIssued, b.metrics.pfIssued);
    EXPECT_DOUBLE_EQ(a.metrics.flits, b.metrics.flits);
}

TEST(Apps, FiniteSlcRunsVerify)
{
    MachineConfig cfg = smallMachine(PrefetchScheme::Sequential);
    cfg.slcSize = 16384;
    for (const char *name : {"lu", "ocean", "mp3d"}) {
        psim::apps::Run run = runWorkload(name, cfg);
        ASSERT_TRUE(run.finished) << name;
        EXPECT_TRUE(run.verified) << name;
        EXPECT_GT(run.metrics.missesReplacement, 0.0)
                << name << ": a 16 KB SLC must replace blocks";
    }
}

TEST(Apps, ScaledDataSetsGrowTheProblem)
{
    MachineConfig cfg = smallMachine();
    RunOptions small_opts;
    RunOptions big_opts;
    big_opts.scale = 2;
    psim::apps::Run small = runWorkload("lu", cfg, small_opts);
    psim::apps::Run big = runWorkload("lu", cfg, big_opts);
    ASSERT_TRUE(small.finished && big.finished);
    EXPECT_TRUE(big.verified);
    EXPECT_GT(big.metrics.reads, small.metrics.reads * 2);
}

TEST(Apps, PaperWorkloadListIsComplete)
{
    const auto &names = paperWorkloads();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "mp3d");
    EXPECT_EQ(names[5], "pthor");
    for (const auto &n : names)
        EXPECT_NE(makeWorkload(n), nullptr);
}

TEST(Apps, LocksAreActuallyUsedByPthor)
{
    MachineConfig cfg = smallMachine();
    psim::apps::Run run = runWorkload("pthor", cfg);
    ASSERT_TRUE(run.finished);
    double locks = 0;
    for (NodeId n = 0; n < cfg.numProcs; ++n)
        locks += run.machine->node(n).cpu().locks.value();
    EXPECT_GT(locks, 0.0);
}

TEST(AppsDeath, UnknownWorkloadNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nosuchapp"), ::testing::ExitedWithCode(1),
            "unknown workload");
}
