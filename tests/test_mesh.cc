/**
 * @file
 * Unit tests for the wormhole mesh: X-Y routing, latency model,
 * link contention, FIFO per path, traffic accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/mesh.hh"

using namespace psim;

namespace
{

struct Harness
{
    EventQueue eq;
    MachineConfig cfg;
    Mesh mesh{eq, cfg};
};

} // namespace

TEST(Mesh, HopCountsAreManhattan)
{
    Harness h;
    // 4x4 mesh: node = row*4 + col.
    EXPECT_EQ(h.mesh.hops(0, 1), 1u);
    EXPECT_EQ(h.mesh.hops(0, 4), 1u);
    EXPECT_EQ(h.mesh.hops(0, 5), 2u);
    EXPECT_EQ(h.mesh.hops(0, 15), 6u);
    EXPECT_EQ(h.mesh.hops(15, 0), 6u);
    EXPECT_EQ(h.mesh.hops(3, 12), 6u);
}

TEST(Mesh, UncontendedLatencyMatchesFormula)
{
    Harness h;
    Tick done = kTickNever;
    unsigned flits = 10;
    h.mesh.send(0, 5, flits, [&] { done = h.eq.now(); });
    h.eq.run();
    // hops * fallThrough + flits network cycles.
    EXPECT_EQ(done, h.mesh.baseLatency(2, flits));
}

TEST(Mesh, SingleHopHeaderMessage)
{
    Harness h;
    Tick done = 0;
    h.mesh.send(0, 1, 2, [&] { done = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(done, 3u + 2u); // 1 hop fall-through + 2 flits
}

TEST(Mesh, SharedLinkSerializesWorms)
{
    Harness h;
    std::vector<Tick> arrivals;
    // Two messages over the same 0->1 link, injected together.
    h.mesh.send(0, 1, 10, [&] { arrivals.push_back(h.eq.now()); });
    h.mesh.send(0, 1, 10, [&] { arrivals.push_back(h.eq.now()); });
    h.eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 13u);
    // The second worm waits for the first to release the link.
    EXPECT_EQ(arrivals[1], arrivals[0] + 10u);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    Harness h;
    std::vector<Tick> arrivals(2, 0);
    h.mesh.send(0, 1, 10, [&] { arrivals[0] = h.eq.now(); });
    h.mesh.send(4, 5, 10, [&] { arrivals[1] = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(arrivals[0], 13u);
    EXPECT_EQ(arrivals[1], 13u);
}

TEST(Mesh, FifoPerPath)
{
    Harness h;
    std::vector<int> order;
    h.mesh.send(0, 15, 10, [&] { order.push_back(1); });
    h.mesh.send(0, 15, 2, [&] { order.push_back(2); });
    h.eq.run();
    // The short message must not overtake the long one on the same path.
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Mesh, CountsTraffic)
{
    Harness h;
    h.mesh.send(0, 1, 10, [] {});
    h.mesh.send(1, 2, 2, [] {});
    h.eq.run();
    EXPECT_DOUBLE_EQ(h.mesh.messages.value(), 2.0);
    EXPECT_DOUBLE_EQ(h.mesh.flitsInjected.value(), 12.0);
    EXPECT_EQ(h.mesh.msgLatency.count(), 2u);
}

TEST(Mesh, XyRoutingTakesXFirst)
{
    // Send 0 -> 5 (one east, one south) and a competing message over
    // the 0->1 east link; the 0->5 route must contend on that link.
    Harness h;
    Tick t05 = 0;
    h.mesh.send(0, 1, 10, [] {});
    h.mesh.send(0, 5, 2, [&] { t05 = h.eq.now(); });
    h.eq.run();
    // Without contention: 2 hops * 3 + 2 = 8. The east link is busy
    // for 10 cycles, so the header leaves at 10 instead of 0.
    EXPECT_EQ(t05, 10u + 8u);
}

TEST(MeshDeath, SelfSendPanics)
{
    Harness h;
    EXPECT_DEATH(h.mesh.send(3, 3, 2, [] {}), "send to self");
}
