/**
 * @file
 * Regression guard for the paper's headline results: these assertions
 * encode the *shape* of Figure 6 and Tables 2-3 so that a substrate or
 * scheme change that silently breaks the reproduction fails CI.
 *
 * All runs use the full 16-processor paper configuration and are
 * numerically verified.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/driver.hh"

using namespace psim;
using namespace psim::apps;

namespace
{

RunMetrics
metricsOf(const char *workload, PrefetchScheme scheme,
          unsigned slc_size = 0)
{
    MachineConfig cfg;
    cfg.prefetch.scheme = scheme;
    cfg.slcSize = slc_size;
    psim::apps::Run run = runWorkload(workload, cfg);
    EXPECT_TRUE(run.finished) << workload;
    EXPECT_TRUE(run.verified) << workload;
    return run.metrics;
}

} // namespace

TEST(PaperResults, LuSequentialBeatsStride)
{
    // Figure 6 top, LU: Seq < I-det < D-det < baseline, and all three
    // schemes remove most misses.
    auto base = metricsOf("lu", PrefetchScheme::None);
    auto seq = metricsOf("lu", PrefetchScheme::Sequential);
    auto idet = metricsOf("lu", PrefetchScheme::IDet);
    auto ddet = metricsOf("lu", PrefetchScheme::DDet);
    EXPECT_LT(seq.readMisses, idet.readMisses);
    EXPECT_LT(idet.readMisses, ddet.readMisses);
    EXPECT_LT(ddet.readMisses, base.readMisses * 0.6);
    EXPECT_LT(seq.readMisses, base.readMisses * 0.25);
}

TEST(PaperResults, OceanIsWhereStridePrefetchingWins)
{
    // Figure 6, Ocean: the large-stride application. Stride schemes
    // remove far more misses than sequential, sequential's efficiency
    // collapses, and its extra traffic makes read stall WORSE.
    auto base = metricsOf("ocean", PrefetchScheme::None);
    auto seq = metricsOf("ocean", PrefetchScheme::Sequential);
    auto idet = metricsOf("ocean", PrefetchScheme::IDet);
    EXPECT_LT(idet.readMisses, seq.readMisses * 0.6);
    EXPECT_LT(seq.prefetchEfficiency(), 0.4);
    EXPECT_GT(idet.prefetchEfficiency(), 0.9);
    EXPECT_GT(seq.readStall, base.readStall * 0.98);
    EXPECT_LT(idet.readStall, base.readStall * 0.9);
    EXPECT_GT(seq.flits, idet.flits);
}

TEST(PaperResults, Mp3dSequentialExploitsSpatialLocality)
{
    // Figure 6, MP3D: few stride sequences, so stride prefetching
    // barely helps, while sequential prefetching removes far more
    // misses through record-straddling spatial locality.
    auto base = metricsOf("mp3d", PrefetchScheme::None);
    auto seq = metricsOf("mp3d", PrefetchScheme::Sequential);
    auto idet = metricsOf("mp3d", PrefetchScheme::IDet);
    EXPECT_GT(idet.readMisses, base.readMisses * 0.8);
    EXPECT_LT(seq.readMisses, base.readMisses * 0.7);
    EXPECT_LT(seq.readMisses, idet.readMisses);
}

TEST(PaperResults, PthorResistsAllSchemes)
{
    // Figure 6, PTHOR: pointer chasing defeats everything.
    auto base = metricsOf("pthor", PrefetchScheme::None);
    for (auto s : {PrefetchScheme::Sequential, PrefetchScheme::IDet,
                   PrefetchScheme::DDet}) {
        auto mx = metricsOf("pthor", s);
        EXPECT_GT(mx.readMisses, base.readMisses * 0.75)
                << toString(s);
    }
}

TEST(PaperResults, IDetHasTheBestEfficiencyOnLowLocalityApps)
{
    // Figure 6 middle: I-detection stays selective where the others
    // waste fetches.
    for (const char *app : {"mp3d", "ocean", "pthor"}) {
        auto idet = metricsOf(app, PrefetchScheme::IDet);
        auto seq = metricsOf(app, PrefetchScheme::Sequential);
        EXPECT_GT(idet.prefetchEfficiency(),
                  seq.prefetchEfficiency()) << app;
        EXPECT_GT(idet.prefetchEfficiency(), 0.7) << app;
    }
}

TEST(PaperResults, FiniteSlcAddsStride1ReplacementMissesToMp3d)
{
    // Table 3's key observation, measured end to end: a 16 KB SLC
    // gives MP3D a large replacement-miss population...
    auto inf = metricsOf("mp3d", PrefetchScheme::None, 0);
    auto fin = metricsOf("mp3d", PrefetchScheme::None, 16384);
    EXPECT_DOUBLE_EQ(inf.missesReplacement, 0.0);
    EXPECT_GT(fin.missesReplacement, fin.readMisses * 0.3);
    // ...which prefetching then attacks (both schemes improve).
    auto fin_seq = metricsOf("mp3d", PrefetchScheme::Sequential, 16384);
    EXPECT_LT(fin_seq.readMisses, fin.readMisses * 0.75);
}

TEST(PaperResults, InfiniteSlcHasOnlyColdAndCoherenceMisses)
{
    // Iterative applications re-read data invalidated by other
    // processors every step: coherence misses. (LU is different: its
    // pivot columns are written once and read once, so its misses are
    // virtually all cold.)
    for (const char *app : {"ocean", "water"}) {
        auto mx = metricsOf(app, PrefetchScheme::None);
        EXPECT_DOUBLE_EQ(mx.missesReplacement, 0.0) << app;
        EXPECT_GT(mx.missesCoherence, 0.0) << app;
        EXPECT_GT(mx.missesCold, 0.0) << app;
    }
    auto lu = metricsOf("lu", PrefetchScheme::None);
    EXPECT_DOUBLE_EQ(lu.missesReplacement, 0.0);
    EXPECT_GT(lu.missesCold, 0.0);
}

TEST(PaperResults, Table2CharacteristicsShape)
{
    // The Table-2 ordering of stride-miss fractions:
    // LU/Cholesky/Water high, Ocean high with a large stride,
    // MP3D and PTHOR low with small strides.
    std::map<std::string, StrideCharacterizer::Report> reports;
    for (const char *app : {"lu", "water", "ocean", "mp3d", "pthor"}) {
        MachineConfig cfg;
        RunOptions opts;
        opts.characterize = true;
        psim::apps::Run run = runWorkload(app, cfg, opts);
        ASSERT_TRUE(run.finished && run.verified) << app;
        reports[app] = run.machine->characterizer(0)->finalize();
    }
    EXPECT_GT(reports["lu"].strideFraction, 0.8);
    EXPECT_GT(reports["water"].strideFraction, 0.8);
    EXPECT_GT(reports["ocean"].strideFraction, 0.6);
    EXPECT_LT(reports["mp3d"].strideFraction, 0.4);
    EXPECT_LT(reports["pthor"].strideFraction, 0.3);

    ASSERT_FALSE(reports["lu"].topStrides.empty());
    EXPECT_EQ(reports["lu"].topStrides[0].first, 1);
    ASSERT_FALSE(reports["water"].topStrides.empty());
    EXPECT_EQ(reports["water"].topStrides[0].first, 21);
    ASSERT_FALSE(reports["ocean"].topStrides.empty());
    EXPECT_GE(reports["ocean"].topStrides[0].first, 16)
            << "Ocean's dominant stride must be many blocks";
}

TEST(PaperResults, AdaptiveFixesSequentialsOceanTraffic)
{
    // The Section-6 extension: adaptive sequential prefetching must
    // not show fixed-sequential's Ocean pathology.
    auto base = metricsOf("ocean", PrefetchScheme::None);
    auto seq = metricsOf("ocean", PrefetchScheme::Sequential);
    auto ad = metricsOf("ocean", PrefetchScheme::Adaptive);
    EXPECT_LT(ad.flits, seq.flits * 0.9);
    EXPECT_LE(ad.readStall, base.readStall * 1.02);
}

TEST(PaperResults, LookaheadAndTaggedIdetAreClose)
{
    // Section 6: "the performance difference between the two is small".
    auto idet = metricsOf("lu", PrefetchScheme::IDet);
    MachineConfig cfg;
    cfg.prefetch.scheme = PrefetchScheme::IDetLookahead;
    cfg.prefetch.lookaheadStrides = 1;
    psim::apps::Run la = runWorkload("lu", cfg);
    ASSERT_TRUE(la.finished && la.verified);
    double ratio = la.metrics.readMisses / idet.readMisses;
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.4);
}
