/**
 * @file
 * Unit tests for the perceptron prefetch filter: pass-through at zero
 * weights, suppression learned from useless fates, the deterministic
 * exploration probe, re-learning from useful probes, and the margin
 * rule stopping training once confident.
 */

#include <gtest/gtest.h>

#include "core/ptron.hh"

using namespace psim;

namespace
{

constexpr unsigned kBlock = 32;
constexpr Pc kPc = 0x4000;
constexpr Addr kTrig = 0x10000;
constexpr Addr kCand = 0x10020;

/** A base scheme that proposes one fixed candidate per observation. */
class FixedBase : public Prefetcher
{
  public:
    explicit FixedBase(Addr cand) : _cand(cand) {}

    void
    observeRead(const ReadObservation &, std::vector<Addr> &out) override
    {
        out.push_back(_cand);
    }

    const char *name() const override { return "fixed"; }

  private:
    Addr _cand;
};

PerceptronFilter
makeFilter(unsigned theta = 8)
{
    return PerceptronFilter(kBlock, theta,
            std::make_unique<FixedBase>(kCand));
}

std::vector<Addr>
observe(PerceptronFilter &pf)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.pc = kPc;
    obs.addr = kTrig;
    pf.observeRead(obs, out);
    return out;
}

} // namespace

TEST(Ptron, ZeroWeightsPassCandidatesThrough)
{
    PerceptronFilter pf = makeFilter();
    auto out = observe(pf);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], kCand);
    EXPECT_DOUBLE_EQ(pf.suppressed.value(), 0.0);
}

TEST(Ptron, WantsOutcomeFeedback)
{
    PerceptronFilter pf = makeFilter();
    EXPECT_TRUE(pf.wantsOutcomeFeedback());
}

TEST(Ptron, UselessFateLearnsSuppression)
{
    PerceptronFilter pf = makeFilter();
    auto out = observe(pf);
    ASSERT_EQ(out.size(), 1u);
    // The cache reports the issued prefetch died unreferenced.
    pf.notePrefetchOutcome(false, false, kCand);
    EXPECT_DOUBLE_EQ(pf.trainDown.value(), 1.0);

    // All four features moved down: the same candidate now scores
    // negative and is suppressed.
    out = observe(pf);
    EXPECT_TRUE(out.empty());
    EXPECT_DOUBLE_EQ(pf.suppressed.value(), 1.0);
}

TEST(Ptron, FateForUnknownBlockTrainsNothing)
{
    PerceptronFilter pf = makeFilter();
    observe(pf);
    pf.notePrefetchOutcome(false, false, 0xdead0000);
    EXPECT_DOUBLE_EQ(pf.trainDown.value(), 0.0);
    EXPECT_DOUBLE_EQ(pf.trainUp.value(), 0.0);
}

TEST(Ptron, EverySixteenthSuppressedCandidateProbes)
{
    PerceptronFilter pf = makeFilter();
    observe(pf);
    pf.notePrefetchOutcome(false, false, kCand); // sum now -4
    unsigned issued = 0;
    for (unsigned i = 0; i < PerceptronFilter::kProbePeriod; ++i)
        issued += observe(pf).size();
    EXPECT_EQ(issued, 1u); // exactly the 16th slips through
    EXPECT_DOUBLE_EQ(pf.probes.value(), 1.0);
    EXPECT_DOUBLE_EQ(pf.suppressed.value(), 16.0);
}

TEST(Ptron, UsefulProbeRehabilitatesTheCandidate)
{
    PerceptronFilter pf = makeFilter();
    observe(pf);
    pf.notePrefetchOutcome(false, false, kCand); // suppressed (-4)

    // Run until the probe issues, then report it useful: the wrong
    // suppression retrains the weights back above zero.
    for (unsigned i = 0; i < PerceptronFilter::kProbePeriod; ++i) {
        if (!observe(pf).empty())
            pf.notePrefetchOutcome(true, false, kCand);
    }
    EXPECT_DOUBLE_EQ(pf.trainUp.value(), 1.0);
    auto out = observe(pf);
    ASSERT_EQ(out.size(), 1u); // sum back to 0: allowed again
}

TEST(Ptron, MarginRuleStopsTrainingWhenConfident)
{
    // Useful fates train while |sum| <= theta; once past the margin a
    // correct prediction updates nothing.
    PerceptronFilter pf = makeFilter(/*theta=*/8);
    for (unsigned i = 0; i < 5; ++i) {
        auto out = observe(pf);
        ASSERT_EQ(out.size(), 1u);
        pf.notePrefetchOutcome(true, false, kCand);
    }
    // Sum walks 0 -> 4 -> 8 -> 12 (three updates), then saturates.
    EXPECT_DOUBLE_EQ(pf.trainUp.value(), 3.0);
    ReadObservation obs;
    obs.pc = kPc;
    obs.addr = kTrig;
    EXPECT_EQ(pf.scoreFor(obs, kCand), 12);
}
