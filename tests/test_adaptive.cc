/**
 * @file
 * Unit and integration tests for adaptive sequential prefetching
 * (the paper's Section-6 extension).
 */

#include <gtest/gtest.h>

#include "core/adaptive.hh"
#include "harness.hh"

using namespace psim;
using namespace psim::test;

namespace
{

std::vector<Addr>
observe(Prefetcher &p, Addr addr, bool hit, bool tagged)
{
    std::vector<Addr> out;
    ReadObservation obs;
    obs.addr = addr;
    obs.hit = hit;
    obs.taggedHit = tagged;
    p.observeRead(obs, out);
    return out;
}

} // namespace

TEST(Adaptive, StartsLikeSequential)
{
    AdaptiveSequentialPrefetcher p(32, 1, 8, 16);
    auto out = observe(p, 0x1000, false, false);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1020u);
    EXPECT_EQ(p.degree(), 1u);
}

TEST(Adaptive, LateUsefulWindowsRaiseTheDegree)
{
    AdaptiveSequentialPrefetcher p(32, 1, 8, 16);
    for (int i = 0; i < 16; ++i)
        p.notePrefetchOutcome(true, /*late=*/true);
    EXPECT_EQ(p.degree(), 2u);
    auto out = observe(p, 0x1000, false, false);
    EXPECT_EQ(out.size(), 2u);
}

TEST(Adaptive, TimelyUsefulWindowsKeepTheDegree)
{
    // Useful and on time: the lookahead is already sufficient, so the
    // degree must not grow (that would only waste bandwidth at
    // sequence ends).
    AdaptiveSequentialPrefetcher p(32, 1, 8, 16);
    for (int i = 0; i < 64; ++i)
        p.notePrefetchOutcome(true, /*late=*/false);
    EXPECT_EQ(p.degree(), 1u);
}

TEST(Adaptive, DegreeIsBounded)
{
    AdaptiveSequentialPrefetcher p(32, 1, 4, 16);
    for (int w = 0; w < 10; ++w) {
        for (int i = 0; i < 16; ++i)
            p.notePrefetchOutcome(true, /*late=*/true);
    }
    EXPECT_EQ(p.degree(), 4u);
}

TEST(Adaptive, UselessWindowsLowerTheDegreeToZero)
{
    AdaptiveSequentialPrefetcher p(32, 2, 8, 16);
    for (int w = 0; w < 4; ++w) {
        for (int i = 0; i < 16; ++i)
            p.notePrefetchOutcome(false);
    }
    EXPECT_EQ(p.degree(), 0u);
    // Disabled: no candidates at all.
    EXPECT_TRUE(observe(p, 0x1000, false, false).empty());
    EXPECT_TRUE(observe(p, 0x2000, true, true).empty());
}

TEST(Adaptive, MixedWindowKeepsDegree)
{
    AdaptiveSequentialPrefetcher p(32, 2, 8, 16);
    for (int i = 0; i < 10; ++i)
        p.notePrefetchOutcome(true);
    for (int i = 0; i < 6; ++i)
        p.notePrefetchOutcome(false);
    EXPECT_EQ(p.degree(), 2u); // 10/16 useful: between the thresholds
}

TEST(Adaptive, TaggedHitBackfillsBlocksSkippedByDegreeIncrease)
{
    // Regression: on a tagged hit the prefetcher used to fetch only
    // blk + degree blocks. After a degree increase d -> d+1 the stream
    // continuation therefore skipped the block at the old lookahead
    // distance, leaving a permanent hole that cost one demand miss per
    // increase on every active stream.
    AdaptiveSequentialPrefetcher p(32, /*initial*/2, /*max*/8,
                                   /*window*/4);
    auto out = observe(p, 0, false, false);
    ASSERT_EQ(out.size(), 2u); // miss at degree 2: blocks 32 and 64
    EXPECT_EQ(out[0], 32u);
    EXPECT_EQ(out[1], 64u);

    for (int i = 0; i < 4; ++i)
        p.notePrefetchOutcome(true, /*late=*/true);
    ASSERT_EQ(p.degree(), 3u);

    // Stream continues at block 32. Block 96 (old degree-2 lookahead
    // from here) was never fetched; only backfilling emits it.
    out = observe(p, 32, true, true);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 96u);
    EXPECT_EQ(out[1], 128u);

    // Once compensated, steady state emits a single block again.
    out = observe(p, 64, true, true);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 160u);
}

TEST(Adaptive, DecreaseCancelsPendingBackfill)
{
    // An increase followed by a decrease nets out: the degree is back
    // where the stream left it, so there is no hole to backfill.
    AdaptiveSequentialPrefetcher p(32, 2, 8, /*window*/4);
    observe(p, 0, false, false);
    for (int i = 0; i < 4; ++i)
        p.notePrefetchOutcome(true, /*late=*/true);
    ASSERT_EQ(p.degree(), 3u);
    for (int i = 0; i < 4; ++i)
        p.notePrefetchOutcome(false);
    ASSERT_EQ(p.degree(), 2u);

    auto out = observe(p, 32, true, true);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 96u);
}

TEST(Adaptive, ProbesAgainAfterShutoff)
{
    AdaptiveSequentialPrefetcher p(32, 1, 8, 16, /*probe_misses=*/8);
    for (int i = 0; i < 16; ++i)
        p.notePrefetchOutcome(false);
    ASSERT_EQ(p.degree(), 0u);
    // Misses while off eventually re-enable degree 1.
    std::vector<Addr> out;
    for (int i = 0; i < 8; ++i)
        out = observe(p, 0x1000 + 4096u * i, false, false);
    EXPECT_EQ(p.degree(), 1u);
    EXPECT_DOUBLE_EQ(p.reenables.value(), 1.0);
}

TEST(Adaptive, IntegrationRampsUpOnAStream)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.prefetch.scheme = PrefetchScheme::Adaptive;
    MiniSystem sys(cfg);
    auto t = [](apps::ThreadCtx &ctx) -> Task {
        for (Addr a = 0x10000000; a < 0x10000000 + 16384; a += 32) {
            co_await ctx.read<double>(a);
            co_await ctx.think(40);
        }
    };
    sys.run(0, t(sys.ctx(0)));
    ASSERT_TRUE(sys.finish());

    const Slc &slc = sys.m.node(0).slc();
    // A clean unit-stride stream: misses nearly eliminated.
    EXPECT_LT(slc.demandReadMisses.value(), 16384.0 / 32.0 * 0.2);
    EXPECT_GT(slc.prefetchEfficiency(), 0.8);
}

TEST(Adaptive, IntegrationShutsOffOnRandomTraffic)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.prefetch.scheme = PrefetchScheme::Adaptive;
    MachineConfig seq_cfg = cfg;
    seq_cfg.prefetch.scheme = PrefetchScheme::Sequential;

    // Random single reads over a large region: prefetching is pure
    // waste; the adaptive scheme must issue far fewer prefetches than
    // fixed sequential prefetching.
    auto traffic = [](apps::ThreadCtx &ctx) -> Task {
        for (int i = 0; i < 2000; ++i) {
            Addr a = 0x10000000 + (ctx.rng().below(1 << 20) & ~7ULL);
            co_await ctx.read<double>(a);
            co_await ctx.think(10);
        }
    };

    double issued[2];
    int idx = 0;
    for (const auto &c : {cfg, seq_cfg}) {
        MiniSystem sys(c);
        sys.run(0, traffic(sys.ctx(0)));
        ASSERT_TRUE(sys.finish());
        issued[idx++] = sys.m.node(0).slc().pfIssued.value();
    }
    EXPECT_LT(issued[0], issued[1] * 0.3)
            << "adaptive must throttle useless prefetching";
}
