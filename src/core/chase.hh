/**
 * @file
 * Pointer-chase / content-directed prefetching (post-paper; after
 * Srivastava & Navalakha, arXiv:1801.08088).
 *
 * The paper's schemes predict the *address stream* and are blind to
 * pointer chasing (PTHOR's headline negative result; kvstore and BFS in
 * the server suite). This scheme instead looks at the *data*: it asks
 * the SLC for the block-content view (Prefetcher::wantsBlockContent)
 * and mines loaded values for two kinds of future addresses:
 *
 *  - raw pointers: 8-aligned words that land inside the live heap
 *    envelope (the min/max of every demand address seen) are chased
 *    directly -- the classic content-directed rule;
 *  - scaled indices: many "pointer" chains store small indices, not
 *    addresses (kvstore's u32 slot links, BFS's u32 vertex ids). A
 *    small PC-indexed pattern table correlates values seen in recent
 *    content blocks with subsequent demand-miss addresses, learning
 *    `miss = base + (value << shift)` relations; a confirmed pattern
 *    turns every freshly observed index into a prefetch.
 *
 * Chases are bounded: candidates derived from a prefetched (not yet
 * demanded) block's content carry a depth, and chains stop at
 * `chaseDepth`. A conventional base scheme (sequential by default) runs
 * underneath, exactly as content-directed prefetchers deploy in
 * hardware proposals -- the chase engine covers what the stream engine
 * cannot.
 */

#ifndef PSIM_CORE_CHASE_HH
#define PSIM_CORE_CHASE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/prefetcher.hh"
#include "sim/stats.hh"

namespace psim
{

class ChasePrefetcher : public Prefetcher
{
  public:
    /** Confidence at which a pattern starts prefetching. */
    static constexpr unsigned kLearned = 2;
    /** Confidence saturation. */
    static constexpr unsigned kConfCap = 3;

    /** One learned `miss = base + (value << shift)` relation. */
    struct Pattern
    {
        bool valid = false;
        Pc pc = 0;       ///< consumer: the load that misses at base+(v<<s)
        Pc srcPc = 0;    ///< producer: the load whose content supplies v
        Addr base = 0;
        unsigned shift = 0;
        unsigned srcOff = 0; ///< byte offset of v in producer blocks
        unsigned conf = 0;
        /** Indices harvested from producer content, awaiting a trigger. */
        std::array<std::uint32_t, 16> pending{};
        unsigned npending = 0;
    };

    ChasePrefetcher(unsigned block_size, unsigned chase_depth,
                    unsigned table_entries,
                    std::unique_ptr<Prefetcher> base);
    ~ChasePrefetcher() override;

    void observeRead(const ReadObservation &obs,
                     std::vector<Addr> &out) override;

    void
    notePrefetchOutcome(bool useful, bool late = false,
                        Addr blk_addr = 0) override
    {
        if (_base)
            _base->notePrefetchOutcome(useful, late, blk_addr);
    }

    bool
    wantsOutcomeFeedback() const override
    {
        return _base && _base->wantsOutcomeFeedback();
    }

    bool wantsBlockContent() const override { return true; }

    const char *name() const override { return "chase"; }

    void registerStats(stats::Group &g) override;

    /** Peek at the pattern a consumer PC maps to (tests). */
    const Pattern *lookup(Pc pc) const;

    stats::Scalar rawCandidates;      ///< heap-envelope pointer chases
    stats::Scalar indirectCandidates; ///< pattern-directed index chases
    stats::Scalar patternsLearned;    ///< patterns reaching confidence
    stats::Scalar depthClipped;       ///< chases stopped by chaseDepth

  private:
    /** One recently observed content block (learning history). */
    struct RingEntry
    {
        bool valid = false;
        Pc pc = 0;
        Addr blkAddr = 0;
        std::vector<std::uint8_t> bytes;
    };

    std::size_t indexOf(Pc pc) const;
    void learn(const ReadObservation &obs);
    void harvest(const ReadObservation &obs, unsigned obs_depth,
                 std::vector<Addr> &out);
    /** Append one chase candidate, tracking depth; false when clipped. */
    bool emit(Addr base, Addr offset, unsigned obs_depth,
              std::vector<Addr> &out);

    unsigned _blockSize;
    unsigned _chaseDepth;
    std::unique_ptr<Prefetcher> _base;

    std::vector<Pattern> _patterns;
    std::array<RingEntry, 4> _ring;
    unsigned _ringHead = 0;

    /** Live-heap envelope: min/max demand address observed. */
    Addr _envLo = ~static_cast<Addr>(0);
    Addr _envHi = 0;

    /** Chase depth of prefetched-but-undemanded blocks. */
    std::unordered_map<Addr, unsigned> _depth;
    std::deque<Addr> _depthFifo;

    /** Chase candidates emitted for the current observation. */
    unsigned _emitted = 0;
};

} // namespace psim

#endif // PSIM_CORE_CHASE_HH
