/**
 * @file
 * Lookahead I-detection stride prefetching (paper Section 6; the
 * original Baer/Chen mechanism).
 *
 * Baer and Chen drive prefetching with a lookahead program counter
 * that runs ahead of the real PC by about one miss latency, issuing a
 * prefetch when the lookahead PC reaches a load with a predicted
 * stride. The paper's own I-detection scheme replaces this with the
 * tagged-block continuation to avoid processor modifications, arguing
 * the performance difference is small.
 *
 * This class models the lookahead variant within the SLC-observation
 * framework: every read presented to the SLC that matches a
 * prefetchable RPT entry prefetches `lookahead` strides ahead of the
 * current address -- the steady-state effect of a lookahead PC that
 * stays `lookahead` dynamic executions of the load ahead. It does not
 * depend on the prefetched-block tag at all.
 */

#ifndef PSIM_CORE_IDET_LOOKAHEAD_HH
#define PSIM_CORE_IDET_LOOKAHEAD_HH

#include "core/prefetcher.hh"
#include "core/rpt.hh"

namespace psim
{

class IDetLookaheadPrefetcher : public Prefetcher
{
  public:
    /**
     * @param rpt_entries RPT size (paper: 256, direct-mapped)
     * @param lookahead how many dynamic strides the (virtual)
     *        lookahead PC runs ahead of the processor
     * @param block_size cache block size in bytes
     */
    IDetLookaheadPrefetcher(unsigned rpt_entries, unsigned lookahead,
                            unsigned block_size)
        : _rpt(rpt_entries), _lookahead(lookahead),
          _blockSize(block_size)
    {
    }

    void
    observeRead(const ReadObservation &obs, std::vector<Addr> &out) override
    {
        Rpt::Outcome oc = _rpt.observe(obs.pc, obs.addr, !obs.hit);
        if (!oc.prefetchable)
            return;

        // The lookahead PC is `lookahead` executions of this load
        // ahead, so it accesses addr + lookahead * stride right now.
        std::int64_t bs = static_cast<std::int64_t>(_blockSize);
        std::int64_t sblk = oc.stride / bs;
        if (sblk == 0)
            sblk = oc.stride > 0 ? 1 : -1;
        pushCandidate(obs.addr,
                      sblk * bs * static_cast<std::int64_t>(_lookahead),
                      out);
    }

    const char *name() const override { return "i-det-la"; }

    void
    registerStats(stats::Group &g) override
    {
        Prefetcher::registerStats(g);
        _rpt.registerStats(g);
    }

    Rpt &rpt() { return _rpt; }

  private:
    Rpt _rpt;
    unsigned _lookahead;
    unsigned _blockSize;
};

} // namespace psim

#endif // PSIM_CORE_IDET_LOOKAHEAD_HH
