#include "core/rpt.hh"

#include "sim/logging.hh"

namespace psim
{

const char *
toString(RptState s)
{
    switch (s) {
      case RptState::New:
        return "new";
      case RptState::Init:
        return "init";
      case RptState::Steady:
        return "steady";
      case RptState::Transient:
        return "transient";
      case RptState::NoPref:
        return "no-pref";
    }
    return "?";
}

Rpt::Rpt(unsigned entries) : _table(entries)
{
    psim_assert(entries > 0 && isPowerOf2(entries),
            "RPT entries must be a power of two");
}

std::size_t
Rpt::indexOf(Pc pc) const
{
    // Synthetic PCs are word-aligned; drop the low bits before indexing,
    // as a hardware RPT would.
    return static_cast<std::size_t>((pc >> 2) & (_table.size() - 1));
}

const RptEntry *
Rpt::lookup(Pc pc) const
{
    const RptEntry &e = _table[indexOf(pc)];
    if (e.valid && e.pc == pc)
        return &e;
    return nullptr;
}

Rpt::Outcome
Rpt::observe(Pc pc, Addr addr, bool allocate_on_miss)
{
    RptEntry &e = _table[indexOf(pc)];
    Outcome out;

    if (!e.valid || e.pc != pc) {
        // RPT miss: allocate only when the reference missed in the SLC.
        if (allocate_on_miss) {
            if (e.valid)
                ++conflicts;
            ++allocations;
            e.valid = true;
            e.pc = pc;
            e.prevAddr = addr;
            e.stride = 0;
            e.state = RptState::New;
        }
        out.state = RptState::New;
        return out;
    }

    out.entryHit = true;
    std::int64_t observed = static_cast<std::int64_t>(addr) -
                            static_cast<std::int64_t>(e.prevAddr);

    if (e.state == RptState::New) {
        // Second appearance of this instruction: calculate the stride,
        // enter init, and begin prefetching (Section 3.2).
        e.stride = observed;
        e.state = RptState::Init;
    } else {
        bool is_correct = (observed == e.stride);
        if (is_correct)
            ++correct;
        else
            ++incorrect;
        switch (e.state) {
          case RptState::Init:
            if (is_correct) {
                e.state = RptState::Steady;
            } else {
                e.state = RptState::Transient;
                e.stride = observed;
            }
            break;
          case RptState::Steady:
            // A single incorrect prediction does not recalculate the
            // stride; it only demotes to init (Section 3.2).
            e.state = is_correct ? RptState::Steady : RptState::Init;
            break;
          case RptState::Transient:
            if (is_correct) {
                e.state = RptState::Steady;
            } else {
                e.state = RptState::NoPref;
                e.stride = observed;
            }
            break;
          case RptState::NoPref:
            if (is_correct) {
                e.state = RptState::Transient;
            } else {
                e.stride = observed;
            }
            break;
          case RptState::New:
            psim_panic("unreachable RPT state");
        }
    }

    e.prevAddr = addr;
    out.state = e.state;
    out.stride = e.stride;
    out.prefetchable =
            e.state != RptState::NoPref && e.state != RptState::New &&
            e.stride != 0;
    return out;
}

} // namespace psim
