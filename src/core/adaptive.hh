/**
 * @file
 * Adaptive sequential prefetching (paper Section 6, after Dahlgren,
 * Dubois and Stenström's adaptive scheme).
 *
 * Sequential prefetching with a dynamically adjusted degree: the cache
 * counts how many prefetched blocks turn out useful, and per window of
 * outcomes the degree is raised when most prefetches are useful and
 * lowered when most are useless. The degree can reach zero -- no
 * prefetches at all during low-locality phases, which is exactly the
 * traffic fix the paper says sequential prefetching needs on Ocean and
 * PTHOR -- and a miss-counting probe re-enables it later.
 */

#ifndef PSIM_CORE_ADAPTIVE_HH
#define PSIM_CORE_ADAPTIVE_HH

#include "core/prefetcher.hh"
#include "sim/stats.hh"

namespace psim
{

class AdaptiveSequentialPrefetcher : public Prefetcher
{
  public:
    /**
     * @param block_size cache block size in bytes
     * @param initial_degree starting degree (paper's fixed scheme: 1)
     * @param max_degree upper bound for the degree
     * @param window outcomes per adaptation decision
     * @param probe_misses misses at degree 0 before probing again
     */
    AdaptiveSequentialPrefetcher(unsigned block_size,
                                 unsigned initial_degree = 1,
                                 unsigned max_degree = 8,
                                 unsigned window = 16,
                                 unsigned probe_misses = 64)
        : _blockSize(block_size),
          _degree(initial_degree),
          _maxDegree(max_degree),
          _window(window),
          _probeMisses(probe_misses)
    {
    }

    void
    observeRead(const ReadObservation &obs, std::vector<Addr> &out) override
    {
        if (_degree == 0) {
            // Disabled: count misses and periodically probe again.
            if (!obs.hit && ++_missesWhileOff >= _probeMisses) {
                _missesWhileOff = 0;
                _degree = 1;
                _ramp = 0;
                ++reenables;
            }
            if (_degree == 0)
                return;
        }
        Addr blk = alignDown(obs.addr, _blockSize);
        std::int64_t bs = static_cast<std::int64_t>(_blockSize);
        if (!obs.hit) {
            for (unsigned k = 1; k <= _degree; ++k)
                pushCandidate(blk, static_cast<std::int64_t>(k) * bs, out);
            _ramp = 0;
        } else if (obs.taggedHit) {
            // Continuing an established stream: blocks up to distance
            // _degree - _ramp ahead were already fetched by earlier
            // steps, but the _ramp most recent degree increases opened
            // holes the stream has not yet covered -- backfill them,
            // or every increase would skip one block forever.
            unsigned first = _degree > _ramp ? _degree - _ramp : 1;
            for (unsigned k = first; k <= _degree; ++k)
                pushCandidate(blk, static_cast<std::int64_t>(k) * bs,
                              out);
            _ramp = 0;
        }
    }

    void
    notePrefetchOutcome(bool useful, bool late = false,
                        Addr blk_addr = 0) override
    {
        (void)blk_addr;
        if (useful)
            ++_usefulInWindow;
        if (useful && late)
            ++_lateInWindow;
        if (++_outcomesInWindow < _window)
            return;

        // Decision point: lower the degree when no more than half of
        // the window was useful (the scheme is fetching dead blocks);
        // raise it when prefetches are useful but mostly late -- the
        // lookahead-distance adjustment the paper attributes to
        // Hagersten's prefetching phase.
        if (_usefulInWindow * 2 <= _window) {
            if (_degree > 0) {
                --_degree;
                ++decreases;
                if (_ramp > 0)
                    --_ramp;
            }
        } else if (_lateInWindow * 2 >= _window) {
            if (_degree < _maxDegree) {
                ++_degree;
                ++increases;
                ++_ramp;
            }
        }
        _outcomesInWindow = 0;
        _usefulInWindow = 0;
        _lateInWindow = 0;
    }

    bool wantsOutcomeFeedback() const override { return true; }

    const char *name() const override { return "adaptive"; }

    void
    registerStats(stats::Group &g) override
    {
        Prefetcher::registerStats(g);
        g.addScalar("degreeIncreases", &increases, "degree increases");
        g.addScalar("degreeDecreases", &decreases, "degree decreases");
        g.addScalar("reenables", &reenables,
                "re-enables after a degree-0 phase");
    }

    unsigned degree() const { return _degree; }

    stats::Scalar increases;
    stats::Scalar decreases;
    stats::Scalar reenables;

  private:
    unsigned _blockSize;
    unsigned _degree;
    unsigned _maxDegree;
    unsigned _window;
    unsigned _probeMisses;

    unsigned _outcomesInWindow = 0;
    unsigned _usefulInWindow = 0;
    unsigned _lateInWindow = 0;
    unsigned _missesWhileOff = 0;
    /** Degree increases not yet backfilled on a tagged hit. */
    unsigned _ramp = 0;
};

} // namespace psim

#endif // PSIM_CORE_ADAPTIVE_HH
