#include "core/characterizer.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace psim
{

StrideCharacterizer::StrideCharacterizer(unsigned block_size,
                                         unsigned min_run)
    : _blockSize(block_size), _minRun(min_run)
{
    psim_assert(min_run >= 2, "a stride needs at least two accesses");
}

std::int64_t
StrideCharacterizer::strideBlocks(std::int64_t stride_bytes) const
{
    std::int64_t mag = std::llabs(stride_bytes);
    // Round to the nearest whole number of blocks; strides shorter than
    // one block count as one block (the paper reports them as stride 1,
    // which is what makes sequential prefetching cover them).
    std::int64_t blocks = (mag + _blockSize / 2) / _blockSize;
    return blocks < 1 ? 1 : blocks;
}

void
StrideCharacterizer::closeRun(PcState &st)
{
    if (st.runLen >= _minRun) {
        ++_numSequences;
        _sumSeqLen += st.runLen;
    }
}

void
StrideCharacterizer::observeMiss(Pc pc, Addr addr)
{
    ++_totalMisses;
    PcState &st = _pcs[pc];

    if (!st.hasPrev) {
        st.hasPrev = true;
        st.prevAddr = addr;
        st.runLen = 1;
        return;
    }

    std::int64_t d = static_cast<std::int64_t>(addr) -
                     static_cast<std::int64_t>(st.prevAddr);
    st.prevAddr = addr;

    if (st.hasStride && d == st.stride) {
        ++st.runLen;
        std::uint64_t fresh = 0;
        if (st.runLen == _minRun) {
            // The run just became a sequence; count its members now.
            // Its first access may already belong to the previous
            // sequence (it is that sequence's last access), in which
            // case it must not be counted twice.
            fresh = _minRun - (st.firstShared ? 1u : 0u);
        } else if (st.runLen > _minRun) {
            fresh = 1;
        }
        if (fresh) {
            _strideMisses += fresh;
            _strideHist.sample(strideBlocks(st.stride), fresh);
        }
        return;
    }

    // The equidistant run broke (or this is the second access from this
    // load): close it and start a new candidate run whose first element
    // is the previous access.
    bool prev_was_sequence = st.runLen >= _minRun;
    closeRun(st);
    st.firstShared = prev_was_sequence;
    if (d != 0) {
        st.stride = d;
        st.hasStride = true;
        st.runLen = 2;
    } else {
        // Repeated misses to the same address (coherence misses) do not
        // form a stride sequence.
        st.hasStride = false;
        st.runLen = 1;
    }
}

StrideCharacterizer::Report
StrideCharacterizer::finalize()
{
    for (auto &[pc, st] : _pcs)
        closeRun(st);

    Report r;
    r.totalMisses = _totalMisses;
    r.strideMisses = _strideMisses;
    r.numSequences = _numSequences;
    r.strideFraction = _totalMisses
            ? static_cast<double>(_strideMisses) /
              static_cast<double>(_totalMisses)
            : 0.0;
    r.avgSequenceLength = _numSequences
            ? static_cast<double>(_sumSeqLen) /
              static_cast<double>(_numSequences)
            : 0.0;

    std::vector<std::pair<std::int64_t, std::uint64_t>> buckets(
            _strideHist.buckets().begin(), _strideHist.buckets().end());
    std::sort(buckets.begin(), buckets.end(),
            [](const auto &a, const auto &b) { return a.second > b.second; });
    for (const auto &[stride, weight] : buckets) {
        r.topStrides.emplace_back(stride,
                _strideMisses ? static_cast<double>(weight) /
                                static_cast<double>(_strideMisses)
                              : 0.0);
    }
    return r;
}

} // namespace psim
