/**
 * @file
 * Perceptron-gated prefetch filtering (post-paper; after Wang & Luo,
 * arXiv:1712.00905).
 *
 * Wraps any base scheme: every candidate the base proposes is scored by
 * a perceptron over cheap features (trigger PC, block delta, target
 * block), and candidates scoring negative are suppressed before the
 * cache ever sees them. Training comes from the cache's existing
 * prefetch-fate feedback (notePrefetchOutcome): a useful fate pushes
 * the features that issued the prefetch up, a useless fate pushes them
 * down, with the classic margin rule (train while |sum| <= theta or the
 * prediction was wrong). A deterministic 1-in-16 probe lets a fraction
 * of suppressed candidates through so a phase change can re-train the
 * weights -- the simulator allows no randomness.
 */

#ifndef PSIM_CORE_PTRON_HH
#define PSIM_CORE_PTRON_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/prefetcher.hh"
#include "sim/stats.hh"

namespace psim
{

class PerceptronFilter : public Prefetcher
{
  public:
    /** Weight clamp: signed 6-bit counters, like the branch predictors. */
    static constexpr int kWeightMin = -32;
    static constexpr int kWeightMax = 31;
    /** Every Nth suppressed candidate issues anyway (exploration). */
    static constexpr unsigned kProbePeriod = 16;
    /** Issued-candidate features awaiting a fate. */
    static constexpr std::size_t kPendingCap = 512;

    PerceptronFilter(unsigned block_size, unsigned theta,
                     std::unique_ptr<Prefetcher> base)
        : _blockSize(block_size), _theta(static_cast<int>(theta)),
          _base(std::move(base))
    {
        _weights.fill(0);
    }

    void
    observeRead(const ReadObservation &obs, std::vector<Addr> &out) override
    {
        _scratch.clear();
        _base->observeRead(obs, _scratch);

        for (Addr cand : _scratch) {
            Features f = featuresOf(obs, cand);
            int sum = score(f);
            bool allow = sum >= 0;
            if (!allow) {
                ++suppressed;
                if (++_probeClock % kProbePeriod == 0) {
                    allow = true;
                    ++probes;
                }
            }
            if (allow) {
                out.push_back(cand);
                remember(alignDown(cand, _blockSize), f, sum);
            }
        }
    }

    void
    notePrefetchOutcome(bool useful, bool late = false,
                        Addr blk_addr = 0) override
    {
        auto it = _pending.find(blk_addr);
        if (it != _pending.end()) {
            train(it->second, useful);
            _pending.erase(it);
        }
        _base->notePrefetchOutcome(useful, late, blk_addr);
    }

    /** Fates are this scheme's training signal. */
    bool wantsOutcomeFeedback() const override { return true; }

    bool
    wantsBlockContent() const override
    {
        return _base->wantsBlockContent();
    }

    const char *name() const override { return "ptron"; }

    void
    registerStats(stats::Group &g) override
    {
        Prefetcher::registerStats(g);
        g.addScalar("ptronSuppressed", &suppressed,
                "base-scheme candidates suppressed by the filter");
        g.addScalar("ptronProbes", &probes,
                "suppressed candidates issued as exploration probes");
        g.addScalar("ptronTrainUp", &trainUp,
                "weight updates toward issuing");
        g.addScalar("ptronTrainDown", &trainDown,
                "weight updates toward suppressing");
    }

    /** Score the candidate a trigger would produce (tests). */
    int
    scoreFor(const ReadObservation &obs, Addr cand) const
    {
        return score(featuresOf(obs, cand));
    }

    Prefetcher &base() { return *_base; }

    stats::Scalar suppressed;
    stats::Scalar probes;
    stats::Scalar trainUp;
    stats::Scalar trainDown;

  private:
    /** Indices into the concatenated weight tables. */
    struct Features
    {
        std::array<std::uint16_t, 4> idx{};
    };

    struct PendingIssue
    {
        Features f;
        int sum = 0;
    };

    Features
    featuresOf(const ReadObservation &obs, Addr cand) const
    {
        Addr cand_blk = alignDown(cand, _blockSize);
        Addr trig_blk = alignDown(obs.addr, _blockSize);
        std::int64_t delta =
                (static_cast<std::int64_t>(cand_blk) -
                 static_cast<std::int64_t>(trig_blk)) /
                static_cast<std::int64_t>(_blockSize);
        Features f;
        f.idx[0] = 0; // bias
        f.idx[1] = static_cast<std::uint16_t>(
                1 + ((obs.pc >> 2) & 63));
        f.idx[2] = static_cast<std::uint16_t>(
                65 + (static_cast<std::uint64_t>(delta + 32) & 63));
        f.idx[3] = static_cast<std::uint16_t>(
                129 + ((cand_blk / _blockSize) & 63));
        return f;
    }

    int
    score(const Features &f) const
    {
        int sum = 0;
        for (std::uint16_t i : f.idx)
            sum += _weights[i];
        return sum;
    }

    void
    remember(Addr blk, const Features &f, int sum)
    {
        auto [it, inserted] = _pending.try_emplace(blk);
        it->second.f = f;
        it->second.sum = sum;
        if (inserted) {
            _order.push_back(blk);
            if (_order.size() > kPendingCap) {
                _pending.erase(_order.front());
                _order.pop_front();
            }
        }
    }

    void
    train(const PendingIssue &p, bool useful)
    {
        // Margin rule: update on a wrong prediction or a weak margin.
        // Everything issued predicted "useful" (probes carried a
        // negative sum, so a useless fate for them trains nothing new
        // and a useful fate always retrains).
        int mag = p.sum < 0 ? -p.sum : p.sum;
        bool predicted_useful = p.sum >= 0;
        if (predicted_useful != useful || mag <= _theta) {
            int t = useful ? 1 : -1;
            for (std::uint16_t i : p.f.idx) {
                int w = _weights[i] + t;
                if (w < kWeightMin)
                    w = kWeightMin;
                if (w > kWeightMax)
                    w = kWeightMax;
                _weights[i] = static_cast<std::int8_t>(w);
            }
            if (useful)
                ++trainUp;
            else
                ++trainDown;
        }
    }

    unsigned _blockSize;
    int _theta;
    std::unique_ptr<Prefetcher> _base;

    /** bias (1) + PC (64) + block delta (64) + target block (64). */
    std::array<std::int8_t, 193> _weights;

    std::unordered_map<Addr, PendingIssue> _pending;
    std::deque<Addr> _order;
    unsigned _probeClock = 0;
    std::vector<Addr> _scratch;
};

} // namespace psim

#endif // PSIM_CORE_PTRON_HH
