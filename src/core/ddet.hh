/**
 * @file
 * D-detection stride prefetching (Section 3.2; after Hagersten).
 *
 * Detection works on data addresses only -- no program counter needed.
 * Four 16-entry LRU structures:
 *
 *  - the *miss list* buffers recent read-miss addresses;
 *  - each new miss is paired with every buffered miss, and every
 *    candidate stride updates the *frequency table*;
 *  - a stride whose frequency reaches the stride threshold (3) moves to
 *    the *list of common strides*;
 *  - when a new miss forms a common stride with a buffered miss, a
 *    stream is allocated in the *stream list* and prefetching starts
 *    (this is why two additional misses are needed once a stride has
 *    become common).
 *
 * The prefetching phase is the shared one of Section 3.3: d blocks ahead
 * on stream creation, one more block per demand hit on a tagged block.
 */

#ifndef PSIM_CORE_DDET_HH
#define PSIM_CORE_DDET_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/prefetcher.hh"
#include "sim/stats.hh"

namespace psim
{

class DDetPrefetcher : public Prefetcher
{
  public:
    /**
     * @param block_size cache block size in bytes
     * @param degree degree of prefetching d
     * @param entries size of each of the four structures (paper: 16)
     * @param stride_threshold occurrences before a stride is common
     *        (paper: 3)
     * @param max_stride_bytes ignore candidate strides at least this
     *        large; prefetching cannot cross a page anyway (paper: 4 KB
     *        pages)
     */
    DDetPrefetcher(unsigned block_size, unsigned degree, unsigned entries,
                   unsigned stride_threshold, unsigned max_stride_bytes);

    void observeRead(const ReadObservation &obs,
                     std::vector<Addr> &out) override;

    const char *name() const override { return "d-det"; }

    void
    registerStats(stats::Group &g) override
    {
        Prefetcher::registerStats(g);
        g.addScalar("streamsCreated", &streamsCreated,
                "streams allocated");
        g.addScalar("stridesPromoted", &stridesPromoted,
                "strides promoted to the common-stride list");
    }

    /** Streams allocated over the run. */
    stats::Scalar streamsCreated;
    /** Strides promoted to the common-stride list. */
    stats::Scalar stridesPromoted;

    // ---- introspection for tests ----
    bool isCommonStride(std::int64_t s) const;
    std::size_t numStreams() const { return _streams.size(); }

  private:
    struct FreqEntry
    {
        std::int64_t stride;
        unsigned count;
        std::uint64_t lastUse;
    };

    struct CommonEntry
    {
        std::int64_t stride;
        std::uint64_t lastUse;
    };

    struct Stream
    {
        Addr lastAddr;
        std::int64_t stride;
        std::uint64_t lastUse;
    };

    void emitStart(Addr base, std::int64_t stride, std::vector<Addr> &out);
    void noteStride(std::int64_t s);
    void promote(std::int64_t s);
    Stream *findStreamExpecting(Addr addr);
    void allocStream(Addr addr, std::int64_t stride);

    template <typename Vec>
    void
    evictLru(Vec &v)
    {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < v.size(); ++i) {
            if (v[i].lastUse < v[victim].lastUse)
                victim = i;
        }
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    unsigned _blockSize;
    unsigned _degree;
    unsigned _entries;
    unsigned _strideThreshold;
    std::int64_t _maxStrideBytes;

    std::uint64_t _clock = 0; ///< LRU timestamp source

    std::deque<Addr> _missList;
    std::vector<FreqEntry> _freq;
    std::vector<CommonEntry> _common;
    std::vector<Stream> _streams;
    /** Strides already counted for the current observation (the miss
     *  list may buffer one address twice; the repeated stride must not
     *  be double-counted toward promotion). */
    std::vector<std::int64_t> _strideScratch;
};

} // namespace psim

#endif // PSIM_CORE_DDET_HH
