/**
 * @file
 * Sequential prefetching (Section 3.4).
 *
 * On a read miss to block B, prefetch B+1 .. B+d. On a demand hit to a
 * block tagged as prefetched, prefetch the block d blocks ahead. The
 * scheme needs no detection state at all -- its entire hardware cost is
 * the per-block prefetch bit and a counter, which is the paper's point
 * about its simplicity.
 */

#ifndef PSIM_CORE_SEQUENTIAL_HH
#define PSIM_CORE_SEQUENTIAL_HH

#include "core/prefetcher.hh"

namespace psim
{

class SequentialPrefetcher : public Prefetcher
{
  public:
    /**
     * @param block_size cache block size in bytes
     * @param degree degree of prefetching d
     */
    SequentialPrefetcher(unsigned block_size, unsigned degree)
        : _blockSize(block_size), _degree(degree)
    {
    }

    void
    observeRead(const ReadObservation &obs, std::vector<Addr> &out) override
    {
        Addr blk = alignDown(obs.addr, _blockSize);
        std::int64_t bs = static_cast<std::int64_t>(_blockSize);
        if (!obs.hit) {
            for (unsigned k = 1; k <= _degree; ++k)
                pushCandidate(blk, static_cast<std::int64_t>(k) * bs, out);
        } else if (obs.taggedHit) {
            pushCandidate(blk, static_cast<std::int64_t>(_degree) * bs,
                          out);
        }
    }

    const char *name() const override { return "seq"; }

  private:
    unsigned _blockSize;
    unsigned _degree;
};

} // namespace psim

#endif // PSIM_CORE_SEQUENTIAL_HH
