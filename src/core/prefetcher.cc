#include "core/prefetcher.hh"

#include "core/adaptive.hh"
#include "core/chase.hh"
#include "core/ddet.hh"
#include "core/idet.hh"
#include "core/idet_lookahead.hh"
#include "core/mstride.hh"
#include "core/ptron.hh"
#include "core/sequential.hh"
#include "sim/logging.hh"

namespace psim
{

namespace
{

/**
 * Build @p scheme under @p cfg. The wrapper schemes (chase, ptron)
 * recurse once to build their configured base; MachineConfig::validate
 * rejects wrapper-as-base combinations that would recurse further
 * (ptron may wrap chase, nothing wraps ptron).
 */
std::unique_ptr<Prefetcher>
makeScheme(const MachineConfig &cfg, PrefetchScheme scheme)
{
    const PrefetchConfig &p = cfg.prefetch;
    switch (scheme) {
      case PrefetchScheme::None:
        return std::make_unique<NullPrefetcher>();
      case PrefetchScheme::Sequential:
        return std::make_unique<SequentialPrefetcher>(cfg.blockSize,
                                                      p.degree);
      case PrefetchScheme::IDet:
        return std::make_unique<IDetPrefetcher>(p.rptEntries, p.degree,
                                                cfg.blockSize);
      case PrefetchScheme::DDet:
        return std::make_unique<DDetPrefetcher>(cfg.blockSize, p.degree,
                p.ddetEntries, p.strideThreshold, cfg.pageSize);
      case PrefetchScheme::Adaptive:
        return std::make_unique<AdaptiveSequentialPrefetcher>(
                cfg.blockSize, p.degree, p.adaptiveMaxDegree,
                p.adaptiveWindow);
      case PrefetchScheme::IDetLookahead:
        return std::make_unique<IDetLookaheadPrefetcher>(p.rptEntries,
                p.lookaheadStrides, cfg.blockSize);
      case PrefetchScheme::MultiStride:
        return std::make_unique<MultiStridePrefetcher>(p.rptEntries,
                p.mstrideWays, p.mstrideConf, p.degree, cfg.blockSize);
      case PrefetchScheme::PtrChase:
        if (p.chaseBase == PrefetchScheme::PtrChase ||
            p.chaseBase == PrefetchScheme::Perceptron)
            psim_fatal("chaseBase must be a non-wrapper scheme");
        return std::make_unique<ChasePrefetcher>(cfg.blockSize,
                p.chaseDepth, p.chaseEntries,
                makeScheme(cfg, p.chaseBase));
      case PrefetchScheme::Perceptron:
        if (p.ptronBase == PrefetchScheme::Perceptron)
            psim_fatal("ptronBase must not itself be the perceptron "
                       "filter");
        return std::make_unique<PerceptronFilter>(cfg.blockSize,
                p.ptronTheta, makeScheme(cfg, p.ptronBase));
    }
    psim_panic("unknown prefetch scheme");
}

} // namespace

std::unique_ptr<Prefetcher>
Prefetcher::create(const MachineConfig &cfg)
{
    return makeScheme(cfg, cfg.prefetch.scheme);
}

} // namespace psim
