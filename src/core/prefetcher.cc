#include "core/prefetcher.hh"

#include "core/adaptive.hh"
#include "core/ddet.hh"
#include "core/idet.hh"
#include "core/idet_lookahead.hh"
#include "core/sequential.hh"
#include "sim/logging.hh"

namespace psim
{

std::unique_ptr<Prefetcher>
Prefetcher::create(const MachineConfig &cfg)
{
    const PrefetchConfig &p = cfg.prefetch;
    switch (p.scheme) {
      case PrefetchScheme::None:
        return std::make_unique<NullPrefetcher>();
      case PrefetchScheme::Sequential:
        return std::make_unique<SequentialPrefetcher>(cfg.blockSize,
                                                      p.degree);
      case PrefetchScheme::IDet:
        return std::make_unique<IDetPrefetcher>(p.rptEntries, p.degree,
                                                cfg.blockSize);
      case PrefetchScheme::DDet:
        return std::make_unique<DDetPrefetcher>(cfg.blockSize, p.degree,
                p.ddetEntries, p.strideThreshold, cfg.pageSize);
      case PrefetchScheme::Adaptive:
        return std::make_unique<AdaptiveSequentialPrefetcher>(
                cfg.blockSize, p.degree, p.adaptiveMaxDegree,
                p.adaptiveWindow);
      case PrefetchScheme::IDetLookahead:
        return std::make_unique<IDetLookaheadPrefetcher>(p.rptEntries,
                p.lookaheadStrides, cfg.blockSize);
    }
    psim_panic("unknown prefetch scheme");
}

} // namespace psim
