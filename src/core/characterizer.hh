/**
 * @file
 * Stride characterization of a read-miss stream (Tables 2 and 3).
 *
 * Implements the paper's Section 5.1 methodology: the demand read misses
 * of one processor are classified with I-detection -- consecutive misses
 * from the same load instruction whose addresses are equidistant form a
 * stride sequence; at least three equidistant accesses are required.
 *
 * Reports, per the paper's tables:
 *  - the fraction of read misses that belong to stride sequences,
 *  - the average length (in references) of a stride sequence,
 *  - the distribution of strides measured in blocks, where strides
 *    shorter than one block count as one block (which is why the paper
 *    can say sequential prefetching covers them).
 */

#ifndef PSIM_CORE_CHARACTERIZER_HH
#define PSIM_CORE_CHARACTERIZER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace psim
{

class StrideCharacterizer
{
  public:
    /** Summary of a miss stream (one row group of Table 2/3). */
    struct Report
    {
        std::uint64_t totalMisses = 0;
        std::uint64_t strideMisses = 0;     ///< misses inside sequences
        std::uint64_t numSequences = 0;
        double strideFraction = 0;          ///< strideMisses / totalMisses
        double avgSequenceLength = 0;       ///< references per sequence
        /** (stride in blocks, fraction of stride misses), sorted desc. */
        std::vector<std::pair<std::int64_t, double>> topStrides;
    };

    /**
     * @param block_size cache block size (32 B in the paper)
     * @param min_run at least this many equidistant accesses make a
     *        sequence (paper: 3)
     */
    explicit StrideCharacterizer(unsigned block_size, unsigned min_run = 3);

    /** Feed one demand read miss (in program order for its processor). */
    void observeMiss(Pc pc, Addr addr);

    /** Close all open runs and build the report. */
    Report finalize();

    /** Misses observed so far. */
    std::uint64_t totalMisses() const { return _totalMisses; }

  private:
    struct PcState
    {
        Addr prevAddr = 0;
        std::int64_t stride = 0;
        unsigned runLen = 0; ///< accesses in the current equidistant run
        bool hasPrev = false;
        bool hasStride = false;
        /** The run's first access already belongs to a prior sequence. */
        bool firstShared = false;
    };

    /** Stride in blocks; sub-block strides count as one block. */
    std::int64_t strideBlocks(std::int64_t stride_bytes) const;

    void closeRun(PcState &st);

    unsigned _blockSize;
    unsigned _minRun;
    std::uint64_t _totalMisses = 0;
    std::uint64_t _strideMisses = 0;
    std::uint64_t _numSequences = 0;
    std::uint64_t _sumSeqLen = 0;
    stats::Histogram _strideHist; ///< stride (blocks) -> member misses
    std::unordered_map<Pc, PcState> _pcs;
};

} // namespace psim

#endif // PSIM_CORE_CHARACTERIZER_HH
