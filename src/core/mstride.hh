/**
 * @file
 * Multi-stride RPT prefetching (post-paper; after Blom et al.,
 * arXiv:2412.16001).
 *
 * The paper's I-detection keeps exactly one stride per PC, so a load
 * that alternates between a handful of strides (a column sweep with a
 * row fix-up, a frontier scan with irregular gaps) thrashes the RPT's
 * automaton and prefetches almost nothing. This table instead keeps up
 * to `ways` concurrent (stride, confidence) pairs per PC: every
 * observed delta either reinforces the way holding it or competes for a
 * zero-confidence slot, and all ways above a confidence threshold
 * prefetch on every trigger. Single-stride streams degenerate to the
 * classic behaviour with one hot way.
 */

#ifndef PSIM_CORE_MSTRIDE_HH
#define PSIM_CORE_MSTRIDE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/prefetcher.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace psim
{

/** PC-indexed, direct-mapped table of per-PC stride ways. */
class MultiStrideTable
{
  public:
    static constexpr unsigned kMaxWays = 8;
    static constexpr unsigned kConfCap = 3;

    struct Way
    {
        std::int64_t stride = 0;
        unsigned conf = 0;
    };

    struct Entry
    {
        bool valid = false;
        Pc pc = 0;
        Addr prevAddr = 0;
        std::array<Way, kMaxWays> ways{};
    };

    /** Strides confident enough to prefetch after one observation. */
    struct Outcome
    {
        bool entryHit = false;
        unsigned count = 0;
        std::array<std::int64_t, kMaxWays> strides{};
    };

    MultiStrideTable(unsigned entries, unsigned ways, unsigned conf)
        : _ways(ways < kMaxWays ? ways : kMaxWays),
          _conf(conf),
          _table(entries ? entries : 1)
    {
    }

    /**
     * Present one (PC, address) reference. Entries are allocated only
     * on SLC misses, like the classic RPT.
     */
    Outcome
    observe(Pc pc, Addr addr, bool allocate_on_miss)
    {
        Entry &e = _table[indexOf(pc)];
        Outcome oc;

        if (!e.valid || e.pc != pc) {
            if (!allocate_on_miss)
                return oc;
            if (e.valid)
                ++conflicts;
            else
                ++allocations;
            e = Entry{};
            e.valid = true;
            e.pc = pc;
            e.prevAddr = addr;
            return oc;
        }

        oc.entryHit = true;
        std::int64_t delta =
                static_cast<std::int64_t>(addr) -
                static_cast<std::int64_t>(e.prevAddr);
        e.prevAddr = addr;

        if (delta != 0) {
            Way *match = nullptr;
            Way *free_way = nullptr;
            for (unsigned w = 0; w < _ways; ++w) {
                if (e.ways[w].conf > 0 && e.ways[w].stride == delta) {
                    match = &e.ways[w];
                    break;
                }
                if (!free_way && e.ways[w].conf == 0)
                    free_way = &e.ways[w];
            }
            if (match) {
                if (match->conf < kConfCap)
                    ++match->conf;
            } else if (free_way) {
                free_way->stride = delta;
                free_way->conf = 1;
            } else {
                // All ways are held by other strides: age every way so
                // a recurring newcomer eventually claims a slot and a
                // one-off burst cannot evict an established stride.
                ++wayEvictions;
                for (unsigned w = 0; w < _ways; ++w)
                    --e.ways[w].conf;
            }
        }

        for (unsigned w = 0; w < _ways; ++w) {
            if (e.ways[w].conf >= _conf)
                oc.strides[oc.count++] = e.ways[w].stride;
        }
        if (oc.count > 1)
            ++multiActive;
        return oc;
    }

    /** Peek at the entry a PC maps to; nullptr if absent/mismatched. */
    const Entry *
    lookup(Pc pc) const
    {
        const Entry &e = _table[indexOf(pc)];
        return e.valid && e.pc == pc ? &e : nullptr;
    }

    void
    registerStats(stats::Group &g)
    {
        g.addScalar("msAllocations", &allocations,
                "multi-stride entries allocated");
        g.addScalar("msConflicts", &conflicts,
                "multi-stride entries evicted by PC conflicts");
        g.addScalar("msWayEvictions", &wayEvictions,
                "aging events with every way occupied");
        g.addScalar("msMultiActive", &multiActive,
                "observations with two or more confident strides");
    }

    stats::Scalar allocations;
    stats::Scalar conflicts;
    stats::Scalar wayEvictions;
    stats::Scalar multiActive;

  private:
    std::size_t
    indexOf(Pc pc) const
    {
        return (static_cast<std::size_t>(pc) >> 2) % _table.size();
    }

    unsigned _ways;
    unsigned _conf;
    std::vector<Entry> _table;
};

class MultiStridePrefetcher : public Prefetcher
{
  public:
    MultiStridePrefetcher(unsigned entries, unsigned ways, unsigned conf,
                          unsigned degree, unsigned block_size)
        : _table(entries, ways, conf),
          _degree(degree),
          _blockSize(block_size)
    {
    }

    void
    observeRead(const ReadObservation &obs, std::vector<Addr> &out) override
    {
        MultiStrideTable::Outcome oc =
                _table.observe(obs.pc, obs.addr, !obs.hit);
        if (oc.count == 0)
            return;

        // Same block-granularity prefetching phase as I-detection: each
        // confident stride runs its own Figure 5 sequence.
        if (!obs.hit) {
            for (unsigned w = 0; w < oc.count; ++w) {
                std::int64_t sblk = blockStride(oc.strides[w]);
                for (unsigned k = 1; k <= _degree; ++k)
                    pushCandidate(obs.addr, sblk * k, out);
            }
        } else if (obs.taggedHit) {
            for (unsigned w = 0; w < oc.count; ++w) {
                std::int64_t sblk = blockStride(oc.strides[w]);
                pushCandidate(obs.addr,
                              sblk * static_cast<int>(_degree), out);
            }
        }
    }

    const char *name() const override { return "m-stride"; }

    void
    registerStats(stats::Group &g) override
    {
        Prefetcher::registerStats(g);
        _table.registerStats(g);
    }

    MultiStrideTable &table() { return _table; }

  private:
    std::int64_t
    blockStride(std::int64_t stride_bytes) const
    {
        std::int64_t bs = static_cast<std::int64_t>(_blockSize);
        std::int64_t blocks = stride_bytes / bs;
        if (blocks == 0)
            blocks = stride_bytes > 0 ? 1 : -1;
        return blocks * bs;
    }

    MultiStrideTable _table;
    unsigned _degree;
    unsigned _blockSize;
};

} // namespace psim

#endif // PSIM_CORE_MSTRIDE_HH
