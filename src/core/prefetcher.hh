/**
 * @file
 * Hardware prefetcher interface (Section 3 of the paper).
 *
 * All schemes attach to the second-level cache and observe the read
 * requests the FLC presents to it (both hits and misses). They never see
 * FLC hits -- exactly the paper's "the prefetch mechanisms only observe
 * block references".
 *
 * All schemes share the same prefetching phase (Section 3.3): the SLC
 * tags prefetched blocks with one bit; a demand hit on a tagged block
 * clears the bit and asks the prefetcher for the continuation. The
 * prefetcher returns candidate *byte* addresses; the SLC block-aligns
 * them, drops candidates that are already present/pending, and enforces
 * the no-prefetch-across-page-boundaries rule.
 */

#ifndef PSIM_CORE_PREFETCHER_HH
#define PSIM_CORE_PREFETCHER_HH

#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace psim
{

/** One read request presented to the SLC. */
struct ReadObservation
{
    Pc pc = 0;             ///< PC of the load (I-detection uses it)
    Addr addr = 0;         ///< byte address requested
    bool hit = false;      ///< SLC hit?
    bool taggedHit = false; ///< hit on a block whose prefetch bit was set
};

class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one read request and append prefetch candidates (byte
     * addresses) to @p out. Candidates may duplicate or alias blocks;
     * the SLC filters.
     */
    virtual void observeRead(const ReadObservation &obs,
                             std::vector<Addr> &out) = 0;

    /**
     * Feedback from the cache: one issued prefetch reached its fate --
     * @p useful when a demand access consumed it (@p late when the
     * consumer had to wait because the prefetch was still in flight),
     * not useful when it was invalidated, replaced or aged out still
     * unreferenced. Adaptive schemes use this; the fixed schemes
     * ignore it.
     */
    virtual void
    notePrefetchOutcome(bool useful, bool late = false)
    {
        (void)useful;
        (void)late;
    }

    /** Scheme name as used in the paper's figures. */
    virtual const char *name() const = 0;

    /** Build the scheme selected by @p cfg.prefetch (never null). */
    static std::unique_ptr<Prefetcher> create(const MachineConfig &cfg);
};

/** The baseline architecture: no prefetching. */
class NullPrefetcher : public Prefetcher
{
  public:
    void
    observeRead(const ReadObservation &, std::vector<Addr> &) override
    {
    }

    const char *name() const override { return "baseline"; }
};

} // namespace psim

#endif // PSIM_CORE_PREFETCHER_HH
