/**
 * @file
 * Hardware prefetcher interface (Section 3 of the paper).
 *
 * All schemes attach to the second-level cache and observe the read
 * requests the FLC presents to it (both hits and misses). They never see
 * FLC hits -- exactly the paper's "the prefetch mechanisms only observe
 * block references".
 *
 * All schemes share the same prefetching phase (Section 3.3): the SLC
 * tags prefetched blocks with one bit; a demand hit on a tagged block
 * clears the bit and asks the prefetcher for the continuation. The
 * prefetcher returns candidate *byte* addresses; the SLC block-aligns
 * them, drops candidates that are already present/pending, and enforces
 * the no-prefetch-across-page-boundaries rule.
 */

#ifndef PSIM_CORE_PREFETCHER_HH
#define PSIM_CORE_PREFETCHER_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace psim
{

/**
 * One read request presented to the SLC.
 *
 * Schemes that return true from Prefetcher::wantsBlockContent()
 * additionally receive (a) a whole-block content view on hits and
 * fills, and (b) synthesized observations (fill = true) when a read or
 * prefetch transaction completes -- the only two points where the
 * functional block content is coherence-stable, so reading it cannot
 * race with a concurrent writer under the sharded engine. Schemes that
 * do not ask for content never see fill observations and behave
 * byte-identically to earlier releases.
 */
struct ReadObservation
{
    Pc pc = 0;             ///< PC of the load (I-detection uses it)
    Addr addr = 0;         ///< byte address requested
    bool hit = false;      ///< SLC hit?
    bool taggedHit = false; ///< hit on a block whose prefetch bit was set
    bool fill = false;     ///< synthesized at transaction fill time
    bool prefetchFill = false; ///< fill of a prefetch no demand touched
    /** Whole-block functional content, or null when not captured. */
    const std::uint8_t *content = nullptr;
    unsigned contentLen = 0;   ///< bytes behind content (the block size)
};

class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one read request and append prefetch candidates (byte
     * addresses) to @p out. Candidates may duplicate or alias blocks;
     * the SLC filters.
     */
    virtual void observeRead(const ReadObservation &obs,
                             std::vector<Addr> &out) = 0;

    /**
     * Feedback from the cache: one issued prefetch reached its fate --
     * @p useful when a demand access consumed it (@p late when the
     * consumer had to wait because the prefetch was still in flight),
     * not useful when it was invalidated, replaced or aged out still
     * unreferenced. @p blk_addr names the prefetched block so filters
     * can credit the candidate that produced it. Adaptive schemes use
     * this; the fixed schemes ignore it.
     */
    virtual void
    notePrefetchOutcome(bool useful, bool late = false, Addr blk_addr = 0)
    {
        (void)useful;
        (void)late;
        (void)blk_addr;
    }

    /**
     * Does this scheme consume notePrefetchOutcome()? The cache only
     * maintains the prefetch-aging ring (and its aged-unused verdicts)
     * for schemes that do; for the fixed schemes the ring would change
     * the accounting without ever changing behaviour.
     */
    virtual bool wantsOutcomeFeedback() const { return false; }

    /**
     * Does this scheme want the block-content view (and the synthesized
     * fill observations) described on ReadObservation? The cache only
     * captures content -- a backing-store read per observation -- for
     * schemes that do.
     */
    virtual bool wantsBlockContent() const { return false; }

    /** Scheme name as used in the paper's figures. */
    virtual const char *name() const = 0;

    /**
     * Register the scheme's statistics into @p g (one group per node,
     * owned by the machine's stats::Registry). Subclasses extend.
     */
    virtual void
    registerStats(stats::Group &g)
    {
        g.addScalar("candidatesWrapped", &candidatesWrapped,
                "candidates dropped for wrapping the address space");
    }

    /** Candidates dropped because base + offset left the address space. */
    stats::Scalar candidatesWrapped;

    /** Build the scheme selected by @p cfg.prefetch (never null). */
    static std::unique_ptr<Prefetcher> create(const MachineConfig &cfg);

  protected:
    /**
     * Append base + offset to @p out unless the sum wraps the address
     * space. Down-strides below zero and up-strides past the top of the
     * 64-bit space would alias an unrelated (usually very small or very
     * large) address; such candidates are dropped and counted.
     */
    void
    pushCandidate(Addr base, std::int64_t offset, std::vector<Addr> &out)
    {
        if (offset >= 0) {
            Addr off = static_cast<Addr>(offset);
            if (base > std::numeric_limits<Addr>::max() - off) {
                ++candidatesWrapped;
                return;
            }
            out.push_back(base + off);
        } else {
            // -(offset + 1) + 1 avoids negating INT64_MIN.
            Addr mag = static_cast<Addr>(-(offset + 1)) + 1;
            if (mag > base) {
                ++candidatesWrapped;
                return;
            }
            out.push_back(base - mag);
        }
    }
};

/** The baseline architecture: no prefetching. */
class NullPrefetcher : public Prefetcher
{
  public:
    void
    observeRead(const ReadObservation &, std::vector<Addr> &) override
    {
    }

    const char *name() const override { return "baseline"; }
};

} // namespace psim

#endif // PSIM_CORE_PREFETCHER_HH
