/**
 * @file
 * I-detection stride prefetching (Section 3.2 + the shared prefetching
 * phase of Section 3.3).
 *
 * Detection uses the Rpt. On a (re)detected stride sequence starting at
 * address B with stride S, blocks B+S .. B+d*S are prefetched. On a
 * demand hit to a tagged block by an instruction with a live RPT entry,
 * the block at addr + d*S is prefetched, so the prefetcher keeps running
 * ahead of the processor along the stride sequence (Figure 5).
 */

#ifndef PSIM_CORE_IDET_HH
#define PSIM_CORE_IDET_HH

#include "core/prefetcher.hh"
#include "core/rpt.hh"

namespace psim
{

class IDetPrefetcher : public Prefetcher
{
  public:
    IDetPrefetcher(unsigned rpt_entries, unsigned degree,
                   unsigned block_size)
        : _rpt(rpt_entries), _degree(degree), _blockSize(block_size)
    {
    }

    void
    observeRead(const ReadObservation &obs, std::vector<Addr> &out) override
    {
        // All read requests presented to the SLC are matched against
        // the RPT; entries are only allocated for SLC misses.
        Rpt::Outcome oc = _rpt.observe(obs.pc, obs.addr, !obs.hit);
        if (!oc.prefetchable)
            return;

        // Prefetching works on blocks: a stride shorter than one block
        // still advances the prefetcher by whole blocks (the paper's
        // Table 2 likewise reports sub-block strides as stride 1).
        std::int64_t sblk = blockStride(oc.stride);
        if (!obs.hit) {
            // (Re)start of a sequence at B: prefetch B+S .. B+d*S.
            for (unsigned k = 1; k <= _degree; ++k)
                pushCandidate(obs.addr, sblk * k, out);
        } else if (obs.taggedHit) {
            // Continuation: prefetch d strides ahead of the reference.
            pushCandidate(obs.addr, sblk * static_cast<int>(_degree),
                          out);
        }
    }

    const char *name() const override { return "i-det"; }

    void
    registerStats(stats::Group &g) override
    {
        Prefetcher::registerStats(g);
        _rpt.registerStats(g);
    }

    /** Expose the table for tests and statistics. */
    Rpt &rpt() { return _rpt; }
    const Rpt &rpt() const { return _rpt; }

  private:
    /** Round a byte stride to a whole (signed, nonzero) block stride. */
    std::int64_t
    blockStride(std::int64_t stride_bytes) const
    {
        std::int64_t bs = static_cast<std::int64_t>(_blockSize);
        std::int64_t blocks = stride_bytes / bs;
        if (blocks == 0)
            blocks = stride_bytes > 0 ? 1 : -1;
        return blocks * bs;
    }

    Rpt _rpt;
    unsigned _degree;
    unsigned _blockSize;
};

} // namespace psim

#endif // PSIM_CORE_IDET_HH
