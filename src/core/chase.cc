#include "core/chase.hh"

#include <cstring>

namespace psim
{

namespace
{

/** Shifts tried when correlating values with miss addresses: 4- and
 * 8-byte array elements, 16- and 32-byte records. */
constexpr unsigned kShifts[] = {2, 3, 4, 5};

/** Raw-pointer chases per content observation. */
constexpr unsigned kRawPerObs = 2;

/** Total chase candidates per observation. */
constexpr unsigned kMaxPerObs = 8;

/** Depth-map entries kept before the oldest stops being tracked. */
constexpr std::size_t kDepthCap = 512;

std::uint32_t
load32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

ChasePrefetcher::ChasePrefetcher(unsigned block_size, unsigned chase_depth,
                                 unsigned table_entries,
                                 std::unique_ptr<Prefetcher> base)
    : _blockSize(block_size),
      _chaseDepth(chase_depth),
      _base(std::move(base)),
      _patterns(table_entries ? table_entries : 1)
{
    for (RingEntry &e : _ring)
        e.bytes.resize(block_size);
}

ChasePrefetcher::~ChasePrefetcher() = default;

std::size_t
ChasePrefetcher::indexOf(Pc pc) const
{
    return (static_cast<std::size_t>(pc) >> 2) % _patterns.size();
}

const ChasePrefetcher::Pattern *
ChasePrefetcher::lookup(Pc pc) const
{
    const Pattern &p = _patterns[indexOf(pc)];
    return p.valid && p.pc == pc ? &p : nullptr;
}

bool
ChasePrefetcher::emit(Addr base, Addr offset, unsigned obs_depth,
                      std::vector<Addr> &out)
{
    if (_emitted >= kMaxPerObs)
        return false;
    if (obs_depth >= _chaseDepth) {
        ++depthClipped;
        return false;
    }
    if (base > ~static_cast<Addr>(0) - offset) {
        ++candidatesWrapped;
        return false;
    }
    Addr target = base + offset;
    Addr blk = alignDown(target, _blockSize);
    if (_depth.find(blk) == _depth.end()) {
        _depth.emplace(blk, obs_depth + 1);
        _depthFifo.push_back(blk);
        if (_depthFifo.size() > kDepthCap) {
            _depth.erase(_depthFifo.front());
            _depthFifo.pop_front();
        }
    }
    out.push_back(target);
    ++_emitted;
    return true;
}

void
ChasePrefetcher::learn(const ReadObservation &obs)
{
    if (_envHi <= _envLo)
        return;

    Pattern &p = _patterns[indexOf(obs.pc)];
    const Addr miss = obs.addr;

    // A conflicting PC in the slot ages the incumbent out rather than
    // replacing it outright, so a hot pattern survives stray misses.
    if (p.valid && p.pc != obs.pc) {
        if (p.conf > 0)
            --p.conf;
        else
            p.valid = false;
    }

    bool matched = false;
    bool have_first = false;
    Pattern first;

    for (unsigned r = 0; r < _ring.size() && !matched; ++r) {
        // Newest entry first: the value a miss consumes almost always
        // came from the most recently observed content block.
        const RingEntry &ring =
                _ring[(_ringHead + _ring.size() - 1 - r) % _ring.size()];
        if (!ring.valid)
            continue;
        for (unsigned off = 0; off + 4 <= ring.bytes.size() && !matched;
             off += 4) {
            std::uint32_t w = load32(ring.bytes.data() + off);
            if (w == 0)
                continue;
            for (unsigned s : kShifts) {
                Addr scaled = static_cast<Addr>(w) << s;
                if (scaled > miss)
                    continue;
                Addr base = miss - scaled;
                if (base < _envLo || base > _envHi)
                    continue;
                if (p.valid && p.pc == obs.pc && p.base == base &&
                    p.shift == s && p.srcPc == ring.pc) {
                    matched = true;
                    p.srcOff = off;
                    if (p.conf < kConfCap && ++p.conf == kLearned)
                        ++patternsLearned;
                    break;
                }
                if (!have_first) {
                    have_first = true;
                    first.pc = obs.pc;
                    first.srcPc = ring.pc;
                    first.base = base;
                    first.shift = s;
                    first.srcOff = off;
                }
            }
        }
    }

    if (matched)
        return;
    if (p.valid && p.pc == obs.pc) {
        // The incumbent hypothesis failed to explain this miss.
        if (p.conf > 0)
            --p.conf;
        if (p.conf == 0)
            p.valid = false;
    }
    if (!p.valid && have_first) {
        p = first;
        p.valid = true;
        p.conf = 1;
    }
}

void
ChasePrefetcher::harvest(const ReadObservation &obs, unsigned obs_depth,
                         std::vector<Addr> &out)
{
    const std::uint8_t *bytes = obs.content;
    const unsigned len = obs.contentLen;
    const Addr obs_blk = alignDown(obs.addr, _blockSize);

    // Raw pointers: aligned words inside the live heap envelope.
    if (_envHi > _envLo) {
        unsigned raw = 0;
        for (unsigned off = 0; off + 8 <= len && raw < kRawPerObs;
             off += 8) {
            std::uint64_t v = load64(bytes + off);
            if (v % 8 != 0 || v < _envLo || v > _envHi)
                continue;
            if (alignDown(static_cast<Addr>(v), _blockSize) == obs_blk)
                continue;
            if (emit(static_cast<Addr>(v), 0, obs_depth, out)) {
                ++rawCandidates;
                ++raw;
            }
        }
    }

    // Scaled indices, against every confirmed pattern.
    for (Pattern &p : _patterns) {
        if (!p.valid || p.conf < kLearned)
            continue;
        if (p.srcPc == obs.pc && p.pc != obs.pc) {
            // Producer block: bank its words for the consumer's next
            // trigger (the consumer's page, not this one, is where the
            // candidates must land to clear the page filter).
            p.npending = 0;
            for (unsigned off = 0;
                 off + 4 <= len && p.npending < p.pending.size();
                 off += 4) {
                std::uint32_t w = load32(bytes + off);
                if (w != 0)
                    p.pending[p.npending++] = w;
            }
        } else if (p.pc == obs.pc && p.srcPc == obs.pc) {
            // Self chase (intrusive lists): the link index lives at a
            // fixed offset inside the very record being read.
            if (p.srcOff + 4 <= len) {
                std::uint32_t w = load32(bytes + p.srcOff);
                if (w != 0 &&
                    emit(p.base, static_cast<Addr>(w) << p.shift,
                         obs_depth, out))
                    ++indirectCandidates;
            }
        }
    }
}

void
ChasePrefetcher::observeRead(const ReadObservation &obs,
                             std::vector<Addr> &out)
{
    // The base scheme sees the classic observation stream only --
    // synthesized fill observations would double-train it.
    if (_base && !obs.fill)
        _base->observeRead(obs, out);

    _emitted = 0;
    const Addr obs_blk = alignDown(obs.addr, _blockSize);

    unsigned obs_depth = 0;
    if (obs.prefetchFill) {
        // Content of a block nothing has demanded yet: continue the
        // chain at its recorded depth (1 for the base scheme's own
        // prefetches, which start fresh chains).
        auto it = _depth.find(obs_blk);
        obs_depth = it != _depth.end() ? it->second : 1;
    } else {
        // Touched by the processor: the envelope grows and any chase
        // chain through this block re-anchors at depth 0.
        if (obs.addr < _envLo)
            _envLo = obs.addr;
        if (obs.addr + 8 > _envHi)
            _envHi = obs.addr + 8;
        _depth.erase(obs_blk);
    }

    if (!obs.hit && !obs.fill)
        learn(obs);

    if (obs.content && obs.contentLen >= 8)
        harvest(obs, obs_depth, out);

    // Consumer trigger: spend indices banked from producer blocks.
    Pattern &p = _patterns[indexOf(obs.pc)];
    if (p.valid && p.pc == obs.pc && p.conf >= kLearned &&
        p.srcPc != p.pc && p.npending > 0) {
        for (unsigned i = 0; i < p.npending; ++i) {
            if (emit(p.base,
                     static_cast<Addr>(p.pending[i]) << p.shift,
                     obs_depth, out))
                ++indirectCandidates;
        }
        p.npending = 0;
    }

    // Remember this content block for pairing with future misses.
    if (obs.content && obs.contentLen > 0) {
        RingEntry &e = _ring[_ringHead];
        _ringHead = (_ringHead + 1) % _ring.size();
        e.valid = true;
        e.pc = obs.pc;
        e.blkAddr = obs_blk;
        unsigned n = obs.contentLen < e.bytes.size()
                             ? obs.contentLen
                             : static_cast<unsigned>(e.bytes.size());
        std::memcpy(e.bytes.data(), obs.content, n);
    }
}

void
ChasePrefetcher::registerStats(stats::Group &g)
{
    Prefetcher::registerStats(g);
    g.addScalar("chaseRawCandidates", &rawCandidates,
            "raw heap-pointer chase candidates");
    g.addScalar("chaseIndirectCandidates", &indirectCandidates,
            "pattern-directed index chase candidates");
    g.addScalar("chasePatternsLearned", &patternsLearned,
            "index patterns reaching prefetch confidence");
    g.addScalar("chaseDepthClipped", &depthClipped,
            "chases stopped by the depth bound");
}

} // namespace psim
