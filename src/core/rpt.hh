/**
 * @file
 * Reference Prediction Table for I-detection stride prefetching
 * (Section 3.2, Figures 3 and 4; after Baer and Chen).
 *
 * A direct-mapped, PC-indexed table. An entry is allocated the first
 * time a load instruction misses in the SLC. The second time the same
 * instruction appears a stride is calculated, the entry enters `init`
 * and prefetching begins. The four-state control automaton of Figure 4
 * then governs prefetching:
 *
 *     init      --correct-->   steady
 *     init      --incorrect--> transient   (stride recalculated)
 *     steady    --correct-->   steady
 *     steady    --incorrect--> init        (stride kept)
 *     transient --correct-->   steady
 *     transient --incorrect--> noPref      (stride recalculated)
 *     noPref    --correct-->   transient
 *     noPref    --incorrect--> noPref      (stride recalculated)
 *
 * Prefetches are issued in every state except `noPref` (and before the
 * first stride is known).
 */

#ifndef PSIM_CORE_RPT_HH
#define PSIM_CORE_RPT_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace psim
{

enum class RptState : std::uint8_t
{
    New,       ///< allocated, stride not yet known
    Init,
    Steady,
    Transient,
    NoPref,
};

const char *toString(RptState s);

struct RptEntry
{
    bool valid = false;
    Pc pc = 0;                 ///< tag
    Addr prevAddr = 0;         ///< last data address from this load
    std::int64_t stride = 0;   ///< current stride in bytes
    RptState state = RptState::New;
};

class Rpt
{
  public:
    /** Result of presenting one reference to the table. */
    struct Outcome
    {
        bool entryHit = false;     ///< the PC matched a valid entry
        bool prefetchable = false; ///< post-update state allows prefetching
        std::int64_t stride = 0;   ///< stride to prefetch with
        RptState state = RptState::New; ///< post-update state
    };

    /** @param entries table size; paper: 256, direct-mapped. */
    explicit Rpt(unsigned entries);

    /**
     * Present a read request (PC, data address) to the table.
     *
     * @param pc load instruction address
     * @param addr data address
     * @param allocate_on_miss allocate a new entry when the PC is absent
     *        (true only for SLC misses, per the paper)
     */
    Outcome observe(Pc pc, Addr addr, bool allocate_on_miss);

    /** Peek at the entry a PC maps to; nullptr if absent/mismatched. */
    const RptEntry *lookup(Pc pc) const;

    unsigned entries() const { return static_cast<unsigned>(_table.size()); }

    /** Register the table's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("rptAllocations", &allocations, "RPT entries allocated");
        g.addScalar("rptConflicts", &conflicts,
                "RPT entries evicted by PC conflicts");
        g.addScalar("rptCorrect", &correct, "correct stride predictions");
        g.addScalar("rptIncorrect", &incorrect,
                "incorrect stride predictions");
    }

    /** Entries allocated over the run. */
    stats::Scalar allocations;
    /** Entries evicted by PC conflicts. */
    stats::Scalar conflicts;
    /** Correct stride predictions. */
    stats::Scalar correct;
    /** Incorrect stride predictions. */
    stats::Scalar incorrect;

  private:
    std::size_t indexOf(Pc pc) const;

    std::vector<RptEntry> _table;
};

} // namespace psim

#endif // PSIM_CORE_RPT_HH
