#include "core/ddet.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace psim
{

DDetPrefetcher::DDetPrefetcher(unsigned block_size, unsigned degree,
                               unsigned entries, unsigned stride_threshold,
                               unsigned max_stride_bytes)
    : _blockSize(block_size),
      _degree(degree),
      _entries(entries),
      _strideThreshold(stride_threshold),
      _maxStrideBytes(static_cast<std::int64_t>(max_stride_bytes))
{
    psim_assert(entries > 0, "D-det structures need at least one entry");
}

bool
DDetPrefetcher::isCommonStride(std::int64_t s) const
{
    return std::any_of(_common.begin(), _common.end(),
            [s](const CommonEntry &e) { return e.stride == s; });
}

void
DDetPrefetcher::noteStride(std::int64_t s)
{
    for (auto &e : _freq) {
        if (e.stride == s) {
            e.lastUse = ++_clock;
            if (++e.count >= _strideThreshold)
                promote(s);
            return;
        }
    }
    if (_freq.size() >= _entries)
        evictLru(_freq);
    _freq.push_back(FreqEntry{s, 1, ++_clock});
    if (_strideThreshold <= 1)
        promote(s);
}

void
DDetPrefetcher::promote(std::int64_t s)
{
    for (auto &e : _common) {
        if (e.stride == s) {
            e.lastUse = ++_clock;
            return;
        }
    }
    if (_common.size() >= _entries)
        evictLru(_common);
    _common.push_back(CommonEntry{s, ++_clock});
    ++stridesPromoted;
    // Reset the frequency count so promotion needs fresh evidence the
    // next time the stride falls out of the common list.
    _freq.erase(std::remove_if(_freq.begin(), _freq.end(),
                    [s](const FreqEntry &e) { return e.stride == s; }),
                _freq.end());
}

DDetPrefetcher::Stream *
DDetPrefetcher::findStreamExpecting(Addr addr)
{
    Addr blk = alignDown(addr, _blockSize);
    for (auto &s : _streams) {
        std::int64_t next = static_cast<std::int64_t>(s.lastAddr) + s.stride;
        if (next >= 0 &&
            alignDown(static_cast<Addr>(next), _blockSize) == blk) {
            return &s;
        }
    }
    return nullptr;
}

void
DDetPrefetcher::allocStream(Addr addr, std::int64_t stride)
{
    // Refresh an existing stream with the same stride if this miss is
    // its natural continuation; otherwise allocate.
    for (auto &s : _streams) {
        if (s.stride == stride) {
            std::int64_t next =
                    static_cast<std::int64_t>(s.lastAddr) + stride;
            if (next >= 0 && static_cast<Addr>(next) == addr) {
                s.lastAddr = addr;
                s.lastUse = ++_clock;
                return;
            }
        }
    }
    if (_streams.size() >= _entries)
        evictLru(_streams);
    _streams.push_back(Stream{addr, stride, ++_clock});
    ++streamsCreated;
}

void
DDetPrefetcher::emitStart(Addr base, std::int64_t stride,
                          std::vector<Addr> &out)
{
    // Prefetch whole blocks: sub-block strides advance one block.
    std::int64_t bs = static_cast<std::int64_t>(_blockSize);
    std::int64_t sblk = stride / bs;
    if (sblk == 0)
        sblk = stride > 0 ? 1 : -1;
    for (unsigned k = 1; k <= _degree; ++k)
        pushCandidate(base, sblk * bs * static_cast<std::int64_t>(k), out);
}

void
DDetPrefetcher::observeRead(const ReadObservation &obs,
                            std::vector<Addr> &out)
{
    if (obs.hit) {
        if (!obs.taggedHit)
            return;
        // Prefetching phase: a demand hit on a tagged block advances the
        // stream that predicted it and prefetches d strides ahead.
        if (Stream *s = findStreamExpecting(obs.addr)) {
            s->lastAddr = obs.addr;
            s->lastUse = ++_clock;
            std::int64_t bs = static_cast<std::int64_t>(_blockSize);
            std::int64_t sblk = s->stride / bs;
            if (sblk == 0)
                sblk = s->stride > 0 ? 1 : -1;
            pushCandidate(obs.addr,
                          sblk * bs * static_cast<std::int64_t>(_degree),
                          out);
        }
        return;
    }

    // ---- detection phase: read misses only ----

    // A miss that a stream predicted (the prefetch was too late or was
    // evicted): keep the stream alive and restart its prefetching, and
    // do not let the miss pollute the frequency table.
    if (Stream *s = findStreamExpecting(obs.addr)) {
        s->lastAddr = obs.addr;
        s->lastUse = ++_clock;
        emitStart(obs.addr, s->stride, out);
        _missList.push_back(obs.addr);
        if (_missList.size() > _entries)
            _missList.pop_front();
        return;
    }

    // Pair the miss with every buffered miss; count candidate strides
    // and allocate a stream once a stride already known to be common
    // reappears (the "two additional misses" of Section 3.2). The miss
    // list can hold the same address more than once (repeated misses to
    // one block are common under invalidations); such duplicates form
    // the same stride again, and counting it twice for one observation
    // would reach the threshold-3 promotion early. Each distinct stride
    // is therefore counted at most once per observed miss, and its
    // common/frequency classification is fixed before any counting so a
    // promotion during this observation cannot also allocate a stream.
    bool stream_allocated = false;
    _strideScratch.clear();
    for (auto it = _missList.rbegin(); it != _missList.rend(); ++it) {
        std::int64_t s = static_cast<std::int64_t>(obs.addr) -
                         static_cast<std::int64_t>(*it);
        if (s == 0 || s >= _maxStrideBytes || s <= -_maxStrideBytes)
            continue;
        if (std::find(_strideScratch.begin(), _strideScratch.end(), s) !=
            _strideScratch.end()) {
            continue; // duplicate buffered address, stride already seen
        }
        _strideScratch.push_back(s);
        if (isCommonStride(s)) {
            if (!stream_allocated) {
                allocStream(obs.addr, s);
                emitStart(obs.addr, s, out);
                stream_allocated = true;
            }
        } else {
            noteStride(s);
        }
    }

    _missList.push_back(obs.addr);
    if (_missList.size() > _entries)
        _missList.pop_front();
}

} // namespace psim
