#include "sys/cpu.hh"

#include "sim/logging.hh"
#include "sys/machine.hh"

namespace psim
{

Cpu::Cpu(Machine &m, NodeId id, Flc &flc, Flwb &flwb)
    : _m(m), _eq(m.eqOf(id)), _id(id), _flc(flc), _flwb(flwb)
{
}

void
Cpu::bind(Task t)
{
    psim_assert(!_task.valid(), "cpu %u already has a thread", _id);
    _task = std::move(t);
}

void
Cpu::start()
{
    if (!_task.valid()) {
        _finished = true;
        return;
    }
    _eq.scheduleIn(0, [this] {
        _task.resume();
        if (_task.done() && !_finished) {
            _finished = true;
            finishTick = static_cast<double>(_eq.now());
        }
    });
}

const char *
Cpu::pendingState() const
{
    switch (_pending) {
      case Pending::None:
        return "none";
      case Pending::Read:
        return "read";
      case Pending::Lock:
        return "lock";
      case Pending::Barrier:
        return "barrier";
      case Pending::Push:
        return "push";
      case Pending::Drain:
        return "drain";
      case Pending::Store:
        return "store";
    }
    return "?";
}

void
Cpu::resumeAt(Tick when)
{
    psim_assert(_waiting, "cpu %u resume without a waiting thread", _id);
    _eq.schedule(when, [this] {
        auto h = _waiting;
        _waiting = nullptr;
        _pending = Pending::None;
        h.resume();
        if (_task.done() && !_finished) {
            _finished = true;
            finishTick = static_cast<double>(_eq.now());
        }
    });
}

void
Cpu::resumeNow()
{
    resumeAt(_eq.now());
}

void
Cpu::pushOrStall(const FlwbEntry &e, Pending after)
{
    _pendingEntry = e;
    _after = after;
    if (_flwb.full()) {
        _pending = Pending::Push;
        return;
    }
    _flwb.push(e);
    pushed();
}

void
Cpu::pushed()
{
    const Tick now = _eq.now();
    const FlwbEntry &e = *_pendingEntry;
    switch (_after) {
      case Pending::Read:
        _pending = Pending::Read;
        break;
      case Pending::Lock:
        _pending = Pending::Lock;
        break;
      case Pending::Barrier:
        _pending = Pending::Barrier;
        break;
      case Pending::None:
        // Stores and unlocks retire into the buffer and the processor
        // moves on after the 1-pclock FLC/issue cost.
        if (e.kind == FlwbEntry::Kind::Write) {
            ++_outstandingStores;
            if (_m.cfg().sequentialConsistency) {
                // SC: the processor stalls until the store is
                // globally performed.
                _pending = Pending::Store;
                break;
            }
            writeStall += static_cast<double>(now - _opStart);
        } else {
            lockStall += static_cast<double>(now - _opStart);
        }
        resumeAt(now + _m.cfg().flcReadLat);
        break;
      default:
        psim_panic("bad push continuation");
    }
}

void
Cpu::whenDrained(const FlwbEntry &release_entry, Pending after)
{
    if (_outstandingStores == 0) {
        pushOrStall(release_entry, after);
    } else {
        _pendingEntry = release_entry;
        _after = after;
        _pending = Pending::Drain;
    }
}

void
Cpu::issueLoad(Addr addr, Pc pc, std::coroutine_handle<> h)
{
    ++loads;
    _waiting = h;
    _opStart = _eq.now();
    if (_flc.probeRead(addr, _opStart)) {
        resumeAt(_opStart + _m.cfg().flcReadLat);
        return;
    }
    // The miss is known after the 1-pclock FLC probe; only then does
    // the request enter the FLWB.
    FlwbEntry e;
    e.kind = FlwbEntry::Kind::ReadMiss;
    e.addr = addr;
    e.pc = pc;
    _eq.scheduleIn(_m.cfg().flcReadLat,
            [this, e] { pushOrStall(e, Pending::Read); });
}

void
Cpu::issueStore(Addr addr, Pc pc, std::coroutine_handle<> h)
{
    ++stores;
    _waiting = h;
    _opStart = _eq.now();
    _flc.probeWrite(addr, _opStart);
    FlwbEntry e;
    e.kind = FlwbEntry::Kind::Write;
    e.addr = addr;
    e.pc = pc;
    pushOrStall(e, Pending::None);
}

void
Cpu::issueLock(Addr addr, std::coroutine_handle<> h)
{
    ++locks;
    _waiting = h;
    _opStart = _eq.now();
    FlwbEntry e;
    e.kind = FlwbEntry::Kind::Lock;
    e.addr = addr;
    pushOrStall(e, Pending::Lock);
}

void
Cpu::issueUnlock(Addr addr, std::coroutine_handle<> h)
{
    _waiting = h;
    _opStart = _eq.now();
    FlwbEntry e;
    e.kind = FlwbEntry::Kind::Unlock;
    e.addr = addr;
    whenDrained(e, Pending::None);
}

void
Cpu::issueBarrier(Addr addr, std::uint32_t participants,
                  std::coroutine_handle<> h)
{
    ++barriers;
    _waiting = h;
    _opStart = _eq.now();
    FlwbEntry e;
    e.kind = FlwbEntry::Kind::BarrierArrive;
    e.addr = addr;
    e.aux = participants;
    whenDrained(e, Pending::Barrier);
}

void
Cpu::think(Tick cycles, std::coroutine_handle<> h)
{
    _waiting = h;
    thinkTicks += static_cast<double>(cycles);
    resumeAt(_eq.now() + (cycles ? cycles : 1));
}

void
Cpu::readComplete(Addr addr)
{
    psim_assert(_pending == Pending::Read,
            "cpu %u spurious read completion", _id);
    const Tick now = _eq.now();
    // Fill the FLC only if the SLC still holds the block: an
    // invalidation may have raced the one-pclock data return, and
    // inclusion requires the fill to be dropped in that case (the
    // load still uses the returned data -- non-binding semantics).
    if (_m.node(_id).slc().stateOf(_m.cfg().blockAddr(addr)) !=
        CohState::Invalid) {
        _flc.fill(addr, now);
    }
    readStall += static_cast<double>(now - _opStart - _m.cfg().flcReadLat);
    resumeNow();
}

void
Cpu::storePerformed()
{
    psim_assert(_outstandingStores > 0, "cpu %u store underflow", _id);
    --_outstandingStores;
    if (_outstandingStores != 0)
        return;
    if (_pending == Pending::Drain) {
        pushOrStall(*_pendingEntry, _after);
    } else if (_pending == Pending::Store) {
        writeStall += static_cast<double>(
                _eq.now() - _opStart - _m.cfg().flcReadLat);
        resumeNow();
    }
}

void
Cpu::lockGranted()
{
    psim_assert(_pending == Pending::Lock,
            "cpu %u spurious lock grant", _id);
    lockStall += static_cast<double>(
            _eq.now() - _opStart - _m.cfg().flcReadLat);
    resumeNow();
}

void
Cpu::barrierDone()
{
    psim_assert(_pending == Pending::Barrier,
            "cpu %u spurious barrier release", _id);
    barrierStall += static_cast<double>(
            _eq.now() - _opStart - _m.cfg().flcReadLat);
    resumeNow();
}

void
Cpu::flwbSpace()
{
    if (_pending == Pending::Push && !_flwb.full()) {
        _flwb.push(*_pendingEntry);
        pushed();
    }
}

} // namespace psim
