/**
 * @file
 * One processing node (paper Figure 1): processor + FLC + FLWB + SLC
 * (+SLWB) + local memory/directory, all attached to a local
 * split-transaction bus with a network interface to the mesh.
 */

#ifndef PSIM_SYS_NODE_HH
#define PSIM_SYS_NODE_HH

#include <memory>

#include "mem/bus.hh"
#include "mem/flc.hh"
#include "mem/mem_ctrl.hh"
#include "mem/slc.hh"
#include "mem/write_buffer.hh"
#include "sys/cpu.hh"

namespace psim
{

class Machine;

class Node
{
  public:
    Node(Machine &m, NodeId id);

    NodeId id() const { return _id; }

    /** Deliver a message that has crossed this node's bus. */
    void deliver(const Message &msg);

    Cpu &cpu() { return *_cpu; }
    Flc &flc() { return *_flc; }
    Flwb &flwb() { return *_flwb; }
    Slc &slc() { return *_slc; }
    const Slc &slc() const { return *_slc; }
    MemCtrl &mem() { return *_mem; }
    const MemCtrl &mem() const { return *_mem; }
    Bus &bus() { return *_bus; }

  private:
    NodeId _id;
    std::unique_ptr<Flc> _flc;
    std::unique_ptr<Flwb> _flwb;
    std::unique_ptr<Bus> _bus;
    std::unique_ptr<Cpu> _cpu;
    std::unique_ptr<Slc> _slc;
    std::unique_ptr<MemCtrl> _mem;
};

} // namespace psim

#endif // PSIM_SYS_NODE_HH
