/**
 * @file
 * Coroutine task type for simulated threads.
 *
 * Each simulated processor runs its program as a C++20 coroutine that
 * suspends on every shared-memory access; the CPU model resumes it when
 * the architectural model has completed the access. Task supports
 * nesting: a coroutine can `co_await` another Task and the inner
 * coroutine transfers control back on completion (continuation chain),
 * so workloads can be written as ordinary structured code.
 */

#ifndef PSIM_SYS_TASK_HH
#define PSIM_SYS_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace psim
{

class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(Handle h) noexcept
        {
            // Resume whoever awaited this task; the root task has no
            // continuation and control returns to the simulator.
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    struct promise_type
    {
        std::coroutine_handle<> continuation = nullptr;
        bool done = false;

        Task get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        FinalAwaiter final_suspend() noexcept
        {
            done = true;
            return {};
        }

        void return_void() noexcept {}

        void unhandled_exception() { std::terminate(); }
    };

    Task() = default;

    explicit Task(Handle h) : _h(h) {}

    Task(Task &&other) noexcept : _h(std::exchange(other._h, nullptr)) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            _h = std::exchange(other._h, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** Awaiting a Task runs it to completion, then resumes the caller. */
    auto
    operator co_await() &&noexcept
    {
        struct Awaiter
        {
            Handle inner;

            bool await_ready() const noexcept { return !inner; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> caller) noexcept
            {
                inner.promise().continuation = caller;
                return inner;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{_h};
    }

    bool valid() const { return static_cast<bool>(_h); }
    bool done() const { return !_h || _h.promise().done; }

    /** Kick off (or continue) the root coroutine. */
    void
    resume()
    {
        if (_h && !_h.done())
            _h.resume();
    }

    Handle handle() const { return _h; }

  private:
    void
    destroy()
    {
        if (_h)
            _h.destroy();
        _h = nullptr;
    }

    Handle _h = nullptr;
};

} // namespace psim

#endif // PSIM_SYS_TASK_HH
