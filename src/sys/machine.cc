#include "sys/machine.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "sim/logging.hh"
#include "sim/sampler.hh"
#include "sim/shard.hh"
#include "trace/chrome_trace.hh"

namespace psim
{

Machine::Machine(MachineConfig cfg)
    : _cfg(cfg),
      _store(cfg.pageSize),
      _mesh(_eq, _cfg)
{
    _cfg.validate();
    psim_assert(_cfg.numProcs <= 64,
            "directory presence mask supports at most 64 nodes");
    if (_cfg.shards > 0) {
        _nshards = std::min(_cfg.shards, _cfg.numProcs);
        // Contiguous node blocks per shard; every queue orders events
        // by (tick, owner node, per-node counter), so the partition
        // never changes what fires when -- only on which thread.
        _shardOfNode.resize(_cfg.numProcs);
        for (NodeId n = 0; n < _cfg.numProcs; ++n) {
            _shardOfNode[n] = static_cast<unsigned>(
                    static_cast<std::uint64_t>(n) * _nshards /
                    _cfg.numProcs);
        }
        for (unsigned s = 0; s < _nshards; ++s) {
            _shardEqs.push_back(std::make_unique<EventQueue>());
            _shardEqs.back()->setShardOrder(_cfg.numProcs);
        }
        _outboxes.resize(_cfg.numProcs);
        // Cross-shard lookahead: the cheapest possible remote message
        // pays one node fall-through plus a header-only worm, so a
        // message sent inside a window this wide can only arrive at or
        // after its end (asserted per message in the exchange).
        _windowLookahead = _cfg.fallThrough * _cfg.netCycle +
                           _cfg.headerFlits * _cfg.netCycle;
    }
    if (_cfg.audit && audit::compiledIn()) {
        // The audit is shard-safe: per-node trackers are only touched
        // by their node's owning shard, lock rings are per home node,
        // and the one cross-shard counter (mesh deliveries) is atomic.
        _audit = std::make_unique<audit::MachineAudit>(_cfg.numProcs,
                _cfg.headerFlits);
        _mesh.setAudit(_audit.get());
    }
    _nodes.reserve(_cfg.numProcs);
    for (NodeId n = 0; n < _cfg.numProcs; ++n)
        _nodes.push_back(std::make_unique<Node>(*this, n));

    // Every component registers its statistics group; registration
    // order fixes the (deterministic) dump order.
    for (NodeId n = 0; n < _cfg.numProcs; ++n) {
        Node &node = *_nodes[n];
        std::string prefix = "node" + std::to_string(n);
        node.cpu().registerStats(_registry.addGroup(prefix + ".cpu"));
        node.flc().registerStats(_registry.addGroup(prefix + ".flc"));
        node.flwb().registerStats(_registry.addGroup(prefix + ".flwb"));
        node.bus().registerStats(_registry.addGroup(prefix + ".bus"));
        node.slc().registerStats(_registry.addGroup(prefix + ".slc"));
        node.slc().prefetcher().registerStats(
                _registry.addGroup(prefix + ".pf"));
        node.mem().registerStats(_registry.addGroup(prefix + ".mem"));
    }
    _mesh.registerStats(_registry.addGroup("mesh"));
}

Machine::~Machine() = default;

void
Machine::send(const Message &m)
{
    bool data = carriesData(m.type);
    _nodes[m.src]->bus().transfer(data, [this, m, data] {
        if (m.dst == m.src) {
            deliver(m);
            return;
        }
        unsigned flits = _cfg.flitsFor(data ? _cfg.blockSize : 0);
        if (_nshards > 0) {
            // Mesh links are machine-global state (a message crosses
            // other shards' rows and columns), so even a same-shard
            // remote message waits in the outbox for the next window
            // boundary, where the exchange walks it through the mesh
            // single-threaded.
            _outboxes[m.src].msgs.push_back(
                    OutMsg{eqOf(m.src).now(), m, flits, data});
            return;
        }
        _mesh.send(m.src, m.dst, flits, [this, m, data] {
            _nodes[m.dst]->bus().transfer(data,
                    [this, m] { deliver(m); });
        });
    });
}

void
Machine::deliver(const Message &m)
{
    if (_audit)
        _audit->onDeliver(m);
    _nodes[m.dst]->deliver(m);
}

void
Machine::bindProgram(NodeId id, Task t)
{
    _nodes.at(id)->cpu().bind(std::move(t));
}

void
Machine::enableCharacterizers(unsigned min_run)
{
    psim_assert(!_ran, "characterizers must attach before run()");
    _chars.clear();
    for (NodeId n = 0; n < _cfg.numProcs; ++n) {
        _chars.push_back(std::make_unique<StrideCharacterizer>(
                _cfg.blockSize, min_run));
        _nodes[n]->slc().setCharacterizer(_chars.back().get());
    }
}

void
Machine::requireSerialEngine(const char *what) const
{
    // The one consistent gate for serial-only observers: fail loudly
    // (never warn-and-disable) with one message shape, so a sharded
    // run can never silently lose an observer the caller asked for.
    psim_assert(_nshards == 0,
            "%s is not shard-aware: it needs the serial engine "
            "(--shards 0), got shards=%u", what, _nshards);
}

void
Machine::enableTracing(TraceWriter &writer)
{
    psim_assert(!_ran, "tracing must attach before run()");
    // The binary SLC trace interleaves per-request records into one
    // append-only writer whose record order is the contract checked by
    // trace_tool; there is no per-node staging representation to merge,
    // so it stays serial-only.
    requireSerialEngine("the binary SLC reference trace");
    for (auto &node : _nodes) {
        node->slc().setTraceSink(
                [&writer](const TraceRecord &rec) { writer.append(rec); });
    }
}

void
Machine::enableSampling(Tick interval)
{
    psim_assert(!_ran, "sampling must attach before run()");
    psim_assert(!_sampler, "sampling already enabled");
    if (_nshards > 0) {
        // Boundary-driven: runSharded feeds sampleAt() at the first
        // window boundary at or after each sample tick; windows are
        // never reshaped, so sampling cannot perturb the run.
        _sampler = std::make_unique<stats::Sampler>(interval);
    } else {
        _sampler = std::make_unique<stats::Sampler>(_eq, interval);
    }
    for (NodeId n = 0; n < _cfg.numProcs; ++n) {
        Node *node = _nodes[n].get();
        std::string prefix = "node" + std::to_string(n);
        _sampler->addProbe(prefix + ".readMisses", [node] {
            return node->slc().demandReadMisses.value();
        });
        _sampler->addProbe(prefix + ".pfIssued", [node] {
            return node->slc().pfIssued.value();
        });
        _sampler->addProbe(prefix + ".pfUseful", [node] {
            return node->slc().usefulPrefetches();
        });
        _sampler->addProbe(prefix + ".slwbOccupancy", [node] {
            return static_cast<double>(node->slc().slwbOccupancy());
        });
        _sampler->addProbe(prefix + ".flwbOccupancy", [node] {
            return static_cast<double>(node->flwb().size());
        });
    }
    _sampler->addProbe("mesh.flits",
            [this] { return _mesh.flitsInjected.value(); });
    if (_nshards == 0)
        _sampler->start();
}

void
Machine::enableCommitRecording(check::CommitSink &sink)
{
    psim_assert(!_ran, "commit recording must attach before run()");
    psim_assert(!_commitSink, "commit recording already enabled");
    _commitSink = &sink;
    if (_nshards > 0)
        _commitLanes = std::vector<CommitLane>(_cfg.numProcs);
}

void
Machine::enableChromeTrace(Tick start, Tick end)
{
    psim_assert(!_ran, "chrome tracing must attach before run()");
    psim_assert(!_chrome, "chrome tracing already enabled");
    _chrome = std::make_unique<ChromeTracer>(start, end);
    if (_nshards > 0)
        _chrome->enableStaging(_cfg.numProcs);
    for (auto &node : _nodes)
        node->slc().setChromeTracer(_chrome.get());
    _mesh.setChromeTracer(_chrome.get());
}

Tick
Machine::run(Tick limit)
{
    _ran = true;
    if (_nshards > 0)
        return runSharded(limit);
    for (auto &node : _nodes)
        node->cpu().start();
    Tick end = _eq.run(limit);
    if (allFinished()) {
        for (auto &node : _nodes)
            node->slc().finalizeStats();
        if (_audit)
            _audit->finalize(*this);
    }
    return end;
}

Tick
Machine::runSharded(Tick limit)
{
    // Stamp each node's start event from that node's own counter so the
    // very first events already carry the canonical ordering keys.
    for (NodeId n = 0; n < _cfg.numProcs; ++n) {
        eqOf(n).setContextOwner(n);
        _nodes[n]->cpu().start();
    }

    ShardGang gang(_nshards, [this](unsigned s) {
        _shardEqs[s]->runWindow(_windowEnd);
    });

    // Next sample tick, when sampling is on. Rows are emitted at the
    // first natural window boundary at or after each sample tick: once
    // nextSample <= start, every event below start has fired and none
    // at or above it has, so the snapshot is a quiescent cut. Windows
    // themselves are never altered by sampling -- shrinking a window
    // would change where cross-shard deliveries land relative to a
    // destination's own later schedules, permuting per-owner sequence
    // counters and with them same-tick tie-breaks; leaving boundaries
    // untouched makes sampling provably read-only, and because window
    // starts are shard-count-invariant the rows are byte-identical at
    // every shard count.
    Tick nextSample = _sampler ? _sampler->interval() : 0;
    bool quiesced = false;

    Tick end = 0;
    for (;;) {
        // Next window starts at the globally earliest pending event --
        // a shard-count-invariant quantity, so window boundaries (and
        // with them the exchange batches) are identical for every
        // partition. Idle stretches are skipped entirely.
        Tick start = kTickNever;
        for (auto &eq : _shardEqs)
            start = std::min(start, eq->nextWhen());
        if (start == kTickNever) {
            for (auto &eq : _shardEqs)
                end = std::max(end, eq->now());
            quiesced = true;
            break;
        }
        if (start > limit) {
            for (auto &eq : _shardEqs)
                eq->advanceTo(limit);
            end = limit;
            break;
        }
        if (_sampler) {
            while (nextSample <= start) {
                _sampler->sampleAt(nextSample);
                nextSample += _sampler->interval();
            }
        }
        Tick wend = start + _windowLookahead;
        if (limit != kTickNever)
            wend = std::min(wend, limit + 1);
        _windowEnd = wend;
        gang.runRound();
        // Observer lanes first (their ops happened inside the window),
        // then the exchange (whose mesh transits chronologically follow
        // into the chrome buffer, already in canonical order).
        drainObservers(wend);
        exchangeShardMessages(wend);
    }

    // Mirror the event-driven sampler's trailing row: it stops
    // rescheduling only after observing a drained queue, so the last
    // snapshot falls within one interval after the final event.
    if (_sampler && quiesced)
        _sampler->sampleAt(nextSample);

    if (allFinished()) {
        for (auto &node : _nodes)
            node->slc().finalizeStats();
        if (_audit)
            _audit->finalize(*this);
    }
    return end;
}

void
Machine::drainObservers(Tick window_end)
{
    if (_chrome)
        _chrome->drainStaged(window_end);
    if (_commitSink)
        drainCommitLanes(window_end);
}

void
Machine::drainCommitLanes(Tick window_end)
{
    // Same canonical (tick, node, per-node append index) order as the
    // message exchange and the chrome drain: identical to the order a
    // --shards 1 run calls the sink in, because same-tick events fire
    // node-major and appends within one node are tick-monotone.
    auto byTick = [](const XferRef &a, const XferRef &b) {
        if (a.tick != b.tick)
            return a.tick < b.tick;
        if (a.src != b.src)
            return a.src < b.src;
        return a.idx < b.idx;
    };

    _xfer.clear();
    for (NodeId n = 0; n < _cfg.numProcs; ++n) {
        const auto &lane = _commitLanes[n].accesses;
        for (std::uint32_t i = 0; i < lane.size(); ++i) {
            psim_assert(lane[i].tick < window_end,
                    "staged commit record beyond its window");
            _xfer.push_back(XferRef{lane[i].tick, n, i});
        }
    }
    std::sort(_xfer.begin(), _xfer.end(), byTick);
    for (const XferRef &r : _xfer)
        _commitSink->onAccess(_commitLanes[r.src].accesses[r.idx]);

    _xfer.clear();
    for (NodeId n = 0; n < _cfg.numProcs; ++n) {
        const auto &lane = _commitLanes[n].prefetches;
        for (std::uint32_t i = 0; i < lane.size(); ++i)
            _xfer.push_back(XferRef{lane[i].tick, n, i});
    }
    std::sort(_xfer.begin(), _xfer.end(), byTick);
    for (const XferRef &r : _xfer)
        _commitSink->onPrefetchIssue(_commitLanes[r.src].prefetches[r.idx]);

    for (CommitLane &lane : _commitLanes) {
        lane.accesses.clear();
        lane.prefetches.clear();
    }
}

void
Machine::exchangeShardMessages(Tick window_end)
{
    // Canonical replay order: (send tick, source node, append index).
    // Appends within one node happen in that node's deterministic event
    // order, so this order -- and therefore every mesh link claim and
    // mesh statistic -- is identical at every shard count.
    _xfer.clear();
    for (NodeId n = 0; n < _cfg.numProcs; ++n) {
        const auto &box = _outboxes[n].msgs;
        for (std::uint32_t i = 0; i < box.size(); ++i)
            _xfer.push_back(XferRef{box[i].sendTick, n, i});
    }
    std::sort(_xfer.begin(), _xfer.end(),
            [](const XferRef &a, const XferRef &b) {
                if (a.tick != b.tick)
                    return a.tick < b.tick;
                if (a.src != b.src)
                    return a.src < b.src;
                return a.idx < b.idx;
            });
    for (const XferRef &r : _xfer) {
        const OutMsg &om = _outboxes[r.src].msgs[r.idx];
        Tick arrival = _mesh.traverse(r.src, om.msg.dst, om.flits,
                om.sendTick);
        psim_assert(arrival >= window_end,
                "cross-shard lookahead violated: arrival %llu < window "
                "end %llu", (unsigned long long)arrival,
                (unsigned long long)window_end);
        Message m = om.msg;
        bool data = om.data;
        eqOf(m.dst).scheduleRemote(arrival, m.dst, [this, m, data] {
            _nodes[m.dst]->bus().transfer(data,
                    [this, m] { deliver(m); });
        });
    }
    for (auto &box : _outboxes)
        box.msgs.clear();
}

bool
Machine::allFinished() const
{
    for (const auto &node : _nodes) {
        if (!node->cpu().finished())
            return false;
    }
    return true;
}

RunMetrics
Machine::metrics() const
{
    RunMetrics r;
    for (const auto &node : _nodes) {
        const Cpu &cpu = node->cpu();
        const Slc &slc = node->slc();
        r.execTicks = std::max(r.execTicks,
                static_cast<Tick>(cpu.finishTick.value()));
        r.reads += cpu.loads.value();
        r.writes += cpu.stores.value();
        r.readStall += cpu.readStall.value();
        r.slcReads += slc.demandReads.value();
        r.readMisses += slc.demandReadMisses.value();
        r.missesCold += slc.missesCold.value();
        r.missesCoherence += slc.missesCoherence.value();
        r.missesReplacement += slc.missesReplacement.value();
        r.pfIssued += slc.pfIssued.value();
        r.pfUseful += slc.usefulPrefetches();
        r.busTransactions += node->bus().transactions.value();
    }
    r.flits = _mesh.flitsInjected.value();
    return r;
}

void
Machine::dumpStats(std::ostream &os) const
{
    _registry.dump(os);
}

void
Machine::dumpStatsJson(std::ostream &os) const
{
    std::string extra;
    if (_sampler) {
        std::ostringstream ss;
        ss << ",\"samples\":";
        _sampler->dumpJson(ss);
        extra = ss.str();
    }
    _registry.dumpJson(os, extra);
}

void
Machine::checkCoherenceInvariants() const
{
    // Block address -> (modified copies, shared copies bitmask).
    struct BlockView
    {
        unsigned modified = 0;
        std::uint64_t sharers = 0;
        NodeId owner = kNodeNone;
    };
    std::map<Addr, BlockView> view;

    for (const auto &node : _nodes) {
        psim_assert(node->slc().pendingTransactions() == 0,
                "invariant check while node %u has pending transactions",
                node->id());
        node->slc().array().forEach([&](const CacheBlk &blk) {
            BlockView &v = view[blk.addr];
            if (blk.state == CohState::Modified) {
                ++v.modified;
                v.owner = node->id();
            } else {
                v.sharers |= 1ULL << node->id();
            }
        });
    }

    for (const auto &[addr, v] : view) {
        psim_assert(v.modified <= 1,
                "block %llx has %u modified copies",
                (unsigned long long)addr, v.modified);
        psim_assert(v.modified == 0 || v.sharers == 0,
                "block %llx is both modified and shared",
                (unsigned long long)addr);

        auto snap = _nodes[_cfg.homeOf(addr)]->mem().snapshot(addr);
        psim_assert(!snap.busy, "directory entry %llx busy at quiesce",
                (unsigned long long)addr);
        if (v.modified == 1) {
            psim_assert(snap.st == MemCtrl::DirSnapshot::St::Dirty &&
                        snap.owner == v.owner,
                    "directory disagrees about owner of %llx",
                    (unsigned long long)addr);
        } else {
            // Every shared copy must be covered by a presence bit
            // (silent evictions may leave stale presence bits, which is
            // harmless, but never the reverse).
            psim_assert(snap.st != MemCtrl::DirSnapshot::St::Dirty,
                    "directory thinks %llx is dirty but no cache owns it",
                    (unsigned long long)addr);
            psim_assert((v.sharers & ~snap.presence) == 0,
                    "cache holds %llx without a presence bit",
                    (unsigned long long)addr);
        }
    }

    // FLC/SLC inclusion: every FLC-resident block is SLC-resident.
    for (const auto &node : _nodes) {
        const Slc &slc = node->slc();
        node->flc().array().forEach([&](const CacheBlk &blk) {
            psim_assert(slc.stateOf(blk.addr) != CohState::Invalid,
                    "node %u FLC holds %llx not in its SLC", node->id(),
                    (unsigned long long)blk.addr);
        });
    }
}

} // namespace psim
