#include "sys/node.hh"

#include "sim/logging.hh"
#include "sys/machine.hh"

namespace psim
{

Node::Node(Machine &m, NodeId id) : _id(id)
{
    _flc = std::make_unique<Flc>(m.cfg());
    _flwb = std::make_unique<Flwb>(m.eqOf(id), m.cfg());
    _bus = std::make_unique<Bus>(m.eqOf(id), m.cfg());
    _cpu = std::make_unique<Cpu>(m, id, *_flc, *_flwb);
    _slc = std::make_unique<Slc>(m, id, *_flc, *_cpu);
    _mem = std::make_unique<MemCtrl>(m, id);

    _flwb->setConsumer(
            [this](const FlwbEntry &e) { return _slc->tryAccept(e); });
    _flwb->setSpaceCallback([this] { _cpu->flwbSpace(); });
}

void
Node::deliver(const Message &msg)
{
    if (isForMemory(msg.type)) {
        _mem->receive(msg);
        return;
    }
    switch (msg.type) {
      case MsgType::LockGrant:
        _cpu->lockGranted();
        return;
      case MsgType::BarrierGo:
        _cpu->barrierDone();
        return;
      default:
        _slc->receive(msg);
    }
}

} // namespace psim
