/**
 * @file
 * The full 16-node CC-NUMA machine (paper Sections 2 and 4).
 *
 * Owns the global event queue, the functional backing store, the mesh,
 * and the nodes; routes protocol messages across node buses and the
 * network; and aggregates the metrics the paper's evaluation reports.
 */

#ifndef PSIM_SYS_MACHINE_HH
#define PSIM_SYS_MACHINE_HH

#include <limits>
#include <memory>
#include <ostream>
#include <vector>

#include "check/access_log.hh"
#include "core/characterizer.hh"
#include "mem/backing_store.hh"
#include "net/mesh.hh"
#include "proto/message.hh"
#include "sim/audit.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"
#include "sys/node.hh"
#include "sys/task.hh"

namespace psim
{

class ChromeTracer;

namespace stats
{
class Sampler;
}

/** The headline numbers of one simulation run (Figure 6 inputs). */
struct RunMetrics
{
    Tick execTicks = 0;        ///< parallel-section execution time
    double reads = 0;          ///< loads issued by all processors
    double writes = 0;
    double slcReads = 0;       ///< read requests presented to the SLCs
    double readMisses = 0;     ///< the paper's "number of read misses"
    double readStall = 0;      ///< the paper's "read stall time" (ticks)
    double missesCold = 0;
    double missesCoherence = 0;
    double missesReplacement = 0;
    double pfIssued = 0;
    double pfUseful = 0;
    double flits = 0;          ///< network traffic
    double busTransactions = 0;

    /**
     * Useful / issued prefetches. NaN (not 1.0) when none were issued:
     * a run without prefetches has no efficiency, and reporting a
     * perfect score made baseline rows indistinguishable from schemes
     * whose every prefetch was useful. Renderers print "--" for NaN.
     */
    double
    prefetchEfficiency() const
    {
        return pfIssued > 0
                       ? pfUseful / pfIssued
                       : std::numeric_limits<double>::quiet_NaN();
    }
};

class Machine
{
  public:
    explicit Machine(MachineConfig cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    EventQueue &eq() { return _eq; }

    /**
     * The event queue that drives node @p n: the per-shard queue in
     * sharded mode (cfg.shards >= 1), the global queue otherwise.
     * Every component of node n schedules exclusively through this.
     */
    EventQueue &
    eqOf(NodeId n)
    {
        return _nshards ? *_shardEqs[_shardOfNode[n]] : _eq;
    }

    /** Number of shards (0 = classic serial engine). */
    unsigned shards() const { return _nshards; }

    const MachineConfig &cfg() const { return _cfg; }
    BackingStore &store() { return _store; }
    Mesh &mesh() { return _mesh; }
    Node &node(NodeId id) { return *_nodes.at(id); }
    const Node &node(NodeId id) const { return *_nodes.at(id); }
    unsigned numProcs() const { return _cfg.numProcs; }

    /** The invariant-audit layer, or nullptr when auditing is off. */
    audit::MachineAudit *auditor() { return _audit.get(); }

    /**
     * Route a message from its source component: across the source
     * node's bus, then (for remote destinations) through the mesh and
     * the destination node's bus, and finally to the target component.
     */
    void send(const Message &m);

    /** Attach the simulated thread for one processor. */
    void bindProgram(NodeId id, Task t);

    /**
     * Attach a Table-2/3 stride characterizer to every node's demand
     * read-miss stream. Call before run().
     */
    void enableCharacterizers(unsigned min_run = 3);

    StrideCharacterizer *
    characterizer(NodeId id)
    {
        return _chars.empty() ? nullptr : _chars.at(id).get();
    }

    /**
     * Stream every SLC-presented request of every node into @p writer
     * (which must outlive the run). Call before run().
     */
    void enableTracing(TraceWriter &writer);

    /**
     * Snapshot selected per-node scalars (read misses, prefetches
     * issued/useful, SLWB/FLWB occupancy) and mesh flits every
     * @p interval ticks; the series lands in the JSON stats dump (and
     * dumps as CSV via sampler()). Read-only observation: aggregate
     * statistics are byte-identical with sampling on or off. Call
     * before run().
     */
    void enableSampling(Tick interval);

    /** The interval sampler, or nullptr when sampling is off. */
    stats::Sampler *sampler() { return _sampler.get(); }
    const stats::Sampler *sampler() const { return _sampler.get(); }

    /**
     * Record demand-miss / prefetch-lifecycle / mesh-transit events in
     * chrome://tracing form, windowed to ticks [start, end]. Read-only
     * observation. Call before run().
     */
    void enableChromeTrace(Tick start = 0, Tick end = kTickNever);

    /** The chrome trace recorder, or nullptr when tracing is off. */
    ChromeTracer *chromeTracer() { return _chrome.get(); }
    const ChromeTracer *chromeTracer() const { return _chrome.get(); }

    /**
     * Stream every committed shared-memory access (and every issued
     * prefetch) of the coming run into @p sink, for differential
     * checking (check/oracle.hh). Observability-grade, read-only:
     * recording never changes simulated behaviour, timing, or any
     * aggregate statistic. Call before run(); @p sink must outlive it.
     */
    void enableCommitRecording(check::CommitSink &sink);

    /** The commit sink, or nullptr when recording is off. */
    check::CommitSink *commitSink() const { return _commitSink; }

    /**
     * Producer entry points for commit recording (ctx.hh value-commit
     * points and the Slc's prefetch-issue site). Serial engine: forward
     * straight to the sink in execution order. Sharded engine: append
     * to the producing node's staging lane; the machine merges lanes at
     * every window boundary in canonical (tick, node, index) order.
     * @pre commitSink() != nullptr
     */
    void
    commitAccess(const check::AccessRecord &rec)
    {
        if (_nshards > 0) {
            _commitLanes[rec.node].accesses.push_back(rec);
            return;
        }
        _commitSink->onAccess(rec);
    }

    void
    commitPrefetchIssue(const check::PrefetchIssueRecord &rec)
    {
        if (_nshards > 0) {
            _commitLanes[rec.node].prefetches.push_back(rec);
            return;
        }
        _commitSink->onPrefetchIssue(rec);
    }

    /**
     * Start every bound thread and run the machine until all threads
     * finish (or @p limit ticks pass). @return final tick.
     */
    Tick run(Tick limit = kTickNever);

    bool allFinished() const;

    /** Aggregate the paper's metrics over all nodes. */
    RunMetrics metrics() const;

    /** Every component's statistics group, in registration order. */
    const stats::Registry &registry() const { return _registry; }

    /** Dump every statistics group (classic aligned text form). */
    void dumpStats(std::ostream &os) const;

    /**
     * Dump every statistics group as the schema'd JSON document
     * ("psim-stats-v1"), with the sampler's time series appended as a
     * top-level "samples" member when sampling is enabled.
     */
    void dumpStatsJson(std::ostream &os) const;

    /**
     * Verify global coherence invariants (call when quiescent): at most
     * one Modified copy per block, directory state consistent with the
     * caches, FLC contents included in the SLC.
     */
    void checkCoherenceInvariants() const;

  private:
    void deliver(const Message &m);

    /**
     * Loud, uniform gate for the observers that genuinely cannot run
     * under the sharded engine (today: only the binary SLC trace).
     */
    void requireSerialEngine(const char *what) const;

    /** The windowed parallel engine (cfg.shards >= 1). */
    Tick runSharded(Tick limit);

    /**
     * Route every outboxed cross-node message at a window boundary:
     * sort into the canonical (send tick, source, append index) order,
     * walk each through the mesh, and schedule its delivery into the
     * destination shard. Single-threaded; runs between windows.
     */
    void exchangeShardMessages(Tick window_end);

    /**
     * Merge every observer's per-node staging lanes at a window
     * boundary (chrome ops, then -- via the exchange that follows --
     * mesh transits; commit records independently). Single-threaded.
     */
    void drainObservers(Tick window_end);

    /** Forward staged commit records to the sink in canonical order. */
    void drainCommitLanes(Tick window_end);

    /** A cross-node message awaiting the next window boundary. */
    struct OutMsg
    {
        Tick sendTick; ///< mesh-injection tick (src bus completion)
        Message msg;
        unsigned flits;
        bool data;
    };

    /** Per-source-node outbox, padded so shards never share a line. */
    struct alignas(64) Outbox
    {
        std::vector<OutMsg> msgs;
    };

    /** Sort key into the outboxes for one window's exchange. */
    struct XferRef
    {
        Tick tick;
        NodeId src;
        std::uint32_t idx;
    };

    /**
     * Per-node commit-record staging lane (sharded engine), padded so
     * producer shards never share a cache line. Appends are tick-
     * monotone within a lane; the boundary merge restores the global
     * order.
     */
    struct alignas(64) CommitLane
    {
        std::vector<check::AccessRecord> accesses;
        std::vector<check::PrefetchIssueRecord> prefetches;
    };

    MachineConfig _cfg;
    EventQueue _eq;
    BackingStore _store;
    /** Created before the mesh and nodes so they can wire into it. */
    std::unique_ptr<audit::MachineAudit> _audit;
    Mesh _mesh;
    // Sharded-engine state; the queues must outlive the nodes wired to
    // them, so everything here stays declared before _nodes.
    std::vector<std::unique_ptr<EventQueue>> _shardEqs;
    std::vector<unsigned> _shardOfNode;
    std::vector<Outbox> _outboxes;
    std::vector<XferRef> _xfer; ///< exchange scratch
    unsigned _nshards = 0;
    Tick _windowLookahead = 0;
    Tick _windowEnd = 0; ///< written between rounds, read by workers
    std::vector<std::unique_ptr<Node>> _nodes;
    std::vector<std::unique_ptr<StrideCharacterizer>> _chars;
    /** Built in the constructor, after the nodes exist. */
    stats::Registry _registry;
    std::unique_ptr<stats::Sampler> _sampler;
    std::unique_ptr<ChromeTracer> _chrome;
    check::CommitSink *_commitSink = nullptr;
    std::vector<CommitLane> _commitLanes; ///< sized when sharded
    bool _ran = false;
};

} // namespace psim

#endif // PSIM_SYS_MACHINE_HH
