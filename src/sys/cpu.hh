/**
 * @file
 * Processor model (paper Section 2).
 *
 * A blocking-load processor: it stalls on read misses until data
 * returns, but writes are buffered (FLWB) and retire in the background,
 * as release consistency permits. Synchronization operations implement
 * the RC rules: an acquire (lock) stalls until granted; a release
 * (unlock, barrier arrival) first waits until every prior store by this
 * processor has been globally performed.
 *
 * The simulated program is a coroutine (Task); the Cpu resumes it when
 * each access completes, preserving the exact timing-driven interleaving
 * of references that a program-driven simulator provides.
 */

#ifndef PSIM_SYS_CPU_HH
#define PSIM_SYS_CPU_HH

#include <coroutine>
#include <optional>

#include "mem/flc.hh"
#include "mem/write_buffer.hh"
#include "sim/stats.hh"
#include "sys/task.hh"

namespace psim
{

class Machine;

class Cpu
{
  public:
    Cpu(Machine &m, NodeId id, Flc &flc, Flwb &flwb);

    NodeId id() const { return _id; }
    Machine &machine() { return _m; }

    /** Attach the simulated thread. */
    void bind(Task t);

    /** Schedule the first resume of the thread at the current tick. */
    void start();

    bool finished() const { return _finished; }

    // ---- called by the awaitables in apps/ctx.hh ----

    void issueLoad(Addr addr, Pc pc, std::coroutine_handle<> h);
    void issueStore(Addr addr, Pc pc, std::coroutine_handle<> h);
    void issueLock(Addr addr, std::coroutine_handle<> h);
    void issueUnlock(Addr addr, std::coroutine_handle<> h);
    void issueBarrier(Addr addr, std::uint32_t participants,
                      std::coroutine_handle<> h);
    void think(Tick cycles, std::coroutine_handle<> h);

    // ---- called by the memory hierarchy ----

    /** A demand read completed (data available to the processor). */
    void readComplete(Addr addr);

    /** One buffered store became globally performed. */
    void storePerformed();

    /** The queue-based lock at memory granted our LockReq. */
    void lockGranted();

    /** All participants arrived; barrier released. */
    void barrierDone();

    /** The FLWB drained one entry; retry a stalled enqueue. */
    void flwbSpace();

    /** Stores issued but not yet globally performed. */
    unsigned outstandingStores() const { return _outstandingStores; }

    /** What the processor is currently blocked on (debugging). */
    const char *pendingState() const;

    /** Address of the blocking operation (debugging). */
    Addr pendingAddr() const { return _pendingEntry ? _pendingEntry->addr : 0; }

    // ---- statistics (paper metrics) ----

    stats::Scalar loads;
    stats::Scalar stores;
    stats::Scalar locks;
    stats::Scalar barriers;
    stats::Scalar thinkTicks;
    /** Ticks stalled on read accesses beyond the 1-pclock FLC access. */
    stats::Scalar readStall;
    /** Ticks stalled acquiring locks. */
    stats::Scalar lockStall;
    /** Ticks stalled at barriers (incl. waiting for write completion). */
    stats::Scalar barrierStall;
    /** Ticks stalled because the FLWB was full. */
    stats::Scalar writeStall;
    /** Tick at which the thread finished. */
    stats::Scalar finishTick;

    /** Register this processor's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("loads", &loads, "loads issued");
        g.addScalar("stores", &stores, "stores issued");
        g.addScalar("locks", &locks, "lock acquires");
        g.addScalar("barriers", &barriers, "barrier episodes");
        g.addScalar("thinkTicks", &thinkTicks, "busy (non-memory) ticks");
        g.addScalar("readStall", &readStall, "read stall ticks");
        g.addScalar("lockStall", &lockStall, "lock stall ticks");
        g.addScalar("barrierStall", &barrierStall, "barrier stall ticks");
        g.addScalar("writeStall", &writeStall, "FLWB-full stall ticks");
        g.addScalar("finishTick", &finishTick, "completion tick");
    }

  private:
    enum class Pending : std::uint8_t
    {
        None,
        Read,    ///< waiting for readComplete
        Lock,    ///< waiting for lockGranted
        Barrier, ///< waiting for barrierDone
        Push,    ///< waiting for FLWB space to push _pendingEntry
        Drain,   ///< waiting for outstanding stores to drain (release)
        Store,   ///< sequential consistency: store must perform first
    };

    /** Resume the coroutine at an absolute tick. */
    void resumeAt(Tick when);

    /** Resume immediately (the access completed now). */
    void resumeNow();

    /**
     * Enqueue @p e, stalling on a full FLWB. @p then runs once the
     * entry is in the buffer.
     */
    void pushOrStall(const FlwbEntry &e, Pending after);

    /** The release half of RC: continue once stores have completed. */
    void whenDrained(const FlwbEntry &release_entry, Pending after);

    /** Act on a freshly pushed entry according to _after. */
    void pushed();

    Machine &_m;
    /** This node's event queue (per-shard in sharded mode). */
    EventQueue &_eq;
    NodeId _id;
    Flc &_flc;
    Flwb &_flwb;

    Task _task;
    std::coroutine_handle<> _waiting = nullptr;
    bool _finished = false;

    Pending _pending = Pending::None;
    Pending _after = Pending::None; ///< state entered once a push succeeds
    std::optional<FlwbEntry> _pendingEntry;
    Tick _opStart = 0;       ///< issue tick of the blocking op
    unsigned _outstandingStores = 0;
};

} // namespace psim

#endif // PSIM_SYS_CPU_HH
