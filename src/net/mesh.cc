#include "net/mesh.hh"

#include <cstdlib>

#include "sim/logging.hh"
#include "trace/chrome_trace.hh"

namespace psim
{

Mesh::Mesh(EventQueue &eq, const MachineConfig &cfg)
    : _eq(eq), _cfg(cfg), _links(static_cast<std::size_t>(cfg.numProcs) * 4)
{
}

Mesh::Coord
Mesh::coordOf(NodeId n) const
{
    return Coord{static_cast<int>(n % _cfg.meshCols),
                 static_cast<int>(n / _cfg.meshCols)};
}

NodeId
Mesh::nodeOf(int x, int y) const
{
    return static_cast<NodeId>(y * static_cast<int>(_cfg.meshCols) + x);
}

std::size_t
Mesh::linkIndex(NodeId a, NodeId b) const
{
    Coord ca = coordOf(a);
    Coord cb = coordOf(b);
    unsigned dir;
    if (cb.x == ca.x + 1 && cb.y == ca.y) {
        dir = 0; // east
    } else if (cb.x == ca.x - 1 && cb.y == ca.y) {
        dir = 1; // west
    } else if (cb.y == ca.y + 1 && cb.x == ca.x) {
        dir = 2; // south
    } else if (cb.y == ca.y - 1 && cb.x == ca.x) {
        dir = 3; // north
    } else {
        psim_panic("nodes %u and %u are not mesh neighbours", a, b);
    }
    return static_cast<std::size_t>(a) * 4 + dir;
}

std::vector<NodeId>
Mesh::route(NodeId src, NodeId dst) const
{
    std::vector<NodeId> path;
    Coord cur = coordOf(src);
    Coord end = coordOf(dst);
    path.push_back(src);
    while (cur.x != end.x) {
        cur.x += (end.x > cur.x) ? 1 : -1;
        path.push_back(nodeOf(cur.x, cur.y));
    }
    while (cur.y != end.y) {
        cur.y += (end.y > cur.y) ? 1 : -1;
        path.push_back(nodeOf(cur.x, cur.y));
    }
    return path;
}

unsigned
Mesh::hops(NodeId src, NodeId dst) const
{
    Coord a = coordOf(src);
    Coord b = coordOf(dst);
    return static_cast<unsigned>(std::abs(a.x - b.x) +
                                 std::abs(a.y - b.y));
}

void
Mesh::send(NodeId src, NodeId dst, unsigned flits, DeliverFn deliver)
{
    psim_assert(src != dst, "mesh send to self");
    psim_assert(src < _cfg.numProcs && dst < _cfg.numProcs,
            "mesh send %u -> %u out of range", src, dst);
    if (_audit)
        _audit->onMeshInject(src, dst, flits);

    const Tick now = _eq.now();
    const Tick worm = static_cast<Tick>(flits) * _cfg.netCycle;

    // Walk the head flit across the path. At each hop the head waits for
    // the link to become free (wormhole back-pressure approximation) and
    // pays the node fall-through latency; the worm body then holds the
    // link for `flits` network cycles.
    std::vector<NodeId> path = route(src, dst);
    Tick head = now;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        Resource &link = _links[linkIndex(path[i], path[i + 1])];
        Tick start = link.claim(head, worm);
        head = start + _cfg.fallThrough * _cfg.netCycle;
    }
    Tick arrival = head + worm;

    ++messages;
    flitsInjected += static_cast<double>(flits);
    msgLatency.sample(static_cast<double>(arrival - now));
    if (_chrome)
        _chrome->meshMessage(src, dst, flits, now, arrival);

    _eq.schedule(arrival, std::move(deliver));
}

} // namespace psim
