#include "net/mesh.hh"

#include <cstdlib>

#include "sim/logging.hh"
#include "trace/chrome_trace.hh"

namespace psim
{

Mesh::Mesh(EventQueue &eq, const MachineConfig &cfg)
    : _eq(eq), _cfg(cfg), _links(static_cast<std::size_t>(cfg.numProcs) * 4)
{
}

Mesh::Coord
Mesh::coordOf(NodeId n) const
{
    return Coord{static_cast<int>(n % _cfg.meshCols),
                 static_cast<int>(n / _cfg.meshCols)};
}

NodeId
Mesh::nodeOf(int x, int y) const
{
    return static_cast<NodeId>(y * static_cast<int>(_cfg.meshCols) + x);
}

unsigned
Mesh::hops(NodeId src, NodeId dst) const
{
    Coord a = coordOf(src);
    Coord b = coordOf(dst);
    return static_cast<unsigned>(std::abs(a.x - b.x) +
                                 std::abs(a.y - b.y));
}

Tick
Mesh::traverse(NodeId src, NodeId dst, unsigned flits, Tick now)
{
    psim_assert(src != dst, "mesh send to self");
    psim_assert(src < _cfg.numProcs && dst < _cfg.numProcs,
            "mesh send %u -> %u out of range", src, dst);
    if (_audit)
        _audit->onMeshInject(src, dst, flits);

    const Tick worm = static_cast<Tick>(flits) * _cfg.netCycle;
    const Tick fall = _cfg.fallThrough * _cfg.netCycle;

    // Walk the head flit along the X-then-Y route. At each hop the head
    // waits for the link to become free (wormhole back-pressure
    // approximation) and pays the node fall-through latency; the worm
    // body then holds the link for `flits` network cycles. The walk
    // indexes links directly from the coordinates -- this is the
    // per-message hot path, and materializing the route as a vector
    // showed up as the top allocation site in the fig6 profile.
    Coord cur = coordOf(src);
    const Coord end = coordOf(dst);
    Tick head = now;
    while (cur.x != end.x) {
        unsigned dir = end.x > cur.x ? 0u : 1u; // east : west
        Resource &link =
                _links[static_cast<std::size_t>(nodeOf(cur.x, cur.y)) * 4 +
                       dir];
        head = link.claim(head, worm) + fall;
        cur.x += end.x > cur.x ? 1 : -1;
    }
    while (cur.y != end.y) {
        unsigned dir = end.y > cur.y ? 2u : 3u; // south : north
        Resource &link =
                _links[static_cast<std::size_t>(nodeOf(cur.x, cur.y)) * 4 +
                       dir];
        head = link.claim(head, worm) + fall;
        cur.y += end.y > cur.y ? 1 : -1;
    }
    Tick arrival = head + worm;

    ++messages;
    flitsInjected += static_cast<double>(flits);
    msgLatency.sample(static_cast<double>(arrival - now));
    if (_chrome)
        _chrome->meshMessage(src, dst, flits, now, arrival);

    return arrival;
}

void
Mesh::send(NodeId src, NodeId dst, unsigned flits, DeliverFn deliver)
{
    _eq.schedule(traverse(src, dst, flits, _eq.now()), std::move(deliver));
}

} // namespace psim
