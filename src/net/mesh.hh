/**
 * @file
 * 2-D wormhole-routed mesh interconnect.
 *
 * Dimension-ordered (X then Y) routing. Each unidirectional link is a
 * serially-reusable resource at flit granularity: the head flit waits for
 * every link on the path in order (each adding the node fall-through
 * latency), and the worm then occupies each link for length-many network
 * cycles. This models both the pipelined wormhole latency
 * (hops * fall-through + flits) and link contention, which the paper
 * states is "accurately modelled in all parts of the system".
 */

#ifndef PSIM_NET_MESH_HH
#define PSIM_NET_MESH_HH

#include <vector>

#include "sim/audit.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace psim
{

class ChromeTracer;

class Mesh
{
  public:
    /** Inline-stored delivery callback (no heap on the message path). */
    using DeliverFn = EventQueue::Callback;

    Mesh(EventQueue &eq, const MachineConfig &cfg);

    /**
     * Inject a message of @p flits flits at node @p src destined for
     * node @p dst; @p deliver runs when the tail flit arrives.
     * @pre src != dst (local traffic stays on the node bus).
     */
    void send(NodeId src, NodeId dst, unsigned flits, DeliverFn deliver);

    /**
     * Timing-and-stats core of send(): claim every link on the X-Y
     * route for an injection at tick @p now and return the tail-flit
     * arrival tick. The sharded engine calls this directly at window
     * boundaries (injections sorted by send tick) and schedules the
     * delivery into the destination shard itself.
     */
    Tick traverse(NodeId src, NodeId dst, unsigned flits, Tick now);

    /** Attach the audit layer (mesh message conservation). */
    void setAudit(audit::MachineAudit *a) { _audit = a; }

    /** Attach the chrome://tracing exporter (read-only observation). */
    void setChromeTracer(ChromeTracer *t) { _chrome = t; }

    /** Register the mesh's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("messages", &messages, "messages injected");
        g.addScalar("flits", &flitsInjected, "flits injected");
        g.addAverage("latency", &msgLatency, "in-network message latency");
    }

    /** Hop count of the X-Y route between two nodes. */
    unsigned hops(NodeId src, NodeId dst) const;

    /** Uncontended latency of a @p flits-flit message over @p nhops. */
    Tick
    baseLatency(unsigned nhops, unsigned flits) const
    {
        return static_cast<Tick>(nhops) * _cfg.fallThrough * _cfg.netCycle +
               static_cast<Tick>(flits) * _cfg.netCycle;
    }

    /** Total flits injected (traffic metric). */
    stats::Scalar flitsInjected;
    /** Total messages injected. */
    stats::Scalar messages;
    /** Accumulated in-network latency. */
    stats::Average msgLatency;

  private:
    struct Coord
    {
        int x;
        int y;
    };

    Coord coordOf(NodeId n) const;
    NodeId nodeOf(int x, int y) const;


    EventQueue &_eq;
    const MachineConfig &_cfg;
    audit::MachineAudit *_audit = nullptr; ///< null when auditing is off
    ChromeTracer *_chrome = nullptr;       ///< null when tracing is off
    /** One Resource per (node, direction): N/E/S/W. */
    std::vector<Resource> _links;
};

} // namespace psim

#endif // PSIM_NET_MESH_HH
