#include "check/fuzz.hh"

#include <fstream>
#include <map>

#include "check/shrink.hh"
#include "sim/audit.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sys/machine.hh"

namespace psim::check
{

const std::vector<PrefetchScheme> &
fuzzSchemes()
{
    static const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::None,        PrefetchScheme::Sequential,
        PrefetchScheme::IDet,        PrefetchScheme::DDet,
        PrefetchScheme::Adaptive,    PrefetchScheme::MultiStride,
        PrefetchScheme::PtrChase,    PrefetchScheme::Perceptron,
    };
    return schemes;
}

namespace
{

/** FNV-1a over the machine's final memory image, in page order. */
std::uint64_t
imageDigest(const BackingStore &store)
{
    std::map<Addr, std::vector<std::uint8_t>> pages;
    store.forEachPage(
            [&](Addr base, const std::uint8_t *bytes, unsigned len) {
                pages.emplace(base,
                        std::vector<std::uint8_t>(bytes, bytes + len));
            });
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    for (const auto &[base, bytes] : pages) {
        // All-zero pages are semantically absent (unmapped reads as
        // zero), so skip them: a scheme that merely materialized an
        // extra untouched page has not computed a different result.
        bool all_zero = true;
        for (std::uint8_t b : bytes) {
            if (b) {
                all_zero = false;
                break;
            }
        }
        if (all_zero)
            continue;
        mix(base);
        for (std::uint8_t b : bytes) {
            h ^= b;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

MachineConfig
configFor(const ProgramSpec &spec, PrefetchScheme scheme,
          const TestHooks &hooks, unsigned shards)
{
    MachineConfig cfg;
    cfg.numProcs = spec.threads;
    if (cfg.numProcs < 4)
        cfg.meshCols = cfg.numProcs;
    cfg.prefetch.scheme = scheme;
    cfg.prefetch.degree = spec.degree;
    cfg.seed = spec.seed;
    cfg.testHooks = hooks;
    cfg.shards = shards;
    return cfg;
}

} // namespace

SchemeRun
runOneScheme(const ProgramSpec &spec, PrefetchScheme scheme,
             const TestHooks &hooks, Tick tick_limit, unsigned shards)
{
    MachineConfig cfg = configFor(spec, scheme, hooks, shards);
    Machine m(cfg);
    FuzzWorkload wl(spec);
    AccessLog log;
    m.enableCommitRecording(log);
    wl.attach(m);

    Oracle oracle(cfg.pageSize);
    oracle.snapshotInitial(m.store());

    m.run(tick_limit);

    SchemeRun run;
    run.finished = m.allFinished();
    run.verified = run.finished && wl.verify(m);
    run.imageDigest = imageDigest(m.store());
    if (audit::MachineAudit *a = m.auditor()) {
        audit::LedgerSnapshot ledger = a->exportLedger();
        run.oracle = oracle.check(log, m.store(), &ledger);
    } else {
        run.oracle = oracle.check(log, m.store(), nullptr);
    }
    return run;
}

bool
specDiverges(const ProgramSpec &spec, const TestHooks &hooks,
             Tick tick_limit, std::string *why, unsigned shards)
{
    const auto &schemes = fuzzSchemes();
    std::vector<SchemeRun> runs;
    runs.reserve(schemes.size());
    for (PrefetchScheme s : schemes)
        runs.push_back(runOneScheme(spec, s, hooks, tick_limit, shards));

    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const char *name = toString(schemes[i]);
        const SchemeRun &r = runs[i];
        if (!r.finished) {
            if (why) {
                *why = strfmt("scheme %s did not quiesce within "
                              "%llu ticks", name,
                              (unsigned long long)tick_limit);
            }
            return true;
        }
        if (!r.oracle.ok()) {
            if (why) {
                *why = strfmt("scheme %s: %llu oracle divergences; "
                              "first: %s", name,
                              (unsigned long long)r.oracle.total,
                              r.oracle.divergences.front()
                                      .describe().c_str());
            }
            return true;
        }
        if (!r.verified) {
            if (why) {
                *why = strfmt("scheme %s: native verification failed",
                              name);
            }
            return true;
        }
        if (r.imageDigest != runs[0].imageDigest) {
            if (why) {
                *why = strfmt("final memory image of scheme %s "
                              "(%#llx) differs from baseline (%#llx)",
                              name,
                              (unsigned long long)r.imageDigest,
                              (unsigned long long)runs[0].imageDigest);
            }
            return true;
        }
    }
    return false;
}

namespace
{

SeedOutcome
checkSeed(std::uint64_t seed, const FuzzOptions &opts)
{
    SeedOutcome out;
    out.seed = seed;
    ProgramSpec spec = ProgramSpec::generate(seed);
    out.spec = spec.describe();

    // Count checked loads from one representative run (baseline).
    SchemeRun base = runOneScheme(spec, PrefetchScheme::None,
            opts.hooks, opts.tickLimit, opts.shards);
    out.loadsChecked = base.oracle.loadsChecked;

    std::string why;
    if (!specDiverges(spec, opts.hooks, opts.tickLimit, &why,
                opts.shards)) {
        out.ok = true;
        return out;
    }
    out.ok = false;
    out.detail = why;
    if (opts.shrink) {
        auto pred = [&opts](const ProgramSpec &s) {
            return specDiverges(s, opts.hooks, opts.tickLimit,
                    nullptr, opts.shards);
        };
        ShrinkResult res = shrink(spec, pred, opts.shrinkBudget);
        out.minimized = res.spec.describe();
    }
    return out;
}

} // namespace

FuzzReport
runFuzz(const FuzzOptions &opts, std::ostream &out)
{
    std::vector<std::uint64_t> seeds = opts.seeds;
    if (seeds.empty()) {
        for (unsigned i = 0; i < opts.numSeeds; ++i)
            seeds.push_back(opts.seedStart + i);
    }

    FuzzReport report;
    report.outcomes.resize(seeds.size());
    SeedOutcome *slots = report.outcomes.data();
    const FuzzOptions *o = &opts;
    runGrid(seeds.size(), opts.jobs,
            [slots, &seeds, o](std::size_t i) {
                slots[i] = checkSeed(seeds[i], *o);
            });

    // All output happens after the grid, in seed order: byte-identical
    // at any --jobs count.
    for (const SeedOutcome &s : report.outcomes) {
        ++report.seedsRun;
        report.loadsChecked += s.loadsChecked;
        if (s.ok)
            continue;
        ++report.failures;
        out << "seed " << s.seed << " DIVERGED: " << s.detail << "\n";
        out << "  program:   " << s.spec << "\n";
        if (!s.minimized.empty())
            out << "  minimized: " << s.minimized << "\n";
        out << "  repro:     psim_cli fuzz --seed " << s.seed << "\n";
    }
    out << "fuzz: " << report.seedsRun << " seeds x "
        << fuzzSchemes().size() << " schemes, " << report.loadsChecked
        << " loads checked, " << report.failures << " divergent\n";

    if (!report.ok() && !opts.reproPath.empty()) {
        std::ofstream repro(opts.reproPath, std::ios::trunc);
        if (repro) {
            for (const SeedOutcome &s : report.outcomes) {
                if (s.ok)
                    continue;
                repro << "seed " << s.seed << ": " << s.detail << "\n"
                      << "  program:   " << s.spec << "\n";
                if (!s.minimized.empty())
                    repro << "  minimized: " << s.minimized << "\n";
                repro << "  repro:     psim_cli fuzz --seed " << s.seed
                      << "\n";
            }
            repro.flush();
        } else {
            psim_warn("cannot write fuzz repro file '%s'",
                    opts.reproPath.c_str());
        }
    }
    return report;
}

} // namespace psim::check
