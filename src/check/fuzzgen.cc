#include "check/fuzzgen.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

namespace psim::check
{

namespace
{

/** Lane stride for counters/records/locks: one lane per cache block
 *  for every block size the fuzzer runs (<= 64 bytes). */
constexpr unsigned kLaneStride = 64;

/** RandomMix: words in each thread's private region. */
constexpr unsigned kMixWords = 64;

/** Words in the read-only shared table RandomMix reads from. */
constexpr unsigned kTableWords = 128;

/** Sweep/mix strides offered to the generator (all word-aligned):
 *  block multiples, non-block multiples, and page-straddling values
 *  around the 4 KB boundary. Sign is a separate coin flip. */
constexpr std::int64_t kStrides[] = {
    4,   8,   12,  16,   20,   32,   36,   40,   48,   64,   68,  96,
    128, 244, 256, 260,  512,  1020, 1024, 2048, 4092, 4096, 4100,
};

/** One pre-drawn RandomMix operation. The simulated thread and the
 *  native model both consume this list, so they cannot drift. */
struct MixOp
{
    enum class Op : std::uint8_t
    {
        Read,
        Write,
        TableRead,
        Think,
    };
    Op op = Op::Read;
    Addr addr = 0;
    std::uint32_t value = 0;
    Tick think = 0;
};

std::vector<MixOp>
mixOps(Rng rng, const PhaseSpec &ph, Addr base, Addr table)
{
    std::vector<MixOp> ops;
    ops.reserve(ph.iters);
    for (unsigned i = 0; i < ph.iters; ++i) {
        MixOp op;
        switch (rng.below(4)) {
        case 0:
            op.op = MixOp::Op::Read;
            op.addr = base + rng.below(kMixWords) * 4;
            break;
        case 1:
            op.op = MixOp::Op::Write;
            op.addr = base + rng.below(kMixWords) * 4;
            op.value = static_cast<std::uint32_t>(rng.next());
            break;
        case 2:
            op.op = MixOp::Op::TableRead;
            op.addr = table + rng.below(kTableWords) * 4;
            break;
        default:
            op.op = MixOp::Op::Think;
            op.think = static_cast<Tick>(rng.below(6) + 1);
            break;
        }
        ops.push_back(op);
    }
    return ops;
}

} // namespace

const char *
toString(PhaseSpec::Kind k)
{
    switch (k) {
    case PhaseSpec::Kind::StridedSweep:
        return "sweep";
    case PhaseSpec::Kind::SharedCounter:
        return "counter";
    case PhaseSpec::Kind::Migratory:
        return "migratory";
    case PhaseSpec::Kind::ProducerConsumer:
        return "pc";
    case PhaseSpec::Kind::RandomMix:
        return "mix";
    }
    return "?";
}

ProgramSpec
ProgramSpec::generate(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL);
    ProgramSpec spec;
    spec.seed = seed;
    static constexpr unsigned kThreadChoices[] = {2, 4, 8};
    spec.threads = kThreadChoices[rng.below(3)];
    spec.degree = static_cast<unsigned>(1 + rng.below(3));
    unsigned nphases = static_cast<unsigned>(2 + rng.below(4));
    constexpr std::size_t nstrides =
            sizeof(kStrides) / sizeof(kStrides[0]);
    for (unsigned p = 0; p < nphases; ++p) {
        PhaseSpec ph;
        ph.kind = static_cast<PhaseSpec::Kind>(
                rng.below(PhaseSpec::kNumKinds));
        ph.iters = static_cast<unsigned>(8 + rng.below(57)); // 8..64
        ph.lanes = static_cast<unsigned>(1 + rng.below(6));  // 1..6
        std::int64_t s = kStrides[rng.below(nstrides)];
        ph.stride = rng.chance(0.5) ? -s : s;
        ph.salt = rng.next();
        spec.phases.push_back(ph);
    }
    return spec;
}

std::string
ProgramSpec::describe() const
{
    std::string s = strfmt("seed=%llu threads=%u degree=%u phases=[",
            (unsigned long long)seed, threads, degree);
    for (std::size_t p = 0; p < phases.size(); ++p) {
        const PhaseSpec &ph = phases[p];
        if (p)
            s += " ";
        if (!ph.enabled)
            s += "!";
        s += strfmt("%s(stride=%lld,iters=%u,lanes=%u)",
                toString(ph.kind), (long long)ph.stride, ph.iters,
                ph.lanes);
    }
    s += "]";
    return s;
}

unsigned
ProgramSpec::enabledPhases() const
{
    unsigned n = 0;
    for (const PhaseSpec &ph : phases)
        n += ph.enabled ? 1 : 0;
    return n;
}

FuzzWorkload::FuzzWorkload(ProgramSpec spec)
    : Workload(1), _spec(std::move(spec))
{
    psim_assert(!_spec.phases.empty(), "fuzz program without phases");
    psim_assert(_spec.threads >= 1, "fuzz program without threads");
}

std::uint32_t
FuzzWorkload::initValue(Addr a) const
{
    std::uint32_t v = static_cast<std::uint32_t>(a) * 2654435761u;
    v ^= static_cast<std::uint32_t>(a >> 16);
    v ^= static_cast<std::uint32_t>(_spec.seed) |
         static_cast<std::uint32_t>(_spec.seed >> 32);
    return v;
}

Addr
FuzzWorkload::sweepAddr(const PhaseSpec &ph, const PhaseLayout &lay,
                        unsigned tid, unsigned i) const
{
    std::int64_t start =
            static_cast<std::int64_t>(lay.region + tid * lay.span);
    if (ph.stride < 0)
        start += static_cast<std::int64_t>(ph.iters - 1) * -ph.stride;
    return static_cast<Addr>(start +
            static_cast<std::int64_t>(i) * ph.stride);
}

Rng
FuzzWorkload::phaseRng(unsigned tid, std::size_t phase) const
{
    std::uint64_t s = _spec.seed;
    s ^= 0x9e3779b97f4a7c15ULL * (tid + 1);
    s ^= 0xbf58476d1ce4e5b9ULL * (phase + 1);
    s ^= _spec.phases[phase].salt;
    return Rng(s);
}

void
FuzzWorkload::setup(Machine &m)
{
    psim_assert(m.numProcs() == _spec.threads,
            "fuzz program needs one processor per thread "
            "(program has %u, machine has %u)",
            _spec.threads, m.numProcs());
    BackingStore &store = m.store();
    apps::ShmAllocator &a = shm();

    _barrier = a.allocSync();
    _sharedTable = a.alloc(kTableWords * 4, kLaneStride);
    for (unsigned w = 0; w < kTableWords; ++w)
        store.store<std::uint32_t>(_sharedTable + w * 4,
                initValue(_sharedTable + w * 4));

    _lay.clear();
    _lay.resize(_spec.phases.size());
    // Allocate disabled phases too: shrinking then never moves the
    // regions of the phases that stay, so a minimized repro replays
    // the surviving phases at their original addresses.
    for (std::size_t p = 0; p < _spec.phases.size(); ++p) {
        const PhaseSpec &ph = _spec.phases[p];
        PhaseLayout &lay = _lay[p];
        switch (ph.kind) {
        case PhaseSpec::Kind::StridedSweep: {
            std::int64_t mag = ph.stride < 0 ? -ph.stride : ph.stride;
            lay.span = (static_cast<std::size_t>(mag) * ph.iters + 15) &
                       ~static_cast<std::size_t>(7);
            lay.region = a.alloc(_spec.threads * lay.span, kLaneStride);
            for (unsigned t = 0; t < _spec.threads; ++t) {
                for (unsigned i = 0; i < ph.iters; ++i) {
                    Addr w = sweepAddr(ph, lay, t, i);
                    store.store<std::uint32_t>(w, initValue(w));
                }
            }
            break;
        }
        case PhaseSpec::Kind::SharedCounter:
        case PhaseSpec::Kind::Migratory:
            lay.region = a.alloc(ph.lanes * kLaneStride, kLaneStride);
            lay.locks = a.alloc(ph.lanes * kLaneStride, kLaneStride);
            for (unsigned l = 0; l < ph.lanes; ++l) {
                Addr rec = lay.region + l * kLaneStride;
                store.store<std::uint32_t>(rec, initValue(rec));
                store.store<std::uint32_t>(rec + 4, initValue(rec + 4));
            }
            break;
        case PhaseSpec::Kind::ProducerConsumer:
            lay.region = a.alloc(_spec.threads * ph.lanes * 4,
                    kLaneStride);
            lay.out = a.alloc(_spec.threads * 4, kLaneStride);
            for (unsigned t = 0; t < _spec.threads; ++t) {
                for (unsigned j = 0; j < ph.lanes; ++j) {
                    Addr s = lay.region + (t * ph.lanes + j) * 4;
                    store.store<std::uint32_t>(s, initValue(s));
                }
                Addr o = lay.out + t * 4;
                store.store<std::uint32_t>(o, initValue(o));
            }
            break;
        case PhaseSpec::Kind::RandomMix:
            lay.span = kMixWords * 4;
            lay.region = a.alloc(_spec.threads * lay.span, kLaneStride);
            for (unsigned t = 0; t < _spec.threads; ++t) {
                for (unsigned w = 0; w < kMixWords; ++w) {
                    Addr addr = lay.region + t * lay.span + w * 4;
                    store.store<std::uint32_t>(addr, initValue(addr));
                }
            }
            break;
        }
    }
    computeExpected();
}

Task
FuzzWorkload::thread(apps::ThreadCtx &ctx)
{
    return run(ctx);
}

Task
FuzzWorkload::run(apps::ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    for (std::size_t p = 0; p < _spec.phases.size(); ++p) {
        const PhaseSpec &ph = _spec.phases[p];
        const PhaseLayout &lay = _lay[p];
        if (!ph.enabled) {
            co_await ctx.barrier(_barrier);
            continue;
        }
        switch (ph.kind) {
        case PhaseSpec::Kind::StridedSweep:
            // Disjoint per-thread regions: a read-modify-write walk at
            // the spec's stride (negative strides walk downwards).
            for (unsigned i = 0; i < ph.iters; ++i) {
                Addr w = sweepAddr(ph, lay, tid, i);
                std::uint32_t v =
                        co_await ctx.read<std::uint32_t>(w);
                co_await ctx.write<std::uint32_t>(w, v + tid + 1 + i);
            }
            break;
        case PhaseSpec::Kind::SharedCounter:
            // Commutative lock-protected increments: the final counter
            // value is order-independent, so it is identical across
            // schemes even though the interleaving is not.
            for (unsigned i = 0; i < ph.iters; ++i) {
                unsigned lane = (tid + i) % ph.lanes;
                Addr lk = lay.locks + lane * kLaneStride;
                Addr ctr = lay.region + lane * kLaneStride;
                co_await ctx.lock(lk);
                std::uint32_t v =
                        co_await ctx.read<std::uint32_t>(ctr);
                co_await ctx.write<std::uint32_t>(ctr, v + tid + 1);
                co_await ctx.unlock(lk);
            }
            break;
        case PhaseSpec::Kind::Migratory:
            // Every thread updates the same hot records in turn, so
            // the blocks migrate between writers. Updates commute.
            for (unsigned i = 0; i < ph.iters; ++i) {
                unsigned lane = i % ph.lanes;
                Addr lk = lay.locks + lane * kLaneStride;
                Addr rec = lay.region + lane * kLaneStride;
                co_await ctx.lock(lk);
                std::uint32_t v0 =
                        co_await ctx.read<std::uint32_t>(rec);
                std::uint32_t v1 =
                        co_await ctx.read<std::uint32_t>(rec + 4);
                co_await ctx.write<std::uint32_t>(rec,
                        v0 + (tid + 1) * (i + 1));
                co_await ctx.write<std::uint32_t>(rec + 4, v1 + tid + 1);
                co_await ctx.unlock(lk);
                co_await ctx.think(3);
            }
            break;
        case PhaseSpec::Kind::ProducerConsumer: {
            // Barrier-staged rounds: every thread produces into its own
            // slots, then consumes its neighbour's. Both stages are
            // deterministic, so the result is too.
            unsigned rounds = ph.iters / 8 + 1;
            for (unsigned r = 0; r < rounds; ++r) {
                for (unsigned j = 0; j < ph.lanes; ++j) {
                    Addr s = lay.region + (tid * ph.lanes + j) * 4;
                    std::uint32_t v =
                            co_await ctx.read<std::uint32_t>(s);
                    co_await ctx.write<std::uint32_t>(s,
                            v + (tid + 1) * (r + j + 1));
                }
                co_await ctx.barrier(_barrier);
                unsigned peer = (tid + 1) % _spec.threads;
                std::uint32_t sum = 0;
                for (unsigned j = 0; j < ph.lanes; ++j) {
                    Addr s = lay.region + (peer * ph.lanes + j) * 4;
                    sum += co_await ctx.read<std::uint32_t>(s);
                }
                Addr o = lay.out + tid * 4;
                std::uint32_t acc =
                        co_await ctx.read<std::uint32_t>(o);
                co_await ctx.write<std::uint32_t>(o, acc + sum);
                co_await ctx.barrier(_barrier);
            }
            break;
        }
        case PhaseSpec::Kind::RandomMix: {
            // The op list is pre-drawn from (seed, tid, phase) alone;
            // computeExpected() consumes the identical list.
            auto ops = mixOps(phaseRng(tid, p), ph,
                    lay.region + tid * lay.span, _sharedTable);
            for (const MixOp &op : ops) {
                switch (op.op) {
                case MixOp::Op::Read:
                case MixOp::Op::TableRead:
                    (void)co_await ctx.read<std::uint32_t>(op.addr);
                    break;
                case MixOp::Op::Write:
                    co_await ctx.write<std::uint32_t>(op.addr,
                            op.value);
                    break;
                case MixOp::Op::Think:
                    co_await ctx.think(op.think);
                    break;
                }
            }
            break;
        }
        }
        co_await ctx.barrier(_barrier);
    }
}

void
FuzzWorkload::computeExpected()
{
    _expected.clear();
    // Native model of the program. For each location the program
    // touches, start from the initialization pattern and apply the
    // phase semantics; lock-protected updates commute, so replaying
    // them thread-major is equivalent to any real interleaving.
    auto at = [this](Addr a) -> std::uint32_t & {
        auto it = _expected.find(a);
        if (it == _expected.end())
            it = _expected.emplace(a, initValue(a)).first;
        return it->second;
    };

    for (std::size_t p = 0; p < _spec.phases.size(); ++p) {
        const PhaseSpec &ph = _spec.phases[p];
        const PhaseLayout &lay = _lay[p];
        if (!ph.enabled)
            continue;
        switch (ph.kind) {
        case PhaseSpec::Kind::StridedSweep:
            for (unsigned t = 0; t < _spec.threads; ++t) {
                for (unsigned i = 0; i < ph.iters; ++i)
                    at(sweepAddr(ph, lay, t, i)) += t + 1 + i;
            }
            break;
        case PhaseSpec::Kind::SharedCounter:
            for (unsigned t = 0; t < _spec.threads; ++t) {
                for (unsigned i = 0; i < ph.iters; ++i) {
                    unsigned lane = (t + i) % ph.lanes;
                    at(lay.region + lane * kLaneStride) += t + 1;
                }
            }
            break;
        case PhaseSpec::Kind::Migratory:
            for (unsigned t = 0; t < _spec.threads; ++t) {
                for (unsigned i = 0; i < ph.iters; ++i) {
                    unsigned lane = i % ph.lanes;
                    Addr rec = lay.region + lane * kLaneStride;
                    at(rec) += (t + 1) * (i + 1);
                    at(rec + 4) += t + 1;
                }
            }
            break;
        case PhaseSpec::Kind::ProducerConsumer: {
            unsigned rounds = ph.iters / 8 + 1;
            for (unsigned r = 0; r < rounds; ++r) {
                for (unsigned t = 0; t < _spec.threads; ++t) {
                    for (unsigned j = 0; j < ph.lanes; ++j) {
                        at(lay.region + (t * ph.lanes + j) * 4) +=
                                (t + 1) * (r + j + 1);
                    }
                }
                for (unsigned t = 0; t < _spec.threads; ++t) {
                    unsigned peer = (t + 1) % _spec.threads;
                    std::uint32_t sum = 0;
                    for (unsigned j = 0; j < ph.lanes; ++j)
                        sum += at(lay.region +
                                (peer * ph.lanes + j) * 4);
                    at(lay.out + t * 4) += sum;
                }
            }
            break;
        }
        case PhaseSpec::Kind::RandomMix:
            for (unsigned t = 0; t < _spec.threads; ++t) {
                auto ops = mixOps(phaseRng(t, p), ph,
                        lay.region + t * lay.span, _sharedTable);
                for (const MixOp &op : ops) {
                    if (op.op == MixOp::Op::Write)
                        at(op.addr) = op.value;
                }
            }
            break;
        }
    }
}

bool
FuzzWorkload::verify(Machine &m)
{
    for (const auto &[addr, want] : _expected) {
        if (m.store().load<std::uint32_t>(addr) != want)
            return false;
    }
    return true;
}

std::uint64_t
FuzzWorkload::expectedDigest() const
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    for (const auto &[addr, val] : _expected) {
        mix(addr);
        mix(val);
    }
    return h;
}

} // namespace psim::check
