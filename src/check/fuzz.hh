/**
 * @file
 * The differential fuzzing driver.
 *
 * For every seed, generate one program (fuzzgen.hh) and run it on all
 * five of the paper's scheme configurations -- baseline (no
 * prefetching), sequential, I-detection stride, D-detection stride,
 * and adaptive sequential. Every run is checked four ways:
 *
 *  1. the machine must quiesce within the tick limit;
 *  2. the workload's native model must verify the final values;
 *  3. the SC oracle (oracle.hh) must accept the committed access log,
 *     the final image, the page rule, and the audit fate ledger;
 *  4. the final memory image digest must be identical across all
 *     schemes (the program is data-race-free and commutative by
 *     construction, so every scheme must compute the same result).
 *
 * Seeds fan out over a thread pool (runGrid) -- each seed's machines
 * are self-contained and single-threaded -- and results print in seed
 * order, so output is byte-identical at any --jobs count. On
 * divergence the driver prints the seed, the first divergences, and a
 * greedily minimized repro (shrink.hh), and can write the repro to a
 * file for CI artifact upload.
 */

#ifndef PSIM_CHECK_FUZZ_HH
#define PSIM_CHECK_FUZZ_HH

#include <ostream>
#include <string>
#include <vector>

#include "check/fuzzgen.hh"
#include "check/oracle.hh"
#include "sim/config.hh"

namespace psim::check
{

/** The scheme set every seed is cross-checked over. */
const std::vector<PrefetchScheme> &fuzzSchemes();

struct FuzzOptions
{
    /** Explicit seed list; when empty, seedStart..seedStart+numSeeds. */
    std::vector<std::uint64_t> seeds;
    std::uint64_t seedStart = 1;
    unsigned numSeeds = 20;

    unsigned jobs = 1;
    bool shrink = true;
    unsigned shrinkBudget = 48;

    /**
     * Engine under test: 0 = classic serial engine, N >= 1 = windowed
     * parallel engine with N shards per machine. The oracle consumes
     * the canonically merged commit stream either way, so the whole
     * correctness stack gates the sharded engine directly.
     */
    unsigned shards = 0;

    /** Quiesce deadline per run; exceeding it is itself a failure. */
    Tick tickLimit = 50'000'000;

    /** Fault injection for self-tests (inert by default). */
    TestHooks hooks{};

    /** When non-empty, failing-seed repro report is written here. */
    std::string reproPath;
};

/** Everything one (spec, scheme) run produced. */
struct SchemeRun
{
    bool finished = false;
    bool verified = false;
    std::uint64_t imageDigest = 0;
    OracleReport oracle;
};

struct SeedOutcome
{
    std::uint64_t seed = 0;
    bool ok = true;
    std::uint64_t loadsChecked = 0;
    std::string detail;    ///< failure description (empty when ok)
    std::string spec;      ///< describe() of the generated program
    std::string minimized; ///< describe() of the shrunk repro
};

struct FuzzReport
{
    std::uint64_t seedsRun = 0;
    std::uint64_t failures = 0;
    std::uint64_t loadsChecked = 0;
    std::vector<SeedOutcome> outcomes; ///< seed order
    bool ok() const { return failures == 0; }
};

/**
 * Run one program under one scheme with commit recording, the SC
 * oracle, and the native verifier, on the serial engine (shards = 0)
 * or the sharded one. Exposed for tests (the page-rule property test
 * and the oracle mutant tests drive it directly).
 */
SchemeRun runOneScheme(const ProgramSpec &spec, PrefetchScheme scheme,
                       const TestHooks &hooks, Tick tick_limit,
                       unsigned shards = 0);

/**
 * Differential check of one program over all schemes. Returns true
 * when some check failed; @p why (may be null) receives a description.
 */
bool specDiverges(const ProgramSpec &spec, const TestHooks &hooks,
                  Tick tick_limit, std::string *why,
                  unsigned shards = 0);

/** The full driver: fan seeds out, check, shrink failures, report. */
FuzzReport runFuzz(const FuzzOptions &opts, std::ostream &out);

} // namespace psim::check

#endif // PSIM_CHECK_FUZZ_HH
