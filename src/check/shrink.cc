#include "check/shrink.hh"

namespace psim::check
{

namespace
{

/** All one-step simplifications of @p spec, simplest-first. */
std::vector<ProgramSpec>
candidates(const ProgramSpec &spec)
{
    std::vector<ProgramSpec> out;

    // 1. Disable one phase (keep at least one enabled).
    if (spec.enabledPhases() > 1) {
        for (std::size_t p = 0; p < spec.phases.size(); ++p) {
            if (!spec.phases[p].enabled)
                continue;
            ProgramSpec c = spec;
            c.phases[p].enabled = false;
            out.push_back(std::move(c));
        }
    }

    // 2. Halve the thread count (machine shrinks with it).
    if (spec.threads > 2) {
        ProgramSpec c = spec;
        c.threads /= 2;
        out.push_back(std::move(c));
    }

    // 3. Halve one phase's iteration count.
    for (std::size_t p = 0; p < spec.phases.size(); ++p) {
        if (!spec.phases[p].enabled || spec.phases[p].iters <= 4)
            continue;
        ProgramSpec c = spec;
        c.phases[p].iters /= 2;
        out.push_back(std::move(c));
    }

    // 4. Halve one phase's lanes.
    for (std::size_t p = 0; p < spec.phases.size(); ++p) {
        if (!spec.phases[p].enabled || spec.phases[p].lanes <= 1)
            continue;
        ProgramSpec c = spec;
        c.phases[p].lanes /= 2;
        out.push_back(std::move(c));
    }

    return out;
}

} // namespace

ShrinkResult
shrink(const ProgramSpec &failing, const FailPredicate &stillFails,
       unsigned budget)
{
    ShrinkResult res;
    res.spec = failing;

    bool improved = true;
    while (improved && res.attempts < budget) {
        improved = false;
        for (ProgramSpec &cand : candidates(res.spec)) {
            if (res.attempts >= budget)
                break;
            ++res.attempts;
            if (stillFails(cand)) {
                res.spec = std::move(cand);
                ++res.improvements;
                improved = true;
                break; // re-derive candidates from the smaller spec
            }
        }
    }
    return res;
}

} // namespace psim::check
