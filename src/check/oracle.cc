#include "check/oracle.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "sim/audit.hh"
#include "sim/logging.hh"

namespace psim::check
{

const char *
toString(Divergence::Kind k)
{
    switch (k) {
    case Divergence::Kind::LoadValue:
        return "load-value";
    case Divergence::Kind::FinalImage:
        return "final-image";
    case Divergence::Kind::PageCross:
        return "page-cross";
    case Divergence::Kind::Ledger:
        return "fate-ledger";
    }
    return "?";
}

namespace
{

/** Up-to-8 little-endian bytes as one hex literal (MSB first). */
std::string
hexValue(const std::uint8_t (&bytes)[8], unsigned len)
{
    std::string s = "0x";
    for (unsigned i = len; i-- > 0;)
        s += strfmt("%02x", bytes[i]);
    return s;
}

std::uint64_t
asU64(const std::uint8_t (&bytes)[8])
{
    std::uint64_t v;
    std::memcpy(&v, bytes, sizeof(v));
    return v;
}

} // namespace

std::string
Divergence::describe() const
{
    switch (kind) {
    case Kind::LoadValue:
        return strfmt("load-value: node %u tick %llu addr %#llx "
                      "(%u bytes): machine returned %s, SC replay of "
                      "access #%zu expects %s",
                      node, (unsigned long long)tick,
                      (unsigned long long)addr, len,
                      hexValue(got, len).c_str(), seq,
                      hexValue(expected, len).c_str());
    case Kind::FinalImage:
        return strfmt("final-image: addr %#llx holds %s, the replayed "
                      "SC image has %s",
                      (unsigned long long)addr,
                      hexValue(got, len).c_str(),
                      hexValue(expected, len).c_str());
    case Kind::PageCross:
        // expected[] carries the triggering demand address.
        return strfmt("page-cross: node %u tick %llu issued a prefetch "
                      "for block %#llx outside the page of its trigger "
                      "%#llx",
                      node, (unsigned long long)tick,
                      (unsigned long long)addr,
                      (unsigned long long)asU64(expected));
    case Kind::Ledger:
        return strfmt("fate-ledger: node %u issued %llu prefetches but "
                      "its terminal fates sum to %llu",
                      node, (unsigned long long)asU64(expected),
                      (unsigned long long)asU64(got));
    }
    return "?";
}

void
Oracle::snapshotInitial(const BackingStore &store)
{
    _initial.clear();
    store.forEachPage(
            [this](Addr base, const std::uint8_t *bytes, unsigned len) {
                _initial.emplace_back(base,
                        std::vector<std::uint8_t>(bytes, bytes + len));
            });
}

OracleReport
Oracle::check(const AccessLog &log, const BackingStore &final_store,
              const audit::LedgerSnapshot *ledger) const
{
    OracleReport rep;
    auto add = [&rep](const Divergence &d) {
        ++rep.total;
        if (rep.divergences.size() < kMaxReported)
            rep.divergences.push_back(d);
    };

    // 1. Replay the committed access order against the shadow memory,
    //    checking every load value against what an SC memory holds at
    //    that point. The shadow is never "resynchronized" from a bad
    //    load: it tracks what memory must contain given the recorded
    //    stores, which is the canonical image.
    BackingStore shadow(_pageSize);
    for (const auto &[base, bytes] : _initial)
        shadow.write(base, bytes.data(),
                static_cast<unsigned>(bytes.size()));

    const auto &accesses = log.accesses();
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        const AccessRecord &rec = accesses[i];
        psim_assert(rec.len <= 8, "oversized access record");
        if (rec.kind == AccessRecord::Kind::Write) {
            shadow.write(rec.addr, rec.value, rec.len);
            ++rep.storesReplayed;
            continue;
        }
        ++rep.loadsChecked;
        std::uint8_t expect[8]{};
        shadow.read(rec.addr, expect, rec.len);
        if (std::memcmp(expect, rec.value, rec.len) != 0) {
            Divergence d;
            d.kind = Divergence::Kind::LoadValue;
            d.seq = i;
            d.tick = rec.tick;
            d.node = rec.node;
            d.addr = rec.addr;
            d.len = rec.len;
            std::memcpy(d.expected, expect, sizeof(d.expected));
            std::memcpy(d.got, rec.value, sizeof(d.got));
            add(d);
        }
    }

    // 2. Final image: after all stores replayed, the shadow and the
    //    machine's functional memory must agree bytewise. Both are
    //    sparse with absent pages reading as zero, so compare the
    //    union of their materialized pages (in address order, for
    //    deterministic reports).
    std::map<Addr, std::vector<std::uint8_t>> shadow_img, final_img;
    shadow.forEachPage(
            [&](Addr base, const std::uint8_t *bytes, unsigned len) {
                shadow_img.emplace(base,
                        std::vector<std::uint8_t>(bytes, bytes + len));
            });
    final_store.forEachPage(
            [&](Addr base, const std::uint8_t *bytes, unsigned len) {
                final_img.emplace(base,
                        std::vector<std::uint8_t>(bytes, bytes + len));
            });
    const std::vector<std::uint8_t> zeros(_pageSize, 0);
    auto pageOf = [&](const std::map<Addr, std::vector<std::uint8_t>> &img,
                      Addr base) -> const std::vector<std::uint8_t> & {
        auto it = img.find(base);
        return it == img.end() ? zeros : it->second;
    };
    std::map<Addr, bool> bases;
    for (const auto &[base, bytes] : shadow_img)
        bases[base] = true;
    for (const auto &[base, bytes] : final_img)
        bases[base] = true;
    for (const auto &[base, unused] : bases) {
        (void)unused;
        const auto &want = pageOf(shadow_img, base);
        const auto &got = pageOf(final_img, base);
        for (unsigned off = 0; off < _pageSize; off += 8) {
            unsigned n = std::min(8u, _pageSize - off);
            if (std::memcmp(want.data() + off, got.data() + off, n) == 0)
                continue;
            Divergence d;
            d.kind = Divergence::Kind::FinalImage;
            d.addr = base + off;
            d.len = n;
            std::memcpy(d.expected, want.data() + off, n);
            std::memcpy(d.got, got.data() + off, n);
            add(d);
        }
    }

    // 3. The page rule: an issued prefetch must stay inside the page
    //    of the demand access that triggered it (paper Section 2).
    for (const auto &p : log.prefetchIssues()) {
        ++rep.prefetchesChecked;
        if (alignDown(p.block, _pageSize) ==
            alignDown(p.trigger, _pageSize))
            continue;
        Divergence d;
        d.kind = Divergence::Kind::PageCross;
        d.tick = p.tick;
        d.node = p.node;
        d.addr = p.block;
        d.len = 8;
        std::uint64_t trig = p.trigger;
        std::memcpy(d.expected, &trig, sizeof(trig));
        add(d);
    }

    // 4. The audit fate ledger, re-verified independently of the
    //    audit's own finalize(): every issue has exactly one terminal
    //    fate, so per node issued == sum of fates (and no issue may
    //    still carry the non-terminal fate None).
    if (ledger) {
        for (std::size_t n = 0; n < ledger->nodes.size(); ++n) {
            const auto &node = ledger->nodes[n];
            std::uint64_t fates = 0;
            for (std::size_t f = 1; f < audit::kNumFates; ++f)
                fates += node.fates[f];
            if (fates == node.issued && node.fates[0] == 0)
                continue;
            Divergence d;
            d.kind = Divergence::Kind::Ledger;
            d.node = static_cast<NodeId>(n);
            d.len = 8;
            std::uint64_t issued = node.issued;
            std::memcpy(d.expected, &issued, sizeof(issued));
            std::memcpy(d.got, &fates, sizeof(fates));
            add(d);
        }
    }

    return rep;
}

} // namespace psim::check
