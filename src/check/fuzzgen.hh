/**
 * @file
 * Seeded synthetic-workload generator for differential fuzzing.
 *
 * A ProgramSpec is a small grammar instance: a thread count, a
 * prefetch degree, and a list of phases, each one of five sharing
 * patterns (strided sweeps with positive/negative and page-straddling
 * strides, lock-protected shared counters, migratory records,
 * barrier-staged producer/consumer rounds, and a seeded random mix of
 * private accesses). ProgramSpec::generate(seed) derives every choice
 * deterministically from the seed, and FuzzWorkload executes the spec
 * through the ordinary apps::Ctx task API -- so a fuzz program is a
 * first-class workload and exercises the full machine.
 *
 * Two properties are load-bearing for differential checking:
 *
 *  - programs are data-race-free by construction: cross-thread
 *    communication happens only under locks or across barriers, and
 *    every lock-protected update is commutative -- so the final memory
 *    image is a deterministic function of the spec, identical across
 *    schemes, timings and job counts;
 *
 *  - every random choice a simulated thread makes is drawn from an Rng
 *    seeded by (spec seed, thread, phase) alone, never from machine
 *    state -- so the native model in verify() can replay the program
 *    exactly.
 */

#ifndef PSIM_CHECK_FUZZGEN_HH
#define PSIM_CHECK_FUZZGEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/workload.hh"

namespace psim::check
{

/** One phase of a generated program. */
struct PhaseSpec
{
    enum class Kind : std::uint8_t
    {
        StridedSweep,     ///< per-thread disjoint strided read+write walk
        SharedCounter,    ///< lock-protected commutative counters
        Migratory,        ///< one hot record per lane, migrating writers
        ProducerConsumer, ///< barrier-staged produce/consume rounds
        RandomMix,        ///< seeded random private ops + shared reads
    };
    static constexpr unsigned kNumKinds = 5;

    Kind kind = Kind::StridedSweep;

    /** Shrinking disables phases instead of deleting them, so the
     *  shared-memory layout (and thus the repro) stays stable. */
    bool enabled = true;

    /** Sweep stride in bytes; may be negative, a non-multiple of the
     *  block size, and larger than a page (page-straddling). */
    std::int64_t stride = 64;

    unsigned iters = 32; ///< per-thread operations (or rounds)
    unsigned lanes = 4;  ///< counters / records / slots per thread
    std::uint64_t salt = 0; ///< extra seed material (RandomMix)
};

const char *toString(PhaseSpec::Kind k);

/** A complete generated program. */
struct ProgramSpec
{
    std::uint64_t seed = 0;
    unsigned threads = 4;
    unsigned degree = 1; ///< prefetch degree the runs use
    std::vector<PhaseSpec> phases;

    /** Derive a full program deterministically from @p seed. */
    static ProgramSpec generate(std::uint64_t seed);

    /** One-line grammar rendering (seed, threads, every phase). */
    std::string describe() const;

    unsigned enabledPhases() const;
};

/**
 * Executes a ProgramSpec as a workload. setup() lays out and
 * initializes the shared regions, thread() runs the phases separated
 * by barriers, and verify() checks the final memory image against the
 * natively computed expectation.
 */
class FuzzWorkload : public apps::Workload
{
  public:
    explicit FuzzWorkload(ProgramSpec spec);

    const char *name() const override { return "fuzz"; }
    void setup(Machine &m) override;
    Task thread(apps::ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    /**
     * FNV-1a digest over the natively expected final values, usable as
     * a scheme-independent fingerprint of the program's result.
     */
    std::uint64_t expectedDigest() const;

  private:
    /** Per-phase shared-memory layout (all addresses 4-byte words). */
    struct PhaseLayout
    {
        Addr region = 0;   ///< sweep area / record array / slot array
        Addr locks = 0;    ///< lane locks (sync-aligned, lane-strided)
        Addr out = 0;      ///< per-thread deterministic result words
        std::size_t span = 0; ///< per-thread bytes within region
    };

    Task run(apps::ThreadCtx &ctx);

    /** Native model: replay the program into _expected. */
    void computeExpected();

    std::uint32_t initValue(Addr a) const;
    Addr sweepAddr(const PhaseSpec &ph, const PhaseLayout &lay,
                   unsigned tid, unsigned i) const;
    Rng phaseRng(unsigned tid, std::size_t phase) const;

    ProgramSpec _spec;
    Addr _barrier = 0;
    Addr _sharedTable = 0; ///< read-only table (RandomMix reads it)
    std::vector<PhaseLayout> _lay;
    std::map<Addr, std::uint32_t> _expected;
};

} // namespace psim::check

#endif // PSIM_CHECK_FUZZGEN_HH
