/**
 * @file
 * Greedy repro minimizer for failing fuzz programs.
 *
 * Given a ProgramSpec that fails (by whatever predicate the caller
 * supplies -- normally "some scheme still diverges from the oracle"),
 * shrink() repeatedly tries simplifying transformations and keeps each
 * one that still fails: disabling whole phases, halving iteration
 * counts, halving lanes, and halving the thread count. The result is
 * the smallest program the greedy descent can reach within its
 * predicate budget -- typically one phase and a handful of iterations,
 * which is what a human wants to stare at.
 *
 * Phases are disabled, never deleted, so the shared-memory layout of
 * the surviving phases is unchanged and the minimized spec replays the
 * failure at the original addresses.
 */

#ifndef PSIM_CHECK_SHRINK_HH
#define PSIM_CHECK_SHRINK_HH

#include <functional>

#include "check/fuzzgen.hh"

namespace psim::check
{

/** Does this spec still fail? (true = keep shrinking toward it) */
using FailPredicate = std::function<bool(const ProgramSpec &)>;

struct ShrinkResult
{
    ProgramSpec spec;          ///< smallest still-failing spec found
    unsigned attempts = 0;     ///< predicate evaluations spent
    unsigned improvements = 0; ///< accepted simplifications
};

/**
 * Minimize @p failing under @p stillFails, spending at most @p budget
 * predicate evaluations. @p failing must itself fail the predicate.
 */
ShrinkResult shrink(const ProgramSpec &failing,
                    const FailPredicate &stillFails,
                    unsigned budget = 64);

} // namespace psim::check

#endif // PSIM_CHECK_SHRINK_HH
