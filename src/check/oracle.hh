/**
 * @file
 * Sequentially-consistent reference memory model (the differential
 * oracle).
 *
 * The machine records every committed access into an AccessLog (see
 * access_log.hh). The oracle replays that log against its own shadow
 * memory -- an independent, trivially-correct sequential model seeded
 * with the pre-run image -- and cross-checks three things:
 *
 *  1. every load value: a load must return exactly what the shadow
 *     memory holds at its commit point (a mismatch means the machine
 *     delivered stale or corrupt data);
 *  2. the final backing-store image: after replaying all stores the
 *     shadow and the machine's functional memory must be bytewise
 *     identical;
 *  3. the page rule: no issued prefetch may leave the page of the
 *     demand access that triggered it (paper Section 2);
 *
 * plus, when the invariant audit ran, the prefetch fate ledger: every
 * node's issues must equal the sum of its terminal fates.
 *
 * The oracle never looks at the timing model, the coherence protocol,
 * or the prefetchers -- which is exactly what makes its verdicts
 * independent evidence that those components returned the right data.
 */

#ifndef PSIM_CHECK_ORACLE_HH
#define PSIM_CHECK_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/access_log.hh"
#include "mem/backing_store.hh"

namespace psim::audit
{
struct LedgerSnapshot;
}

namespace psim::check
{

/** One cross-check failure, with enough context to debug it. */
struct Divergence
{
    enum class Kind : std::uint8_t
    {
        LoadValue,  ///< a load returned data the SC model disagrees with
        FinalImage, ///< final memory differs from the replayed image
        PageCross,  ///< an issued prefetch left its trigger's page
        Ledger,     ///< audit fate ledger violates conservation
    };

    Kind kind = Kind::LoadValue;
    std::size_t seq = 0; ///< index into the access log (where applicable)
    Tick tick = 0;
    NodeId node = 0;
    Addr addr = 0;
    unsigned len = 0;
    std::uint8_t expected[8]{};
    std::uint8_t got[8]{};

    /** One-line human-readable description. */
    std::string describe() const;
};

const char *toString(Divergence::Kind k);

/** Outcome of one oracle check. */
struct OracleReport
{
    /** First divergences found, capped at kMaxReported. */
    std::vector<Divergence> divergences;

    /** Total number found (may exceed divergences.size()). */
    std::uint64_t total = 0;

    std::uint64_t loadsChecked = 0;
    std::uint64_t storesReplayed = 0;
    std::uint64_t prefetchesChecked = 0;

    bool ok() const { return total == 0; }
};

class Oracle
{
  public:
    /** Divergences retained in full detail per report. */
    static constexpr std::size_t kMaxReported = 32;

    explicit Oracle(unsigned page_size = 4096) : _pageSize(page_size) {}

    /**
     * Capture the pre-run memory image (call after workload setup(),
     * before Machine::run()); the shadow replay starts from it.
     */
    void snapshotInitial(const BackingStore &store);

    /**
     * Replay @p log against the shadow memory and cross-check load
     * values, the final image of @p final_store, the prefetch page
     * rule, and (when non-null) the audit fate @p ledger.
     */
    OracleReport check(const AccessLog &log,
                       const BackingStore &final_store,
                       const audit::LedgerSnapshot *ledger) const;

  private:
    unsigned _pageSize;
    /** Pre-run image: (page base, page bytes). */
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> _initial;
};

} // namespace psim::check

#endif // PSIM_CHECK_ORACLE_HH
