/**
 * @file
 * Committed-access observation for differential checking.
 *
 * The machine can stream every *committed* shared-memory access --
 * every functional store the moment it lands in the backing store and
 * every load value the moment the processor consumes it -- into a
 * CommitSink. On the serial engine the order of onAccess() calls is
 * exactly the order in which the backing store was touched; on the
 * sharded engine the machine stages records per node and merges them at
 * every window boundary in the canonical (tick, node, per-node index)
 * order, which is the same total order a --shards 1 run executes. A
 * sequentially-consistent reference model (check::Oracle) can replay
 * either stream and re-derive every load value independently.
 *
 * Recording is observability-grade: attaching a sink never changes
 * simulated behaviour, timing, or any aggregate statistic. The sink
 * also observes prefetch issues (trigger plus prefetched block), which
 * lets the oracle enforce the paper's no-prefetch-across-page-boundary
 * rule end to end for every scheme.
 */

#ifndef PSIM_CHECK_ACCESS_LOG_HH
#define PSIM_CHECK_ACCESS_LOG_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/types.hh"

namespace psim::check
{

/** One committed shared-memory access (value included). */
struct AccessRecord
{
    enum class Kind : std::uint8_t
    {
        Read,  ///< load value consumed by a processor
        Write, ///< store committed to the backing store
    };

    Tick tick = 0;            ///< tick of the functional access
    NodeId node = 0;          ///< processor that performed it
    Kind kind = Kind::Read;
    std::uint8_t len = 0;     ///< access size in bytes (<= 8)
    Addr addr = 0;
    std::uint8_t value[8]{};  ///< the bytes loaded or stored
};

/** One issued prefetch, with the demand access that triggered it. */
struct PrefetchIssueRecord
{
    Tick tick = 0;
    NodeId node = 0;
    Addr trigger = 0; ///< byte address of the triggering demand access
    Addr block = 0;   ///< block address the prefetch was issued for
};

/** Receives committed accesses and prefetch issues during a run. */
class CommitSink
{
  public:
    virtual ~CommitSink() = default;

    virtual void onAccess(const AccessRecord &rec) = 0;

    virtual void onPrefetchIssue(const PrefetchIssueRecord &rec)
    {
        (void)rec;
    }
};

/** The default sink: append everything to in-memory vectors. */
class AccessLog : public CommitSink
{
  public:
    void
    onAccess(const AccessRecord &rec) override
    {
        _accesses.push_back(rec);
    }

    void
    onPrefetchIssue(const PrefetchIssueRecord &rec) override
    {
        _prefetches.push_back(rec);
    }

    const std::vector<AccessRecord> &accesses() const { return _accesses; }

    const std::vector<PrefetchIssueRecord> &
    prefetchIssues() const
    {
        return _prefetches;
    }

    void
    clear()
    {
        _accesses.clear();
        _prefetches.clear();
    }

  private:
    std::vector<AccessRecord> _accesses;
    std::vector<PrefetchIssueRecord> _prefetches;
};

} // namespace psim::check

#endif // PSIM_CHECK_ACCESS_LOG_HH
