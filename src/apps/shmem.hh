/**
 * @file
 * Shared-memory allocator for workloads.
 *
 * A simple bump allocator over the simulated shared address space.
 * Pages are homed round-robin by the hardware (MachineConfig::homeOf);
 * allocOnNode skips ahead to the next page whose home is a requested
 * node, which workloads use to place per-processor data locally the way
 * the ANL macros' G_MALLOC-with-placement idiom did.
 */

#ifndef PSIM_APPS_SHMEM_HH
#define PSIM_APPS_SHMEM_HH

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace psim::apps
{

class ShmAllocator
{
  public:
    explicit ShmAllocator(const MachineConfig &cfg,
                          Addr base = 0x10000000ULL)
        : _cfg(cfg), _next(base)
    {
    }

    /** Allocate @p bytes with @p align alignment. */
    Addr
    alloc(std::size_t bytes, std::size_t align = 8)
    {
        psim_assert(isPowerOf2(align), "alignment must be a power of 2");
        _next = (_next + align - 1) & ~(static_cast<Addr>(align) - 1);
        Addr a = _next;
        _next += bytes;
        return a;
    }

    /** Allocate page-aligned storage whose first page is homed at @p n. */
    Addr
    allocOnNode(std::size_t bytes, NodeId n)
    {
        _next = (_next + _cfg.pageSize - 1) &
                ~(static_cast<Addr>(_cfg.pageSize) - 1);
        while (_cfg.homeOf(_next) != n)
            _next += _cfg.pageSize;
        Addr a = _next;
        _next += bytes;
        return a;
    }

    /** Allocate a fresh block-aligned synchronization variable. */
    Addr
    allocSync()
    {
        return alloc(_cfg.blockSize, _cfg.blockSize);
    }

    Addr brk() const { return _next; }

  private:
    const MachineConfig &_cfg;
    Addr _next;
};

} // namespace psim::apps

#endif // PSIM_APPS_SHMEM_HH
