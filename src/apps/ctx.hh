/**
 * @file
 * Per-thread programming interface for simulated workloads.
 *
 * Workloads are coroutines: every shared-memory access is awaited, the
 * CPU model decides when it completes, and the coroutine resumes with
 * the loaded value (reads really return data from the functional
 * backing store, so kernels compute real results).
 *
 * Load/store sites are identified by a synthetic PC derived from
 * std::source_location: every static access site in a kernel gets a
 * stable, unique instruction address, which is exactly what I-detection
 * stride prefetching keys on (the paper requires read-miss requests to
 * carry the load's program counter).
 */

#ifndef PSIM_APPS_CTX_HH
#define PSIM_APPS_CTX_HH

#include <coroutine>
#include <cstring>
#include <source_location>

#include "check/access_log.hh"
#include "mem/backing_store.hh"
#include "sim/random.hh"
#include "sys/cpu.hh"
#include "sys/machine.hh"

namespace psim::apps
{

/** Stable synthetic PC for a static access site (word-aligned). */
inline Pc
pcOf(const std::source_location &loc)
{
    // FNV-1a over the file name, mixed with line and column. Shifted
    // left so PCs look word-aligned, as real instruction addresses do.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char *p = loc.file_name(); *p; ++p) {
        h ^= static_cast<unsigned char>(*p);
        h *= 1099511628211ULL;
    }
    h ^= static_cast<std::uint64_t>(loc.line()) * 2654435761ULL;
    h ^= static_cast<std::uint64_t>(loc.column()) * 40503ULL;
    return static_cast<Pc>(h << 2);
}

class ThreadCtx
{
  public:
    ThreadCtx(Machine &m, NodeId tid, unsigned nthreads)
        : _m(m),
          _cpu(m.node(tid).cpu()),
          _tid(tid),
          _nthreads(nthreads),
          _rng(m.cfg().seed ^ (0x9e3779b97f4a7c15ULL * (tid + 1)))
    {
    }

    unsigned tid() const { return _tid; }
    unsigned nthreads() const { return _nthreads; }
    Machine &machine() { return _m; }
    BackingStore &store() { return _m.store(); }
    Rng &rng() { return _rng; }

    // ---- awaitable shared-memory operations ----

    template <typename T>
    struct ReadOp
    {
        ThreadCtx &ctx;
        Addr addr;
        Pc pc;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ctx._cpu.issueLoad(addr, pc, h);
        }

        T
        await_resume() const
        {
            return ctx.commitLoad<T>(addr, ctx.store().load<T>(addr));
        }
    };

    struct WriteOp
    {
        ThreadCtx &ctx;
        Addr addr;
        Pc pc;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ctx._cpu.issueStore(addr, pc, h);
        }

        void await_resume() const noexcept {}
    };

    struct LockOp
    {
        ThreadCtx &ctx;
        Addr addr;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ctx._cpu.issueLock(addr, h);
        }

        void await_resume() const noexcept {}
    };

    struct UnlockOp
    {
        ThreadCtx &ctx;
        Addr addr;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ctx._cpu.issueUnlock(addr, h);
        }

        void await_resume() const noexcept {}
    };

    struct BarrierOp
    {
        ThreadCtx &ctx;
        Addr addr;
        std::uint32_t participants;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ctx._cpu.issueBarrier(addr, participants, h);
        }

        void await_resume() const noexcept {}
    };

    struct ThinkOp
    {
        ThreadCtx &ctx;
        Tick cycles;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ctx._cpu.think(cycles, h);
        }

        void await_resume() const noexcept {}
    };

    /** Read a T from shared memory. */
    template <typename T>
    ReadOp<T>
    read(Addr addr,
         const std::source_location &loc = std::source_location::current())
    {
        return ReadOp<T>{*this, addr, pcOf(loc)};
    }

    /** Write a T to shared memory (value is bound at issue time). */
    template <typename T>
    WriteOp
    write(Addr addr, const T &value,
          const std::source_location &loc =
                  std::source_location::current())
    {
        bool drop = false;
#ifdef PSIM_TEST_HOOKS
        const TestHooks &hooks = _m.cfg().testHooks;
        if (hooks.dropStorePeriod &&
            ++_storesCommitted % hooks.dropStorePeriod == 0)
            drop = true;
#endif
        if (!drop)
            store().store<T>(addr, value);
        record(check::AccessRecord::Kind::Write, addr, &value,
               sizeof(T));
        return WriteOp{*this, addr, pcOf(loc)};
    }

    /** Acquire the queue-based lock at @p addr. */
    LockOp lock(Addr addr) { return LockOp{*this, addr}; }

    /** Release the lock (waits for outstanding stores first: RC). */
    UnlockOp unlock(Addr addr) { return UnlockOp{*this, addr}; }

    /** Global barrier over all workload threads. */
    BarrierOp
    barrier(Addr addr)
    {
        return BarrierOp{*this, addr, _nthreads};
    }

    /** Model @p cycles of private computation (always FLC hits). */
    ThinkOp think(Tick cycles) { return ThinkOp{*this, cycles}; }

  private:
    /**
     * The value-commit point of a load: the value the coroutine is
     * about to consume. Applies the corrupt-read fault hook (so the
     * program really computes with the corrupted value, exactly like a
     * broken machine would) and then records what was consumed.
     */
    template <typename T>
    T
    commitLoad(Addr addr, T v)
    {
#ifdef PSIM_TEST_HOOKS
        const TestHooks &hooks = _m.cfg().testHooks;
        if (hooks.corruptReadPeriod &&
            ++_loadsCommitted % hooks.corruptReadPeriod == 0) {
            auto *bytes = reinterpret_cast<std::uint8_t *>(&v);
            bytes[0] ^= 0x01;
        }
#endif
        record(check::AccessRecord::Kind::Read, addr, &v, sizeof(T));
        return v;
    }

    /** Stream one committed access into the machine's commit sink. */
    void
    record(check::AccessRecord::Kind kind, Addr addr, const void *value,
           std::size_t len)
    {
        if (!_m.commitSink())
            return;
        psim_assert(len <= sizeof(check::AccessRecord::value),
                "access wider than an AccessRecord value");
        check::AccessRecord rec;
        // Stamp from the owning node's queue: under the sharded engine
        // the global queue's clock does not advance, and the record's
        // tick is this node's position in the canonical merge order.
        rec.tick = _m.eqOf(_tid).now();
        rec.node = _tid;
        rec.kind = kind;
        rec.len = static_cast<std::uint8_t>(len);
        rec.addr = addr;
        std::memcpy(rec.value, value, len);
        _m.commitAccess(rec);
    }

    Machine &_m;
    Cpu &_cpu;
    NodeId _tid;
    unsigned _nthreads;
    Rng _rng;
    /** Fault-hook opportunity counters (see MachineConfig::TestHooks). */
    std::uint64_t _loadsCommitted = 0;
    std::uint64_t _storesCommitted = 0;
};

} // namespace psim::apps

#endif // PSIM_APPS_CTX_HH
