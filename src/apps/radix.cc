#include "apps/radix.hh"

#include "sim/random.hh"

namespace psim::apps
{

RadixWorkload::RadixWorkload(unsigned scale) : Workload(scale)
{
    _nkeys = 0; // sized in setup once the processor count is known
}

void
RadixWorkload::setup(Machine &m)
{
    _nproc = m.numProcs();
    _nkeys = 512 * _nproc * _scale;

    _src = shm().alloc(static_cast<std::size_t>(_nkeys) * 8,
                       m.cfg().pageSize);
    _dst = shm().alloc(static_cast<std::size_t>(_nkeys) * 8,
                       m.cfg().pageSize);
    _hist = shm().alloc(static_cast<std::size_t>(_nproc) * kBuckets * 8,
                        m.cfg().pageSize);
    _offsets = shm().alloc(
            static_cast<std::size_t>(_nproc) * kBuckets * 8,
            m.cfg().pageSize);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x9u);
    std::vector<std::uint64_t> keys(_nkeys);
    for (unsigned i = 0; i < _nkeys; ++i) {
        keys[i] = rng.below(1u << (kRadixBits * kPasses));
        m.store().store<std::uint64_t>(keyAddr(_src, i), keys[i]);
    }

    // Native replica of the counting-sort passes (the stable radix
    // order, including the per-processor segmentation).
    unsigned chunk = _nkeys / _nproc;
    std::vector<std::uint64_t> src = keys;
    std::vector<std::uint64_t> dst(_nkeys);
    for (unsigned pass = 0; pass < kPasses; ++pass) {
        unsigned shift = pass * kRadixBits;
        std::vector<std::uint64_t> hist(
                static_cast<std::size_t>(_nproc) * kBuckets, 0);
        for (unsigned t = 0; t < _nproc; ++t) {
            for (unsigned i = t * chunk; i < (t + 1) * chunk; ++i) {
                unsigned d = (src[i] >> shift) & (kBuckets - 1);
                ++hist[static_cast<std::size_t>(t) * kBuckets + d];
            }
        }
        std::vector<std::uint64_t> offs(
                static_cast<std::size_t>(kBuckets) * _nproc, 0);
        std::uint64_t running = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            for (unsigned t = 0; t < _nproc; ++t) {
                offs[static_cast<std::size_t>(b) * _nproc + t] = running;
                running += hist[static_cast<std::size_t>(t) * kBuckets +
                                b];
            }
        }
        for (unsigned t = 0; t < _nproc; ++t) {
            std::vector<std::uint64_t> cursor(kBuckets);
            for (unsigned b = 0; b < kBuckets; ++b)
                cursor[b] = offs[static_cast<std::size_t>(b) * _nproc +
                                 t];
            for (unsigned i = t * chunk; i < (t + 1) * chunk; ++i) {
                unsigned d = (src[i] >> shift) & (kBuckets - 1);
                dst[cursor[d]++] = src[i];
            }
        }
        src.swap(dst);
    }
    _ref = src; // kPasses is even: the result lands back in src
}

Task
RadixWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned chunk = _nkeys / _nproc;
    const unsigned lo = tid * chunk;
    const unsigned hi = lo + chunk;

    Addr src = _src;
    Addr dst = _dst;

    for (unsigned pass = 0; pass < kPasses; ++pass) {
        unsigned shift = pass * kRadixBits;

        // Phase A: histogram the owned chunk (counts accumulate in
        // registers, one burst of shared writes at the end).
        std::uint64_t counts[kBuckets] = {};
        for (unsigned i = lo; i < hi; ++i) {
            std::uint64_t key =
                    co_await ctx.read<std::uint64_t>(keyAddr(src, i));
            ++counts[(key >> shift) & (kBuckets - 1)];
            co_await ctx.think(2);
        }
        for (unsigned b = 0; b < kBuckets; ++b)
            co_await ctx.write<std::uint64_t>(histAddr(tid, b),
                                              counts[b]);
        co_await ctx.barrier(_bar);

        // Phase B: processor 0 computes the global offsets (the
        // all-to-one prefix-sum step of SPLASH RADIX).
        if (tid == 0) {
            std::uint64_t running = 0;
            for (unsigned b = 0; b < kBuckets; ++b) {
                for (unsigned t = 0; t < _nproc; ++t) {
                    co_await ctx.write<std::uint64_t>(offsetAddr(t, b),
                                                      running);
                    std::uint64_t h = co_await ctx.read<std::uint64_t>(
                            histAddr(t, b));
                    running += h;
                }
            }
        }
        co_await ctx.barrier(_bar);

        // Phase C: permute the owned keys into the destination --
        // sequential reads, scattered (mostly remote) writes.
        std::uint64_t cursor[kBuckets];
        for (unsigned b = 0; b < kBuckets; ++b) {
            cursor[b] = co_await ctx.read<std::uint64_t>(
                    offsetAddr(tid, b));
        }
        for (unsigned i = lo; i < hi; ++i) {
            std::uint64_t key =
                    co_await ctx.read<std::uint64_t>(keyAddr(src, i));
            unsigned d = (key >> shift) & (kBuckets - 1);
            co_await ctx.write<std::uint64_t>(
                    keyAddr(dst, static_cast<unsigned>(cursor[d])), key);
            ++cursor[d];
            co_await ctx.think(2);
        }
        co_await ctx.barrier(_bar);

        std::swap(src, dst);
    }
}

bool
RadixWorkload::verify(Machine &m)
{
    // Sortedness...
    std::uint64_t prev = 0;
    for (unsigned i = 0; i < _nkeys; ++i) {
        std::uint64_t v =
                m.store().load<std::uint64_t>(keyAddr(_src, i));
        if (v < prev)
            return false;
        prev = v;
    }
    // ...and the exact stable order of the reference replica.
    for (unsigned i = 0; i < _nkeys; ++i) {
        if (m.store().load<std::uint64_t>(keyAddr(_src, i)) != _ref[i])
            return false;
    }
    return true;
}

} // namespace psim::apps
