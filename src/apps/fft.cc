#include "apps/fft.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

namespace
{
constexpr double kPi = 3.14159265358979323846;
}

FftWorkload::FftWorkload(unsigned scale) : Workload(scale)
{
    _m = 32 << scale; // 64x64 (N = 4096) at scale 1
}

void
FftWorkload::rowFftNative(std::complex<double> *row, unsigned n,
                          const std::vector<std::complex<double>> &w)
{
    // Bit-reversal permutation.
    for (unsigned i = 1, j = 0; i < n; ++i) {
        unsigned bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j |= bit;
        if (i < j)
            std::swap(row[i], row[j]);
    }
    // Iterative radix-2 butterflies.
    for (unsigned len = 2; len <= n; len <<= 1) {
        unsigned step = n / len;
        for (unsigned start = 0; start < n; start += len) {
            for (unsigned k = 0; k < len / 2; ++k) {
                std::complex<double> u = row[start + k];
                std::complex<double> v =
                        row[start + k + len / 2] * w[k * step];
                row[start + k] = u + v;
                row[start + k + len / 2] = u - v;
            }
        }
    }
}

void
FftWorkload::setup(Machine &m)
{
    std::size_t elems = static_cast<std::size_t>(_m) * _m;
    _a = shm().alloc(elems * 16, m.cfg().pageSize);
    _b = shm().alloc(elems * 16, m.cfg().pageSize);
    _w = shm().alloc(static_cast<std::size_t>(_m) * 16,
                     m.cfg().pageSize);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x8u);
    std::vector<std::complex<double>> a(elems);
    for (std::size_t idx = 0; idx < elems; ++idx) {
        a[idx] = {rng.real() - 0.5, rng.real() - 0.5};
        unsigned i = static_cast<unsigned>(idx) / _m;
        unsigned j = static_cast<unsigned>(idx) % _m;
        m.store().store<double>(at(_a, i, j), a[idx].real());
        m.store().store<double>(at(_a, i, j) + 8, a[idx].imag());
    }
    std::vector<std::complex<double>> w(_m);
    for (unsigned k = 0; k < _m; ++k) {
        w[k] = std::polar(1.0, -2.0 * kPi * k / _m);
        m.store().store<double>(twiddle(k), w[k].real());
        m.store().store<double>(twiddle(k) + 8, w[k].imag());
    }

    // Native replica of the six steps (identical operation order).
    std::vector<std::complex<double>> b(elems);
    auto ref_at = [this](std::vector<std::complex<double>> &v,
                         unsigned i, unsigned j) -> std::complex<double> & {
        return v[static_cast<std::size_t>(i) * _m + j];
    };
    // 1. transpose A -> B
    for (unsigned i = 0; i < _m; ++i)
        for (unsigned j = 0; j < _m; ++j)
            ref_at(b, i, j) = ref_at(a, j, i);
    // 2. row FFTs on B
    for (unsigned i = 0; i < _m; ++i)
        rowFftNative(&b[static_cast<std::size_t>(i) * _m], _m, w);
    // 3. twiddle scale
    for (unsigned i = 0; i < _m; ++i) {
        for (unsigned j = 0; j < _m; ++j) {
            double ang = -2.0 * kPi * static_cast<double>(i) *
                         static_cast<double>(j) /
                         (static_cast<double>(_m) * _m);
            ref_at(b, i, j) *= std::polar(1.0, ang);
        }
    }
    // 4. transpose B -> A
    for (unsigned i = 0; i < _m; ++i)
        for (unsigned j = 0; j < _m; ++j)
            ref_at(a, i, j) = ref_at(b, j, i);
    // 5. row FFTs on A
    for (unsigned i = 0; i < _m; ++i)
        rowFftNative(&a[static_cast<std::size_t>(i) * _m], _m, w);
    // 6. transpose A -> B (final)
    for (unsigned i = 0; i < _m; ++i)
        for (unsigned j = 0; j < _m; ++j)
            ref_at(b, i, j) = ref_at(a, j, i);
    _ref = b;
}

Task
FftWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const unsigned band = _m / nproc;
    const unsigned lo = tid * band;
    const unsigned hi = lo + band;

    // Transpose src -> dst for the owned destination rows: reads walk
    // a column of the row-major source (one-row stride, remote).
    auto transpose = [this, &ctx, lo, hi](Addr dst, Addr src) -> Task {
        for (unsigned i = lo; i < hi; ++i) {
            for (unsigned j = 0; j < _m; ++j) {
                double re = co_await ctx.read<double>(at(src, j, i));
                double im = co_await ctx.read<double>(at(src, j, i) + 8);
                co_await ctx.write<double>(at(dst, i, j), re);
                co_await ctx.write<double>(at(dst, i, j) + 8, im);
                co_await ctx.think(2);
            }
        }
    };

    // In-place radix-2 FFT of one owned row (unit-stride, local).
    auto rowFft = [this, &ctx](Addr base, unsigned i) -> Task {
        for (unsigned x = 1, j = 0; x < _m; ++x) {
            unsigned bit = _m >> 1;
            for (; j & bit; bit >>= 1)
                j ^= bit;
            j |= bit;
            if (x < j) {
                double xr = co_await ctx.read<double>(at(base, i, x));
                double xi = co_await ctx.read<double>(at(base, i, x) + 8);
                double jr = co_await ctx.read<double>(at(base, i, j));
                double ji = co_await ctx.read<double>(at(base, i, j) + 8);
                co_await ctx.write<double>(at(base, i, x), jr);
                co_await ctx.write<double>(at(base, i, x) + 8, ji);
                co_await ctx.write<double>(at(base, i, j), xr);
                co_await ctx.write<double>(at(base, i, j) + 8, xi);
            }
        }
        for (unsigned len = 2; len <= _m; len <<= 1) {
            unsigned step = _m / len;
            for (unsigned start = 0; start < _m; start += len) {
                for (unsigned k = 0; k < len / 2; ++k) {
                    double wr = co_await ctx.read<double>(
                            twiddle(k * step));
                    double wi = co_await ctx.read<double>(
                            twiddle(k * step) + 8);
                    unsigned p = start + k;
                    unsigned q = start + k + len / 2;
                    double ur = co_await ctx.read<double>(at(base, i, p));
                    double ui = co_await ctx.read<double>(
                            at(base, i, p) + 8);
                    double xr = co_await ctx.read<double>(at(base, i, q));
                    double xi = co_await ctx.read<double>(
                            at(base, i, q) + 8);
                    std::complex<double> u{ur, ui};
                    std::complex<double> v =
                            std::complex<double>{xr, xi} *
                            std::complex<double>{wr, wi};
                    std::complex<double> s = u + v;
                    std::complex<double> d = u - v;
                    co_await ctx.write<double>(at(base, i, p), s.real());
                    co_await ctx.write<double>(at(base, i, p) + 8,
                                               s.imag());
                    co_await ctx.write<double>(at(base, i, q), d.real());
                    co_await ctx.write<double>(at(base, i, q) + 8,
                                               d.imag());
                    co_await ctx.think(6);
                }
            }
        }
    };

    // 1. transpose A -> B
    co_await transpose(_b, _a);
    co_await ctx.barrier(_bar);
    // 2. row FFTs on B
    for (unsigned i = lo; i < hi; ++i)
        co_await rowFft(_b, i);
    // 3. twiddle scale (owned rows; the angle is private compute)
    for (unsigned i = lo; i < hi; ++i) {
        for (unsigned j = 0; j < _m; ++j) {
            double ang = -2.0 * kPi * static_cast<double>(i) *
                         static_cast<double>(j) /
                         (static_cast<double>(_m) * _m);
            std::complex<double> tw = std::polar(1.0, ang);
            double re = co_await ctx.read<double>(at(_b, i, j));
            double im = co_await ctx.read<double>(at(_b, i, j) + 8);
            std::complex<double> v = std::complex<double>{re, im} * tw;
            co_await ctx.write<double>(at(_b, i, j), v.real());
            co_await ctx.write<double>(at(_b, i, j) + 8, v.imag());
            co_await ctx.think(8);
        }
    }
    co_await ctx.barrier(_bar);
    // 4. transpose B -> A
    co_await transpose(_a, _b);
    co_await ctx.barrier(_bar);
    // 5. row FFTs on A
    for (unsigned i = lo; i < hi; ++i)
        co_await rowFft(_a, i);
    co_await ctx.barrier(_bar);
    // 6. transpose A -> B
    co_await transpose(_b, _a);
    co_await ctx.barrier(_bar);
}

bool
FftWorkload::verify(Machine &m)
{
    for (unsigned i = 0; i < _m; ++i) {
        for (unsigned j = 0; j < _m; ++j) {
            double re = m.store().load<double>(at(_b, i, j));
            double im = m.store().load<double>(at(_b, i, j) + 8);
            std::complex<double> want =
                    _ref[static_cast<std::size_t>(i) * _m + j];
            if (std::fabs(re - want.real()) > 1e-9 ||
                std::fabs(im - want.imag()) > 1e-9) {
                return false;
            }
        }
    }
    return true;
}

} // namespace psim::apps
