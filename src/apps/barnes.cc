#include "apps/barnes.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

namespace
{
constexpr double kTheta2 = 0.49; ///< opening criterion (theta = 0.7)^2
constexpr double kEps2 = 1e-4;   ///< softening
constexpr double kDt = 0.01;
constexpr unsigned kMaxDepth = 24;
}

BarnesWorkload::BarnesWorkload(unsigned scale) : Workload(scale)
{
    _nbody = 0; // sized in setup
    _steps = 1; // a single force-evaluation + integration sweep
}

void
BarnesWorkload::buildTree(std::vector<Node> &tree,
                          const std::vector<double> &x,
                          const std::vector<double> &y,
                          const std::vector<double> &mass) const
{
    tree.clear();
    Node root;
    root.size = 1.0;
    root.leaf = true;
    tree.push_back(root);

    // Insert bodies one at a time (the classic sequential build).
    for (unsigned b = 0; b < _nbody; ++b) {
        std::uint64_t n = 0;
        double ox = 0, oy = 0, size = 1.0;
        unsigned depth = 0;
        for (;;) {
            Node &cur = tree[n];
            if (cur.leaf && !cur.hasBody) {
                cur.hasBody = true;
                cur.body = b;
                break;
            }
            if (cur.leaf && cur.hasBody && depth < kMaxDepth) {
                // Split: push the resident body down one level.
                unsigned old = cur.body;
                cur.leaf = false;
                cur.hasBody = false;
                double half = size / 2;
                unsigned q = (x[old] >= ox + half ? 1u : 0u) |
                             (y[old] >= oy + half ? 2u : 0u);
                Node child;
                child.size = half;
                child.leaf = true;
                child.hasBody = true;
                child.body = old;
                tree.push_back(child);
                tree[n].child[q] =
                        static_cast<std::uint64_t>(tree.size() - 1);
                continue; // retry insertion of b at this node
            }
            if (cur.leaf) {
                // Depth cap reached: keep multiple bodies by turning
                // the node into a pseudo-cell whose cm aggregates them
                // (handled in the mass pass); chain into child 0.
                cur.leaf = false;
            }
            double half = size / 2;
            unsigned q = (x[b] >= ox + half ? 1u : 0u) |
                         (y[b] >= oy + half ? 2u : 0u);
            if (tree[n].child[q] == kNoChild) {
                Node child;
                child.size = half;
                child.leaf = true;
                tree.push_back(child);
                tree[n].child[q] =
                        static_cast<std::uint64_t>(tree.size() - 1);
            }
            ox += (q & 1) ? half : 0;
            oy += (q & 2) ? half : 0;
            size = half;
            ++depth;
            n = tree[n].child[q];
        }
    }

    // Bottom-up center-of-mass pass (iterative post-order).
    std::vector<std::uint64_t> order;
    std::vector<std::uint64_t> stack{0};
    while (!stack.empty()) {
        std::uint64_t n = stack.back();
        stack.pop_back();
        order.push_back(n);
        for (unsigned q = 0; q < 4; ++q) {
            if (tree[n].child[q] != kNoChild)
                stack.push_back(tree[n].child[q]);
        }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node &nd = tree[*it];
        if (nd.leaf) {
            if (nd.hasBody) {
                nd.cmx = x[nd.body];
                nd.cmy = y[nd.body];
                nd.mass = mass[nd.body];
            }
            continue;
        }
        double mx = 0, my = 0, mm = 0;
        for (unsigned q = 0; q < 4; ++q) {
            if (nd.child[q] == kNoChild)
                continue;
            const Node &c = tree[nd.child[q]];
            mx += c.cmx * c.mass;
            my += c.cmy * c.mass;
            mm += c.mass;
        }
        nd.mass = mm;
        if (mm > 0) {
            nd.cmx = mx / mm;
            nd.cmy = my / mm;
        }
    }
}

void
BarnesWorkload::publishTree(Machine &m, const std::vector<Node> &tree)
        const
{
    for (std::uint64_t n = 0; n < tree.size(); ++n) {
        const Node &nd = tree[n];
        m.store().store<double>(nodeAddr(n, kNodeCmX), nd.cmx);
        m.store().store<double>(nodeAddr(n, kNodeCmY), nd.cmy);
        m.store().store<double>(nodeAddr(n, kNodeMass), nd.mass);
        m.store().store<double>(nodeAddr(n, kNodeSize), nd.size);
        for (unsigned q = 0; q < 4; ++q) {
            m.store().store<std::uint64_t>(
                    nodeAddr(n, kNodeChild + q * 8), nd.child[q]);
        }
    }
}

void
BarnesWorkload::walkNative(const std::vector<Node> &tree, double bx,
                           double by, double &fx, double &fy)
{
    std::vector<std::uint64_t> stack{0};
    while (!stack.empty()) {
        std::uint64_t n = stack.back();
        stack.pop_back();
        const Node &nd = tree[n];
        if (nd.mass <= 0)
            continue;
        double dx = nd.cmx - bx;
        double dy = nd.cmy - by;
        double dist2 = dx * dx + dy * dy + kEps2;
        bool is_leaf = nd.child[0] == kNoChild &&
                       nd.child[1] == kNoChild &&
                       nd.child[2] == kNoChild &&
                       nd.child[3] == kNoChild;
        if (is_leaf || nd.size * nd.size < kTheta2 * dist2) {
            double inv = nd.mass / (dist2 * std::sqrt(dist2));
            fx += dx * inv;
            fy += dy * inv;
        } else {
            for (unsigned q = 0; q < 4; ++q) {
                if (nd.child[q] != kNoChild)
                    stack.push_back(nd.child[q]);
            }
        }
    }
}

void
BarnesWorkload::setup(Machine &m)
{
    _nbody = 32 * m.numProcs() * _scale;

    Rng rng(m.cfg().seed ^ 0xAu);
    std::vector<double> x(_nbody), y(_nbody), mass(_nbody);
    std::vector<double> vx(_nbody, 0.0), vy(_nbody, 0.0);
    for (unsigned b = 0; b < _nbody; ++b) {
        x[b] = rng.real();
        y[b] = rng.real();
        mass[b] = 0.5 + rng.real();
    }

    buildTree(_tree, x, y, mass);

    _bodies = shm().alloc(static_cast<std::size_t>(_nbody) * kBodyBytes,
                          m.cfg().pageSize);
    _nodes = shm().alloc(_tree.size() * kNodeBytes, m.cfg().pageSize);
    _bar = shm().allocSync();

    for (unsigned b = 0; b < _nbody; ++b) {
        m.store().store<double>(bodyAddr(b, kBodyX), x[b]);
        m.store().store<double>(bodyAddr(b, kBodyY), y[b]);
        m.store().store<double>(bodyAddr(b, kBodyMass), mass[b]);
        m.store().store<double>(bodyAddr(b, kBodyVx), 0.0);
        m.store().store<double>(bodyAddr(b, kBodyVy), 0.0);
    }
    publishTree(m, _tree);

    // Native reference: force sweep + integration, identical order.
    for (unsigned b = 0; b < _nbody; ++b) {
        double fx = 0, fy = 0;
        walkNative(_tree, x[b], y[b], fx, fy);
        vx[b] += fx * kDt;
        vy[b] += fy * kDt;
        x[b] += vx[b] * kDt;
        y[b] += vy[b] * kDt;
    }
    _refX = x;
    _refY = y;
}

Task
BarnesWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned chunk = _nbody / ctx.nthreads();
    const unsigned lo = tid * chunk;
    const unsigned hi = lo + chunk;

    for (unsigned b = lo; b < hi; ++b) {
        double bx = co_await ctx.read<double>(bodyAddr(b, kBodyX));
        double by = co_await ctx.read<double>(bodyAddr(b, kBodyY));
        double fx = 0, fy = 0;

        // Explicit-stack tree walk: irregular pointer chasing over the
        // shared quadtree (same traversal order as walkNative).
        std::vector<std::uint64_t> stack{0};
        while (!stack.empty()) {
            std::uint64_t n = stack.back();
            stack.pop_back();
            double m = co_await ctx.read<double>(nodeAddr(n, kNodeMass));
            if (m <= 0)
                continue;
            double cmx = co_await ctx.read<double>(nodeAddr(n, kNodeCmX));
            double cmy = co_await ctx.read<double>(nodeAddr(n, kNodeCmY));
            double size =
                    co_await ctx.read<double>(nodeAddr(n, kNodeSize));
            double dx = cmx - bx;
            double dy = cmy - by;
            double dist2 = dx * dx + dy * dy + kEps2;
            std::uint64_t child[4];
            for (unsigned q = 0; q < 4; ++q) {
                child[q] = co_await ctx.read<std::uint64_t>(
                        nodeAddr(n, kNodeChild + q * 8));
            }
            bool is_leaf = child[0] == kNoChild &&
                           child[1] == kNoChild &&
                           child[2] == kNoChild && child[3] == kNoChild;
            if (is_leaf || size * size < kTheta2 * dist2) {
                double inv = m / (dist2 * std::sqrt(dist2));
                fx += dx * inv;
                fy += dy * inv;
                co_await ctx.think(10);
            } else {
                for (unsigned q = 0; q < 4; ++q) {
                    if (child[q] != kNoChild)
                        stack.push_back(child[q]);
                }
                co_await ctx.think(4);
            }
        }

        double vx = co_await ctx.read<double>(bodyAddr(b, kBodyVx)) +
                    fx * kDt;
        double vy = co_await ctx.read<double>(bodyAddr(b, kBodyVy)) +
                    fy * kDt;
        co_await ctx.write<double>(bodyAddr(b, kBodyVx), vx);
        co_await ctx.write<double>(bodyAddr(b, kBodyVy), vy);
        co_await ctx.write<double>(bodyAddr(b, kBodyX), bx + vx * kDt);
        co_await ctx.write<double>(bodyAddr(b, kBodyY), by + vy * kDt);
    }
    co_await ctx.barrier(_bar);
}

bool
BarnesWorkload::verify(Machine &m)
{
    for (unsigned b = 0; b < _nbody; ++b) {
        double x = m.store().load<double>(bodyAddr(b, kBodyX));
        double y = m.store().load<double>(bodyAddr(b, kBodyY));
        if (std::fabs(x - _refX[b]) > 1e-9 ||
            std::fabs(y - _refY[b]) > 1e-9) {
            return false;
        }
    }
    return true;
}

} // namespace psim::apps
