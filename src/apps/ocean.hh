/**
 * @file
 * Ocean: red-black SOR over a 2-D grid (stands in for SPLASH Ocean).
 *
 * The grid is partitioned into vertical strips of columns, and each
 * color sweep scans a column top to bottom visiting every other row:
 * consecutive reads are two grid rows apart, i.e. a stride of
 * 2*(G+2)*8 bytes -- 65 blocks for the paper's 128x128 grid -- which is
 * exactly the large dominant stride Table 2 reports for Ocean. The
 * blocks between two strided misses belong to other processors'
 * columns and are never referenced locally, so sequential prefetching
 * fetches dead blocks here; this is the one application where stride
 * prefetching wins, as in the paper.
 */

#ifndef PSIM_APPS_OCEAN_HH
#define PSIM_APPS_OCEAN_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class OceanWorkload : public Workload
{
  public:
    explicit OceanWorkload(unsigned scale);

    const char *name() const override { return "ocean"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned interior() const { return _g; }

  private:
    Addr
    cell(unsigned i, unsigned j) const
    {
        return _grid + (static_cast<Addr>(i) * (_g + 2) + j) *
                       sizeof(double);
    }

    std::size_t
    refIndex(unsigned i, unsigned j) const
    {
        return static_cast<std::size_t>(i) * (_g + 2) + j;
    }

    unsigned _g = 0;     ///< interior size (grid is (g+2)^2 with border)
    unsigned _iters = 0;
    Addr _grid = 0;
    Addr _bar = 0;
    std::vector<double> _ref;
};

} // namespace psim::apps

#endif // PSIM_APPS_OCEAN_HH
