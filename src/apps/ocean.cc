#include "apps/ocean.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

namespace
{
constexpr double kOmega = 1.15; ///< SOR over-relaxation factor
}

OceanWorkload::OceanWorkload(unsigned scale) : Workload(scale)
{
    _g = 64 * scale;  // paper: 128x128 grid
    _iters = 6;
}

void
OceanWorkload::setup(Machine &m)
{
    std::size_t cells = static_cast<std::size_t>(_g + 2) * (_g + 2);
    _grid = shm().alloc(cells * sizeof(double), m.cfg().pageSize);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x5u);
    _ref.assign(cells, 0.0);
    for (unsigned i = 0; i < _g + 2; ++i) {
        for (unsigned j = 0; j < _g + 2; ++j) {
            bool border = i == 0 || j == 0 || i == _g + 1 || j == _g + 1;
            double v = border ? std::sin(0.37 * i) + std::cos(0.23 * j)
                              : rng.real();
            _ref[refIndex(i, j)] = v;
            m.store().store<double>(cell(i, j), v);
        }
    }

    // Native red-black SOR reference: identical sweep order.
    for (unsigned iter = 0; iter < _iters; ++iter) {
        for (unsigned color = 0; color < 2; ++color) {
            for (unsigned j = 1; j <= _g; ++j) {
                unsigned i0 = 1 + ((j + color) & 1);
                for (unsigned i = i0; i <= _g; i += 2) {
                    double up = _ref[refIndex(i - 1, j)];
                    double down = _ref[refIndex(i + 1, j)];
                    double left = _ref[refIndex(i, j - 1)];
                    double right = _ref[refIndex(i, j + 1)];
                    double old = _ref[refIndex(i, j)];
                    _ref[refIndex(i, j)] =
                            old + kOmega *
                            (0.25 * (up + down + left + right) - old);
                }
            }
        }
    }
}

Task
OceanWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const unsigned width = _g / nproc; ///< columns per strip
    const unsigned jlo = 1 + tid * width;
    const unsigned jhi = jlo + width;

    for (unsigned iter = 0; iter < _iters; ++iter) {
        for (unsigned color = 0; color < 2; ++color) {
            for (unsigned j = jlo; j < jhi; ++j) {
                unsigned i0 = 1 + ((j + color) & 1);
                for (unsigned i = i0; i <= _g; i += 2) {
                    // Column scan, every other row: a stride of two
                    // grid rows (the paper's 65-block Ocean stride).
                    double up = co_await ctx.read<double>(cell(i - 1, j));
                    double down =
                            co_await ctx.read<double>(cell(i + 1, j));
                    double left =
                            co_await ctx.read<double>(cell(i, j - 1));
                    double right =
                            co_await ctx.read<double>(cell(i, j + 1));
                    double old = co_await ctx.read<double>(cell(i, j));
                    double next = old + kOmega *
                            (0.25 * (up + down + left + right) - old);
                    co_await ctx.write<double>(cell(i, j), next);
                    co_await ctx.think(10);
                }
            }
            co_await ctx.barrier(_bar);
        }
    }
}

bool
OceanWorkload::verify(Machine &m)
{
    for (unsigned i = 0; i < _g + 2; ++i) {
        for (unsigned j = 0; j < _g + 2; ++j) {
            double got = m.store().load<double>(cell(i, j));
            double want = _ref[refIndex(i, j)];
            if (std::fabs(got - want) >
                1e-9 * std::max(1.0, std::fabs(want))) {
                return false;
            }
        }
    }
    return true;
}

} // namespace psim::apps
