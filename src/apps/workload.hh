/**
 * @file
 * Workload framework.
 *
 * A Workload owns the simulated application: setup() initializes shared
 * data directly in the backing store (the sequential initialization
 * phase, which the paper excludes from statistics), thread() is the
 * parallel section run by every simulated processor, and verify()
 * checks the computed result against a natively computed reference --
 * proving that the coherence protocol and synchronization actually
 * delivered correct data.
 */

#ifndef PSIM_APPS_WORKLOAD_HH
#define PSIM_APPS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "apps/ctx.hh"
#include "apps/shmem.hh"
#include "sys/machine.hh"
#include "sys/task.hh"

namespace psim::apps
{

class Workload
{
  public:
    /**
     * @param scale 1 = the paper-sized (scaled-down) input; larger
     *        values grow the data set (Table 4 uses scale 2)
     */
    explicit Workload(unsigned scale) : _scale(scale) {}

    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Sequential initialization (functional, untimed). */
    virtual void setup(Machine &m) = 0;

    /** The parallel section executed by thread @p ctx. */
    virtual Task thread(ThreadCtx &ctx) = 0;

    /** Check the result against a native reference computation. */
    virtual bool verify(Machine &m) = 0;

    unsigned scale() const { return _scale; }

    /**
     * Run setup() and bind one thread per processor. Call once, before
     * Machine::run().
     */
    void
    attach(Machine &m)
    {
        _shm = std::make_unique<ShmAllocator>(m.cfg());
        setup(m);
        unsigned n = m.numProcs();
        _ctxs.reserve(n);
        for (NodeId tid = 0; tid < n; ++tid) {
            _ctxs.push_back(std::make_unique<ThreadCtx>(m, tid, n));
            m.bindProgram(tid, thread(*_ctxs.back()));
        }
    }

  protected:
    ShmAllocator &shm() { return *_shm; }

    unsigned _scale;
    std::unique_ptr<ShmAllocator> _shm;
    std::vector<std::unique_ptr<ThreadCtx>> _ctxs;
};

/**
 * Construct a workload by name (see the registry table in
 * src/apps/registry.cc); unknown names are fatal and the message
 * lists every valid name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       unsigned scale = 1);

/** The six applications of the paper, in its table order. */
const std::vector<std::string> &paperWorkloads();

/** The server request-driven suite: kvstore, hashjoin, bfs, logappend. */
const std::vector<std::string> &serverWorkloads();

} // namespace psim::apps

#endif // PSIM_APPS_WORKLOAD_HH
