/**
 * @file
 * MP3D: rarefied-fluid particle simulation (SPLASH MP3D).
 *
 * Particles are 40-byte records (1.25 blocks), so a record usually
 * straddles two cache blocks -- the source of the paper's observation
 * that MP3D's misses have "fairly high spatial locality" even though
 * only ~9% of them belong to stride sequences: the collision phase
 * reads pseudo-random partner particles (no stride), but reading one
 * record touches adjacent blocks, which sequential prefetching exploits
 * and stride detection cannot.
 *
 * Each step also reads the space-cell array (written by per-cell owners
 * every step), with indices that ascend with jitter -- spatially local
 * but never equidistant.
 */

#ifndef PSIM_APPS_MP3D_HH
#define PSIM_APPS_MP3D_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class Mp3dWorkload : public Workload
{
  public:
    explicit Mp3dWorkload(unsigned scale);

    const char *name() const override { return "mp3d"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned particles() const { return _npart; }

    static constexpr unsigned kRecordBytes = 40; ///< 5 doubles
    static constexpr unsigned kPos = 0;
    static constexpr unsigned kVel = 8;
    static constexpr unsigned kEnergy = 16;
    static constexpr unsigned kSpin = 24;
    static constexpr unsigned kWeight = 32;

  private:
    Addr
    pfield(unsigned p, unsigned off) const
    {
        return _parts + static_cast<Addr>(p) * kRecordBytes + off;
    }

    Addr
    cellAddr(unsigned c) const
    {
        return _cells + static_cast<Addr>(c) * 32;
    }

    /** Deterministic collision partner of particle @p p at @p step. */
    unsigned partnerOf(unsigned p, unsigned step) const;

    unsigned _npart = 0;
    unsigned _ncell = 0;
    unsigned _steps = 0;
    double _space = 0; ///< 1-D space extent
    Addr _parts = 0;
    Addr _cells = 0;
    Addr _bar = 0;
    std::vector<double> _refPos;
    std::vector<double> _refVel;
};

} // namespace psim::apps

#endif // PSIM_APPS_MP3D_HH
