#include "apps/driver.hh"

#include "sim/logging.hh"

namespace psim::apps
{

Run
runWorkload(const std::string &workload_name, const MachineConfig &cfg,
            const RunOptions &opts)
{
    Run run;
    run.machine = std::make_unique<Machine>(cfg);
    run.workload = makeWorkload(workload_name, opts.scale);
    if (opts.characterize)
        run.machine->enableCharacterizers();
    run.workload->attach(*run.machine);
    run.machine->run(opts.limit);
    run.finished = run.machine->allFinished();
    if (run.finished) {
        run.verified = run.workload->verify(*run.machine);
        if (opts.checkInvariants)
            run.machine->checkCoherenceInvariants();
    }
    run.metrics = run.machine->metrics();
    return run;
}

} // namespace psim::apps
