#include "apps/driver.hh"

#include <cstdlib>
#include <fstream>
#include <functional>

#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/sampler.hh"
#include "trace/chrome_trace.hh"

namespace psim::apps
{

namespace
{

void
writeFile(const std::string &path,
          const std::function<void(std::ostream &)> &emit)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        psim_fatal("cannot write %s", path.c_str());
    emit(out);
    out.flush();
    if (!out)
        psim_fatal("write to %s failed", path.c_str());
}

} // namespace

Run
runWorkload(const std::string &workload_name, const MachineConfig &cfg,
            const RunOptions &opts)
{
    Run run;
    run.machine = std::make_unique<Machine>(cfg);
    run.workload = makeWorkload(workload_name, opts.scale);
    if (opts.characterize)
        run.machine->enableCharacterizers();
    if (opts.sampleInterval > 0)
        run.machine->enableSampling(opts.sampleInterval);
    if (!opts.chromeTracePath.empty())
        run.machine->enableChromeTrace(opts.chromeStart, opts.chromeEnd);
    run.workload->attach(*run.machine);
    run.machine->run(opts.limit);
    run.finished = run.machine->allFinished();
    if (run.finished) {
        run.verified = run.workload->verify(*run.machine);
        if (opts.checkInvariants)
            run.machine->checkCoherenceInvariants();
    }
    run.metrics = run.machine->metrics();

    if (!opts.statsJsonPath.empty()) {
        writeFile(opts.statsJsonPath, [&run](std::ostream &os) {
            run.machine->dumpStatsJson(os);
        });
    }
    if (!opts.sampleCsvPath.empty()) {
        const stats::Sampler *s = run.machine->sampler();
        psim_assert(s, "--sample-csv needs a sample interval");
        writeFile(opts.sampleCsvPath,
                [s](std::ostream &os) { s->dumpCsv(os); });
    }
    if (!opts.chromeTracePath.empty()) {
        const ChromeTracer *t = run.machine->chromeTracer();
        writeFile(opts.chromeTracePath,
                [t](std::ostream &os) { t->write(os); });
    }
    return run;
}

bool
ObservabilityOptions::parseArg(int argc, char **argv, int *i)
{
    std::string arg = argv[*i];
    auto value = [&](const char *flag) {
        if (*i + 1 >= argc)
            psim_fatal("%s needs a value", flag);
        return std::string(argv[++*i]);
    };
    if (arg == "--stats-json") {
        statsJsonPrefix = value("--stats-json");
        return true;
    }
    if (arg == "--sample-csv") {
        sampleCsvPrefix = value("--sample-csv");
        return true;
    }
    if (arg == "--chrome-trace") {
        chromeTracePrefix = value("--chrome-trace");
        return true;
    }
    if (arg == "--sample-interval") {
        sampleInterval = parseTickFlag("--sample-interval",
                                       value("--sample-interval"));
        if (sampleInterval == 0)
            psim_fatal("--sample-interval must be a positive tick count");
        return true;
    }
    if (arg == "--chrome-window") {
        std::string v = value("--chrome-window");
        std::size_t colon = v.find(':');
        if (colon == std::string::npos)
            psim_fatal("--chrome-window wants START:END ticks");
        chromeStart = parseTickFlag("--chrome-window START",
                                    v.substr(0, colon));
        std::string end = v.substr(colon + 1);
        chromeEnd = end.empty()
                ? kTickNever
                : parseTickFlag("--chrome-window END", end);
        if (chromeEnd < chromeStart)
            psim_fatal("--chrome-window END precedes START");
        return true;
    }
    return false;
}

void
ObservabilityOptions::apply(RunOptions &opts, const std::string &cell) const
{
    if (!statsJsonPrefix.empty()) {
        opts.statsJsonPath = cell.empty() ? statsJsonPrefix
                                          : statsJsonPrefix + cell + ".json";
    }
    opts.sampleInterval = sampleInterval;
    if (!sampleCsvPrefix.empty()) {
        if (sampleInterval == 0)
            psim_fatal("--sample-csv needs --sample-interval");
        opts.sampleCsvPath = cell.empty() ? sampleCsvPrefix
                                          : sampleCsvPrefix + cell + ".csv";
    }
    if (!chromeTracePrefix.empty()) {
        opts.chromeTracePath = cell.empty()
                ? chromeTracePrefix
                : chromeTracePrefix + cell + ".json";
    }
    opts.chromeStart = chromeStart;
    opts.chromeEnd = chromeEnd;
}

} // namespace psim::apps
