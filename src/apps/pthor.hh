/**
 * @file
 * PTHOR: parallel digital-circuit simulation (SPLASH PTHOR).
 *
 * A synchronous gate-level simulator over a randomly wired circuit:
 * each active element reads the outputs of its two (pseudo-randomly
 * chosen) fan-in elements and publishes a new output into a
 * double-buffered field. Fan-in reads chase pointers across the
 * element array -- no stride sequences and low spatial locality, which
 * is why neither prefetching scheme helps PTHOR in the paper. Event
 * hand-off between processors goes through per-processor work queues
 * protected by the memory-side queue locks.
 */

#ifndef PSIM_APPS_PTHOR_HH
#define PSIM_APPS_PTHOR_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class PthorWorkload : public Workload
{
  public:
    explicit PthorWorkload(unsigned scale);

    const char *name() const override { return "pthor"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned elements() const { return _nelem; }

    static constexpr unsigned kRecordBytes = 64; ///< 2 blocks
    static constexpr unsigned kOutA = 0;   ///< output, even steps
    static constexpr unsigned kOutB = 8;   ///< output, odd steps
    static constexpr unsigned kState = 16;
    static constexpr unsigned kFanin0 = 24;
    static constexpr unsigned kFanin1 = 32;
    static constexpr unsigned kDelay = 40;

  private:
    Addr
    efield(unsigned e, unsigned off) const
    {
        return _elems + static_cast<Addr>(e) * kRecordBytes + off;
    }

    bool activeAt(unsigned e, unsigned step) const;

    unsigned _nelem = 0;
    unsigned _steps = 0;
    Addr _elems = 0;
    Addr _queues = 0;     ///< per-processor event counters
    Addr _queueLocks = 0; ///< one lock block per processor queue
    Addr _bar = 0;
    std::vector<double> _refOut;
    std::vector<double> _refState;
};

} // namespace psim::apps

#endif // PSIM_APPS_PTHOR_HH
