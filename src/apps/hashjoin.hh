/**
 * @file
 * Hash-join server workload (build + probe over two relations).
 *
 * The build relation R is a shared array of 16-byte tuples; the probe
 * relation S is materialized per thread from the seeded Zipfian
 * request stream (src/apps/reqgen.hh), so probe keys are hot-skewed
 * the way OLTP joins are. Build: every thread scans all of R
 * sequentially and inserts exactly the tuples that hash into its own
 * bucket range of a shared open-addressed table (probing wraps within
 * the range, so writes never leave the owner's buckets -- DRF without
 * locks). Probe: each thread streams its own S chunk sequentially and
 * probes the now read-only table, whose buckets mostly live in other
 * nodes' memory -- scattered remote reads against a sequential local
 * stream, with open-loop think gaps between requests.
 *
 * Verification rebuilds the identical table natively (same scan order
 * per range, hence identical slot placement) and compares every table
 * slot and each thread's match-count/payload-sum result.
 */

#ifndef PSIM_APPS_HASHJOIN_HH
#define PSIM_APPS_HASHJOIN_HH

#include <cstdint>
#include <vector>

#include "apps/reqgen.hh"
#include "apps/workload.hh"

namespace psim::apps
{

class HashJoinWorkload : public Workload
{
  public:
    explicit HashJoinWorkload(unsigned scale);

    const char *name() const override { return "hashjoin"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

  private:
    Addr tupleAddr(Addr rel, std::uint64_t i) const;
    Addr slotAddr(std::uint64_t i) const;
    std::uint64_t rangeLo(unsigned t, unsigned nproc) const;

    std::uint64_t _nR = 0;    ///< build-relation tuples
    std::uint64_t _perS = 0;  ///< probe tuples per thread
    std::uint64_t _htCap = 0; ///< hash-table slots (power of two)
    std::uint64_t _nkeys = 0; ///< probe key space (power of two)
    std::uint64_t _seed = 0;
    Tick _interArrival = 0;
    double _theta = 0.99;

    Addr _relR = 0;
    Addr _relS = 0;
    Addr _table = 0;
    Addr _results = 0;
    Addr _bar = 0;

    std::unique_ptr<ZipfSampler> _zipf;
    std::vector<std::uint64_t> _refTableKey;
    std::vector<std::uint64_t> _refTablePay;
    std::vector<std::uint64_t> _refCount; ///< per-thread match count
    std::vector<std::uint64_t> _refSum;   ///< per-thread payload sum
};

} // namespace psim::apps

#endif // PSIM_APPS_HASHJOIN_HH
