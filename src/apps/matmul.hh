/**
 * @file
 * The paper's Figure-2 matrix multiplication example.
 *
 * C = C + A * B with all three matrices row-major. In the inner loop
 * the accesses to A have a stride of one element (8 bytes) and the
 * accesses to B a stride of one row (N elements), exactly the two
 * stride regimes the paper uses to motivate the detection schemes.
 * Rows of C are block-distributed over the processors.
 */

#ifndef PSIM_APPS_MATMUL_HH
#define PSIM_APPS_MATMUL_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class MatmulWorkload : public Workload
{
  public:
    explicit MatmulWorkload(unsigned scale);

    const char *name() const override { return "matmul"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned order() const { return _n; }

  private:
    Addr
    at(Addr base, unsigned i, unsigned j) const
    {
        return base + (static_cast<Addr>(i) * _n + j) * sizeof(double);
    }

    unsigned _n = 0;
    Addr _a = 0;
    Addr _b = 0;
    Addr _c = 0;
    Addr _bar = 0;
    std::vector<double> _ref;
};

} // namespace psim::apps

#endif // PSIM_APPS_MATMUL_HH
