#include "apps/hashjoin.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace psim::apps
{

namespace
{

constexpr unsigned kTupleBytes = 16; ///< {key u64, payload u64}
constexpr unsigned kSlotBytes = 16;  ///< {key+1 u64 (0 empty), payload u64}
constexpr unsigned kResultStride = 64;

std::uint64_t
mix64(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
}

std::uint64_t
nextPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

std::uint64_t
buildPayload(std::uint64_t seed, std::uint64_t i)
{
    return mix64(seed ^ (i * 0x9e3779b97f4a7c15ULL) ^ 0x1234abcdULL);
}

std::uint64_t
probePayload(std::uint64_t seed, unsigned t, std::uint64_t j)
{
    return mix64(seed + (static_cast<std::uint64_t>(t) << 40) + j * 3);
}

} // namespace

HashJoinWorkload::HashJoinWorkload(unsigned scale) : Workload(scale) {}

Addr
HashJoinWorkload::tupleAddr(Addr rel, std::uint64_t i) const
{
    return rel + static_cast<Addr>(i) * kTupleBytes;
}

Addr
HashJoinWorkload::slotAddr(std::uint64_t i) const
{
    return _table + static_cast<Addr>(i) * kSlotBytes;
}

/** First bucket of thread @p t's range (floor division balances any
 *  remainder, so awkward --procs counts still partition exactly). */
std::uint64_t
HashJoinWorkload::rangeLo(unsigned t, unsigned nproc) const
{
    return static_cast<std::uint64_t>(t) * _htCap / nproc;
}

namespace
{

/** The thread whose bucket range contains @p h. */
unsigned
ownerOf(std::uint64_t h, std::uint64_t htCap, unsigned nproc)
{
    unsigned t = static_cast<unsigned>(h * nproc / htCap);
    while (t + 1 < nproc &&
           static_cast<std::uint64_t>(t + 1) * htCap / nproc <= h)
        ++t;
    while (static_cast<std::uint64_t>(t) * htCap / nproc > h)
        --t;
    return t;
}

} // namespace

void
HashJoinWorkload::setup(Machine &m)
{
    const MachineConfig &cfg = m.cfg();
    const unsigned nproc = m.numProcs();
    _seed = cfg.seed;
    _theta = cfg.server.zipfTheta;
    _interArrival = cfg.server.interArrival;
    _nR = 64ull * nproc * _scale;
    _htCap = 2 * nextPow2(_nR);
    _nkeys = _htCap; // probe keys hit iff their Zipf rank is < nR
    _perS = cfg.server.requests ? cfg.server.requests : 256ull * _scale;
    _zipf = std::make_unique<ZipfSampler>(_nkeys, _theta);

    _relR = shm().alloc(static_cast<std::size_t>(_nR) * kTupleBytes,
                        cfg.pageSize);
    _relS = shm().alloc(
            static_cast<std::size_t>(nproc) * _perS * kTupleBytes,
            cfg.pageSize);
    _table = shm().alloc(static_cast<std::size_t>(_htCap) * kSlotBytes,
                         cfg.pageSize);
    _results = shm().alloc(static_cast<std::size_t>(nproc) * kResultStride,
                           kResultStride);
    _bar = shm().allocSync();

    // Build relation R: key i is the i-th scrambled rank, so exactly
    // the Zipf-hottest probe keys are present in R.
    std::vector<std::uint64_t> rkey(_nR), rpay(_nR);
    for (std::uint64_t i = 0; i < _nR; ++i) {
        rkey[i] = scrambleRank(i, _nkeys);
        rpay[i] = buildPayload(_seed, i);
        m.store().store<std::uint64_t>(tupleAddr(_relR, i) + 0, rkey[i]);
        m.store().store<std::uint64_t>(tupleAddr(_relR, i) + 8, rpay[i]);
    }

    // Probe relation S: one chunk per thread from its request stream.
    std::vector<RequestGen> gens;
    gens.reserve(nproc);
    for (unsigned t = 0; t < nproc; ++t) {
        ReqGenParams p;
        p.seed = _seed;
        p.thread = t;
        p.keys = _nkeys;
        p.theta = _theta;
        p.interArrival = _interArrival;
        gens.emplace_back(p, *_zipf);
    }
    for (unsigned t = 0; t < nproc; ++t) {
        const Addr chunk = _relS + static_cast<Addr>(t) * _perS *
                                           kTupleBytes;
        for (std::uint64_t j = 0; j < _perS; ++j) {
            Request q = gens[t].at(j);
            m.store().store<std::uint64_t>(tupleAddr(chunk, j) + 0,
                                           q.key);
            m.store().store<std::uint64_t>(tupleAddr(chunk, j) + 8,
                                           probePayload(_seed, t, j));
        }
    }

    // Empty table in the store; the parallel section builds it.
    for (std::uint64_t i = 0; i < _htCap; ++i) {
        m.store().store<std::uint64_t>(slotAddr(i) + 0, 0);
        m.store().store<std::uint64_t>(slotAddr(i) + 8, 0);
    }
    for (unsigned t = 0; t < nproc; ++t) {
        const Addr res = _results + static_cast<Addr>(t) * kResultStride;
        m.store().store<std::uint64_t>(res + 0, 0);
        m.store().store<std::uint64_t>(res + 8, 0);
    }

    // Native reference: identical per-range build order, then probes.
    _refTableKey.assign(_htCap, 0);
    _refTablePay.assign(_htCap, 0);
    for (unsigned t = 0; t < nproc; ++t) {
        const std::uint64_t lo = rangeLo(t, nproc);
        const std::uint64_t hi = rangeLo(t + 1, nproc);
        std::uint64_t inserted = 0;
        for (std::uint64_t i = 0; i < _nR; ++i) {
            std::uint64_t h = mix64(rkey[i]) & (_htCap - 1);
            if (ownerOf(h, _htCap, nproc) != t)
                continue;
            std::uint64_t s = h;
            while (_refTableKey[s] != 0)
                s = s + 1 < hi ? s + 1 : lo;
            _refTableKey[s] = rkey[i] + 1;
            _refTablePay[s] = rpay[i];
            ++inserted;
            psim_assert(inserted < hi - lo,
                        "hashjoin bucket range overflow");
        }
    }
    _refCount.assign(nproc, 0);
    _refSum.assign(nproc, 0);
    for (unsigned t = 0; t < nproc; ++t) {
        for (std::uint64_t j = 0; j < _perS; ++j) {
            Request q = gens[t].at(j);
            std::uint64_t h = mix64(q.key) & (_htCap - 1);
            unsigned owner = ownerOf(h, _htCap, nproc);
            const std::uint64_t lo = rangeLo(owner, nproc);
            const std::uint64_t hi = rangeLo(owner + 1, nproc);
            std::uint64_t s = h;
            while (_refTableKey[s] != 0) {
                if (_refTableKey[s] == q.key + 1) {
                    ++_refCount[t];
                    _refSum[t] += _refTablePay[s] +
                                  probePayload(_seed, t, j);
                    break;
                }
                s = s + 1 < hi ? s + 1 : lo;
            }
        }
    }
}

Task
HashJoinWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const std::uint64_t mask = _htCap - 1;

    // ---- build: sequential scan of all of R, owner-range inserts ----
    const std::uint64_t lo = rangeLo(tid, nproc);
    const std::uint64_t hi = rangeLo(tid + 1, nproc);
    std::uint64_t inserted = 0;
    for (std::uint64_t i = 0; i < _nR; ++i) {
        auto key = co_await ctx.read<std::uint64_t>(
                tupleAddr(_relR, i) + 0);
        std::uint64_t h = mix64(key) & mask;
        if (ownerOf(h, _htCap, nproc) != tid)
            continue;
        auto pay = co_await ctx.read<std::uint64_t>(
                tupleAddr(_relR, i) + 8);
        std::uint64_t s = h;
        for (;;) {
            auto k = co_await ctx.read<std::uint64_t>(slotAddr(s) + 0);
            if (k == 0)
                break;
            s = s + 1 < hi ? s + 1 : lo;
        }
        co_await ctx.write<std::uint64_t>(slotAddr(s) + 0, key + 1);
        co_await ctx.write<std::uint64_t>(slotAddr(s) + 8, pay);
        ++inserted;
        psim_assert(inserted < hi - lo, "hashjoin bucket range overflow");
    }

    // Table complete and henceforth read-only.
    co_await ctx.barrier(_bar);

    // ---- probe: stream own S chunk against the shared table ----
    ReqGenParams p;
    p.seed = _seed;
    p.thread = tid;
    p.keys = _nkeys;
    p.theta = _theta;
    p.interArrival = _interArrival;
    RequestGen gen(p, *_zipf);

    const Addr chunk = _relS + static_cast<Addr>(tid) * _perS *
                                       kTupleBytes;
    std::uint64_t count = 0, sum = 0;
    for (std::uint64_t j = 0; j < _perS; ++j) {
        Request q = gen.at(j);
        if (q.think)
            co_await ctx.think(q.think);
        auto key = co_await ctx.read<std::uint64_t>(
                tupleAddr(chunk, j) + 0);
        auto spay = co_await ctx.read<std::uint64_t>(
                tupleAddr(chunk, j) + 8);
        std::uint64_t h = mix64(key) & mask;
        unsigned owner = ownerOf(h, _htCap, nproc);
        const std::uint64_t olo = rangeLo(owner, nproc);
        const std::uint64_t ohi = rangeLo(owner + 1, nproc);
        std::uint64_t s = h;
        for (;;) {
            auto k = co_await ctx.read<std::uint64_t>(slotAddr(s) + 0);
            if (k == 0)
                break;
            if (k == key + 1) {
                auto tpay = co_await ctx.read<std::uint64_t>(
                        slotAddr(s) + 8);
                ++count;
                sum += tpay + spay;
                break;
            }
            s = s + 1 < ohi ? s + 1 : olo;
        }
    }

    const Addr res = _results + static_cast<Addr>(tid) * kResultStride;
    co_await ctx.write<std::uint64_t>(res + 0, count);
    co_await ctx.write<std::uint64_t>(res + 8, sum);
}

bool
HashJoinWorkload::verify(Machine &m)
{
    const unsigned nproc = m.numProcs();
    for (std::uint64_t i = 0; i < _htCap; ++i) {
        if (m.store().load<std::uint64_t>(slotAddr(i) + 0) !=
                    _refTableKey[i] ||
            m.store().load<std::uint64_t>(slotAddr(i) + 8) !=
                    _refTablePay[i]) {
            return false;
        }
    }
    for (unsigned t = 0; t < nproc; ++t) {
        const Addr res = _results + static_cast<Addr>(t) * kResultStride;
        if (m.store().load<std::uint64_t>(res + 0) != _refCount[t] ||
            m.store().load<std::uint64_t>(res + 8) != _refSum[t]) {
            return false;
        }
    }
    return true;
}

} // namespace psim::apps
