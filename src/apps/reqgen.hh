/**
 * @file
 * Seeded open-loop request generator for the server workload suite.
 *
 * The four server workloads (kvstore, hashjoin, bfs, logappend) are
 * driven by streams of requests with Zipfian key popularity -- the
 * "millions of users" front end. Each request is a *pure function* of
 * (spec seed, thread id, request index): the generator holds no
 * mutable state, draws nothing from the machine (no clocks, no
 * addresses, no iteration-order-dependent containers), and therefore
 * produces byte-identical streams at every --jobs and --shards count.
 * at() enforces that contract with a recompute-and-compare assertion
 * in the generator itself, not just in the tests.
 *
 * Arrival is open-loop in the simulated sense available to a blocking
 * coroutine: the gap *before* each request is drawn from the stream
 * (uniform integer around ServerConfig::interArrival, no libm) and
 * modeled with ThreadCtx::think, independent of how long the previous
 * request took to serve.
 */

#ifndef PSIM_APPS_REQGEN_HH
#define PSIM_APPS_REQGEN_HH

#include <cstdint>

#include "sim/types.hh"

namespace psim::apps
{

/**
 * Zipfian sampler over ranks [0, n) with skew theta in [0, 1)
 * (theta = 0 is uniform; YCSB's default skew is 0.99). Uses the
 * Gray et al. inverse-CDF approximation: O(n) zeta precompute at
 * construction, O(1) per sample. A sampler is itself a pure function
 * of (n, theta), so sharing one across threads is safe.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta);

    /** The rank for uniform @p u in [0, 1); rank 0 is the hottest. */
    std::uint64_t sample(double u) const;

    std::uint64_t n() const { return _n; }
    double theta() const { return _theta; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t _n;
    double _theta;
    double _zetan;
    double _eta;
    double _alpha;
};

/** One generated request. Workloads interpret op as fits them. */
struct Request
{
    enum class Op : std::uint8_t
    {
        Read,  ///< GET / probe / traversal
        Write, ///< PUT / append
    };

    Op op = Op::Read;
    /** Key in [0, keys): a Zipf rank scrambled over the key space. */
    std::uint64_t key = 0;
    /** Open-loop inter-arrival gap to think() before issuing. */
    Tick think = 0;

    bool
    operator==(const Request &o) const
    {
        return op == o.op && key == o.key && think == o.think;
    }
};

struct ReqGenParams
{
    std::uint64_t seed = 0; ///< MachineConfig::seed (the spec seed)
    unsigned thread = 0;    ///< requesting thread id
    /** Key-space size; must be a power of two (rank scrambling). */
    std::uint64_t keys = 1;
    double theta = 0.99;      ///< Zipf skew
    double writeFraction = 0; ///< P(op == Write)
    Tick interArrival = 0;    ///< mean think gap; 0 disables gaps
};

class RequestGen
{
  public:
    /** @p zipf must outlive the generator and match params.keys. */
    RequestGen(const ReqGenParams &params, const ZipfSampler &zipf);

    /**
     * Request number @p r of this thread's stream. Pure: depends on
     * (seed, thread, r) and the immutable params only; asserts its own
     * purity by recomputing (see file comment).
     */
    Request at(std::uint64_t r) const;

    const ReqGenParams &params() const { return _p; }

  private:
    Request compute(std::uint64_t r) const;

    ReqGenParams _p;
    const ZipfSampler &_zipf;
};

/**
 * Bijective scramble of @p rank over [0, keys): multiplication by an
 * odd constant modulo the power-of-two key-space size. Spreads the
 * hot head of the Zipf distribution across the key space so popular
 * keys do not share cache blocks by construction.
 */
std::uint64_t scrambleRank(std::uint64_t rank, std::uint64_t keys);

} // namespace psim::apps

#endif // PSIM_APPS_REQGEN_HH
