#include "apps/kvstore.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace psim::apps
{

namespace
{

constexpr unsigned kSlotBytes = 32;
constexpr unsigned kKeyOff = 0;  ///< u64: 0 empty, ~0 tombstone, key+1
constexpr unsigned kValOff = 8;  ///< u64
constexpr unsigned kPrevOff = 16; ///< u32 LRU link (kNil = none)
constexpr unsigned kNextOff = 20; ///< u32 LRU link

constexpr std::uint32_t kNil = 0xffffffffu;
constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kTomb = ~0ull;

/** Headers are one per thread, spaced so no two share a cache block
 *  at any block size the harnesses run. */
constexpr unsigned kHdrBytes = 128;

/** Shared read-only routing directory, read once per request. */
constexpr unsigned kDirWords = 512;

constexpr unsigned kEpochs = 2;
constexpr double kWriteFraction = 0.3;

std::uint64_t
mix64(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
}

unsigned
nextPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

std::uint64_t
dirWord(std::uint64_t seed, unsigned d)
{
    return mix64(d * 0x9e3779b97f4a7c15ULL ^ seed);
}

/** The value a PUT stores: pure in (seed, thread, request, key). */
std::uint64_t
valueOf(std::uint64_t seed, unsigned t, std::uint64_t r, std::uint64_t key)
{
    return mix64(seed ^ (key * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<std::uint64_t>(t) << 48) ^ r);
}

std::uint64_t
preloadVal(std::uint64_t seed, unsigned t, std::uint64_t key)
{
    return mix64(seed + key * 0xbf58476d1ce4e5b9ULL +
                 (static_cast<std::uint64_t>(t) << 32));
}

} // namespace

KvStoreWorkload::KvStoreWorkload(unsigned scale) : Workload(scale) {}

Addr
KvStoreWorkload::slotAddr(Addr base, std::uint32_t i) const
{
    return base + static_cast<Addr>(i) * kSlotBytes;
}

Addr
KvStoreWorkload::partitionBase(unsigned t) const
{
    return _slots + static_cast<Addr>(t) * _cap * kSlotBytes;
}

// ---- native model ----------------------------------------------------
// Every model method mirrors its coroutine twin write-for-write, so
// verify() can compare all slot bytes exactly (stale fields included).

void
KvStoreWorkload::modelLruUnlink(State &s, std::uint32_t i) const
{
    std::uint32_t p = s.prev[i];
    std::uint32_t n = s.next[i];
    if (p == kNil)
        s.head = n;
    else
        s.next[p] = n;
    if (n == kNil)
        s.tail = p;
    else
        s.prev[n] = p;
}

void
KvStoreWorkload::modelLruPushFront(State &s, std::uint32_t i) const
{
    s.prev[i] = kNil;
    s.next[i] = s.head;
    if (s.head != kNil)
        s.prev[s.head] = i;
    else
        s.tail = i;
    s.head = i;
}

void
KvStoreWorkload::modelGet(State &s, std::uint64_t key) const
{
    const std::uint64_t stored = key + 1;
    const std::uint32_t mask = _cap - 1;
    std::uint32_t j = static_cast<std::uint32_t>(mix64(key)) & mask;
    for (unsigned probes = 0;; ++probes, j = (j + 1) & mask) {
        psim_assert(probes < _cap, "kvstore model probe ran off the end");
        std::uint64_t k = s.key[j];
        if (k == kEmpty) {
            ++s.misses;
            break;
        }
        if (k == stored) {
            s.dirAcc ^= s.val[j];
            ++s.hits;
            if (s.head != j) {
                modelLruUnlink(s, j);
                modelLruPushFront(s, j);
            }
            break;
        }
    }
}

void
KvStoreWorkload::modelPut(State &s, std::uint64_t key,
                          std::uint64_t val) const
{
    const std::uint64_t stored = key + 1;
    const std::uint32_t mask = _cap - 1;
    std::uint32_t j = static_cast<std::uint32_t>(mix64(key)) & mask;
    for (unsigned probes = 0;; ++probes, j = (j + 1) & mask) {
        psim_assert(probes < _cap, "kvstore model probe ran off the end");
        std::uint64_t k = s.key[j];
        if (k == stored) {
            s.val[j] = val;
            if (s.head != j) {
                modelLruUnlink(s, j);
                modelLruPushFront(s, j);
            }
            return;
        }
        if (k == kEmpty)
            break;
    }
    if (s.entries >= _cap / 2) {
        std::uint32_t t = s.tail;
        psim_assert(t != kNil, "full kvstore partition with empty LRU");
        modelLruUnlink(s, t);
        s.key[t] = kTomb;
        --s.entries;
        ++s.tombs;
        ++s.evicts;
    }
    s.key[j] = stored;
    s.val[j] = val;
    ++s.entries;
    modelLruPushFront(s, j);
    if (s.entries + s.tombs >= 3u * _cap / 4)
        modelCompact(s);
}

void
KvStoreWorkload::modelCompact(State &s) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
    live.reserve(s.entries);
    for (std::uint32_t j = s.head; j != kNil; j = s.next[j])
        live.emplace_back(s.key[j], s.val[j]);
    psim_assert(live.size() == s.entries,
                "kvstore LRU list length disagrees with entry count");
    for (unsigned i = 0; i < _cap; ++i) {
        if (s.key[i] != kEmpty)
            s.key[i] = kEmpty;
    }
    s.head = s.tail = kNil;
    s.entries = 0;
    s.tombs = 0;
    const std::uint32_t mask = _cap - 1;
    for (auto it = live.rbegin(); it != live.rend(); ++it) {
        std::uint32_t j =
                static_cast<std::uint32_t>(mix64(it->first - 1)) & mask;
        while (s.key[j] != kEmpty)
            j = (j + 1) & mask;
        s.key[j] = it->first;
        s.val[j] = it->second;
        ++s.entries;
        modelLruPushFront(s, j);
    }
    ++s.compactions;
}

// ---- simulated ops ---------------------------------------------------

Task
KvStoreWorkload::lruUnlink(ThreadCtx &ctx, Addr base, std::uint32_t i,
                           Cursor *c)
{
    auto p = co_await ctx.read<std::uint32_t>(slotAddr(base, i) + kPrevOff);
    auto n = co_await ctx.read<std::uint32_t>(slotAddr(base, i) + kNextOff);
    if (p == kNil)
        c->head = n;
    else
        co_await ctx.write<std::uint32_t>(slotAddr(base, p) + kNextOff, n);
    if (n == kNil)
        c->tail = p;
    else
        co_await ctx.write<std::uint32_t>(slotAddr(base, n) + kPrevOff, p);
}

Task
KvStoreWorkload::lruPushFront(ThreadCtx &ctx, Addr base, std::uint32_t i,
                              Cursor *c)
{
    co_await ctx.write<std::uint32_t>(slotAddr(base, i) + kPrevOff, kNil);
    co_await ctx.write<std::uint32_t>(slotAddr(base, i) + kNextOff,
                                      c->head);
    if (c->head != kNil)
        co_await ctx.write<std::uint32_t>(
                slotAddr(base, c->head) + kPrevOff, i);
    else
        c->tail = i;
    c->head = i;
}

Task
KvStoreWorkload::doGet(ThreadCtx &ctx, Addr base, std::uint64_t key,
                       Cursor *c)
{
    const std::uint64_t stored = key + 1;
    const std::uint32_t mask = _cap - 1;
    std::uint32_t j = static_cast<std::uint32_t>(mix64(key)) & mask;
    for (unsigned probes = 0;; ++probes, j = (j + 1) & mask) {
        psim_assert(probes < _cap, "kvstore probe ran off the end");
        auto k = co_await ctx.read<std::uint64_t>(
                slotAddr(base, j) + kKeyOff);
        if (k == kEmpty) {
            ++c->misses;
            break;
        }
        if (k == stored) {
            auto v = co_await ctx.read<std::uint64_t>(
                    slotAddr(base, j) + kValOff);
            c->dirAcc ^= v;
            ++c->hits;
            if (c->head != j) {
                co_await lruUnlink(ctx, base, j, c);
                co_await lruPushFront(ctx, base, j, c);
            }
            break;
        }
    }
}

Task
KvStoreWorkload::doPut(ThreadCtx &ctx, Addr base, std::uint64_t key,
                       std::uint64_t val, Cursor *c)
{
    const std::uint64_t stored = key + 1;
    const std::uint32_t mask = _cap - 1;
    std::uint32_t j = static_cast<std::uint32_t>(mix64(key)) & mask;
    bool update = false;
    for (unsigned probes = 0;; ++probes, j = (j + 1) & mask) {
        psim_assert(probes < _cap, "kvstore probe ran off the end");
        auto k = co_await ctx.read<std::uint64_t>(
                slotAddr(base, j) + kKeyOff);
        if (k == stored) {
            update = true;
            break;
        }
        if (k == kEmpty)
            break;
    }
    if (update) {
        co_await ctx.write<std::uint64_t>(slotAddr(base, j) + kValOff,
                                          val);
        if (c->head != j) {
            co_await lruUnlink(ctx, base, j, c);
            co_await lruPushFront(ctx, base, j, c);
        }
        co_return;
    }
    if (c->entries >= _cap / 2) {
        std::uint32_t t = c->tail;
        psim_assert(t != kNil, "full kvstore partition with empty LRU");
        co_await lruUnlink(ctx, base, t, c);
        co_await ctx.write<std::uint64_t>(slotAddr(base, t) + kKeyOff,
                                          kTomb);
        --c->entries;
        ++c->tombs;
        ++c->evicts;
    }
    co_await ctx.write<std::uint64_t>(slotAddr(base, j) + kKeyOff, stored);
    co_await ctx.write<std::uint64_t>(slotAddr(base, j) + kValOff, val);
    ++c->entries;
    co_await lruPushFront(ctx, base, j, c);
    if (c->entries + c->tombs >= 3u * _cap / 4)
        co_await doCompact(ctx, base, c);
}

Task
KvStoreWorkload::doCompact(ThreadCtx &ctx, Addr base, Cursor *c)
{
    // Walk the LRU list MRU-first, collecting live pairs: pointer
    // chasing over the whole partition.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
    live.reserve(c->entries);
    std::uint32_t j = c->head;
    while (j != kNil) {
        auto k = co_await ctx.read<std::uint64_t>(
                slotAddr(base, j) + kKeyOff);
        auto v = co_await ctx.read<std::uint64_t>(
                slotAddr(base, j) + kValOff);
        auto n = co_await ctx.read<std::uint32_t>(
                slotAddr(base, j) + kNextOff);
        live.emplace_back(k, v);
        j = n;
    }
    psim_assert(live.size() == c->entries,
                "kvstore LRU list length disagrees with entry count");
    // Sequential sweep clearing live keys and tombstones alike.
    for (unsigned s = 0; s < _cap; ++s) {
        auto k = co_await ctx.read<std::uint64_t>(
                slotAddr(base, s) + kKeyOff);
        if (k != kEmpty)
            co_await ctx.write<std::uint64_t>(slotAddr(base, s) + kKeyOff,
                                              kEmpty);
    }
    c->head = c->tail = kNil;
    c->entries = 0;
    c->tombs = 0;
    // Reinsert LRU-first so pushFront rebuilds the exact LRU order.
    const std::uint32_t mask = _cap - 1;
    for (auto it = live.rbegin(); it != live.rend(); ++it) {
        std::uint32_t s =
                static_cast<std::uint32_t>(mix64(it->first - 1)) & mask;
        for (;;) {
            auto k = co_await ctx.read<std::uint64_t>(
                    slotAddr(base, s) + kKeyOff);
            if (k == kEmpty)
                break;
            s = (s + 1) & mask;
        }
        co_await ctx.write<std::uint64_t>(slotAddr(base, s) + kKeyOff,
                                          it->first);
        co_await ctx.write<std::uint64_t>(slotAddr(base, s) + kValOff,
                                          it->second);
        ++c->entries;
        co_await lruPushFront(ctx, base, s, c);
    }
    ++c->compactions;
}

// ---- workload glue ---------------------------------------------------

void
KvStoreWorkload::setup(Machine &m)
{
    const MachineConfig &cfg = m.cfg();
    const unsigned nproc = m.numProcs();
    _seed = cfg.seed;
    _theta = cfg.server.zipfTheta;
    _interArrival = cfg.server.interArrival;
    _cap = 256 * nextPow2(_scale);
    _nkeys = _cap;
    const std::uint64_t total = cfg.server.requests
                                        ? cfg.server.requests
                                        : 384ull * _scale;
    _perEpoch = std::max<std::uint64_t>(1, total / kEpochs);
    _zipf = std::make_unique<ZipfSampler>(_nkeys, _theta);

    _slots = shm().alloc(
            static_cast<std::size_t>(nproc) * _cap * kSlotBytes,
            cfg.pageSize);
    _hdr = shm().alloc(static_cast<std::size_t>(nproc) * kHdrBytes,
                       kHdrBytes);
    _dir = shm().alloc(kDirWords * 8, cfg.pageSize);
    _bar = shm().allocSync();

    for (unsigned d = 0; d < kDirWords; ++d)
        m.store().store<std::uint64_t>(_dir + static_cast<Addr>(d) * 8,
                                       dirWord(_seed, d));

    // Preload every partition to a quarter of capacity.
    std::vector<State> st(nproc);
    for (unsigned t = 0; t < nproc; ++t) {
        State &s = st[t];
        s.key.assign(_cap, kEmpty);
        s.val.assign(_cap, 0);
        s.prev.assign(_cap, kNil);
        s.next.assign(_cap, kNil);
        s.head = s.tail = kNil;
        for (std::uint64_t k = 0; k < _cap / 4; ++k) {
            std::uint64_t pk = scrambleRank(k, _nkeys);
            modelPut(s, pk, preloadVal(_seed, t, pk));
        }
    }
    _start.assign(nproc, Cursor{});
    for (unsigned t = 0; t < nproc; ++t)
        _start[t] = static_cast<const Cursor &>(st[t]);

    // Write the preloaded partitions (and headers) into the store.
    for (unsigned t = 0; t < nproc; ++t) {
        const State &s = st[t];
        const Addr base = partitionBase(t);
        for (std::uint32_t i = 0; i < _cap; ++i) {
            m.store().store<std::uint64_t>(slotAddr(base, i) + kKeyOff,
                                           s.key[i]);
            m.store().store<std::uint64_t>(slotAddr(base, i) + kValOff,
                                           s.val[i]);
            m.store().store<std::uint32_t>(slotAddr(base, i) + kPrevOff,
                                           s.prev[i]);
            m.store().store<std::uint32_t>(slotAddr(base, i) + kNextOff,
                                           s.next[i]);
        }
        const Addr h = _hdr + static_cast<Addr>(t) * kHdrBytes;
        m.store().store<std::uint32_t>(h + 0, s.head);
        m.store().store<std::uint32_t>(h + 4, s.tail);
        m.store().store<std::uint32_t>(h + 8, s.entries);
        m.store().store<std::uint32_t>(h + 12, s.tombs);
        for (unsigned f = 16; f < 64; f += 8)
            m.store().store<std::uint64_t>(h + f, 0);
    }

    // Native replay of the exact request streams, epoch-synchronous.
    std::vector<RequestGen> gens;
    gens.reserve(nproc);
    for (unsigned t = 0; t < nproc; ++t) {
        ReqGenParams p;
        p.seed = _seed;
        p.thread = t;
        p.keys = _nkeys;
        p.theta = _theta;
        p.writeFraction = kWriteFraction;
        p.interArrival = _interArrival;
        gens.emplace_back(p, *_zipf);
    }
    for (unsigned epoch = 0; epoch < kEpochs; ++epoch) {
        for (unsigned t = 0; t < nproc; ++t) {
            for (std::uint64_t i = 0; i < _perEpoch; ++i) {
                const std::uint64_t r = epoch * _perEpoch + i;
                Request q = gens[t].at(r);
                unsigned d = static_cast<unsigned>(mix64(q.key)) &
                             (kDirWords - 1);
                st[t].dirAcc ^= dirWord(_seed, d) + r;
                if (q.op == Request::Op::Read)
                    modelGet(st[t], q.key);
                else
                    modelPut(st[t], q.key, valueOf(_seed, t, r, q.key));
            }
        }
        for (unsigned t = 0; t < nproc; ++t) {
            const State &nb = st[(t + 1) % nproc];
            std::uint64_t sum = 0;
            for (unsigned s = 0; s < _cap; ++s)
                sum += nb.key[s] + nb.val[s];
            st[t].scanSum += sum;
        }
    }
    _ref = std::move(st);
}

Task
KvStoreWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const Addr base = partitionBase(tid);

    ReqGenParams p;
    p.seed = _seed;
    p.thread = tid;
    p.keys = _nkeys;
    p.theta = _theta;
    p.writeFraction = kWriteFraction;
    p.interArrival = _interArrival;
    RequestGen gen(p, *_zipf);

    Cursor c = _start[tid];
    for (unsigned epoch = 0; epoch < kEpochs; ++epoch) {
        for (std::uint64_t i = 0; i < _perEpoch; ++i) {
            const std::uint64_t r = epoch * _perEpoch + i;
            Request q = gen.at(r);
            if (q.think)
                co_await ctx.think(q.think);
            unsigned d = static_cast<unsigned>(mix64(q.key)) &
                         (kDirWords - 1);
            auto dv = co_await ctx.read<std::uint64_t>(
                    _dir + static_cast<Addr>(d) * 8);
            c.dirAcc ^= dv + r;
            if (q.op == Request::Op::Read)
                co_await doGet(ctx, base, q.key, &c);
            else
                co_await doPut(ctx, base, q.key,
                               valueOf(_seed, tid, r, q.key), &c);
        }
        // Requests done everywhere; partitions are now frozen for the
        // replication pull over the neighbour's slots.
        co_await ctx.barrier(_bar);
        const Addr nbase = partitionBase((tid + 1) % nproc);
        std::uint64_t sum = 0;
        for (unsigned s = 0; s < _cap; ++s) {
            auto k = co_await ctx.read<std::uint64_t>(
                    slotAddr(nbase, s) + kKeyOff);
            auto v = co_await ctx.read<std::uint64_t>(
                    slotAddr(nbase, s) + kValOff);
            sum += k + v;
        }
        c.scanSum += sum;
        // Scans done everywhere; partitions may mutate again.
        co_await ctx.barrier(_bar);
    }

    const Addr h = _hdr + static_cast<Addr>(tid) * kHdrBytes;
    co_await ctx.write<std::uint32_t>(h + 0, c.head);
    co_await ctx.write<std::uint32_t>(h + 4, c.tail);
    co_await ctx.write<std::uint32_t>(h + 8, c.entries);
    co_await ctx.write<std::uint32_t>(h + 12, c.tombs);
    co_await ctx.write<std::uint64_t>(h + 16, c.hits);
    co_await ctx.write<std::uint64_t>(h + 24, c.misses);
    co_await ctx.write<std::uint64_t>(h + 32, c.evicts);
    co_await ctx.write<std::uint64_t>(h + 40, c.compactions);
    co_await ctx.write<std::uint64_t>(h + 48, c.scanSum);
    co_await ctx.write<std::uint64_t>(h + 56, c.dirAcc);
}

bool
KvStoreWorkload::verify(Machine &m)
{
    const unsigned nproc = m.numProcs();
    for (unsigned t = 0; t < nproc; ++t) {
        const State &s = _ref[t];
        const Addr base = partitionBase(t);
        for (std::uint32_t i = 0; i < _cap; ++i) {
            if (m.store().load<std::uint64_t>(slotAddr(base, i) +
                                              kKeyOff) != s.key[i] ||
                m.store().load<std::uint64_t>(slotAddr(base, i) +
                                              kValOff) != s.val[i] ||
                m.store().load<std::uint32_t>(slotAddr(base, i) +
                                              kPrevOff) != s.prev[i] ||
                m.store().load<std::uint32_t>(slotAddr(base, i) +
                                              kNextOff) != s.next[i]) {
                return false;
            }
        }
        const Addr h = _hdr + static_cast<Addr>(t) * kHdrBytes;
        if (m.store().load<std::uint32_t>(h + 0) != s.head ||
            m.store().load<std::uint32_t>(h + 4) != s.tail ||
            m.store().load<std::uint32_t>(h + 8) != s.entries ||
            m.store().load<std::uint32_t>(h + 12) != s.tombs ||
            m.store().load<std::uint64_t>(h + 16) != s.hits ||
            m.store().load<std::uint64_t>(h + 24) != s.misses ||
            m.store().load<std::uint64_t>(h + 32) != s.evicts ||
            m.store().load<std::uint64_t>(h + 40) != s.compactions ||
            m.store().load<std::uint64_t>(h + 48) != s.scanSum ||
            m.store().load<std::uint64_t>(h + 56) != s.dirAcc) {
            return false;
        }
    }
    return true;
}

} // namespace psim::apps
