#include "apps/logappend.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace psim::apps
{

namespace
{

constexpr unsigned kRecBytes = 32; ///< {seq, key, payload, checksum}
constexpr unsigned kIdxBytes = 16; ///< {key+1 u64 (0 empty), seq u64}
constexpr unsigned kGroupCommit = 32;
constexpr unsigned kResultStride = 64;

std::uint64_t
mix64(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
}

std::uint64_t
nextPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

std::uint64_t
payloadOf(std::uint64_t seed, unsigned t, std::uint64_t r)
{
    return mix64(seed ^ (static_cast<std::uint64_t>(t) << 40) ^
                 (r * 0x9e3779b97f4a7c15ULL));
}

std::uint64_t
checksumOf(std::uint64_t seq, std::uint64_t key, std::uint64_t pay)
{
    return mix64(seq * 0x9e3779b97f4a7c15ULL ^
                 key * 0xbf58476d1ce4e5b9ULL ^ pay);
}

Addr
alignUp256(Addr bytes)
{
    return (bytes + 255) & ~static_cast<Addr>(255);
}

} // namespace

LogAppendWorkload::LogAppendWorkload(unsigned scale) : Workload(scale) {}

Addr
LogAppendWorkload::recAddr(unsigned t, std::uint64_t r) const
{
    const Addr stride = alignUp256(static_cast<Addr>(_perThread) *
                                   kRecBytes);
    return _log + static_cast<Addr>(t) * stride +
           static_cast<Addr>(r) * kRecBytes;
}

Addr
LogAppendWorkload::idxAddr(unsigned t, std::uint64_t s) const
{
    const Addr stride = alignUp256(static_cast<Addr>(_idxCap) *
                                   kIdxBytes);
    return _index + static_cast<Addr>(t) * stride +
           static_cast<Addr>(s) * kIdxBytes;
}

void
LogAppendWorkload::setup(Machine &m)
{
    const MachineConfig &cfg = m.cfg();
    const unsigned nproc = m.numProcs();
    _seed = cfg.seed;
    _theta = cfg.server.zipfTheta;
    _interArrival = cfg.server.interArrival;
    _perThread = cfg.server.requests ? cfg.server.requests
                                     : 256ull * _scale;
    _idxCap = 2 * nextPow2(_perThread); // load factor <= 50%
    _nkeys = _idxCap;
    _zipf = std::make_unique<ZipfSampler>(_nkeys, _theta);

    _log = shm().alloc(
            static_cast<std::size_t>(nproc) *
                    alignUp256(static_cast<Addr>(_perThread) * kRecBytes),
            cfg.pageSize);
    _index = shm().alloc(
            static_cast<std::size_t>(nproc) *
                    alignUp256(static_cast<Addr>(_idxCap) * kIdxBytes),
            cfg.pageSize);
    _commit = shm().allocSync();
    _commitLock = shm().allocSync();
    _results = shm().alloc(static_cast<std::size_t>(nproc) * kResultStride,
                           kResultStride);
    _bar = shm().allocSync();

    for (unsigned t = 0; t < nproc; ++t) {
        for (std::uint64_t r = 0; r < _perThread; ++r) {
            for (unsigned f = 0; f < kRecBytes; f += 8)
                m.store().store<std::uint64_t>(recAddr(t, r) + f, 0);
        }
        for (std::uint64_t s = 0; s < _idxCap; ++s) {
            m.store().store<std::uint64_t>(idxAddr(t, s) + 0, 0);
            m.store().store<std::uint64_t>(idxAddr(t, s) + 8, 0);
        }
        const Addr res = _results + static_cast<Addr>(t) * kResultStride;
        for (unsigned f = 0; f < 24; f += 8)
            m.store().store<std::uint64_t>(res + f, 0);
    }
    m.store().store<std::uint64_t>(_commit, 0);

    // Native reference: indexes from the same streams, replay sums.
    _refIdxKey.assign(static_cast<std::size_t>(nproc) * _idxCap, 0);
    _refIdxSeq.assign(static_cast<std::size_t>(nproc) * _idxCap, 0);
    _refValid.assign(nproc, 0);
    _refPaySum.assign(nproc, 0);
    const std::uint64_t mask = _idxCap - 1;
    for (unsigned t = 0; t < nproc; ++t) {
        ReqGenParams p;
        p.seed = _seed;
        p.thread = t;
        p.keys = _nkeys;
        p.theta = _theta;
        p.interArrival = _interArrival;
        RequestGen gen(p, *_zipf);
        std::uint64_t *ikey = _refIdxKey.data() +
                              static_cast<std::size_t>(t) * _idxCap;
        std::uint64_t *iseq = _refIdxSeq.data() +
                              static_cast<std::size_t>(t) * _idxCap;
        for (std::uint64_t r = 0; r < _perThread; ++r) {
            Request q = gen.at(r);
            std::uint64_t s = mix64(q.key) & mask;
            for (std::uint64_t probes = 0;; ++probes, s = (s + 1) & mask) {
                psim_assert(probes < _idxCap,
                            "logappend index probe ran off the end");
                if (ikey[s] == q.key + 1) {
                    iseq[s] = r;
                    break;
                }
                if (ikey[s] == 0) {
                    ikey[s] = q.key + 1;
                    iseq[s] = r;
                    break;
                }
            }
        }
    }
    for (unsigned t = 0; t < nproc; ++t) {
        const unsigned nb = (t + 1) % nproc;
        ReqGenParams p;
        p.seed = _seed;
        p.thread = nb;
        p.keys = _nkeys;
        p.theta = _theta;
        p.interArrival = _interArrival;
        RequestGen gen(p, *_zipf);
        for (std::uint64_t r = 0; r < _perThread; ++r) {
            Request q = gen.at(r);
            std::uint64_t pay = payloadOf(_seed, nb, r);
            // The recomputed checksum always matches the appended one;
            // the replay "validates" it the way a recovery scan would.
            ++_refValid[t];
            _refPaySum[t] += pay;
            (void)q;
        }
    }
    _refCommit = static_cast<std::uint64_t>(nproc) *
                 (_perThread / kGroupCommit);
}

Task
LogAppendWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const std::uint64_t mask = _idxCap - 1;

    ReqGenParams p;
    p.seed = _seed;
    p.thread = tid;
    p.keys = _nkeys;
    p.theta = _theta;
    p.interArrival = _interArrival;
    RequestGen gen(p, *_zipf);

    // ---- append phase: sequential log writes + index upserts ----
    for (std::uint64_t r = 0; r < _perThread; ++r) {
        Request q = gen.at(r);
        if (q.think)
            co_await ctx.think(q.think);
        const std::uint64_t pay = payloadOf(_seed, tid, r);
        const Addr rec = recAddr(tid, r);
        co_await ctx.write<std::uint64_t>(rec + 0, r);
        co_await ctx.write<std::uint64_t>(rec + 8, q.key);
        co_await ctx.write<std::uint64_t>(rec + 16, pay);
        co_await ctx.write<std::uint64_t>(rec + 24,
                                          checksumOf(r, q.key, pay));
        // Index upsert: scattered probe into the owner's hash index.
        std::uint64_t s = mix64(q.key) & mask;
        for (std::uint64_t probes = 0;; ++probes, s = (s + 1) & mask) {
            psim_assert(probes < _idxCap,
                        "logappend index probe ran off the end");
            auto k = co_await ctx.read<std::uint64_t>(
                    idxAddr(tid, s) + 0);
            if (k == q.key + 1) {
                co_await ctx.write<std::uint64_t>(idxAddr(tid, s) + 8, r);
                break;
            }
            if (k == 0) {
                co_await ctx.write<std::uint64_t>(idxAddr(tid, s) + 0,
                                                  q.key + 1);
                co_await ctx.write<std::uint64_t>(idxAddr(tid, s) + 8, r);
                break;
            }
        }
        // Group commit: a migratory block bouncing between writers.
        if ((r + 1) % kGroupCommit == 0) {
            co_await ctx.lock(_commitLock);
            auto c = co_await ctx.read<std::uint64_t>(_commit);
            co_await ctx.write<std::uint64_t>(_commit, c + 1);
            co_await ctx.unlock(_commitLock);
        }
    }

    // Segments complete and henceforth read-only.
    co_await ctx.barrier(_bar);

    // ---- replay phase: stream the neighbour's segment ----
    const unsigned nb = (tid + 1) % nproc;
    std::uint64_t valid = 0, paySum = 0;
    for (std::uint64_t r = 0; r < _perThread; ++r) {
        const Addr rec = recAddr(nb, r);
        auto seq = co_await ctx.read<std::uint64_t>(rec + 0);
        auto key = co_await ctx.read<std::uint64_t>(rec + 8);
        auto pay = co_await ctx.read<std::uint64_t>(rec + 16);
        auto chk = co_await ctx.read<std::uint64_t>(rec + 24);
        if (chk == checksumOf(seq, key, pay)) {
            ++valid;
            paySum += pay;
        }
    }
    auto commits = co_await ctx.read<std::uint64_t>(_commit);

    const Addr res = _results + static_cast<Addr>(tid) * kResultStride;
    co_await ctx.write<std::uint64_t>(res + 0, valid);
    co_await ctx.write<std::uint64_t>(res + 8, paySum);
    co_await ctx.write<std::uint64_t>(res + 16, commits);
}

bool
LogAppendWorkload::verify(Machine &m)
{
    const unsigned nproc = m.numProcs();
    for (unsigned t = 0; t < nproc; ++t) {
        // Segments are pure functions of (seed, thread, index).
        ReqGenParams p;
        p.seed = _seed;
        p.thread = t;
        p.keys = _nkeys;
        p.theta = _theta;
        p.interArrival = _interArrival;
        RequestGen gen(p, *_zipf);
        for (std::uint64_t r = 0; r < _perThread; ++r) {
            Request q = gen.at(r);
            std::uint64_t pay = payloadOf(_seed, t, r);
            const Addr rec = recAddr(t, r);
            if (m.store().load<std::uint64_t>(rec + 0) != r ||
                m.store().load<std::uint64_t>(rec + 8) != q.key ||
                m.store().load<std::uint64_t>(rec + 16) != pay ||
                m.store().load<std::uint64_t>(rec + 24) !=
                        checksumOf(r, q.key, pay)) {
                return false;
            }
        }
        const std::uint64_t *ikey =
                _refIdxKey.data() + static_cast<std::size_t>(t) * _idxCap;
        const std::uint64_t *iseq =
                _refIdxSeq.data() + static_cast<std::size_t>(t) * _idxCap;
        for (std::uint64_t s = 0; s < _idxCap; ++s) {
            if (m.store().load<std::uint64_t>(idxAddr(t, s) + 0) !=
                        ikey[s] ||
                m.store().load<std::uint64_t>(idxAddr(t, s) + 8) !=
                        iseq[s]) {
                return false;
            }
        }
        const Addr res = _results + static_cast<Addr>(t) * kResultStride;
        if (m.store().load<std::uint64_t>(res + 0) != _refValid[t] ||
            m.store().load<std::uint64_t>(res + 8) != _refPaySum[t] ||
            m.store().load<std::uint64_t>(res + 16) != _refCommit) {
            return false;
        }
    }
    if (m.store().load<std::uint64_t>(_commit) != _refCommit)
        return false;
    return true;
}

} // namespace psim::apps
