#include "apps/water.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

namespace
{

constexpr double kDt = 0.002;

/** State mirrored natively for the reference computation. */
struct Mol
{
    double x, y, z;
    double dipx, dipy;
    double quad;
    double moment;
    double vx, vy, vz;
};

/** Pairwise force contribution of molecule j on molecule i. */
void
pairForce(const Mol &mi, const Mol &mj, double &fx, double &fy, double &fz)
{
    double dx = mj.x - mi.x;
    double dy = mj.y - mi.y;
    double dz = mj.z - mi.z;
    double r2 = dx * dx + dy * dy + dz * dz + 0.25;
    double coupling = (1.0 + mj.dipx * mj.dipy + 0.1 * mj.quad) +
                      0.01 * mj.moment;
    double s = coupling / (r2 * std::sqrt(r2));
    fx += dx * s;
    fy += dy * s;
    fz += dz * s;
}

} // namespace

WaterWorkload::WaterWorkload(unsigned scale) : Workload(scale)
{
    _nmol = 48 + 48 * scale; // paper: 288 molecules
    _steps = 3;              // paper: 4 time steps
}

void
WaterWorkload::setup(Machine &m)
{
    _mols = shm().alloc(static_cast<std::size_t>(_nmol) * kRecordBytes,
                        m.cfg().pageSize);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x4u);
    std::vector<Mol> mols(_nmol);
    for (unsigned i = 0; i < _nmol; ++i) {
        Mol &mol = mols[i];
        mol.x = 10.0 * rng.real();
        mol.y = 10.0 * rng.real();
        mol.z = 10.0 * rng.real();
        mol.dipx = rng.real() - 0.5;
        mol.dipy = rng.real() - 0.5;
        mol.quad = rng.real();
        mol.moment = rng.real();
        mol.vx = mol.vy = mol.vz = 0.0;
        m.store().store<double>(field(i, kPosX), mol.x);
        m.store().store<double>(field(i, kPosY), mol.y);
        m.store().store<double>(field(i, kPosZ), mol.z);
        m.store().store<double>(field(i, kDipole), mol.dipx);
        m.store().store<double>(field(i, kDipole + 8), mol.dipy);
        m.store().store<double>(field(i, kCharge + 24), mol.quad);
        m.store().store<double>(field(i, 96), mol.moment);
        m.store().store<double>(field(i, kVelX), 0.0);
        m.store().store<double>(field(i, kVelY), 0.0);
        m.store().store<double>(field(i, kVelZ), 0.0);
    }

    // Native reference: identical loop and accumulation order.
    std::vector<Mol> cur = mols;
    for (unsigned step = 0; step < _steps; ++step) {
        std::vector<double> f(static_cast<std::size_t>(_nmol) * 3, 0.0);
        for (unsigned i = 0; i < _nmol; ++i) {
            for (unsigned j = 0; j < _nmol; ++j) {
                if (j == i)
                    continue;
                pairForce(cur[i], cur[j], f[3 * i], f[3 * i + 1],
                          f[3 * i + 2]);
            }
        }
        for (unsigned i = 0; i < _nmol; ++i) {
            Mol &mol = cur[i];
            mol.vx += f[3 * i] * kDt;
            mol.vy += f[3 * i + 1] * kDt;
            mol.vz += f[3 * i + 2] * kDt;
            mol.x += mol.vx * kDt;
            mol.y += mol.vy * kDt;
            mol.z += mol.vz * kDt;
            mol.dipx += 0.01 * mol.vx;
            mol.dipy += 0.01 * mol.vy;
            mol.quad += 0.001 * mol.vz;
            mol.moment += 0.0001 * (mol.vx + mol.vy);
        }
    }
    _refPos.resize(static_cast<std::size_t>(_nmol) * 3);
    for (unsigned i = 0; i < _nmol; ++i) {
        _refPos[3 * i] = cur[i].x;
        _refPos[3 * i + 1] = cur[i].y;
        _refPos[3 * i + 2] = cur[i].z;
    }
}

Task
WaterWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const unsigned chunk = _nmol / nproc;
    const unsigned lo = tid * chunk;
    const unsigned hi = (tid == nproc - 1) ? _nmol : lo + chunk;

    for (unsigned step = 0; step < _steps; ++step) {
        // Force phase: stream the first four blocks of every other
        // molecule's record (stride 21 blocks between records, adjacent
        // blocks within one).
        for (unsigned i = lo; i < hi; ++i) {
            Mol mi;
            mi.x = co_await ctx.read<double>(field(i, kPosX));
            mi.y = co_await ctx.read<double>(field(i, kPosY));
            mi.z = co_await ctx.read<double>(field(i, kPosZ));
            double fx = 0, fy = 0, fz = 0;
            for (unsigned j = 0; j < _nmol; ++j) {
                if (j == i)
                    continue;
                Mol mj;
                mj.x = co_await ctx.read<double>(field(j, kPosX));
                mj.y = co_await ctx.read<double>(field(j, kPosY));
                mj.z = co_await ctx.read<double>(field(j, kPosZ));
                mj.dipx = co_await ctx.read<double>(field(j, kDipole));
                mj.dipy = co_await ctx.read<double>(
                        field(j, kDipole + 8));
                mj.quad = co_await ctx.read<double>(
                        field(j, kCharge + 24));
                mj.moment = co_await ctx.read<double>(field(j, 96));
                pairForce(mi, mj, fx, fy, fz);
                co_await ctx.think(12);
            }
            co_await ctx.write<double>(field(i, kForceX), fx);
            co_await ctx.write<double>(field(i, kForceY), fy);
            co_await ctx.write<double>(field(i, kForceZ), fz);
        }
        co_await ctx.barrier(_bar);

        // Integrate own molecules; rewriting the streamed fields is
        // what turns the next step's force reads into coherence misses.
        for (unsigned i = lo; i < hi; ++i) {
            double fx = co_await ctx.read<double>(field(i, kForceX));
            double fy = co_await ctx.read<double>(field(i, kForceY));
            double fz = co_await ctx.read<double>(field(i, kForceZ));
            double vx = co_await ctx.read<double>(field(i, kVelX)) +
                        fx * kDt;
            double vy = co_await ctx.read<double>(field(i, kVelY)) +
                        fy * kDt;
            double vz = co_await ctx.read<double>(field(i, kVelZ)) +
                        fz * kDt;
            double x = co_await ctx.read<double>(field(i, kPosX)) +
                       vx * kDt;
            double y = co_await ctx.read<double>(field(i, kPosY)) +
                       vy * kDt;
            double z = co_await ctx.read<double>(field(i, kPosZ)) +
                       vz * kDt;
            co_await ctx.write<double>(field(i, kVelX), vx);
            co_await ctx.write<double>(field(i, kVelY), vy);
            co_await ctx.write<double>(field(i, kVelZ), vz);
            co_await ctx.write<double>(field(i, kPosX), x);
            co_await ctx.write<double>(field(i, kPosY), y);
            co_await ctx.write<double>(field(i, kPosZ), z);

            double dipx = co_await ctx.read<double>(field(i, kDipole)) +
                          0.01 * vx;
            double dipy = co_await ctx.read<double>(
                                  field(i, kDipole + 8)) +
                          0.01 * vy;
            double quad = co_await ctx.read<double>(
                                  field(i, kCharge + 24)) +
                          0.001 * vz;
            double moment = co_await ctx.read<double>(field(i, 96)) +
                            0.0001 * (vx + vy);
            co_await ctx.write<double>(field(i, kDipole), dipx);
            co_await ctx.write<double>(field(i, kDipole + 8), dipy);
            co_await ctx.write<double>(field(i, kCharge + 24), quad);
            co_await ctx.write<double>(field(i, 96), moment);
        }
        co_await ctx.barrier(_bar);
    }
}

bool
WaterWorkload::verify(Machine &m)
{
    for (unsigned i = 0; i < _nmol; ++i) {
        double x = m.store().load<double>(field(i, kPosX));
        double y = m.store().load<double>(field(i, kPosY));
        double z = m.store().load<double>(field(i, kPosZ));
        if (std::fabs(x - _refPos[3 * i]) > 1e-9 ||
            std::fabs(y - _refPos[3 * i + 1]) > 1e-9 ||
            std::fabs(z - _refPos[3 * i + 2]) > 1e-9) {
            return false;
        }
    }
    return true;
}

} // namespace psim::apps
