#include "apps/mp3d.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

namespace
{

constexpr double kDt = 0.05;

std::uint64_t
mix(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return v;
}

} // namespace

Mp3dWorkload::Mp3dWorkload(unsigned scale) : Workload(scale)
{
    _steps = 5; // paper: 10K particles, 10 steps
    _space = 0; // sized in setup once the processor count is known
}

unsigned
Mp3dWorkload::partnerOf(unsigned p, unsigned step) const
{
    std::uint64_t h = mix((static_cast<std::uint64_t>(p) << 20) ^
                          (step * 0x9e3779b9ULL));
    unsigned q = static_cast<unsigned>(h % _npart);
    if (q == p)
        q = (q + 1) % _npart;
    return q;
}

void
Mp3dWorkload::setup(Machine &m)
{
    unsigned nproc = m.numProcs();
    _npart = 640 * nproc * _scale; // 10,240 particles at 16 procs
    _ncell = 128 * nproc * _scale;
    _space = static_cast<double>(_ncell);

    _parts = shm().alloc(static_cast<std::size_t>(_npart) * kRecordBytes,
                         m.cfg().pageSize);
    _cells = shm().alloc(static_cast<std::size_t>(_ncell) * 32,
                         m.cfg().pageSize);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x6u);
    unsigned chunk = _npart / nproc;
    std::vector<double> pos(_npart);
    std::vector<double> vel(_npart);
    std::vector<double> energy(_npart);
    std::vector<double> spin(_npart);
    std::vector<double> weight(_npart);
    for (unsigned p = 0; p < _npart; ++p) {
        // Each processor's chunk spans the whole space in ascending
        // order, so its cell accesses ascend with growing jitter.
        unsigned local = p % chunk;
        pos[p] = (local + 0.5) * _space / chunk +
                 8.0 * (rng.real() - 0.5);
        if (pos[p] < 0)
            pos[p] += _space;
        if (pos[p] >= _space)
            pos[p] -= _space;
        vel[p] = 2.0 * (rng.real() - 0.5);
        energy[p] = rng.real();
        spin[p] = rng.real() - 0.5;
        weight[p] = 0.5 + rng.real();
        m.store().store<double>(pfield(p, kPos), pos[p]);
        m.store().store<double>(pfield(p, kVel), vel[p]);
        m.store().store<double>(pfield(p, kEnergy), energy[p]);
        m.store().store<double>(pfield(p, kSpin), spin[p]);
        m.store().store<double>(pfield(p, kWeight), weight[p]);
    }
    std::vector<double> dens(_ncell);
    for (unsigned c = 0; c < _ncell; ++c) {
        dens[c] = 1.0 + 0.1 * (rng.real() - 0.5);
        m.store().store<double>(cellAddr(c), dens[c]);
    }

    // Native reference: move -> (barrier) -> collide -> (barrier) ->
    // cell update, all deterministic per particle.
    for (unsigned step = 0; step < _steps; ++step) {
        for (unsigned p = 0; p < _npart; ++p) {
            unsigned c = static_cast<unsigned>(pos[p] * _ncell / _space);
            if (c >= _ncell)
                c = _ncell - 1;
            vel[p] += 0.001 * (dens[c] - 1.0);
            pos[p] += vel[p] * kDt;
            if (pos[p] >= _space)
                pos[p] -= _space;
            if (pos[p] < 0)
                pos[p] += _space;
        }
        std::vector<double> new_energy = energy;
        std::vector<double> new_spin = spin;
        for (unsigned p = 0; p < _npart; ++p) {
            if (mix(p ^ (step * 77ULL)) % 2 != 0)
                continue;
            unsigned q = partnerOf(p, step);
            new_energy[p] = 0.5 * (energy[p] +
                    weight[q] * (vel[q] * vel[q] + 0.01 * pos[q]));
            new_spin[p] = spin[p] + 0.1 * (vel[q] - vel[p]);
        }
        energy.swap(new_energy);
        spin.swap(new_spin);
        for (unsigned c = 0; c < _ncell; ++c)
            dens[c] = 0.9 * dens[c] + 0.02 * std::sin(0.1 * (c + step));
    }
    _refPos = pos;
    _refVel = vel;
}

Task
Mp3dWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const unsigned chunk = _npart / nproc;
    const unsigned lo = tid * chunk;
    const unsigned hi = lo + chunk;
    const unsigned clo = tid * (_ncell / nproc);
    const unsigned chi = clo + _ncell / nproc;

    for (unsigned step = 0; step < _steps; ++step) {
        // Move phase: advance own particles through the space-cell
        // field (cell reads ascend with jitter: local, not strided).
        for (unsigned p = lo; p < hi; ++p) {
            double pos = co_await ctx.read<double>(pfield(p, kPos));
            double vel = co_await ctx.read<double>(pfield(p, kVel));
            unsigned c = static_cast<unsigned>(pos * _ncell / _space);
            if (c >= _ncell)
                c = _ncell - 1;
            double dens = co_await ctx.read<double>(cellAddr(c));
            vel += 0.001 * (dens - 1.0);
            pos += vel * kDt;
            if (pos >= _space)
                pos -= _space;
            if (pos < 0)
                pos += _space;
            co_await ctx.write<double>(pfield(p, kPos), pos);
            co_await ctx.write<double>(pfield(p, kVel), vel);
            co_await ctx.think(8);
        }
        co_await ctx.barrier(_bar);

        // Collision phase: read a pseudo-random partner's record (it
        // straddles two blocks) and update own energy/spin only.
        for (unsigned p = lo; p < hi; ++p) {
            if (mix(p ^ (step * 77ULL)) % 2 != 0)
                continue;
            unsigned q = partnerOf(p, step);
            double qpos = co_await ctx.read<double>(pfield(q, kPos));
            double qvel = co_await ctx.read<double>(pfield(q, kVel));
            double qw = co_await ctx.read<double>(pfield(q, kWeight));
            double e = co_await ctx.read<double>(pfield(p, kEnergy));
            double s = co_await ctx.read<double>(pfield(p, kSpin));
            double v = co_await ctx.read<double>(pfield(p, kVel));
            co_await ctx.write<double>(pfield(p, kEnergy),
                    0.5 * (e + qw * (qvel * qvel + 0.01 * qpos)));
            co_await ctx.write<double>(pfield(p, kSpin),
                    s + 0.1 * (qvel - v));
            co_await ctx.think(10);
        }
        co_await ctx.barrier(_bar);

        // Cell update: each processor refreshes its own cells.
        for (unsigned c = clo; c < chi; ++c) {
            double dens = co_await ctx.read<double>(cellAddr(c));
            co_await ctx.write<double>(cellAddr(c),
                    0.9 * dens + 0.02 * std::sin(0.1 * (c + step)));
        }
        co_await ctx.barrier(_bar);
    }
}

bool
Mp3dWorkload::verify(Machine &m)
{
    for (unsigned p = 0; p < _npart; ++p) {
        double pos = m.store().load<double>(pfield(p, kPos));
        double vel = m.store().load<double>(pfield(p, kVel));
        if (std::fabs(pos - _refPos[p]) > 1e-9 ||
            std::fabs(vel - _refVel[p]) > 1e-9) {
            return false;
        }
    }
    return true;
}

} // namespace psim::apps
