#include "apps/matmul.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

MatmulWorkload::MatmulWorkload(unsigned scale) : Workload(scale)
{
    _n = 24 + 24 * scale;
}

void
MatmulWorkload::setup(Machine &m)
{
    std::size_t bytes = static_cast<std::size_t>(_n) * _n * sizeof(double);
    _a = shm().alloc(bytes, m.cfg().pageSize);
    _b = shm().alloc(bytes, m.cfg().pageSize);
    _c = shm().alloc(bytes, m.cfg().pageSize);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x2u);
    std::vector<double> a(static_cast<std::size_t>(_n) * _n);
    std::vector<double> b(a.size());
    for (std::size_t idx = 0; idx < a.size(); ++idx) {
        a[idx] = rng.real();
        b[idx] = rng.real();
        unsigned i = static_cast<unsigned>(idx) / _n;
        unsigned j = static_cast<unsigned>(idx) % _n;
        m.store().store<double>(at(_a, i, j), a[idx]);
        m.store().store<double>(at(_b, i, j), b[idx]);
        m.store().store<double>(at(_c, i, j), 0.0);
    }

    _ref.assign(a.size(), 0.0);
    for (unsigned i = 0; i < _n; ++i) {
        for (unsigned j = 0; j < _n; ++j) {
            double sum = 0;
            for (unsigned k = 0; k < _n; ++k) {
                sum += a[static_cast<std::size_t>(i) * _n + k] *
                       b[static_cast<std::size_t>(k) * _n + j];
            }
            _ref[static_cast<std::size_t>(i) * _n + j] = sum;
        }
    }
}

Task
MatmulWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const unsigned rows = (_n + nproc - 1) / nproc;
    const unsigned lo = tid * rows;
    const unsigned hi = std::min(_n, lo + rows);

    for (unsigned i = lo; i < hi; ++i) {
        for (unsigned j = 0; j < _n; ++j) {
            double sum = co_await ctx.read<double>(at(_c, i, j));
            for (unsigned k = 0; k < _n; ++k) {
                // A[i,k]: element stride; B[k,j]: row stride (Figure 2).
                double aik = co_await ctx.read<double>(at(_a, i, k));
                double bkj = co_await ctx.read<double>(at(_b, k, j));
                sum += aik * bkj;
                co_await ctx.think(8);
            }
            co_await ctx.write<double>(at(_c, i, j), sum);
        }
    }
    co_await ctx.barrier(_bar);
}

bool
MatmulWorkload::verify(Machine &m)
{
    for (unsigned i = 0; i < _n; ++i) {
        for (unsigned j = 0; j < _n; ++j) {
            double got = m.store().load<double>(at(_c, i, j));
            double want = _ref[static_cast<std::size_t>(i) * _n + j];
            if (std::fabs(got - want) >
                1e-9 * std::max(1.0, std::fabs(want))) {
                return false;
            }
        }
    }
    return true;
}

} // namespace psim::apps
