#include "apps/workload.hh"

#include "apps/barnes.hh"
#include "apps/cholesky.hh"
#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/matmul.hh"
#include "apps/mp3d.hh"
#include "apps/ocean.hh"
#include "apps/pthor.hh"
#include "apps/radix.hh"
#include "apps/water.hh"
#include "sim/logging.hh"

namespace psim::apps
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name, unsigned scale)
{
    if (name == "lu")
        return std::make_unique<LuWorkload>(scale);
    if (name == "matmul")
        return std::make_unique<MatmulWorkload>(scale);
    if (name == "fft")
        return std::make_unique<FftWorkload>(scale);
    if (name == "radix")
        return std::make_unique<RadixWorkload>(scale);
    if (name == "barnes")
        return std::make_unique<BarnesWorkload>(scale);
    if (name == "mp3d")
        return std::make_unique<Mp3dWorkload>(scale);
    if (name == "cholesky")
        return std::make_unique<CholeskyWorkload>(scale);
    if (name == "water")
        return std::make_unique<WaterWorkload>(scale);
    if (name == "ocean")
        return std::make_unique<OceanWorkload>(scale);
    if (name == "pthor")
        return std::make_unique<PthorWorkload>(scale);
    psim_fatal("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
paperWorkloads()
{
    static const std::vector<std::string> names = {
        "mp3d", "cholesky", "water", "lu", "ocean", "pthor",
    };
    return names;
}

} // namespace psim::apps
