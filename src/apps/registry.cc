#include "apps/workload.hh"

#include "apps/barnes.hh"
#include "apps/bfs.hh"
#include "apps/cholesky.hh"
#include "apps/fft.hh"
#include "apps/hashjoin.hh"
#include "apps/kvstore.hh"
#include "apps/logappend.hh"
#include "apps/lu.hh"
#include "apps/matmul.hh"
#include "apps/mp3d.hh"
#include "apps/ocean.hh"
#include "apps/pthor.hh"
#include "apps/radix.hh"
#include "apps/water.hh"
#include "sim/logging.hh"

namespace psim::apps
{

namespace
{

template <typename W>
std::unique_ptr<Workload>
construct(unsigned scale)
{
    return std::make_unique<W>(scale);
}

/**
 * The single source of truth for every workload: name, factory, and
 * suite membership. makeWorkload(), paperWorkloads(), and
 * serverWorkloads() all derive from this table, so adding a workload
 * is one line and the lists cannot drift apart. The paper's six are
 * listed first, in the paper's table order (the order the filtered
 * paperWorkloads() list inherits).
 */
struct Entry
{
    const char *name;
    std::unique_ptr<Workload> (*make)(unsigned scale);
    bool paper;  ///< one of the paper's six applications
    bool server; ///< member of the server request-driven suite
};

constexpr Entry kRegistry[] = {
    {"mp3d", construct<Mp3dWorkload>, true, false},
    {"cholesky", construct<CholeskyWorkload>, true, false},
    {"water", construct<WaterWorkload>, true, false},
    {"lu", construct<LuWorkload>, true, false},
    {"ocean", construct<OceanWorkload>, true, false},
    {"pthor", construct<PthorWorkload>, true, false},
    {"matmul", construct<MatmulWorkload>, false, false},
    {"fft", construct<FftWorkload>, false, false},
    {"radix", construct<RadixWorkload>, false, false},
    {"barnes", construct<BarnesWorkload>, false, false},
    {"kvstore", construct<KvStoreWorkload>, false, true},
    {"hashjoin", construct<HashJoinWorkload>, false, true},
    {"bfs", construct<BfsWorkload>, false, true},
    {"logappend", construct<LogAppendWorkload>, false, true},
};

std::string
knownNames()
{
    std::string names;
    for (const Entry &e : kRegistry) {
        if (!names.empty())
            names += ", ";
        names += e.name;
    }
    return names;
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, unsigned scale)
{
    for (const Entry &e : kRegistry) {
        if (name == e.name)
            return e.make(scale);
    }
    psim_fatal("unknown workload '%s' (known: %s)", name.c_str(),
               knownNames().c_str());
}

const std::vector<std::string> &
paperWorkloads()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Entry &e : kRegistry) {
            if (e.paper)
                v.emplace_back(e.name);
        }
        return v;
    }();
    return names;
}

const std::vector<std::string> &
serverWorkloads()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Entry &e : kRegistry) {
            if (e.server)
                v.emplace_back(e.name);
        }
        return v;
    }();
    return names;
}

} // namespace psim::apps
