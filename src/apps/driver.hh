/**
 * @file
 * One-call experiment driver: build a machine, attach a workload, run
 * to completion, verify the numerical result, and collect the paper's
 * metrics. Benches, examples and integration tests all go through this.
 */

#ifndef PSIM_APPS_DRIVER_HH
#define PSIM_APPS_DRIVER_HH

#include <memory>
#include <string>

#include "apps/workload.hh"
#include "sys/machine.hh"

namespace psim::apps
{

struct Run
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Workload> workload;
    RunMetrics metrics;
    bool verified = false;
    bool finished = false;
};

struct RunOptions
{
    unsigned scale = 1;
    bool characterize = false;   ///< attach Table-2/3 characterizers
    bool checkInvariants = true; ///< verify coherence invariants after
    Tick limit = kTickNever;     ///< simulated-time safety limit
};

/** Run @p workload_name on a machine configured by @p cfg. */
Run runWorkload(const std::string &workload_name, const MachineConfig &cfg,
                const RunOptions &opts = {});

} // namespace psim::apps

#endif // PSIM_APPS_DRIVER_HH
