/**
 * @file
 * One-call experiment driver: build a machine, attach a workload, run
 * to completion, verify the numerical result, and collect the paper's
 * metrics. Benches, examples and integration tests all go through this.
 */

#ifndef PSIM_APPS_DRIVER_HH
#define PSIM_APPS_DRIVER_HH

#include <memory>
#include <string>

#include "apps/workload.hh"
#include "sys/machine.hh"

namespace psim::apps
{

struct Run
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Workload> workload;
    RunMetrics metrics;
    bool verified = false;
    bool finished = false;
};

struct RunOptions
{
    unsigned scale = 1;
    bool characterize = false;   ///< attach Table-2/3 characterizers
    bool checkInvariants = true; ///< verify coherence invariants after
    Tick limit = kTickNever;     ///< simulated-time safety limit

    // ---- observability (all read-only: enabling any of these never
    //      changes simulated behaviour or aggregate statistics) ----

    /** Write the schema'd JSON stats dump here (empty: none). */
    std::string statsJsonPath;
    /** Snapshot selected scalars every N ticks (0: off). */
    Tick sampleInterval = 0;
    /** Write the sampler's time series as CSV here (empty: none). */
    std::string sampleCsvPath;
    /** Write a chrome://tracing event file here (empty: none). */
    std::string chromeTracePath;
    /** Chrome-trace recording window in ticks. */
    Tick chromeStart = 0;
    Tick chromeEnd = kTickNever;
};

/** Run @p workload_name on a machine configured by @p cfg. */
Run runWorkload(const std::string &workload_name, const MachineConfig &cfg,
                const RunOptions &opts = {});

/**
 * Command-line observability flags shared by the benches, the examples
 * and the tools:
 *
 *   --stats-json PREFIX      JSON stats dump per run
 *   --sample-interval N      sampler period in ticks (with --stats-json
 *                            the series lands in the JSON document)
 *   --sample-csv PREFIX      sampler time series as CSV per run
 *   --chrome-trace PREFIX    chrome://tracing / Perfetto event file
 *   --chrome-window A:B      restrict chrome-trace recording to [A, B]
 *
 * PREFIX is a path prefix: grid harnesses run many (app, scheme) cells
 * and apply() expands "<prefix><cell>.json" / ".csv" per cell. Callers
 * with a single run pass an empty cell to use PREFIX verbatim.
 */
struct ObservabilityOptions
{
    std::string statsJsonPrefix;
    std::string sampleCsvPrefix;
    std::string chromeTracePrefix;
    Tick sampleInterval = 0;
    Tick chromeStart = 0;
    Tick chromeEnd = kTickNever;

    bool
    enabled() const
    {
        return !statsJsonPrefix.empty() || !sampleCsvPrefix.empty() ||
               !chromeTracePrefix.empty() || sampleInterval != 0;
    }

    /**
     * Try to consume argv[*i] (and its value). @return true when the
     * argument was one of the observability flags; *i is advanced past
     * any consumed value. Fatal on a missing or malformed value.
     */
    bool parseArg(int argc, char **argv, int *i);

    /** Fill the observability fields of @p opts for one cell. */
    void apply(RunOptions &opts, const std::string &cell) const;
};

} // namespace psim::apps

#endif // PSIM_APPS_DRIVER_HH
