#include "apps/bfs.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace psim::apps
{

namespace
{

constexpr std::uint32_t kInf = 0xffffffffu;
constexpr unsigned kDeg = 6;       ///< out-degree per vertex
constexpr unsigned kCntStride = 128;
constexpr unsigned kResultStride = 64;

std::uint64_t
mix64(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
}

std::uint32_t
nextPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

double
unitReal(std::uint64_t u)
{
    return static_cast<double>(u >> 11) *
           (1.0 / 9007199254740992.0); // 2^-53
}

/** Round a frontier-segment size up so segments never share a block. */
Addr
segStrideFor(std::uint32_t segCap)
{
    return (static_cast<Addr>(segCap) * 4 + 255) & ~static_cast<Addr>(255);
}

} // namespace

BfsWorkload::BfsWorkload(unsigned scale) : Workload(scale) {}

unsigned
BfsWorkload::ownerOf(std::uint32_t v, unsigned nproc) const
{
    unsigned t = static_cast<unsigned>(
            static_cast<std::uint64_t>(v) * nproc / _nV);
    while (t + 1 < nproc && vertsLo(t + 1, nproc) <= v)
        ++t;
    while (vertsLo(t, nproc) > v)
        --t;
    return t;
}

std::uint32_t
BfsWorkload::vertsLo(unsigned t, unsigned nproc) const
{
    return static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(t) * _nV / nproc);
}

Addr
BfsWorkload::segAddr(unsigned buf, unsigned t) const
{
    return _seg[buf] + static_cast<Addr>(t) * segStrideFor(_segCap);
}

Addr
BfsWorkload::cntAddr(unsigned buf, unsigned t) const
{
    return _cnt[buf] + static_cast<Addr>(t) * kCntStride;
}

void
BfsWorkload::setup(Machine &m)
{
    const MachineConfig &cfg = m.cfg();
    const unsigned nproc = m.numProcs();
    _seed = cfg.seed;
    _theta = cfg.server.zipfTheta;
    _interArrival = cfg.server.interArrival;
    _nV = nextPow2(64 * nproc * _scale);
    _nE = static_cast<std::uint64_t>(_nV) * kDeg;
    _queries = cfg.server.requests ? cfg.server.requests : 3;
    _segCap = (_nV + nproc - 1) / nproc;
    _zipf = std::make_unique<ZipfSampler>(_nV, _theta);

    _rowOff = shm().alloc((static_cast<std::size_t>(_nV) + 1) * 4,
                          cfg.pageSize);
    _col = shm().alloc(static_cast<std::size_t>(_nE) * 4, cfg.pageSize);
    _dist = shm().alloc(static_cast<std::size_t>(_nV) * 4, cfg.pageSize);
    const std::size_t segBytes =
            static_cast<std::size_t>(nproc) * segStrideFor(_segCap);
    _seg[0] = shm().alloc(segBytes, cfg.pageSize);
    _seg[1] = shm().alloc(segBytes, cfg.pageSize);
    _cnt[0] = shm().alloc(static_cast<std::size_t>(nproc) * kCntStride,
                          kCntStride);
    _cnt[1] = shm().alloc(static_cast<std::size_t>(nproc) * kCntStride,
                          kCntStride);
    _results = shm().alloc(static_cast<std::size_t>(nproc) * kResultStride,
                           kResultStride);
    _bar = shm().allocSync();

    // Build the CSR: a connectivity ring plus a fan alternating
    // between Zipf-popular hubs and uniform targets.
    std::vector<std::uint32_t> row(_nV + 1), col(_nE);
    std::uint64_t e = 0;
    for (std::uint32_t v = 0; v < _nV; ++v) {
        row[v] = static_cast<std::uint32_t>(e);
        col[e++] = (v + 1) & (_nV - 1); // ring edge: all reachable
        for (unsigned j = 1; j < kDeg; ++j) {
            std::uint64_t u = mix64(_seed ^
                                    (static_cast<std::uint64_t>(v) *
                                     0x9e3779b97f4a7c15ULL) ^
                                    (j * 0xbf58476d1ce4e5b9ULL));
            std::uint32_t w;
            if (j % 2 == 1) {
                w = static_cast<std::uint32_t>(scrambleRank(
                        _zipf->sample(unitReal(u)), _nV));
            } else {
                w = static_cast<std::uint32_t>(u) & (_nV - 1);
            }
            if (w == v)
                w = (w + 1) & (_nV - 1);
            col[e++] = w;
        }
    }
    row[_nV] = static_cast<std::uint32_t>(e);
    psim_assert(e == _nE, "bfs edge count mismatch");
    for (std::uint32_t v = 0; v <= _nV; ++v)
        m.store().store<std::uint32_t>(_rowOff + static_cast<Addr>(v) * 4,
                                       row[v]);
    for (std::uint64_t i = 0; i < _nE; ++i)
        m.store().store<std::uint32_t>(_col + static_cast<Addr>(i) * 4,
                                       col[i]);
    for (std::uint32_t v = 0; v < _nV; ++v)
        m.store().store<std::uint32_t>(_dist + static_cast<Addr>(v) * 4,
                                       kInf);

    // Native reference: the same level-synchronous BFS per query.
    ReqGenParams qp;
    qp.seed = _seed;
    qp.thread = nproc; // a thread id no simulated thread uses
    qp.keys = _nV;
    qp.theta = _theta;
    qp.interArrival = _interArrival;
    RequestGen qgen(qp, *_zipf);

    _refDigest.assign(nproc, 0);
    _refVisited.assign(nproc, 0);
    std::vector<std::uint32_t> dist(_nV);
    for (std::uint64_t q = 0; q < _queries; ++q) {
        const std::uint32_t src =
                static_cast<std::uint32_t>(qgen.at(q).key) & (_nV - 1);
        std::fill(dist.begin(), dist.end(), kInf);
        dist[src] = 0;
        std::vector<std::uint32_t> cur{src}, next;
        std::uint32_t level = 0;
        while (!cur.empty()) {
            next.clear();
            for (std::uint32_t v : cur) {
                for (std::uint32_t i = row[v]; i < row[v + 1]; ++i) {
                    std::uint32_t w = col[i];
                    if (dist[w] == kInf) {
                        dist[w] = level + 1;
                        next.push_back(w);
                    }
                }
            }
            cur.swap(next);
            ++level;
        }
        for (unsigned t = 0; t < nproc; ++t) {
            const std::uint32_t lo = vertsLo(t, nproc);
            const std::uint32_t hi = vertsLo(t + 1, nproc);
            for (std::uint32_t v = lo; v < hi; ++v) {
                _refDigest[t] += mix64((q << 40) ^
                                       (static_cast<std::uint64_t>(
                                                dist[v])
                                        << 20) ^
                                       v);
                if (dist[v] != kInf)
                    ++_refVisited[t];
            }
        }
    }
    _refDist = dist;
}

Task
BfsWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const std::uint32_t lo = vertsLo(tid, nproc);
    const std::uint32_t hi = vertsLo(tid + 1, nproc);

    // Query stream shared by all threads: everyone computes the same
    // source and the same arrival gap from the same pure generator.
    ReqGenParams qp;
    qp.seed = _seed;
    qp.thread = nproc;
    qp.keys = _nV;
    qp.theta = _theta;
    qp.interArrival = _interArrival;
    RequestGen qgen(qp, *_zipf);

    std::uint64_t digest = 0, visited = 0;
    for (std::uint64_t q = 0; q < _queries; ++q) {
        Request req = qgen.at(q);
        const std::uint32_t src =
                static_cast<std::uint32_t>(req.key) & (_nV - 1);
        if (req.think)
            co_await ctx.think(req.think);
        // Separate the previous query's termination reads from this
        // query's init writes (they touch the same count words).
        co_await ctx.barrier(_bar);

        for (std::uint32_t v = lo; v < hi; ++v)
            co_await ctx.write<std::uint32_t>(
                    _dist + static_cast<Addr>(v) * 4,
                    v == src ? 0 : kInf);
        std::uint32_t myCount = 0;
        if (ownerOf(src, nproc) == tid) {
            co_await ctx.write<std::uint32_t>(segAddr(0, tid), src);
            myCount = 1;
        }
        co_await ctx.write<std::uint32_t>(cntAddr(0, tid), myCount);
        co_await ctx.barrier(_bar);

        unsigned cur = 0;
        std::uint32_t level = 0;
        for (;;) {
            const unsigned nxt = cur ^ 1;
            std::uint32_t appended = 0;
            for (unsigned t2 = 0; t2 < nproc; ++t2) {
                auto c = co_await ctx.read<std::uint32_t>(
                        cntAddr(cur, t2));
                for (std::uint32_t i = 0; i < c; ++i) {
                    auto v = co_await ctx.read<std::uint32_t>(
                            segAddr(cur, t2) + static_cast<Addr>(i) * 4);
                    auto rs = co_await ctx.read<std::uint32_t>(
                            _rowOff + static_cast<Addr>(v) * 4);
                    auto re = co_await ctx.read<std::uint32_t>(
                            _rowOff + static_cast<Addr>(v + 1) * 4);
                    for (std::uint32_t ei = rs; ei < re; ++ei) {
                        auto w = co_await ctx.read<std::uint32_t>(
                                _col + static_cast<Addr>(ei) * 4);
                        if (ownerOf(w, nproc) != tid)
                            continue;
                        auto d = co_await ctx.read<std::uint32_t>(
                                _dist + static_cast<Addr>(w) * 4);
                        if (d != kInf)
                            continue;
                        co_await ctx.write<std::uint32_t>(
                                _dist + static_cast<Addr>(w) * 4,
                                level + 1);
                        psim_assert(appended < _segCap,
                                    "bfs frontier segment overflow");
                        co_await ctx.write<std::uint32_t>(
                                segAddr(nxt, tid) +
                                        static_cast<Addr>(appended) * 4,
                                w);
                        ++appended;
                    }
                }
            }
            co_await ctx.write<std::uint32_t>(cntAddr(nxt, tid),
                                              appended);
            co_await ctx.barrier(_bar);
            std::uint64_t total = 0;
            for (unsigned t2 = 0; t2 < nproc; ++t2)
                total += co_await ctx.read<std::uint32_t>(
                        cntAddr(nxt, t2));
            if (total == 0)
                break;
            cur = nxt;
            ++level;
        }

        // Digest own distances (private sequential sweep).
        for (std::uint32_t v = lo; v < hi; ++v) {
            auto d = co_await ctx.read<std::uint32_t>(
                    _dist + static_cast<Addr>(v) * 4);
            digest += mix64((q << 40) ^
                            (static_cast<std::uint64_t>(d) << 20) ^ v);
            if (d != kInf)
                ++visited;
        }
    }

    const Addr res = _results + static_cast<Addr>(tid) * kResultStride;
    co_await ctx.write<std::uint64_t>(res + 0, digest);
    co_await ctx.write<std::uint64_t>(res + 8, visited);
}

bool
BfsWorkload::verify(Machine &m)
{
    const unsigned nproc = m.numProcs();
    for (std::uint32_t v = 0; v < _nV; ++v) {
        if (m.store().load<std::uint32_t>(_dist +
                                          static_cast<Addr>(v) * 4) !=
            _refDist[v]) {
            return false;
        }
    }
    for (unsigned t = 0; t < nproc; ++t) {
        const Addr res = _results + static_cast<Addr>(t) * kResultStride;
        if (m.store().load<std::uint64_t>(res + 0) != _refDigest[t] ||
            m.store().load<std::uint64_t>(res + 8) != _refVisited[t]) {
            return false;
        }
    }
    return true;
}

} // namespace psim::apps
