/**
 * @file
 * Water: N-body molecular dynamics (SPLASH Water).
 *
 * Each molecule is a 672-byte record -- 21 cache blocks, matching the
 * paper's observation that Water's dominant stride is 21 blocks: the
 * pairwise force phase sweeps a fixed set of fields across consecutive
 * molecule records, producing multi-block stride sequences. The fields
 * read per molecule live in *adjacent* blocks of the record, which is
 * the "high spatial locality of accesses belonging to different stride
 * sequences" that lets sequential prefetching keep up with stride
 * prefetching on Water despite the large stride.
 */

#ifndef PSIM_APPS_WATER_HH
#define PSIM_APPS_WATER_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class WaterWorkload : public Workload
{
  public:
    explicit WaterWorkload(unsigned scale);

    const char *name() const override { return "water"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned molecules() const { return _nmol; }

    /** Bytes per molecule record: 84 doubles = 21 blocks of 32 B. */
    static constexpr unsigned kRecordBytes = 672;

    // Record field offsets (bytes). Position and dipole occupy the
    // first two blocks; forces live further into the record.
    static constexpr unsigned kPosX = 0;
    static constexpr unsigned kPosY = 8;
    static constexpr unsigned kPosZ = 16;
    static constexpr unsigned kDipole = 32;
    static constexpr unsigned kCharge = 40;
    static constexpr unsigned kVelX = 320;
    static constexpr unsigned kVelY = 328;
    static constexpr unsigned kVelZ = 336;
    static constexpr unsigned kForceX = 352;
    static constexpr unsigned kForceY = 360;
    static constexpr unsigned kForceZ = 368;

  private:
    Addr
    field(unsigned mol, unsigned off) const
    {
        return _mols + static_cast<Addr>(mol) * kRecordBytes + off;
    }

    unsigned _nmol = 0;
    unsigned _steps = 0;
    Addr _mols = 0;
    Addr _bar = 0;
    std::vector<double> _refPos; ///< reference positions (x,y,z per mol)
};

} // namespace psim::apps

#endif // PSIM_APPS_WATER_HH
