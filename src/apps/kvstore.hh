/**
 * @file
 * In-memory key-value store server workload.
 *
 * Each simulated processor owns one partition of the store: an
 * open-addressed hash table (linear probing, tombstone deletes) whose
 * live slots are threaded on an intrusive doubly-linked LRU list. A
 * seeded Zipfian request stream (src/apps/reqgen.hh) drives GETs and
 * PUTs against the partition; PUT beyond the occupancy bound evicts
 * the LRU tail, and tombstone build-up triggers a compaction that
 * rebuilds the table in LRU order. Between request epochs every
 * thread scans its neighbour's partition read-only (the "replication
 * pull"), which is what creates cross-node coherence traffic.
 *
 * Access-pattern mix: scattered probes (hash order), pointer chasing
 * (LRU links), sequential sweeps (neighbour scan, compaction), and a
 * shared read-only routing directory -- the server-side patterns the
 * PAPERS.md prefetching survey says SPLASH-style kernels lack.
 *
 * DRF by construction: writes touch only the owner's partition;
 * cross-thread reads are barrier-separated from the writes they
 * observe. Verification replays the identical request streams on a
 * native model of every partition and compares all slots, LRU heads,
 * and counters exactly.
 */

#ifndef PSIM_APPS_KVSTORE_HH
#define PSIM_APPS_KVSTORE_HH

#include <cstdint>
#include <vector>

#include "apps/reqgen.hh"
#include "apps/workload.hh"

namespace psim::apps
{

class KvStoreWorkload : public Workload
{
  public:
    explicit KvStoreWorkload(unsigned scale);

    const char *name() const override { return "kvstore"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

  private:
    /** LRU/occupancy state a serving thread carries between requests. */
    struct Cursor
    {
        std::uint32_t head = 0;
        std::uint32_t tail = 0;
        std::uint32_t entries = 0;
        std::uint32_t tombs = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evicts = 0;
        std::uint64_t compactions = 0;
        std::uint64_t scanSum = 0;
        std::uint64_t dirAcc = 0;
    };

    /** Native model of one partition: Cursor plus the slot arrays. */
    struct State : Cursor
    {
        std::vector<std::uint64_t> key;
        std::vector<std::uint64_t> val;
        std::vector<std::uint32_t> prev;
        std::vector<std::uint32_t> next;
    };

    // ---- native model (mirrors the coroutine ops write-for-write) ----
    void modelLruUnlink(State &s, std::uint32_t i) const;
    void modelLruPushFront(State &s, std::uint32_t i) const;
    void modelGet(State &s, std::uint64_t key) const;
    void modelPut(State &s, std::uint64_t key, std::uint64_t val) const;
    void modelCompact(State &s) const;

    // ---- simulated ops (sub-coroutines awaited by thread()) ----
    Task lruUnlink(ThreadCtx &ctx, Addr base, std::uint32_t i,
                   Cursor *c);
    Task lruPushFront(ThreadCtx &ctx, Addr base, std::uint32_t i,
                      Cursor *c);
    Task doGet(ThreadCtx &ctx, Addr base, std::uint64_t key, Cursor *c);
    Task doPut(ThreadCtx &ctx, Addr base, std::uint64_t key,
               std::uint64_t val, Cursor *c);
    Task doCompact(ThreadCtx &ctx, Addr base, Cursor *c);

    Addr slotAddr(Addr base, std::uint32_t i) const;
    Addr partitionBase(unsigned t) const;

    unsigned _cap = 0;       ///< slots per partition (power of two)
    std::uint64_t _nkeys = 0; ///< key-space size (power of two)
    std::uint64_t _perEpoch = 0; ///< requests per thread per epoch
    std::uint64_t _seed = 0;
    Tick _interArrival = 0;
    double _theta = 0.99;

    Addr _slots = 0;
    Addr _hdr = 0;
    Addr _dir = 0;
    Addr _bar = 0;

    std::unique_ptr<ZipfSampler> _zipf;
    std::vector<Cursor> _start; ///< post-preload cursors (thread inputs)
    std::vector<State> _ref;    ///< final expected per-partition state
};

} // namespace psim::apps

#endif // PSIM_APPS_KVSTORE_HH
