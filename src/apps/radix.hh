/**
 * @file
 * Radix: parallel radix sort (in the style of SPLASH-2 RADIX).
 *
 * Iterative counting sort over 4-bit digits. Each pass: every
 * processor histograms its contiguous key chunk (sequential reads),
 * processor 0 turns the per-processor histograms into global offsets
 * (a small all-to-one phase), then every processor permutes its keys
 * into the destination array (sequential reads, *scattered remote
 * writes* -- the write-ownership traffic pattern none of the paper's
 * six applications exercises this heavily).
 *
 * Extension workload; registry name "radix".
 */

#ifndef PSIM_APPS_RADIX_HH
#define PSIM_APPS_RADIX_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class RadixWorkload : public Workload
{
  public:
    explicit RadixWorkload(unsigned scale);

    const char *name() const override { return "radix"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned keys() const { return _nkeys; }

    static constexpr unsigned kRadixBits = 4;
    static constexpr unsigned kBuckets = 1u << kRadixBits;
    static constexpr unsigned kPasses = 4; ///< sorts 16-bit keys

  private:
    Addr
    keyAddr(Addr array, unsigned i) const
    {
        return array + static_cast<Addr>(i) * 8;
    }

    /** Per-processor histogram slot (one block per bucket row). */
    Addr
    histAddr(unsigned proc, unsigned bucket) const
    {
        return _hist + (static_cast<Addr>(proc) * kBuckets + bucket) * 8;
    }

    /** Global start offset of (bucket, proc) in the destination. */
    Addr
    offsetAddr(unsigned proc, unsigned bucket) const
    {
        return _offsets +
               (static_cast<Addr>(bucket) * _nproc + proc) * 8;
    }

    unsigned _nkeys = 0;
    unsigned _nproc = 0;
    Addr _src = 0;
    Addr _dst = 0;
    Addr _hist = 0;
    Addr _offsets = 0;
    Addr _bar = 0;
    std::vector<std::uint64_t> _ref; ///< expected final key order
};

} // namespace psim::apps

#endif // PSIM_APPS_RADIX_HH
