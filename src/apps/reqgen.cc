#include "apps/reqgen.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace psim::apps
{

namespace
{

/** splitmix64-style finalizer mixing the (seed, thread, index) tuple
 *  into one Rng seed. Every bit of every input reaches every bit of
 *  the output, so adjacent request indices share nothing. */
std::uint64_t
mixSeed(std::uint64_t seed, unsigned thread, std::uint64_t r)
{
    std::uint64_t z = seed;
    z ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(thread) + 1);
    z ^= 0xbf58476d1ce4e5b9ULL * (r + 1);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

double
ZipfSampler::zeta(std::uint64_t n, double theta)
{
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : _n(n), _theta(theta)
{
    psim_assert(n >= 1, "Zipf sampler over an empty rank space");
    psim_assert(theta >= 0.0 && theta < 1.0,
                "Zipf skew theta must be in [0, 1), got %f", theta);
    _zetan = zeta(n, theta);
    _alpha = 1.0 / (1.0 - theta);
    const double zeta2 = zeta(n < 2 ? n : 2, theta);
    // eta's denominator is 0 only when n == 1 (zeta2 == zetan); then
    // every draw returns rank 0 and eta is never used.
    _eta = n < 2 ? 1.0
                 : (1.0 - std::pow(2.0 / static_cast<double>(n),
                                   1.0 - theta)) /
                           (1.0 - zeta2 / _zetan);
}

std::uint64_t
ZipfSampler::sample(double u) const
{
    const double uz = u * _zetan;
    if (uz < 1.0 || _n == 1)
        return 0;
    if (uz < 1.0 + std::pow(0.5, _theta))
        return 1;
    auto rank = static_cast<std::uint64_t>(
            static_cast<double>(_n) *
            std::pow(_eta * u - _eta + 1.0, _alpha));
    return rank >= _n ? _n - 1 : rank;
}

std::uint64_t
scrambleRank(std::uint64_t rank, std::uint64_t keys)
{
    psim_assert(keys != 0 && (keys & (keys - 1)) == 0,
                "key space must be a power of two, got %llu",
                static_cast<unsigned long long>(keys));
    // Multiplication by an odd constant is invertible mod 2^k, so this
    // permutes [0, keys) (rank < keys by construction).
    return (rank * 0x9e3779b97f4a7c15ULL) & (keys - 1);
}

RequestGen::RequestGen(const ReqGenParams &params, const ZipfSampler &zipf)
    : _p(params), _zipf(zipf)
{
    psim_assert(_zipf.n() == _p.keys,
                "Zipf sampler covers %llu ranks but the key space has "
                "%llu keys",
                static_cast<unsigned long long>(_zipf.n()),
                static_cast<unsigned long long>(_p.keys));
    psim_assert(_p.writeFraction >= 0.0 && _p.writeFraction <= 1.0,
                "write fraction must be in [0, 1]");
}

Request
RequestGen::compute(std::uint64_t r) const
{
    Rng rng(mixSeed(_p.seed, _p.thread, r));
    Request q;
    q.key = scrambleRank(_zipf.sample(rng.real()), _p.keys);
    q.op = rng.real() < _p.writeFraction ? Request::Op::Write
                                         : Request::Op::Read;
    if (_p.interArrival > 0) {
        // Uniform integer gap in [1, 2*interArrival - 1], mean
        // interArrival. Integer-only: the gap never touches libm.
        q.think = 1 + static_cast<Tick>(
                          rng.next() % (2 * _p.interArrival - 1));
    }
    return q;
}

Request
RequestGen::at(std::uint64_t r) const
{
    Request q = compute(r);
    // Determinism contract (asserted here, in the generator, so any
    // violation fails at the source rather than as a golden-snapshot
    // diff): a request is a pure function of (seed, thread, index).
    // Hidden mutable state, machine clocks, or address-dependent
    // hashing would make the recomputation diverge.
    psim_assert(compute(r) == q,
                "request generator is impure: request %llu of thread %u "
                "changed between two computations",
                static_cast<unsigned long long>(r), _p.thread);
    return q;
}

} // namespace psim::apps
