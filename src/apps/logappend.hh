/**
 * @file
 * Log-structured append server workload.
 *
 * Every thread owns a log segment and appends one 32-byte record per
 * request from its seeded Zipfian stream (src/apps/reqgen.hh):
 * perfectly sequential writes -- the pattern sequential prefetching
 * was built for -- interleaved with scattered upserts into a
 * per-thread hash index mapping key to last sequence number. Every
 * kGroupCommit appends the thread takes a global commit lock and
 * bumps a shared commit counter: a migratory block bouncing between
 * writers. After a barrier, each thread replays its neighbour's
 * segment sequentially, recomputing record checksums (cross-node
 * streaming reads), and publishes {valid count, payload sum, final
 * commit count} to its result slot.
 *
 * DRF by construction: appends and index writes are owner-only, the
 * commit counter is lock-protected and commutative (integer
 * increments), and the replay reads are barrier-separated from the
 * writes they observe. Verification replays the identical streams on
 * a native model and compares segments, indexes, and results exactly.
 */

#ifndef PSIM_APPS_LOGAPPEND_HH
#define PSIM_APPS_LOGAPPEND_HH

#include <cstdint>
#include <vector>

#include "apps/reqgen.hh"
#include "apps/workload.hh"

namespace psim::apps
{

class LogAppendWorkload : public Workload
{
  public:
    explicit LogAppendWorkload(unsigned scale);

    const char *name() const override { return "logappend"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

  private:
    Addr recAddr(unsigned t, std::uint64_t r) const;
    Addr idxAddr(unsigned t, std::uint64_t s) const;

    std::uint64_t _perThread = 0; ///< appends per thread
    std::uint64_t _idxCap = 0;    ///< index slots (power of two)
    std::uint64_t _nkeys = 0;     ///< key space (power of two)
    std::uint64_t _seed = 0;
    Tick _interArrival = 0;
    double _theta = 0.99;

    Addr _log = 0;     ///< per-thread record segments
    Addr _index = 0;   ///< per-thread hash indexes
    Addr _commit = 0;  ///< shared commit counter (u64)
    Addr _commitLock = 0;
    Addr _results = 0;
    Addr _bar = 0;

    std::unique_ptr<ZipfSampler> _zipf;
    std::vector<std::uint64_t> _refIdxKey; ///< nproc * idxCap
    std::vector<std::uint64_t> _refIdxSeq;
    std::vector<std::uint64_t> _refValid;  ///< per-thread replay count
    std::vector<std::uint64_t> _refPaySum;
    std::uint64_t _refCommit = 0;
};

} // namespace psim::apps

#endif // PSIM_APPS_LOGAPPEND_HH
