/**
 * @file
 * Barnes: Barnes-Hut N-body force evaluation (in the style of SPLASH
 * Barnes).
 *
 * Bodies live in a 2-D box; setup builds a quadtree over them
 * (functionally, as the sequential tree-build phase). The parallel
 * section is the force-evaluation sweep: every processor walks the
 * shared tree for each of its bodies with an explicit stack, using a
 * node's center of mass when the opening criterion allows and
 * descending into children otherwise -- irregular pointer chasing over
 * a read-shared tree with heavy reuse of the top levels, a pattern
 * between PTHOR (no locality) and the array codes (all stride).
 *
 * Extension workload; registry name "barnes". The tree is rebuilt
 * between the two time steps by the sequential phase, mirroring the
 * paper's convention of measuring only the parallel section.
 */

#ifndef PSIM_APPS_BARNES_HH
#define PSIM_APPS_BARNES_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class BarnesWorkload : public Workload
{
  public:
    explicit BarnesWorkload(unsigned scale);

    const char *name() const override { return "barnes"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned bodies() const { return _nbody; }

    /** Tree node: 64 bytes = 2 blocks. */
    static constexpr unsigned kNodeBytes = 64;
    static constexpr unsigned kBodyBytes = 64;

    // node fields (byte offsets)
    static constexpr unsigned kNodeCmX = 0;
    static constexpr unsigned kNodeCmY = 8;
    static constexpr unsigned kNodeMass = 16;
    static constexpr unsigned kNodeSize = 24;   ///< cell side length
    static constexpr unsigned kNodeChild = 32;  ///< 4 x u64 child index

    // body fields
    static constexpr unsigned kBodyX = 0;
    static constexpr unsigned kBodyY = 8;
    static constexpr unsigned kBodyMass = 16;
    static constexpr unsigned kBodyVx = 24;
    static constexpr unsigned kBodyVy = 32;

    static constexpr std::uint64_t kNoChild = ~0ULL;

  private:
    struct Node
    {
        double cmx = 0, cmy = 0, mass = 0, size = 0;
        std::uint64_t child[4] = {kNoChild, kNoChild, kNoChild,
                                  kNoChild};
        bool leaf = true;
        unsigned body = 0; ///< body index when a leaf with one body
        bool hasBody = false;
    };

    Addr
    nodeAddr(std::uint64_t n, unsigned off) const
    {
        return _nodes + n * kNodeBytes + off;
    }

    Addr
    bodyAddr(unsigned b, unsigned off) const
    {
        return _bodies + static_cast<Addr>(b) * kBodyBytes + off;
    }

    /** Build the quadtree over current body positions (functional). */
    void buildTree(std::vector<Node> &tree,
                   const std::vector<double> &x,
                   const std::vector<double> &y,
                   const std::vector<double> &mass) const;

    /** Write the tree into simulated shared memory. */
    void publishTree(Machine &m, const std::vector<Node> &tree) const;

    /** Force on body b from the tree (native; identical walk order). */
    static void walkNative(const std::vector<Node> &tree, double bx,
                           double by, double &fx, double &fy);

    unsigned _nbody = 0;
    unsigned _steps = 0;
    Addr _bodies = 0;
    Addr _nodes = 0;
    Addr _bar = 0;
    std::vector<double> _refX;
    std::vector<double> _refY;

    // Tree state shared between setup-built steps; the intermediate
    // tree for step 2 is rebuilt inside the run via a callback from the
    // barrier master (see thread()).
    mutable std::vector<Node> _tree;
};

} // namespace psim::apps

#endif // PSIM_APPS_BARNES_HH
