/**
 * @file
 * Graph BFS server workload over an immutable CSR adjacency.
 *
 * The graph is a directed power-law-ish web: every vertex has a ring
 * edge (connectivity) plus a fan of targets alternating between
 * Zipf-popular hubs and uniform picks, built once in setup. Each
 * "request" is a BFS query: level-synchronous distance computation
 * from a Zipf-popular source vertex, with an open-loop think gap
 * between queries. Distances are owner-partitioned (contiguous vertex
 * ranges) and frontiers are per-thread append segments in two
 * alternating buffers, so every write stays in the owner's range and
 * every cross-thread read (frontier segments, counts, CSR arrays) is
 * barrier-separated -- DRF with one barrier per level.
 *
 * Access-pattern mix: sequential CSR row scans, scattered neighbour
 * gathers (classic irregular reads), append-streams for frontiers,
 * and hot hub blocks shared by every node.
 */

#ifndef PSIM_APPS_BFS_HH
#define PSIM_APPS_BFS_HH

#include <cstdint>
#include <vector>

#include "apps/reqgen.hh"
#include "apps/workload.hh"

namespace psim::apps
{

class BfsWorkload : public Workload
{
  public:
    explicit BfsWorkload(unsigned scale);

    const char *name() const override { return "bfs"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

  private:
    unsigned ownerOf(std::uint32_t v, unsigned nproc) const;
    std::uint32_t vertsLo(unsigned t, unsigned nproc) const;
    Addr segAddr(unsigned buf, unsigned t) const;
    Addr cntAddr(unsigned buf, unsigned t) const;

    std::uint32_t _nV = 0;   ///< vertices (power of two)
    std::uint64_t _nE = 0;   ///< edges
    std::uint64_t _queries = 0; ///< BFS episodes
    std::uint32_t _segCap = 0;  ///< frontier entries per thread
    std::uint64_t _seed = 0;
    Tick _interArrival = 0;
    double _theta = 0.99;

    Addr _rowOff = 0; ///< u32[nV+1]
    Addr _col = 0;    ///< u32[nE]
    Addr _dist = 0;   ///< u32[nV]
    Addr _seg[2] = {0, 0}; ///< frontier segments, per buffer
    Addr _cnt[2] = {0, 0}; ///< frontier counts, per buffer
    Addr _results = 0;
    Addr _bar = 0;

    std::unique_ptr<ZipfSampler> _zipf;
    std::vector<std::uint32_t> _refDist; ///< after the last query
    std::vector<std::uint64_t> _refDigest; ///< per-thread result slot
    std::vector<std::uint64_t> _refVisited;
};

} // namespace psim::apps

#endif // PSIM_APPS_BFS_HH
