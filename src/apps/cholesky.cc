#include "apps/cholesky.hh"

#include <algorithm>
#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

CholeskyWorkload::CholeskyWorkload(unsigned scale) : Workload(scale)
{
    _n = 96 + 96 * scale;     // columns
    // Pivot-column runs of band/4 blocks. The active window
    // ((band+1)^2 * 8 bytes) exceeds a 16 KB SLC, giving the
    // replacement-miss population of the paper's Table 3, and grows
    // with the data set as Table 4 expects.
    _band = 16 + 32 * scale;
}

void
CholeskyWorkload::setup(Machine &m)
{
    std::size_t entries = static_cast<std::size_t>(_n) * (_band + 1);
    _a = shm().alloc(entries * sizeof(double), m.cfg().pageSize);
    _bar = shm().allocSync();
    _norms = shm().alloc(static_cast<std::size_t>(m.numProcs()) * 32,
                         m.cfg().blockSize);

    Rng rng(m.cfg().seed ^ 0x3u);
    _ref.assign(entries, 0.0);
    for (unsigned j = 0; j < _n; ++j) {
        for (unsigned i = j; i < std::min(_n, j + _band + 1); ++i) {
            double v = (i == j) ? 4.0 * _band : -rng.real();
            _ref[refIndex(i, j)] = v;
            m.store().store<double>(elem(i, j), v);
        }
    }

    // Native banded Cholesky reference (right-looking).
    for (unsigned j = 0; j < _n; ++j) {
        unsigned last = std::min(_n - 1, j + _band);
        double d = std::sqrt(_ref[refIndex(j, j)]);
        _ref[refIndex(j, j)] = d;
        for (unsigned i = j + 1; i <= last; ++i)
            _ref[refIndex(i, j)] /= d;
        for (unsigned k = j + 1; k <= last; ++k) {
            double lkj = _ref[refIndex(k, j)];
            for (unsigned i = k; i <= last; ++i)
                _ref[refIndex(i, k)] -= _ref[refIndex(i, j)] * lkj;
        }
    }

    // Reference factor norms for the post-factorization sweeps (the
    // solve/residual phase of the real benchmark): each processor
    // scans a strided subset of columns twice.
    unsigned nproc = m.numProcs();
    _refNorms.assign(nproc, 0.0);
    for (unsigned tid = 0; tid < nproc; ++tid) {
        double norm = 0;
        for (int pass = 0; pass < 2; ++pass) {
            for (unsigned s = 0; s < _n / 3; ++s) {
                unsigned j = (tid + 3 * s) % _n;
                unsigned last = std::min(_n - 1, j + _band);
                for (unsigned i = j; i <= last; ++i) {
                    double v = _ref[refIndex(i, j)];
                    norm += v * v;
                }
            }
        }
        _refNorms[tid] = norm;
    }
}

Task
CholeskyWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();

    for (unsigned j = 0; j < _n; ++j) {
        unsigned last = std::min(_n - 1, j + _band);

        // cdiv: the owner of column j scales it by sqrt of the diagonal.
        if (j % nproc == tid) {
            double ajj = co_await ctx.read<double>(elem(j, j));
            double d = std::sqrt(ajj);
            co_await ctx.write<double>(elem(j, j), d);
            for (unsigned i = j + 1; i <= last; ++i) {
                double v = co_await ctx.read<double>(elem(i, j));
                co_await ctx.write<double>(elem(i, j), v / d);
            }
        }
        co_await ctx.barrier(_bar);

        // cmod: owners of the columns inside the band update them by
        // streaming the (usually remote) pivot column j.
        for (unsigned k = j + 1; k <= last; ++k) {
            if (k % nproc != tid)
                continue;
            double lkj = co_await ctx.read<double>(elem(k, j));
            for (unsigned i = k; i <= last; ++i) {
                double lij = co_await ctx.read<double>(elem(i, j));
                double aik = co_await ctx.read<double>(elem(i, k));
                co_await ctx.write<double>(elem(i, k), aik - lij * lkj);
                co_await ctx.think(10);
            }
        }
        co_await ctx.barrier(_bar);
    }

    // Post-factorization sweeps over a strided column subset (stands
    // in for the triangular solves): re-reads far more data than a
    // 16 KB SLC holds, which is where Table 3's replacement misses
    // come from.
    double norm = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (unsigned s = 0; s < _n / 3; ++s) {
            unsigned j = (tid + 3 * s) % _n;
            unsigned last = std::min(_n - 1, j + _band);
            for (unsigned i = j; i <= last; ++i) {
                double v = co_await ctx.read<double>(elem(i, j));
                norm += v * v;
                co_await ctx.think(2);
            }
        }
    }
    co_await ctx.write<double>(_norms + tid * 32, norm);
    co_await ctx.barrier(_bar);
}

bool
CholeskyWorkload::verify(Machine &m)
{
    for (unsigned tid = 0; tid < m.numProcs(); ++tid) {
        double got = m.store().load<double>(_norms + tid * 32);
        if (std::fabs(got - _refNorms[tid]) >
            1e-9 * std::max(1.0, std::fabs(_refNorms[tid]))) {
            return false;
        }
    }
    for (unsigned j = 0; j < _n; ++j) {
        for (unsigned i = j; i < std::min(_n, j + _band + 1); ++i) {
            double got = m.store().load<double>(elem(i, j));
            double want = _ref[refIndex(i, j)];
            if (std::fabs(got - want) >
                1e-9 * std::max(1.0, std::fabs(want))) {
                return false;
            }
        }
    }
    return true;
}

} // namespace psim::apps
