/**
 * @file
 * LU decomposition (one of the paper's two Stanford applications).
 *
 * Dense, non-pivoting, column-interleaved LU: column j is owned by
 * processor j mod P. In the update phase every processor streams
 * through the pivot column -- a remote, read-only, unit-stride (8-byte)
 * access pattern -- which gives LU the paper's signature: almost all
 * read misses inside long stride sequences with a dominant stride of
 * one block.
 */

#ifndef PSIM_APPS_LU_HH
#define PSIM_APPS_LU_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class LuWorkload : public Workload
{
  public:
    explicit LuWorkload(unsigned scale);

    const char *name() const override { return "lu"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned order() const { return _n; }

  private:
    /** Column-major element address. */
    Addr
    elem(unsigned i, unsigned j) const
    {
        return _a + (static_cast<Addr>(j) * _n + i) * sizeof(double);
    }

    unsigned _n = 0;
    Addr _a = 0;
    Addr _bar = 0;
    std::vector<double> _ref; ///< natively factored reference
};

} // namespace psim::apps

#endif // PSIM_APPS_LU_HH
