/**
 * @file
 * Banded Cholesky factorization (stands in for SPLASH Cholesky).
 *
 * SPLASH Cholesky factors a sparse SPD matrix column by column; its
 * read-miss signature in the paper is ~80% of misses inside stride
 * sequences with a dominant stride of one block and an average sequence
 * length of ~7 references. A banded SPD factorization reproduces that
 * signature exactly: every update streams a remote pivot column --
 * contiguous 8-byte-stride runs of about one bandwidth -- so misses
 * form unit-block-stride sequences of ~band/4 blocks.
 */

#ifndef PSIM_APPS_CHOLESKY_HH
#define PSIM_APPS_CHOLESKY_HH

#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class CholeskyWorkload : public Workload
{
  public:
    explicit CholeskyWorkload(unsigned scale);

    const char *name() const override { return "cholesky"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned order() const { return _n; }
    unsigned bandwidth() const { return _band; }

  private:
    /** Band storage: column j holds rows j .. j+band. */
    Addr
    elem(unsigned i, unsigned j) const
    {
        return _a + (static_cast<Addr>(j) * (_band + 1) + (i - j)) *
                       sizeof(double);
    }

    std::size_t
    refIndex(unsigned i, unsigned j) const
    {
        return static_cast<std::size_t>(j) * (_band + 1) + (i - j);
    }

    unsigned _n = 0;
    unsigned _band = 0;
    Addr _a = 0;
    Addr _bar = 0;
    Addr _norms = 0; ///< one result slot per processor
    std::vector<double> _ref;
    std::vector<double> _refNorms;
};

} // namespace psim::apps

#endif // PSIM_APPS_CHOLESKY_HH
