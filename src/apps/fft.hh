/**
 * @file
 * FFT: six-step 1-D complex FFT (in the style of SPLASH-2 FFT).
 *
 * The data set is a sqrt(N) x sqrt(N) matrix of complex doubles.
 * Each processor owns a contiguous band of rows. The computation
 * alternates transposes -- whose reads walk *columns* of a row-major
 * matrix, a large-stride pattern of one row (32 blocks at the default
 * size) per access, mostly remote -- with per-row radix-2 FFTs, whose
 * accesses are unit-stride and local. This gives FFT a signature the
 * six paper applications do not cover: phase-alternating large-stride
 * and sequential access from the same processor.
 *
 * Not part of the paper's six applications; included as an extension
 * workload (the registry name is "fft").
 */

#ifndef PSIM_APPS_FFT_HH
#define PSIM_APPS_FFT_HH

#include <complex>
#include <vector>

#include "apps/workload.hh"

namespace psim::apps
{

class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(unsigned scale);

    const char *name() const override { return "fft"; }
    void setup(Machine &m) override;
    Task thread(ThreadCtx &ctx) override;
    bool verify(Machine &m) override;

    unsigned rows() const { return _m; }

  private:
    /** Address of element (i,j) of matrix @p base (16 B elements). */
    Addr
    at(Addr base, unsigned i, unsigned j) const
    {
        return base + (static_cast<Addr>(i) * _m + j) * 16;
    }

    Addr twiddle(unsigned k) const { return _w + static_cast<Addr>(k) * 16; }

    /** The same per-row FFT the simulated threads run, natively. */
    static void rowFftNative(std::complex<double> *row, unsigned n,
                             const std::vector<std::complex<double>> &w);

    unsigned _m = 0; ///< matrix dimension (sqrt of the FFT size)
    Addr _a = 0;     ///< matrix A
    Addr _b = 0;     ///< matrix B (transpose target)
    Addr _w = 0;     ///< twiddle table (m entries, roots of unity)
    Addr _bar = 0;
    std::vector<std::complex<double>> _ref; ///< final expected B
};

} // namespace psim::apps

#endif // PSIM_APPS_FFT_HH
