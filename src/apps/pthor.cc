#include "apps/pthor.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

namespace
{

std::uint64_t
mix(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return v;
}

double
gateFn(double in0, double in1, double state)
{
    return std::tanh(0.8 * in0 - 0.6 * in1 + 0.1 * state);
}

} // namespace

PthorWorkload::PthorWorkload(unsigned scale) : Workload(scale)
{
    _steps = 8; // paper: the RISC circuit for 1000 time steps
}

bool
PthorWorkload::activeAt(unsigned e, unsigned step) const
{
    return mix(e ^ (step * 1013ULL)) % 3 != 0;
}

void
PthorWorkload::setup(Machine &m)
{
    unsigned nproc = m.numProcs();
    _nelem = 256 * nproc * _scale;

    _elems = shm().alloc(static_cast<std::size_t>(_nelem) * kRecordBytes,
                         m.cfg().pageSize);
    _queues = shm().alloc(static_cast<std::size_t>(nproc) * 64, 64);
    _queueLocks = shm().alloc(static_cast<std::size_t>(nproc) * 32, 32);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x7u);
    std::vector<double> out(_nelem);
    std::vector<double> state(_nelem);
    std::vector<unsigned> fan0(_nelem);
    std::vector<unsigned> fan1(_nelem);
    for (unsigned e = 0; e < _nelem; ++e) {
        out[e] = rng.real() - 0.5;
        state[e] = rng.real() - 0.5;
        fan0[e] = static_cast<unsigned>(mix(e * 3ULL + 1) % _nelem);
        fan1[e] = static_cast<unsigned>(mix(e * 7ULL + 5) % _nelem);
        if (fan0[e] == e)
            fan0[e] = (fan0[e] + 1) % _nelem;
        if (fan1[e] == e)
            fan1[e] = (fan1[e] + 2) % _nelem;
        m.store().store<double>(efield(e, kOutA), out[e]);
        m.store().store<double>(efield(e, kOutB), 0.0);
        m.store().store<double>(efield(e, kState), state[e]);
        m.store().store<std::uint64_t>(efield(e, kFanin0), fan0[e]);
        m.store().store<std::uint64_t>(efield(e, kFanin1), fan1[e]);
        m.store().store<double>(efield(e, kDelay), 1.0 + rng.real());
    }
    for (unsigned n = 0; n < nproc; ++n)
        m.store().store<double>(_queues + static_cast<Addr>(n) * 64, 0.0);

    // Native reference with the same double-buffered schedule.
    std::vector<double> cur = out;
    std::vector<double> next(_nelem, 0.0);
    std::vector<double> queue_counts(nproc, 0.0);
    for (unsigned step = 0; step < _steps; ++step) {
        for (unsigned e = 0; e < _nelem; ++e) {
            if (!activeAt(e, step)) {
                next[e] = cur[e];
                continue;
            }
            double v = gateFn(cur[fan0[e]], cur[fan1[e]], state[e]);
            next[e] = v;
            state[e] = 0.95 * state[e] + 0.05 * v;
            if (e % 16 == 0)
                queue_counts[fan0[e] % nproc] += 1.0;
        }
        cur.swap(next);
    }
    _refOut = cur;
    _refState = state;
    _refOut.insert(_refOut.end(), queue_counts.begin(),
                   queue_counts.end());
}

Task
PthorWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();
    const unsigned chunk = _nelem / nproc;
    const unsigned lo = tid * chunk;
    const unsigned hi = lo + chunk;

    for (unsigned step = 0; step < _steps; ++step) {
        unsigned cur_off = (step % 2 == 0) ? kOutA : kOutB;
        unsigned next_off = (step % 2 == 0) ? kOutB : kOutA;

        for (unsigned e = lo; e < hi; ++e) {
            if (!activeAt(e, step)) {
                double keep =
                        co_await ctx.read<double>(efield(e, cur_off));
                co_await ctx.write<double>(efield(e, next_off), keep);
                continue;
            }
            auto f0 = co_await ctx.read<std::uint64_t>(
                    efield(e, kFanin0));
            auto f1 = co_await ctx.read<std::uint64_t>(
                    efield(e, kFanin1));
            // Pointer-chasing fan-in reads: scattered, unstrided.
            double in0 = co_await ctx.read<double>(
                    efield(static_cast<unsigned>(f0), cur_off));
            double in1 = co_await ctx.read<double>(
                    efield(static_cast<unsigned>(f1), cur_off));
            double st = co_await ctx.read<double>(efield(e, kState));
            double v = gateFn(in0, in1, st);
            co_await ctx.write<double>(efield(e, next_off), v);
            co_await ctx.write<double>(efield(e, kState),
                    0.95 * st + 0.05 * v);
            co_await ctx.think(12);

            if (e % 16 == 0) {
                // Post an event to the fan-out owner's work queue.
                NodeId target = static_cast<unsigned>(f0) % nproc;
                Addr lock_addr =
                        _queueLocks + static_cast<Addr>(target) * 32;
                Addr slot = _queues + static_cast<Addr>(target) * 64;
                co_await ctx.lock(lock_addr);
                double cnt = co_await ctx.read<double>(slot);
                co_await ctx.write<double>(slot, cnt + 1.0);
                co_await ctx.unlock(lock_addr);
            }
        }
        co_await ctx.barrier(_bar);
    }
}

bool
PthorWorkload::verify(Machine &m)
{
    unsigned cur_off = (_steps % 2 == 0) ? kOutA : kOutB;
    for (unsigned e = 0; e < _nelem; ++e) {
        double got = m.store().load<double>(efield(e, cur_off));
        double st = m.store().load<double>(efield(e, kState));
        if (std::fabs(got - _refOut[e]) > 1e-9 ||
            std::fabs(st - _refState[e]) > 1e-9) {
            return false;
        }
    }
    unsigned nproc = m.numProcs();
    for (unsigned n = 0; n < nproc; ++n) {
        double got = m.store().load<double>(
                _queues + static_cast<Addr>(n) * 64);
        if (std::fabs(got - _refOut[_nelem + n]) > 1e-9)
            return false;
    }
    return true;
}

} // namespace psim::apps
