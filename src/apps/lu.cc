#include "apps/lu.hh"

#include <cmath>

#include "sim/random.hh"

namespace psim::apps
{

LuWorkload::LuWorkload(unsigned scale) : Workload(scale)
{
    // The paper used a 200x200 matrix; 64 keeps a 16-processor run fast
    // while preserving long unit-stride pivot-column sequences.
    _n = 32 + 32 * scale;
}

void
LuWorkload::setup(Machine &m)
{
    _a = shm().alloc(static_cast<std::size_t>(_n) * _n * sizeof(double),
                     m.cfg().pageSize);
    _bar = shm().allocSync();

    Rng rng(m.cfg().seed ^ 0x1u);
    std::vector<double> a(static_cast<std::size_t>(_n) * _n);
    for (unsigned j = 0; j < _n; ++j) {
        for (unsigned i = 0; i < _n; ++i) {
            double v = rng.real();
            if (i == j)
                v += _n; // diagonally dominant: no pivoting needed
            a[static_cast<std::size_t>(j) * _n + i] = v;
            m.store().store<double>(elem(i, j), v);
        }
    }

    // Native reference factorization.
    _ref = a;
    auto at = [this](std::vector<double> &v, unsigned i,
                     unsigned j) -> double & {
        return v[static_cast<std::size_t>(j) * _n + i];
    };
    for (unsigned k = 0; k < _n; ++k) {
        for (unsigned i = k + 1; i < _n; ++i)
            at(_ref, i, k) /= at(_ref, k, k);
        for (unsigned j = k + 1; j < _n; ++j) {
            double akj = at(_ref, k, j);
            for (unsigned i = k + 1; i < _n; ++i)
                at(_ref, i, j) -= at(_ref, i, k) * akj;
        }
    }
}

Task
LuWorkload::thread(ThreadCtx &ctx)
{
    const unsigned tid = ctx.tid();
    const unsigned nproc = ctx.nthreads();

    for (unsigned k = 0; k < _n; ++k) {
        // The owner of the pivot column scales it.
        if (k % nproc == tid) {
            double akk = co_await ctx.read<double>(elem(k, k));
            for (unsigned i = k + 1; i < _n; ++i) {
                double v = co_await ctx.read<double>(elem(i, k));
                co_await ctx.write<double>(elem(i, k), v / akk);
            }
        }
        co_await ctx.barrier(_bar);

        // Every processor updates its own columns with the pivot column.
        for (unsigned j = k + 1; j < _n; ++j) {
            if (j % nproc != tid)
                continue;
            double akj = co_await ctx.read<double>(elem(k, j));
            for (unsigned i = k + 1; i < _n; ++i) {
                double aik = co_await ctx.read<double>(elem(i, k));
                double aij = co_await ctx.read<double>(elem(i, j));
                co_await ctx.write<double>(elem(i, j), aij - aik * akj);
                co_await ctx.think(10); // multiply-add + loop overhead
            }
        }
        co_await ctx.barrier(_bar);
    }
}

bool
LuWorkload::verify(Machine &m)
{
    for (unsigned j = 0; j < _n; ++j) {
        for (unsigned i = 0; i < _n; ++i) {
            double got = m.store().load<double>(elem(i, j));
            double want = _ref[static_cast<std::size_t>(j) * _n + i];
            if (std::fabs(got - want) >
                1e-9 * std::max(1.0, std::fabs(want))) {
                return false;
            }
        }
    }
    return true;
}

} // namespace psim::apps
