/**
 * @file
 * First-level cache (paper Section 2).
 *
 * On-chip, direct-mapped, write-through with no allocation on write
 * misses, blocking on read misses, and invalidatable from outside the
 * chip (the block-invalidation pin) so the SLC can maintain inclusion.
 * The FLC holds tags only; data lives in the functional backing store.
 */

#ifndef PSIM_MEM_FLC_HH
#define PSIM_MEM_FLC_HH

#include "mem/cache_array.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace psim
{

class Flc
{
  public:
    explicit Flc(const MachineConfig &cfg)
        : _cfg(cfg), _array(cfg.flcSize, 1, cfg.blockSize)
    {
    }

    /** Probe for a read. @return true on hit (updates stats). */
    bool
    probeRead(Addr addr, Tick now)
    {
        ++reads;
        CacheBlk *blk = _array.find(_cfg.blockAddr(addr));
        if (blk) {
            _array.touch(blk, now);
            return true;
        }
        ++readMisses;
        return false;
    }

    /**
     * Probe for a write. Write-through, no-allocate: the write always
     * continues to the FLWB; a hit merely keeps the cached copy in sync
     * (data itself is functional).
     */
    void
    probeWrite(Addr addr, Tick now)
    {
        ++writes;
        CacheBlk *blk = _array.find(_cfg.blockAddr(addr));
        if (blk)
            _array.touch(blk, now);
        else
            ++writeMisses;
    }

    /** Fill after an SLC read response (direct-mapped victim evicted). */
    void
    fill(Addr addr, Tick now)
    {
        Addr blk_addr = _cfg.blockAddr(addr);
        CacheBlk *frame = _array.findVictim(blk_addr);
        _array.fill(frame, blk_addr, CohState::Shared, now);
    }

    /** The block-invalidation pin (inclusion with the SLC). */
    void
    invalidate(Addr blk_addr)
    {
        if (CacheBlk *blk = _array.find(blk_addr)) {
            _array.invalidate(blk);
            ++invalidations;
        }
    }

    bool contains(Addr blk_addr) const { return _array.find(blk_addr); }

    const CacheArray &array() const { return _array; }

    stats::Scalar reads;
    stats::Scalar readMisses;
    stats::Scalar writes;
    stats::Scalar writeMisses;
    stats::Scalar invalidations;

    /** Register this cache's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("reads", &reads, "read probes");
        g.addScalar("readMisses", &readMisses, "read misses");
        g.addScalar("writes", &writes, "write probes");
        g.addScalar("writeMisses", &writeMisses, "write misses");
        g.addScalar("invalidations", &invalidations,
                "inclusion invalidations from the SLC");
    }

  private:
    const MachineConfig &_cfg;
    CacheArray _array;
};

} // namespace psim

#endif // PSIM_MEM_FLC_HH
