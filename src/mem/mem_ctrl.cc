#include "mem/mem_ctrl.hh"

#include <bit>

#include "sim/logging.hh"
#include "sys/machine.hh"

namespace psim
{

MemCtrl::MemCtrl(Machine &m, NodeId id)
    : _m(m),
      _eq(m.eqOf(id)),
      _id(id),
      _locks([this](NodeId dst, Addr addr) {
          reply(MsgType::LockGrant, dst, addr, 0);
      }),
      _barrier([this](NodeId dst, Addr addr) {
          reply(MsgType::BarrierGo, dst, addr, 0);
      })
{
    _audit = m.auditor();
    _locks.setAudit(_audit, _id);
    // The directory map sits on the hot path of every coherence message;
    // pre-size it and keep the load factor low to limit rehash churn.
    _dir.reserve(1024);
    _dir.max_load_factor(0.7f);
}

void
MemCtrl::auditCheckEntry(const DirEntry &ent, const Message &m) const
{
    auto bad = [&](const char *what) {
        psim_panic("home %u audit: directory entry for %#llx %s "
                   "(st %u presence %#llx owner %u busy %u acks %u "
                   "fetchFrom %u, on %s from %u)",
                   _id, (unsigned long long)m.addr, what,
                   (unsigned)ent.st, (unsigned long long)ent.presence,
                   ent.owner, (unsigned)ent.busy, ent.pendingAcks,
                   ent.fetchFrom, toString(m.type), m.src);
    };
    switch (ent.st) {
      case DirEntry::St::Uncached:
        if (ent.presence != 0 || ent.owner != kNodeNone)
            bad("uncached with sharers or an owner");
        break;
      case DirEntry::St::Clean:
        if (ent.owner != kNodeNone)
            bad("clean but has an owner");
        break;
      case DirEntry::St::Dirty:
        if (ent.owner == kNodeNone || ent.presence != 0)
            bad("dirty without a sole owner");
        if (ent.owner >= _m.cfg().numProcs)
            bad("owned by a node outside the machine");
        break;
    }
    if (_m.cfg().numProcs < 64 &&
        (ent.presence >> _m.cfg().numProcs) != 0)
        bad("has presence bits for nodes outside the machine");
    if (ent.busy && ent.pendingAcks == 0 && ent.fetchFrom == kNodeNone)
        bad("busy with neither pending acks nor an outstanding fetch");
    if (!ent.busy && (ent.pendingAcks != 0 || ent.fetchFrom != kNodeNone))
        bad("idle but has a pending ack round or fetch");
}

bool
MemCtrl::isMigratory(Addr blk_addr) const
{
    auto it = _dir.find(blk_addr);
    return it != _dir.end() && it->second.migratory;
}

void
MemCtrl::grantedExclusive(DirEntry &ent, NodeId req)
{
    if (_m.cfg().migratoryOpt && !ent.migratory &&
        ent.lastWriter != kNodeNone && ent.lastWriter != req) {
        // The writer moved between nodes: evidence of migration. Two
        // consecutive migrations classify the block migratory.
        if (++ent.migEvidence >= 2) {
            ent.migratory = true;
            ent.migWasted = 0;
            ++migratoryDetected;
        }
    }
    ent.lastWriter = req;
}

MemCtrl::DirSnapshot
MemCtrl::snapshot(Addr blk_addr) const
{
    DirSnapshot s;
    auto it = _dir.find(blk_addr);
    if (it == _dir.end())
        return s;
    const DirEntry &e = it->second;
    s.st = static_cast<DirSnapshot::St>(e.st);
    s.presence = e.presence;
    s.owner = e.owner;
    s.busy = e.busy;
    return s;
}

void
MemCtrl::reply(MsgType t, NodeId dst, Addr addr, Tick extra)
{
    // All latency is charged on the processing path (receive()), so
    // sends happen in processing order and the network's per-path FIFO
    // guarantees that an invalidation can never overtake an earlier
    // data reply to the same node.
    psim_assert(extra == 0, "replies must not be delayed");
    Message r;
    r.type = t;
    r.src = _id;
    r.dst = dst;
    r.requester = dst;
    r.addr = addr;
    _m.send(r);
}

void
MemCtrl::sendFetch(MsgType t, NodeId owner, Addr addr, NodeId requester)
{
    ++fetchesSent;
    Message f;
    f.type = t;
    f.src = _id;
    f.dst = owner;
    f.requester = requester;
    f.addr = addr;
    _m.send(f);
}

void
MemCtrl::receive(const Message &m)
{
    // The memory is fully interleaved: banks serialize only on the
    // directory-access granularity. Coherence traffic additionally pays
    // the 90 ns DRAM access before it is acted upon, so every message
    // class experiences the same processing delay and arrival order is
    // preserved into send order (see reply()).
    Tick delay = _m.cfg().dirLat;
    switch (m.type) {
      case MsgType::ReadReq:
      case MsgType::ReadExReq:
      case MsgType::UpgradeReq:
      case MsgType::WritebackReq:
      case MsgType::FetchReply:
      case MsgType::InvAck:
        delay += _m.cfg().memAccessLat;
        break;
      default:
        break;
    }
    Tick start = _bank.claim(_eq.now(), _m.cfg().dirLat);
    Message copy = m;
    _eq.schedule(start + delay, [this, copy] { process(copy); });
}

void
MemCtrl::process(const Message &m)
{
    switch (m.type) {
      case MsgType::LockReq:
        _locks.request(m.src, m.addr);
        return;
      case MsgType::LockRel:
        _locks.release(m.src, m.addr);
        return;
      case MsgType::BarrierArrive:
        _barrier.arrive(m.src, m.addr, m.aux);
        return;
      default:
        handleCoherent(m);
    }
}

void
MemCtrl::handleCoherent(const Message &m)
{
    psim_assert(_m.cfg().homeOf(m.addr) == _id,
            "message for %llx reached wrong home %u",
            (unsigned long long)m.addr, _id);
    DirEntry &ent = _dir[m.addr];
    if (_audit)
        auditCheckEntry(ent, m);

    switch (m.type) {
      case MsgType::ReadReq:
      case MsgType::ReadExReq:
      case MsgType::UpgradeReq:
        if (ent.busy || ent.replayPending) {
            ++queuedAtBusyEntry;
            ent.waiting.push_back(m);
            return;
        }
        startOp(ent, m);
        return;

      case MsgType::WritebackReq:
        ++writebacksRecv;
        if (ent.busy && ent.fetchFrom == m.src) {
            // The owner's writeback crossed our fetch request; use it
            // as the fetch reply. The owner gave up its copy entirely.
            reply(MsgType::WritebackAck, m.src, m.addr, 0);
            ownerDataArrived(ent, m.addr, false, true);
            return;
        }
        psim_assert(ent.st == DirEntry::St::Dirty && ent.owner == m.src,
                "writeback of %llx from non-owner %u",
                (unsigned long long)m.addr, m.src);
        ent.st = DirEntry::St::Uncached;
        ent.owner = kNodeNone;
        ent.presence = 0;
        reply(MsgType::WritebackAck, m.src, m.addr, 0);
        return;

      case MsgType::FetchReply:
        psim_assert(ent.busy && ent.fetchFrom == m.src,
                "unexpected fetch reply for %llx from %u",
                (unsigned long long)m.addr, m.src);
        ownerDataArrived(ent, m.addr,
                ent.pending.type == MsgType::ReadReq, m.aux != 0);
        return;

      case MsgType::InvAck:
        psim_assert(ent.busy && ent.pendingAcks > 0,
                "unexpected inv ack for %llx", (unsigned long long)m.addr);
        if (--ent.pendingAcks == 0)
            acksComplete(ent, m.addr);
        return;

      default:
        psim_panic("home %u: unexpected message %s", _id,
                toString(m.type));
    }
}

void
MemCtrl::startReadEx(DirEntry &ent, const Message &m, bool as_upgrade)
{
    NodeId req = m.requester;
    switch (ent.st) {
      case DirEntry::St::Uncached:
        ent.st = DirEntry::St::Dirty;
        ent.owner = req;
        ent.presence = 0;
        grantedExclusive(ent, req);
        reply(MsgType::DataExReply, req, m.addr, 0);
        return;
      case DirEntry::St::Clean: {
        std::uint64_t others = ent.presence & ~bit(req);
        bool had_copy = (ent.presence & bit(req)) != 0;
        if (others == 0) {
            ent.st = DirEntry::St::Dirty;
            ent.owner = req;
            ent.presence = 0;
            grantedExclusive(ent, req);
            if (as_upgrade && had_copy) {
                reply(MsgType::UpgradeAck, req, m.addr, 0);
            } else {
                reply(MsgType::DataExReply, req, m.addr, 0);
            }
            return;
        }
        ent.busy = true;
        ent.pending = m;
        // Remember whether the requester keeps its shared copy so the
        // completion can pick UpgradeAck vs DataExReply.
        ent.pending.aux = (as_upgrade && had_copy) ? 1 : 0;
        ent.pendingAcks = static_cast<unsigned>(std::popcount(others));
        for (NodeId n = 0; n < _m.cfg().numProcs; ++n) {
            if (others & bit(n)) {
                ++invalidationsSent;
                Message inv;
                inv.type = MsgType::InvReq;
                inv.src = _id;
                inv.dst = n;
                inv.requester = req;
                inv.addr = m.addr;
                _m.send(inv);
            }
        }
        return;
      }
      case DirEntry::St::Dirty:
        psim_assert(ent.owner != req,
                "owner %u write-missing its own block", req);
        ent.busy = true;
        ent.pending = m;
        ent.pending.aux = 0;
        ent.fetchFrom = ent.owner;
        sendFetch(MsgType::FetchInvReq, ent.owner, m.addr, req);
        return;
    }
}

void
MemCtrl::startOp(DirEntry &ent, const Message &m)
{
    NodeId req = m.requester;
    switch (m.type) {
      case MsgType::ReadReq:
        ++readReqs;
        switch (ent.st) {
          case DirEntry::St::Uncached:
          case DirEntry::St::Clean:
            ent.st = DirEntry::St::Clean;
            ent.presence |= bit(req);
            reply(MsgType::DataReply, req, m.addr, 0);
            return;
          case DirEntry::St::Dirty:
            psim_assert(ent.owner != req,
                    "owner %u read-missing its own block", req);
            ent.busy = true;
            ent.pending = m;
            ent.fetchFrom = ent.owner;
            if (_m.cfg().migratoryOpt && ent.migratory) {
                // Migratory block: hand the reader an exclusive copy
                // so its expected write needs no upgrade.
                ++migratoryGrants;
                ent.pending.type = MsgType::ReadExReq;
                sendFetch(MsgType::FetchInvReq, ent.owner, m.addr, req);
            } else {
                sendFetch(MsgType::FetchReq, ent.owner, m.addr, req);
            }
            return;
        }
        return;

      case MsgType::ReadExReq:
        ++readExReqs;
        startReadEx(ent, m, false);
        return;

      case MsgType::UpgradeReq:
        ++upgradeReqs;
        if (ent.st == DirEntry::St::Clean && (ent.presence & bit(req))) {
            startReadEx(ent, m, true);
        } else {
            // The requester's copy was invalidated while the upgrade
            // was in flight; service it as a full read-exclusive.
            ++convertedUpgrades;
            startReadEx(ent, m, false);
        }
        return;

      default:
        psim_panic("startOp on %s", toString(m.type));
    }
}

void
MemCtrl::ownerDataArrived(DirEntry &ent, Addr addr, bool owner_kept_copy,
                          bool owner_wrote)
{
    NodeId req = ent.pending.requester;
    NodeId old_owner = ent.fetchFrom;
    ent.fetchFrom = kNodeNone;

    if (ent.migratory) {
        // Demote after two consecutive exclusive handoffs the previous
        // owner never wrote to: the block is being read-shared.
        if (owner_wrote) {
            ent.migWasted = 0;
        } else if (++ent.migWasted >= 2) {
            ent.migratory = false;
            ent.migEvidence = 0;
            ent.migWasted = 0;
            ++migratoryDemotions;
        }
    }

    if (ent.pending.type == MsgType::ReadReq) {
        ent.st = DirEntry::St::Clean;
        ent.presence = bit(req);
        if (owner_kept_copy)
            ent.presence |= bit(old_owner);
        ent.owner = kNodeNone;
        reply(MsgType::DataReply, req, addr, 0);
    } else {
        ent.st = DirEntry::St::Dirty;
        ent.owner = req;
        ent.presence = 0;
        grantedExclusive(ent, req);
        reply(MsgType::DataExReply, req, addr, 0);
    }
    ent.busy = false;
    unblock(ent, addr);
}

void
MemCtrl::acksComplete(DirEntry &ent, Addr addr)
{
    NodeId req = ent.pending.requester;
    bool as_upgrade = ent.pending.aux == 1;
    ent.st = DirEntry::St::Dirty;
    ent.owner = req;
    ent.presence = 0;
    grantedExclusive(ent, req);
    if (as_upgrade)
        reply(MsgType::UpgradeAck, req, addr, 0);
    else
        reply(MsgType::DataExReply, req, addr, 0);
    ent.busy = false;
    unblock(ent, addr);
}

void
MemCtrl::unblock(DirEntry &ent, Addr addr)
{
    (void)addr;
    if (ent.waiting.empty())
        return;
    Message next = ent.waiting.front();
    ent.waiting.pop_front();
    // Queued requests replay against row-buffer-hot data: they pay the
    // directory access but not a fresh DRAM access.
    ent.replayPending = true;
    _eq.scheduleIn(_m.cfg().dirLat, [this, next] {
        DirEntry &e = _dir[next.addr];
        e.replayPending = false;
        psim_assert(!e.busy, "queued request replayed into busy entry");
        startOp(e, next);
        if (!e.busy)
            unblock(e, next.addr);
    });
}

} // namespace psim
