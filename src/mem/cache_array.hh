/**
 * @file
 * Generic cache tag/state array.
 *
 * Used both by the FLC (direct-mapped, valid bit only) and the SLC
 * (coherence state + prefetched bit). Supports an "infinite" mode, used
 * for the paper's default infinitely-large SLC, backed by a hash map so
 * that no replacements ever occur.
 */

#ifndef PSIM_MEM_CACHE_ARRAY_HH
#define PSIM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace psim
{

/** SLC coherence states (write-invalidate MSI at the second level). */
enum class CohState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

const char *toString(CohState s);

struct CacheBlk
{
    Addr addr = kAddrInvalid; ///< block-aligned address
    CohState state = CohState::Invalid;
    bool prefetched = false;  ///< the 1-bit prefetch tag of Section 3.3
    bool written = false;     ///< the local processor stored to this copy
    /**
     * The prefetch outcome for this block was already reported to the
     * prefetcher as useless because it stayed unreferenced too long
     * (adaptive-scheme feedback aging; see Slc::agePrefetches).
     */
    bool outcomeReported = false;
    Tick lastUse = 0;         ///< LRU timestamp

    bool valid() const { return state != CohState::Invalid; }
};

class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity; 0 means infinite
     * @param assoc ways per set (ignored when infinite)
     * @param block_size bytes per block
     */
    CacheArray(unsigned size_bytes, unsigned assoc, unsigned block_size);

    bool infinite() const { return _infinite; }
    unsigned numSets() const { return _numSets; }
    unsigned assoc() const { return _assoc; }

    /** Look up a block; nullptr on miss. Does not touch LRU state. */
    CacheBlk *find(Addr blk_addr);
    const CacheBlk *find(Addr blk_addr) const;

    /** Update the LRU timestamp of a resident block. */
    void touch(CacheBlk *blk, Tick now) { blk->lastUse = now; }

    /**
     * Pick the frame a new block for @p blk_addr would occupy. In
     * infinite mode this never evicts. Otherwise returns the invalid or
     * LRU way of the set; the caller must handle the victim (the
     * returned block still holds the victim's metadata).
     */
    CacheBlk *findVictim(Addr blk_addr);

    /**
     * Install @p blk_addr in @p frame (obtained from findVictim) with
     * @p state.
     */
    void
    fill(CacheBlk *frame, Addr blk_addr, CohState state, Tick now)
    {
        frame->addr = blk_addr;
        frame->state = state;
        frame->prefetched = false;
        frame->outcomeReported = false;
        frame->written = false;
        frame->lastUse = now;
    }

    /** Invalidate a resident block. */
    void invalidate(CacheBlk *blk);

    /** Apply @p fn to every valid block (for invariant checks/stats). */
    void forEach(const std::function<void(const CacheBlk &)> &fn) const;

    /** Number of currently valid blocks. */
    std::size_t numValid() const;

  private:
    std::size_t setIndex(Addr blk_addr) const;

    bool _infinite;
    unsigned _assoc;
    unsigned _blockSize;
    unsigned _numSets;

    /** Finite storage: sets x ways. */
    std::vector<CacheBlk> _frames;

    /** Infinite storage. */
    std::unordered_map<Addr, CacheBlk> _map;
};

} // namespace psim

#endif // PSIM_MEM_CACHE_ARRAY_HH
