/**
 * @file
 * Generic cache tag/state array.
 *
 * Used both by the FLC (direct-mapped, valid bit only) and the SLC
 * (coherence state + prefetched bit). Supports an "infinite" mode, used
 * for the paper's default infinitely-large SLC, in which no replacements
 * ever occur.
 *
 * Lookups dominate the simulator's profile (every demand access and
 * every prefetch candidate probes the array), so the storage is laid
 * out for the probe path:
 *
 *  - Finite mode keeps a separate tag lane (one Addr per way) alongside
 *    the block-metadata frames. A set lookup scans only the densely
 *    packed tags -- one cache line covers 8 ways -- and touches a frame
 *    only on a hit. Invalid ways hold kAddrInvalid in the tag lane, so
 *    the scan needs no separate valid check.
 *
 *  - Infinite mode is an open-addressed, power-of-two hash table with
 *    linear probing instead of a node-based unordered_map: no pointer
 *    chasing, no per-entry allocation. Entries are never removed --
 *    invalidation clears the coherence state but keeps the key, so
 *    probe chains stay intact and a block's slot is stable until the
 *    table grows.
 */

#ifndef PSIM_MEM_CACHE_ARRAY_HH
#define PSIM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace psim
{

/** SLC coherence states (write-invalidate MSI at the second level). */
enum class CohState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

const char *toString(CohState s);

struct CacheBlk
{
    Addr addr = kAddrInvalid; ///< block-aligned address
    CohState state = CohState::Invalid;
    bool prefetched = false;  ///< the 1-bit prefetch tag of Section 3.3
    bool written = false;     ///< the local processor stored to this copy
    /**
     * The prefetch outcome for this block was already reported to the
     * prefetcher as useless because it stayed unreferenced too long
     * (adaptive-scheme feedback aging; see Slc::agePrefetches).
     */
    bool outcomeReported = false;
    Tick lastUse = 0;         ///< LRU timestamp

    bool valid() const { return state != CohState::Invalid; }
};

class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity; 0 means infinite
     * @param assoc ways per set (ignored when infinite)
     * @param block_size bytes per block
     */
    CacheArray(unsigned size_bytes, unsigned assoc, unsigned block_size);

    bool infinite() const { return _infinite; }
    unsigned numSets() const { return _numSets; }
    unsigned assoc() const { return _assoc; }

    /** Look up a block; nullptr on miss. Does not touch LRU state. */
    CacheBlk *find(Addr blk_addr);

    const CacheBlk *
    find(Addr blk_addr) const
    {
        return const_cast<CacheArray *>(this)->find(blk_addr);
    }

    /** Update the LRU timestamp of a resident block. */
    void touch(CacheBlk *blk, Tick now) { blk->lastUse = now; }

    /**
     * Pick the frame a new block for @p blk_addr would occupy. In
     * infinite mode this never evicts (the table grows instead; growth
     * invalidates previously returned CacheBlk pointers). Otherwise
     * returns the invalid or LRU way of the set; the caller must handle
     * the victim (the returned block still holds the victim's metadata).
     */
    CacheBlk *findVictim(Addr blk_addr);

    /**
     * Install @p blk_addr in @p frame (obtained from findVictim) with
     * @p state.
     */
    void
    fill(CacheBlk *frame, Addr blk_addr, CohState state, Tick now)
    {
        frame->addr = blk_addr;
        frame->state = state;
        frame->prefetched = false;
        frame->outcomeReported = false;
        frame->written = false;
        frame->lastUse = now;
        if (!_infinite)
            _tags[static_cast<std::size_t>(frame - _frames.data())] =
                    blk_addr;
    }

    /** Invalidate a resident block. */
    void
    invalidate(CacheBlk *blk)
    {
        blk->state = CohState::Invalid;
        blk->prefetched = false;
        if (!_infinite)
            _tags[static_cast<std::size_t>(blk - _frames.data())] =
                    kAddrInvalid;
    }

    /** Apply @p fn to every valid block (for invariant checks/stats). */
    void forEach(const std::function<void(const CacheBlk &)> &fn) const;

    /** Number of currently valid blocks. */
    std::size_t numValid() const;

  private:
    std::size_t
    setIndex(Addr blk_addr) const
    {
        return static_cast<std::size_t>(
                (blk_addr >> _blockShift) & (_numSets - 1));
    }

    /**
     * Fibonacci hash: a single multiply whose high bits index the
     * table. The footprints the paper's workloads build are small
     * enough that the table stays cache-resident, so hash latency sits
     * directly on the probe's critical path -- a multi-round finalizer
     * (murmur3) measurably slows whole-application runs. The odd
     * multiplier is bijective, so power-of-two-strided block addresses
     * (column walks) still spread over the whole table.
     */
    std::uint64_t
    hashOf(Addr blk_addr) const
    {
        return (blk_addr * 0x9e3779b97f4a7c15ULL) >> _tableShift;
    }

    /** Double the infinite-mode table and rehash every occupied slot. */
    void grow();

    bool _infinite;
    unsigned _assoc;
    unsigned _blockShift;
    unsigned _numSets;

    /**
     * Finite storage (structure-of-arrays): the tag lane is scanned on
     * every probe; the frames hold the metadata touched only on a hit.
     * _tags[i] == _frames[i].addr when way i is valid, kAddrInvalid
     * otherwise.
     */
    std::vector<Addr> _tags;
    std::vector<CacheBlk> _frames;

    /**
     * Infinite storage: open-addressed table, capacity a power of two,
     * with kAddrInvalid marking an empty slot. The key lane is probed
     * separately from the metadata (the same structure-of-arrays split
     * as the finite tag lane): a probe touches only the dense 8-byte
     * keys, not the 24-byte frames. _tableTags[i] == _table[i].addr for
     * every occupied slot, including invalidated ones (keys are never
     * removed so probe chains stay intact).
     */
    std::vector<Addr> _tableTags;
    std::vector<CacheBlk> _table;
    std::size_t _tableUsed = 0;
    unsigned _tableShift = 0; ///< 64 - log2(_table.size())
};

// The probe paths are defined inline: they are leaves of the
// simulator's hottest loops (every demand access and every prefetch
// candidate lands here) and inlining them into the caller is worth
// more than any layout trick.

inline CacheBlk *
CacheArray::find(Addr blk_addr)
{
    if (_infinite) {
        const std::size_t mask = _table.size() - 1;
        const Addr *keys = _tableTags.data();
        std::size_t i = hashOf(blk_addr) & mask;
        while (keys[i] != kAddrInvalid) {
            if (keys[i] == blk_addr)
                return _table[i].valid() ? &_table[i] : nullptr;
            i = (i + 1) & mask;
        }
        return nullptr;
    }
    const std::size_t base = setIndex(blk_addr) * _assoc;
    const Addr *tags = _tags.data() + base;
    for (unsigned w = 0; w < _assoc; ++w) {
        if (tags[w] == blk_addr)
            return &_frames[base + w];
    }
    return nullptr;
}

inline CacheBlk *
CacheArray::findVictim(Addr blk_addr)
{
    if (_infinite) {
        // Grow before probing so the pointer we hand out survives the
        // insertion (keep the load factor at or below ~0.7).
        if ((_tableUsed + 1) * 10 > _table.size() * 7)
            grow();
        const std::size_t mask = _table.size() - 1;
        const Addr *keys = _tableTags.data();
        std::size_t i = hashOf(blk_addr) & mask;
        while (keys[i] != kAddrInvalid) {
            if (keys[i] == blk_addr)
                return &_table[i];
            i = (i + 1) & mask;
        }
        _tableTags[i] = blk_addr;
        _table[i].addr = blk_addr;
        ++_tableUsed;
        return &_table[i];
    }
    // The victim scan reads the frames anyway (LRU timestamps), so the
    // tag lane would only add a second stream here; scan frames alone.
    CacheBlk *set = &_frames[setIndex(blk_addr) * _assoc];
    CacheBlk *victim = &set[0];
    for (unsigned w = 0; w < _assoc; ++w) {
        if (!set[w].valid())
            return &set[w];
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    return victim;
}

} // namespace psim

#endif // PSIM_MEM_CACHE_ARRAY_HH
