/**
 * @file
 * Home memory controller: DRAM timing, full-map directory, and the
 * memory-side lock/barrier controllers.
 *
 * The directory implements a Censier/Feautrier-style write-invalidate
 * protocol: a presence bit per node for clean blocks, an owner for
 * dirty blocks, invalidation acknowledgements collected at the home,
 * and ownership transfers serialized by blocking the directory entry
 * (subsequent requests for a busy block queue at the home and are
 * replayed in order).
 */

#ifndef PSIM_MEM_MEM_CTRL_HH
#define PSIM_MEM_MEM_CTRL_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "proto/lock_ctrl.hh"
#include "proto/message.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace psim
{

class Machine;
class EventQueue;

class MemCtrl
{
  public:
    MemCtrl(Machine &m, NodeId id);

    /** A message delivered over the local bus. */
    void receive(const Message &m);

    /** Directory state of a block (tests / invariant checks). */
    struct DirSnapshot
    {
        enum class St : std::uint8_t { Uncached, Clean, Dirty } st =
                St::Uncached;
        std::uint64_t presence = 0;
        NodeId owner = kNodeNone;
        bool busy = false;
    };

    DirSnapshot snapshot(Addr blk_addr) const;

    /** Is the block currently classified migratory (tests)? */
    bool isMigratory(Addr blk_addr) const;

    LockCtrl &locks() { return _locks; }
    const LockCtrl &locks() const { return _locks; }
    BarrierCtrl &barrier() { return _barrier; }
    const BarrierCtrl &barrier() const { return _barrier; }

    stats::Scalar readReqs;
    stats::Scalar readExReqs;
    stats::Scalar upgradeReqs;
    stats::Scalar convertedUpgrades; ///< upgrades handled as ReadEx
    stats::Scalar fetchesSent;
    stats::Scalar invalidationsSent;
    stats::Scalar writebacksRecv;
    stats::Scalar queuedAtBusyEntry;
    stats::Scalar migratoryDetected;   ///< blocks classified migratory
    stats::Scalar migratoryGrants;     ///< reads served exclusively
    stats::Scalar migratoryDemotions;  ///< read-only handoffs demoted

    /**
     * Register this controller's statistics (including the memory-side
     * lock and barrier controllers it owns) into @p g.
     */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("readReqs", &readReqs, "read requests");
        g.addScalar("readExReqs", &readExReqs, "read-exclusive requests");
        g.addScalar("upgradeReqs", &upgradeReqs, "upgrade requests");
        g.addScalar("convertedUpgrades", &convertedUpgrades,
                "upgrades serviced as read-exclusive");
        g.addScalar("fetchesSent", &fetchesSent, "owner fetches sent");
        g.addScalar("invalidationsSent", &invalidationsSent,
                "invalidations sent");
        g.addScalar("writebacksRecv", &writebacksRecv,
                "writebacks received");
        g.addScalar("queuedAtBusyEntry", &queuedAtBusyEntry,
                "requests queued at busy directory entries");
        g.addScalar("migratoryDetected", &migratoryDetected,
                "blocks classified migratory");
        g.addScalar("migratoryGrants", &migratoryGrants,
                "reads granted exclusive copies");
        g.addScalar("migratoryDemotions", &migratoryDemotions,
                "read-only handoffs demoted");
        _locks.registerStats(g);
        _barrier.registerStats(g);
    }

  private:
    struct DirEntry
    {
        enum class St : std::uint8_t { Uncached, Clean, Dirty };

        St st = St::Uncached;
        std::uint64_t presence = 0; ///< sharer bitmask (Clean)
        NodeId owner = kNodeNone;   ///< owner (Dirty)

        bool busy = false;
        bool replayPending = false;   ///< a queued request is being replayed
        NodeId fetchFrom = kNodeNone; ///< owner a fetch is pending from

        // Migratory-sharing detection (cfg.migratoryOpt).
        NodeId lastWriter = kNodeNone;
        bool migratory = false;
        std::uint8_t migEvidence = 0; ///< consecutive writer migrations
        std::uint8_t migWasted = 0;   ///< exclusive grants never written
        unsigned pendingAcks = 0;
        Message pending;              ///< the request being serviced
        std::deque<Message> waiting;  ///< queued while busy
    };

    /** Claim the memory bank, then run the directory operation. */
    void process(const Message &m);

    /**
     * Audit cross-check: directory-entry state must be internally
     * consistent before every operation on it (Dirty entries have an
     * owner and no presence bits, Clean entries the reverse, busy
     * entries an outstanding fetch or invalidation round).
     */
    void auditCheckEntry(const DirEntry &ent, const Message &m) const;

    void handleCoherent(const Message &m);
    void startOp(DirEntry &ent, const Message &m);
    void startReadEx(DirEntry &ent, const Message &m, bool as_upgrade);

    /** Data arrived home (FetchReply or a racing WritebackReq). */
    void ownerDataArrived(DirEntry &ent, Addr addr, bool owner_kept_copy,
                          bool owner_wrote);

    /** Bookkeeping when a node gains exclusive ownership. */
    void grantedExclusive(DirEntry &ent, NodeId req);

    /** All invalidation acks collected. */
    void acksComplete(DirEntry &ent, Addr addr);

    /** Replay the next queued request, if any. */
    void unblock(DirEntry &ent, Addr addr);

    /** Send @p t to @p dst after @p extra ticks (DRAM latency etc.). */
    void reply(MsgType t, NodeId dst, Addr addr, Tick extra);

    void sendFetch(MsgType t, NodeId owner, Addr addr, NodeId requester);

    static std::uint64_t bit(NodeId n) { return 1ULL << n; }

    Machine &_m;
    /** This node's event queue (per-shard in sharded mode). */
    EventQueue &_eq;
    NodeId _id;
    audit::MachineAudit *_audit = nullptr; ///< null when auditing is off
    Resource _bank;
    LockCtrl _locks;
    BarrierCtrl _barrier;
    std::unordered_map<Addr, DirEntry> _dir;
};

} // namespace psim

#endif // PSIM_MEM_MEM_CTRL_HH
