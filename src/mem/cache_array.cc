#include "mem/cache_array.hh"

#include "sim/logging.hh"

namespace psim
{

const char *
toString(CohState s)
{
    switch (s) {
      case CohState::Invalid:
        return "I";
      case CohState::Shared:
        return "S";
      case CohState::Modified:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(unsigned size_bytes, unsigned assoc,
                       unsigned block_size)
    : _infinite(size_bytes == 0),
      _assoc(assoc),
      _blockSize(block_size),
      _numSets(0)
{
    psim_assert(isPowerOf2(block_size), "block size must be a power of 2");
    if (!_infinite) {
        psim_assert(assoc >= 1, "associativity must be >= 1");
        unsigned blocks = size_bytes / block_size;
        psim_assert(blocks >= assoc, "cache smaller than one set");
        _numSets = blocks / assoc;
        psim_assert(isPowerOf2(_numSets),
                "number of sets (%u) must be a power of 2", _numSets);
        _frames.resize(static_cast<std::size_t>(_numSets) * _assoc);
    }
}

std::size_t
CacheArray::setIndex(Addr blk_addr) const
{
    return static_cast<std::size_t>(
            (blk_addr / _blockSize) & (_numSets - 1));
}

CacheBlk *
CacheArray::find(Addr blk_addr)
{
    if (_infinite) {
        auto it = _map.find(blk_addr);
        if (it == _map.end() || !it->second.valid())
            return nullptr;
        return &it->second;
    }
    CacheBlk *set = &_frames[setIndex(blk_addr) * _assoc];
    for (unsigned w = 0; w < _assoc; ++w) {
        if (set[w].valid() && set[w].addr == blk_addr)
            return &set[w];
    }
    return nullptr;
}

const CacheBlk *
CacheArray::find(Addr blk_addr) const
{
    return const_cast<CacheArray *>(this)->find(blk_addr);
}

CacheBlk *
CacheArray::findVictim(Addr blk_addr)
{
    if (_infinite) {
        auto [it, inserted] = _map.try_emplace(blk_addr);
        if (inserted)
            it->second.addr = blk_addr;
        return &it->second;
    }
    CacheBlk *set = &_frames[setIndex(blk_addr) * _assoc];
    CacheBlk *victim = &set[0];
    for (unsigned w = 0; w < _assoc; ++w) {
        if (!set[w].valid())
            return &set[w];
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    return victim;
}

void
CacheArray::invalidate(CacheBlk *blk)
{
    blk->state = CohState::Invalid;
    blk->prefetched = false;
}

void
CacheArray::forEach(const std::function<void(const CacheBlk &)> &fn) const
{
    if (_infinite) {
        for (const auto &[addr, blk] : _map) {
            if (blk.valid())
                fn(blk);
        }
    } else {
        for (const auto &blk : _frames) {
            if (blk.valid())
                fn(blk);
        }
    }
}

std::size_t
CacheArray::numValid() const
{
    std::size_t n = 0;
    forEach([&n](const CacheBlk &) { ++n; });
    return n;
}

} // namespace psim
