#include "mem/cache_array.hh"

#include "sim/logging.hh"

namespace psim
{

namespace
{
/// Initial infinite-mode table capacity (slots; must be a power of 2).
constexpr std::size_t kInitialTableSlots = 1024;
} // namespace

const char *
toString(CohState s)
{
    switch (s) {
      case CohState::Invalid:
        return "I";
      case CohState::Shared:
        return "S";
      case CohState::Modified:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(unsigned size_bytes, unsigned assoc,
                       unsigned block_size)
    : _infinite(size_bytes == 0),
      _assoc(assoc),
      _blockShift(log2Exact(block_size)),
      _numSets(0)
{
    psim_assert(isPowerOf2(block_size), "block size must be a power of 2");
    if (_infinite) {
        _table.resize(kInitialTableSlots);
        _tableTags.assign(kInitialTableSlots, kAddrInvalid);
        _tableShift = 64 - log2Exact(kInitialTableSlots);
        return;
    }
    psim_assert(assoc >= 1, "associativity must be >= 1");
    unsigned blocks = size_bytes / block_size;
    psim_assert(blocks >= assoc, "cache smaller than one set");
    _numSets = blocks / assoc;
    psim_assert(isPowerOf2(_numSets),
            "number of sets (%u) must be a power of 2", _numSets);
    std::size_t frames = static_cast<std::size_t>(_numSets) * _assoc;
    _frames.resize(frames);
    _tags.assign(frames, kAddrInvalid);
}

void
CacheArray::grow()
{
    // Quadruple rather than double: growth rehashes every resident
    // block, and the table never shrinks, so fewer, larger steps win.
    std::vector<CacheBlk> old = std::move(_table);
    _table.assign(old.size() * 4, CacheBlk{});
    _tableTags.assign(_table.size(), kAddrInvalid);
    _tableShift = 64 - log2Exact(_table.size());
    const std::size_t mask = _table.size() - 1;
    for (CacheBlk &blk : old) {
        if (blk.addr == kAddrInvalid)
            continue;
        std::size_t i = hashOf(blk.addr) & mask;
        while (_tableTags[i] != kAddrInvalid)
            i = (i + 1) & mask;
        _tableTags[i] = blk.addr;
        _table[i] = blk;
    }
}

void
CacheArray::forEach(const std::function<void(const CacheBlk &)> &fn) const
{
    const std::vector<CacheBlk> &store = _infinite ? _table : _frames;
    for (const CacheBlk &blk : store) {
        if (blk.valid())
            fn(blk);
    }
}

std::size_t
CacheArray::numValid() const
{
    std::size_t n = 0;
    forEach([&n](const CacheBlk &) { ++n; });
    return n;
}

} // namespace psim
