/**
 * @file
 * Second-level cache (paper Section 2).
 *
 * A write-back, lockup-free cache: the SLWB holds one entry per pending
 * transaction (demand read, prefetch, write-ownership), so the cache
 * keeps servicing requests while misses are outstanding -- the property
 * that makes non-binding prefetching possible at all.
 *
 * The prefetcher attaches here and observes exactly the read requests
 * the FLC presents to the SLC. Prefetched blocks carry the 1-bit
 * "prefetched" tag of Section 3.3; a demand hit on a tagged block clears
 * the bit, counts the prefetch useful, and asks the prefetcher for the
 * continuation. Prefetch candidates are dropped when they would cross
 * the triggering access's page, already hit in the cache, match a
 * pending transaction, or when no SLWB entry is free.
 */

#ifndef PSIM_MEM_SLC_HH
#define PSIM_MEM_SLC_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/characterizer.hh"
#include "trace/trace.hh"
#include "core/prefetcher.hh"
#include "mem/cache_array.hh"
#include "mem/write_buffer.hh"
#include "proto/message.hh"
#include "sim/audit.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace psim
{

class Machine;
class Cpu;
class Flc;
class ChromeTracer;

class Slc
{
  public:
    Slc(Machine &m, NodeId id, Flc &flc, Cpu &cpu);

    /**
     * Present the FLWB head entry. @return false when the entry needs a
     * pending-transaction (SLWB) slot and none is free; the FLWB retries.
     */
    bool tryAccept(const FlwbEntry &e);

    /** A coherence message delivered over the local bus. */
    void receive(const Message &m);

    /** Optional Table-2/3 analysis of this node's demand-miss stream. */
    void
    setCharacterizer(StrideCharacterizer *c)
    {
        _characterizer = c;
    }

    /** Optional sink receiving every request presented to this SLC. */
    void
    setTraceSink(std::function<void(const TraceRecord &)> sink)
    {
        _traceSink = std::move(sink);
    }

    /** Attach the chrome://tracing exporter (read-only observation). */
    void setChromeTracer(ChromeTracer *t) { _chrome = t; }

    /** Register this cache's statistics into @p g. */
    void registerStats(stats::Group &g);

    /** Count still-tagged blocks as useless at end of simulation. */
    void finalizeStats();

    Prefetcher &prefetcher() { return *_prefetcher; }

    /** Resident state of a block (tests / invariant checks). */
    CohState
    stateOf(Addr blk_addr) const
    {
        const CacheBlk *b = _array.find(blk_addr);
        return b ? b->state : CohState::Invalid;
    }

    bool hasPendingTransaction(Addr blk_addr) const;
    std::size_t pendingTransactions() const { return _mshrs.size(); }

    /**
     * Pending transactions occupying SLWB data-buffer slots. Write
     * entries issued as upgrades await only an ownership ack and buffer
     * no data, so they do not consume a slot. Public so the interval
     * sampler can probe buffer occupancy over time. Maintained
     * incrementally -- this is probed on every admission and every
     * prefetch candidate, and the old scan over the MSHR map was one of
     * the top fig6 hot spots.
     */
    std::size_t slwbOccupancy() const { return _slwbOcc; }

    const CacheArray &array() const { return _array; }

    // ---- statistics ----

    stats::Scalar demandReads;        ///< read requests presented by FLC
    stats::Scalar demandReadMisses;   ///< the paper's "read misses"
    stats::Scalar missesCold;
    stats::Scalar missesCoherence;
    stats::Scalar missesReplacement;
    stats::Scalar writeRequests;
    stats::Scalar writeMisses;        ///< stores needing ReadEx
    stats::Scalar upgrades;           ///< stores needing S->M upgrade
    stats::Scalar writebacks;
    stats::Scalar invalidationsRecv;

    stats::Scalar pfIssued;           ///< prefetch requests sent
    stats::Scalar pfUsefulTagged;     ///< demand hit on a tagged block
    stats::Scalar pfUsefulLate;       ///< demand merged with a pending pf
    stats::Scalar pfWriteHitTagged;   ///< store hit on a tagged block
    stats::Scalar pfUselessInvalidated;
    stats::Scalar pfUselessReplaced;
    stats::Scalar pfAgedUnused;       ///< aged out of the ring untouched
    stats::Scalar pfUselessUnused;    ///< still tagged at end of run
    stats::Scalar pfDropInCache;
    stats::Scalar pfDropPending;
    stats::Scalar pfDropPageCross;
    stats::Scalar pfDropNoSlot;

    /** Useful prefetches (paper's prefetch-efficiency numerator). */
    double usefulPrefetches() const;
    /** Prefetch efficiency: useful / issued (NaN when none issued). */
    double prefetchEfficiency() const;

  private:
    struct Mshr
    {
        enum class Kind : std::uint8_t { Read, Prefetch, Write };

        Kind kind = Kind::Read;
        Addr blkAddr = 0;
        Pc pc = 0;
        Addr demandAddr = 0;     ///< byte address the processor wanted
        bool demandWaiting = false;
        bool upgrade = false;    ///< Write entry issued as UpgradeReq
        /**
         * An invalidation arrived while this transaction was in
         * flight. Our InvAck may already have let a remote writer
         * proceed, so the eventual fill's functional content is not
         * coherence-stable; content-directed schemes must not read it
         * (the data is stale for them anyway).
         */
        bool invFlight = false;
        unsigned pendingStores = 0;
        unsigned deferredStores = 0; ///< stores arriving during a read
    };

    /**
     * Can a new transaction claim an SLWB slot? The reserve rule keeps
     * the last free slot for demand accesses: a demand allocation needs
     * one free slot, a prefetch allocation must leave one behind.
     */
    bool slwbHasRoom(bool demand) const;

    Mshr *findMshr(Addr blk_addr);

    /** FLWB-side processing after the tag-array access completes. */
    void processRead(Addr addr, Pc pc);
    void processWrite(Addr addr, Pc pc);

    void classifyMiss(Addr blk_addr);
    void maybePrefetch(Addr trigger_addr, Pc pc,
                       const std::vector<Addr> &candidates);
    void sendToHome(MsgType t, Addr blk_addr, Pc pc, bool prefetch);
    void handleFill(const Message &m, bool exclusive);
    void completeStores(Mshr &e);
    /** Make room for a fill; handles writeback of a Modified victim. */
    void makeRoom(Addr blk_addr);
    void invalidateBlock(CacheBlk *blk, bool replacement);

    Machine &_m;
    /** This node's event queue (per-shard in sharded mode). */
    EventQueue &_eq;
    NodeId _id;
    Flc &_flc;
    Cpu &_cpu;
    std::function<void(const TraceRecord &)> _traceSink;
    ChromeTracer *_chrome = nullptr; ///< null when chrome tracing is off
    CacheArray _array;
    std::unique_ptr<Prefetcher> _prefetcher;
    StrideCharacterizer *_characterizer = nullptr;
    audit::NodeAudit *_audit = nullptr; ///< null when auditing is off

    /**
     * Report an outcome for one prefetched block exactly once: true the
     * first time a demand access consumes it, false the first time it
     * is invalidated, replaced, or ages out of the recent-prefetch ring
     * still untouched (bounded-delay feedback for adaptive schemes).
     */
    void reportOutcome(CacheBlk *blk, bool useful);

    /** Age the oldest tracked prefetches (called on each new issue). */
    void agePrefetches();

    std::size_t _slwbCap;
    /** Slot-occupying MSHRs (every kind except Write-as-upgrade). */
    std::size_t _slwbOcc = 0;
    std::unordered_map<Addr, Mshr> _mshrs;
    std::unordered_set<Addr> _wbPending; ///< writebacks awaiting ack
    std::deque<Addr> _recentPrefetches;  ///< issue-order ring for aging

    /** Tag-array port: serializes FLWB-side and fill accesses. */
    Resource _tagPort;

    /** Miss classification history: why a block last left the cache. */
    enum class Gone : std::uint8_t { Invalidated, Replaced };
    std::unordered_map<Addr, Gone> _history;

    std::vector<Addr> _candidateBuf; ///< scratch, avoids allocation

    /**
     * Does the attached scheme want the block-content view? Cached at
     * construction; when false the content path costs nothing and the
     * observation stream is byte-identical to earlier releases.
     */
    bool _wantContent = false;
    std::vector<std::uint8_t> _contentBuf; ///< scratch, one block

#ifdef PSIM_TEST_HOOKS
    /** Fault-hook opportunity counter (TestHooks::allowPageCrossPeriod). */
    std::uint64_t _hookCandidates = 0;
#endif
};

} // namespace psim

#endif // PSIM_MEM_SLC_HH
