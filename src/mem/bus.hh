/**
 * @file
 * Local split-transaction bus (paper: 256-bit wide, 33 MHz).
 *
 * Every message crossing between a node's SLC, memory controller and
 * network interface claims the bus for an arbitration cycle plus one
 * transfer phase. The bus is 256 bits wide, so a 32-byte block moves in
 * a single data phase; requests and replies therefore occupy the same
 * number of cycles and the interesting contention effect is queueing.
 */

#ifndef PSIM_MEM_BUS_HH
#define PSIM_MEM_BUS_HH

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace psim
{

class Bus
{
  public:
    Bus(EventQueue &eq, const MachineConfig &cfg) : _eq(eq), _cfg(cfg) {}

    /**
     * Move one message across the bus; @p done runs when the transfer
     * completes. @p data selects a data-phase transaction (for traffic
     * accounting).
     */
    void
    transfer(bool data, EventQueue::Callback done)
    {
        // Arbitration is pipelined with the previous transfer, so the
        // bus is occupied for the transfer phase only, but each message
        // still experiences arbitration + transfer latency.
        Tick occ = _cfg.busPhaseCycles * _cfg.busCycle;
        Tick arb = _cfg.busCycle;
        Tick start = res.claim(_eq.now(), occ);
        ++transactions;
        if (data)
            ++dataTransactions;
        _eq.schedule(start + arb + occ, std::move(done));
    }

    Resource res;
    stats::Scalar transactions;
    stats::Scalar dataTransactions;

    /** Register this bus's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("transactions", &transactions, "bus transactions");
        g.addScalar("dataTransactions", &dataTransactions,
                "data-carrying transactions");
        g.addScalar("busyTicks", &res.busyTicks,
                "ticks the bus was occupied");
        g.addScalar("waitTicks", &res.waitTicks,
                "ticks requests queued for the bus");
    }

  private:
    EventQueue &_eq;
    const MachineConfig &_cfg;
};

} // namespace psim

#endif // PSIM_MEM_BUS_HH
