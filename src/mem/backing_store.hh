/**
 * @file
 * Functional backing store for the simulated shared address space.
 *
 * psim is a program-driven simulator: the workloads really compute, so
 * loads must return real values. The store is sparse (per-page chunks)
 * and purely functional -- timing lives entirely in the architectural
 * models. Typed accessors require naturally aligned accesses, which is
 * what the workloads (and SPARC, the paper's ISA) generate.
 *
 * The page table is a fixed-size bucket array of lock-free singly
 * linked chains so the sharded engine's worker threads can fault pages
 * in concurrently: lookups are acquire-loads down a chain, inserts a
 * single CAS on the bucket head (the loser of a same-page race frees
 * its node and adopts the winner's page). Nodes are never removed, so
 * a page pointer, once obtained, stays valid for the store's lifetime.
 * Byte ranges within a page are only written by the node that owns the
 * simulated address at that instant -- data-race freedom of the
 * simulated program, which the memory model already requires, is what
 * makes the host-level accesses race-free too.
 */

#ifndef PSIM_MEM_BACKING_STORE_HH
#define PSIM_MEM_BACKING_STORE_HH

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <type_traits>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace psim
{

class BackingStore
{
  public:
    explicit BackingStore(unsigned page_size = 4096)
        : _pageSize(page_size)
    {
        psim_assert(isPowerOf2(page_size), "page size must be power of 2");
        for (auto &b : _buckets)
            b.store(nullptr, std::memory_order_relaxed);
    }

    ~BackingStore()
    {
        for (auto &b : _buckets) {
            PageNode *n = b.load(std::memory_order_relaxed);
            while (n) {
                PageNode *next = n->next;
                delete n;
                n = next;
            }
        }
    }

    BackingStore(const BackingStore &) = delete;
    BackingStore &operator=(const BackingStore &) = delete;

    /** Read @p len bytes at @p addr (must not cross a page). */
    void
    read(Addr addr, void *dst, unsigned len) const
    {
        const std::uint8_t *page = findPage(addr);
        if (!page) {
            std::memset(dst, 0, len);
            return;
        }
        std::memcpy(dst, page + offset(addr), len);
    }

    /** Write @p len bytes at @p addr (must not cross a page). */
    void
    write(Addr addr, const void *src, unsigned len)
    {
        std::memcpy(ensurePage(addr) + offset(addr), src, len);
    }

    /** Typed aligned load. */
    template <typename T>
    T
    load(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        psim_assert(addr % alignof(T) == 0, "misaligned load of %zu at %llx",
                    sizeof(T), (unsigned long long)addr);
        checkSamePage(addr, sizeof(T));
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed aligned store. */
    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        psim_assert(addr % alignof(T) == 0, "misaligned store of %zu at %llx",
                    sizeof(T), (unsigned long long)addr);
        checkSamePage(addr, sizeof(T));
        write(addr, &v, sizeof(T));
    }

    unsigned pageSize() const { return _pageSize; }

    /**
     * Visit every materialized page as (base address, page bytes).
     * Unmaterialized pages read as zero; a visitor that treats absence
     * as zeros (as the differential oracle does) sees the whole image.
     * Iteration order is unspecified. Not safe concurrently with
     * writes; call when the machine is quiescent.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &b : _buckets) {
            for (const PageNode *n = b.load(std::memory_order_acquire);
                 n; n = n->next)
                fn(n->base, n->data.get(), _pageSize);
        }
    }

  private:
    struct PageNode
    {
        Addr base;
        PageNode *next;
        std::unique_ptr<std::uint8_t[]> data;
    };

    static constexpr std::size_t kBuckets = 1024;

    void
    checkSamePage(Addr addr, unsigned len) const
    {
        psim_assert(alignDown(addr, _pageSize) ==
                    alignDown(addr + len - 1, _pageSize),
                    "access crosses a page boundary");
    }

    std::size_t offset(Addr addr) const { return addr & (_pageSize - 1); }

    std::size_t
    bucketOf(Addr base) const
    {
        std::uint64_t x = base / _pageSize;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x) & (kBuckets - 1);
    }

    const std::uint8_t *
    findPage(Addr addr) const
    {
        Addr base = alignDown(addr, _pageSize);
        for (const PageNode *n = _buckets[bucketOf(base)].load(
                     std::memory_order_acquire);
             n; n = n->next) {
            if (n->base == base)
                return n->data.get();
        }
        return nullptr;
    }

    std::uint8_t *
    ensurePage(Addr addr)
    {
        Addr base = alignDown(addr, _pageSize);
        std::atomic<PageNode *> &head = _buckets[bucketOf(base)];
        PageNode *top = head.load(std::memory_order_acquire);
        for (PageNode *n = top; n; n = n->next) {
            if (n->base == base)
                return n->data.get();
        }
        // Allocate a zeroed page and publish it with a CAS on the
        // bucket head; whoever loses the race rescans the fresh
        // prefix for a concurrently inserted node for the same page.
        auto fresh = std::make_unique<PageNode>();
        fresh->base = base;
        fresh->data = std::make_unique<std::uint8_t[]>(_pageSize);
        std::memset(fresh->data.get(), 0, _pageSize);
        fresh->next = top;
        for (;;) {
            if (head.compare_exchange_weak(top, fresh.get(),
                                           std::memory_order_release,
                                           std::memory_order_acquire))
                return fresh.release()->data.get();
            for (PageNode *n = top; n && n != fresh->next; n = n->next) {
                if (n->base == base)
                    return n->data.get(); // lost a same-page race
            }
            fresh->next = top;
        }
    }

    unsigned _pageSize;
    std::array<std::atomic<PageNode *>, kBuckets> _buckets;
};

} // namespace psim

#endif // PSIM_MEM_BACKING_STORE_HH
