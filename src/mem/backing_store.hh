/**
 * @file
 * Functional backing store for the simulated shared address space.
 *
 * psim is a program-driven simulator: the workloads really compute, so
 * loads must return real values. The store is sparse (per-page chunks)
 * and purely functional -- timing lives entirely in the architectural
 * models. Typed accessors require naturally aligned accesses, which is
 * what the workloads (and SPARC, the paper's ISA) generate.
 */

#ifndef PSIM_MEM_BACKING_STORE_HH
#define PSIM_MEM_BACKING_STORE_HH

#include <cstring>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace psim
{

class BackingStore
{
  public:
    explicit BackingStore(unsigned page_size = 4096)
        : _pageSize(page_size)
    {
        psim_assert(isPowerOf2(page_size), "page size must be power of 2");
    }

    /** Read @p len bytes at @p addr (must not cross a page). */
    void
    read(Addr addr, void *dst, unsigned len) const
    {
        const std::uint8_t *page = findPage(addr);
        if (!page) {
            std::memset(dst, 0, len);
            return;
        }
        std::memcpy(dst, page + offset(addr), len);
    }

    /** Write @p len bytes at @p addr (must not cross a page). */
    void
    write(Addr addr, const void *src, unsigned len)
    {
        std::memcpy(ensurePage(addr) + offset(addr), src, len);
    }

    /** Typed aligned load. */
    template <typename T>
    T
    load(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        psim_assert(addr % alignof(T) == 0, "misaligned load of %zu at %llx",
                    sizeof(T), (unsigned long long)addr);
        checkSamePage(addr, sizeof(T));
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed aligned store. */
    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        psim_assert(addr % alignof(T) == 0, "misaligned store of %zu at %llx",
                    sizeof(T), (unsigned long long)addr);
        checkSamePage(addr, sizeof(T));
        write(addr, &v, sizeof(T));
    }

    unsigned pageSize() const { return _pageSize; }

    /**
     * Visit every materialized page as (base address, page bytes).
     * Unmaterialized pages read as zero; a visitor that treats absence
     * as zeros (as the differential oracle does) sees the whole image.
     * Iteration order is unspecified.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &[base, page] : _pages)
            fn(base, page.data(), _pageSize);
    }

  private:
    void
    checkSamePage(Addr addr, unsigned len) const
    {
        psim_assert(alignDown(addr, _pageSize) ==
                    alignDown(addr + len - 1, _pageSize),
                    "access crosses a page boundary");
    }

    std::size_t offset(Addr addr) const { return addr & (_pageSize - 1); }

    const std::uint8_t *
    findPage(Addr addr) const
    {
        auto it = _pages.find(alignDown(addr, _pageSize));
        return it == _pages.end() ? nullptr : it->second.data();
    }

    std::uint8_t *
    ensurePage(Addr addr)
    {
        auto &page = _pages[alignDown(addr, _pageSize)];
        if (page.empty())
            page.resize(_pageSize, 0);
        return page.data();
    }

    unsigned _pageSize;
    std::unordered_map<Addr, std::vector<std::uint8_t>> _pages;
};

} // namespace psim

#endif // PSIM_MEM_BACKING_STORE_HH
