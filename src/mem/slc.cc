#include "mem/slc.hh"

#include <limits>

#include "check/access_log.hh"
#include "mem/flc.hh"
#include "sim/logging.hh"
#include "sys/cpu.hh"
#include "sys/machine.hh"
#include "trace/chrome_trace.hh"

namespace psim
{

Slc::Slc(Machine &m, NodeId id, Flc &flc, Cpu &cpu)
    : _m(m),
      _eq(m.eqOf(id)),
      _id(id),
      _flc(flc),
      _cpu(cpu),
      _array(m.cfg().slcSize, m.cfg().slcAssoc, m.cfg().blockSize),
      _prefetcher(Prefetcher::create(m.cfg())),
      _slwbCap(m.cfg().slwbEntries)
{
    if (audit::MachineAudit *a = m.auditor())
        _audit = &a->node(id);
    _wantContent = _prefetcher->wantsBlockContent();
    if (_wantContent)
        _contentBuf.resize(m.cfg().blockSize);
}

Slc::Mshr *
Slc::findMshr(Addr blk_addr)
{
    auto it = _mshrs.find(blk_addr);
    return it == _mshrs.end() ? nullptr : &it->second;
}

bool
Slc::slwbHasRoom(bool demand) const
{
    std::size_t occ = slwbOccupancy();
    return demand ? occ < _slwbCap : occ + 1 < _slwbCap;
}

bool
Slc::hasPendingTransaction(Addr blk_addr) const
{
    return _mshrs.count(blk_addr) != 0;
}

void
Slc::registerStats(stats::Group &g)
{
    g.addScalar("demandReads", &demandReads,
            "read requests presented by the FLC");
    g.addScalar("demandReadMisses", &demandReadMisses,
            "demand read misses");
    g.addScalar("missesCold", &missesCold, "cold misses");
    g.addScalar("missesCoherence", &missesCoherence, "coherence misses");
    g.addScalar("missesReplacement", &missesReplacement,
            "replacement misses");
    g.addScalar("writeRequests", &writeRequests,
            "write requests presented by the FLWB");
    g.addScalar("writeMisses", &writeMisses,
            "stores needing read-exclusive");
    g.addScalar("upgrades", &upgrades, "stores needing S->M upgrade");
    g.addScalar("writebacks", &writebacks, "dirty evictions");
    g.addScalar("invalidationsRecv", &invalidationsRecv,
            "invalidations received");
    g.addScalar("pfIssued", &pfIssued, "prefetches issued");
    g.addScalar("pfUsefulTagged", &pfUsefulTagged,
            "demand hits on tagged blocks");
    g.addScalar("pfUsefulLate", &pfUsefulLate,
            "demand reads merged with in-flight prefetches");
    g.addScalar("pfWriteHitTagged", &pfWriteHitTagged,
            "store hits on tagged blocks");
    g.addScalar("pfUselessInvalidated", &pfUselessInvalidated,
            "tagged blocks lost to invalidations");
    g.addScalar("pfUselessReplaced", &pfUselessReplaced,
            "tagged blocks lost to replacement");
    g.addScalar("pfAgedUnused", &pfAgedUnused,
            "tagged blocks aged out of the feedback ring unused");
    g.addScalar("pfUselessUnused", &pfUselessUnused,
            "tagged blocks never referenced");
    g.addScalar("pfDropInCache", &pfDropInCache,
            "candidates already resident");
    g.addScalar("pfDropPending", &pfDropPending,
            "candidates matching a pending transaction");
    g.addScalar("pfDropPageCross", &pfDropPageCross,
            "candidates crossing the trigger's page");
    g.addScalar("pfDropNoSlot", &pfDropNoSlot,
            "candidates dropped for lack of an SLWB slot");
}

double
Slc::usefulPrefetches() const
{
    return pfUsefulTagged.value() + pfUsefulLate.value();
}

double
Slc::prefetchEfficiency() const
{
    // No prefetches means no efficiency to report, not a perfect one;
    // renderers print "--" for the NaN.
    if (pfIssued.value() == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return usefulPrefetches() / pfIssued.value();
}

bool
Slc::tryAccept(const FlwbEntry &e)
{
    const Tick now = _eq.now();

    // The SLC tag array services one processor-side access per SRAM
    // cycle; the FLWB must hold its head while an access is in flight.
    if (now < _tagPort.freeAt())
        return false;

    const MachineConfig &cfg = _m.cfg();

    switch (e.kind) {
      case FlwbEntry::Kind::Lock:
        sendToHome(MsgType::LockReq, e.addr, 0, false);
        return true;
      case FlwbEntry::Kind::Unlock:
        sendToHome(MsgType::LockRel, e.addr, 0, false);
        return true;
      case FlwbEntry::Kind::BarrierArrive: {
        Message m;
        m.type = MsgType::BarrierArrive;
        m.src = _id;
        m.dst = cfg.homeOf(e.addr);
        m.requester = _id;
        m.addr = e.addr;
        m.aux = e.aux;
        _m.send(m);
        return true;
      }
      case FlwbEntry::Kind::ReadMiss:
      case FlwbEntry::Kind::Write: {
        // Admission: the access needs a free SLWB slot unless it hits in
        // the cache or merges with a pending transaction for its block.
        Addr blk = cfg.blockAddr(e.addr);
        if (!_array.find(blk) && !findMshr(blk) && !slwbHasRoom(true))
            return false;
        Tick start = _tagPort.claim(now, cfg.slcAccessLat);
        Addr addr = e.addr;
        Pc pc = e.pc;
        bool is_read = e.kind == FlwbEntry::Kind::ReadMiss;
        _eq.schedule(start + cfg.slcAccessLat, [this, addr, pc,
                                                    is_read] {
            if (is_read)
                processRead(addr, pc);
            else
                processWrite(addr, pc);
        });
        return true;
      }
    }
    psim_panic("bad FLWB entry kind");
}

void
Slc::classifyMiss(Addr blk_addr)
{
    auto it = _history.find(blk_addr);
    if (it == _history.end())
        ++missesCold;
    else if (it->second == Gone::Invalidated)
        ++missesCoherence;
    else
        ++missesReplacement;
}

void
Slc::processRead(Addr addr, Pc pc)
{
    const MachineConfig &cfg = _m.cfg();
    const Tick now = _eq.now();
    Addr blk_addr = cfg.blockAddr(addr);
    ++demandReads;

    CacheBlk *blk = _array.find(blk_addr);
    bool hit = blk != nullptr;
    bool tagged = false;

    if (_traceSink) {
        TraceRecord rec;
        rec.tick = now;
        rec.pc = pc;
        rec.addr = addr;
        rec.node = _id;
        rec.kind = TraceRecord::Kind::Read;
        rec.hit = hit;
        _traceSink(rec);
    }

    if (hit) {
        if (blk->prefetched) {
            // Demand hit on a prefetched block: the prefetch was useful.
            // Clear the tag and let the prefetcher run ahead.
            blk->prefetched = false;
            tagged = true;
            ++pfUsefulTagged;
            reportOutcome(blk, true);
            if (_audit) {
                _audit->onFate(blk_addr, audit::Fate::UsefulTagged,
                        audit::Event::TaggedReadHit, now);
            }
            if (_chrome) {
                _chrome->prefetchFate(_id, blk_addr,
                        audit::Fate::UsefulTagged, now);
            }
        }
        _array.touch(blk, now);
        _eq.scheduleIn(cfg.slcToCpuLat,
                [this, addr] { _cpu.readComplete(addr); });
    } else {
        if (Mshr *e = findMshr(blk_addr)) {
            // The block is already on its way; the read rides the
            // pending transaction and issues no request of its own, so
            // it does not count as a read miss (its residual wait shows
            // up in the read stall time instead).
            switch (e->kind) {
              case Mshr::Kind::Prefetch:
                ++pfUsefulLate;
                _prefetcher->notePrefetchOutcome(true, true, blk_addr);
                e->demandWaiting = true;
                e->demandAddr = addr;
                if (_audit) {
                    _audit->onFate(blk_addr, audit::Fate::UsefulLate,
                            audit::Event::DemandMerge, now);
                }
                if (_chrome) {
                    _chrome->prefetchFate(_id, blk_addr,
                            audit::Fate::UsefulLate, now);
                }
                break;
              case Mshr::Kind::Write:
                e->demandWaiting = true;
                e->demandAddr = addr;
                break;
              case Mshr::Kind::Read:
                psim_panic("two demand reads in flight on node %u", _id);
            }
        } else {
            ++demandReadMisses;
            if (_chrome)
                _chrome->demandMissStart(_id, blk_addr, now);
            if (_characterizer)
                _characterizer->observeMiss(pc, addr);
            classifyMiss(blk_addr);
            Mshr fresh;
            fresh.kind = Mshr::Kind::Read;
            fresh.blkAddr = blk_addr;
            fresh.pc = pc;
            fresh.demandAddr = addr;
            fresh.demandWaiting = true;
            _mshrs.emplace(blk_addr, fresh);
            ++_slwbOcc;
            if (_audit) {
                _audit->checkSlwb(slwbOccupancy(), _slwbCap, false,
                        "demand read allocation");
            }
            sendToHome(MsgType::ReadReq, blk_addr, pc, false);
        }
    }

    // Train the prefetcher on every read presented to the SLC and act
    // on its candidates.
    _candidateBuf.clear();
    ReadObservation obs;
    obs.pc = pc;
    obs.addr = addr;
    obs.hit = hit;
    obs.taggedHit = tagged;
    if (_wantContent && hit) {
        // A valid copy pins the block's coherence epoch: no writer can
        // be granted ownership before our InvAck, so reading the
        // functional words here is race-free and deterministic even
        // under the sharded engine.
        _m.store().read(blk_addr, _contentBuf.data(),
                        cfg.blockSize);
        obs.content = _contentBuf.data();
        obs.contentLen = cfg.blockSize;
    }
    _prefetcher->observeRead(obs, _candidateBuf);
    if (!_candidateBuf.empty())
        maybePrefetch(addr, pc, _candidateBuf);
}

void
Slc::processWrite(Addr addr, Pc pc)
{
    const MachineConfig &cfg = _m.cfg();
    const Tick now = _eq.now();
    Addr blk_addr = cfg.blockAddr(addr);
    ++writeRequests;

    CacheBlk *blk = _array.find(blk_addr);
    if (_traceSink) {
        TraceRecord rec;
        rec.tick = now;
        rec.pc = pc;
        rec.addr = addr;
        rec.node = _id;
        rec.kind = TraceRecord::Kind::Write;
        rec.hit = blk != nullptr;
        _traceSink(rec);
    }
    if (blk) {
        if (blk->prefetched) {
            blk->prefetched = false;
            ++pfWriteHitTagged;
            reportOutcome(blk, true);
            if (_audit) {
                _audit->onFate(blk_addr, audit::Fate::WriteHit,
                        audit::Event::TaggedWriteHit, now);
            }
            if (_chrome) {
                _chrome->prefetchFate(_id, blk_addr,
                        audit::Fate::WriteHit, now);
            }
        }
        _array.touch(blk, now);
        if (blk->state == CohState::Modified) {
            blk->written = true;
            _cpu.storePerformed();
            return;
        }
        // Shared: needs ownership.
        psim_assert(blk->state == CohState::Shared, "bad state on write");
        if (Mshr *e = findMshr(blk_addr)) {
            psim_assert(e->kind == Mshr::Kind::Write,
                    "resident block with non-write transaction");
            ++e->pendingStores;
            return;
        }
        ++upgrades;
        Mshr e;
        e.kind = Mshr::Kind::Write;
        e.blkAddr = blk_addr;
        e.pc = pc;
        e.upgrade = true;
        e.pendingStores = 1;
        _mshrs.emplace(blk_addr, e);
        sendToHome(MsgType::UpgradeReq, blk_addr, pc, false);
        return;
    }

    if (Mshr *e = findMshr(blk_addr)) {
        if (e->kind == Mshr::Kind::Write) {
            ++e->pendingStores;
        } else {
            // A read or prefetch is in flight; the store completes after
            // the fill by upgrading the block.
            ++e->deferredStores;
        }
        return;
    }

    ++writeMisses;
    Mshr e;
    e.kind = Mshr::Kind::Write;
    e.blkAddr = blk_addr;
    e.pc = pc;
    e.upgrade = false;
    e.pendingStores = 1;
    _mshrs.emplace(blk_addr, e);
    ++_slwbOcc;
    if (_audit) {
        _audit->checkSlwb(slwbOccupancy(), _slwbCap, false,
                "write-miss allocation");
    }
    sendToHome(MsgType::ReadExReq, blk_addr, pc, false);
}

void
Slc::maybePrefetch(Addr trigger_addr, Pc pc,
                   const std::vector<Addr> &candidates)
{
    const MachineConfig &cfg = _m.cfg();
    Addr trigger_blk = cfg.blockAddr(trigger_addr);
    Addr trigger_page = cfg.pageAddr(trigger_addr);

    for (Addr cand : candidates) {
        Addr blk = cfg.blockAddr(cand);
        if (blk == trigger_blk)
            continue;
        bool skip_page_filter = false;
#ifdef PSIM_TEST_HOOKS
        // Fault injection for the oracle self-test: let the candidate
        // bypass the page filter so check::Oracle must flag it.
        if (cfg.testHooks.allowPageCrossPeriod &&
            ++_hookCandidates % cfg.testHooks.allowPageCrossPeriod == 0)
            skip_page_filter = true;
#endif
        if (!skip_page_filter && cfg.pageAddr(cand) != trigger_page) {
            // Never prefetch across a page boundary (Section 2).
            ++pfDropPageCross;
            continue;
        }
        if (_array.find(blk)) {
            ++pfDropInCache;
            continue;
        }
        if (findMshr(blk)) {
            ++pfDropPending;
            continue;
        }
        if (!slwbHasRoom(false)) {
            // The reserve rule: keep the last free slot for demand.
            ++pfDropNoSlot;
            continue;
        }
        Mshr e;
        e.kind = Mshr::Kind::Prefetch;
        e.blkAddr = blk;
        e.pc = pc;
        _mshrs.emplace(blk, e);
        ++_slwbOcc;
        ++pfIssued;
        if (_m.commitSink()) {
            check::PrefetchIssueRecord rec;
            rec.tick = _eq.now();
            rec.node = _id;
            rec.trigger = trigger_addr;
            rec.block = blk;
            _m.commitPrefetchIssue(rec);
        }
        if (_chrome)
            _chrome->prefetchIssue(_id, blk, _eq.now());
        if (_audit) {
            _audit->onIssue(blk, pc, _eq.now());
            _audit->checkSlwb(slwbOccupancy(), _slwbCap, true,
                    "prefetch allocation");
        }
        // The aging ring exists to feed outcome information back to
        // schemes that consume it; maintaining it for the others would
        // only change their accounting, never their behaviour.
        if (_prefetcher->wantsOutcomeFeedback())
            _recentPrefetches.push_back(blk);
        sendToHome(MsgType::ReadReq, blk, pc, true);
    }
    agePrefetches();
}

void
Slc::reportOutcome(CacheBlk *blk, bool useful)
{
    if (blk->outcomeReported)
        return;
    blk->outcomeReported = true;
    _prefetcher->notePrefetchOutcome(useful, false, blk->addr);
}

void
Slc::agePrefetches()
{
    // Bounded-delay negative feedback: once a prefetched block is 64
    // issues old and still untouched, it is counted useless and the
    // prefetcher told so adaptive schemes can throttle. Clearing the
    // tag seals the verdict -- a later demand access is an ordinary
    // hit, not a second (contradictory) outcome for the same prefetch.
    constexpr std::size_t kRingCap = 64;
    while (_recentPrefetches.size() > kRingCap) {
        Addr a = _recentPrefetches.front();
        _recentPrefetches.pop_front();
        CacheBlk *blk = _array.find(a);
        if (blk && blk->prefetched) {
            blk->prefetched = false;
            ++pfAgedUnused;
            reportOutcome(blk, false);
            if (_audit) {
                _audit->onFate(a, audit::Fate::AgedUnused,
                        audit::Event::AgedOut, _eq.now());
            }
            if (_chrome) {
                _chrome->prefetchFate(_id, a, audit::Fate::AgedUnused,
                        _eq.now());
            }
        }
    }
}

void
Slc::sendToHome(MsgType t, Addr blk_addr, Pc pc, bool prefetch)
{
    Message m;
    m.type = t;
    m.src = _id;
    m.dst = _m.cfg().homeOf(blk_addr);
    m.requester = _id;
    m.addr = blk_addr;
    m.pc = pc;
    m.prefetch = prefetch;
    _m.send(m);
}

void
Slc::invalidateBlock(CacheBlk *blk, bool replacement)
{
    if (blk->prefetched) {
        if (replacement)
            ++pfUselessReplaced;
        else
            ++pfUselessInvalidated;
        reportOutcome(blk, false);
        if (_audit) {
            _audit->onFate(blk->addr,
                    replacement ? audit::Fate::Replaced
                                : audit::Fate::Invalidated,
                    replacement ? audit::Event::Replaced
                                : audit::Event::Invalidated,
                    _eq.now());
        }
        if (_chrome) {
            _chrome->prefetchFate(_id, blk->addr,
                    replacement ? audit::Fate::Replaced
                                : audit::Fate::Invalidated,
                    _eq.now());
        }
    }
    _history[blk->addr] = replacement ? Gone::Replaced : Gone::Invalidated;
    _flc.invalidate(blk->addr);
    _array.invalidate(blk);
}

void
Slc::makeRoom(Addr blk_addr)
{
    CacheBlk *frame = _array.findVictim(blk_addr);
    if (frame->valid() && frame->addr != blk_addr) {
        if (frame->state == CohState::Modified) {
            ++writebacks;
            _wbPending.insert(frame->addr);
            sendToHome(MsgType::WritebackReq, frame->addr, 0, false);
        }
        invalidateBlock(frame, true);
    }
}

void
Slc::completeStores(Mshr &e)
{
    for (unsigned i = 0; i < e.pendingStores; ++i)
        _cpu.storePerformed();
    e.pendingStores = 0;
}

void
Slc::handleFill(const Message &m, bool exclusive)
{
    const MachineConfig &cfg = _m.cfg();
    const Tick now = _eq.now();
    Addr blk_addr = m.addr;

    Mshr *e = findMshr(blk_addr);
    if (!e) {
        if (_audit)
            _audit->fail(blk_addr, "unsolicited fill");
        psim_panic("node %u: unsolicited fill for %llx", _id,
                (unsigned long long)blk_addr);
    }
    if (_array.find(blk_addr)) {
        if (_audit)
            _audit->fail(blk_addr, "fill for a resident block");
        psim_panic("node %u: fill for resident block %llx", _id,
                (unsigned long long)blk_addr);
    }

    makeRoom(blk_addr);
    CacheBlk *frame = _array.findVictim(blk_addr);
    _array.fill(frame, blk_addr, exclusive ? CohState::Modified
                                           : CohState::Shared, now);
    _history.erase(blk_addr);
    if (_audit)
        _audit->onEvent(blk_addr, audit::Event::Fill, now);
    if (_chrome) {
        if (e->kind == Mshr::Kind::Read)
            _chrome->demandMissEnd(_id, blk_addr, now);
        else if (e->kind == Mshr::Kind::Prefetch)
            _chrome->prefetchFill(_id, blk_addr, now);
    }

    bool is_pure_prefetch =
            e->kind == Mshr::Kind::Prefetch && !e->demandWaiting;
    if (is_pure_prefetch) {
        if (_audit)
            _audit->checkTaggedFill(blk_addr);
        frame->prefetched = true;
    }

    // Content-directed schemes see every read/prefetch fill as a
    // synthesized observation (the fill data is the whole point).
    // Captured before the branches below erase the MSHR; skipped when
    // an invalidation passed the transaction in flight -- our InvAck
    // may already have admitted a remote writer, so the words are not
    // coherence-stable (see Mshr::invFlight).
    bool fill_observe = _wantContent && !e->invFlight &&
                        e->kind != Mshr::Kind::Write;
    Pc fill_pc = e->pc;
    Addr fill_addr = e->demandWaiting ? e->demandAddr : blk_addr;

    if (e->demandWaiting) {
        Addr daddr = e->demandAddr;
        _eq.scheduleIn(cfg.slcToCpuLat,
                [this, daddr] { _cpu.readComplete(daddr); });
    }

    if (e->kind == Mshr::Kind::Write) {
        psim_assert(exclusive, "write transaction filled shared");
        frame->written = true;
        completeStores(*e);
        // An upgrade serviced as read-exclusive never held a data slot.
        if (!e->upgrade)
            --_slwbOcc;
        _mshrs.erase(blk_addr);
        return;
    }

    if (e->deferredStores > 0) {
        // Stores arrived while the read/prefetch was in flight; they
        // retire by upgrading the freshly filled block.
        if (exclusive) {
            if (is_pure_prefetch) {
                // Ownership arrived with the prefetched data (e.g. a
                // migratory grant), so the deferred store consumes the
                // prefetch right here -- same accounting as the
                // shared-fill path below, which used to be skipped,
                // leaving the block tagged but its fate unrecorded.
                ++pfWriteHitTagged;
                reportOutcome(frame, true);
                if (_audit) {
                    _audit->onFate(blk_addr, audit::Fate::WriteHit,
                            audit::Event::DeferredStoreHit, now);
                }
                if (_chrome) {
                    _chrome->prefetchFate(_id, blk_addr,
                            audit::Fate::WriteHit, now);
                }
                frame->prefetched = false;
            }
            frame->state = CohState::Modified;
            frame->written = true;
            completeStores(*e);
            --_slwbOcc;
            _mshrs.erase(blk_addr);
            return;
        }
        if (is_pure_prefetch) {
            // The deferred store is what consumes this prefetch: its
            // data arrived, only ownership is still missing. Account
            // it like a store hit on a tagged block.
            ++pfWriteHitTagged;
            reportOutcome(frame, true);
            if (_audit) {
                _audit->onFate(blk_addr, audit::Fate::WriteHit,
                        audit::Event::DeferredStoreHit, now);
            }
            if (_chrome) {
                _chrome->prefetchFate(_id, blk_addr,
                        audit::Fate::WriteHit, now);
            }
        }
        frame->prefetched = false;
        ++upgrades;
        // The data slot frees here: the entry lives on as an upgrade,
        // which buffers no data.
        --_slwbOcc;
        e->kind = Mshr::Kind::Write;
        e->upgrade = true;
        e->pendingStores = e->deferredStores;
        e->deferredStores = 0;
        e->demandWaiting = false;
        sendToHome(MsgType::UpgradeReq, blk_addr, e->pc, false);
        return;
    }

    --_slwbOcc;
    _mshrs.erase(blk_addr);

    if (fill_observe) {
        _m.store().read(blk_addr, _contentBuf.data(), cfg.blockSize);
        _candidateBuf.clear();
        ReadObservation obs;
        obs.pc = fill_pc;
        obs.addr = fill_addr;
        obs.fill = true;
        obs.prefetchFill = is_pure_prefetch;
        obs.content = _contentBuf.data();
        obs.contentLen = cfg.blockSize;
        _prefetcher->observeRead(obs, _candidateBuf);
        if (!_candidateBuf.empty())
            maybePrefetch(fill_addr, fill_pc, _candidateBuf);
    }
}

void
Slc::receive(const Message &m)
{
    switch (m.type) {
      case MsgType::DataReply:
        handleFill(m, false);
        return;
      case MsgType::DataExReply:
        handleFill(m, true);
        return;
      case MsgType::UpgradeAck: {
        Mshr *e = findMshr(m.addr);
        if (!e || e->kind != Mshr::Kind::Write || !e->upgrade) {
            if (_audit)
                _audit->fail(m.addr, "spurious upgrade ack");
            psim_panic("node %u: spurious upgrade ack", _id);
        }
        CacheBlk *blk = _array.find(m.addr);
        if (blk) {
            if (blk->state != CohState::Shared) {
                if (_audit)
                    _audit->fail(m.addr, "upgrade ack on non-shared copy");
                psim_panic("node %u: upgrade ack on non-shared copy", _id);
            }
            blk->state = CohState::Modified;
            blk->written = true;
        } else {
            // A finite SLC silently evicted the shared copy while the
            // upgrade was in flight. Upgrades are only granted from
            // the Clean directory state, so the home's memory copy is
            // valid and the block is reinstalled directly in Modified.
            makeRoom(m.addr);
            CacheBlk *frame = _array.findVictim(m.addr);
            _array.fill(frame, m.addr, CohState::Modified,
                        _eq.now());
            frame->written = true;
            _history.erase(m.addr);
        }
        if (e->demandWaiting) {
            // A read missed on the silently evicted copy and merged
            // with this upgrade; the ack carries ownership of valid
            // memory data, so the read completes now.
            Addr daddr = e->demandAddr;
            _eq.scheduleIn(_m.cfg().slcToCpuLat,
                    [this, daddr] { _cpu.readComplete(daddr); });
        }
        completeStores(*e);
        _mshrs.erase(m.addr);
        return;
      }
      case MsgType::FetchReq:
      case MsgType::FetchInvReq: {
        CacheBlk *blk = _array.find(m.addr);
        if (!blk) {
            // Our writeback passed this fetch in flight; the home will
            // use the writeback as the reply.
            if (!_wbPending.count(m.addr)) {
                if (_audit) {
                    _audit->fail(m.addr,
                            "fetch for a block neither resident nor "
                            "being written back");
                }
                psim_panic("node %u: fetch for absent block %llx", _id,
                        (unsigned long long)m.addr);
            }
            return;
        }
        if (blk->state != CohState::Modified) {
            if (_audit)
                _audit->fail(m.addr, "fetch for a non-owned block");
            psim_panic("node %u: fetch for non-owned block", _id);
        }
        bool was_written = blk->written;
        if (m.type == MsgType::FetchReq) {
            blk->state = CohState::Shared;
            blk->written = false;
        } else {
            invalidateBlock(blk, false);
        }
        Message reply;
        reply.type = MsgType::FetchReply;
        reply.src = _id;
        reply.dst = m.src;
        reply.requester = m.requester;
        reply.addr = m.addr;
        // Tell the home whether this copy was actually stored to --
        // the migratory-sharing detector demotes on read-only handoffs.
        reply.aux = was_written ? 1 : 0;
        _m.send(reply);
        return;
      }
      case MsgType::InvReq: {
        ++invalidationsRecv;
        if (Mshr *e = findMshr(m.addr))
            e->invFlight = true;
        if (CacheBlk *blk = _array.find(m.addr))
            invalidateBlock(blk, false);
        Message ack;
        ack.type = MsgType::InvAck;
        ack.src = _id;
        ack.dst = m.src;
        ack.requester = m.requester;
        ack.addr = m.addr;
        _m.send(ack);
        return;
      }
      case MsgType::WritebackAck:
        _wbPending.erase(m.addr);
        return;
      default:
        psim_panic("node %u SLC: unexpected message %s", _id,
                toString(m.type));
    }
}

void
Slc::finalizeStats()
{
    const Tick now = _eq.now();
    _array.forEach([this, now](const CacheBlk &blk) {
        if (blk.prefetched) {
            ++pfUselessUnused;
            if (_audit) {
                _audit->onFate(blk.addr, audit::Fate::ResidentAtEnd,
                        audit::Event::EndOfRun, now);
            }
            if (_chrome) {
                _chrome->prefetchFate(_id, blk.addr,
                        audit::Fate::ResidentAtEnd, now);
            }
        }
    });
    if (_audit)
        _audit->finalize(*this);
}

} // namespace psim
