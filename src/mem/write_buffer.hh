/**
 * @file
 * First-level write buffer (FLWB).
 *
 * Buffers write, synchronization and read-miss requests issued by the
 * FLC in FIFO order (paper Section 2) and drains them to the SLC. The
 * consumer (the SLC) may refuse an entry when it is out of pending-
 * request (SLWB) entries; the buffer then retries, preserving order.
 */

#ifndef PSIM_MEM_WRITE_BUFFER_HH
#define PSIM_MEM_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace psim
{

struct FlwbEntry
{
    enum class Kind : std::uint8_t
    {
        Write,
        ReadMiss,
        Lock,
        Unlock,
        BarrierArrive,
    };

    Kind kind = Kind::Write;
    Addr addr = 0;
    Pc pc = 0;
    std::uint32_t aux = 0; ///< barrier participant count
};

class Flwb
{
  public:
    /**
     * @param try_consume presents the head entry to the SLC; returns
     *        false if the SLC cannot accept it yet
     * @param on_space invoked whenever an entry drains (a stalled
     *        processor can retry its enqueue)
     */
    Flwb(EventQueue &eq, const MachineConfig &cfg)
        : _eq(eq), _cfg(cfg)
    {
    }

    void
    setConsumer(std::function<bool(const FlwbEntry &)> try_consume)
    {
        _tryConsume = std::move(try_consume);
    }

    void
    setSpaceCallback(std::function<void()> on_space)
    {
        _onSpace = std::move(on_space);
    }

    bool full() const { return _q.size() >= _cfg.flwbEntries; }
    bool empty() const { return _q.empty(); }
    std::size_t size() const { return _q.size(); }

    /** Enqueue an entry. @pre !full() */
    void
    push(const FlwbEntry &e)
    {
        psim_assert(!full(), "FLWB overflow");
        _q.push_back(e);
        ++pushes;
        occupancy.sample(static_cast<double>(_q.size()));
        if (!_pumping)
            schedulePump(_cfg.flwbLat);
    }

    stats::Scalar pushes;
    stats::Scalar retries;
    stats::Average occupancy;

    /** Register this buffer's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("pushes", &pushes, "entries enqueued");
        g.addScalar("retries", &retries, "head retries (SLC refused)");
        g.addAverage("occupancy", &occupancy, "entries after each push");
    }

  private:
    void
    schedulePump(Tick delay)
    {
        _pumping = true;
        _eq.scheduleIn(delay, [this] { pump(); });
    }

    void
    pump()
    {
        _pumping = false;
        if (_q.empty())
            return;
        if (_tryConsume(_q.front())) {
            _q.pop_front();
            if (_onSpace)
                _onSpace();
            if (!_q.empty())
                schedulePump(_cfg.flwbLat);
        } else {
            ++retries;
            schedulePump(_cfg.busCycle);
        }
    }

    EventQueue &_eq;
    const MachineConfig &_cfg;
    std::function<bool(const FlwbEntry &)> _tryConsume;
    std::function<void()> _onSpace;
    std::deque<FlwbEntry> _q;
    bool _pumping = false;
};

} // namespace psim

#endif // PSIM_MEM_WRITE_BUFFER_HH
