/**
 * @file
 * Queue-based lock and barrier controllers at the home memory
 * (paper Section 4: "a queue-based lock mechanism at memory similar to
 * the one implemented in DASH, with a single lock variable per memory
 * block").
 *
 * Lock requests queue at the lock's home node; a release hands the lock
 * to the next queued requester without any spinning traffic. The
 * barrier is a memory-side counter that releases every participant when
 * the last one arrives (see DESIGN.md for why this substitution is
 * sound: the paper's statistics cover only the parallel sections, and
 * barrier mechanics are common to all compared schemes).
 */

#ifndef PSIM_PROTO_LOCK_CTRL_HH
#define PSIM_PROTO_LOCK_CTRL_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/audit.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace psim
{

class LockCtrl
{
  public:
    /** Callback that sends a LockGrant to @p dst for lock @p addr. */
    using GrantFn = std::function<void(NodeId dst, Addr addr)>;

    explicit LockCtrl(GrantFn grant) : _grant(std::move(grant)) {}

    /**
     * Attach the audit layer (lock-event ring + structured failures).
     * @p home is the owning memory controller's node id: lock events
     * are recorded into that home's ring, which keeps the audit
     * shard-safe (a lock's events all happen at its home node).
     */
    void
    setAudit(audit::MachineAudit *a, NodeId home)
    {
        _audit = a;
        _home = home;
    }

    /** A LockReq arrived from @p src. */
    void
    request(NodeId src, Addr addr)
    {
        ++requests;
        if (_audit)
            _audit->onLockEvent(_home, addr, src, "request");
        LockState &l = _locks[addr];
        if (!l.held) {
            l.held = true;
            l.holder = src;
            if (_audit)
                _audit->onLockEvent(_home, addr, src, "grant");
            _grant(src, addr);
        } else {
            l.waiters.push_back(src);
            if (l.waiters.size() > static_cast<std::size_t>(
                        maxQueue.value()))
                maxQueue = static_cast<double>(l.waiters.size());
        }
    }

    /** A LockRel arrived from the holder. */
    void
    release(NodeId src, Addr addr)
    {
        auto it = _locks.find(addr);
        if (it == _locks.end() || !it->second.held) {
            if (_audit)
                _audit->failLock(_home, addr, "release of a free lock");
            psim_panic("release of free lock %llx",
                    (unsigned long long)addr);
        }
        LockState &l = it->second;
        if (l.holder != src) {
            if (_audit)
                _audit->failLock(_home, addr,
                        strfmt("node %u releasing lock held by %u", src,
                               l.holder));
            psim_panic("node %u releasing lock held by %u", src,
                    l.holder);
        }
        if (_audit)
            _audit->onLockEvent(_home, addr, src, "release");
        if (l.waiters.empty()) {
            l.held = false;
            l.holder = kNodeNone;
        } else {
            l.holder = l.waiters.front();
            l.waiters.pop_front();
            if (_audit)
                _audit->onLockEvent(_home, addr, l.holder, "handoff");
            _grant(l.holder, addr);
        }
    }

    bool
    isHeld(Addr addr) const
    {
        auto it = _locks.find(addr);
        return it != _locks.end() && it->second.held;
    }

    /** Locks currently held (audit quiescence check). */
    std::size_t
    heldLocks() const
    {
        std::size_t n = 0;
        for (const auto &[addr, l] : _locks)
            n += l.held ? 1 : 0;
        return n;
    }

    /** Requesters queued behind held locks (audit quiescence check). */
    std::size_t
    queuedWaiters() const
    {
        std::size_t n = 0;
        for (const auto &[addr, l] : _locks)
            n += l.waiters.size();
        return n;
    }

    stats::Scalar requests;
    stats::Scalar maxQueue;

    /** Register this controller's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("lockRequests", &requests, "lock requests received");
        g.addScalar("lockMaxQueue", &maxQueue,
                "deepest lock waiter queue observed");
    }

  private:
    struct LockState
    {
        bool held = false;
        NodeId holder = kNodeNone;
        std::deque<NodeId> waiters;
    };

    GrantFn _grant;
    audit::MachineAudit *_audit = nullptr;
    NodeId _home = 0; ///< owning memory controller's node id
    std::unordered_map<Addr, LockState> _locks;
};

class BarrierCtrl
{
  public:
    /** Callback that sends a BarrierGo to @p dst for barrier @p addr. */
    using ReleaseFn = std::function<void(NodeId dst, Addr addr)>;

    explicit BarrierCtrl(ReleaseFn release) : _release(std::move(release))
    {
    }

    /**
     * A BarrierArrive from @p src; @p expected participants in total.
     * When the last one arrives, everyone is released.
     */
    void
    arrive(NodeId src, Addr addr, unsigned expected)
    {
        psim_assert(expected > 0, "barrier with no participants");
        Episode &ep = _episodes[addr];
        ep.arrived.push_back(src);
        if (ep.arrived.size() == expected) {
            ++episodes;
            for (NodeId n : ep.arrived)
                _release(n, addr);
            _episodes.erase(addr);
        } else {
            psim_assert(ep.arrived.size() < expected,
                    "barrier %llx oversubscribed",
                    (unsigned long long)addr);
        }
    }

    /** Barrier episodes still waiting for arrivals (audit check). */
    std::size_t pendingEpisodes() const { return _episodes.size(); }

    stats::Scalar episodes;

    /** Register this controller's statistics into @p g. */
    void
    registerStats(stats::Group &g)
    {
        g.addScalar("barrierEpisodes", &episodes,
                "barrier episodes completed");
    }

  private:
    struct Episode
    {
        std::vector<NodeId> arrived;
    };

    ReleaseFn _release;
    std::unordered_map<Addr, Episode> _episodes;
};

} // namespace psim

#endif // PSIM_PROTO_LOCK_CTRL_HH
