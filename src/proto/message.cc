#include "proto/message.hh"

namespace psim
{

const char *
toString(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
        return "ReadReq";
      case MsgType::ReadExReq:
        return "ReadExReq";
      case MsgType::UpgradeReq:
        return "UpgradeReq";
      case MsgType::WritebackReq:
        return "WritebackReq";
      case MsgType::DataReply:
        return "DataReply";
      case MsgType::DataExReply:
        return "DataExReply";
      case MsgType::UpgradeAck:
        return "UpgradeAck";
      case MsgType::WritebackAck:
        return "WritebackAck";
      case MsgType::FetchReq:
        return "FetchReq";
      case MsgType::FetchInvReq:
        return "FetchInvReq";
      case MsgType::InvReq:
        return "InvReq";
      case MsgType::FetchReply:
        return "FetchReply";
      case MsgType::InvAck:
        return "InvAck";
      case MsgType::LockReq:
        return "LockReq";
      case MsgType::LockGrant:
        return "LockGrant";
      case MsgType::LockRel:
        return "LockRel";
      case MsgType::BarrierArrive:
        return "BarrierArrive";
      case MsgType::BarrierGo:
        return "BarrierGo";
    }
    return "?";
}

bool
isForMemory(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
      case MsgType::ReadExReq:
      case MsgType::UpgradeReq:
      case MsgType::WritebackReq:
      case MsgType::FetchReply:
      case MsgType::InvAck:
      case MsgType::LockReq:
      case MsgType::LockRel:
      case MsgType::BarrierArrive:
        return true;
      default:
        return false;
    }
}

bool
carriesData(MsgType t)
{
    switch (t) {
      case MsgType::WritebackReq:
      case MsgType::DataReply:
      case MsgType::DataExReply:
      case MsgType::FetchReply:
        return true;
      default:
        return false;
    }
}

} // namespace psim
