/**
 * @file
 * Coherence-protocol and synchronization messages.
 *
 * The protocol is a full-map directory write-invalidate protocol in the
 * style of Censier and Feautrier, with invalidation acknowledgements
 * collected at the home node and ownership transfers serialized by
 * blocking the directory entry.
 */

#ifndef PSIM_PROTO_MESSAGE_HH
#define PSIM_PROTO_MESSAGE_HH

#include <cstdint>

#include "sim/types.hh"

namespace psim
{

enum class MsgType : std::uint8_t
{
    // cache -> home
    ReadReq,       ///< demand or prefetch read for a shared copy
    ReadExReq,     ///< read-for-ownership (write miss)
    UpgradeReq,    ///< S -> M upgrade (write hit on shared copy)
    WritebackReq,  ///< eviction of a Modified block (carries data)

    // home -> cache
    DataReply,     ///< shared copy (carries data)
    DataExReply,   ///< exclusive copy (carries data)
    UpgradeAck,    ///< upgrade granted (all invalidations done)
    WritebackAck,  ///< writeback accepted

    // home -> owner / sharers, and their responses back to home
    FetchReq,      ///< downgrade M -> S, send data home
    FetchInvReq,   ///< invalidate M copy, send data home
    InvReq,        ///< invalidate S copy
    FetchReply,    ///< owner's data back to home (carries data)
    InvAck,        ///< sharer invalidated

    // synchronization (uncached, serviced at the home memory)
    LockReq,
    LockGrant,
    LockRel,
    BarrierArrive,
    BarrierGo,
};

const char *toString(MsgType t);

/** True for message types serviced by the home memory/directory. */
bool isForMemory(MsgType t);

/** True for message types that carry a data block payload. */
bool carriesData(MsgType t);

struct Message
{
    MsgType type = MsgType::ReadReq;
    NodeId src = kNodeNone;       ///< sending node
    NodeId dst = kNodeNone;       ///< destination node
    NodeId requester = kNodeNone; ///< original requester (forwards)
    Addr addr = kAddrInvalid;     ///< block address (or lock address)
    Pc pc = 0;                    ///< load PC (I-detection needs it)
    bool prefetch = false;        ///< ReadReq issued by a prefetcher
    std::uint32_t aux = 0;        ///< barrier participant count etc.
};

} // namespace psim

#endif // PSIM_PROTO_MESSAGE_HH
