/**
 * @file
 * EventQueue-driven interval sampler: a periodic, read-only snapshot of
 * selected statistics (read misses, prefetches issued/useful, write
 * buffer occupancies, network flits, ...) so the *phase behaviour* of a
 * workload becomes visible, not just its end-of-run aggregates.
 *
 * The sampler is pure observation: its events never mutate simulated
 * state and never change the relative order of other events, so a run
 * with sampling enabled produces byte-identical aggregate statistics to
 * one without (asserted by tests/test_stats_export.cc). It stops
 * rescheduling itself as soon as no other event is pending, so it never
 * keeps the event queue alive artificially.
 */

#ifndef PSIM_SIM_SAMPLER_HH
#define PSIM_SIM_SAMPLER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace psim::stats
{

class Sampler
{
  public:
    /** @param interval ticks between snapshots (must be > 0) */
    Sampler(EventQueue &eq, Tick interval);

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Register a named probe; call before start(). */
    void addProbe(std::string name, std::function<double()> fn);

    /** Schedule the first snapshot (at tick now + interval). */
    void start();

    Tick interval() const { return _interval; }
    const std::vector<std::string> &probeNames() const { return _names; }

    /** One row per snapshot: [tick, probe values...]. */
    struct Row
    {
        Tick tick;
        std::vector<double> values;
    };

    const std::vector<Row> &rows() const { return _rows; }

    /**
     * JSON fragment for the stats document's "samples" member:
     *   {"interval":N,"probes":[...],"rows":[[tick,v0,v1,...],...]}
     */
    void dumpJson(std::ostream &os) const;

    /** CSV time series: header "tick,probe0,..." then one row per sample. */
    void dumpCsv(std::ostream &os) const;

  private:
    void tick();

    EventQueue &_eq;
    Tick _interval;
    std::vector<std::string> _names;
    std::vector<std::function<double()>> _probes;
    std::vector<Row> _rows;
    bool _started = false;
};

} // namespace psim::stats

#endif // PSIM_SIM_SAMPLER_HH
