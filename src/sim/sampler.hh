/**
 * @file
 * Interval sampler: a periodic, read-only snapshot of selected
 * statistics (read misses, prefetches issued/useful, write buffer
 * occupancies, network flits, ...) so the *phase behaviour* of a
 * workload becomes visible, not just its end-of-run aggregates.
 *
 * The sampler is pure observation: it never mutates simulated state and
 * never changes the relative order of other events, so a run with
 * sampling enabled produces byte-identical aggregate statistics to one
 * without (asserted by tests/test_stats_export.cc).
 *
 * Two drive modes share the row buffer and the dump formats:
 *
 *  - Event-driven (serial engine): start() schedules a self-renewing
 *    event on the global queue. It stops rescheduling itself as soon as
 *    no other event is pending, so it never keeps the queue alive
 *    artificially.
 *  - Boundary-driven (sharded engine): the machine calls sampleAt() at
 *    the first natural window boundary at or after each sample tick.
 *    All events below that boundary have fired and none at or above it
 *    has, so the snapshot is a quiescent cut; windows themselves are
 *    never reshaped by sampling, so the run is provably unperturbed,
 *    and window starts are shard-count-invariant, so rows are
 *    byte-identical at every shard count.
 */

#ifndef PSIM_SIM_SAMPLER_HH
#define PSIM_SIM_SAMPLER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace psim::stats
{

class Sampler
{
  public:
    /**
     * Event-driven mode (serial engine).
     * @param interval ticks between snapshots (must be > 0)
     */
    Sampler(EventQueue &eq, Tick interval);

    /** Boundary-driven mode (sharded engine): drive via sampleAt(). */
    explicit Sampler(Tick interval);

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Register a named probe; call before the first snapshot. */
    void addProbe(std::string name, std::function<double()> fn);

    /** Event-driven only: schedule the first snapshot at now + interval. */
    void start();

    /**
     * Boundary-driven only: record one row stamped with tick @p t. The
     * machine calls this between windows once the next window start has
     * reached @p t, so the cut is quiescent at that boundary.
     */
    void sampleAt(Tick t);

    Tick interval() const { return _interval; }
    const std::vector<std::string> &probeNames() const { return _names; }

    /** One row per snapshot: [tick, probe values...]. */
    struct Row
    {
        Tick tick;
        std::vector<double> values;
    };

    const std::vector<Row> &rows() const { return _rows; }

    /**
     * JSON fragment for the stats document's "samples" member:
     *   {"interval":N,"probes":[...],"rows":[[tick,v0,v1,...],...]}
     */
    void dumpJson(std::ostream &os) const;

    /** CSV time series: header "tick,probe0,..." then one row per sample. */
    void dumpCsv(std::ostream &os) const;

  private:
    void tick();
    void snapshot(Tick t);

    EventQueue *_eq; ///< null in boundary-driven mode
    Tick _interval;
    std::vector<std::string> _names;
    std::vector<std::function<double()>> _probes;
    std::vector<Row> _rows;
    bool _started = false;
};

} // namespace psim::stats

#endif // PSIM_SIM_SAMPLER_HH
