/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Statistics are registered in named groups; a group can dump itself as
 * aligned "name value # description" lines. Scalars, averages and
 * histograms cover everything the paper's evaluation reports.
 *
 * A process-wide view is provided by Registry: every component of a
 * machine registers its group into the machine's registry, which can
 * render the whole collection as the classic text dump or as a stable,
 * machine-readable JSON document (schema id "psim-stats-v1", validated
 * by scripts/check_stats_schema.py).
 */

#ifndef PSIM_SIM_STATS_HH
#define PSIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace psim::stats
{

/** A monotonically accumulating scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count += 1;
        if (_count == 1 || v < _min)
            _min = v;
        if (_count == 1 || v > _max)
            _max = v;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double min() const { return _min; }
    double max() const { return _max; }

    void
    reset()
    {
        _sum = 0;
        _count = 0;
        _min = 0;
        _max = 0;
    }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
    double _min = 0;
    double _max = 0;
};

/** A histogram over integer keys (e.g. stride lengths in blocks). */
class Histogram
{
  public:
    void sample(std::int64_t key, std::uint64_t weight = 1);

    std::uint64_t total() const { return _total; }
    std::uint64_t count(std::int64_t key) const;

    /** Key with the largest weight; 0 if empty. */
    std::int64_t dominantKey() const;

    /** Fraction of all samples carried by @p key (0 if empty). */
    double fraction(std::int64_t key) const;

    const std::map<std::int64_t, std::uint64_t> &buckets() const
    {
        return _buckets;
    }

    void
    reset()
    {
        _buckets.clear();
        _total = 0;
    }

  private:
    std::map<std::int64_t, std::uint64_t> _buckets;
    std::uint64_t _total = 0;
};

/**
 * A named collection of statistics. Members register themselves with
 * addScalar()/addAverage()/addHistogram() pointers; dump() renders them.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    void
    addScalar(const std::string &name, const Scalar *s,
              const std::string &desc)
    {
        _scalars.push_back({name, desc, s});
    }

    void
    addAverage(const std::string &name, const Average *a,
               const std::string &desc)
    {
        _averages.push_back({name, desc, a});
    }

    void
    addHistogram(const std::string &name, const Histogram *h,
                 const std::string &desc)
    {
        _histograms.push_back({name, desc, h});
    }

    const std::string &name() const { return _name; }

    /** Render every registered statistic to @p os. */
    void dump(std::ostream &os) const;

    /** Render this group as one JSON object (no trailing newline). */
    void dumpJson(std::ostream &os) const;

    /** Look up a registered scalar by name; nullptr when absent. */
    const Scalar *findScalar(const std::string &name) const;

  private:
    template <typename T>
    struct Item
    {
        std::string name;
        std::string desc;
        const T *stat;
    };

    std::string _name;
    std::vector<Item<Scalar>> _scalars;
    std::vector<Item<Average>> _averages;
    std::vector<Item<Histogram>> _histograms;
};

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Render @p v as a JSON number ("null" for NaN/inf — JSON has neither). */
std::string jsonNumber(double v);

/**
 * Owns every statistics Group of one machine. Components call
 * addGroup() once at construction time and register their statistics
 * into the returned group; the registry renders the whole collection
 * in registration order, so dumps are deterministic.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Create (and own) a new group. The reference stays valid. */
    Group &addGroup(const std::string &name);

    /** Look up a group by name; nullptr when absent. */
    const Group *find(const std::string &name) const;

    const std::vector<std::unique_ptr<Group>> &groups() const
    {
        return _groups;
    }

    /** Classic aligned text dump of every group. */
    void dump(std::ostream &os) const;

    /**
     * Stable JSON document:
     *   {"schema":"psim-stats-v1","groups":[...]}
     * @p extra, when non-empty, is spliced in verbatim as additional
     * top-level members (must start with a comma) -- the machine uses
     * it to append the interval-sampler time series.
     */
    void dumpJson(std::ostream &os, const std::string &extra = "") const;

    /** The schema identifier embedded in every JSON document. */
    static constexpr const char *kSchemaId = "psim-stats-v1";

  private:
    std::vector<std::unique_ptr<Group>> _groups;
};

} // namespace psim::stats

#endif // PSIM_SIM_STATS_HH
