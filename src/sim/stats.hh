/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Statistics are registered in named groups; a group can dump itself as
 * aligned "name value # description" lines. Scalars, averages and
 * histograms cover everything the paper's evaluation reports.
 */

#ifndef PSIM_SIM_STATS_HH
#define PSIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace psim::stats
{

/** A monotonically accumulating scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count += 1;
        if (_count == 1 || v < _min)
            _min = v;
        if (_count == 1 || v > _max)
            _max = v;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double min() const { return _min; }
    double max() const { return _max; }

    void
    reset()
    {
        _sum = 0;
        _count = 0;
        _min = 0;
        _max = 0;
    }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
    double _min = 0;
    double _max = 0;
};

/** A histogram over integer keys (e.g. stride lengths in blocks). */
class Histogram
{
  public:
    void sample(std::int64_t key, std::uint64_t weight = 1);

    std::uint64_t total() const { return _total; }
    std::uint64_t count(std::int64_t key) const;

    /** Key with the largest weight; 0 if empty. */
    std::int64_t dominantKey() const;

    /** Fraction of all samples carried by @p key (0 if empty). */
    double fraction(std::int64_t key) const;

    const std::map<std::int64_t, std::uint64_t> &buckets() const
    {
        return _buckets;
    }

    void
    reset()
    {
        _buckets.clear();
        _total = 0;
    }

  private:
    std::map<std::int64_t, std::uint64_t> _buckets;
    std::uint64_t _total = 0;
};

/**
 * A named collection of statistics. Members register themselves with
 * addScalar()/addAverage()/addHistogram() pointers; dump() renders them.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    void
    addScalar(const std::string &name, const Scalar *s,
              const std::string &desc)
    {
        _scalars.push_back({name, desc, s});
    }

    void
    addAverage(const std::string &name, const Average *a,
               const std::string &desc)
    {
        _averages.push_back({name, desc, a});
    }

    void
    addHistogram(const std::string &name, const Histogram *h,
                 const std::string &desc)
    {
        _histograms.push_back({name, desc, h});
    }

    const std::string &name() const { return _name; }

    /** Render every registered statistic to @p os. */
    void dump(std::ostream &os) const;

  private:
    template <typename T>
    struct Item
    {
        std::string name;
        std::string desc;
        const T *stat;
    };

    std::string _name;
    std::vector<Item<Scalar>> _scalars;
    std::vector<Item<Average>> _averages;
    std::vector<Item<Histogram>> _histograms;
};

} // namespace psim::stats

#endif // PSIM_SIM_STATS_HH
