#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace psim::json
{

const char *
Value::typeName() const
{
    switch (_type) {
      case Type::Null: return "null";
      case Type::Bool: return "boolean";
      case Type::Number: return "number";
      case Type::String: return "string";
      case Type::Array: return "array";
      case Type::Object: return "object";
    }
    return "?";
}

bool
Value::asBool(const std::string &what) const
{
    if (_type != Type::Bool)
        psim_fatal("%s: expected boolean, got %s", what.c_str(), typeName());
    return _bool;
}

double
Value::asNumber(const std::string &what) const
{
    if (_type != Type::Number)
        psim_fatal("%s: expected number, got %s", what.c_str(), typeName());
    return _num;
}

const std::string &
Value::asString(const std::string &what) const
{
    if (_type != Type::String)
        psim_fatal("%s: expected string, got %s", what.c_str(), typeName());
    return _str;
}

const std::vector<Value> &
Value::asArray(const std::string &what) const
{
    if (_type != Type::Array)
        psim_fatal("%s: expected array, got %s", what.c_str(), typeName());
    return _arr;
}

const Members &
Value::asObject(const std::string &what) const
{
    if (_type != Type::Object)
        psim_fatal("%s: expected object, got %s", what.c_str(), typeName());
    return _obj;
}

unsigned long long
Value::asUnsigned(const std::string &what, unsigned long long max) const
{
    double n = asNumber(what);
    if (!(n >= 0) || n != std::floor(n))
        psim_fatal("%s: expected a nonnegative integer, got %g",
                   what.c_str(), n);
    if (n > static_cast<double>(max))
        psim_fatal("%s: %g exceeds the maximum %llu", what.c_str(), n, max);
    return static_cast<unsigned long long>(n);
}

const Value *
Value::find(const std::string &key) const
{
    if (_type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : _obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Value &
Value::append(Value v)
{
    psim_assert(_type == Type::Array, "append on a non-array");
    _arr.push_back(std::move(v));
    return _arr.back();
}

Value &
Value::set(const std::string &key, Value v)
{
    psim_assert(_type == Type::Object, "set on a non-object");
    for (auto &[k, existing] : _obj) {
        if (k == key) {
            existing = std::move(v);
            return existing;
        }
    }
    _obj.emplace_back(key, std::move(v));
    return _obj.back().second;
}

std::size_t
Value::size() const
{
    switch (_type) {
      case Type::Array: return _arr.size();
      case Type::Object: return _obj.size();
      default: return 0;
    }
}

namespace
{

/** Strict recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text, const std::string &what)
        : _text(text), _what(what) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (_pos != _text.size())
            fail("trailing garbage after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        // Report a 1-based line number for the current position.
        std::size_t line = 1;
        for (std::size_t i = 0; i < _pos && i < _text.size(); ++i) {
            if (_text[i] == '\n')
                ++line;
        }
        psim_fatal("%s:%zu: %s", _what.c_str(), line, msg.c_str());
    }

    void
    skipWs()
    {
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++_pos;
        }
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of document");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() + "'");
        ++_pos;
    }

    bool
    consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (_pos >= _text.size() || _text[_pos] != *p)
                fail(std::string("malformed literal (expected \"") + word +
                     "\")");
            ++_pos;
        }
    }

    Value
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Value(string());
          case 't': literal("true"); return Value(true);
          case 'f': literal("false"); return Value(false);
          case 'n': literal("null"); return Value();
          default: return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Value obj = Value::makeObject();
        skipWs();
        if (consume('}'))
            return obj;
        while (true) {
            skipWs();
            std::string key = string();
            if (obj.find(key))
                fail("duplicate object key \"" + key + "\"");
            skipWs();
            expect(':');
            obj.set(key, value());
            skipWs();
            if (consume(','))
                continue;
            expect('}');
            return obj;
        }
    }

    Value
    array()
    {
        expect('[');
        Value arr = Value::makeArray();
        skipWs();
        if (consume(']'))
            return arr;
        while (true) {
            arr.append(value());
            skipWs();
            if (consume(','))
                continue;
            expect(']');
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            char e = _text[_pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += unicodeEscape(); break;
              default: fail("unknown escape sequence");
            }
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            if (_pos >= _text.size())
                fail("truncated \\u escape");
            char c = _text[_pos++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        return v;
    }

    std::string
    unicodeEscape()
    {
        unsigned cp = hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (_pos + 1 >= _text.size() || _text[_pos] != '\\' ||
                _text[_pos + 1] != 'u')
                fail("high surrogate without a low surrogate");
            _pos += 2;
            unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
                fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
        }
        // UTF-8 encode.
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    Value
    number()
    {
        std::size_t start = _pos;
        if (consume('-')) {}
        if (_pos >= _text.size() || !std::isdigit(
                    static_cast<unsigned char>(_text[_pos])))
            fail("malformed number");
        // Integer part: no leading zeros (except a lone 0).
        if (_text[_pos] == '0') {
            ++_pos;
            if (_pos < _text.size() &&
                std::isdigit(static_cast<unsigned char>(_text[_pos])))
                fail("leading zero in number");
        } else {
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos])))
                ++_pos;
        }
        if (consume('.')) {
            if (_pos >= _text.size() || !std::isdigit(
                        static_cast<unsigned char>(_text[_pos])))
                fail("malformed fraction");
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos])))
                ++_pos;
        }
        if (_pos < _text.size() && (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            if (_pos >= _text.size() || !std::isdigit(
                        static_cast<unsigned char>(_text[_pos])))
                fail("malformed exponent");
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos])))
                ++_pos;
        }
        std::string tok = _text.substr(start, _pos - start);
        return Value(std::strtod(tok.c_str(), nullptr));
    }

    const std::string &_text;
    const std::string _what;
    std::size_t _pos = 0;
};

void
serializeString(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
serializeValue(const Value &v, std::string &out)
{
    switch (v.type()) {
      case Value::Type::Null:
        out += "null";
        break;
      case Value::Type::Bool:
        out += v.asBool("") ? "true" : "false";
        break;
      case Value::Type::Number: {
        double n = v.asNumber("");
        if (!std::isfinite(n)) {
            // JSON has no NaN/Inf; an absent value becomes null (same
            // convention as the legacy bench JSON emitter).
            out += "null";
            break;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", n);
        out += buf;
        break;
      }
      case Value::Type::String:
        serializeString(v.asString(""), out);
        break;
      case Value::Type::Array: {
        out += '[';
        bool first = true;
        for (const Value &e : v.asArray("")) {
            if (!first)
                out += ',';
            first = false;
            serializeValue(e, out);
        }
        out += ']';
        break;
      }
      case Value::Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, e] : v.asObject("")) {
            if (!first)
                out += ',';
            first = false;
            serializeString(k, out);
            out += ':';
            serializeValue(e, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

Value
parse(const std::string &text, const std::string &what)
{
    return Parser(text, what).document();
}

std::string
serialize(const Value &v)
{
    std::string out;
    serializeValue(v, out);
    return out;
}

Value
loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        psim_fatal("cannot read %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in.good() && !in.eof())
        psim_fatal("error reading %s", path.c_str());
    return parse(ss.str(), path);
}

} // namespace psim::json
