/**
 * @file
 * Minimal JSON document model: an ordered value tree, a strict
 * recursive-descent parser, and a canonical serializer.
 *
 * Built for the declarative experiment layer (sim/spec.hh): experiment
 * specs are parsed with this, and the canonical `psim-results-v1`
 * documents are emitted with it. The serializer is deterministic --
 * object members keep insertion order, numbers print with %.17g (exact
 * double round-trip), non-finite numbers become null -- so two runs
 * that compute the same values emit byte-identical documents.
 *
 * Standard library only; no third-party JSON dependency.
 */

#ifndef PSIM_SIM_JSON_HH
#define PSIM_SIM_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace psim::json
{

class Value;

/** Ordered object members; duplicate keys are a parse error. */
using Members = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() : _type(Type::Null) {}
    Value(bool b) : _type(Type::Bool), _bool(b) {}
    Value(double n) : _type(Type::Number), _num(n) {}
    Value(int n) : _type(Type::Number), _num(n) {}
    Value(unsigned n) : _type(Type::Number), _num(n) {}
    Value(long long n) : _type(Type::Number), _num(static_cast<double>(n)) {}
    Value(unsigned long long n)
        : _type(Type::Number), _num(static_cast<double>(n)) {}
    Value(const char *s) : _type(Type::String), _str(s) {}
    Value(std::string s) : _type(Type::String), _str(std::move(s)) {}

    static Value makeArray() { Value v; v._type = Type::Array; return v; }
    static Value makeObject() { Value v; v._type = Type::Object; return v; }

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    /** Human-readable type name ("object", "number", ...). */
    const char *typeName() const;

    // Typed accessors; fatal() on a type mismatch, with @p what naming
    // the offending location for the error message.
    bool asBool(const std::string &what) const;
    double asNumber(const std::string &what) const;
    const std::string &asString(const std::string &what) const;
    const std::vector<Value> &asArray(const std::string &what) const;
    const Members &asObject(const std::string &what) const;

    /**
     * @p what's value as a nonnegative integer; fatal when it is not a
     * number, not integral, negative, or above @p max.
     */
    unsigned long long asUnsigned(const std::string &what,
                                  unsigned long long max) const;

    /** Member lookup (objects only); nullptr when absent. */
    const Value *find(const std::string &key) const;

    // ---- Building (arrays and objects) ----
    Value &append(Value v);
    Value &set(const std::string &key, Value v);

    std::size_t size() const;

  private:
    Type _type;
    bool _bool = false;
    double _num = 0;
    std::string _str;
    std::vector<Value> _arr;
    Members _obj;
};

/**
 * Parse @p text as one JSON document. Strict: rejects trailing
 * garbage, duplicate object keys, and malformed literals. fatal() on
 * any error, naming @p what (a file name or document description).
 */
Value parse(const std::string &text, const std::string &what);

/**
 * Serialize deterministically: insertion-ordered members, no
 * whitespace, %.17g numbers, NaN/Inf as null.
 */
std::string serialize(const Value &v);

/** Load and parse a JSON file; fatal() on I/O or parse errors. */
Value loadFile(const std::string &path);

} // namespace psim::json

#endif // PSIM_SIM_JSON_HH
