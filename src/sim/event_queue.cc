#include "sim/event_queue.hh"

#include <algorithm>

namespace psim
{

bool
EventQueue::isCancelled(EventId id)
{
    auto it = std::find(_cancelled.begin(), _cancelled.end(), id);
    if (it == _cancelled.end())
        return false;
    _cancelled.erase(it);
    return true;
}

bool
EventQueue::runOne()
{
    while (!_heap.empty()) {
        Entry e = _heap.top();
        _heap.pop();
        --_live;
        if (isCancelled(e.id))
            continue;
        psim_assert(e.when >= _now, "event queue went backwards");
        _now = e.when;
        e.cb();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!_heap.empty()) {
        if (_heap.top().when > limit) {
            _now = limit;
            return _now;
        }
        runOne();
    }
    return _now;
}

void
EventQueue::reset()
{
    _heap = {};
    _cancelled.clear();
    _live = 0;
    _now = 0;
    _nextId = 1;
}

} // namespace psim
