#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

namespace psim
{

namespace
{

constexpr std::size_t kInitialPool = 1024;

} // namespace

EventQueue::EventQueue()
{
    _bucketHead.fill(kNil);
    _bucketTail.fill(kNil);
    _occupied.fill(0);
    _pool.reserve(kInitialPool);
    growPool();
}

void
EventQueue::growPool()
{
    std::size_t old = _pool.size();
    std::size_t grown = old ? old * 2 : kInitialPool;
    psim_assert(grown < kNil, "event pool exceeded 2^32 slots");
    _pool.resize(grown);
    // Thread the new slots onto the free list in increasing order.
    for (std::size_t s = grown; s-- > old;) {
        _pool[s].next = _freeHead;
        _freeHead = static_cast<std::uint32_t>(s);
    }
}

std::uint32_t
EventQueue::allocSlot()
{
    if (_freeHead == kNil)
        growPool();
    std::uint32_t slot = _freeHead;
    _freeHead = _pool[slot].next;
    return slot;
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Event &e = _pool[slot];
    e.cb.reset();
    e.live = false;
    ++e.gen; // invalidate every outstanding EventId for this slot
    e.next = _freeHead;
    _freeHead = slot;
}

void
EventQueue::wheelInsert(std::uint32_t slot, Tick when)
{
    std::uint32_t b = static_cast<std::uint32_t>(when) & kWheelMask;
    if (_bucketTail[b] == kNil) {
        _bucketHead[b] = slot;
        _occupied[b >> 6] |= 1ULL << (b & 63);
    } else {
        _pool[_bucketTail[b]].next = slot;
    }
    _bucketTail[b] = slot;
    ++_wheelCount;
}

void
EventQueue::heapInsert(std::uint32_t slot, Tick when, std::uint64_t seq)
{
    _heap.push_back(HeapEntry{when, seq, slot});
    std::push_heap(_heap.begin(), _heap.end());
}

std::uint32_t
EventQueue::firstOccupiedBucket(std::uint32_t from) const
{
    // Scan the occupancy bitmap circularly starting at bit `from`.
    std::uint32_t word = from >> 6;
    std::uint64_t bits = _occupied[word] & (~0ULL << (from & 63));
    for (std::size_t i = 0; i <= _occupied.size(); ++i) {
        if (bits)
            return static_cast<std::uint32_t>(
                    (word << 6) + std::countr_zero(bits));
        word = (word + 1) & (static_cast<std::uint32_t>(_occupied.size()) -
                             1);
        bits = _occupied[word];
    }
    return kNil;
}

bool
EventQueue::peekNext(Next &n)
{
    // Candidate from the wheel: the first occupied bucket in circular
    // order from now's position holds the minimal wheel tick (all wheel
    // events lie in [now, now + kWheelSize)). Reclaim dead heads as we
    // go; `when` is non-decreasing along a bucket chain, so a live head
    // is the bucket minimum.
    std::uint32_t wslot = kNil;
    std::uint32_t wbucket = 0;
    while (_wheelCount > 0) {
        std::uint32_t b = firstOccupiedBucket(
                static_cast<std::uint32_t>(_now) & kWheelMask);
        psim_assert(b != kNil, "wheel count/bitmap out of sync");
        std::uint32_t head = _bucketHead[b];
        while (head != kNil && !_pool[head].live) {
            std::uint32_t dead = head;
            head = _pool[dead].next;
            freeSlot(dead);
            --_wheelCount;
        }
        _bucketHead[b] = head;
        if (head == kNil) {
            _bucketTail[b] = kNil;
            _occupied[b >> 6] &= ~(1ULL << (b & 63));
            continue;
        }
        wslot = head;
        wbucket = b;
        break;
    }

    // Candidate from the overflow heap, likewise reclaiming dead tops.
    while (!_heap.empty() && !_pool[_heap.front().slot].live) {
        std::uint32_t dead = _heap.front().slot;
        std::pop_heap(_heap.begin(), _heap.end());
        _heap.pop_back();
        freeSlot(dead);
    }

    if (wslot == kNil && _heap.empty())
        return false;

    if (wslot != kNil && !_heap.empty()) {
        const Event &w = _pool[wslot];
        const HeapEntry &h = _heap.front();
        if (h.when < w.when || (h.when == w.when && h.seq < w.seq)) {
            n = Next{h.slot, 0, false};
            return true;
        }
    } else if (wslot == kNil) {
        n = Next{_heap.front().slot, 0, false};
        return true;
    }
    n = Next{wslot, wbucket, true};
    return true;
}

void
EventQueue::removeNext(const Next &n)
{
    if (n.wheel) {
        std::uint32_t b = n.bucket;
        psim_assert(_bucketHead[b] == n.slot, "wheel cursor desynced");
        _bucketHead[b] = _pool[n.slot].next;
        if (_bucketHead[b] == kNil) {
            _bucketTail[b] = kNil;
            _occupied[b >> 6] &= ~(1ULL << (b & 63));
        }
        --_wheelCount;
    } else {
        psim_assert(!_heap.empty() && _heap.front().slot == n.slot,
                "heap cursor desynced");
        std::pop_heap(_heap.begin(), _heap.end());
        _heap.pop_back();
    }
}

void
EventQueue::fire(const Next &n)
{
    removeNext(n);
    Event &e = _pool[n.slot];
    psim_assert(e.when >= _now, "event queue went backwards");
    _now = e.when;
    Callback cb = std::move(e.cb);
    _ctxOwner = e.owner;
    --_live;
    // Free the slot before invoking so the callback can schedule into
    // it; the generation bump keeps the old EventId stale.
    freeSlot(n.slot);
    cb();
}

Tick
EventQueue::runWindow(Tick end)
{
    psim_assert(_shardOrder, "runWindow requires shard ordering");
    Next n;
    while (peekNext(n)) {
        Tick t = _pool[n.slot].when;
        if (t >= end)
            break;
        psim_assert(t >= _now, "event queue went backwards");

        // Pull every event at tick t out of the wheel/heap into the
        // staging heap. Bucket chains are FIFO by insertion, which in
        // sharded mode is not seq order (a window-boundary delivery for
        // a high-numbered owner may have been inserted before an
        // in-window event of a low-numbered one); the heap restores the
        // (owner, counter) order that makes firing shard-count
        // invariant.
        _stagingTick = t;
        _stagingActive = true;
        do {
            const Event &e = _pool[n.slot];
            StagedEntry staged{e.seq, n.slot, e.gen};
            removeNext(n);
            _staging.push_back(staged);
            std::push_heap(_staging.begin(), _staging.end());
        } while (peekNext(n) && _pool[n.slot].when == t);
        _now = t;

        // Drain in seq order. Callbacks may schedule further events at
        // this same tick; schedule() feeds those straight into the
        // staging heap, and per-owner counters are monotone, so a child
        // always sorts after its (already fired) parent.
        while (!_staging.empty()) {
            std::pop_heap(_staging.begin(), _staging.end());
            StagedEntry s = _staging.back();
            _staging.pop_back();
            Event &e = _pool[s.slot];
            if (e.gen != s.gen)
                continue; // slot freed (and possibly reused) already
            if (!e.live) {
                freeSlot(s.slot); // cancelled while staged
                continue;
            }
            Callback cb = std::move(e.cb);
            _ctxOwner = e.owner;
            --_live;
            freeSlot(s.slot);
            cb();
        }
        _stagingActive = false;
    }
    return _now;
}

bool
EventQueue::runOne()
{
    Next n;
    if (!peekNext(n))
        return false;
    fire(n);
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    Next n;
    while (peekNext(n)) {
        if (_pool[n.slot].when > limit) {
            _now = limit;
            return _now;
        }
        fire(n);
    }
    return _now;
}

void
EventQueue::reset()
{
    for (std::size_t s = 0; s < _pool.size(); ++s) {
        Event &e = _pool[s];
        e.cb.reset();
        e.live = false;
        ++e.gen;
        e.next = s + 1 < _pool.size()
                ? static_cast<std::uint32_t>(s + 1) : kNil;
    }
    _freeHead = _pool.empty() ? kNil : 0;
    _bucketHead.fill(kNil);
    _bucketTail.fill(kNil);
    _occupied.fill(0);
    _wheelCount = 0;
    _heap.clear();
    _live = 0;
    _now = 0;
    _nextSeq = 1;
    _staging.clear();
    _stagingActive = false;
    _ctxOwner = 0;
    _ownerCtr.assign(_ownerCtr.size(), 0);
}

} // namespace psim
