/**
 * @file
 * Small-buffer-optimized callback for the event engine.
 *
 * The event queue is the hottest data structure in the simulator: every
 * memory access schedules several callbacks. `std::function` heap-
 * allocates any capture list larger than its (implementation-defined)
 * inline buffer, which puts an allocator round-trip on the critical
 * path. InlineCallback instead provides a fixed-size inline buffer and
 * *no* heap fallback at all: a callable that does not fit is a compile
 * error, so the hot path can never silently regress into malloc.
 */

#ifndef PSIM_SIM_CALLBACK_HH
#define PSIM_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace psim
{

/**
 * A move-only `void()` callable with @p Capacity bytes of inline
 * storage and no heap fallback.
 */
template <std::size_t Capacity>
class InlineCallback
{
  public:
    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                      std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&f) // NOLINT: implicit from any callable
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                "callback capture list exceeds the event queue's inline "
                "storage; shrink the capture or raise Capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                "callback requires stronger alignment than the inline "
                "buffer provides");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                "callbacks must be nothrow-movable (the pool relocates "
                "them)");
        ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(f));
        _invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
        _relocate = [](void *dst, void *src) {
            Fn *from = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        };
        _destroy = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    explicit operator bool() const { return _invoke != nullptr; }

    void operator()() { _invoke(_buf); }

    /** Destroy the stored callable (if any) and become empty. */
    void
    reset()
    {
        if (_destroy) {
            _destroy(_buf);
            _invoke = nullptr;
            _relocate = nullptr;
            _destroy = nullptr;
        }
    }

  private:
    void
    moveFrom(InlineCallback &other) noexcept
    {
        if (other._relocate) {
            other._relocate(_buf, other._buf);
            _invoke = other._invoke;
            _relocate = other._relocate;
            _destroy = other._destroy;
            other._invoke = nullptr;
            other._relocate = nullptr;
            other._destroy = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte _buf[Capacity];
    void (*_invoke)(void *) = nullptr;
    void (*_relocate)(void *dst, void *src) = nullptr;
    void (*_destroy)(void *) = nullptr;
};

} // namespace psim

#endif // PSIM_SIM_CALLBACK_HH
