#include "sim/config.hh"

#include <cstdlib>
#include <cstring>

#include "sim/audit.hh"
#include "sim/logging.hh"

namespace psim
{

namespace
{

/**
 * The one scheme registry: display name (toString / the paper figures)
 * plus every accepted spelling. parseScheme, toString and schemeNames
 * all read this table, so a new scheme added here is parseable,
 * printable and listed in error messages at once.
 */
struct SchemeName
{
    PrefetchScheme scheme;
    const char *display;            ///< toString() / figure label
    const char *aliases[3];         ///< accepted parse spellings
};

constexpr SchemeName kSchemeNames[] = {
    {PrefetchScheme::None, "baseline", {"none", "baseline", nullptr}},
    {PrefetchScheme::Sequential, "seq", {"seq", "sequential", nullptr}},
    {PrefetchScheme::IDet, "i-det", {"idet", "i-det", nullptr}},
    {PrefetchScheme::DDet, "d-det", {"ddet", "d-det", nullptr}},
    {PrefetchScheme::Adaptive, "adaptive",
     {"adaptive", "adaptive-seq", nullptr}},
    {PrefetchScheme::IDetLookahead, "i-det-la",
     {"idet-la", "i-det-la", "lookahead"}},
    {PrefetchScheme::MultiStride, "m-stride",
     {"mstride", "m-stride", "multi-stride"}},
    {PrefetchScheme::PtrChase, "chase",
     {"chase", "ptr-chase", "pointer-chase"}},
    {PrefetchScheme::Perceptron, "ptron", {"ptron", "perceptron", nullptr}},
};

} // namespace

const char *
toString(PrefetchScheme s)
{
    for (const SchemeName &e : kSchemeNames) {
        if (e.scheme == s)
            return e.display;
    }
    return "?";
}

std::string
schemeNames()
{
    std::string out;
    for (const SchemeName &e : kSchemeNames) {
        if (!out.empty())
            out += ", ";
        out += e.aliases[0];
    }
    return out;
}

PrefetchScheme
parseScheme(const std::string &name)
{
    for (const SchemeName &e : kSchemeNames) {
        for (const char *alias : e.aliases) {
            if (alias && name == alias)
                return e.scheme;
        }
    }
    psim_fatal("unknown prefetch scheme '%s' (valid: %s)", name.c_str(),
               schemeNames().c_str());
}

bool
auditDefault()
{
    if (!audit::compiledIn())
        return false;
    static const bool enabled = [] {
        const char *env = std::getenv("PSIM_AUDIT");
        return env != nullptr && std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

void
MachineConfig::validate() const
{
    if (!isPowerOf2(blockSize))
        psim_fatal("block size %u is not a power of two", blockSize);
    if (!isPowerOf2(pageSize) || pageSize < blockSize)
        psim_fatal("bad page size %u", pageSize);
    if (!isPowerOf2(flcSize) || flcSize < blockSize)
        psim_fatal("bad FLC size %u", flcSize);
    if (slcSize != 0 && (!isPowerOf2(slcSize) || slcSize < blockSize))
        psim_fatal("bad SLC size %u", slcSize);
    if (numProcs == 0 || meshCols == 0 || numProcs % meshCols != 0)
        psim_fatal("mesh %u nodes / %u columns does not tile", numProcs,
                   meshCols);
    if (flwbEntries == 0 || slwbEntries == 0)
        psim_fatal("write buffers need at least one entry");
    if (prefetch.degree == 0)
        psim_fatal("degree of prefetching must be >= 1");
    if (prefetch.mstrideWays == 0 || prefetch.mstrideWays > 8)
        psim_fatal("mstrideWays %u is outside [1, 8]",
                   prefetch.mstrideWays);
    if (prefetch.mstrideConf == 0)
        psim_fatal("mstrideConf must be >= 1");
    if (prefetch.chaseDepth == 0)
        psim_fatal("chaseDepth must be >= 1");
    if (prefetch.chaseEntries == 0 || !isPowerOf2(prefetch.chaseEntries))
        psim_fatal("chaseEntries %u is not a power of two",
                   prefetch.chaseEntries);
    // Wrapper schemes (chase, ptron) compose a conventional base; the
    // base must itself be a non-wrapper scheme or construction would
    // recurse.
    auto isWrapper = [](PrefetchScheme s) {
        return s == PrefetchScheme::PtrChase ||
               s == PrefetchScheme::Perceptron;
    };
    if (isWrapper(prefetch.chaseBase))
        psim_fatal("chaseBase must be a non-wrapper scheme, not '%s'",
                   toString(prefetch.chaseBase));
    if (prefetch.ptronBase == PrefetchScheme::Perceptron)
        psim_fatal("ptronBase must not itself be the perceptron filter");
    if (flitBits % 8 != 0)
        psim_fatal("flit size must be whole bytes");
    if (!(server.zipfTheta >= 0.0 && server.zipfTheta < 1.0))
        psim_fatal("server.zipfTheta %f is outside [0, 1)",
                   server.zipfTheta);
}

unsigned
squarestMeshCols(unsigned procs)
{
    unsigned d = 1;
    for (unsigned c = 1; c * c <= procs; ++c) {
        if (procs % c == 0)
            d = c; // largest divisor <= sqrt(procs)
    }
    return procs / d;
}

void
applyProcCount(MachineConfig &cfg, unsigned procs)
{
    cfg.numProcs = procs;
    cfg.meshCols = squarestMeshCols(procs);
    unsigned rows = procs / cfg.meshCols;
    // A near-chain mesh (1x7 for a prime count, 2x13 for 26, ...) has
    // pathologically long routes compared to the square-ish meshes the
    // paper studies. Honor the request, but never silently.
    if (procs > 2 && cfg.meshCols >= 4 * rows) {
        psim_warn("--procs %u only tiles as a degenerate %ux%u mesh "
                  "(rows x cols); network distances will not resemble a "
                  "square mesh. Prefer a count with a near-square "
                  "factorization (e.g. %u or %u).",
                  procs, rows, cfg.meshCols, procs - 1, procs + 1);
    }
}

} // namespace psim
