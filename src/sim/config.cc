#include "sim/config.hh"

#include <cstdlib>
#include <cstring>

#include "sim/audit.hh"
#include "sim/logging.hh"

namespace psim
{

const char *
toString(PrefetchScheme s)
{
    switch (s) {
      case PrefetchScheme::None:
        return "baseline";
      case PrefetchScheme::Sequential:
        return "seq";
      case PrefetchScheme::IDet:
        return "i-det";
      case PrefetchScheme::DDet:
        return "d-det";
      case PrefetchScheme::Adaptive:
        return "adaptive";
      case PrefetchScheme::IDetLookahead:
        return "i-det-la";
    }
    return "?";
}

PrefetchScheme
parseScheme(const std::string &name)
{
    if (name == "none" || name == "baseline")
        return PrefetchScheme::None;
    if (name == "seq" || name == "sequential")
        return PrefetchScheme::Sequential;
    if (name == "idet" || name == "i-det")
        return PrefetchScheme::IDet;
    if (name == "ddet" || name == "d-det")
        return PrefetchScheme::DDet;
    if (name == "adaptive" || name == "adaptive-seq")
        return PrefetchScheme::Adaptive;
    if (name == "idet-la" || name == "i-det-la" || name == "lookahead")
        return PrefetchScheme::IDetLookahead;
    psim_fatal("unknown prefetch scheme '%s'", name.c_str());
}

bool
auditDefault()
{
    if (!audit::compiledIn())
        return false;
    static const bool enabled = [] {
        const char *env = std::getenv("PSIM_AUDIT");
        return env != nullptr && std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

void
MachineConfig::validate() const
{
    if (!isPowerOf2(blockSize))
        psim_fatal("block size %u is not a power of two", blockSize);
    if (!isPowerOf2(pageSize) || pageSize < blockSize)
        psim_fatal("bad page size %u", pageSize);
    if (!isPowerOf2(flcSize) || flcSize < blockSize)
        psim_fatal("bad FLC size %u", flcSize);
    if (slcSize != 0 && (!isPowerOf2(slcSize) || slcSize < blockSize))
        psim_fatal("bad SLC size %u", slcSize);
    if (numProcs == 0 || meshCols == 0 || numProcs % meshCols != 0)
        psim_fatal("mesh %u nodes / %u columns does not tile", numProcs,
                   meshCols);
    if (flwbEntries == 0 || slwbEntries == 0)
        psim_fatal("write buffers need at least one entry");
    if (prefetch.degree == 0)
        psim_fatal("degree of prefetching must be >= 1");
    if (flitBits % 8 != 0)
        psim_fatal("flit size must be whole bytes");
    if (!(server.zipfTheta >= 0.0 && server.zipfTheta < 1.0))
        psim_fatal("server.zipfTheta %f is outside [0, 1)",
                   server.zipfTheta);
}

unsigned
squarestMeshCols(unsigned procs)
{
    unsigned d = 1;
    for (unsigned c = 1; c * c <= procs; ++c) {
        if (procs % c == 0)
            d = c; // largest divisor <= sqrt(procs)
    }
    return procs / d;
}

void
applyProcCount(MachineConfig &cfg, unsigned procs)
{
    cfg.numProcs = procs;
    cfg.meshCols = squarestMeshCols(procs);
    unsigned rows = procs / cfg.meshCols;
    // A near-chain mesh (1x7 for a prime count, 2x13 for 26, ...) has
    // pathologically long routes compared to the square-ish meshes the
    // paper studies. Honor the request, but never silently.
    if (procs > 2 && cfg.meshCols >= 4 * rows) {
        psim_warn("--procs %u only tiles as a degenerate %ux%u mesh "
                  "(rows x cols); network distances will not resemble a "
                  "square mesh. Prefer a count with a near-square "
                  "factorization (e.g. %u or %u).",
                  procs, rows, cfg.meshCols, procs - 1, procs + 1);
    }
}

} // namespace psim
