#include "sim/audit.hh"

#include <cinttypes>
#include <cstdio>

#include "mem/slc.hh"
#include "proto/message.hh"
#include "sim/logging.hh"
#include "sys/machine.hh"
#include "sys/node.hh"

namespace psim::audit
{

namespace
{

/** Events kept per block; enough to reconstruct several issue rounds. */
constexpr std::size_t kHistoryCap = 32;

/** Lock events kept in the machine-wide ring. */
constexpr std::size_t kLockRingCap = 64;

} // namespace

const char *
toString(Fate f)
{
    switch (f) {
      case Fate::None:
        return "none";
      case Fate::UsefulTagged:
        return "useful-tagged";
      case Fate::UsefulLate:
        return "useful-late";
      case Fate::WriteHit:
        return "write-hit";
      case Fate::Invalidated:
        return "invalidated";
      case Fate::Replaced:
        return "replaced";
      case Fate::AgedUnused:
        return "aged-unused";
      case Fate::ResidentAtEnd:
        return "resident-at-end";
    }
    return "?";
}

const char *
toString(Event e)
{
    switch (e) {
      case Event::Issue:
        return "issue";
      case Event::Fill:
        return "fill";
      case Event::DemandMerge:
        return "demand-merge";
      case Event::TaggedReadHit:
        return "tagged-read-hit";
      case Event::TaggedWriteHit:
        return "tagged-write-hit";
      case Event::DeferredStoreHit:
        return "deferred-store-hit";
      case Event::Invalidated:
        return "invalidated";
      case Event::Replaced:
        return "replaced";
      case Event::AgedOut:
        return "aged-out";
      case Event::EndOfRun:
        return "end-of-run";
    }
    return "?";
}

// ---- NodeAudit ----

void
NodeAudit::record(Track &t, Event e, Tick now)
{
    if (t.hist.size() >= kHistoryCap)
        t.hist.pop_front();
    t.hist.emplace_back(now, e);
}

void
NodeAudit::onIssue(Addr blk, Pc pc, Tick now)
{
    (void)pc;
    Track &t = _tracks[blk];
    if (t.live)
        fail(blk, "prefetch issued while a previous issue is still live");
    t.live = true;
    t.lastFate = Fate::None;
    ++t.issues;
    ++_issued;
    record(t, Event::Issue, now);
}

void
NodeAudit::onEvent(Addr blk, Event e, Tick now)
{
    auto it = _tracks.find(blk);
    if (it != _tracks.end())
        record(it->second, e, now);
}

void
NodeAudit::onFate(Addr blk, Fate f, Event e, Tick now)
{
    auto it = _tracks.find(blk);
    if (it == _tracks.end())
        fail(blk, std::string("fate '") + toString(f) +
                          "' for a block that was never issued");
    Track &t = it->second;
    if (!t.live)
        fail(blk, std::string("second fate '") + toString(f) +
                          "' (previous fate '" + toString(t.lastFate) +
                          "')");
    t.live = false;
    t.lastFate = f;
    ++_fates[static_cast<std::size_t>(f)];
    record(t, e, now);
}

bool
NodeAudit::hasLiveIssue(Addr blk) const
{
    auto it = _tracks.find(blk);
    return it != _tracks.end() && it->second.live;
}

void
NodeAudit::checkTaggedFill(Addr blk) const
{
    if (!hasLiveIssue(blk))
        fail(blk, "prefetched tag set without a live recorded issue");
}

void
NodeAudit::checkSlwb(std::size_t occupancy, std::size_t cap,
                     bool for_prefetch, const char *where) const
{
    if (for_prefetch) {
        // Prefetch allocations are checked synchronously with the
        // reserve rule, so the bound is exact: the allocation must
        // leave the last slot free for demand accesses.
        if (occupancy >= cap) {
            psim_panic("node %u: prefetch filled the SLWB slot reserved "
                       "for demand accesses (%zu/%zu, %s)",
                       _node, occupancy, cap, where);
        }
        return;
    }
    // Demand accesses are admitted one tag-array access before they
    // allocate; a block that was resident at admission (needing no
    // slot) but invalidated inside that window legitimately
    // over-commits the SLWB by a single entry.
    if (occupancy > cap + 1) {
        psim_panic("node %u SLWB occupancy %zu exceeds capacity %zu (%s)",
                   _node, occupancy, cap, where);
    }
}

void
NodeAudit::fail(Addr blk, const std::string &msg) const
{
    std::fprintf(stderr,
                 "==== audit failure: node %u, block %#" PRIx64 " ====\n",
                 _node, blk);
    auto it = _tracks.find(blk);
    if (it == _tracks.end()) {
        std::fprintf(stderr, "  (no recorded prefetch history)\n");
    } else {
        const Track &t = it->second;
        std::fprintf(stderr, "  issues: %u, live: %s, last fate: %s\n",
                     t.issues, t.live ? "yes" : "no",
                     toString(t.lastFate));
        for (const auto &[tick, ev] : t.hist) {
            std::fprintf(stderr, "  tick %12" PRIu64 "  %s\n",
                         static_cast<std::uint64_t>(tick), toString(ev));
        }
    }
    psim_panic("node %u audit: %s (block %#" PRIx64 ")", _node,
               msg.c_str(), blk);
}

void
NodeAudit::finalize(const Slc &slc)
{
    for (const auto &[blk, t] : _tracks) {
        if (t.live)
            fail(blk, "issued prefetch never reached a terminal fate");
    }

    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumFates; ++i)
        sum += _fates[i];
    if (sum != _issued) {
        psim_panic("node %u audit: conservation violated: issued %" PRIu64
                   " != sum of fates %" PRIu64,
                   _node, _issued, sum);
    }

    // The tracker counts every fate independently of the stats package;
    // the two must agree bucket by bucket or one of them drifted.
    struct Check
    {
        Fate fate;
        const stats::Scalar *stat;
        const char *name;
    };
    const Check checks[] = {
        {Fate::UsefulTagged, &slc.pfUsefulTagged, "pfUsefulTagged"},
        {Fate::UsefulLate, &slc.pfUsefulLate, "pfUsefulLate"},
        {Fate::WriteHit, &slc.pfWriteHitTagged, "pfWriteHitTagged"},
        {Fate::Invalidated, &slc.pfUselessInvalidated,
         "pfUselessInvalidated"},
        {Fate::Replaced, &slc.pfUselessReplaced, "pfUselessReplaced"},
        {Fate::AgedUnused, &slc.pfAgedUnused, "pfAgedUnused"},
        {Fate::ResidentAtEnd, &slc.pfUselessUnused, "pfUselessUnused"},
    };
    if (static_cast<double>(_issued) != slc.pfIssued.value()) {
        psim_panic("node %u audit: issue count %" PRIu64
                   " disagrees with stat pfIssued %.0f",
                   _node, _issued, slc.pfIssued.value());
    }
    for (const Check &c : checks) {
        if (static_cast<double>(fateCount(c.fate)) != c.stat->value()) {
            psim_panic("node %u audit: fate '%s' counted %" PRIu64
                       " times but stat %s is %.0f",
                       _node, toString(c.fate), fateCount(c.fate),
                       c.name, c.stat->value());
        }
    }
}

// ---- MachineAudit ----

MachineAudit::MachineAudit(unsigned num_procs, unsigned header_flits)
    : _numProcs(num_procs), _headerFlits(header_flits),
      _lockRings(num_procs)
{
    _nodes.reserve(num_procs);
    for (NodeId n = 0; n < num_procs; ++n)
        _nodes.push_back(std::make_unique<NodeAudit>(n));
}

void
MachineAudit::onMeshInject(NodeId src, NodeId dst, unsigned flits)
{
    if (src >= _numProcs || dst >= _numProcs || src == dst) {
        psim_panic("audit: mesh injection %u -> %u out of range", src,
                   dst);
    }
    if (flits < _headerFlits)
        psim_panic("audit: %u-flit message shorter than its header", flits);
    ++_meshInjected;
}

void
MachineAudit::onDeliver(const Message &m)
{
    if (m.src >= _numProcs || m.dst >= _numProcs ||
        (m.requester != kNodeNone && m.requester >= _numProcs)) {
        psim_panic("audit: delivered message %s with bad node ids "
                   "%u -> %u (requester %u)",
                   toString(m.type), m.src, m.dst, m.requester);
    }
    if (m.src != m.dst) {
        // Deliveries execute on the destination node's shard thread;
        // this is the one counter multiple shards bump concurrently.
        _meshDelivered.fetch_add(1, std::memory_order_relaxed);
    }
}

void
MachineAudit::onLockEvent(NodeId home, Addr lock, NodeId node,
                          const char *what)
{
    std::deque<LockEvent> &ring = _lockRings.at(home).events;
    if (ring.size() >= kLockRingCap)
        ring.pop_front();
    ring.push_back(LockEvent{lock, node, what});
}

void
MachineAudit::failLock(NodeId home, Addr lock, const std::string &msg)
{
    std::fprintf(stderr,
                 "==== audit failure: lock %#" PRIx64
                 " (home node %u recent lock events) ====\n",
                 lock, home);
    for (const LockEvent &e : _lockRings.at(home).events) {
        std::fprintf(stderr, "  lock %#" PRIx64 "  node %2u  %s\n",
                     e.lock, e.node, e.what);
    }
    psim_panic("lock audit: %s (lock %#" PRIx64 ")", msg.c_str(), lock);
}

void
MachineAudit::finalize(const Machine &m)
{
    std::uint64_t delivered = meshDelivered();
    if (_meshInjected != delivered) {
        psim_panic("audit: mesh message conservation violated: "
                   "%" PRIu64 " injected, %" PRIu64 " delivered",
                   _meshInjected, delivered);
    }
    for (NodeId n = 0; n < _numProcs; ++n) {
        const MemCtrl &mem = m.node(n).mem();
        std::size_t held = mem.locks().heldLocks();
        std::size_t waiting = mem.locks().queuedWaiters();
        if (held != 0 || waiting != 0) {
            psim_panic("audit: node %u memory still holds %zu locks with "
                       "%zu waiters at end of run",
                       n, held, waiting);
        }
        std::size_t pending = mem.barrier().pendingEpisodes();
        if (pending != 0) {
            psim_panic("audit: node %u has %zu unfinished barrier "
                       "episodes at end of run",
                       n, pending);
        }
    }
}

LedgerSnapshot
MachineAudit::exportLedger() const
{
    LedgerSnapshot snap;
    snap.nodes.resize(_nodes.size());
    for (std::size_t n = 0; n < _nodes.size(); ++n) {
        const NodeAudit &na = *_nodes[n];
        snap.nodes[n].issued = na.issued();
        for (std::size_t f = 0; f < kNumFates; ++f) {
            snap.nodes[n].fates[f] =
                    na.fateCount(static_cast<Fate>(f));
        }
    }
    return snap;
}

} // namespace psim::audit
