#include "sim/shard.hh"

namespace psim
{

namespace
{

/** Spin briefly, then yield: rounds are short but cores may be scarce. */
template <typename Pred>
void
waitUntil(Pred &&done)
{
    for (int i = 0; i < 1024; ++i) {
        if (done())
            return;
    }
    while (!done())
        std::this_thread::yield();
}

} // namespace

ShardGang::ShardGang(unsigned nshards, std::function<void(unsigned)> body)
    : _nshards(nshards), _body(std::move(body))
{
    _workers.reserve(nshards > 0 ? nshards - 1 : 0);
    for (unsigned s = 1; s < nshards; ++s)
        _workers.emplace_back([this, s] { workerLoop(s); });
}

ShardGang::~ShardGang()
{
    _stop.store(true, std::memory_order_release);
    for (auto &w : _workers)
        w.join();
}

void
ShardGang::workerLoop(unsigned shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        waitUntil([&] {
            return _stop.load(std::memory_order_acquire) ||
                   _round.load(std::memory_order_acquire) != seen;
        });
        if (_stop.load(std::memory_order_acquire))
            return;
        seen = _round.load(std::memory_order_acquire);
        _body(shard);
        _pending.fetch_sub(1, std::memory_order_release);
    }
}

void
ShardGang::runRound()
{
    // A zero-shard gang has no shards to run: body(0) would invoke the
    // callback for a shard that does not exist.
    if (_nshards == 0)
        return;
    if (_nshards == 1) {
        _body(0);
        return;
    }
    _pending.store(_nshards - 1, std::memory_order_relaxed);
    _round.fetch_add(1, std::memory_order_release);
    _body(0);
    waitUntil([this] {
        return _pending.load(std::memory_order_acquire) == 0;
    });
}

} // namespace psim
