/**
 * @file
 * A serially-reusable resource (bus, link, memory bank).
 *
 * Models contention with a single "free at" horizon: a claimant asking at
 * tick t for o ticks of occupancy is granted max(t, freeAt) and pushes the
 * horizon to grant + o. FIFO with respect to request order, which matches
 * the deterministic event ordering of the global queue.
 */

#ifndef PSIM_SIM_RESOURCE_HH
#define PSIM_SIM_RESOURCE_HH

#include "sim/stats.hh"
#include "sim/types.hh"

namespace psim
{

class Resource
{
  public:
    /**
     * Claim the resource at @p now for @p occupancy ticks.
     * @return the tick at which the claimant actually starts.
     */
    Tick
    claim(Tick now, Tick occupancy)
    {
        Tick start = now > _freeAt ? now : _freeAt;
        _freeAt = start + occupancy;
        busyTicks += static_cast<double>(occupancy);
        waitTicks += static_cast<double>(start - now);
        ++claims;
        return start;
    }

    Tick freeAt() const { return _freeAt; }
    void reset() { _freeAt = 0; }

    /** Total ticks the resource was occupied. */
    stats::Scalar busyTicks;
    /** Total ticks claimants spent queued. */
    stats::Scalar waitTicks;
    /** Number of claims. */
    stats::Scalar claims;

  private:
    Tick _freeAt = 0;
};

} // namespace psim

#endif // PSIM_SIM_RESOURCE_HH
