/**
 * @file
 * Deterministic pseudo-random numbers (xoshiro256**).
 *
 * Every source of randomness in the simulator and the workloads draws
 * from a seeded Rng so that every table in the paper reproduction is
 * bit-identical across runs.
 */

#ifndef PSIM_SIM_RANDOM_HH
#define PSIM_SIM_RANDOM_HH

#include <cstdint>

namespace psim
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-initialize from a single seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : _s) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(below(
                static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace psim

#endif // PSIM_SIM_RANDOM_HH
