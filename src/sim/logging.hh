/**
 * @file
 * Error and status reporting, in the spirit of gem5's base/logging.hh.
 *
 * panic()  -- an internal invariant was violated (simulator bug); aborts.
 * fatal()  -- the user asked for something impossible (bad config); exits.
 * warn()   -- something looks dubious but simulation continues.
 * inform() -- plain status output.
 */

#ifndef PSIM_SIM_LOGGING_HH
#define PSIM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace psim
{

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace psim

#define psim_panic(...) \
    ::psim::panicImpl(__FILE__, __LINE__, ::psim::strfmt(__VA_ARGS__))

#define psim_fatal(...) \
    ::psim::fatalImpl(__FILE__, __LINE__, ::psim::strfmt(__VA_ARGS__))

#define psim_warn(...) ::psim::warnImpl(::psim::strfmt(__VA_ARGS__))

#define psim_inform(...) ::psim::informImpl(::psim::strfmt(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define psim_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::psim::panicImpl(__FILE__, __LINE__,                            \
                    std::string("assertion failed: " #cond " ") +            \
                    ::psim::strfmt("" __VA_ARGS__));                         \
        }                                                                    \
    } while (0)

#endif // PSIM_SIM_LOGGING_HH
