/**
 * @file
 * Strict numeric parsing for command-line flag values.
 *
 * The benches originally fed flag values straight into strtoul(),
 * which silently accepts trailing garbage ("--shards 4x" ran 4
 * shards), leading whitespace, a *minus sign* (the value wraps to a
 * huge unsigned), and out-of-range values (which wrap through the
 * unsigned cast). These helpers accept exactly the strings that are
 * nonempty runs of decimal digits within range, and fatal() -- naming
 * the flag -- on everything else.
 */

#ifndef PSIM_SIM_PARSE_HH
#define PSIM_SIM_PARSE_HH

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace psim
{

/**
 * Parse @p v as an unsigned decimal integer in [0, @p max]. Strict:
 * every character must be a decimal digit (no sign, no whitespace, no
 * suffix) and the value must fit. fatal() otherwise, blaming @p what
 * (typically the flag name, e.g. "--shards").
 */
inline unsigned long long
parseUnsignedStrict(const char *what, const std::string &v,
                    unsigned long long max =
                            std::numeric_limits<unsigned long long>::max())
{
    if (v.empty())
        psim_fatal("%s: empty value (expected an unsigned integer)", what);
    for (char c : v) {
        if (c < '0' || c > '9')
            psim_fatal("%s: '%s' is not an unsigned integer "
                       "(offending character '%c')", what, v.c_str(), c);
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (errno == ERANGE || n > max)
        psim_fatal("%s: %s is out of range (maximum %llu)", what, v.c_str(),
                   max);
    return n;
}

/** parseUnsignedStrict() narrowed to unsigned. */
inline unsigned
parseUnsignedFlag(const char *what, const std::string &v)
{
    return static_cast<unsigned>(parseUnsignedStrict(
            what, v, std::numeric_limits<unsigned>::max()));
}

/** parseUnsignedStrict() for tick counts. */
inline Tick
parseTickFlag(const char *what, const std::string &v)
{
    return static_cast<Tick>(parseUnsignedStrict(
            what, v, std::numeric_limits<Tick>::max()));
}

} // namespace psim

#endif // PSIM_SIM_PARSE_HH
