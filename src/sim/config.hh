/**
 * @file
 * Machine configuration.
 *
 * Defaults reproduce Table 1 of the paper: 16 processors, 4 KB FLC,
 * 32 B blocks, infinite SLC, 4 KB pages allocated round-robin, a 256-bit
 * 33 MHz local bus, 90 ns memory and a 4x4 wormhole mesh at 100 MHz with
 * 32-bit flits and a 3-cycle node fall-through.
 */

#ifndef PSIM_SIM_CONFIG_HH
#define PSIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace psim
{

/** Which prefetching scheme the SLCs run. */
enum class PrefetchScheme
{
    None,       ///< baseline architecture, no prefetching
    Sequential, ///< prefetch the next d consecutive blocks
    IDet,       ///< RPT-based stride prefetching (Baer/Chen style)
    DDet,       ///< Hagersten data-address stride detection
    Adaptive,   ///< sequential with usefulness-adapted degree (Sec. 6)
    IDetLookahead, ///< Baer/Chen lookahead-PC stride scheme (Sec. 6)
    MultiStride, ///< RPT tracking several concurrent strides per PC
    PtrChase,   ///< content-directed pointer/index chase over a base scheme
    Perceptron, ///< perceptron-gated filter wrapping a base scheme
};

/** Human-readable scheme name as used in the paper's figures. */
const char *toString(PrefetchScheme s);

/**
 * Parse a scheme name. Accepts every canonical name and alias from the
 * scheme registry (see kSchemeNames in config.cc); schemeNames() prints
 * the same set. Currently: "none"/"baseline", "seq"/"sequential",
 * "idet"/"i-det", "ddet"/"d-det", "adaptive"/"adaptive-seq",
 * "idet-la"/"i-det-la"/"lookahead", "mstride"/"m-stride"/"multi-stride",
 * "chase"/"ptr-chase"/"pointer-chase", "ptron"/"perceptron".
 * Unknown names are fatal and list the valid set.
 */
PrefetchScheme parseScheme(const std::string &name);

/**
 * Comma-separated list of every canonical scheme name, generated from
 * the same registry parseScheme() and toString() use (error messages,
 * usage strings).
 */
std::string schemeNames();

/**
 * Default for MachineConfig::audit: true when the build has the audit
 * layer compiled in (PSIM_AUDIT CMake option) and the PSIM_AUDIT
 * environment variable is set to a value other than "0" -- so CI can
 * run every bench and test under the audit without code changes.
 */
bool auditDefault();

struct PrefetchConfig
{
    PrefetchScheme scheme = PrefetchScheme::None;

    /** Degree of prefetching d; the paper's headline results use 1. */
    unsigned degree = 1;

    /** RPT entries (I-detection); paper: 256, direct-mapped. */
    unsigned rptEntries = 256;

    /** Entries in each of Hagersten's four tables; paper: 16, LRU. */
    unsigned ddetEntries = 16;

    /**
     * Occurrences of a stride before it is recorded as common
     * (D-detection); paper: 3.
     */
    unsigned strideThreshold = 3;

    /** Maximum degree for the adaptive sequential scheme. */
    unsigned adaptiveMaxDegree = 8;

    /**
     * Strides the virtual lookahead PC runs ahead of the processor
     * (lookahead I-detection variant).
     */
    unsigned lookaheadStrides = 2;

    /** Prefetch outcomes per adaptation decision (adaptive scheme). */
    unsigned adaptiveWindow = 16;

    // ---- Post-paper schemes (ROADMAP item 2) ----

    /** Concurrent (stride, confidence) ways per PC (multi-stride RPT). */
    unsigned mstrideWays = 4;

    /** Confidence a way needs before its stride is prefetched. */
    unsigned mstrideConf = 2;

    /**
     * Maximum chained prefetch-fill depth for the pointer-chase scheme:
     * 1 chases only from demand-visible blocks, d allows a prefetched
     * block's content to trigger further chases d - 1 more times.
     */
    unsigned chaseDepth = 2;

    /** Indirect-pattern table entries (pointer-chase), power of two. */
    unsigned chaseEntries = 64;

    /**
     * Conventional scheme the chase prefetcher runs on top of --
     * content-directed candidates augment, not replace, a streaming
     * scheme. Must not itself be a wrapper scheme.
     */
    PrefetchScheme chaseBase = PrefetchScheme::Sequential;

    /** Scheme whose candidates the perceptron filter gates. */
    PrefetchScheme ptronBase = PrefetchScheme::Sequential;

    /** Perceptron training threshold (weights train while |sum| <= theta). */
    unsigned ptronTheta = 8;
};

/**
 * Fault-injection hooks for the differential checker's self-tests.
 * All-zero (the default) means every hook is inert; a period-N hook
 * fires on every Nth opportunity. The hooks are honored only when the
 * PSIM_TEST_HOOKS CMake option compiled them in, and they exist for
 * exactly one purpose: proving that check::Oracle rejects a machine
 * that returns wrong data (tests/test_check.cc). Nothing else may set
 * them.
 */
struct TestHooks
{
    /** Flip a bit in every Nth load value a processor consumes. */
    unsigned corruptReadPeriod = 0;

    /** Silently drop every Nth functional store (timing unchanged). */
    unsigned dropStorePeriod = 0;

    /** Let every Nth prefetch candidate bypass the page-cross filter. */
    unsigned allowPageCrossPeriod = 0;
};

/**
 * Knobs for the server workload suite (kvstore, hashjoin, bfs,
 * logappend): the request-driven front end layered on the paper's
 * machine. All requests are pure functions of (seed, thread, request
 * index) -- see src/apps/reqgen.hh -- so these knobs, not wall-clock
 * or machine state, fully determine every stream.
 */
struct ServerConfig
{
    /**
     * Zipf skew of key popularity, in [0, 1): 0 is uniform, 0.99 is
     * YCSB's default hot-key skew.
     */
    double zipfTheta = 0.99;

    /**
     * Per-thread request count (kvstore/hashjoin/logappend) or query
     * count (bfs). 0 picks each workload's scale-dependent default.
     */
    std::uint64_t requests = 0;

    /**
     * Mean open-loop inter-arrival think gap in pclocks. The actual
     * gap per request is uniform in [1, 2*interArrival - 1]; 0
     * disables arrival gaps entirely (closed-loop saturation).
     */
    Tick interArrival = 16;
};

struct MachineConfig
{
    /** Number of processing nodes; paper: 16 (4x4 mesh). */
    unsigned numProcs = 16;

    /** Cache block size for both FLC and SLC; paper: 32 bytes. */
    unsigned blockSize = 32;

    /** First-level cache size; paper: 4 Kbyte, direct-mapped. */
    unsigned flcSize = 4096;

    /**
     * Second-level cache size in bytes; 0 means infinite (the paper's
     * default). Section 5.3 uses 16 Kbyte direct-mapped.
     */
    unsigned slcSize = 0;

    /** SLC associativity when finite; paper: direct-mapped. */
    unsigned slcAssoc = 1;

    /** Virtual-memory page size; paper: 4 Kbyte, round-robin homes. */
    unsigned pageSize = 4096;

    /** First-level write buffer entries; paper: 8. */
    unsigned flwbEntries = 8;

    /** Second-level write buffer (pending-transaction) entries; paper: 16. */
    unsigned slwbEntries = 16;

    // ---- Timing (ticks are pclocks; 1 pclock = 10 ns) ----

    /** FLC read hit; paper: 1 pclock. */
    Tick flcReadLat = 1;

    /** FLC fill time; paper: 3 pclocks. */
    Tick flcFillLat = 3;

    /** SLC SRAM access; paper: 30 ns = 3 pclocks. */
    Tick slcAccessLat = 3;

    /**
     * Latency from FLC miss detection to the request being presented to
     * the SLC (FLWB traversal). Calibrated so an SLC hit totals the
     * paper's 6 pclocks: 1 (FLC) + 1 (FLWB) + 3 (SRAM) + 1 (return).
     */
    Tick flwbLat = 1;

    /** Returning data from SLC to the processor. */
    Tick slcToCpuLat = 1;

    /** DRAM access time; paper: 90 ns = 9 pclocks. */
    Tick memAccessLat = 9;

    /** Directory state lookup/update overhead at the home memory. */
    Tick dirLat = 1;

    /** Local split-transaction bus cycle; paper: 33 MHz = 3 pclocks. */
    Tick busCycle = 3;

    /**
     * Bus cycles for one transaction phase. The bus is 256 bits wide, so
     * one address phase and one data phase (32 B block) each take a
     * single bus cycle. Calibrated so a clean local-memory read totals
     * the paper's 28 pclocks (see tests/test_latency.cc).
     */
    unsigned busPhaseCycles = 1;

    // ---- Network (paper Section 4) ----

    /** Mesh columns (4x4 for 16 nodes). */
    unsigned meshCols = 4;

    /** Flit size in bits; paper: 32. */
    unsigned flitBits = 32;

    /** Node fall-through latency in network cycles; paper: 3. */
    Tick fallThrough = 3;

    /** Network clock in pclocks per cycle; paper: 100 MHz = 1 pclock. */
    Tick netCycle = 1;

    /** Header flits on every message (routing + command + address). */
    unsigned headerFlits = 2;

    // ---- Consistency & protocol options ----

    /**
     * Sequential consistency: stores stall the processor until they
     * are globally performed. The paper assumes release consistency
     * (citing Gharachorloo et al. [11]); this switch quantifies why.
     */
    bool sequentialConsistency = false;

    /**
     * Migratory-sharing optimization at the directory (the protocol
     * extension the authors combine with prefetching in their ISCA'94
     * companion paper): blocks observed to migrate between writers are
     * handed to readers in exclusive state, eliminating the upgrade.
     */
    bool migratoryOpt = false;

    /**
     * Run the invariant-audit layer (sim/audit.hh): per-node prefetch
     * lifecycle conservation, coherence cross-checks on every message
     * receive, and quiesce-time machine checks. Defaults to the
     * PSIM_AUDIT environment variable; costs a hash lookup per audited
     * event when on, nothing when off.
     */
    bool audit = auditDefault();

    /** Fault injection for oracle self-tests; inert by default. */
    TestHooks testHooks;

    // ---- Execution engine ----

    /**
     * 0 (default): the classic serial event engine, byte-identical to
     * every earlier release. N >= 1: the windowed parallel engine with
     * N shards (clamped to numProcs), whose deterministic
     * (tick, owner, counter) event order is identical at every shard
     * count -- `shards = 1` is the single-threaded reference for
     * `shards = 8`. The two engines order same-tick events differently,
     * so their statistics are compared within a mode, not across modes.
     */
    unsigned shards = 0;

    // ---- Prefetching ----

    PrefetchConfig prefetch;

    // ---- Server workload suite ----

    ServerConfig server;

    /** PRNG seed so runs are reproducible. */
    std::uint64_t seed = 12345;

    // ---- Derived helpers ----

    Addr blockAddr(Addr a) const { return alignDown(a, blockSize); }
    Addr pageAddr(Addr a) const { return alignDown(a, pageSize); }

    /** Home node of the page containing @p a (round-robin placement). */
    NodeId
    homeOf(Addr a) const
    {
        return static_cast<NodeId>((a / pageSize) % numProcs);
    }

    /** Number of flits in a message carrying @p payload_bytes of data. */
    unsigned
    flitsFor(unsigned payload_bytes) const
    {
        unsigned flit_bytes = flitBits / 8;
        return headerFlits + (payload_bytes + flit_bytes - 1) / flit_bytes;
    }

    unsigned meshRows() const { return numProcs / meshCols; }

    /** Validate internal consistency; fatal() on bad user configs. */
    void validate() const;
};

/**
 * The mesh-column count a `--procs N` override gets: N divided by its
 * largest divisor no greater than sqrt(N) -- the squarest mesh the
 * count allows (so 16 -> 4x4, 12 -> 3x4, 8 -> 2x4).
 */
unsigned squarestMeshCols(unsigned procs);

/**
 * Apply a processor-count override to @p cfg: sets numProcs and the
 * squarest mesh shape per squarestMeshCols(). Prime and other awkward
 * counts only tile as a degenerate near-chain (7 -> 1x7); that mesh
 * has very different distance and congestion behaviour from a 2-D
 * grid, so a loud warning names the chosen shape instead of silently
 * skewing the results (see EXPERIMENTS.md, "Choosing --procs").
 */
void applyProcCount(MachineConfig &cfg, unsigned procs);

} // namespace psim

#endif // PSIM_SIM_CONFIG_HH
