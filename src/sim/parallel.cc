#include "sim/parallel.hh"

#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace psim
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    _threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(_mx);
        _stop = true;
    }
    _wake.notify_all();
    for (auto &t : _threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(_mx);
        psim_assert(!_stop, "submit to a stopped thread pool");
        _queue.push_back(std::move(job));
        ++_inflight;
    }
    _wake.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(_mx);
    _drained.wait(lk, [this] { return _inflight == 0; });
    if (_error) {
        std::exception_ptr e = _error;
        _error = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(_mx);
    for (;;) {
        _wake.wait(lk, [this] { return _stop || !_queue.empty(); });
        if (_queue.empty())
            return; // stopping and drained
        std::function<void()> job = std::move(_queue.front());
        _queue.pop_front();
        lk.unlock();
        std::exception_ptr err;
        try {
            job();
        } catch (...) {
            err = std::current_exception();
        }
        lk.lock();
        if (err && !_error)
            _error = err;
        if (--_inflight == 0)
            _drained.notify_all();
    }
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PSIM_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        psim_warn("ignoring invalid PSIM_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
runGrid(std::size_t n, unsigned jobs,
        const std::function<void(std::size_t)> &fn)
{
    if (jobs > n)
        jobs = static_cast<unsigned>(n);
    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace psim
