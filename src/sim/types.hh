/**
 * @file
 * Fundamental simulation types shared by every psim subsystem.
 *
 * The simulator is clocked in processor clocks ("pclocks"); one Tick is
 * one pclock, i.e. 10 ns at the paper's 100 MHz processor clock. The
 * slower clock domains (33 MHz local bus, 90 ns DRAM) are expressed as
 * integer multiples of the pclock.
 */

#ifndef PSIM_SIM_TYPES_HH
#define PSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace psim
{

/** Simulated time, in processor clocks (1 pclock = 10 ns). */
using Tick = std::uint64_t;

/** A simulated (virtual == physical) byte address in the shared space. */
using Addr = std::uint64_t;

/** Synthetic instruction address of a static load/store site. */
using Pc = std::uint64_t;

/** Identifier of a processing node (0..P-1). */
using NodeId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Sentinel address. */
constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Sentinel node. */
constexpr NodeId kNodeNone = std::numeric_limits<NodeId>::max();

/**
 * Align an address down to the enclosing aligned chunk of @p size bytes.
 * @pre size is a power of two.
 */
constexpr Addr
alignDown(Addr a, std::uint64_t size)
{
    return a & ~(size - 1);
}

/** True iff @p v is a nonzero power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for a power-of-two v. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace psim

#endif // PSIM_SIM_TYPES_HH
