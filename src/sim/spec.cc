#include "sim/spec.hh"

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <limits>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sys/node.hh"

namespace psim::spec
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
            .count();
}

/** Reject members outside @p allowed (strict spec parsing). */
void
checkKeys(const json::Members &members,
          std::initializer_list<const char *> allowed,
          const std::string &what)
{
    for (const auto &[key, value] : members) {
        bool known = false;
        for (const char *a : allowed) {
            if (key == a) {
                known = true;
                break;
            }
        }
        if (!known)
            psim_fatal("%s: unknown key '%s'", what.c_str(), key.c_str());
    }
}

const json::Value &
require(const json::Value &doc, const char *key, const std::string &what)
{
    const json::Value *v = doc.find(key);
    if (!v)
        psim_fatal("%s: missing required key '%s'", what.c_str(), key);
    return *v;
}

ConfigPatch
patchFromJson(const json::Value *v, const std::string &what)
{
    ConfigPatch patch;
    if (!v)
        return patch;
    for (const auto &[key, value] : v->asObject(what)) {
        if (!value.isBool() && !value.isNumber() && !value.isString())
            psim_fatal("%s: '%s' must be a scalar, not %s", what.c_str(),
                       key.c_str(), value.typeName());
        patch.emplace_back(key, value);
    }
    return patch;
}

RunOverrides
runFromJson(const json::Value *v, const std::string &what)
{
    RunOverrides run;
    if (!v)
        return run;
    checkKeys(v->asObject(what), {"characterize", "scale"}, what);
    if (const json::Value *c = v->find("characterize"))
        run.characterize = c->asBool(what + ": characterize");
    if (const json::Value *s = v->find("scale")) {
        auto n = s->asUnsigned(what + ": scale",
                               std::numeric_limits<unsigned>::max());
        if (n == 0)
            psim_fatal("%s: scale must be >= 1", what.c_str());
        run.scale = static_cast<unsigned>(n);
    }
    return run;
}

/** The cell-id fragment a bare scalar value derives. */
std::string
deriveId(const json::Value &scalar, const std::string &what)
{
    switch (scalar.type()) {
      case json::Value::Type::String:
        return scalar.asString(what);
      case json::Value::Type::Bool:
        return scalar.asBool(what) ? "true" : "false";
      case json::Value::Type::Number: {
        double n = scalar.asNumber(what);
        char buf[32];
        if (n == static_cast<double>(static_cast<long long>(n)))
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(n));
        else
            std::snprintf(buf, sizeof(buf), "%g", n);
        return buf;
      }
      default:
        psim_fatal("%s: a %s cannot derive a cell id", what.c_str(),
                   scalar.typeName());
    }
}

AxisValue
axisValueFromJson(const json::Value &v, const std::string &what)
{
    AxisValue av;
    if (v.isObject()) {
        checkKeys(v.asObject(what), {"value", "id", "label", "config", "run"},
                  what);
        if (const json::Value *scalar = v.find("value"))
            av.scalar = *scalar;
        av.config = patchFromJson(v.find("config"), what + ": config");
        av.run = runFromJson(v.find("run"), what + ": run");
        if (const json::Value *id = v.find("id"))
            av.id = id->asString(what + ": id");
        else if (!av.scalar.isNull())
            av.id = deriveId(av.scalar, what);
        else
            psim_fatal("%s: a value with no scalar needs an explicit "
                       "\"id\"", what.c_str());
        if (const json::Value *label = v.find("label"))
            av.label = label->asString(what + ": label");
        else
            av.label = av.id;
    } else {
        av.scalar = v;
        av.id = deriveId(v, what);
        av.label = av.id;
    }
    if (av.id.empty())
        psim_fatal("%s: empty cell-id fragment", what.c_str());
    return av;
}

/** One fully-resolved grid cell, ready to run. */
struct PlannedCell
{
    std::string id;
    std::vector<std::pair<std::string, std::string>> coords;
    std::string workload;
    MachineConfig cfg;
    RunOverrides run;
};

/**
 * Expand every group into cells (row-major, last axis fastest),
 * applying axis semantics and patches. fatal() on bad config keys or
 * values, and on cells with no application.
 */
std::vector<PlannedCell>
expand(const Spec &spec, const std::string &what)
{
    std::vector<PlannedCell> plan;
    for (std::size_t gi = 0; gi < spec.groups.size(); ++gi) {
        const Group &g = spec.groups[gi];
        MachineConfig group_cfg; // defaults are the paper's Table 1
        applyConfigPatch(group_cfg, spec.config, what + ": config");
        applyConfigPatch(group_cfg, g.config, what + ": group config");
        RunOverrides group_run = spec.run;
        group_run.merge(g.run);

        std::vector<std::size_t> idx(g.axes.size(), 0);
        bool more = true;
        while (more) {
            PlannedCell cell;
            cell.cfg = group_cfg;
            cell.run = group_run;
            for (std::size_t a = 0; a < g.axes.size(); ++a) {
                const Axis &axis = g.axes[a];
                const AxisValue &av = axis.values[idx[a]];
                const std::string vwhat = what + ": axis '" + axis.name +
                                          "' value '" + av.id + "'";
                if (!av.scalar.isNull()) {
                    if (axis.name == "app") {
                        cell.workload = av.scalar.asString(vwhat);
                    } else if (axis.name == "scheme") {
                        cell.cfg.prefetch.scheme =
                                parseScheme(av.scalar.asString(vwhat));
                    } else if (axis.name == "scale") {
                        auto n = av.scalar.asUnsigned(
                                vwhat,
                                std::numeric_limits<unsigned>::max());
                        if (n == 0)
                            psim_fatal("%s: scale must be >= 1",
                                       vwhat.c_str());
                        cell.run.scale = static_cast<unsigned>(n);
                    } else {
                        applyConfigKey(cell.cfg, axis.name, av.scalar,
                                       vwhat);
                    }
                }
                applyConfigPatch(cell.cfg, av.config, vwhat);
                cell.run.merge(av.run);
                cell.coords.emplace_back(axis.name, av.id);
                if (!cell.id.empty())
                    cell.id += '-';
                cell.id += av.id;
            }
            if (cell.workload.empty())
                psim_fatal("%s: cell '%s' has no application (give the "
                           "group an \"app\" axis)", what.c_str(),
                           cell.id.c_str());
            plan.push_back(std::move(cell));

            more = false;
            for (std::size_t a = g.axes.size(); a-- > 0;) {
                if (++idx[a] < g.axes[a].values.size()) {
                    more = true;
                    break;
                }
                idx[a] = 0;
            }
        }
    }
    return plan;
}

} // namespace

void
applyConfigKey(MachineConfig &cfg, const std::string &key,
               const json::Value &value, const std::string &what)
{
    const std::string ctx = what + ": '" + key + "'";
    auto u32 = [&] {
        return static_cast<unsigned>(value.asUnsigned(
                ctx, std::numeric_limits<unsigned>::max()));
    };
    auto tick = [&] {
        return static_cast<Tick>(value.asUnsigned(
                ctx, std::numeric_limits<Tick>::max()));
    };

    // Machine shape and capacities.
    if (key == "procs")
        applyProcCount(cfg, u32());
    else if (key == "blockSize")
        cfg.blockSize = u32();
    else if (key == "flcSize")
        cfg.flcSize = u32();
    else if (key == "slcSize")
        cfg.slcSize = u32();
    else if (key == "slcAssoc")
        cfg.slcAssoc = u32();
    else if (key == "pageSize")
        cfg.pageSize = u32();
    else if (key == "flwbEntries")
        cfg.flwbEntries = u32();
    else if (key == "slwbEntries")
        cfg.slwbEntries = u32();
    else if (key == "meshCols")
        cfg.meshCols = u32();
    else if (key == "flitBits")
        cfg.flitBits = u32();
    else if (key == "headerFlits")
        cfg.headerFlits = u32();
    else if (key == "busPhaseCycles")
        cfg.busPhaseCycles = u32();
    // Timing.
    else if (key == "flcReadLat")
        cfg.flcReadLat = tick();
    else if (key == "flcFillLat")
        cfg.flcFillLat = tick();
    else if (key == "slcAccessLat")
        cfg.slcAccessLat = tick();
    else if (key == "flwbLat")
        cfg.flwbLat = tick();
    else if (key == "slcToCpuLat")
        cfg.slcToCpuLat = tick();
    else if (key == "memAccessLat")
        cfg.memAccessLat = tick();
    else if (key == "dirLat")
        cfg.dirLat = tick();
    else if (key == "busCycle")
        cfg.busCycle = tick();
    else if (key == "fallThrough")
        cfg.fallThrough = tick();
    else if (key == "netCycle")
        cfg.netCycle = tick();
    // Protocol options.
    else if (key == "sequentialConsistency")
        cfg.sequentialConsistency = value.asBool(ctx);
    else if (key == "migratoryOpt")
        cfg.migratoryOpt = value.asBool(ctx);
    // Prefetching.
    else if (key == "scheme" || key == "prefetch.scheme")
        cfg.prefetch.scheme = parseScheme(value.asString(ctx));
    else if (key == "prefetch.degree")
        cfg.prefetch.degree = u32();
    else if (key == "prefetch.rptEntries")
        cfg.prefetch.rptEntries = u32();
    else if (key == "prefetch.ddetEntries")
        cfg.prefetch.ddetEntries = u32();
    else if (key == "prefetch.strideThreshold")
        cfg.prefetch.strideThreshold = u32();
    else if (key == "prefetch.adaptiveMaxDegree")
        cfg.prefetch.adaptiveMaxDegree = u32();
    else if (key == "prefetch.lookaheadStrides")
        cfg.prefetch.lookaheadStrides = u32();
    else if (key == "prefetch.adaptiveWindow")
        cfg.prefetch.adaptiveWindow = u32();
    else if (key == "prefetch.mstrideWays")
        cfg.prefetch.mstrideWays = u32();
    else if (key == "prefetch.mstrideConf")
        cfg.prefetch.mstrideConf = u32();
    else if (key == "prefetch.chaseDepth")
        cfg.prefetch.chaseDepth = u32();
    else if (key == "prefetch.chaseEntries")
        cfg.prefetch.chaseEntries = u32();
    else if (key == "prefetch.chaseBase")
        cfg.prefetch.chaseBase = parseScheme(value.asString(ctx));
    else if (key == "prefetch.ptronBase")
        cfg.prefetch.ptronBase = parseScheme(value.asString(ctx));
    else if (key == "prefetch.ptronTheta")
        cfg.prefetch.ptronTheta = u32();
    // Server workload suite.
    else if (key == "server.zipfTheta")
        cfg.server.zipfTheta = value.asNumber(ctx);
    else if (key == "server.requests")
        cfg.server.requests = value.asUnsigned(
                ctx, std::numeric_limits<std::uint64_t>::max());
    else if (key == "server.interArrival")
        cfg.server.interArrival = tick();
    else if (key == "seed")
        cfg.seed = value.asUnsigned(
                ctx, std::numeric_limits<std::uint64_t>::max());
    else
        psim_fatal("%s: unknown machine-config key '%s'", what.c_str(),
                   key.c_str());
}

void
applyConfigPatch(MachineConfig &cfg, const ConfigPatch &patch,
                 const std::string &what)
{
    for (const auto &[key, value] : patch)
        applyConfigKey(cfg, key, value, what);
}

std::size_t
Spec::groupOffset(std::size_t group) const
{
    std::size_t off = 0;
    for (std::size_t g = 0; g < group; ++g)
        off += groups.at(g).cells();
    return off;
}

std::size_t
Spec::cellIndex(std::size_t group,
                std::initializer_list<std::size_t> idx) const
{
    const Group &g = groups.at(group);
    if (idx.size() != g.axes.size())
        psim_fatal("spec '%s': cellIndex got %zu indices for %zu axes",
                   name.c_str(), idx.size(), g.axes.size());
    std::size_t n = 0;
    std::size_t a = 0;
    for (std::size_t i : idx) {
        const std::size_t count = g.axes[a].values.size();
        if (i >= count)
            psim_fatal("spec '%s': index %zu out of range for axis '%s'",
                       name.c_str(), i, g.axes[a].name.c_str());
        n = n * count + i;
        ++a;
    }
    return groupOffset(group) + n;
}

const Axis &
Spec::axis(std::size_t group, const std::string &axis_name) const
{
    for (const Axis &a : groups.at(group).axes) {
        if (a.name == axis_name)
            return a;
    }
    psim_fatal("spec '%s': group %zu has no axis '%s'", name.c_str(), group,
               axis_name.c_str());
}

void
Spec::overrideApps(const std::vector<std::string> &apps)
{
    if (apps.empty())
        return;
    for (Group &g : groups) {
        for (Axis &a : g.axes) {
            if (a.name != "app")
                continue;
            a.values.clear();
            for (const std::string &app : apps) {
                AxisValue av;
                av.id = app;
                av.label = app;
                av.scalar = json::Value(app);
                a.values.push_back(std::move(av));
            }
        }
    }
}

Spec
parseSpec(const json::Value &doc, const std::string &what)
{
    Spec spec;
    checkKeys(doc.asObject(what),
              {"schema", "name", "report", "config", "run", "grid"}, what);

    const std::string schema =
            require(doc, "schema", what).asString(what + ": schema");
    if (schema != "psim-spec-v1")
        psim_fatal("%s: unsupported schema '%s' (expected psim-spec-v1)",
                   what.c_str(), schema.c_str());
    spec.name = require(doc, "name", what).asString(what + ": name");
    spec.report = require(doc, "report", what).asString(what + ": report");
    if (spec.name.empty() || spec.report.empty())
        psim_fatal("%s: name and report must be nonempty", what.c_str());
    spec.config = patchFromJson(doc.find("config"), what + ": config");
    spec.run = runFromJson(doc.find("run"), what + ": run");

    const auto &grid =
            require(doc, "grid", what).asArray(what + ": grid");
    if (grid.empty())
        psim_fatal("%s: grid must have at least one group", what.c_str());
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        const std::string gwhat = what + ": grid[" + std::to_string(gi) + "]";
        checkKeys(grid[gi].asObject(gwhat), {"config", "run", "axes"}, gwhat);
        Group group;
        group.config = patchFromJson(grid[gi].find("config"),
                                     gwhat + ".config");
        group.run = runFromJson(grid[gi].find("run"), gwhat + ".run");
        const auto &axes = require(grid[gi], "axes", gwhat)
                                   .asArray(gwhat + ".axes");
        if (axes.empty())
            psim_fatal("%s: axes must be nonempty", gwhat.c_str());
        for (std::size_t ai = 0; ai < axes.size(); ++ai) {
            const std::string awhat =
                    gwhat + ".axes[" + std::to_string(ai) + "]";
            checkKeys(axes[ai].asObject(awhat), {"name", "values"}, awhat);
            Axis axis;
            axis.name = require(axes[ai], "name", awhat)
                                .asString(awhat + ".name");
            if (axis.name.empty())
                psim_fatal("%s: axis name must be nonempty", awhat.c_str());
            const auto &values = require(axes[ai], "values", awhat)
                                         .asArray(awhat + ".values");
            if (values.empty())
                psim_fatal("%s: values must be nonempty", awhat.c_str());
            for (std::size_t vi = 0; vi < values.size(); ++vi)
                axis.values.push_back(axisValueFromJson(
                        values[vi],
                        awhat + ".values[" + std::to_string(vi) + "]"));
            group.axes.push_back(std::move(axis));
        }
        spec.groups.push_back(std::move(group));
    }

    // Dry-run the full expansion now: every config key, scheme name and
    // app/scale value is checked, every expanded machine validates, and
    // cell ids are unique -- a bad spec dies before any cell runs.
    std::unordered_set<std::string> ids;
    for (const PlannedCell &cell : expand(spec, what)) {
        cell.cfg.validate();
        if (!ids.insert(cell.id).second)
            psim_fatal("%s: duplicate cell id '%s' (give axis values "
                       "distinct \"id\"s)", what.c_str(), cell.id.c_str());
    }
    return spec;
}

Spec
loadSpec(const std::string &path)
{
    Spec spec = parseSpec(json::loadFile(path), path);
    std::string base = path;
    if (std::size_t slash = base.find_last_of('/');
        slash != std::string::npos)
        base = base.substr(slash + 1);
    if (base.size() > 5 && base.compare(base.size() - 5, 5, ".json") == 0)
        base = base.substr(0, base.size() - 5);
    if (spec.name != base)
        psim_fatal("%s: spec name '%s' does not match the file name "
                   "(rename one of them)", path.c_str(), spec.name.c_str());
    return spec;
}

Results
runSpec(const Spec &spec, const ExecOptions &exec)
{
    const std::string what = "spec '" + spec.name + "'";
    std::vector<PlannedCell> plan = expand(spec, what);
    for (PlannedCell &cell : plan) {
        if (exec.procs)
            applyProcCount(cell.cfg, exec.procs);
        cell.cfg.shards = exec.shards;
        cell.cfg.validate();
    }

    Results out;
    out.jobs = resolveJobs(exec.jobs);
    out.cells.resize(plan.size());
    const auto t0 = std::chrono::steady_clock::now();
    runGrid(plan.size(), out.jobs, [&](std::size_t i) {
        const PlannedCell &cell = plan[i];
        apps::RunOptions ropts;
        ropts.characterize = cell.run.characterize.value_or(false);
        ropts.scale = cell.run.scale.value_or(1);
        exec.obs.apply(ropts, cell.id);

        const auto c0 = std::chrono::steady_clock::now();
        apps::Run run = apps::runWorkload(cell.workload, cell.cfg, ropts);
        if (!run.finished)
            psim_fatal("cell '%s': %s did not run to completion",
                       cell.id.c_str(), cell.workload.c_str());
        if (!run.verified)
            psim_fatal("cell '%s': %s failed numerical verification",
                       cell.id.c_str(), cell.workload.c_str());

        CellResult r;
        r.id = cell.id;
        r.coords = cell.coords;
        r.metrics = run.metrics;
        for (unsigned n = 0; n < run.machine->numProcs(); ++n) {
            Node &node = run.machine->node(static_cast<NodeId>(n));
            r.writeStall += node.cpu().writeStall.value();
            r.upgrades += node.slc().upgrades.value();
            r.migratoryGrants += node.mem().migratoryGrants.value();
        }
        const Slc &slc0 = run.machine->node(0).slc();
        r.node0DemandReadMisses = slc0.demandReadMisses.value();
        r.node0ReplacementMisses = slc0.missesReplacement.value();
        if (ropts.characterize) {
            r.characterized = true;
            r.characterizer = run.machine->characterizer(0)->finalize();
        }
        r.wallSeconds = secondsSince(c0);
        out.cells[i] = std::move(r);
    });
    out.wallSeconds = secondsSince(t0);
    return out;
}

std::string
resultsDocument(const Spec &spec, const ExecOptions &exec,
                const Results &results)
{
    json::Value doc = json::Value::makeObject();
    doc.set("schema", "psim-results-v1");
    doc.set("name", spec.name);
    doc.set("report", spec.report);

    json::Value run = json::Value::makeObject();
    run.set("jobs", results.jobs);
    run.set("shards", exec.shards);
    run.set("procs", exec.procs);
    run.set("wall_seconds", results.wallSeconds);
    doc.set("run", std::move(run));

    json::Value cells = json::Value::makeArray();
    for (const CellResult &c : results.cells) {
        json::Value cell = json::Value::makeObject();
        cell.set("id", c.id);
        json::Value coords = json::Value::makeObject();
        for (const auto &[axis, id] : c.coords)
            coords.set(axis, id);
        cell.set("coords", std::move(coords));
        cell.set("wall_seconds", c.wallSeconds);

        json::Value m = json::Value::makeObject();
        m.set("exec_ticks",
              static_cast<unsigned long long>(c.metrics.execTicks));
        m.set("reads", c.metrics.reads);
        m.set("writes", c.metrics.writes);
        m.set("slc_reads", c.metrics.slcReads);
        m.set("read_misses", c.metrics.readMisses);
        m.set("read_stall", c.metrics.readStall);
        m.set("misses_cold", c.metrics.missesCold);
        m.set("misses_coherence", c.metrics.missesCoherence);
        m.set("misses_replacement", c.metrics.missesReplacement);
        m.set("pf_issued", c.metrics.pfIssued);
        m.set("pf_useful", c.metrics.pfUseful);
        m.set("prefetch_efficiency", c.metrics.prefetchEfficiency());
        m.set("flits", c.metrics.flits);
        m.set("bus_transactions", c.metrics.busTransactions);
        m.set("write_stall", c.writeStall);
        m.set("upgrades", c.upgrades);
        m.set("migratory_grants", c.migratoryGrants);
        m.set("node0_demand_read_misses", c.node0DemandReadMisses);
        m.set("node0_replacement_misses", c.node0ReplacementMisses);
        cell.set("metrics", std::move(m));

        if (c.characterized) {
            const StrideCharacterizer::Report &rep = c.characterizer;
            json::Value ch = json::Value::makeObject();
            ch.set("total_misses",
                   static_cast<unsigned long long>(rep.totalMisses));
            ch.set("stride_misses",
                   static_cast<unsigned long long>(rep.strideMisses));
            ch.set("num_sequences",
                   static_cast<unsigned long long>(rep.numSequences));
            ch.set("stride_fraction", rep.strideFraction);
            ch.set("avg_sequence_length", rep.avgSequenceLength);
            json::Value top = json::Value::makeArray();
            std::size_t shown = 0;
            for (const auto &[stride, fraction] : rep.topStrides) {
                if (shown++ == 8)
                    break;
                json::Value entry = json::Value::makeObject();
                entry.set("stride", static_cast<long long>(stride));
                entry.set("fraction", fraction);
                top.append(std::move(entry));
            }
            ch.set("top_strides", std::move(top));
            cell.set("characterizer", std::move(ch));
        }
        cells.append(std::move(cell));
    }
    doc.set("cells", std::move(cells));
    return json::serialize(doc) + "\n";
}

namespace
{

json::Value
scrubValue(const json::Value &v)
{
    if (v.isObject()) {
        json::Value out = json::Value::makeObject();
        for (const auto &[key, member] : v.asObject("results document")) {
            if (key == "jobs" || key == "shards" || key == "procs" ||
                key == "wall_seconds")
                out.set(key, 0);
            else
                out.set(key, scrubValue(member));
        }
        return out;
    }
    if (v.isArray()) {
        json::Value out = json::Value::makeArray();
        for (const json::Value &member : v.asArray("results document"))
            out.append(scrubValue(member));
        return out;
    }
    return v;
}

} // namespace

std::string
scrubVolatile(const std::string &doc)
{
    return json::serialize(scrubValue(json::parse(doc, "results document"))) +
           "\n";
}

} // namespace psim::spec
