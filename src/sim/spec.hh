/**
 * @file
 * Declarative experiment specs.
 *
 * One JSON document (schema `psim-spec-v1`, see scripts/spec_schema.json
 * and the files under specs/) describes a whole table/figure grid: config
 * overrides x prefetching schemes x workloads, organized as groups of
 * crossed axes. The spec is parsed strictly -- unknown keys, unknown
 * machine-config fields, and type mismatches are fatal -- expanded into
 * independent cells, executed through the runGrid() parallel runner,
 * and the measured cells are emitted as one canonical `psim-results-v1`
 * document (scripts/results_schema.json) that golden `BENCH_*.json`
 * snapshots and scripts/diff_results.py regression-gate in CI.
 *
 * The bench layer (bench/run_spec + the thin legacy shims) adds the
 * table renderers that turn a Results into the paper's printed layout;
 * everything in this header is presentation-free grid plumbing.
 *
 * ## Spec format
 *
 * ```json
 * {
 *   "schema": "psim-spec-v1",
 *   "name": "fig6",                // must match the file's basename
 *   "report": "fig6",              // renderer id (bench/render.cc)
 *   "config": { ... },             // machine overrides for every cell
 *   "run": {"characterize": true, "scale": 2},      // run options
 *   "grid": [
 *     {
 *       "config": { ... },         // group-level overrides
 *       "axes": [
 *         {"name": "app", "values": ["lu", "ocean"]},
 *         {"name": "scheme", "values": ["none", "seq"]},
 *         {"name": "prefetch.degree", "values": [1, 2, 4]}
 *       ]
 *     }
 *   ]
 * }
 * ```
 *
 * Axis semantics, applied to each cell in axis order:
 *  - "app": the workload (values must be strings);
 *  - "scheme": cfg.prefetch.scheme via parseScheme();
 *  - "scale": the workload scale factor (run option);
 *  - any machine-config key ("blockSize", "slcSize", "prefetch.degree",
 *    "sequentialConsistency", ...): that field is set to the value.
 *
 * A value may also be an object {"value": ..., "id": "...", "label":
 * "...", "config": {...}, "run": {...}}: the optional scalar keeps the
 * axis semantics, the patches stack on top, and id/label override the
 * derived cell-id fragment and display label. An object with no
 * "value" applies only its patches, which makes the axis name purely
 * descriptive ("variant", "point") -- that is how heterogeneous
 * sweeps like sensitivity points are declared.
 *
 * Cells expand row-major (the last axis varies fastest), groups in
 * order; a cell's id is its axis fragments joined with '-'.
 */

#ifndef PSIM_SIM_SPEC_HH
#define PSIM_SIM_SPEC_HH

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/driver.hh"
#include "core/characterizer.hh"
#include "sim/json.hh"
#include "sys/machine.hh"

namespace psim::spec
{

/** Machine-config overrides as ordered (key, value) pairs. */
using ConfigPatch = std::vector<std::pair<std::string, json::Value>>;

/**
 * Set one machine-config field by key ("blockSize", "prefetch.degree",
 * "sequentialConsistency", ...). fatal() -- blaming @p what -- on an
 * unknown key or a value of the wrong type.
 */
void applyConfigKey(MachineConfig &cfg, const std::string &key,
                    const json::Value &value, const std::string &what);

/** Apply every entry of @p patch in order. */
void applyConfigPatch(MachineConfig &cfg, const ConfigPatch &patch,
                      const std::string &what);

/** The spec'able subset of apps::RunOptions. */
struct RunOverrides
{
    std::optional<bool> characterize;
    std::optional<unsigned> scale;

    /** Overlay @p other on top of this (other wins where set). */
    void
    merge(const RunOverrides &other)
    {
        if (other.characterize)
            characterize = other.characterize;
        if (other.scale)
            scale = other.scale;
    }

    void
    apply(apps::RunOptions &opts) const
    {
        if (characterize)
            opts.characterize = *characterize;
        if (scale)
            opts.scale = *scale;
    }
};

/** One point along an axis. */
struct AxisValue
{
    std::string id;     ///< cell-id fragment
    std::string label;  ///< display label (defaults to id)
    json::Value scalar; ///< the semantic payload; null when patch-only
    ConfigPatch config;
    RunOverrides run;
};

struct Axis
{
    std::string name;
    std::vector<AxisValue> values;
};

/** A crossed block of axes sharing group-level overrides. */
struct Group
{
    ConfigPatch config;
    RunOverrides run;
    std::vector<Axis> axes;

    std::size_t
    cells() const
    {
        std::size_t n = 1;
        for (const Axis &a : axes)
            n *= a.values.size();
        return n;
    }
};

struct Spec
{
    std::string name;
    std::string report;
    ConfigPatch config;
    RunOverrides run;
    std::vector<Group> groups;

    std::size_t
    cellCount() const
    {
        std::size_t n = 0;
        for (const Group &g : groups)
            n += g.cells();
        return n;
    }

    /** Flat index of @p group's first cell. */
    std::size_t groupOffset(std::size_t group) const;

    /** Flat index of the cell at @p idx (one index per axis). */
    std::size_t cellIndex(std::size_t group,
                          std::initializer_list<std::size_t> idx) const;

    /** The named axis of @p group; fatal() when absent. */
    const Axis &axis(std::size_t group, const std::string &name) const;

    /**
     * Replace the values of every "app" axis with @p apps -- the
     * --apps override, for reduced smoke grids.
     */
    void overrideApps(const std::vector<std::string> &apps);
};

/**
 * Parse and strictly validate a psim-spec-v1 document. Unknown keys
 * anywhere, bad types, empty grids/axes, unknown machine-config keys
 * and groups without an app axis are all fatal, with @p what (file
 * name) in the message.
 */
Spec parseSpec(const json::Value &doc, const std::string &what);

/** Load @p path and parseSpec() it; the name must match the basename. */
Spec loadSpec(const std::string &path);

/** Everything measured for one grid cell. */
struct CellResult
{
    std::string id;
    /** (axis name, value id) in axis order. */
    std::vector<std::pair<std::string, std::string>> coords;
    RunMetrics metrics;
    double writeStall = 0;       ///< CPU write-stall ticks, all nodes
    double upgrades = 0;         ///< SLC S->M upgrades, all nodes
    double migratoryGrants = 0;  ///< directory migratory grants, all nodes
    double node0DemandReadMisses = 0;
    double node0ReplacementMisses = 0;
    bool characterized = false;
    StrideCharacterizer::Report characterizer; ///< valid if characterized
    double wallSeconds = 0;      ///< host wall-clock for this cell
};

/** Execution parameters that are *not* part of the experiment spec. */
struct ExecOptions
{
    unsigned jobs = 0;   ///< grid threads; 0: PSIM_JOBS / hardware
    unsigned shards = 0; ///< intra-run shards (0: serial engine)
    unsigned procs = 0;  ///< machine-size override (0: spec/paper value)
    apps::ObservabilityOptions obs;
};

struct Results
{
    std::vector<CellResult> cells; ///< in flat cell order
    unsigned jobs = 0;             ///< resolved job count
    double wallSeconds = 0;        ///< whole-grid wall clock
};

/**
 * Expand the spec into cells and run them on exec.jobs threads via
 * runGrid(). Every run must finish and verify (fatal otherwise).
 * Results are deterministic and independent of the job count.
 */
Results runSpec(const Spec &spec, const ExecOptions &exec);

/**
 * The canonical `psim-results-v1` document for one executed spec:
 * one line of JSON with per-cell metrics (and the characterizer
 * report where measured) plus wall-clock timing. Cell values are
 * byte-stable across runs, job counts and shard counts; only the
 * "jobs"/"shards"/"wall_seconds" fields vary (see scrubVolatile()).
 */
std::string resultsDocument(const Spec &spec, const ExecOptions &exec,
                            const Results &results);

/**
 * Replace the numbers of every volatile field ("jobs", "shards",
 * "procs", "wall_seconds") with 0 so two documents from the same spec
 * can be compared byte-for-byte.
 */
std::string scrubVolatile(const std::string &doc);

} // namespace psim::spec

#endif // PSIM_SIM_SPEC_HH
