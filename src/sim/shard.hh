/**
 * @file
 * Worker gang for the windowed parallel engine.
 *
 * One persistent thread per shard beyond the first (shard 0 runs on the
 * caller's thread), released round-by-round: runRound() starts every
 * shard's body concurrently and returns when all have finished. Rounds
 * are short (one lookahead window), so the synchronization is a pair of
 * atomics with a bounded spin before falling back to yield — on an
 * oversubscribed host a pure spin would starve the very workers it is
 * waiting for.
 *
 * Memory ordering contract: everything the caller wrote before
 * runRound() is visible to every body, and everything any body wrote is
 * visible to the caller after runRound() returns (release/acquire on
 * the round and completion counters). Bodies must not touch shared
 * state beyond that — the machine partitions all simulation state by
 * shard and exchanges cross-shard messages between rounds.
 */

#ifndef PSIM_SIM_SHARD_HH
#define PSIM_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace psim
{

class ShardGang
{
  public:
    /**
     * Spawn @p nshards - 1 workers, each running @p body(shard) once
     * per round. @p body must stay valid for the gang's lifetime.
     */
    ShardGang(unsigned nshards, std::function<void(unsigned)> body);
    ~ShardGang();

    ShardGang(const ShardGang &) = delete;
    ShardGang &operator=(const ShardGang &) = delete;

    /**
     * Run body(s) exactly once for every shard concurrently; blocks
     * until done. A gang of zero shards runs nothing; a gang of one
     * runs body(0) on the caller's thread with no synchronization.
     */
    void runRound();

  private:
    void workerLoop(unsigned shard);

    unsigned _nshards;
    std::function<void(unsigned)> _body;
    std::atomic<std::uint64_t> _round{0}; ///< bumped to release workers
    std::atomic<unsigned> _pending{0};    ///< workers still in a round
    std::atomic<bool> _stop{false};
    std::vector<std::thread> _workers;
};

} // namespace psim

#endif // PSIM_SIM_SHARD_HH
