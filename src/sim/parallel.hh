/**
 * @file
 * Parallel experiment runner.
 *
 * Each simulation (one Machine) is strictly single-threaded and
 * deterministic, but the paper's evaluation re-runs the same machine
 * over an application × scheme grid whose cells are completely
 * independent. ThreadPool/runGrid() run those cells concurrently:
 * workers pull cell indices from a shared queue, every cell writes its
 * result into a caller-owned slot keyed by index, and the caller
 * formats output only after the grid completes — so printed tables are
 * byte-identical to a serial run no matter the job count.
 *
 * The job count comes from (highest priority first) an explicit
 * `--jobs N` flag, the `PSIM_JOBS` environment variable, and the
 * hardware concurrency.
 */

#ifndef PSIM_SIM_PARALLEL_HH
#define PSIM_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psim
{

/**
 * A minimal fixed-size thread pool (single shared queue, no work
 * stealing — grid cells are seconds long, so queue contention is
 * irrelevant). Exceptions thrown by jobs are captured; the first one is
 * rethrown from wait().
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const { return static_cast<unsigned>(_threads.size()); }

    /** Enqueue @p job; it may start immediately on any worker. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished, then rethrow the
     * first captured job exception (if any).
     */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> _threads;
    std::deque<std::function<void()>> _queue;
    std::mutex _mx;
    std::condition_variable _wake;
    std::condition_variable _drained;
    std::size_t _inflight = 0;
    std::exception_ptr _error;
    bool _stop = false;
};

/**
 * Resolve the job count for a grid run: @p requested if nonzero, else
 * `PSIM_JOBS` if set and valid, else std::thread::hardware_concurrency.
 */
unsigned resolveJobs(unsigned requested = 0);

/**
 * Run @p fn(i) for every i in [0, n) on @p jobs threads (clamped to n;
 * jobs <= 1 runs serially on the calling thread). fn must only touch
 * state owned by its own index. Returns after all cells finished;
 * rethrows the first cell exception.
 */
void runGrid(std::size_t n, unsigned jobs,
             const std::function<void(std::size_t)> &fn);

} // namespace psim

#endif // PSIM_SIM_PARALLEL_HH
