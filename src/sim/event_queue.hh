/**
 * @file
 * Global discrete-event queue.
 *
 * The whole machine is driven by a single event queue: components
 * schedule callbacks at absolute ticks, and ties are broken by insertion
 * order so that simulation is fully deterministic.
 */

#ifndef PSIM_SIM_EVENT_QUEUE_HH
#define PSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace psim
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Opaque handle for cancelling a scheduled event. */
    using EventId = std::uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb at absolute tick @p when.
     * @pre when >= now()
     * @return handle usable with cancel()
     */
    EventId
    schedule(Tick when, Callback cb)
    {
        psim_assert(when >= _now,
                "schedule in the past: when=%llu now=%llu",
                (unsigned long long)when, (unsigned long long)_now);
        EventId id = _nextId++;
        _heap.push(Entry{when, id, std::move(cb), false});
        ++_live;
        return id;
    }

    /** Schedule @p cb @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, Callback cb)
    {
        return schedule(_now + delta, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an event that has
     * already fired is a no-op (lazily deleted).
     */
    void
    cancel(EventId id)
    {
        _cancelled.push_back(id);
    }

    /** True when no live events remain. */
    bool empty() const { return _live == 0; }

    /** Number of events still pending. */
    std::size_t pending() const { return _live; }

    /**
     * Run the next event. @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or @p limit ticks have been simulated.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit = kTickNever);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
        bool dead;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    bool isCancelled(EventId id);

    Tick _now = 0;
    EventId _nextId = 1;
    std::size_t _live = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::vector<EventId> _cancelled;
};

} // namespace psim

#endif // PSIM_SIM_EVENT_QUEUE_HH
