/**
 * @file
 * Global discrete-event queue.
 *
 * The whole machine is driven by a single event queue: components
 * schedule callbacks at absolute ticks, and ties are broken by insertion
 * order so that simulation is fully deterministic.
 *
 * The engine is allocation-free in steady state:
 *
 *  - Events live in a preallocated, free-listed pool; an EventId packs
 *    (slot, generation) so cancel() is an O(1) generation check instead
 *    of the old lazy-delete list with its O(n) scan per pop.
 *  - Callbacks are stored inline (InlineCallback) with no heap
 *    fallback; an oversized capture list is a compile error.
 *  - Short-delay schedules — the overwhelmingly common case (cache,
 *    bus, mesh and CPU latencies are tens of ticks) — go into a
 *    256-bucket time wheel whose occupied buckets are tracked in a
 *    bitmap; only schedules ≥ 256 ticks out touch the overflow binary
 *    heap.
 *
 * Sharded mode (setShardOrder) changes only the tie-break rule: instead
 * of a queue-global insertion counter, every event carries an
 * (owner, per-owner counter) key packed into `seq`, where the owner is
 * the node on whose behalf the event was scheduled. Per-owner counters
 * advance in each node's own deterministic event order, so the total
 * (when, seq) order is identical no matter how nodes are partitioned
 * into shards — the property the windowed parallel engine
 * (sys/machine.cc runSharded) relies on for byte-identical statistics
 * at every shard count. Because wheel buckets are FIFO by insertion
 * (not by seq), sharded mode drains each tick through a small staging
 * heap (runWindow) that restores seq order among same-tick events.
 */

#ifndef PSIM_SIM_EVENT_QUEUE_HH
#define PSIM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace psim
{

class EventQueue
{
  public:
    /**
     * Inline storage must hold the largest hot-path capture list:
     * [this, Message, bool] on the protocol send path is 56 bytes.
     */
    static constexpr std::size_t kCallbackCapacity = 64;

    using Callback = InlineCallback<kCallbackCapacity>;

    /** Opaque handle for cancelling a scheduled event. */
    using EventId = std::uint64_t;

    EventQueue();
    ~EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Switch to the sharded deterministic tie-break: events are ordered
     * by (when, owner, per-owner counter) instead of (when, global
     * counter). Must be called on an empty queue, before any schedule.
     * @param num_owners one counter per machine node
     */
    void
    setShardOrder(unsigned num_owners)
    {
        psim_assert(_live == 0, "setShardOrder on a non-empty queue");
        _shardOrder = true;
        _ownerCtr.assign(num_owners, 0);
    }

    /**
     * Set the node on whose behalf subsequent schedules happen. In
     * sharded mode runWindow() maintains this automatically (each event
     * inherits the owner of the event that scheduled it); the machine
     * sets it explicitly only for the initial per-node start events.
     */
    void setContextOwner(NodeId owner) { _ctxOwner = owner; }

    /**
     * Schedule @p cb at absolute tick @p when.
     * @pre when >= now()
     * @return handle usable with cancel()
     */
    EventId
    schedule(Tick when, Callback cb)
    {
        psim_assert(when >= _now,
                "schedule in the past: when=%llu now=%llu",
                (unsigned long long)when, (unsigned long long)_now);
        std::uint32_t slot = allocSlot();
        Event &e = _pool[slot];
        e.when = when;
        if (_shardOrder) {
            e.owner = _ctxOwner;
            e.seq = (static_cast<std::uint64_t>(_ctxOwner) << 48) |
                    _ownerCtr[_ctxOwner]++;
        } else {
            e.owner = 0;
            e.seq = _nextSeq++;
        }
        e.cb = std::move(cb);
        e.next = kNil;
        e.live = true;
        ++_live;
        if (_stagingActive && when == _stagingTick) {
            // runWindow is draining this very tick: a same-tick child
            // must enter the staging heap directly, where its seq places
            // it relative to the entries still pending (a wheel bucket
            // would only be looked at again next tick).
            _staging.push_back(StagedEntry{e.seq, slot, e.gen});
            std::push_heap(_staging.begin(), _staging.end());
        } else if (when - _now < kWheelSize) {
            wheelInsert(slot, when);
        } else {
            heapInsert(slot, when, e.seq);
        }
        return makeId(e.gen, slot);
    }

    /**
     * Schedule on behalf of node @p owner (cross-shard message delivery
     * at a window boundary: the event's ordering key must be stamped
     * from the destination node's counter, not the caller's context).
     */
    EventId
    scheduleRemote(Tick when, NodeId owner, Callback cb)
    {
        NodeId saved = _ctxOwner;
        _ctxOwner = owner;
        EventId id = schedule(when, std::move(cb));
        _ctxOwner = saved;
        return id;
    }

    /** Schedule @p cb @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, Callback cb)
    {
        return schedule(_now + delta, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event in O(1). Cancelling an event
     * that has already fired (or been cancelled) is a no-op: the
     * generation check rejects the stale handle without accumulating
     * any per-cancel state.
     */
    void
    cancel(EventId id)
    {
        std::uint32_t slot = slotOf(id);
        if (slot >= _pool.size())
            return;
        Event &e = _pool[slot];
        if (e.gen != genOf(id) || !e.live)
            return;
        e.live = false;
        e.cb.reset();
        --_live;
        // The slot stays linked in its wheel bucket / heap entry and is
        // reclaimed when the cursor reaches it.
    }

    /** True when no live events remain. */
    bool empty() const { return _live == 0; }

    /** Number of events still pending. */
    std::size_t pending() const { return _live; }

    /**
     * Run the next event. @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run until the queue drains or @p limit ticks have been simulated.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit = kTickNever);

    /** Tick of the earliest live event, or kTickNever when drained. */
    Tick
    nextWhen()
    {
        Next n;
        return peekNext(n) ? _pool[n.slot].when : kTickNever;
    }

    /**
     * Jump time forward to @p t without running anything.
     * @pre no live event is scheduled before @p t
     */
    void
    advanceTo(Tick t)
    {
        psim_assert(t >= _now, "advanceTo into the past");
        psim_assert(nextWhen() >= t, "advanceTo over a pending event");
        _now = t;
    }

    /**
     * Sharded mode: fire every event with when < @p end, draining each
     * tick through the staging heap so same-tick events run in seq
     * order regardless of which container held them. @return now().
     */
    Tick runWindow(Tick end);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;
    static constexpr std::uint32_t kWheelBits = 8;
    static constexpr std::uint32_t kWheelSize = 1u << kWheelBits;
    static constexpr std::uint32_t kWheelMask = kWheelSize - 1;

    struct Event
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Callback cb;
        std::uint32_t gen = 1;  ///< bumped on free; stale ids mismatch
        std::uint32_t next = kNil; ///< bucket chain or free list
        NodeId owner = 0;       ///< sharded mode: scheduling node
        bool live = false;
    };

    /**
     * One same-tick event pulled out of its container by runWindow,
     * waiting in the staging min-heap for its seq-ordered turn. The
     * (gen, live) pair is re-validated at pop: the event may have been
     * cancelled while staged, and its slot may even have been freed and
     * reused by an earlier same-tick callback.
     */
    struct StagedEntry
    {
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;

        bool
        operator<(const StagedEntry &o) const
        {
            return seq > o.seq; // std::push_heap max-heap -> min-seq top
        }
    };

    /** Overflow heap entry for schedules beyond the wheel horizon. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;

        bool
        operator<(const HeapEntry &o) const
        {
            // std::push_heap builds a max-heap; invert for earliest-first.
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Where peekNext() found the next live event. */
    struct Next
    {
        std::uint32_t slot;
        std::uint32_t bucket; ///< valid when wheel
        bool wheel;
    };

    static EventId
    makeId(std::uint32_t gen, std::uint32_t slot)
    {
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    static std::uint32_t slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id);
    }

    static std::uint32_t genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);
    void growPool();

    void wheelInsert(std::uint32_t slot, Tick when);
    void heapInsert(std::uint32_t slot, Tick when, std::uint64_t seq);

    /** First occupied bucket at circular distance >= 0 from @p from. */
    std::uint32_t firstOccupiedBucket(std::uint32_t from) const;

    /**
     * Reclaim dead events at the container fronts and locate the next
     * live event without removing it. @return false when drained.
     */
    bool peekNext(Next &n);

    /** Remove the event found by peekNext() from its container. */
    void removeNext(const Next &n);

    /** Pop, free and invoke the (live) event found by peekNext(). */
    void fire(const Next &n);

    Tick _now = 0;
    std::uint64_t _nextSeq = 1;
    std::size_t _live = 0;

    // Sharded deterministic ordering (setShardOrder / runWindow).
    bool _shardOrder = false;
    bool _stagingActive = false;
    Tick _stagingTick = 0;
    NodeId _ctxOwner = 0;
    std::vector<std::uint64_t> _ownerCtr; ///< per-node seq counters
    std::vector<StagedEntry> _staging;    ///< same-tick reorder heap

    std::vector<Event> _pool;
    std::uint32_t _freeHead = kNil;

    // Two-level front: time wheel for [now, now + kWheelSize) ...
    std::array<std::uint32_t, kWheelSize> _bucketHead;
    std::array<std::uint32_t, kWheelSize> _bucketTail;
    std::array<std::uint64_t, kWheelSize / 64> _occupied;
    std::size_t _wheelCount = 0;

    // ... and a binary min-heap for everything farther out.
    std::vector<HeapEntry> _heap;
};

} // namespace psim

#endif // PSIM_SIM_EVENT_QUEUE_HH
