/**
 * @file
 * Runtime invariant-audit layer.
 *
 * The paper's headline metrics (Figure 6) are ratios over prefetch
 * outcomes, so a double-count or leak in the outcome accounting
 * silently distorts every reproduced table. This layer converts such
 * drift into hard failures: a per-node prefetch-lifecycle tracker
 * assigns every issued prefetch exactly one terminal fate and asserts
 * the conservation law
 *
 *     pfIssued == useful-tagged + useful-late + write-hit
 *               + invalidated + replaced + aged-unused
 *               + resident-at-end
 *
 * at Slc::finalizeStats(), independently recomputing each fate counter
 * and cross-checking it against the statistics package. Around the
 * lifecycle tracker sit coherence cross-checks validated on every
 * message receive (MSHR/directory-state agreement, SLWB occupancy
 * bounds, no tagged block without a recorded issue) and machine-level
 * quiesce checks (mesh message conservation, no held locks, no pending
 * barrier episodes).
 *
 * Gating: compile-time via the PSIM_AUDIT CMake option (default ON;
 * when OFF every hook dead-strips behind a null pointer), runtime via
 * MachineConfig::audit, which defaults to the PSIM_AUDIT environment
 * variable so CI can audit every bench harness without code changes.
 *
 * On violation the audit dumps the offending block's full event
 * history (issue, fill, merge, hit, invalidation, ... with ticks)
 * before aborting -- the context an ad-hoc psim_assert cannot give.
 */

#ifndef PSIM_SIM_AUDIT_HH
#define PSIM_SIM_AUDIT_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace psim
{

class Machine;
class Slc;
struct Message;

namespace audit
{

/** Is the audit layer compiled into this build (PSIM_AUDIT=ON)? */
constexpr bool
compiledIn()
{
#ifdef PSIM_AUDIT_DISABLED
    return false;
#else
    return true;
#endif
}

/** The terminal fate of one issued prefetch (exactly one per issue). */
enum class Fate : std::uint8_t
{
    None,          ///< issued, fate not yet reached
    UsefulTagged,  ///< demand read hit the tagged block
    UsefulLate,    ///< demand read merged with the in-flight prefetch
    WriteHit,      ///< a store consumed the prefetched block
    Invalidated,   ///< tagged block lost to an invalidation
    Replaced,      ///< tagged block lost to a replacement
    AgedUnused,    ///< aged out of the feedback ring unreferenced
    ResidentAtEnd, ///< still tagged when the run finished
};
constexpr std::size_t kNumFates = 8;

const char *toString(Fate f);

/** Lifecycle events recorded into a block's history (for dumps). */
enum class Event : std::uint8_t
{
    Issue,
    Fill,
    DemandMerge,
    TaggedReadHit,
    TaggedWriteHit,
    DeferredStoreHit,
    Invalidated,
    Replaced,
    AgedOut,
    EndOfRun,
};

const char *toString(Event e);

/**
 * Per-node prefetch-lifecycle tracker. The Slc reports every issue,
 * every lifecycle event and every terminal fate; the tracker fails
 * hard on a second fate for the same issue, a fate without an issue, a
 * tagged fill without a recorded issue, or an SLWB occupancy
 * violation. finalize() asserts the conservation law and cross-checks
 * every independently-counted fate against the stats package.
 */
class NodeAudit
{
  public:
    explicit NodeAudit(NodeId node) : _node(node) {}

    /** A prefetch for @p blk was issued (SLWB slot taken). */
    void onIssue(Addr blk, Pc pc, Tick now);

    /** Record a history-only lifecycle event for a tracked block. */
    void onEvent(Addr blk, Event e, Tick now);

    /** Assign the terminal fate of @p blk's live issue (exactly once). */
    void onFate(Addr blk, Fate f, Event e, Tick now);

    /** Does @p blk have an issue whose fate is still unassigned? */
    bool hasLiveIssue(Addr blk) const;

    /** A fill is about to set the prefetched tag on @p blk. */
    void checkTaggedFill(Addr blk) const;

    /**
     * SLWB occupancy bounds after an allocation: occupancy never
     * exceeds the capacity, and a prefetch allocation leaves at least
     * one slot free for demand accesses (the reserve rule).
     */
    void checkSlwb(std::size_t occupancy, std::size_t cap,
                   bool for_prefetch, const char *where) const;

    /** Structured failure: dump @p blk's event history, then abort. */
    [[noreturn]] void fail(Addr blk, const std::string &msg) const;

    /** Conservation law + stats cross-check at end of run. */
    void finalize(const Slc &slc);

    std::uint64_t issued() const { return _issued; }

    std::uint64_t
    fateCount(Fate f) const
    {
        return _fates[static_cast<std::size_t>(f)];
    }

  private:
    struct Track
    {
        bool live = false;    ///< issued, no terminal fate yet
        Fate lastFate = Fate::None;
        std::uint32_t issues = 0;
        /** Bounded event history, oldest first. */
        std::deque<std::pair<Tick, Event>> hist;
    };

    void record(Track &t, Event e, Tick now);

    NodeId _node;
    std::uint64_t _issued = 0;
    std::array<std::uint64_t, kNumFates> _fates{};
    std::unordered_map<Addr, Track> _tracks;
};

/**
 * Immutable end-of-run export of the prefetch fate ledger, one entry
 * per node: issues and the count of every terminal fate. The
 * differential oracle (check/oracle.hh) consumes this to re-verify the
 * conservation law independently of the audit's own finalize().
 */
struct LedgerSnapshot
{
    struct Node
    {
        std::uint64_t issued = 0;
        std::array<std::uint64_t, kNumFates> fates{};
    };

    std::vector<Node> nodes;
};

/**
 * Machine-wide audit: owns the per-node trackers and the global
 * checks that span nodes -- mesh message conservation, message-field
 * validation on every delivery, and lock/barrier quiescence.
 *
 * Shard safety: every per-node tracker is touched only by its node's
 * owning shard; mesh injections are counted from the (single-threaded)
 * window exchange; deliveries land on destination shard threads, so
 * their counter is the one atomic. Lock events are recorded per home
 * node -- every event for a lock happens at that lock's home LockCtrl,
 * on the home's owning shard -- so the rings need no synchronization
 * and stay deterministic at every shard count.
 */
class MachineAudit
{
  public:
    MachineAudit(unsigned num_procs, unsigned header_flits);

    NodeAudit &node(NodeId n) { return *_nodes.at(n); }

    /**
     * A message entered the mesh. Called by Mesh::send (serial engine)
     * or the window exchange (sharded engine); single-threaded either
     * way.
     */
    void onMeshInject(NodeId src, NodeId dst, unsigned flits);

    /** A message reached its destination component. */
    void onDeliver(const Message &m);

    /**
     * Record a lock request/grant/release into the bounded ring of the
     * lock's home node @p home.
     */
    void onLockEvent(NodeId home, Addr lock, NodeId node,
                     const char *what);

    /** Structured lock failure: dump @p home's recent lock events. */
    [[noreturn]] void failLock(NodeId home, Addr lock,
                               const std::string &msg);

    /** Global quiesce-time checks (call when the machine finished). */
    void finalize(const Machine &m);

    /** Export every node's issue/fate counters for external checking. */
    LedgerSnapshot exportLedger() const;

    std::uint64_t meshInjected() const { return _meshInjected; }

    std::uint64_t
    meshDelivered() const
    {
        return _meshDelivered.load(std::memory_order_relaxed);
    }

  private:
    struct LockEvent
    {
        Addr lock;
        NodeId node;
        const char *what;
    };

    /** Per-home lock-event ring, padded: homes live on shard threads. */
    struct alignas(64) LockRing
    {
        std::deque<LockEvent> events;
    };

    unsigned _numProcs;
    unsigned _headerFlits;
    std::uint64_t _meshInjected = 0;
    std::atomic<std::uint64_t> _meshDelivered{0};
    std::vector<LockRing> _lockRings; ///< one per home node
    std::vector<std::unique_ptr<NodeAudit>> _nodes;
};

} // namespace audit
} // namespace psim

#endif // PSIM_SIM_AUDIT_HH
