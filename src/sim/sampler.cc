#include "sim/sampler.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace psim::stats
{

Sampler::Sampler(EventQueue &eq, Tick interval)
    : _eq(&eq), _interval(interval)
{
    psim_assert(interval > 0, "sample interval must be positive");
}

Sampler::Sampler(Tick interval) : _eq(nullptr), _interval(interval)
{
    psim_assert(interval > 0, "sample interval must be positive");
}

void
Sampler::addProbe(std::string name, std::function<double()> fn)
{
    psim_assert(!_started, "probes must register before start()");
    _names.push_back(std::move(name));
    _probes.push_back(std::move(fn));
}

void
Sampler::start()
{
    psim_assert(_eq, "start() is for the event-driven sampler; the "
            "boundary-driven sampler is fed via sampleAt()");
    psim_assert(!_started, "sampler already started");
    _started = true;
    _eq->scheduleIn(_interval, [this] { tick(); });
}

void
Sampler::snapshot(Tick t)
{
    Row row;
    row.tick = t;
    row.values.reserve(_probes.size());
    for (const auto &p : _probes)
        row.values.push_back(p());
    _rows.push_back(std::move(row));
}

void
Sampler::sampleAt(Tick t)
{
    psim_assert(!_eq, "sampleAt() is for the boundary-driven sampler");
    psim_assert(_rows.empty() || t > _rows.back().tick,
            "sample ticks must be strictly increasing");
    _started = true;
    snapshot(t);
}

void
Sampler::tick()
{
    snapshot(_eq->now());

    // The fired event is already reclaimed, so empty() reflects only
    // the simulation's own events: once none remain the run is over and
    // rescheduling would only spin the clock forward.
    if (!_eq->empty())
        _eq->scheduleIn(_interval, [this] { tick(); });
}

void
Sampler::dumpJson(std::ostream &os) const
{
    os << "{\"interval\":" << _interval << ",\"probes\":[";
    for (std::size_t i = 0; i < _names.size(); ++i)
        os << (i ? "," : "") << "\"" << jsonEscape(_names[i]) << "\"";
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < _rows.size(); ++r) {
        os << (r ? "," : "") << "[" << _rows[r].tick;
        for (double v : _rows[r].values)
            os << "," << jsonNumber(v);
        os << "]";
    }
    os << "]}";
}

void
Sampler::dumpCsv(std::ostream &os) const
{
    os << "tick";
    for (const auto &n : _names)
        os << "," << n;
    os << "\n";
    for (const auto &row : _rows) {
        os << row.tick;
        for (double v : row.values)
            os << "," << jsonNumber(v);
        os << "\n";
    }
}

} // namespace psim::stats
