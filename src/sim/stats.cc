#include "sim/stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>

namespace psim::stats
{

void
Histogram::sample(std::int64_t key, std::uint64_t weight)
{
    _buckets[key] += weight;
    _total += weight;
}

std::uint64_t
Histogram::count(std::int64_t key) const
{
    auto it = _buckets.find(key);
    return it == _buckets.end() ? 0 : it->second;
}

std::int64_t
Histogram::dominantKey() const
{
    std::int64_t best_key = 0;
    std::uint64_t best = 0;
    for (const auto &[key, weight] : _buckets) {
        if (weight > best) {
            best = weight;
            best_key = key;
        }
    }
    return best_key;
}

double
Histogram::fraction(std::int64_t key) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(count(key)) / static_cast<double>(_total);
}

void
Group::dump(std::ostream &os) const
{
    os << "---------- " << _name << " ----------\n";
    auto line = [&os](const std::string &name, double value,
                      const std::string &desc) {
        os << std::left << std::setw(44) << name
           << std::right << std::setw(16) << value
           << "  # " << desc << "\n";
    };
    for (const auto &item : _scalars)
        line(_name + "." + item.name, item.stat->value(), item.desc);
    for (const auto &item : _averages) {
        line(_name + "." + item.name + ".mean", item.stat->mean(),
             item.desc);
        line(_name + "." + item.name + ".count",
             static_cast<double>(item.stat->count()), item.desc);
    }
    for (const auto &item : _histograms) {
        line(_name + "." + item.name + ".total",
             static_cast<double>(item.stat->total()), item.desc);
        for (const auto &[key, weight] : item.stat->buckets()) {
            line(_name + "." + item.name + "[" + std::to_string(key) + "]",
                 static_cast<double>(weight), item.desc);
        }
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no NaN/inf; absent value instead
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
Group::dumpJson(std::ostream &os) const
{
    os << "{\"name\":\"" << jsonEscape(_name) << "\",\"scalars\":[";
    bool first = true;
    for (const auto &item : _scalars) {
        os << (first ? "" : ",") << "{\"name\":\"" << jsonEscape(item.name)
           << "\",\"desc\":\"" << jsonEscape(item.desc)
           << "\",\"value\":" << jsonNumber(item.stat->value()) << "}";
        first = false;
    }
    os << "],\"averages\":[";
    first = true;
    for (const auto &item : _averages) {
        os << (first ? "" : ",") << "{\"name\":\"" << jsonEscape(item.name)
           << "\",\"desc\":\"" << jsonEscape(item.desc)
           << "\",\"mean\":" << jsonNumber(item.stat->mean())
           << ",\"sum\":" << jsonNumber(item.stat->sum())
           << ",\"count\":" << item.stat->count()
           << ",\"min\":" << jsonNumber(item.stat->min())
           << ",\"max\":" << jsonNumber(item.stat->max()) << "}";
        first = false;
    }
    os << "],\"histograms\":[";
    first = true;
    for (const auto &item : _histograms) {
        os << (first ? "" : ",") << "{\"name\":\"" << jsonEscape(item.name)
           << "\",\"desc\":\"" << jsonEscape(item.desc)
           << "\",\"total\":" << item.stat->total() << ",\"buckets\":[";
        bool bfirst = true;
        for (const auto &[key, weight] : item.stat->buckets()) {
            os << (bfirst ? "" : ",") << "{\"key\":" << key
               << ",\"count\":" << weight << "}";
            bfirst = false;
        }
        os << "]}";
        first = false;
    }
    os << "]}";
}

const Scalar *
Group::findScalar(const std::string &name) const
{
    for (const auto &item : _scalars) {
        if (item.name == name)
            return item.stat;
    }
    return nullptr;
}

Group &
Registry::addGroup(const std::string &name)
{
    _groups.push_back(std::make_unique<Group>(name));
    return *_groups.back();
}

const Group *
Registry::find(const std::string &name) const
{
    for (const auto &g : _groups) {
        if (g->name() == name)
            return g.get();
    }
    return nullptr;
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &g : _groups)
        g->dump(os);
}

void
Registry::dumpJson(std::ostream &os, const std::string &extra) const
{
    os << "{\"schema\":\"" << kSchemaId << "\",\"groups\":[";
    bool first = true;
    for (const auto &g : _groups) {
        if (!first)
            os << ",";
        g->dumpJson(os);
        first = false;
    }
    os << "]" << extra << "}\n";
}

} // namespace psim::stats
