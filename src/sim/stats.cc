#include "sim/stats.hh"

#include <iomanip>

namespace psim::stats
{

void
Histogram::sample(std::int64_t key, std::uint64_t weight)
{
    _buckets[key] += weight;
    _total += weight;
}

std::uint64_t
Histogram::count(std::int64_t key) const
{
    auto it = _buckets.find(key);
    return it == _buckets.end() ? 0 : it->second;
}

std::int64_t
Histogram::dominantKey() const
{
    std::int64_t best_key = 0;
    std::uint64_t best = 0;
    for (const auto &[key, weight] : _buckets) {
        if (weight > best) {
            best = weight;
            best_key = key;
        }
    }
    return best_key;
}

double
Histogram::fraction(std::int64_t key) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(count(key)) / static_cast<double>(_total);
}

void
Group::dump(std::ostream &os) const
{
    os << "---------- " << _name << " ----------\n";
    auto line = [&os](const std::string &name, double value,
                      const std::string &desc) {
        os << std::left << std::setw(44) << name
           << std::right << std::setw(16) << value
           << "  # " << desc << "\n";
    };
    for (const auto &item : _scalars)
        line(_name + "." + item.name, item.stat->value(), item.desc);
    for (const auto &item : _averages) {
        line(_name + "." + item.name + ".mean", item.stat->mean(),
             item.desc);
        line(_name + "." + item.name + ".count",
             static_cast<double>(item.stat->count()), item.desc);
    }
    for (const auto &item : _histograms) {
        line(_name + "." + item.name + ".total",
             static_cast<double>(item.stat->total()), item.desc);
        for (const auto &[key, weight] : item.stat->buckets()) {
            line(_name + "." + item.name + "[" + std::to_string(key) + "]",
                 static_cast<double>(weight), item.desc);
        }
    }
}

} // namespace psim::stats
