#include "trace/chrome_trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace psim
{

namespace
{

/** Mesh events get their own "process" row in the viewer. */
constexpr unsigned kMeshPid = 1000;

/** Per-node track ids. */
constexpr unsigned kTidDemand = 0;
constexpr unsigned kTidPrefetch = 1;

std::string
addrArg(Addr blk)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "{\"addr\":\"0x%" PRIx64 "\"}",
                  static_cast<std::uint64_t>(blk));
    return buf;
}

} // namespace

ChromeTracer::ChromeTracer(Tick start, Tick end) : _start(start), _end(end)
{
}

void
ChromeTracer::push(TraceEvent e)
{
    _events.push_back(std::move(e));
}

void
ChromeTracer::enableStaging(unsigned num_nodes)
{
    psim_assert(_events.empty() && _openMisses.empty(),
            "staging must enable before any event is recorded");
    _lanes = std::vector<Lane>(num_nodes);
}

void
ChromeTracer::stage(StagedOp::Kind kind, NodeId node, Addr blk, Tick t,
                    audit::Fate fate)
{
    _lanes[node].ops.push_back(StagedOp{kind, fate, node, blk, t});
}

void
ChromeTracer::drainStaged(Tick window_end)
{
    // Canonical order: (tick, node, per-node append index). Within one
    // node, appends happen in that node's deterministic event order; at
    // equal ticks the sharded tie-break fires events node-major -- so
    // this merge reproduces exactly the call order a --shards 1 run
    // (or the serial engine at the same boundaries) would have made.
    struct Ref
    {
        Tick tick;
        NodeId node;
        std::uint32_t idx;
    };
    std::vector<Ref> refs;
    for (NodeId n = 0; n < _lanes.size(); ++n) {
        const auto &ops = _lanes[n].ops;
        for (std::uint32_t i = 0; i < ops.size(); ++i) {
            psim_assert(ops[i].t < window_end,
                    "staged chrome op beyond its window");
            refs.push_back(Ref{ops[i].t, n, i});
        }
    }
    std::sort(refs.begin(), refs.end(), [](const Ref &a, const Ref &b) {
        if (a.tick != b.tick)
            return a.tick < b.tick;
        if (a.node != b.node)
            return a.node < b.node;
        return a.idx < b.idx;
    });
    for (const Ref &r : refs) {
        const StagedOp &op = _lanes[r.node].ops[r.idx];
        switch (op.kind) {
          case StagedOp::Kind::MissStart:
            applyMissStart(op.node, op.blk, op.t);
            break;
          case StagedOp::Kind::MissEnd:
            applyMissEnd(op.node, op.blk, op.t);
            break;
          case StagedOp::Kind::PfIssue:
            applyPfIssue(op.node, op.blk, op.t);
            break;
          case StagedOp::Kind::PfFill:
            applyPfFill(op.node, op.blk, op.t);
            break;
          case StagedOp::Kind::PfFate:
            applyPfFate(op.node, op.blk, op.fate, op.t);
            break;
        }
    }
    for (Lane &lane : _lanes)
        lane.ops.clear();
}

void
ChromeTracer::demandMissStart(NodeId node, Addr blk, Tick t)
{
    if (staging()) {
        stage(StagedOp::Kind::MissStart, node, blk, t);
        return;
    }
    applyMissStart(node, blk, t);
}

void
ChromeTracer::demandMissEnd(NodeId node, Addr blk, Tick t)
{
    if (staging()) {
        stage(StagedOp::Kind::MissEnd, node, blk, t);
        return;
    }
    applyMissEnd(node, blk, t);
}

void
ChromeTracer::prefetchIssue(NodeId node, Addr blk, Tick t)
{
    if (staging()) {
        stage(StagedOp::Kind::PfIssue, node, blk, t);
        return;
    }
    applyPfIssue(node, blk, t);
}

void
ChromeTracer::prefetchFill(NodeId node, Addr blk, Tick t)
{
    if (staging()) {
        stage(StagedOp::Kind::PfFill, node, blk, t);
        return;
    }
    applyPfFill(node, blk, t);
}

void
ChromeTracer::prefetchFate(NodeId node, Addr blk, audit::Fate fate, Tick t)
{
    if (staging()) {
        stage(StagedOp::Kind::PfFate, node, blk, t, fate);
        return;
    }
    applyPfFate(node, blk, fate, t);
}

void
ChromeTracer::applyMissStart(NodeId node, Addr blk, Tick t)
{
    _openMisses[key(node, blk)] = t;
}

void
ChromeTracer::applyMissEnd(NodeId node, Addr blk, Tick t)
{
    auto it = _openMisses.find(key(node, blk));
    if (it == _openMisses.end())
        return;
    Tick begin = it->second;
    _openMisses.erase(it);
    if (!inWindow(begin))
        return;
    push(TraceEvent{"read miss", "demand", 'X', begin, t - begin, node,
                    kTidDemand, addrArg(blk)});
}

void
ChromeTracer::applyPfIssue(NodeId node, Addr blk, Tick t)
{
    _openPrefetches[key(node, blk)] = t;
}

void
ChromeTracer::applyPfFill(NodeId node, Addr blk, Tick t)
{
    auto it = _openPrefetches.find(key(node, blk));
    if (it == _openPrefetches.end())
        return;
    Tick begin = it->second;
    _openPrefetches.erase(it);
    if (!inWindow(begin))
        return;
    push(TraceEvent{"prefetch", "prefetch", 'X', begin, t - begin, node,
                    kTidPrefetch, addrArg(blk)});
}

void
ChromeTracer::applyPfFate(NodeId node, Addr blk, audit::Fate fate, Tick t)
{
    // A fate can arrive while the prefetch is still in flight (a demand
    // merge); close the open interval so a re-prefetch starts clean.
    auto it = _openPrefetches.find(key(node, blk));
    if (it != _openPrefetches.end()) {
        Tick begin = it->second;
        _openPrefetches.erase(it);
        if (inWindow(begin)) {
            push(TraceEvent{"prefetch", "prefetch", 'X', begin, t - begin,
                            node, kTidPrefetch, addrArg(blk)});
        }
    }
    if (!inWindow(t))
        return;
    push(TraceEvent{audit::toString(fate), "prefetch-fate", 'i', t, 0,
                    node, kTidPrefetch, addrArg(blk)});
}

void
ChromeTracer::meshMessage(NodeId src, NodeId dst, unsigned flits,
                          Tick inject, Tick arrival)
{
    if (!inWindow(inject))
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"dst\":%u,\"flits\":%u}", dst,
                  flits);
    push(TraceEvent{"msg", "mesh", 'X', inject, arrival - inject, kMeshPid,
                    src, buf});
}

void
ChromeTracer::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const auto &e : _events) {
        os << (first ? "" : ",") << "{\"name\":\""
           << stats::jsonEscape(e.name) << "\",\"cat\":\"" << e.cat
           << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts;
        if (e.ph == 'X')
            os << ",\"dur\":" << e.dur;
        else
            os << ",\"s\":\"t\"";
        os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
        first = false;
    }
    os << "]}\n";
}

} // namespace psim
