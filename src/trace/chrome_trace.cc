#include "trace/chrome_trace.hh"

#include <cinttypes>
#include <cstdio>

#include "sim/stats.hh"

namespace psim
{

namespace
{

/** Mesh events get their own "process" row in the viewer. */
constexpr unsigned kMeshPid = 1000;

/** Per-node track ids. */
constexpr unsigned kTidDemand = 0;
constexpr unsigned kTidPrefetch = 1;

std::string
addrArg(Addr blk)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "{\"addr\":\"0x%" PRIx64 "\"}",
                  static_cast<std::uint64_t>(blk));
    return buf;
}

} // namespace

ChromeTracer::ChromeTracer(Tick start, Tick end) : _start(start), _end(end)
{
}

void
ChromeTracer::push(TraceEvent e)
{
    _events.push_back(std::move(e));
}

void
ChromeTracer::demandMissStart(NodeId node, Addr blk, Tick t)
{
    _openMisses[key(node, blk)] = t;
}

void
ChromeTracer::demandMissEnd(NodeId node, Addr blk, Tick t)
{
    auto it = _openMisses.find(key(node, blk));
    if (it == _openMisses.end())
        return;
    Tick begin = it->second;
    _openMisses.erase(it);
    if (!inWindow(begin))
        return;
    push(TraceEvent{"read miss", "demand", 'X', begin, t - begin, node,
                    kTidDemand, addrArg(blk)});
}

void
ChromeTracer::prefetchIssue(NodeId node, Addr blk, Tick t)
{
    _openPrefetches[key(node, blk)] = t;
}

void
ChromeTracer::prefetchFill(NodeId node, Addr blk, Tick t)
{
    auto it = _openPrefetches.find(key(node, blk));
    if (it == _openPrefetches.end())
        return;
    Tick begin = it->second;
    _openPrefetches.erase(it);
    if (!inWindow(begin))
        return;
    push(TraceEvent{"prefetch", "prefetch", 'X', begin, t - begin, node,
                    kTidPrefetch, addrArg(blk)});
}

void
ChromeTracer::prefetchFate(NodeId node, Addr blk, audit::Fate fate, Tick t)
{
    // A fate can arrive while the prefetch is still in flight (a demand
    // merge); close the open interval so a re-prefetch starts clean.
    auto it = _openPrefetches.find(key(node, blk));
    if (it != _openPrefetches.end()) {
        Tick begin = it->second;
        _openPrefetches.erase(it);
        if (inWindow(begin)) {
            push(TraceEvent{"prefetch", "prefetch", 'X', begin, t - begin,
                            node, kTidPrefetch, addrArg(blk)});
        }
    }
    if (!inWindow(t))
        return;
    push(TraceEvent{audit::toString(fate), "prefetch-fate", 'i', t, 0,
                    node, kTidPrefetch, addrArg(blk)});
}

void
ChromeTracer::meshMessage(NodeId src, NodeId dst, unsigned flits,
                          Tick inject, Tick arrival)
{
    if (!inWindow(inject))
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"dst\":%u,\"flits\":%u}", dst,
                  flits);
    push(TraceEvent{"msg", "mesh", 'X', inject, arrival - inject, kMeshPid,
                    src, buf});
}

void
ChromeTracer::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const auto &e : _events) {
        os << (first ? "" : ",") << "{\"name\":\""
           << stats::jsonEscape(e.name) << "\",\"cat\":\"" << e.cat
           << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts;
        if (e.ph == 'X')
            os << ",\"dur\":" << e.dur;
        else
            os << ",\"s\":\"t\"";
        os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
        first = false;
    }
    os << "]}\n";
}

} // namespace psim
