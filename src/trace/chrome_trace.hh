/**
 * @file
 * Perfetto / chrome://tracing exporter.
 *
 * Records the events the paper's evaluation reasons about -- demand
 * read misses (miss detection to fill), prefetch lifecycles (issue to
 * fill as a duration, terminal fate as an instant event named by the
 * audit layer's fate taxonomy, sim/audit.hh) and mesh message transits
 * -- in the Trace Event JSON format both Perfetto and chrome://tracing
 * load directly. Each node renders as one process (pid = node id) with
 * "demand", "prefetch" and tracks; the mesh renders as pid 1000 with
 * one track per source node. Timestamps are simulation ticks.
 *
 * Recording is windowed by tick range so long runs stay loadable, and
 * strictly read-only: enabling it never changes simulated behaviour.
 */

#ifndef PSIM_TRACE_CHROME_TRACE_HH
#define PSIM_TRACE_CHROME_TRACE_HH

#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/audit.hh"
#include "sim/types.hh"

namespace psim
{

class ChromeTracer
{
  public:
    /** Record only events starting inside [start, end]. */
    explicit ChromeTracer(Tick start = 0, Tick end = kTickNever);

    ChromeTracer(const ChromeTracer &) = delete;
    ChromeTracer &operator=(const ChromeTracer &) = delete;

    bool
    inWindow(Tick t) const
    {
        return t >= _start && t <= _end;
    }

    // ---- demand read misses ----
    void demandMissStart(NodeId node, Addr blk, Tick t);
    void demandMissEnd(NodeId node, Addr blk, Tick t);

    // ---- prefetch lifecycles (audit fate taxonomy) ----
    void prefetchIssue(NodeId node, Addr blk, Tick t);
    void prefetchFill(NodeId node, Addr blk, Tick t);
    void prefetchFate(NodeId node, Addr blk, audit::Fate fate, Tick t);

    // ---- mesh message transits ----
    void meshMessage(NodeId src, NodeId dst, unsigned flits, Tick inject,
                     Tick arrival);

    std::size_t eventCount() const { return _events.size(); }

    /** Write the complete Trace Event JSON document. */
    void write(std::ostream &os) const;

  private:
    struct TraceEvent
    {
        std::string name;
        const char *cat;
        char ph;        ///< 'X' complete, 'i' instant
        Tick ts;
        Tick dur;       ///< valid for 'X'
        unsigned pid;
        unsigned tid;
        std::string args; ///< preformatted JSON object, may be empty
    };

    /** Open interval start ticks, keyed by (node, block address). */
    using OpenMap = std::unordered_map<std::uint64_t, Tick>;

    static std::uint64_t
    key(NodeId node, Addr blk)
    {
        return (static_cast<std::uint64_t>(node) << 48) ^ blk;
    }

    void push(TraceEvent e);

    Tick _start;
    Tick _end;
    OpenMap _openMisses;
    OpenMap _openPrefetches;
    std::vector<TraceEvent> _events;
};

} // namespace psim

#endif // PSIM_TRACE_CHROME_TRACE_HH
