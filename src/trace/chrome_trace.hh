/**
 * @file
 * Perfetto / chrome://tracing exporter.
 *
 * Records the events the paper's evaluation reasons about -- demand
 * read misses (miss detection to fill), prefetch lifecycles (issue to
 * fill as a duration, terminal fate as an instant event named by the
 * audit layer's fate taxonomy, sim/audit.hh) and mesh message transits
 * -- in the Trace Event JSON format both Perfetto and chrome://tracing
 * load directly. Each node renders as one process (pid = node id) with
 * "demand", "prefetch" and tracks; the mesh renders as pid 1000 with
 * one track per source node. Timestamps are simulation ticks.
 *
 * Recording is windowed by tick range so long runs stay loadable, and
 * strictly read-only: enabling it never changes simulated behaviour.
 *
 * Under the sharded engine (enableStaging) the per-node hooks run
 * concurrently on shard threads, so instead of touching the shared
 * open-interval maps they append a compact op into a per-node,
 * cache-line-padded lane; the machine drains the lanes at every window
 * boundary (drainStaged) in the canonical (tick, node, append index)
 * order -- the same total order the serial tie-break produces -- and
 * only the drain mutates the maps and the event buffer. Output is
 * byte-identical at every shard count. Mesh hooks need no lane: the
 * exchange already replays them single-threaded in canonical order.
 */

#ifndef PSIM_TRACE_CHROME_TRACE_HH
#define PSIM_TRACE_CHROME_TRACE_HH

#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/audit.hh"
#include "sim/types.hh"

namespace psim
{

class ChromeTracer
{
  public:
    /** Record only events starting inside [start, end]. */
    explicit ChromeTracer(Tick start = 0, Tick end = kTickNever);

    ChromeTracer(const ChromeTracer &) = delete;
    ChromeTracer &operator=(const ChromeTracer &) = delete;

    bool
    inWindow(Tick t) const
    {
        return t >= _start && t <= _end;
    }

    // ---- demand read misses ----
    void demandMissStart(NodeId node, Addr blk, Tick t);
    void demandMissEnd(NodeId node, Addr blk, Tick t);

    // ---- prefetch lifecycles (audit fate taxonomy) ----
    void prefetchIssue(NodeId node, Addr blk, Tick t);
    void prefetchFill(NodeId node, Addr blk, Tick t);
    void prefetchFate(NodeId node, Addr blk, audit::Fate fate, Tick t);

    // ---- mesh message transits ----
    void meshMessage(NodeId src, NodeId dst, unsigned flits, Tick inject,
                     Tick arrival);

    // ---- sharded-engine staging ----

    /**
     * Route the per-node hooks above into one staging lane per node
     * (shard threads write only their own nodes' lanes). Call before
     * the run; the machine then drains at every window boundary.
     */
    void enableStaging(unsigned num_nodes);

    /**
     * Apply every staged op -- all carry ticks below @p window_end --
     * in (tick, node, per-node append index) order, then clear the
     * lanes. Single-threaded; call between windows, before the mesh
     * exchange injects that window's transit events.
     */
    void drainStaged(Tick window_end);

    std::size_t eventCount() const { return _events.size(); }

    /** Write the complete Trace Event JSON document. */
    void write(std::ostream &os) const;

  private:
    struct TraceEvent
    {
        std::string name;
        const char *cat;
        char ph;        ///< 'X' complete, 'i' instant
        Tick ts;
        Tick dur;       ///< valid for 'X'
        unsigned pid;
        unsigned tid;
        std::string args; ///< preformatted JSON object, may be empty
    };

    /** Open interval start ticks, keyed by (node, block address). */
    using OpenMap = std::unordered_map<std::uint64_t, Tick>;

    /** One deferred per-node hook call (sharded staging mode). */
    struct StagedOp
    {
        enum class Kind : std::uint8_t
        {
            MissStart,
            MissEnd,
            PfIssue,
            PfFill,
            PfFate,
        };

        Kind kind;
        audit::Fate fate; ///< valid for PfFate
        NodeId node;
        Addr blk;
        Tick t;
    };

    /** Per-node op lane, padded so shards never share a cache line. */
    struct alignas(64) Lane
    {
        std::vector<StagedOp> ops;
    };

    static std::uint64_t
    key(NodeId node, Addr blk)
    {
        return (static_cast<std::uint64_t>(node) << 48) ^ blk;
    }

    bool staging() const { return !_lanes.empty(); }
    void stage(StagedOp::Kind kind, NodeId node, Addr blk, Tick t,
               audit::Fate fate = audit::Fate::None);

    void applyMissStart(NodeId node, Addr blk, Tick t);
    void applyMissEnd(NodeId node, Addr blk, Tick t);
    void applyPfIssue(NodeId node, Addr blk, Tick t);
    void applyPfFill(NodeId node, Addr blk, Tick t);
    void applyPfFate(NodeId node, Addr blk, audit::Fate fate, Tick t);

    void push(TraceEvent e);

    Tick _start;
    Tick _end;
    OpenMap _openMisses;
    OpenMap _openPrefetches;
    std::vector<TraceEvent> _events;
    std::vector<Lane> _lanes; ///< non-empty only in staging mode
};

} // namespace psim

#endif // PSIM_TRACE_CHROME_TRACE_HH
