#include "trace/trace.hh"

#include <cstring>

#include "sim/logging.hh"

namespace psim
{

namespace
{

constexpr std::uint64_t kMagic = 0x505349'4d54524bULL; // "PSIMTRK"

/**
 * Version 2: explicit little-endian field-by-field serialization.
 * Version 1 wrote the structs below as raw host memory; trace.hh always
 * documented "little-endian records", so v1 files were only correct on
 * little-endian hosts. The v1 read path below preserves exactly that.
 */
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kLegacyVersion = 1;

constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kRecordBytes = 40;

/** Fixed 40-byte on-disk record (v1 raw layout; v2 field order). */
struct DiskRecord
{
    std::uint64_t tick;
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint32_t node;
    std::uint8_t kind;
    std::uint8_t hit;
    std::uint8_t pad[10];
};

static_assert(sizeof(DiskRecord) == kRecordBytes, "trace record layout");

struct Header
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t count;
};

static_assert(sizeof(Header) == kHeaderBytes, "trace header layout");

void
putLe(unsigned char *p, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
getLe(const unsigned char *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
encodeHeader(unsigned char (&buf)[kHeaderBytes], std::uint64_t count)
{
    std::memset(buf, 0, sizeof(buf));
    putLe(buf + 0, kMagic, 8);
    putLe(buf + 8, kVersion, 4);
    // bytes 12..15: reserved, zero
    putLe(buf + 16, count, 8);
}

void
encodeRecord(unsigned char (&buf)[kRecordBytes], const TraceRecord &rec)
{
    std::memset(buf, 0, sizeof(buf));
    putLe(buf + 0, rec.tick, 8);
    putLe(buf + 8, rec.pc, 8);
    putLe(buf + 16, rec.addr, 8);
    putLe(buf + 24, rec.node, 4);
    buf[28] = static_cast<unsigned char>(rec.kind);
    buf[29] = rec.hit ? 1 : 0;
}

TraceRecord
decodeRecord(const unsigned char (&buf)[kRecordBytes])
{
    TraceRecord rec;
    rec.tick = getLe(buf + 0, 8);
    rec.pc = getLe(buf + 8, 8);
    rec.addr = getLe(buf + 16, 8);
    rec.node = static_cast<NodeId>(getLe(buf + 24, 4));
    rec.kind = static_cast<TraceRecord::Kind>(buf[28]);
    rec.hit = buf[29] != 0;
    return rec;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : _out(path, std::ios::binary | std::ios::trunc)
{
    if (!_out)
        psim_fatal("cannot open trace file '%s'", path.c_str());
    unsigned char buf[kHeaderBytes];
    encodeHeader(buf, 0);
    _out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    psim_assert(!_closed, "append to closed trace");
    unsigned char buf[kRecordBytes];
    encodeRecord(buf, rec);
    _out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    ++_count;
}

void
TraceWriter::close()
{
    if (_closed)
        return;
    _closed = true;
    // The stream's error state is sticky, so this single check covers
    // every append() so far; a short write must not produce a file that
    // silently reads back with fewer records than were captured.
    if (!_out)
        psim_fatal("trace write failed before close (disk full?)");
    unsigned char buf[kHeaderBytes];
    encodeHeader(buf, _count);
    _out.seekp(0);
    _out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    _out.flush();
    if (!_out)
        psim_fatal("trace close failed: header count not durable");
}

TraceReader::TraceReader(const std::string &path, bool salvage)
    : _in(path, std::ios::binary)
{
    if (!_in)
        psim_fatal("cannot open trace file '%s'", path.c_str());

    _in.seekg(0, std::ios::end);
    const std::uint64_t file_size =
            static_cast<std::uint64_t>(_in.tellg());
    _in.seekg(0);

    // Zero-length and sub-header files carry no recoverable records,
    // so not even --salvage can make sense of them.
    if (file_size < kHeaderBytes) {
        psim_fatal("trace '%s' is truncated before the header "
                   "(%llu of %u bytes); nothing to salvage",
                   path.c_str(), (unsigned long long)file_size,
                   (unsigned)kHeaderBytes);
    }

    unsigned char buf[kHeaderBytes];
    _in.read(reinterpret_cast<char *>(buf), sizeof(buf));
    if (!_in || getLe(buf + 0, 8) != kMagic)
        psim_fatal("'%s' is not a psim trace", path.c_str());
    _version = static_cast<std::uint32_t>(getLe(buf + 8, 4));
    if (_version != kVersion && _version != kLegacyVersion)
        psim_fatal("trace version %u unsupported", _version);
    if (_version == kLegacyVersion) {
        // v1 wrote raw host structs; only correct on little-endian
        // hosts, which is where every v1 file was produced. The layout
        // then matches v2 byte-for-byte, so decoding is shared.
        std::uint32_t one = 1;
        unsigned char lsb;
        std::memcpy(&lsb, &one, 1);
        if (lsb != 1) {
            psim_fatal("trace '%s' is version 1 (host-endian); "
                       "re-capture with this build for a portable v2 "
                       "trace", path.c_str());
        }
    }
    _count = getLe(buf + 16, 8);

    const std::uint64_t body = file_size - kHeaderBytes;
    if (salvage) {
        // Recover the count from the file length; a torn trailing
        // record (writer killed mid-write) is dropped.
        _count = body / kRecordBytes;
        // A header-only file salvages to nothing. Succeeding here
        // would let a pipeline mistake an empty recovery for a good
        // one, so fail loudly instead.
        if (_count == 0) {
            psim_fatal("salvage recovered no records from '%s' "
                       "(%llu bytes past the header)",
                       path.c_str(), (unsigned long long)body);
        }
        return;
    }
    if (_count * kRecordBytes != body) {
        psim_fatal("trace '%s' is corrupt: header records %llu entries "
                   "but the file holds %llu (%s); "
                   "use trace_tool --salvage to recover",
                   path.c_str(), (unsigned long long)_count,
                   (unsigned long long)(body / kRecordBytes),
                   _count == 0 ? "writer died before close()"
                               : "truncated capture");
    }
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (_read >= _count)
        return false;
    unsigned char buf[kRecordBytes];
    _in.read(reinterpret_cast<char *>(buf), sizeof(buf));
    if (!_in)
        return false;
    rec = decodeRecord(buf);
    ++_read;
    return true;
}

std::vector<TraceRecord>
TraceReader::readAll(const std::string &path, bool salvage)
{
    TraceReader reader(path, salvage);
    std::vector<TraceRecord> out;
    out.reserve(reader.count());
    TraceRecord rec;
    while (reader.next(rec))
        out.push_back(rec);
    return out;
}

} // namespace psim
