#include "trace/trace.hh"

#include <cstring>

#include "sim/logging.hh"

namespace psim
{

namespace
{

constexpr std::uint64_t kMagic = 0x505349'4d54524bULL; // "PSIMTRK"
constexpr std::uint32_t kVersion = 1;

/** Fixed 40-byte on-disk record. */
struct DiskRecord
{
    std::uint64_t tick;
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint32_t node;
    std::uint8_t kind;
    std::uint8_t hit;
    std::uint8_t pad[10];
};

static_assert(sizeof(DiskRecord) == 40, "trace record layout");

struct Header
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t count;
};

static_assert(sizeof(Header) == 24, "trace header layout");

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : _out(path, std::ios::binary | std::ios::trunc)
{
    if (!_out)
        psim_fatal("cannot open trace file '%s'", path.c_str());
    Header h{kMagic, kVersion, 0, 0};
    _out.write(reinterpret_cast<const char *>(&h), sizeof(h));
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    psim_assert(!_closed, "append to closed trace");
    DiskRecord d{};
    d.tick = rec.tick;
    d.pc = rec.pc;
    d.addr = rec.addr;
    d.node = rec.node;
    d.kind = static_cast<std::uint8_t>(rec.kind);
    d.hit = rec.hit ? 1 : 0;
    _out.write(reinterpret_cast<const char *>(&d), sizeof(d));
    ++_count;
}

void
TraceWriter::close()
{
    if (_closed)
        return;
    _closed = true;
    Header h{kMagic, kVersion, 0, _count};
    _out.seekp(0);
    _out.write(reinterpret_cast<const char *>(&h), sizeof(h));
    _out.flush();
}

TraceReader::TraceReader(const std::string &path)
    : _in(path, std::ios::binary)
{
    if (!_in)
        psim_fatal("cannot open trace file '%s'", path.c_str());
    Header h{};
    _in.read(reinterpret_cast<char *>(&h), sizeof(h));
    if (!_in || h.magic != kMagic)
        psim_fatal("'%s' is not a psim trace", path.c_str());
    if (h.version != kVersion)
        psim_fatal("trace version %u unsupported", h.version);
    _count = h.count;
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (_read >= _count)
        return false;
    DiskRecord d{};
    _in.read(reinterpret_cast<char *>(&d), sizeof(d));
    if (!_in)
        return false;
    rec.tick = d.tick;
    rec.pc = d.pc;
    rec.addr = d.addr;
    rec.node = d.node;
    rec.kind = static_cast<TraceRecord::Kind>(d.kind);
    rec.hit = d.hit != 0;
    ++_read;
    return true;
}

std::vector<TraceRecord>
TraceReader::readAll(const std::string &path)
{
    TraceReader reader(path);
    std::vector<TraceRecord> out;
    out.reserve(reader.count());
    TraceRecord rec;
    while (reader.next(rec))
        out.push_back(rec);
    return out;
}

} // namespace psim
