/**
 * @file
 * Reference-trace capture and replay.
 *
 * A trace records the read/write requests presented to the SLCs --
 * exactly the stream the prefetchers and the Table-2 characterizer
 * operate on -- so that the paper's methodology can be applied offline
 * to any captured run (see tools/trace_tool.cc) and runs can be
 * archived and diffed.
 *
 * On-disk format: a 16-byte header (magic, version, record count)
 * followed by fixed-size little-endian records.
 */

#ifndef PSIM_TRACE_TRACE_HH
#define PSIM_TRACE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace psim
{

struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        Read,  ///< demand read presented to an SLC
        Write, ///< store presented to an SLC
    };

    Tick tick = 0;
    Pc pc = 0;
    Addr addr = 0;
    NodeId node = 0;
    Kind kind = Kind::Read;
    bool hit = false; ///< SLC hit?

    bool
    operator==(const TraceRecord &o) const
    {
        return tick == o.tick && pc == o.pc && addr == o.addr &&
               node == o.node && kind == o.kind && hit == o.hit;
    }
};

/** Streams records to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &rec);

    /** Finish the file (writes the final record count). */
    void close();

    std::uint64_t count() const { return _count; }

  private:
    std::ofstream _out;
    std::uint64_t _count = 0;
    bool _closed = false;
};

/** Reads a trace file sequentially. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    /** @return false at end of trace. */
    bool next(TraceRecord &rec);

    std::uint64_t count() const { return _count; }

    /** Convenience: read a whole file into memory. */
    static std::vector<TraceRecord> readAll(const std::string &path);

  private:
    std::ifstream _in;
    std::uint64_t _count = 0;
    std::uint64_t _read = 0;
};

} // namespace psim

#endif // PSIM_TRACE_TRACE_HH
