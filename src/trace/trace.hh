/**
 * @file
 * Reference-trace capture and replay.
 *
 * A trace records the read/write requests presented to the SLCs --
 * exactly the stream the prefetchers and the Table-2 characterizer
 * operate on -- so that the paper's methodology can be applied offline
 * to any captured run (see tools/trace_tool.cc) and runs can be
 * archived and diffed.
 *
 * On-disk format (version 2): a 24-byte header -- magic (8 bytes),
 * version (4), reserved (4), record count (8) -- followed by fixed
 * 40-byte records: tick (8), pc (8), addr (8), node (4), kind (1),
 * hit (1), 10 bytes of zero padding. Every field is serialized
 * explicitly in little-endian byte order, so captures are portable
 * across hosts and archivable. Version-1 files (written as raw
 * host-endian structs by older builds) are still readable on
 * little-endian hosts via a compatibility path behind the version
 * check.
 *
 * The header's record count is written by TraceWriter::close(); a
 * reader cross-checks it against the actual file size and fails loudly
 * on a mismatch (a writer that died before close() leaves count == 0),
 * instead of silently returning an empty trace. `trace_tool --salvage`
 * recovers such captures from the file length.
 */

#ifndef PSIM_TRACE_TRACE_HH
#define PSIM_TRACE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace psim
{

struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        Read,  ///< demand read presented to an SLC
        Write, ///< store presented to an SLC
    };

    Tick tick = 0;
    Pc pc = 0;
    Addr addr = 0;
    NodeId node = 0;
    Kind kind = Kind::Read;
    bool hit = false; ///< SLC hit?

    bool
    operator==(const TraceRecord &o) const
    {
        return tick == o.tick && pc == o.pc && addr == o.addr &&
               node == o.node && kind == o.kind && hit == o.hit;
    }
};

/** Streams records to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &rec);

    /** Finish the file (writes the final record count). */
    void close();

    std::uint64_t count() const { return _count; }

  private:
    std::ofstream _out;
    std::uint64_t _count = 0;
    bool _closed = false;
};

/** Reads a trace file sequentially. */
class TraceReader
{
  public:
    /**
     * Open @p path and validate header magic, version and the record
     * count against the file size; any mismatch (truncation, a writer
     * that died before close()) is fatal. With @p salvage the count is
     * recovered from the file length instead, so unclosed captures can
     * still be analyzed (a partial trailing record is dropped).
     */
    explicit TraceReader(const std::string &path, bool salvage = false);

    /** @return false at end of trace. */
    bool next(TraceRecord &rec);

    std::uint64_t count() const { return _count; }
    std::uint32_t version() const { return _version; }

    /** Convenience: read a whole file into memory. */
    static std::vector<TraceRecord> readAll(const std::string &path,
                                            bool salvage = false);

  private:
    std::ifstream _in;
    std::uint64_t _count = 0;
    std::uint64_t _read = 0;
    std::uint32_t _version = 0;
};

} // namespace psim

#endif // PSIM_TRACE_TRACE_HH
