/**
 * @file
 * Ablation: the degree of prefetching d (paper Section 6).
 *
 * The paper reports (citing the authors' technical report [9]) that
 * with this prefetching-phase mechanism there was "little difference
 * between different values of d", which is why Figure 6 uses d = 1.
 * This harness sweeps d in {1, 2, 4, 8} for sequential and I-detection
 * prefetching on three contrasting applications: LU (unit stride),
 * Ocean (large stride) and MP3D (little stride).
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main()
{
    const std::vector<unsigned> degrees = {1, 2, 4, 8};
    const std::vector<std::string> workloads = {"lu", "ocean", "mp3d"};
    const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::Sequential, PrefetchScheme::IDet};

    std::printf("Ablation: degree of prefetching d (16 procs, "
                "infinite SLC)\n");
    std::printf("paper: \"little difference between different values "
                "of d\" for this prefetch phase\n\n");
    hr(92);
    std::printf("%-8s %-7s %4s %14s %14s %10s %12s\n", "app", "scheme",
                "d", "rel misses", "rel stall", "pf eff", "rel flits");
    hr(92);

    for (const auto &name : workloads) {
        apps::Run base = runChecked(name, paperConfig());
        for (PrefetchScheme scheme : schemes) {
            for (unsigned d : degrees) {
                MachineConfig cfg = paperConfig(scheme);
                cfg.prefetch.degree = d;
                apps::Run run = runChecked(name, cfg);
                std::printf("%-8s %-7s %4u %14.2f %14.2f %10.2f "
                            "%12.2f\n",
                            name.c_str(), toString(scheme), d,
                            run.metrics.readMisses /
                                    base.metrics.readMisses,
                            run.metrics.readStall /
                                    base.metrics.readStall,
                            run.metrics.prefetchEfficiency(),
                            run.metrics.flits / base.metrics.flits);
            }
        }
        hr(92);
    }
    return 0;
}
