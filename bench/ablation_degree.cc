/**
 * @file
 * Ablation: the degree of prefetching d (paper Section 6).
 *
 * The paper reports (citing the authors' technical report [9]) that
 * with this prefetching-phase mechanism there was "little difference
 * between different values of d", which is why Figure 6 uses d = 1.
 * This harness sweeps d in {1, 2, 4, 8} for sequential and I-detection
 * prefetching on three contrasting applications: LU (unit stride),
 * Ocean (large stride) and MP3D (little stride). All (app, scheme, d)
 * runs — including each app's baseline — are independent grid cells.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;

    const std::vector<unsigned> degrees = {1, 2, 4, 8};
    const std::vector<std::string> workloads = {"lu", "ocean", "mp3d"};
    const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::Sequential, PrefetchScheme::IDet};

    // Cell layout per app: [baseline, scheme0 x degrees, scheme1 x
    // degrees] — 1 + 2*4 = 9 cells per app.
    const std::size_t per_app = 1 + schemes.size() * degrees.size();
    std::vector<RunMetrics> results(workloads.size() * per_app);
    runGrid(results.size(), resolveJobs(opt.jobs), [&](std::size_t i) {
        const std::string &name = workloads[i / per_app];
        std::size_t k = i % per_app;
        if (k == 0) {
            results[i] = runChecked(name, paperConfig(),
                    opt.runOptions(name + "-baseline")).metrics;
            progress(name.c_str(), "baseline");
            return;
        }
        PrefetchScheme scheme = schemes[(k - 1) / degrees.size()];
        unsigned d = degrees[(k - 1) % degrees.size()];
        MachineConfig cfg = paperConfig(scheme);
        cfg.prefetch.degree = d;
        std::string cell = name + "-" + toString(scheme) + "-d" +
                           std::to_string(d);
        results[i] = runChecked(name, cfg, opt.runOptions(cell)).metrics;
        progress(name.c_str(), toString(scheme));
    });

    std::printf("Ablation: degree of prefetching d (16 procs, "
                "infinite SLC)\n");
    std::printf("paper: \"little difference between different values "
                "of d\" for this prefetch phase\n\n");
    hr(92);
    std::printf("%-8s %-7s %4s %14s %14s %10s %12s\n", "app", "scheme",
                "d", "rel misses", "rel stall", "pf eff", "rel flits");
    hr(92);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const RunMetrics &base = results[w * per_app];
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            for (std::size_t di = 0; di < degrees.size(); ++di) {
                const RunMetrics &run = results[w * per_app + 1 +
                                                s * degrees.size() + di];
                std::printf("%-8s %-7s %4u %14.2f %14.2f %s "
                            "%12.2f\n",
                            name.c_str(), toString(schemes[s]),
                            degrees[di],
                            run.readMisses / base.readMisses,
                            run.readStall / base.readStall,
                            fmtEff(run.prefetchEfficiency(), 10).c_str(),
                            run.flits / base.flits);
            }
        }
        hr(92);
    }
    wall.report();
    return 0;
}
