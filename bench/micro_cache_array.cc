/**
 * @file
 * Microbenchmarks (google-benchmark) of the cache tag/state array:
 * lookup, fill and evict throughput for the probe patterns the machine
 * generates (demand hits dominating, prefetch-candidate misses, fill
 * churn in a finite SLC, and the infinite-SLC fill-then-find path).
 *
 * `LegacyCacheArray` is a faithful copy of the seed array (an AoS frame
 * scan with a valid check per way; an unordered_map in infinite mode)
 * so a single run quantifies the speedup of the SoA tag lane and the
 * open-addressed infinite table; the `BM_Legacy*` numbers are the
 * baseline the acceptance criterion compares against.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/cache_array.hh"

using namespace psim;

namespace
{

/** The seed tag/state array, verbatim, for baseline measurements. */
class LegacyCacheArray
{
  public:
    LegacyCacheArray(unsigned size_bytes, unsigned assoc,
                     unsigned block_size)
        : _infinite(size_bytes == 0),
          _assoc(assoc),
          _blockSize(block_size),
          _numSets(0)
    {
        if (!_infinite) {
            unsigned blocks = size_bytes / block_size;
            _numSets = blocks / assoc;
            _frames.resize(static_cast<std::size_t>(_numSets) * _assoc);
        }
    }

    CacheBlk *
    find(Addr blk_addr)
    {
        if (_infinite) {
            auto it = _map.find(blk_addr);
            if (it == _map.end() || !it->second.valid())
                return nullptr;
            return &it->second;
        }
        CacheBlk *set = &_frames[setIndex(blk_addr) * _assoc];
        for (unsigned w = 0; w < _assoc; ++w) {
            if (set[w].valid() && set[w].addr == blk_addr)
                return &set[w];
        }
        return nullptr;
    }

    CacheBlk *
    findVictim(Addr blk_addr)
    {
        if (_infinite) {
            auto [it, inserted] = _map.try_emplace(blk_addr);
            if (inserted)
                it->second.addr = blk_addr;
            return &it->second;
        }
        CacheBlk *set = &_frames[setIndex(blk_addr) * _assoc];
        CacheBlk *victim = &set[0];
        for (unsigned w = 0; w < _assoc; ++w) {
            if (!set[w].valid())
                return &set[w];
            if (set[w].lastUse < victim->lastUse)
                victim = &set[w];
        }
        return victim;
    }

    void
    fill(CacheBlk *frame, Addr blk_addr, CohState state, Tick now)
    {
        frame->addr = blk_addr;
        frame->state = state;
        frame->prefetched = false;
        frame->outcomeReported = false;
        frame->written = false;
        frame->lastUse = now;
    }

    void
    invalidate(CacheBlk *blk)
    {
        blk->state = CohState::Invalid;
        blk->prefetched = false;
    }

  private:
    std::size_t
    setIndex(Addr blk_addr) const
    {
        return static_cast<std::size_t>(
                (blk_addr / _blockSize) & (_numSets - 1));
    }

    bool _infinite;
    unsigned _assoc;
    unsigned _blockSize;
    unsigned _numSets;
    std::vector<CacheBlk> _frames;
    std::unordered_map<Addr, CacheBlk> _map;
};

// The paper's finite-SLC configuration: 64 KiB, 4-way, 32 B blocks.
constexpr unsigned kSlcBytes = 64 * 1024;
constexpr unsigned kAssoc = 4;
constexpr unsigned kBlock = 32;
constexpr std::size_t kProbes = 8192;

/** Fill the array, then probe resident blocks (the demand-hit path). */
template <typename Array>
void
lookupHit(benchmark::State &state)
{
    Array arr(kSlcBytes, kAssoc, kBlock);
    std::vector<Addr> addrs;
    for (std::size_t i = 0; i < kSlcBytes / kBlock; ++i)
        addrs.push_back(static_cast<Addr>(i) * kBlock);
    for (Addr a : addrs)
        arr.fill(arr.findVictim(a), a, CohState::Shared, 0);
    std::uint64_t hits = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kProbes; ++i) {
            // Stride through the resident set with a co-prime step so
            // successive probes land in different sets.
            Addr a = addrs[(i * 97) % addrs.size()];
            if (arr.find(a))
                ++hits;
        }
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kProbes));
}

/** Probe non-resident blocks (the prefetch-candidate filter path). */
template <typename Array>
void
lookupMiss(benchmark::State &state)
{
    Array arr(kSlcBytes, kAssoc, kBlock);
    for (std::size_t i = 0; i < kSlcBytes / kBlock; ++i)
        arr.fill(arr.findVictim(static_cast<Addr>(i) * kBlock),
                 static_cast<Addr>(i) * kBlock, CohState::Shared, 0);
    std::uint64_t misses = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kProbes; ++i) {
            Addr a = (static_cast<Addr>(1) << 30) +
                     static_cast<Addr>(i) * kBlock;
            if (!arr.find(a))
                ++misses;
        }
    }
    benchmark::DoNotOptimize(misses);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kProbes));
}

/** Fill a working set 4x the capacity: the evict/refill churn path. */
template <typename Array>
void
fillEvict(benchmark::State &state)
{
    Array arr(kSlcBytes, kAssoc, kBlock);
    Tick now = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kProbes; ++i) {
            Addr a = static_cast<Addr>((i * 131) % (4 * kSlcBytes / kBlock))
                     * kBlock;
            CacheBlk *frame = arr.findVictim(a);
            if (frame->valid() && frame->addr != a)
                arr.invalidate(frame);
            arr.fill(frame, a, CohState::Modified, ++now);
        }
    }
    benchmark::DoNotOptimize(now);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kProbes));
}

/** Infinite mode: grow a large resident set from empty (fills only). */
template <typename Array>
void
infiniteFill(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        Array arr(0, 1, kBlock);
        for (std::size_t i = 0; i < kProbes; ++i) {
            Addr a = static_cast<Addr>(i) * kBlock;
            arr.fill(arr.findVictim(a), a, CohState::Shared, 0);
        }
        sink += reinterpret_cast<std::uintptr_t>(arr.find(0));
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kProbes));
}

/**
 * Infinite mode: probe an established resident set -- the steady state
 * of the paper's infinite SLC, where every demand access and prefetch
 * candidate lands after the working set is resident.
 */
template <typename Array>
void
infiniteFind(benchmark::State &state)
{
    Array arr(0, 1, kBlock);
    for (std::size_t i = 0; i < kProbes; ++i) {
        Addr a = static_cast<Addr>(i) * kBlock;
        arr.fill(arr.findVictim(a), a, CohState::Shared, 0);
    }
    std::uint64_t hits = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kProbes; ++i) {
            // Scattered probe order (golden-ratio hash): the resident
            // set is probed by interleaved demand streams and coherence
            // traffic, not by one neatly strided walk.
            Addr a = static_cast<Addr>((i * 2654435761u) % kProbes)
                     * kBlock;
            if (arr.find(a))
                ++hits;
        }
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kProbes));
}

void BM_LookupHit(benchmark::State &s) { lookupHit<CacheArray>(s); }
void BM_LegacyLookupHit(benchmark::State &s)
{
    lookupHit<LegacyCacheArray>(s);
}

void BM_LookupMiss(benchmark::State &s) { lookupMiss<CacheArray>(s); }
void BM_LegacyLookupMiss(benchmark::State &s)
{
    lookupMiss<LegacyCacheArray>(s);
}

void BM_FillEvict(benchmark::State &s) { fillEvict<CacheArray>(s); }
void BM_LegacyFillEvict(benchmark::State &s)
{
    fillEvict<LegacyCacheArray>(s);
}

void BM_InfiniteFill(benchmark::State &s) { infiniteFill<CacheArray>(s); }
void BM_LegacyInfiniteFill(benchmark::State &s)
{
    infiniteFill<LegacyCacheArray>(s);
}

void BM_InfiniteFind(benchmark::State &s) { infiniteFind<CacheArray>(s); }
void BM_LegacyInfiniteFind(benchmark::State &s)
{
    infiniteFind<LegacyCacheArray>(s);
}

BENCHMARK(BM_LookupHit);
BENCHMARK(BM_LegacyLookupHit);
BENCHMARK(BM_LookupMiss);
BENCHMARK(BM_LegacyLookupMiss);
BENCHMARK(BM_FillEvict);
BENCHMARK(BM_LegacyFillEvict);
BENCHMARK(BM_InfiniteFill);
BENCHMARK(BM_LegacyInfiniteFill);
BENCHMARK(BM_InfiniteFind);
BENCHMARK(BM_LegacyInfiniteFind);

} // namespace

BENCHMARK_MAIN();
