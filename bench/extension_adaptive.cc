/**
 * @file
 * Thin shim: this legacy binary now runs specs/extension_adaptive.json through the
 * shared spec driver (bench/spec_main.hh). The printed table and its
 * flags are unchanged; the machine-readable output is the canonical
 * psim-results-v1 document (default BENCH_extension_adaptive.json).
 */

#include "spec_main.hh"

int
main(int argc, char **argv)
{
    return psim::bench::runSpecMain("extension_adaptive", argc, argv);
}
