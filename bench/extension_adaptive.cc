/**
 * @file
 * Extension (paper Section 6): adaptive sequential prefetching.
 *
 * The paper notes that sequential prefetching and D-detection need a
 * smarter prefetching phase because they are unselective, and points
 * to the adaptive sequential scheme (degree adjusted by measured
 * usefulness, down to zero) as the fix, deferring it to future work.
 * This harness runs that future work: fixed sequential vs adaptive
 * sequential vs I-detection on all six applications.
 *
 * Expected shape: adaptive keeps fixed-sequential's miss coverage on
 * the locality-rich applications while cutting its useless traffic on
 * Ocean and PTHOR toward stride-prefetching levels.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;
    const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::Sequential, PrefetchScheme::Adaptive,
        PrefetchScheme::IDet};

    std::printf("Extension: adaptive sequential prefetching "
                "(16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-10s %-9s %12s %12s %10s %12s\n", "app", "scheme",
                "rel misses", "rel stall", "pf eff", "rel flits");
    hr(92);

    for (const auto &name : opt.workloads()) {
        apps::Run base = runChecked(name, paperConfig(),
                opt.runOptions(name + "-base"));
        for (PrefetchScheme scheme : schemes) {
            apps::Run run = runChecked(name, paperConfig(scheme),
                    opt.runOptions(name + "-" + toString(scheme)));
            std::printf("%-10s %-9s %12.2f %12.2f %s %12.2f\n",
                        name.c_str(), toString(scheme),
                        run.metrics.readMisses / base.metrics.readMisses,
                        run.metrics.readStall / base.metrics.readStall,
                        fmtEff(run.metrics.prefetchEfficiency(),
                               10).c_str(),
                        run.metrics.flits / base.metrics.flits);
        }
        hr(92);
    }
    wall.report();
    return 0;
}
