/**
 * @file
 * Report renderers: turn one executed spec (sim/spec.hh) back into the
 * exact stdout of the legacy per-table harness it replaced.
 *
 * Each renderer is keyed by the spec's "report" id and addresses cells
 * through Spec::cellIndex(), so the printed table is independent of
 * the flat cell order and byte-identical to the pre-spec binaries
 * (pinned in tests/golden/<name>.stdout.txt). A spec with report
 * "none" renders nothing -- the JSON results document is the output.
 */

#ifndef PSIM_BENCH_RENDER_HH
#define PSIM_BENCH_RENDER_HH

#include <string>

#include "sim/spec.hh"

namespace psim::bench
{

using Renderer = void (*)(const spec::Spec &, const spec::Results &);

/** The renderer for @p report, or nullptr when the id is unknown. */
Renderer findRenderer(const std::string &report);

/** Comma-separated list of the known report ids (for error messages). */
std::string knownReports();

} // namespace psim::bench

#endif // PSIM_BENCH_RENDER_HH
