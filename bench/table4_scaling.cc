/**
 * @file
 * Reproduces Table 4: how the key application characteristics move
 * with larger data sets (infinite SLC). The paper reports expected
 * tendencies for five applications (PTHOR was too slow to rerun);
 * this harness measures both data-set sizes and prints the observed
 * trend next to the paper's expectation.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

namespace
{

struct Row
{
    double fraction;
    double seq_len;
    std::int64_t dominant;
};

Row
measure(const BenchOptions &opt, const std::string &name, unsigned scale)
{
    MachineConfig cfg = paperConfig();
    apps::RunOptions opts;
    opts.characterize = true;
    opts.scale = scale;
    std::string cell = name + "-scale" + std::to_string(scale);
    apps::Run run = runChecked(name, cfg, opt.runOptions(cell, opts));
    auto report = run.machine->characterizer(0)->finalize();
    std::int64_t dom =
            report.topStrides.empty() ? 0 : report.topStrides[0].first;
    return Row{report.strideFraction, report.avgSequenceLength, dom};
}

const char *
trend(double small, double big, double tol = 0.05)
{
    if (big > small * (1.0 + tol))
        return "higher";
    if (big < small * (1.0 - tol))
        return "lower";
    return "about the same";
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;
    const std::vector<std::string> &workloads = opt.workloads();

    // Two cells (scale 1, scale 2) per application, all independent.
    std::vector<Row> measured(workloads.size() * 2);
    runGrid(measured.size(), resolveJobs(opt.jobs), [&](std::size_t i) {
        const std::string &name = workloads[i / 2];
        unsigned scale = 1 + static_cast<unsigned>(i % 2);
        measured[i] = measure(opt, name, scale);
        progress(name.c_str(), scale == 1 ? "scale1" : "scale2");
    });

    std::printf("Table 4: characteristics for larger data sets, "
                "infinite SLC (scale 1 vs scale 2)\n");
    std::printf("paper expectation: stride fraction higher for "
                "Chol/Water/LU/Ocean, about the same for MP3D;\n"
                "sequence length longer except MP3D (limited); "
                "dominant stride unchanged except Ocean (longer)\n\n");
    hr(96);
    std::printf("%-10s | %21s | %21s | %12s\n", "app",
                "stride misses  s1->s2", "avg seq len    s1->s2",
                "dom stride");
    hr(96);

    // The paper omits PTHOR here for simulation-time reasons; it is
    // cheap in this reproduction, so it is included as an extension.
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const Row &small = measured[w * 2];
        const Row &big = measured[w * 2 + 1];
        std::printf("%-10s | %5.1f%% -> %5.1f%% %6s | %5.1f -> %5.1f "
                    "%8s | %3lld -> %3lld\n",
                    name.c_str(), 100 * small.fraction,
                    100 * big.fraction,
                    trend(small.fraction, big.fraction),
                    small.seq_len, big.seq_len,
                    trend(small.seq_len, big.seq_len),
                    static_cast<long long>(small.dominant),
                    static_cast<long long>(big.dominant));
    }
    hr(96);
    wall.report();
    return 0;
}
