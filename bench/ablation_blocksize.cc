/**
 * @file
 * Ablation: cache block size (paper Section 4).
 *
 * The paper "pessimistically" evaluates 32-byte blocks, noting that a
 * larger block size would favour sequential prefetching for large
 * strides (and cites earlier 128-byte-block results). This harness
 * compares 32 B and 128 B blocks for the baseline and sequential
 * prefetching across the six applications, reporting how many read
 * misses sequential prefetching removes at each block size.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main()
{
    std::printf("Ablation: block size 32 B vs 128 B (16 procs, "
                "infinite SLC, d = 1)\n");
    std::printf("paper: larger blocks make sequential prefetching "
                "effective for larger strides\n\n");
    hr(92);
    std::printf("%-10s %6s %14s %14s %14s %14s\n", "app", "block",
                "base misses", "seq misses", "seq rel", "seq pf eff");
    hr(92);

    for (const auto &name : apps::paperWorkloads()) {
        for (unsigned block : {32u, 128u}) {
            MachineConfig base_cfg = paperConfig();
            base_cfg.blockSize = block;
            apps::Run base = runChecked(name, base_cfg);

            MachineConfig seq_cfg =
                    paperConfig(PrefetchScheme::Sequential);
            seq_cfg.blockSize = block;
            apps::Run seq = runChecked(name, seq_cfg);

            std::printf("%-10s %5uB %14.0f %14.0f %14.2f %14.2f\n",
                        name.c_str(), block, base.metrics.readMisses,
                        seq.metrics.readMisses,
                        seq.metrics.readMisses /
                                base.metrics.readMisses,
                        seq.metrics.prefetchEfficiency());
        }
        hr(92);
    }
    return 0;
}
