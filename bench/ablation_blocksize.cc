/**
 * @file
 * Ablation: cache block size (paper Section 4).
 *
 * The paper "pessimistically" evaluates 32-byte blocks, noting that a
 * larger block size would favour sequential prefetching for large
 * strides (and cites earlier 128-byte-block results). This harness
 * compares 32 B and 128 B blocks for the baseline and sequential
 * prefetching across the six applications, reporting how many read
 * misses sequential prefetching removes at each block size. The
 * (app, block, scheme) runs are independent grid cells.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;
    const std::vector<std::string> &workloads = opt.workloads();
    const std::vector<unsigned> blocks = {32, 128};

    // Cell layout per app: [base@32, seq@32, base@128, seq@128].
    const std::size_t per_app = blocks.size() * 2;
    std::vector<RunMetrics> results(workloads.size() * per_app);
    runGrid(results.size(), resolveJobs(opt.jobs), [&](std::size_t i) {
        const std::string &name = workloads[i / per_app];
        std::size_t k = i % per_app;
        unsigned block = blocks[k / 2];
        bool seq = k % 2 == 1;
        MachineConfig cfg = seq ? paperConfig(PrefetchScheme::Sequential)
                                : paperConfig();
        cfg.blockSize = block;
        std::string cell = name + "-" + (seq ? "seq" : "base") + "-" +
                           std::to_string(block) + "B";
        results[i] = runChecked(name, cfg, opt.runOptions(cell)).metrics;
        progress(name.c_str(), seq ? "seq" : "base");
    });

    std::printf("Ablation: block size 32 B vs 128 B (16 procs, "
                "infinite SLC, d = 1)\n");
    std::printf("paper: larger blocks make sequential prefetching "
                "effective for larger strides\n\n");
    hr(92);
    std::printf("%-10s %6s %14s %14s %14s %14s\n", "app", "block",
                "base misses", "seq misses", "seq rel", "seq pf eff");
    hr(92);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            const RunMetrics &base = results[w * per_app + b * 2];
            const RunMetrics &seq = results[w * per_app + b * 2 + 1];
            std::printf("%-10s %5uB %14.0f %14.0f %14.2f %s\n",
                        name.c_str(), blocks[b], base.readMisses,
                        seq.readMisses,
                        seq.readMisses / base.readMisses,
                        fmtEff(seq.prefetchEfficiency(), 14).c_str());
        }
        hr(92);
    }
    wall.report();
    return 0;
}
